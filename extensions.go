package ccperf

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ccperf/internal/cloud"
	"ccperf/internal/cluster"
	"ccperf/internal/engine"
	"ccperf/internal/explore"
	"ccperf/internal/fault"
	"ccperf/internal/models"
	"ccperf/internal/prune"
	"ccperf/internal/report"
)

// Extension experiments beyond the paper's tables and figures:
// "calibration" documents every fitted constant against its source, and
// "sensitivity" sweeps the T′/C′ constraints of Figures 9–10 — the
// natural follow-up question a consumer asks ("how tight can I go?").

func init() {
	experimentRegistry = append(experimentRegistry,
		struct {
			id    string
			title string
			fn    experimentFn
		}{"calibration", "Extra: calibration constants and their paper sources", expCalibration},
		struct {
			id    string
			title string
			fn    experimentFn
		}{"sensitivity", "Extra: feasibility and accuracy vs deadline/budget", expSensitivity},
		struct {
			id    string
			title string
			fn    experimentFn
		}{"robustness", "Extra: Figure 9/10 statistics across degree samples", expRobustness},
		struct {
			id    string
			title string
			fn    experimentFn
		}{"joint", "Extra: joint accuracy-time-cost Pareto surface", expJoint},
		struct {
			id    string
			title string
			fn    experimentFn
		}{"faults", "Extra: spot preemption vs the cost-accuracy plan", expFaults},
	)
}

// expFaults runs the failure-aware cluster simulation on a saturated
// two-instance fleet, with and without a mid-run spot preemption,
// registered as extension experiment "faults". The fleet is deliberately
// saturated: on an idle fleet a revocation merely refunds rental, but at
// full utilization the interrupted job's retry extends the survivor's
// queue, so cost per finished image and deadline misses both rise — the
// paper's cost-accuracy plan priced under revocation risk.
func expFaults() (*Result, error) {
	sys, err := NewSystem(Caffenet)
	if err != nil {
		return nil, err
	}
	xl, err := cloud.ByName("p2.xlarge")
	if err != nil {
		return nil, err
	}
	perf := sys.Predictor().Perf(prune.NewDegree("conv1", 0.3, "conv2", 0.5), 0)
	fleet := []*cloud.Instance{xl, xl}
	jobs := []cluster.Job{
		{ID: 0, Arrival: 0, Images: 200_000},
		{ID: 1, Arrival: 0, Images: 200_000},
	}
	ctx := context.Background()
	// Probe run fixes the fault-free makespan; deadlines sit 2% above it,
	// and the preemption lands halfway through.
	probe, err := cluster.Run(ctx, cluster.Config{Fleet: fleet, Perf: perf}, jobs)
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		jobs[i].Deadline = probe.Makespan * 1.02
	}
	faults := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Preempt, Target: 0, At: probe.Makespan / 2},
	}}
	tb := report.NewTable("saturated 2x p2.xlarge fleet, 400k images, sweet-spot degree",
		"Scenario", "Makespan (h)", "Misses", "Retries", "Wasted (s)", "Cost ($)", "$ / M on-time")
	var base, chaos *cluster.Result
	for _, sc := range []struct {
		name   string
		faults *fault.Schedule
		out    **cluster.Result
	}{
		{"fault-free", nil, &base},
		{"preempt half-way", faults, &chaos},
	} {
		res, err := cluster.Run(ctx, cluster.Config{Fleet: fleet, Perf: perf, Faults: sc.faults}, jobs)
		if err != nil {
			return nil, err
		}
		*sc.out = res
		tb.Row(sc.name, fmt.Sprintf("%.2f", res.Makespan/3600), res.Misses, res.Retries,
			fmt.Sprintf("%.0f", res.WastedSeconds),
			fmt.Sprintf("%.2f", res.Cost),
			fmt.Sprintf("%.2f", res.CostPerMillionOnTime()))
	}
	return &Result{
		Text: tb.String(),
		Findings: []Finding{
			{"preemption premium", "(not in paper)",
				fmt.Sprintf("revoking one of two saturated instances misses %d of %d deadlines and raises cost per million on-time images from $%.2f to $%.2f (+%.0f%%); makespan stretches %.2f h → %.2f h",
					chaos.Misses, len(jobs),
					base.CostPerMillionOnTime(), chaos.CostPerMillionOnTime(),
					(chaos.CostPerMillionOnTime()/base.CostPerMillionOnTime()-1)*100,
					base.Makespan/3600, chaos.Makespan/3600)},
			{"interpretation", "",
				fmt.Sprintf("under per-second billing the spot refund almost cancels the re-run ($%.2f vs $%.2f raw, %.0f s of batch work wasted) — the preemption's real price is the deadline: capacity plans built on the paper's frontiers must buy slack against revocation, not just the hourly rate",
					base.Cost, chaos.Cost, chaos.WastedSeconds)},
		},
	}, nil
}

// expRobustness re-draws the 60-variant set under different seeds and
// reports how the Figure 9/10 headline statistics move — quantifying how
// much of the paper's "5 Pareto-optimal configurations" is a property of
// the space versus of one particular sample (EXPERIMENTS.md note 3).
func expRobustness() (*Result, error) {
	h, err := newHarness(Caffenet)
	if err != nil {
		return nil, err
	}
	pool := cloud.BuildPool(cloud.P2Types(), 3)
	cache := engine.NewCache(h)
	tb := report.NewTable("", "Seed", "Feasible (T')", "Time-frontier", "Cost-frontier", "Best Top-1 (%)", "Max time cut (%)")
	minFr, maxFr := math.MaxInt, 0
	for _, seed := range []int64{7, 21, 42, 99, 1234} {
		keep := func(d prune.Degree) bool {
			a, err := h.Eval.Evaluate(d)
			return err == nil && a.Top1 >= 0.15
		}
		degrees := prune.SampleDegreesFiltered(models.CaffenetConvNames(), prune.Range(0, 0.9, 0.1), 60, seed, keep)
		sp := &explore.Space{Pred: cache, Degrees: degrees, Pool: pool, W: W1M}
		cands, err := sp.Enumerate(context.Background())
		if err != nil {
			return nil, err
		}
		feas := explore.Feasible(cands, Fig9DeadlineSeconds, math.Inf(1))
		tf := explore.Frontier(feas, explore.ByTime, explore.Top1)
		cfeas := explore.Feasible(cands, math.Inf(1), Fig10BudgetUSD)
		cf := explore.Frontier(cfeas, explore.ByCost, explore.Top1)
		_, _, _, pct := savingsAtBest(feas, explore.Top1, false)
		best := 0.0
		for _, c := range feas {
			if c.Acc.Top1 > best {
				best = c.Acc.Top1
			}
		}
		for _, n := range []int{len(tf), len(cf)} {
			if n < minFr {
				minFr = n
			}
			if n > maxFr {
				maxFr = n
			}
		}
		tb.Row(seed, len(feas), len(tf), len(cf), fmt.Sprintf("%.0f", best*100), fmt.Sprintf("%.0f", pct))
	}
	return &Result{
		Text: tb.String(),
		Findings: []Finding{
			{"frontier-size stability", "paper reports 5 for its one sample",
				fmt.Sprintf("%d–%d across five independent 60-variant samples", minFr, maxFr)},
			{"structural claims", "Observations 4–5",
				"thousands feasible, a handful Pareto-optimal, large savings at max accuracy — hold for every sample"},
		},
	}, nil
}

func expCalibration() (*Result, error) {
	tb := report.NewTable("", "Constant", "Value", "Source in paper", "Pinned by test")
	rows := [][4]string{
		{"Caffenet 50k total (p2.xlarge)", "19 min", "Fig. 6 y-axes", "gpusim.TestCaffenetUnprunedTotal19Min"},
		{"Googlenet 50k total", "13 min", "Fig. 7 y-axes", "gpusim.TestGooglenetUnprunedTotal13Min"},
		{"Caffenet batch-1 latency", "0.09 s", "Fig. 4 / §4.2.2", "gpusim.TestSingleInferenceLatencies"},
		{"Googlenet batch-1 latency", "0.16 s", "Fig. 4", "gpusim.TestSingleInferenceLatencies"},
		{"GPU saturation batch", "300", "Fig. 5 / §4.2.3", "gpusim.TestBatchSaturationCurve"},
		{"Layer time shares", "51/16/9/10/7 %", "Fig. 3 / §4.2.1", "gpusim.TestLayerTimesMatchFigure3"},
		{"conv1 prune response", "19→16.6 min @90%", "Fig. 6a / §4.3.1", "gpusim.TestFigure6SingleLayerEndpoints"},
		{"conv2 prune response", "19→14 min @90%", "Fig. 6b / §4.3.1", "gpusim.TestFigure6SingleLayerEndpoints"},
		{"conv1×conv2 synergy", "combo → ~13 min", "Fig. 8 / §4.3.2", "gpusim.TestFigure8MultiLayerPruning"},
		{"M60/K80 speed ratio", "0.485", "Fig. 12 CAR ratio", "gpusim.TestM60SpeedFactor"},
		{"Top-5 baseline", "80 %", "Figs. 6/8 y-axes", "accuracy.TestBaselines"},
		{"Sweet-spot thresholds", "30 % (conv1), 50 % (conv2–5), 60 % (Googlenet)", "§4.3.1 / Fig. 7", "accuracy.TestSweetSpotFlat"},
		{"conv1 accuracy floor", "0 % @90%", "Fig. 6a / §4.3.1", "accuracy.TestConv1FallsToZero"},
		{"other layers' floor", "~25 % Top-5 @90%", "§4.3.1", "accuracy.TestOtherLayersFloorAt25"},
		{"multi-layer accuracy drops", "10 pts (2 layers), 18 pts (5)", "Fig. 8 / §4.3.2", "accuracy.TestFigure8MultiLayerAccuracy"},
		{"EC2 catalog + prices", "Table 3", "Table 3", "cloud.TestCatalogMatchesTable3"},
		{"Billing granularity", "per second", "§4.1.2", "cloud.TestEstimateRunProRatesToSecond"},
	}
	for _, r := range rows {
		tb.Row(r[0], r[1], r[2], r[3])
	}
	return &Result{
		Text: tb.String(),
		Findings: []Finding{
			{"calibrated constants", "(the paper's measurements)", fmt.Sprintf("%d constants, each pinned by a named test", tb.Len())},
		},
	}, nil
}

func expSensitivity() (*Result, error) {
	_, cands, err := fig9Space()
	if err != nil {
		return nil, err
	}
	maxAcc := func(feas []explore.Candidate) float64 {
		best := 0.0
		for _, c := range feas {
			if c.Acc.Top1 > best {
				best = c.Acc.Top1
			}
		}
		return best
	}
	var b strings.Builder
	dt := report.NewTable("Deadline sweep (no budget)", "T' (h)", "Feasible", "Share (%)", "Best Top-1 (%)")
	for _, hours := range []float64{0.1, 0.2, 0.3, 0.5, 0.63, 1, 2} {
		feas := explore.Feasible(cands, hours*3600, math.Inf(1))
		dt.Row(fmt.Sprintf("%.2f", hours), len(feas),
			fmt.Sprintf("%.1f", float64(len(feas))/float64(len(cands))*100),
			fmt.Sprintf("%.0f", maxAcc(feas)*100))
	}
	b.WriteString(dt.String())
	b.WriteString("\n")
	ct := report.NewTable("Budget sweep (no deadline)", "C' ($)", "Feasible", "Share (%)", "Best Top-1 (%)")
	for _, usd := range []float64{2, 3, 4, 5, 6, 8, 12} {
		feas := explore.Feasible(cands, math.Inf(1), usd)
		ct.Row(fmt.Sprintf("%.0f", usd), len(feas),
			fmt.Sprintf("%.1f", float64(len(feas))/float64(len(cands))*100),
			fmt.Sprintf("%.0f", maxAcc(feas)*100))
	}
	b.WriteString(ct.String())

	tight := explore.Feasible(cands, 0.1*3600, math.Inf(1))
	loose := explore.Feasible(cands, 2*3600, math.Inf(1))
	return &Result{
		Text: b.String(),
		Findings: []Finding{
			{"deadline elasticity", "(not in paper)",
				fmt.Sprintf("0.1 h admits %d configs at %.0f%% best Top-1; 2 h admits %d at %.0f%%",
					len(tight), maxAcc(tight)*100, len(loose), maxAcc(loose)*100)},
			{"accuracy saturates", "(not in paper)",
				"best reachable accuracy plateaus once the unpruned model fits — past that, looser constraints only add dominated configurations"},
		},
	}, nil
}

// expJoint computes the three-objective (accuracy, time, cost) Pareto set
// over the Figure 9/10 space — the surface a consumer navigates when both
// T′ and C′ matter, registered as extension experiment "joint".
func expJoint() (*Result, error) {
	_, cands, err := fig9Space()
	if err != nil {
		return nil, err
	}
	joint := explore.JointFrontier(cands, explore.Top1)
	tb := report.NewTable("Joint accuracy-time-cost Pareto surface (Top-1, first 20 by accuracy)",
		"Top-1 (%)", "Hours", "Cost ($)", "Degree", "Config")
	for i, c := range joint {
		if i >= 20 {
			break
		}
		tb.Row(fmt.Sprintf("%.0f", c.Acc.Top1*100), fmt.Sprintf("%.3f", c.Hours()),
			fmt.Sprintf("%.2f", c.Cost), c.Degree.Label(), c.Config.Label())
	}
	tf := explore.Frontier(cands, explore.ByTime, explore.Top1)
	cf := explore.Frontier(cands, explore.ByCost, explore.Top1)
	return &Result{
		Text: tb.String(),
		Findings: []Finding{
			{"joint Pareto surface", "(not in paper — Figures 9/10 treat time and cost separately)",
				fmt.Sprintf("%d non-dominated configurations of %d (vs %d time-only, %d cost-only)",
					len(joint), len(cands), len(tf), len(cf))},
			{"interpretation", "",
				"the 2-D frontiers are slices of this surface; everything off it is strictly wasteful"},
		},
	}, nil
}
