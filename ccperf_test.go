package ccperf

import (
	"context"
	"math"
	"strings"
	"testing"

	"ccperf/internal/prune"
)

func TestNewSystemModels(t *testing.T) {
	for _, m := range []string{Caffenet, Googlenet} {
		sys, err := NewSystem(m)
		if err != nil {
			t.Fatalf("NewSystem(%s): %v", m, err)
		}
		top1, top5 := sys.Baseline()
		if top1 <= 0 || top5 < top1 {
			t.Fatalf("%s baseline = %v/%v", m, top1, top5)
		}
	}
	if _, err := NewSystem("resnet"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestSystemMeasure(t *testing.T) {
	sys, err := NewSystem(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sys.Measure(context.Background(), prune.NewDegree("conv2", 0.5), "p2.xlarge", W50k)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seconds/60 < 15 || rec.Seconds/60 > 18 {
		t.Fatalf("conv2@50%% time = %v min, want ~16.7", rec.Seconds/60)
	}
	if _, err := sys.Measure(context.Background(), prune.Degree{}, "nope", W50k); err == nil {
		t.Fatal("expected error for unknown instance")
	}
}

func TestSystemSweetSpots(t *testing.T) {
	sys, err := NewSystem(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	spots, err := sys.SweetSpots(context.Background(), []string{"conv1", "conv2"}, W50k)
	if err != nil {
		t.Fatal(err)
	}
	if len(spots) != 2 {
		t.Fatalf("%d spots", len(spots))
	}
	if math.Abs(spots[0].MaxRatio-0.3) > 1e-9 {
		t.Errorf("conv1 sweet-spot = %v, want 0.3", spots[0].MaxRatio)
	}
	if math.Abs(spots[1].MaxRatio-0.5) > 1e-9 {
		t.Errorf("conv2 sweet-spot = %v, want 0.5", spots[1].MaxRatio)
	}
	for _, s := range spots {
		if s.TimeSavedPct <= 0 {
			t.Errorf("%s saves no time at its sweet-spot", s.Layer)
		}
	}
}

func TestPlannerAllocateRespectsConstraints(t *testing.T) {
	p, err := NewPlanner(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Images: W1M, DeadlineHours: 0.63, BudgetUSD: 5}
	plan, err := p.Allocate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Found {
		t.Fatal("expected a feasible plan")
	}
	if plan.Hours > 0.63 || plan.CostUSD > 5 {
		t.Fatalf("plan violates constraints: %+v", plan)
	}
	if plan.Degree == "" || plan.Config == "" {
		t.Fatalf("plan incomplete: %+v", plan)
	}
}

func TestPlannerGreedyNeverBeatsExhaustive(t *testing.T) {
	p, err := NewPlanner(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []float64{3, 5, 8} {
		req := Request{Images: W1M, DeadlineHours: 0.75, BudgetUSD: budget, Variants: 25}
		g, err := p.Allocate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		e, err := p.AllocateExhaustive(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if g.Found && !e.Found {
			t.Fatalf("budget %v: greedy found a plan the exhaustive search missed", budget)
		}
		if g.Found && g.Top1 > e.Top1+1e-9 {
			t.Fatalf("budget %v: greedy %v beats optimum %v", budget, g.Top1, e.Top1)
		}
		if g.Found && g.Ops >= e.Ops {
			t.Fatalf("budget %v: greedy ops %d not below exhaustive %d", budget, g.Ops, e.Ops)
		}
	}
}

func TestPlannerFrontiers(t *testing.T) {
	p, err := NewPlanner(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	n, tf, cf, err := p.Frontiers(context.Background(), Request{Images: W1M, DeadlineHours: 0.63, Variants: 20})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || len(tf) == 0 || len(cf) == 0 {
		t.Fatalf("feasible=%d tf=%d cf=%d", n, len(tf), len(cf))
	}
	// Frontier points must be strictly increasing in both accuracy and
	// objective.
	for i := 1; i < len(tf); i++ {
		if tf[i].Accuracy <= tf[i-1].Accuracy || tf[i].Hours <= tf[i-1].Hours {
			t.Fatalf("time frontier not increasing at %d", i)
		}
	}
	for i := 1; i < len(cf); i++ {
		if cf[i].Accuracy <= cf[i-1].Accuracy || cf[i].CostUSD <= cf[i-1].CostUSD {
			t.Fatalf("cost frontier not increasing at %d", i)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	if err := (Request{Images: 0}).Validate(); err == nil {
		t.Fatal("expected error for zero images")
	}
	if err := (Request{Images: 10, DeadlineHours: -1}).Validate(); err == nil {
		t.Fatal("expected error for negative deadline")
	}
	if err := (Request{Images: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlannerUnknownPoolType(t *testing.T) {
	p, err := NewPlanner(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Allocate(context.Background(), Request{Images: 100, PoolTypes: []string{"m5.large"}})
	if err == nil || !strings.Contains(err.Error(), "unknown instance") {
		t.Fatalf("err = %v", err)
	}
}

func TestGooglenetPlanner(t *testing.T) {
	p, err := NewPlanner(Googlenet)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Allocate(context.Background(), Request{Images: 200_000, DeadlineHours: 5, BudgetUSD: 50, Variants: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Found {
		t.Fatal("expected feasible googlenet plan")
	}
}

func TestCapacityWeightedNeverSlower(t *testing.T) {
	// With the same constraints, the capacity-weighted split can only
	// improve (or match) the accuracy Algorithm 1 reaches, since every
	// configuration gets faster or stays equal.
	p, err := NewPlanner(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	base := Request{Images: W1M, DeadlineHours: 0.4, BudgetUSD: 4, Variants: 20}
	even, err := p.Allocate(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	weighted := base
	weighted.CapacityWeighted = true
	w, err := p.Allocate(context.Background(), weighted)
	if err != nil {
		t.Fatal(err)
	}
	if even.Found && !w.Found {
		t.Fatal("weighted split lost a feasible plan")
	}
	if even.Found && w.Found && w.Top1 < even.Top1-1e-9 {
		t.Fatalf("weighted plan accuracy %v below even-split %v", w.Top1, even.Top1)
	}
}

func TestEmpiricalEvaluatorAccessor(t *testing.T) {
	e := EmpiricalEvaluator()
	b := e.Baseline()
	if b.Top1 < 0.4 {
		t.Fatalf("empirical baseline = %v", b.Top1)
	}
}

func TestAccessors(t *testing.T) {
	sys, err := NewSystem(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Predictor() == nil {
		t.Fatal("Predictor accessor")
	}
	p, err := NewPlanner(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	if p.System() == nil || p.System().Model != Caffenet {
		t.Fatal("System accessor")
	}
}
