// Command ccperf is the interactive CLI for the cost-accuracy library:
//
//	ccperf characterize -model caffenet            # Figures 3–5 style characterization
//	ccperf sweep -model caffenet -layer conv2      # Figure 6/7 style pruning sweep
//	ccperf sweetspots -model caffenet              # per-layer sweet-spot report
//	ccperf pareto -images 1000000 -deadline 0.63   # feasible space + frontiers
//	ccperf allocate -images 1000000 -deadline 0.63 -budget 5
//	ccperf tables                                  # Tables 1 and 3
//	ccperf compress                                # quantization & weight sharing
//	ccperf empirical                               # trained-and-pruned accuracy
//	ccperf predict                                 # cross-instance transfer prediction
//	ccperf loadtest -requests 2000 -duration 10s   # replay a trace against the gateway
//	ccperf serve -addr :8080                       # live telemetry endpoint
//	ccperf benchjson < bench.txt                   # bench output → telemetry JSON
//	ccperf benchdiff BENCH_6.json out/bench.json   # variance-aware perf diff
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"ccperf"
	"ccperf/internal/autoscale"
	"ccperf/internal/benchdiff"
	"ccperf/internal/cloud"
	"ccperf/internal/cluster"
	"ccperf/internal/compress"
	"ccperf/internal/dataset"
	"ccperf/internal/fault"
	"ccperf/internal/gpusim"
	"ccperf/internal/models"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
	"ccperf/internal/report"
	"ccperf/internal/serving"
	"ccperf/internal/telemetry"
	"ccperf/internal/train"
	"ccperf/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	// Interrupt (Ctrl-C) cancels the context, which propagates down to the
	// exploration workers and measurement loops.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch cmd {
	case "characterize":
		err = characterize(args)
	case "sweep":
		err = sweep(ctx, args)
	case "sweetspots":
		err = sweetspots(ctx, args)
	case "pareto":
		err = paretoCmd(ctx, args)
	case "allocate":
		err = allocate(ctx, args)
	case "tables":
		err = tables(args)
	case "compress":
		err = compressCmd(args)
	case "empirical":
		err = empiricalCmd(args)
	case "simulate":
		err = simulateCmd(ctx, args)
	case "predict":
		err = predictCmd(ctx, args)
	case "loadtest":
		err = loadtestCmd(args)
	case "pack":
		err = packCmd(ctx, args)
	case "spec":
		err = specCmd(args)
	case "serve":
		err = serveCmd(ctx, args)
	case "benchjson":
		err = benchjsonCmd(args)
	case "benchdiff":
		err = benchdiffCmd(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ccperf: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccperf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ccperf <command> [flags]

commands:
  characterize  layer time distribution, single-inference latency, saturation
  sweep         prune one layer 0–90% and report time/accuracy
  sweetspots    largest no-accuracy-loss prune ratio per layer
  pareto        enumerate the joint space, print feasible count + frontiers
  allocate      run Algorithm 1 under a deadline and budget
  tables        print Table 1 (Caffenet layers) and Table 3 (EC2 types)
  compress      quantization / weight-sharing memory-accuracy table
  empirical     prune a really trained CNN and report measured accuracy
  simulate      discrete-event day simulation of a fleet serving a trace
                (-faults injects preemptions/stragglers; -retry-budget caps
                re-dispatches of interrupted jobs)
  predict       fit PROFET-style roofline scaling factors from calibrated
                instance types (-fit), report the leave-one-out held-out
                error table (-max-error gates the exit), and extrapolate
                batch times to the unprofiled p3/V100 transfer targets;
                -train prices a training job (samples × epochs, forward+
                backward steps) on every type, and -train -fleet plans the
                training fleet end-to-end through the failure-aware cluster
                simulator (accepts transfer targets in the fleet spec)
  loadtest      replay a trace against the online gateway (batching, shedding,
                load-adaptive pruning) and report latency/accuracy/cost
                (-autoscale closes the cost-accuracy loop: scale out while
                the -budget allows, degrade when it binds; -chaos/-faults
                injects crashes; -max-error-rate/-max-p99 gate the exit;
                -tenants <spec.json> hosts N tenants — own ladders, SLOs,
                quotas, fair batching — on one shared fleet and reports
                per-tenant rows plus the joint placement bill;
                -shards N routes across N regional gateways by consistent
                hashing with health-aware failover — -regions, -shape,
                -origin-weights shape the hostile workload, -balance runs
                the shift-before-degrade regional loop, and the report is
                the per-region cost-accuracy frontier)
  pack          enumerate multi-tenant packings offline: which tenants share
                a pool, at which rungs — per-tenant $/M on-time, the joint
                cost-accuracy frontier, and the dedicated baseline
  spec          build a custom CNN from a spec file, cost it, sweep pruning
  serve         HTTP telemetry endpoint: /metrics, /trace, /debug/pprof/
                (-gateway mounts the live gateway at /infer; -autoscale
                adds the control plane and /autoscale/status; -tenants
                mounts the multi-tenant gateway with per-tenant
                /gateway/status rows instead)
  benchjson     convert 'go test -bench' output to a ccperf/v1 bench
                envelope (-count-aware; -sha/-benchtime/-count record
                provenance, -loadtest folds a loadtest report's macro
                numbers into the same snapshot)
  benchdiff     compare two bench envelopes with variance-aware statistics
                (-threshold, -json, -fail-on-regression gate the hot paths)

every subcommand answers -h with its own one-line usage and flags.
shared flags across run commands:
  -metrics-out <file>   write the run's metrics snapshot as JSON
  -trace-out <file>     write the run's spans as JSON (.chrome.json for
                        the Chrome trace_event format)
  -report-out <file>    write the primary result as a versioned ccperf/v1
                        JSON envelope (simulate, loadtest, predict)
  -workers <n>          exploration worker-pool size (pareto/allocate/
                        predict; default: number of CPUs)
  -faults <spec>        fault schedule (simulate, loadtest, predict -train)

see docs/TELEMETRY.md for metric names and endpoint routes,
docs/SERVING.md for the gateway architecture and loadtest usage,
docs/AUTOSCALING.md for the cost-accuracy autoscaler,
docs/MULTITENANT.md for the tenant spec format and fairness model,
docs/RESILIENCE.md for the fault-spec grammar and chaos workflows`)
}

func characterize(args []string) error {
	fs := newFlagSet("characterize", "layer time distribution, single-inference latency, batch saturation (Figures 3–5)")
	model := modelFlag(fs)
	fs.Parse(args)
	for _, id := range []string{"fig3", "fig4", "fig5"} {
		if *model == ccperf.Googlenet && id != "fig4" {
			continue // the paper characterizes layers/saturation on Caffenet
		}
		res, err := ccperf.RunExperiment(id)
		if err != nil {
			return err
		}
		fmt.Printf("== %s\n%s\n", res.Title, res.Text)
	}
	return nil
}

func sweep(ctx context.Context, args []string) error {
	fs := newFlagSet("sweep", "prune one layer 0–90% and report time/accuracy (Figures 6/7)")
	model := modelFlag(fs)
	layer := fs.String("layer", "conv2", "layer to prune")
	images := fs.Int64("images", ccperf.W50k, "inference workload size")
	instance := fs.String("instance", "p2.xlarge", "EC2 instance type")
	fs.Parse(args)

	sys, err := ccperf.NewSystem(*model)
	if err != nil {
		return err
	}
	pts, err := sys.LayerSweep(ctx, *layer, nil, *instance, *images)
	if err != nil {
		return err
	}
	tb := report.NewTable(fmt.Sprintf("%s %s on %s, %d images", *model, *layer, *instance, *images),
		"Prune (%)", "Time (min)", "Top-1 (%)", "Top-5 (%)")
	for _, p := range pts {
		tb.Row(p.Ratio*100, fmt.Sprintf("%.1f", p.Minutes), fmt.Sprintf("%.0f", p.Top1*100), fmt.Sprintf("%.0f", p.Top5*100))
	}
	fmt.Print(tb.String())
	return nil
}

func sweetspots(ctx context.Context, args []string) error {
	fs := newFlagSet("sweetspots", "largest no-accuracy-loss prune ratio per layer (Observation 1)")
	model := modelFlag(fs)
	images := fs.Int64("images", ccperf.W50k, "inference workload size")
	fs.Parse(args)

	sys, err := ccperf.NewSystem(*model)
	if err != nil {
		return err
	}
	var layers []string
	if *model == ccperf.Caffenet {
		layers = models.CaffenetConvNames()
	} else {
		layers = models.GooglenetSelectedConvNames()
	}
	spots, err := sys.SweetSpots(ctx, layers, *images)
	if err != nil {
		return err
	}
	tb := report.NewTable(fmt.Sprintf("%s sweet-spots (no accuracy loss)", *model),
		"Layer", "Max prune (%)", "Time saved (%)")
	for _, s := range spots {
		tb.Row(s.Layer, s.MaxRatio*100, fmt.Sprintf("%.1f", s.TimeSavedPct))
	}
	fmt.Print(tb.String())
	return nil
}

func requestFlags(fs *flag.FlagSet) (*int64, *float64, *float64, *int, *bool) {
	images := fs.Int64("images", ccperf.W1M, "images to infer")
	deadline := fs.Float64("deadline", 0, "time deadline in hours (0 = none)")
	budget := fs.Float64("budget", 0, "cost budget in dollars (0 = none)")
	variants := fs.Int("variants", 60, "number of pruned model variants")
	top5 := fs.Bool("top5", false, "optimize Top-5 instead of Top-1")
	return images, deadline, budget, variants, top5
}

func paretoCmd(ctx context.Context, args []string) error {
	fs := newFlagSet("pareto", "enumerate the joint space, print feasible count + Pareto frontiers (Figures 9/10)")
	model := modelFlag(fs)
	images, deadline, budget, variants, top5 := requestFlags(fs)
	workers := workersFlag(fs)
	metricsOut, traceOut := telemetryFlags(fs)
	fs.Parse(args)

	p, err := ccperf.NewPlanner(*model)
	if err != nil {
		return err
	}
	req := ccperf.Request{Images: *images, DeadlineHours: *deadline, BudgetUSD: *budget, Variants: *variants, UseTop5: *top5, Workers: *workers}
	if err := req.Validate(); err != nil {
		return err
	}
	n, tf, cf, err := p.Frontiers(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("%d feasible configurations\n\n", n)
	for _, fr := range []struct {
		name string
		pts  []ccperf.FrontierPoint
	}{{"time-accuracy", tf}, {"cost-accuracy", cf}} {
		tb := report.NewTable(fr.name+" Pareto frontier", "Accuracy (%)", "Hours", "Cost ($)", "Degree", "Config")
		for _, pt := range fr.pts {
			tb.Row(fmt.Sprintf("%.0f", pt.Accuracy*100), fmt.Sprintf("%.3f", pt.Hours), fmt.Sprintf("%.2f", pt.CostUSD), pt.Degree, pt.Config)
		}
		fmt.Println(tb.String())
	}
	return writeTelemetry(*metricsOut, *traceOut)
}

func allocate(ctx context.Context, args []string) error {
	fs := newFlagSet("allocate", "run Algorithm 1's greedy allocation under a deadline and budget")
	model := modelFlag(fs)
	images, deadline, budget, variants, top5 := requestFlags(fs)
	exhaustive := fs.Bool("exhaustive", false, "also run the brute-force baseline")
	workers := workersFlag(fs)
	metricsOut, traceOut := telemetryFlags(fs)
	fs.Parse(args)

	p, err := ccperf.NewPlanner(*model)
	if err != nil {
		return err
	}
	req := ccperf.Request{Images: *images, DeadlineHours: *deadline, BudgetUSD: *budget, Variants: *variants, UseTop5: *top5, Workers: *workers}
	if err := req.Validate(); err != nil {
		return err
	}
	plan, err := p.Allocate(ctx, req)
	if err != nil {
		return err
	}
	printPlan("Algorithm 1 (TAR/CAR greedy)", plan)
	if *exhaustive {
		best, err := p.AllocateExhaustive(ctx, req)
		if err != nil {
			return err
		}
		printPlan("Exhaustive baseline", best)
	}
	return writeTelemetry(*metricsOut, *traceOut)
}

func printPlan(name string, pl ccperf.Plan) {
	if !pl.Found {
		fmt.Printf("%s: no feasible allocation (%d model evaluations)\n", name, pl.Ops)
		return
	}
	fmt.Printf("%s:\n  degree : %s (Top-1 %.0f%%, Top-5 %.0f%%)\n  config : %s\n  time   : %.3f h\n  cost   : $%.2f\n  evals  : %d\n",
		name, pl.Degree, pl.Top1*100, pl.Top5*100, pl.Config, pl.Hours, pl.CostUSD, pl.Ops)
}

func tables(args []string) error {
	fs := newFlagSet("tables", "print Table 1 (Caffenet layers) and Table 3 (EC2 instance types)")
	fs.Parse(args)
	for _, id := range []string{"table1", "table3"} {
		res, err := ccperf.RunExperiment(id)
		if err != nil {
			return err
		}
		fmt.Printf("== %s\n%s\n", res.Title, res.Text)
	}
	return nil
}

// compressCmd demonstrates the Section 2.1 companion techniques on the
// empirically trained network: quantization bit widths and weight-sharing
// codebook sizes versus memory footprint and measured accuracy.
func compressCmd(args []string) error {
	fs := newFlagSet("compress", "quantization / weight-sharing memory-accuracy table (Section 2.1)")
	fs.Parse(args)

	shape := nn.Shape{C: 1, H: 16, W: 16}
	ds, err := dataset.Synthetic(dataset.Config{
		Classes: 10, PerClass: 60, Shape: shape, Noise: 1.2, Shift: 2, Seed: 11,
	})
	if err != nil {
		return err
	}
	tr, val := ds.Split(0.75)
	model, err := train.New(train.Config{Input: shape, Conv1: 8, Conv2: 16, Classes: 10, Seed: 12})
	if err != nil {
		return err
	}
	if _, err := model.Train(tr, train.DefaultOpts()); err != nil {
		return err
	}
	base, _, err := model.Evaluate(val, 3)
	if err != nil {
		return err
	}
	w1, _ := model.ConvWeights(1)
	w2, _ := model.ConvWeights(2)
	fullBytes := int64(4 * (len(w1.Data) + len(w2.Data)))
	fmt.Printf("trained small CNN: Top-1 %.0f%%, conv weights %d bytes fp32\n\n", base*100, fullBytes)

	qt := report.NewTable("Quantization (both conv layers)", "Bits", "Weight bytes", "vs fp32", "Top-1 (%)", "Speedup on K80/M60")
	for _, bits := range []int{16, 8, 4, 2, 1} {
		c := model.Clone()
		for layer := 1; layer <= 2; layer++ {
			w, _ := c.ConvWeights(layer)
			if err := compress.Quantize(w, bits); err != nil {
				return err
			}
		}
		a, _, err := c.Evaluate(val, 3)
		if err != nil {
			return err
		}
		bytes := compress.QuantizedBytes(w1, bits) + compress.QuantizedBytes(w2, bits)
		qt.Row(bits, bytes, fmt.Sprintf("%.1f%%", float64(bytes)/float64(fullBytes)*100),
			fmt.Sprintf("%.0f", a*100),
			fmt.Sprintf("%.0fx (no low-precision hw)", compress.TimeSpeedup(bits, false)))
	}
	fmt.Println(qt.String())

	st := report.NewTable("Weight sharing (k-means codebook, both conv layers)", "k", "Weight bytes", "vs fp32", "Top-1 (%)")
	for _, k := range []int{64, 32, 16, 8, 4} {
		c := model.Clone()
		for layer := 1; layer <= 2; layer++ {
			w, _ := c.ConvWeights(layer)
			if _, err := compress.WeightShare(w, k, 20); err != nil {
				return err
			}
		}
		a, _, err := c.Evaluate(val, 3)
		if err != nil {
			return err
		}
		bytes := compress.SharedBytes(w1, k) + compress.SharedBytes(w2, k)
		st.Row(k, bytes, fmt.Sprintf("%.1f%%", float64(bytes)/float64(fullBytes)*100), fmt.Sprintf("%.0f", a*100))
	}
	fmt.Println(st.String())
	fmt.Println("Note: per the paper (Section 2.1), these save memory; on the K80/M60")
	fmt.Println("generation there is no low-precision speedup, so pruning remains the")
	fmt.Println("technique that converts accuracy into execution time and cost.")
	return nil
}

// empiricalCmd prints the trained-and-really-pruned accuracy sweep.
func empiricalCmd(args []string) error {
	fs := newFlagSet("empirical", "prune a really trained CNN and report measured accuracy")
	fs.Parse(args)
	res, err := ccperf.RunExperiment("empirical")
	if err != nil {
		return err
	}
	fmt.Printf("== %s\n%s", res.Title, res.Text)
	return nil
}

// simulateCmd runs a 24-hour discrete-event simulation of a fleet serving
// a request trace at a chosen degree of pruning, optionally under an
// injected fault schedule (preemptions, stragglers).
func simulateCmd(ctx context.Context, args []string) error {
	fs := newFlagSet("simulate", "discrete-event day simulation of a fleet serving a trace")
	model := modelFlag(fs)
	fleetSpec := fs.String("fleet", "3xp2.xlarge", "fleet, e.g. \"2xp2.xlarge+1xg3.4xlarge\"")
	daily := fs.Int64("daily", 3_500_000, "photos per day")
	pattern := fs.String("pattern", "bursty", "arrival pattern: uniform, diurnal, bursty")
	chunk := fs.Int64("chunk", 20_000, "images per job")
	slack := fs.Float64("slack", 0.5, "per-job deadline as a fraction of the window")
	degreeSpec := fs.String("degree", "", "degree of pruning, e.g. \"conv1@30+conv2@50\" (empty = unpruned)")
	seed := fs.Int64("seed", 9, "trace seed")
	faultSpec := faultsFlag(fs, "preempt@0:3600,slow@1:1800+900x2.5,seed=7")
	retryBudget := fs.Int("retry-budget", 0, "re-dispatches per interrupted job (0 = default 2, negative = none)")
	reportOut := reportOutFlag(fs)
	metricsOut, traceOut := telemetryFlags(fs)
	fs.Parse(args)

	pat, err := parsePattern(*pattern)
	if err != nil {
		return err
	}
	faults, err := fault.ParseSchedule(*faultSpec)
	if err != nil {
		return err
	}
	trace, err := workload.Generate(workload.Config{
		Pattern: pat, DailyTotal: *daily, Windows: 24, Seed: *seed,
	})
	if err != nil {
		return err
	}
	cfg, err := cloud.ParseConfig(*fleetSpec)
	if err != nil {
		return err
	}
	degree, err := prune.ParseDegree(*degreeSpec)
	if err != nil {
		return err
	}
	sys, err := ccperf.NewSystem(*model)
	if err != nil {
		return err
	}
	jobs := cluster.JobsFromWindows(trace.Windows, 3600, *chunk, *slack)
	rcfg := cluster.ConfigFor(sys.Predictor(), degree, cfg.Instances, 24*3600)
	rcfg.Faults = faults
	rcfg.RetryBudget = *retryBudget
	res, err := cluster.Run(ctx, rcfg, jobs)
	if err != nil {
		return err
	}
	fmt.Printf("trace   : %s, %d photos (%d jobs), peak hour %d\n", pat, trace.Total(), len(jobs), trace.Peak())
	fmt.Printf("fleet   : %s at degree %s\n", cfg.Label(), degree.Label())
	fmt.Printf("latency : p50 %.1f min, p95 %.1f min, p99 %.1f min, max %.1f min\n",
		res.P50Response/60, res.P95Response/60, res.P99Response/60, res.MaxResponse/60)
	fmt.Printf("misses  : %d of %d jobs\n", res.Misses, len(res.Jobs))
	fmt.Printf("util    : %.0f%% average\n", res.AverageUtilization()*100)
	fmt.Printf("cost    : $%.2f for the 24 h rental\n", res.Cost)
	if len(faults.Events) > 0 {
		fmt.Printf("faults  : %d preemptions, %d retries, %d failed jobs, %.0f s wasted\n",
			res.Preemptions, res.Retries, res.FailedJobs, res.WastedSeconds)
		fmt.Printf("goodput : %.0f img/s finished (%d images), $%.2f per million images\n",
			res.Goodput, res.FinishedImages, res.CostPerMillionImages())
	}
	if *reportOut != "" {
		if err := report.WriteEnvelopeFile(*reportOut, report.KindSimulate, res); err != nil {
			return fmt.Errorf("report-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "simulate: report → %s\n", *reportOut)
	}
	return writeTelemetry(*metricsOut, *traceOut)
}

// parsePattern maps a CLI pattern name to the workload constant.
func parsePattern(name string) (workload.Pattern, error) {
	switch name {
	case "uniform":
		return workload.Uniform, nil
	case "diurnal":
		return workload.Diurnal, nil
	case "bursty":
		return workload.Bursty, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q", name)
	}
}

// parseRatios parses a comma-separated ladder spec like "0,0.5,0.9".
// Empty means the serving package's default ladder.
func parseRatios(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	ratios := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("ladder ratio %q: %w", p, err)
		}
		if r < 0 || r >= 1 {
			return nil, fmt.Errorf("ladder ratio %v out of [0,1)", r)
		}
		ratios = append(ratios, r)
	}
	return ratios, nil
}

// loadtestCmd replays a compressed-day trace open-loop against an
// in-process serving gateway (dynamic batching, bounded admission,
// load-adaptive pruning) and prints the latency/accuracy/cost report.
func loadtestCmd(args []string) error {
	fs := newFlagSet("loadtest", "replay a compressed-day trace against the online gateway and report latency/accuracy/cost")
	requests := fs.Int64("requests", 2000, "total requests replayed")
	duration := fs.Duration("duration", 10*time.Second, "wall-clock replay length (the whole trace compresses into it)")
	pattern := fs.String("pattern", "bursty", "arrival pattern: uniform, diurnal, bursty")
	windows := fs.Int("windows", 12, "windows in the trace")
	seed := fs.Int64("seed", 9, "trace and arrival seed")
	replicas := fs.Int("replicas", 0, "initial replica batchers (0 = 2, or -min-replicas with -autoscale)")
	queueCap := fs.Int("queue", 0, "admission queue bound (0 = 64×replicas)")
	maxBatch := fs.Int("max-batch", 8, "dynamic batch size cap")
	batchTimeout := fs.Duration("batch-timeout", 2*time.Millisecond, "longest wait to fill a batch")
	slo := fs.Duration("slo", 50*time.Millisecond, "p99 latency objective the control plane defends")
	deadline := fs.Duration("deadline", 0, "per-request deadline (0 = none)")
	cooldown := fs.Duration("cooldown", 500*time.Millisecond, "idle tail so the controller can restore accuracy")
	ladderSpec := fs.String("ladder", "", "comma-separated prune ratios, e.g. 0,0.5,0.9 (default 0,0.3,0.5,0.7,0.9)")
	instance := fs.String("instance", "p2.xlarge", "instance type pricing each replica")
	autoscaleOn := fs.Bool("autoscale", false, "run the cost-accuracy autoscaler: replicas scale in [-min-replicas,-max-replicas] under -budget; the ladder degrades only when the budget binds")
	budget := fs.Float64("budget", 8, "fleet budget in $/hr (with -autoscale; 0 = none)")
	minReplicas := fs.Int("min-replicas", 1, "autoscale floor (with -autoscale)")
	maxReplicas := fs.Int("max-replicas", 8, "autoscale ceiling (with -autoscale)")
	autoscaleInterval := fs.Duration("autoscale-interval", 100*time.Millisecond, "autoscale control tick (with -autoscale)")
	warmup := fs.Duration("warmup", 0, "boot delay for replicas added at runtime (with -autoscale)")
	maxP99 := fs.Duration("max-p99", 0, "exit non-zero when the measured p99 exceeds this (0 = no gate)")
	faultSpec := faultsFlag(fs, "crash@0:2+3,err:0.02,seed=7")
	chaos := fs.Bool("chaos", false, "inject a canned seeded chaos schedule (crash replica 0 for the middle third of the run, plus a 2% error rate)")
	maxErrorRate := fs.Float64("max-error-rate", 1, "exit non-zero when (shed+expired+faulted)/submitted exceeds this fraction")
	tenantsSpec := fs.String("tenants", "", "tenant spec file: host N ladders with per-tenant SLOs/quotas on one shared fleet (see docs/MULTITENANT.md; each tenant replays its own offered_qps Poisson load, so -requests/-pattern are ignored)")
	shards := fs.Int("shards", 0, "route across N sharded gateways spread over -regions (consistent hashing, health-aware regional failover; -pattern is replaced by -shape; see docs/RESILIENCE.md)")
	regionsSpec := fs.String("regions", "us-west,us-east", "comma-separated regions hosting the shards round-robin (with -shards)")
	shapeSpec := fs.String("shape", "", "composed arrival shape, e.g. \"diurnal:0.6@0.75,flash:0.5+0.05+0.2x4\" (with -shards; empty = uniform)")
	originWeights := fs.String("origin-weights", "", "comma-separated request-origin skew across -regions (with -shards; empty = uniform)")
	originCorr := fs.Float64("origin-corr", 0, "Markov stickiness of consecutive request origins in [0,1) (with -shards)")
	balance := fs.Bool("balance", false, "run the regional balancer: shift load toward cheap healthy regions before degrading accuracy (with -shards)")
	balanceInterval := fs.Duration("balance-interval", 100*time.Millisecond, "regional balancer control tick (with -shards -balance)")
	reportOut := reportOutFlag(fs)
	metricsOut, traceOut := telemetryFlags(fs)
	fs.Parse(args)

	pat, err := parsePattern(*pattern)
	if err != nil {
		return err
	}
	faults, err := fault.ParseSchedule(*faultSpec)
	if err != nil {
		return err
	}
	if *chaos && len(faults.Events) == 0 {
		third := duration.Seconds() / 3
		faults = &fault.Schedule{Seed: *seed, Events: []fault.Event{
			{Kind: fault.Crash, Target: 0, At: third, Duration: third},
			{Kind: fault.Errors, Target: fault.AllTargets, Rate: 0.02},
		}}
	}
	if *shards > 0 {
		if *tenantsSpec != "" {
			return fmt.Errorf("loadtest: -shards and -tenants are mutually exclusive")
		}
		if *autoscaleOn {
			return fmt.Errorf("loadtest: -shards replaces -autoscale with the regional balancer; use -balance")
		}
		return shardLoadtest(shardLoadtestOpts{
			shards:       *shards,
			regionsSpec:  *regionsSpec,
			requests:     *requests,
			duration:     *duration,
			seed:         *seed,
			replicas:     *replicas,
			queueCap:     *queueCap,
			maxBatch:     *maxBatch,
			batchTimeout: *batchTimeout,
			slo:          *slo,
			deadline:     *deadline,
			cooldown:     *cooldown,
			ladderSpec:   *ladderSpec,
			instance:     *instance,
			faults:       faults,
			shapeSpec:    *shapeSpec,
			originSpec:   *originWeights,
			originCorr:   *originCorr,
			balance:      *balance,
			interval:     *balanceInterval,
			maxP99:       *maxP99,
			maxErrorRate: *maxErrorRate,
			reportOut:    *reportOut,
			metricsOut:   *metricsOut,
			traceOut:     *traceOut,
		})
	}
	if *tenantsSpec != "" {
		return tenantLoadtest(tenantLoadtestOpts{
			specPath:     *tenantsSpec,
			duration:     *duration,
			seed:         *seed,
			cooldown:     *cooldown,
			replicas:     *replicas,
			maxBatch:     *maxBatch,
			batchTimeout: *batchTimeout,
			instance:     *instance,
			faults:       faults,
			autoscale:    *autoscaleOn,
			budget:       *budget,
			minReplicas:  *minReplicas,
			maxReplicas:  *maxReplicas,
			interval:     *autoscaleInterval,
			warmup:       *warmup,
			maxP99:       *maxP99,
			maxErrorRate: *maxErrorRate,
			reportOut:    *reportOut,
			metricsOut:   *metricsOut,
			traceOut:     *traceOut,
		})
	}
	trace, err := workload.Generate(workload.Config{
		Pattern: pat, DailyTotal: *requests, Windows: *windows, Seed: *seed,
	})
	if err != nil {
		return err
	}
	ratios, err := parseRatios(*ladderSpec)
	if err != nil {
		return err
	}

	opts := []ccperf.Option{
		ccperf.WithGateway(),
		ccperf.WithReplicas(*replicas),
		ccperf.WithQueueCap(*queueCap),
		ccperf.WithMaxBatch(*maxBatch),
		ccperf.WithBatchTimeout(*batchTimeout),
		ccperf.WithSLO(*slo),
		ccperf.WithDeadline(*deadline),
		ccperf.WithInstance(*instance),
	}
	if len(ratios) > 0 {
		opts = append(opts, ccperf.WithLadder(ratios...))
	}
	if len(faults.Events) > 0 {
		opts = append(opts, ccperf.WithInjector(faults))
	}
	if *autoscaleOn {
		opts = append(opts,
			ccperf.WithAutoscale(*budget, *minReplicas, *maxReplicas),
			ccperf.WithAutoscaleInterval(*autoscaleInterval),
			ccperf.WithWarmup(*warmup))
	}
	st, err := ccperf.Open(ccperf.Caffenet, opts...)
	if err != nil {
		return err
	}
	g := st.Gateway()
	st.Start()
	rep, err := serving.RunLoad(g, serving.LoadConfig{
		Trace:    trace,
		Duration: *duration,
		Seed:     *seed,
		Deadline: *deadline,
		Cooldown: *cooldown,
	})
	st.Close()
	if err != nil {
		return err
	}
	resolved := g.Config()
	inst := st.Instance()
	fmt.Printf("trace    : %s, %d requests over %d windows in %s (peak window %d)\n",
		pat, trace.Total(), len(trace.Windows), *duration, trace.Peak())
	fmt.Printf("gateway  : %d initial replicas × batch ≤%d, queue %d, SLO %s, ladder %d variants\n",
		resolved.Replicas, resolved.MaxBatch, resolved.QueueCap, resolved.SLO, len(resolved.Ladder))
	if len(faults.Events) > 0 {
		fmt.Printf("chaos    : %s\n", faults.String())
	}
	fmt.Print(rep.String())

	var asStatus *autoscale.Status
	if as := st.Autoscaler(); as != nil {
		s := as.Status()
		asStatus = &s
		fmt.Printf("autoscale: %d ticks: %d scale-outs, %d scale-ins, %d degrades, %d restores\n",
			s.Ticks, s.ScaleOuts, s.ScaleIns, s.Degrades, s.Restores)
		fmt.Printf("fleet    : %d replicas final (allowed %d–%d), rung %d; last: %s\n",
			s.Replicas, *minReplicas, *maxReplicas, s.Variant, s.LastDecision.Reason)
		fmt.Printf("cost     : $%.4f realized (%.1f replica-seconds of %s; budget $%.2f/h)\n",
			s.Cost, s.ReplicaSeconds, inst.Name, s.BudgetPerHour)
	} else {
		cost := inst.PricePerSecond() * rep.WallSeconds * float64(resolved.Replicas)
		fmt.Printf("cost     : $%.4f (%d×%s for %.2f s; $%.2f/h fleet)\n",
			cost, resolved.Replicas, inst.Name, rep.WallSeconds,
			inst.PricePerHour*float64(resolved.Replicas))
	}

	if *reportOut != "" {
		payload := struct {
			Report    *serving.Report   `json:"report"`
			Gateway   serving.Stats     `json:"gateway"`
			Autoscale *autoscale.Status `json:"autoscale,omitempty"`
		}{rep, g.Stats(), asStatus}
		if err := report.WriteEnvelopeFile(*reportOut, report.KindLoadtest, payload); err != nil {
			return fmt.Errorf("report-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "loadtest: report → %s\n", *reportOut)
	}
	if err := writeTelemetry(*metricsOut, *traceOut); err != nil {
		return err
	}

	// Exit gates, in order of severity: error rate, latency, budget.
	if rate := rep.ErrorRate(); rate > *maxErrorRate {
		return fmt.Errorf("loadtest: error rate %.2f%% exceeds -max-error-rate %.2f%%",
			rate*100, *maxErrorRate*100)
	}
	if *maxP99 > 0 && rep.P99MS > maxP99.Seconds()*1000 {
		return fmt.Errorf("loadtest: p99 %.1fms exceeds -max-p99 %s", rep.P99MS, *maxP99)
	}
	if asStatus != nil && *budget > 0 {
		// The realized spend may not exceed the hourly budget pro-rated over
		// the wall clock (5% slack covers the final partial tick).
		allowed := *budget / 3600 * rep.WallSeconds * 1.05
		if asStatus.Cost > allowed {
			return fmt.Errorf("loadtest: realized cost $%.4f exceeds the $%.2f/h budget over %.2fs ($%.4f allowed)",
				asStatus.Cost, *budget, rep.WallSeconds, allowed)
		}
	}
	return nil
}

// serveCmd exposes the live telemetry surface. With -demo it first runs a
// small joint-space enumeration so the endpoint has data to show; with
// -gateway it also starts an inference gateway and mounts its /infer and
// /gateway/status routes on the same listener.
func serveCmd(ctx context.Context, args []string) error {
	fs := newFlagSet("serve", "HTTP telemetry endpoint: /metrics, /trace, /debug/pprof/ (-gateway adds /infer, -autoscale adds /autoscale/status)")
	addr := fs.String("addr", ":8080", "listen address")
	model := modelFlag(fs)
	demo := fs.Bool("demo", false, "run a small pareto enumeration first to populate metrics")
	gateway := fs.Bool("gateway", false, "mount the online inference gateway at /infer and /gateway/status")
	replicas := fs.Int("replicas", 0, "gateway replica batchers (0 = 2, or -min-replicas with -autoscale)")
	slo := fs.Duration("slo", 50*time.Millisecond, "gateway p99 latency objective (with -gateway)")
	ladderSpec := fs.String("ladder", "", "gateway prune-ratio ladder, e.g. 0,0.5,0.9 (with -gateway)")
	autoscaleOn := fs.Bool("autoscale", false, "run the cost-accuracy autoscaler and mount /autoscale/status (implies -gateway)")
	budget := fs.Float64("budget", 8, "fleet budget in $/hr (with -autoscale; 0 = none)")
	minReplicas := fs.Int("min-replicas", 1, "autoscale floor (with -autoscale)")
	maxReplicas := fs.Int("max-replicas", 8, "autoscale ceiling (with -autoscale)")
	instance := fs.String("instance", "p2.xlarge", "instance type pricing each replica (with -autoscale)")
	tenantsSpec := fs.String("tenants", "", "tenant spec file: mount the multi-tenant gateway instead (per-tenant /gateway/status rows; -autoscale adds the joint scaler)")
	fs.Parse(args)

	if *demo {
		p, err := ccperf.NewPlanner(*model)
		if err != nil {
			return err
		}
		if _, _, _, err := p.Frontiers(ctx, ccperf.Request{Images: ccperf.W1M, DeadlineHours: 0.63}); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "serve: demo enumeration done, metrics populated")
	}
	handler := telemetry.Handler(nil, nil)
	if *tenantsSpec != "" {
		h, err := mountTenantGateway(*model, *tenantsSpec, *instance, *replicas,
			*autoscaleOn, *budget, *minReplicas, *maxReplicas, handler)
		if err != nil {
			return err
		}
		handler = h
	} else if *gateway || *autoscaleOn {
		ratios, err := parseRatios(*ladderSpec)
		if err != nil {
			return err
		}
		opts := []ccperf.Option{
			ccperf.WithGateway(),
			ccperf.WithReplicas(*replicas),
			ccperf.WithSLO(*slo),
			ccperf.WithInstance(*instance),
		}
		if len(ratios) > 0 {
			opts = append(opts, ccperf.WithLadder(ratios...))
		}
		if *autoscaleOn {
			opts = append(opts, ccperf.WithAutoscale(*budget, *minReplicas, *maxReplicas))
		}
		st, err := ccperf.Open(*model, opts...)
		if err != nil {
			return err
		}
		st.Start()
		g := st.Gateway()
		mux := http.NewServeMux()
		mux.Handle("/infer", serving.Handler(g))
		mux.Handle("/gateway/status", serving.Handler(g))
		if as := st.Autoscaler(); as != nil {
			mux.Handle("/autoscale/status", autoscale.Handler(as))
			fmt.Fprintf(os.Stderr, "serve: autoscaler up (%d–%d replicas, $%.2f/h budget, %s ticks)\n",
				*minReplicas, *maxReplicas, *budget, as.Interval())
		}
		mux.Handle("/", handler)
		handler = mux
		fmt.Fprintf(os.Stderr, "serve: gateway up (%d replicas, %d-variant ladder, SLO %s)\n",
			g.Config().Replicas, len(g.Config().Ladder), g.Config().SLO)
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s (/metrics, /trace, /debug/pprof/, /debug/vars)\n", *addr)
	return http.ListenAndServe(*addr, handler)
}

// benchjsonCmd converts `go test -bench` output (stdin or -in) into a
// sample-preserving ccperf/v1 bench envelope — run the benchmarks with
// `-count N` and every repetition survives as a separate sample, which is
// what benchdiff's variance statistics need:
//
//	go test -run - -bench . -benchtime 1x -count 3 | ccperf benchjson -sha "$(git rev-parse --short HEAD)" -count 3 -out BENCH_7.json
func benchjsonCmd(args []string) error {
	fs := newFlagSet("benchjson", "convert 'go test -bench' output to a ccperf/v1 bench envelope")
	in := fs.String("in", "", "bench output file (default stdin)")
	out := fs.String("out", "", "output JSON file (default stdout)")
	sha := fs.String("sha", "", "git commit the benchmarks ran at (envelope meta)")
	benchtime := fs.String("benchtime", "", "-benchtime the runs used (envelope meta)")
	count := fs.Int("count", 0, "-count repetitions per benchmark (envelope meta)")
	note := fs.String("note", "", "free-form provenance note (envelope meta)")
	loadtest := fs.String("loadtest", "", "loadtest report envelope whose throughput/p99/stage numbers to fold in as Loadtest pseudo-benchmarks")
	fs.Parse(args)

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	results, err := telemetry.ParseBench(r)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines found")
	}
	if *loadtest != "" {
		macro, err := loadtestBenchResults(*loadtest)
		if err != nil {
			return err
		}
		results = append(results, macro...)
	}
	set := telemetry.BenchSet{
		UnixNano: time.Now().UnixNano(),
		Meta: telemetry.BenchMeta{
			GitSHA:    *sha,
			Benchtime: *benchtime,
			Count:     *count,
			Note:      *note,
		},
		Benchmarks: telemetry.CollectBench(results),
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := report.WriteEnvelope(w, report.KindBench, set); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks (%d result lines)\n", len(set.Benchmarks), len(results))
	return nil
}

// loadtestBenchResults reads a loadtest report envelope and re-expresses
// its macro numbers as pseudo-benchmark results, so the committed bench
// trajectory tracks the calibrated serving path (throughput, tail latency,
// per-stage attribution) alongside microbenchmarks.
func loadtestBenchResults(path string) ([]telemetry.BenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	env, err := report.ReadEnvelope(f)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	var payload struct {
		Report *serving.Report `json:"report"`
	}
	if err := env.Decode(report.KindLoadtest, &payload); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	rep := payload.Report
	if rep == nil {
		return nil, fmt.Errorf("benchjson: %s: loadtest envelope has no report", path)
	}
	results := []telemetry.BenchResult{{
		Name:       "Loadtest",
		Iterations: int64(rep.Submitted),
		Values: map[string]float64{
			"req/s":  rep.Throughput,
			"p50-ms": rep.P50MS,
			"p99-ms": rep.P99MS,
		},
	}}
	if s := rep.Stages; s != nil {
		for _, st := range []struct {
			name string
			sum  serving.StageSummary
		}{
			{"queue_wait", s.QueueWait},
			{"batch_assembly", s.BatchAssembly},
			{"nn_forward", s.NNForward},
		} {
			results = append(results, telemetry.BenchResult{
				Name:       "Loadtest/stage=" + st.name,
				Iterations: st.sum.Count,
				Values: map[string]float64{
					"mean-ms": st.sum.MeanMS,
					"p99-ms":  st.sum.P99MS,
				},
			})
		}
	}
	return results, nil
}

// benchdiffCmd compares two bench envelopes and optionally fails the run —
// the regression gate scripts/check.sh and CI put in front of the
// committed BENCH_<n>.json baseline:
//
//	ccperf benchdiff -threshold 0.5 -fail-on-regression BENCH_6.json out/bench.json
func benchdiffCmd(args []string) error {
	fs := newFlagSet("benchdiff", "compare two ccperf/v1 bench envelopes with variance-aware statistics")
	threshold := fs.Float64("threshold", 0.10, "relative delta (fraction) below which a change is never a regression")
	gatePat := fs.String("gate", benchdiff.DefaultGatePattern, "regexp of hot-path benchmarks whose regressions are fatal")
	jsonOut := fs.Bool("json", false, "emit a ccperf/v1 benchdiff envelope instead of the text table")
	failOn := fs.Bool("fail-on-regression", false, "exit non-zero when a gated benchmark regressed (or vanished)")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("benchdiff: want exactly two bench envelopes, got %d args (usage: ccperf benchdiff [flags] <old.json> <new.json>)", len(rest))
	}
	gate, err := regexp.Compile(*gatePat)
	if err != nil {
		return fmt.Errorf("benchdiff: bad -gate: %w", err)
	}
	rep, err := benchdiff.CompareFiles(rest[0], rest[1], benchdiff.Options{
		Threshold: *threshold,
		Gate:      gate,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := report.WriteEnvelope(os.Stdout, report.KindBenchdiff, rep); err != nil {
			return err
		}
	} else if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	if *failOn && rep.HasRegressions() {
		return fmt.Errorf("benchdiff: %d gated regression(s): %s",
			len(rep.Regressions)+len(rep.MissingGated),
			strings.Join(append(append([]string{}, rep.Regressions...), rep.MissingGated...), ", "))
	}
	return nil
}

// specCmd parses a model specification file, reports its per-layer cost,
// and sweeps pruning on its heaviest layer with simulated cloud timing —
// custom architectures go through the same machinery as the paper models,
// timed by the simulator's effective-FLOPs fallback.
func specCmd(args []string) error {
	fs := newFlagSet("spec", "build a custom CNN from a spec file, cost it, sweep pruning on its heaviest layer")
	path := fs.String("file", "", "model spec file (see internal/models.ParseSpec)")
	images := fs.Int64("images", 100_000, "workload for the simulated timing")
	instance := fs.String("instance", "p2.xlarge", "EC2 instance type")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("spec: -file is required")
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	net, err := models.ParseSpec(strings.TrimSuffix(filepath.Base(*path), filepath.Ext(*path)), string(data))
	if err != nil {
		return err
	}
	if err := net.Init(1); err != nil {
		return err
	}
	inst, err := cloud.ByName(*instance)
	if err != nil {
		return err
	}
	sim := gpusim.New()

	tb := report.NewTable(fmt.Sprintf("model %q (%d parameters)", net.Name, net.Params()),
		"Layer", "Kind", "Out shape", "GFLOPs", "Params")
	var heaviest string
	var heavyFLOPs int64
	for _, lc := range net.LayerCosts() {
		tb.Row(lc.Layer.Name(), lc.Layer.Kind(), lc.Out.String(),
			fmt.Sprintf("%.3f", float64(lc.Cost.FLOPs)/1e9), lc.Cost.Params)
		if lc.Layer.Kind() == "conv" || lc.Layer.Kind() == "residual" || lc.Layer.Kind() == "inception" {
			if lc.Cost.FLOPs > heavyFLOPs {
				heavyFLOPs, heaviest = lc.Cost.FLOPs, lc.Layer.Name()
			}
		}
	}
	fmt.Println(tb.String())
	if heaviest == "" {
		return nil
	}
	// Pick the first prunable inside the heaviest block.
	target := heaviest
	if _, ok := net.PrunableByName(target); !ok {
		for _, p := range net.Prunables() {
			if strings.HasPrefix(p.Name(), heaviest) {
				target = p.Name()
				break
			}
		}
	}
	st := report.NewTable(fmt.Sprintf("pruning %s (heaviest), %d images on %s", target, *images, *instance),
		"Prune (%)", "Simulated time (s)", "Cost ($)")
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		if r > 0 {
			if err := prune.Apply(net, prune.NewDegree(target, r), prune.L1Filter); err != nil {
				return err
			}
		}
		sec, err := sim.TotalTime(gpusim.ModelRun{ModelName: net.Name, Net: net}, inst, inst.GPUs, *images)
		if err != nil {
			return err
		}
		st.Row(r*100, fmt.Sprintf("%.1f", sec), fmt.Sprintf("%.3f", sec/3600*inst.PricePerHour))
	}
	fmt.Println(st.String())
	return nil
}
