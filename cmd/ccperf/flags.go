package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ccperf"
	"ccperf/internal/telemetry"
)

// newFlagSet builds one subcommand's flag set. Every subcommand goes
// through here so -h/-help uniformly prints a one-line usage summary
// followed by the flag defaults.
func newFlagSet(name, oneLine string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ccperf %s [flags]\n  %s\n", name, oneLine)
		var n int
		fs.VisitAll(func(*flag.Flag) { n++ })
		if n > 0 {
			fmt.Fprintln(fs.Output(), "\nflags:")
			fs.PrintDefaults()
		}
	}
	return fs
}

// Shared flag helpers: subcommands spell common knobs identically by
// registering them through these, not ad hoc.

func modelFlag(fs *flag.FlagSet) *string {
	return fs.String("model", ccperf.Caffenet, "model: caffenet or googlenet")
}

// faultsFlag registers -faults with a context-appropriate example spec.
func faultsFlag(fs *flag.FlagSet, example string) *string {
	return fs.String("faults", "",
		fmt.Sprintf("fault schedule, e.g. %q (see docs/RESILIENCE.md)", example))
}

func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "exploration worker-pool size (0 = number of CPUs)")
}

// reportOutFlag registers -report-out: the run's primary result as a
// versioned ccperf/v1 JSON envelope.
func reportOutFlag(fs *flag.FlagSet) *string {
	return fs.String("report-out", "", "write the run report as a ccperf/v1 JSON envelope to this file")
}

// telemetryFlags registers the artifact flags shared by the run commands.
func telemetryFlags(fs *flag.FlagSet) (metricsOut, traceOut *string) {
	metricsOut = fs.String("metrics-out", "", "write telemetry metrics snapshot JSON to this file")
	traceOut = fs.String("trace-out", "", "write telemetry span dump JSON to this file (Chrome format if it ends in .chrome.json)")
	return metricsOut, traceOut
}

// writeTelemetry dumps the process-wide registry and tracer to the
// requested artifact files, creating parent directories.
func writeTelemetry(metricsOut, traceOut string) error {
	write := func(path string, emit func(io.Writer) error) error {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if metricsOut != "" {
		if err := write(metricsOut, telemetry.Default.WriteJSON); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: metrics snapshot → %s\n", metricsOut)
	}
	if traceOut != "" {
		emit := telemetry.DefaultTracer.WriteJSON
		if strings.HasSuffix(traceOut, ".chrome.json") {
			emit = telemetry.DefaultTracer.WriteChromeTrace
		}
		if err := write(traceOut, emit); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: span dump → %s\n", traceOut)
	}
	return nil
}
