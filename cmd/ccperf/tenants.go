package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"ccperf"
	"ccperf/internal/cloud"
	"ccperf/internal/explore"
	"ccperf/internal/fault"
	"ccperf/internal/report"
	"ccperf/internal/tenant"
)

// tenantLoadtestOpts carries the loadtest flag values that apply to the
// multi-tenant path (-tenants <spec.json>).
type tenantLoadtestOpts struct {
	specPath     string
	duration     time.Duration
	seed         int64
	cooldown     time.Duration
	replicas     int
	maxBatch     int
	batchTimeout time.Duration
	instance     string
	faults       *fault.Schedule
	autoscale    bool
	budget       float64
	minReplicas  int
	maxReplicas  int
	interval     time.Duration
	warmup       time.Duration
	maxP99       time.Duration
	maxErrorRate float64
	reportOut    string
	metricsOut   string
	traceOut     string
}

// tenantLoadtest replays every tenant's own Poisson arrival process against
// one shared multi-tenant fleet and reports per-tenant latency, accuracy,
// quota rejections, and — with -autoscale — the joint placement bill
// (per-tenant attributed cost, $/million-on-time, who degraded first).
func tenantLoadtest(o tenantLoadtestOpts) error {
	specs, err := tenant.LoadSpecs(o.specPath)
	if err != nil {
		return fmt.Errorf("loadtest: -tenants: %w", err)
	}
	opts := []ccperf.Option{
		ccperf.WithTenants(specs),
		ccperf.WithReplicas(o.replicas),
		ccperf.WithMaxBatch(o.maxBatch),
		ccperf.WithBatchTimeout(o.batchTimeout),
		ccperf.WithInstance(o.instance),
	}
	if o.faults != nil && len(o.faults.Events) > 0 {
		opts = append(opts, ccperf.WithInjector(o.faults))
	}
	if o.autoscale {
		opts = append(opts,
			ccperf.WithAutoscale(o.budget, o.minReplicas, o.maxReplicas),
			ccperf.WithAutoscaleInterval(o.interval),
			ccperf.WithWarmup(o.warmup))
	}
	st, err := ccperf.Open(ccperf.Caffenet, opts...)
	if err != nil {
		return err
	}
	m := st.TenantMux()
	st.Start()
	rep, runErr := tenant.RunLoad(m, tenant.LoadConfig{
		Duration: o.duration,
		Seed:     o.seed,
		Cooldown: o.cooldown,
		Scaler:   st.TenantScaler(),
	})
	st.Close()
	if runErr != nil {
		return runErr
	}

	cfg := m.Config()
	fmt.Printf("fleet    : %d tenants sharing %d replicas × batch ≤%d (%s pricing each), %s replay\n",
		m.Registry().Len(), cfg.Replicas, cfg.MaxBatch, st.Instance().Name, o.duration)
	if o.faults != nil && len(o.faults.Events) > 0 {
		fmt.Printf("chaos    : %s\n", o.faults.String())
	}
	fmt.Print(rep.String())
	if rep.Joint == nil {
		cost := st.Instance().PricePerSecond() * m.ReplicaSeconds()
		fmt.Printf("cost     : $%.4f (%.1f replica-seconds of %s)\n",
			cost, m.ReplicaSeconds(), st.Instance().Name)
	}

	if o.reportOut != "" {
		payload := struct {
			TenantReport *tenant.Report       `json:"tenant_report"`
			Fleet        []tenant.TenantStats `json:"tenants"`
		}{rep, m.Stats()}
		if err := report.WriteEnvelopeFile(o.reportOut, report.KindLoadtest, payload); err != nil {
			return fmt.Errorf("report-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "loadtest: report → %s\n", o.reportOut)
	}
	if err := writeTelemetry(o.metricsOut, o.traceOut); err != nil {
		return err
	}

	// Exit gates mirror the single-tenant loadtest, but both latency and
	// error rate gate on the fleet's weakest tenant — a mean would let a
	// noisy neighbor hide a starved one.
	if rate := rep.ErrorRate(); rate > o.maxErrorRate {
		return fmt.Errorf("loadtest: worst tenant error rate %.2f%% exceeds -max-error-rate %.2f%%",
			rate*100, o.maxErrorRate*100)
	}
	if o.maxP99 > 0 {
		limit := o.maxP99.Seconds() * 1000
		for i := range rep.Tenants {
			if t := &rep.Tenants[i]; t.P99MS > limit {
				return fmt.Errorf("loadtest: tenant %s p99 %.1fms exceeds -max-p99 %s", t.Name, t.P99MS, o.maxP99)
			}
		}
	}
	if rep.Joint != nil && o.budget > 0 {
		allowed := o.budget / 3600 * rep.WallSeconds * 1.05
		if rep.Joint.Cost > allowed {
			return fmt.Errorf("loadtest: realized cost $%.4f exceeds the $%.2f/h budget over %.2fs ($%.4f allowed)",
				rep.Joint.Cost, o.budget, rep.WallSeconds, allowed)
		}
	}
	return nil
}

// mountTenantGateway opens the multi-tenant stack for `serve -tenants` and
// mounts its /infer and /gateway/status routes in front of the fallback
// telemetry handler. The stack runs for the life of the process.
func mountTenantGateway(model, specPath, instance string, replicas int, autoscaleOn bool, budget float64, minReplicas, maxReplicas int, fallback http.Handler) (http.Handler, error) {
	specs, err := tenant.LoadSpecs(specPath)
	if err != nil {
		return nil, fmt.Errorf("serve: -tenants: %w", err)
	}
	opts := []ccperf.Option{
		ccperf.WithTenants(specs),
		ccperf.WithReplicas(replicas),
		ccperf.WithInstance(instance),
	}
	if autoscaleOn {
		opts = append(opts, ccperf.WithAutoscale(budget, minReplicas, maxReplicas))
	}
	st, err := ccperf.Open(model, opts...)
	if err != nil {
		return nil, err
	}
	st.Start()
	m := st.TenantMux()
	h := tenant.Handler(m, st.TenantScaler())
	hmux := http.NewServeMux()
	hmux.Handle("/infer", h)
	hmux.Handle("/gateway/status", h)
	hmux.Handle("/", fallback)
	if sc := st.TenantScaler(); sc != nil {
		fmt.Fprintf(os.Stderr, "serve: joint scaler up (%d–%d replicas, $%.2f/h budget, %s ticks)\n",
			minReplicas, maxReplicas, budget, sc.Interval())
	}
	fmt.Fprintf(os.Stderr, "serve: multi-tenant gateway up (%d tenants sharing %d replicas; per-tenant rows at /gateway/status)\n",
		m.Registry().Len(), m.ReplicaCount())
	return hmux, nil
}

// packCmd enumerates multi-tenant packings offline: which tenants should
// share a pool, at which ladder rungs, reporting per-tenant
// $/million-on-time alongside the joint cost-accuracy frontier, and the
// dedicated (one pool per tenant) baseline co-location must beat.
func packCmd(ctx context.Context, args []string) error {
	fs := newFlagSet("pack", "enumerate multi-tenant packings: shared pool + per-tenant rungs, joint frontier, dedicated baseline")
	model := modelFlag(fs)
	tenantsSpec := fs.String("tenants", "", "tenant spec file (required; per tenant: ladder, images, pack_deadline_hours)")
	poolSpec := fs.String("pool", "2xp2.xlarge+1xp2.8xlarge", "candidate instance pool, e.g. \"2xp2.xlarge+1xg3.4xlarge\"")
	images := fs.Int64("images", 100_000, "per-tenant workload when a spec omits images")
	metricsOut, traceOut := telemetryFlags(fs)
	fs.Parse(args)
	if *tenantsSpec == "" {
		return fmt.Errorf("pack: -tenants is required")
	}
	specs, err := tenant.LoadSpecs(*tenantsSpec)
	if err != nil {
		return fmt.Errorf("pack: -tenants: %w", err)
	}
	reg, err := tenant.NewRegistry(specs)
	if err != nil {
		return err
	}
	pool, err := cloud.ParseConfig(*poolSpec)
	if err != nil {
		return fmt.Errorf("pack: -pool: %w", err)
	}
	sys, err := ccperf.NewSystem(*model)
	if err != nil {
		return err
	}

	demands := make([]explore.TenantDemand, 0, reg.Len())
	for _, s := range reg.Specs() {
		degrees, err := ccperf.LadderDegrees(s.Ladder)
		if err != nil {
			return fmt.Errorf("pack: tenant %s: %w", s.Name, err)
		}
		w := s.Images
		if w <= 0 {
			w = *images
		}
		demands = append(demands, explore.TenantDemand{
			Name:     s.Name,
			Degrees:  degrees,
			W:        w,
			Deadline: s.PackDeadlineHours * 3600,
		})
	}

	packs, err := explore.EnumeratePackings(ctx, sys.Predictor(), demands, pool.Instances, explore.Top1, 0)
	if err != nil {
		return err
	}
	feas := explore.FeasiblePackings(packs)
	fmt.Printf("%d packings (%d tenants × pool subsets of %s), %d feasible (every deadline met)\n\n",
		len(packs), reg.Len(), pool.Label(), len(feas))

	frontierOver := feas
	if len(frontierOver) == 0 {
		fmt.Println("no packing meets every deadline; frontier below spans the infeasible space")
		frontierOver = packs
	}
	front := explore.PackingFrontier(frontierOver)
	tb := report.NewTable("joint cost-accuracy frontier over packings",
		"Mean Top-1 (%)", "Makespan (h)", "Cost ($)", "Pool", "Per-tenant $/M on-time")
	for _, p := range front {
		perTenant := make([]string, 0, len(p.Assignments))
		for _, a := range p.Assignments {
			if a.OnTime > 0 {
				perTenant = append(perTenant, fmt.Sprintf("%s:$%.2f", a.Tenant, a.DollarsPerMillionOnTime))
			} else {
				perTenant = append(perTenant, a.Tenant+":late")
			}
		}
		tb.Row(fmt.Sprintf("%.0f", p.MeanAccuracy*100),
			fmt.Sprintf("%.3f", p.Seconds/3600),
			fmt.Sprintf("%.2f", p.Cost),
			p.Config.Label(),
			strings.Join(perTenant, " "))
	}
	fmt.Println(tb.String())

	if len(feas) > 0 {
		best := feas[0]
		for _, p := range feas[1:] {
			if p.Cost < best.Cost {
				best = p
			}
		}
		bt := report.NewTable(fmt.Sprintf("cheapest feasible packing: %s ($%.2f, %.3f h makespan)",
			best.Config.Label(), best.Cost, best.Seconds/3600),
			"Tenant", "Rung", "Top-1 (%)", "Slice (h)", "Cost ($)", "$ / M on-time")
		for _, a := range best.Assignments {
			bt.Row(a.Tenant, a.Degree.Label(), fmt.Sprintf("%.0f", a.Acc.Top1*100),
				fmt.Sprintf("%.3f", a.Seconds/3600), fmt.Sprintf("%.2f", a.Cost),
				fmt.Sprintf("%.2f", a.DollarsPerMillionOnTime))
		}
		fmt.Println(bt.String())

		dedicated, total, err := explore.DedicatedBaseline(ctx, sys.Predictor(), demands, pool.Instances, explore.Top1, 0)
		if err != nil {
			return err
		}
		dt := report.NewTable("dedicated baseline (one pool per tenant, no sharing)",
			"Tenant", "Rung", "Top-1 (%)", "Hours", "Cost ($)")
		for i, r := range dedicated {
			if !r.Found {
				dt.Row(demands[i].Name, "—", "—", "—", "infeasible alone")
				continue
			}
			dt.Row(demands[i].Name, r.Degree.Label(), fmt.Sprintf("%.0f", r.Acc.Top1*100),
				fmt.Sprintf("%.3f", r.Seconds/3600), fmt.Sprintf("%.2f", r.Cost))
		}
		fmt.Println(dt.String())
		// The fair co-location claim holds accuracy constant: the cheapest
		// feasible packing that serves every tenant at least as accurately
		// as its dedicated pick, versus the summed dedicated bills.
		var comparable explore.Packing
		haveComp := false
		for _, p := range feas {
			ok := true
			for i, a := range p.Assignments {
				if dedicated[i].Found && a.Acc.Top1+1e-9 < dedicated[i].Acc.Top1 {
					ok = false
					break
				}
			}
			if ok && (!haveComp || p.Cost < comparable.Cost) {
				comparable, haveComp = p, true
			}
		}
		if total > 0 && haveComp {
			fmt.Printf("co-location: matching dedicated accuracy, the shared pool costs $%.2f vs $%.2f dedicated (%.0f%% of the bill); degrading to the cheapest feasible packing costs $%.2f\n",
				comparable.Cost, total, comparable.Cost/total*100, best.Cost)
		}
	}
	return writeTelemetry(*metricsOut, *traceOut)
}
