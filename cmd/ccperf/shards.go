package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ccperf"
	"ccperf/internal/autoscale"
	"ccperf/internal/cloud"
	"ccperf/internal/fault"
	"ccperf/internal/prune"
	"ccperf/internal/report"
	"ccperf/internal/serving"
	"ccperf/internal/shard"
	"ccperf/internal/workload"
)

// shardLoadtestOpts carries the loadtest flag values that apply to the
// sharded multi-region path (-shards N).
type shardLoadtestOpts struct {
	shards       int
	regionsSpec  string
	requests     int64
	duration     time.Duration
	seed         int64
	replicas     int
	queueCap     int
	maxBatch     int
	batchTimeout time.Duration
	slo          time.Duration
	deadline     time.Duration
	cooldown     time.Duration
	ladderSpec   string
	instance     string
	faults       *fault.Schedule
	shapeSpec    string
	originSpec   string
	originCorr   float64
	balance      bool
	interval     time.Duration
	maxP99       time.Duration
	maxErrorRate float64
	reportOut    string
	metricsOut   string
	traceOut     string
}

// shardLoadtest replays a shaped arrival process open-loop through the
// consistent-hash router in front of N regional gateways, under any
// region-scoped fault schedule, and reports the per-region cost-accuracy
// frontier. With -balance the regional control loop also runs, shifting
// load toward cheap healthy regions before spending accuracy.
func shardLoadtest(o shardLoadtestOpts) error {
	regions, err := cloud.ParseRegions(o.regionsSpec)
	if err != nil {
		return fmt.Errorf("loadtest: -regions: %w", err)
	}
	shapes, err := parseShapes(o.shapeSpec)
	if err != nil {
		return fmt.Errorf("loadtest: -shape: %w", err)
	}
	weights, err := parseOriginWeights(o.originSpec, len(regions))
	if err != nil {
		return fmt.Errorf("loadtest: -origin-weights: %w", err)
	}
	inst, err := cloud.ByName(o.instance)
	if err != nil {
		return err
	}
	ratios, err := parseRatios(o.ladderSpec)
	if err != nil {
		return err
	}
	if len(ratios) == 0 {
		ratios = serving.DefaultLadderRatios
	}
	sys, err := ccperf.NewSystem(ccperf.Caffenet)
	if err != nil {
		return err
	}
	degrees, err := ccperf.LadderDegrees(ratios)
	if err != nil {
		return err
	}
	// One ladder, shared by every shard: nets are read-only on the
	// forward path, so the fleet costs one ladder's memory.
	ladder, err := serving.BuildLadder(context.Background(), serving.TinyNet, degrees, prune.L1Filter, sys.Predictor())
	if err != nil {
		return err
	}

	replicas := o.replicas
	if replicas <= 0 {
		replicas = 2
	}
	base := serving.Config{
		Ladder:       ladder,
		Replicas:     replicas,
		QueueCap:     o.queueCap,
		MaxBatch:     o.maxBatch,
		BatchTimeout: o.batchTimeout,
		SLO:          o.slo,
		Deadline:     o.deadline,
		// The regional balancer owns the ladder when it runs; otherwise
		// each gateway's own controller defends its SLO.
		ExternalControl: o.balance,
	}
	shards, err := shard.BuildFleet(base, o.shards, regions, o.faults)
	if err != nil {
		return err
	}
	for _, s := range shards {
		s.Gateway.Start()
		defer s.Gateway.Stop()
	}
	r, err := shard.NewRouter(shard.Config{Shards: shards})
	if err != nil {
		return err
	}
	r.Start()
	defer r.Stop()
	if o.balance {
		b, err := shard.NewBalancer(r, autoscale.RegionalPolicy{SLOSeconds: o.slo.Seconds()}, o.faults, o.interval)
		if err != nil {
			return err
		}
		b.Start()
		defer b.Stop()
	}

	rep, err := shard.RunLoad(r, shard.LoadConfig{
		Total:         o.requests,
		Shapes:        shapes,
		Duration:      o.duration,
		Seed:          o.seed,
		Deadline:      o.deadline,
		Cooldown:      o.cooldown,
		OriginWeights: weights,
		OriginCorr:    o.originCorr,
		Schedule:      o.faults,
		Instance:      inst,
	})
	if err != nil {
		return err
	}

	regionNames := make([]string, len(regions))
	for i, reg := range regions {
		regionNames[i] = reg.Name
	}
	fmt.Printf("fleet    : %d shards over %s, %d replicas × batch ≤%d each, ladder %d rungs (%s pricing)\n",
		o.shards, strings.Join(regionNames, "+"), replicas, shards[0].Gateway.Config().MaxBatch,
		len(ladder), inst.Name)
	fmt.Printf("workload : %d requests over %s, shape %s, origin corr %.2f, seed %d\n",
		o.requests, o.duration, workload.ShapeLabel(shapes), o.originCorr, o.seed)
	if o.faults != nil && len(o.faults.Events) > 0 {
		fmt.Printf("chaos    : %s\n", o.faults.String())
	}
	if o.balance {
		fmt.Println("balance  : regional shift-before-degrade loop on")
	}
	fmt.Println(rep.String())
	fmt.Print(rep.FrontierTable())

	if o.reportOut != "" {
		payload := struct {
			Report   *shard.Report  `json:"report"`
			Statuses []shard.Status `json:"shards"`
		}{rep, r.Statuses()}
		if err := report.WriteEnvelopeFile(o.reportOut, report.KindLoadtest, payload); err != nil {
			return fmt.Errorf("report-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "loadtest: report → %s\n", o.reportOut)
	}
	if err := writeTelemetry(o.metricsOut, o.traceOut); err != nil {
		return err
	}

	// Exit gates mirror the single-gateway loadtest: client-visible errors
	// first (the resilience claim — rerouted and failed-over requests are
	// not errors), then latency.
	if rate := rep.ErrorRate(); rate > o.maxErrorRate {
		return fmt.Errorf("loadtest: error rate %.2f%% exceeds -max-error-rate %.2f%%",
			rate*100, o.maxErrorRate*100)
	}
	if o.maxP99 > 0 && rep.P99MS > o.maxP99.Seconds()*1000 {
		return fmt.Errorf("loadtest: p99 %.1fms exceeds -max-p99 %s", rep.P99MS, o.maxP99)
	}
	return nil
}

// parseShapes turns the -shape spec into composed workload generators.
// Terms join with ",", and each multiplies into the arrival intensity:
//
//	diurnal[:AMP[@PEAK][xCYCLES]]   sinusoid, e.g. diurnal:0.6@0.75
//	flash:AT+RAMP+HOLDxMULT         flash crowd, e.g. flash:0.5+0.05+0.2x4
//
// All positions are trace fractions. Empty (or "uniform") means uniform
// arrivals.
func parseShapes(spec string) ([]workload.Shape, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "uniform" {
		return nil, nil
	}
	var out []workload.Shape
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		kind, rest, _ := strings.Cut(term, ":")
		switch kind {
		case "diurnal":
			s := workload.Sinusoid{Amplitude: 0.6, Peak: 0.75}
			if rest != "" {
				var err error
				if body, cyc, ok := strings.Cut(rest, "x"); ok {
					if s.Cycles, err = atof(cyc, "cycles"); err != nil {
						return nil, err
					}
					rest = body
				}
				ampStr, peakStr, hasPeak := strings.Cut(rest, "@")
				if s.Amplitude, err = atof(ampStr, "amplitude"); err != nil {
					return nil, err
				}
				if hasPeak {
					if s.Peak, err = atof(peakStr, "peak"); err != nil {
						return nil, err
					}
				}
			}
			out = append(out, s)
		case "flash":
			body, multStr, ok := strings.Cut(rest, "x")
			if !ok {
				return nil, fmt.Errorf("flash shape %q needs xMULT", term)
			}
			parts := strings.Split(body, "+")
			if len(parts) != 3 {
				return nil, fmt.Errorf("flash shape %q: want flash:AT+RAMP+HOLDxMULT", term)
			}
			var f workload.FlashCrowd
			var err error
			if f.At, err = atof(parts[0], "at"); err != nil {
				return nil, err
			}
			if f.Ramp, err = atof(parts[1], "ramp"); err != nil {
				return nil, err
			}
			if f.Hold, err = atof(parts[2], "hold"); err != nil {
				return nil, err
			}
			if f.Mult, err = atof(multStr, "mult"); err != nil {
				return nil, err
			}
			out = append(out, f)
		default:
			return nil, fmt.Errorf("unknown shape %q (want diurnal or flash)", kind)
		}
	}
	return out, nil
}

// parseOriginWeights parses the -origin-weights comma list ("" = uniform)
// and checks it matches the region count.
func parseOriginWeights(spec string, regions int) ([]float64, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != regions {
		return nil, fmt.Errorf("%d weights for %d regions", len(parts), regions)
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		w, err := atof(p, "weight")
		if err != nil {
			return nil, err
		}
		if w < 0 {
			return nil, fmt.Errorf("weight %g is negative", w)
		}
		out[i] = w
	}
	return out, nil
}

func atof(s, what string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", what, s)
	}
	return v, nil
}
