package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"ccperf"
	"ccperf/internal/cloud"
	"ccperf/internal/cluster"
	"ccperf/internal/engine"
	"ccperf/internal/fault"
	"ccperf/internal/prune"
	"ccperf/internal/report"
	"ccperf/internal/train"
)

// targetPred is one extrapolated transfer-target row of the predict report.
type targetPred struct {
	Instance     string  `json:"instance"`
	GPUs         int     `json:"gpus"`
	BatchSeconds float64 `json:"batch_seconds"`
	ImagesPerSec float64 `json:"images_per_sec"`
	USDPerM      float64 `json:"usd_per_m_images"`
}

// trainRow prices the training job on one instance type.
type trainRow struct {
	Instance    string  `json:"instance"`
	Transfer    bool    `json:"transfer"` // true when the type was never profiled
	StepSeconds float64 `json:"step_seconds"`
	EpochHours  float64 `json:"epoch_hours"`
	JobHours    float64 `json:"job_hours"`
	CostUSD     float64 `json:"cost_usd"`
	Feasible    bool    `json:"feasible"`
}

// trainPlan is the -train section of the predict report: either the
// per-instance planning table (no -fleet) or the cluster-simulated fleet
// plan (-fleet).
type trainPlan struct {
	Samples   int64      `json:"samples"`
	Epochs    int        `json:"epochs"`
	Batch     int        `json:"batch"`
	Rows      []trainRow `json:"rows,omitempty"`
	Jobs      int        `json:"jobs,omitempty"`
	Fleet     string     `json:"fleet,omitempty"`
	Makespan  float64    `json:"makespan_seconds,omitempty"`
	CostUSD   float64    `json:"cost_usd,omitempty"`
	Misses    int        `json:"misses,omitempty"`
	Failed    int        `json:"failed_jobs,omitempty"`
	Preempted int        `json:"preemptions,omitempty"`
}

// predictCmd is the transfer-prediction surface: fit roofline scaling
// factors from a calibration set, validate them with a leave-one-out
// held-out error table over the calibrated catalog, and extrapolate batch
// times to the uncalibrated p3/V100 transfer targets. With -train the same
// fitted predictor prices a training job (forward+backward steps) on every
// instance type, and with -fleet it plans the training fleet end-to-end
// through the failure-aware cluster simulator.
func predictCmd(ctx context.Context, args []string) error {
	fs := newFlagSet("predict", "fit cross-instance transfer prediction, report held-out error, extrapolate to unprofiled types")
	model := modelFlag(fs)
	fitSpec := fs.String("fit", "", "comma-separated calibration instance types (default: the full catalog)")
	degreeSpec := fs.String("degree", "", "degree of pruning, e.g. \"conv1@30+conv2@50\" (empty = unpruned)")
	maxError := fs.Float64("max-error", 0, "exit non-zero when the leave-one-out max |error| exceeds this percent (0 = no gate)")
	trainMode := fs.Bool("train", false, "price a training job (forward+backward steps) instead of inference")
	samples := fs.Int64("samples", 1_200_000, "training set size in images (with -train)")
	epochs := fs.Int("epochs", 10, "training epochs (with -train)")
	batch := fs.Int("batch", 256, "global mini-batch size per optimizer step (with -train)")
	backward := fs.Float64("backward-factor", 0, "forward+backward cost relative to the inference forward pass (0 = default 3)")
	fleetSpec := fs.String("fleet", "", "plan this training fleet through the cluster simulator, e.g. \"2xp3.2xlarge+1xp2.8xlarge\" (with -train; accepts transfer targets)")
	jobs := fs.Int("jobs", 1, "identical training jobs submitted to the fleet (with -train -fleet)")
	deadlineHours := fs.Float64("deadline-hours", 0, "per-job completion deadline in hours (with -train; 0 = none)")
	faultSpec := faultsFlag(fs, "preempt@0:3600,seed=7")
	retryBudget := fs.Int("retry-budget", 0, "re-dispatches per interrupted job (0 = default 2, negative = none)")
	workers := workersFlag(fs)
	reportOut := reportOutFlag(fs)
	metricsOut, traceOut := telemetryFlags(fs)
	fs.Parse(args)

	degree, err := prune.ParseDegree(*degreeSpec)
	if err != nil {
		return err
	}
	var calib []string
	if s := strings.TrimSpace(*fitSpec); s != "" {
		for _, n := range strings.Split(s, ",") {
			calib = append(calib, strings.TrimSpace(n))
		}
	}
	st, err := ccperf.Open(*model, ccperf.WithCalibrationSet(calib...))
	if err != nil {
		return err
	}
	defer st.Close()
	tp, err := st.Transfer(ctx)
	if err != nil {
		return err
	}
	m := tp.Model()
	fmt.Printf("model      : %s at degree %s\n", *model, degree.Label())
	fmt.Printf("fit set    : %s (reference %s)\n", strings.Join(m.Calibrated, ", "), m.RefName)
	fmt.Printf("work rate  : 1/w = %.4g·TFLOPs + %.4g·MemBW  (max fit residual %.2f%%)\n",
		m.Work.Compute, m.Work.Memory, m.Work.MaxResidualPct)
	fmt.Printf("overhead   : 1/α = %.4g·TFLOPs + %.4g·MemBW  (max fit residual %.2f%%)\n\n",
		m.Overhead.Compute, m.Overhead.Memory, m.Overhead.MaxResidualPct)

	// Leave-one-out held-out error: every catalog type predicted from a
	// fit over the other five, against the harness's measured (jittered)
	// batch times.
	rows, err := engine.LeaveOneOut(ctx, st.Predictor(), cloud.Catalog(), degree, *workers)
	if err != nil {
		return err
	}
	tb := report.NewTable("leave-one-out held-out error (each type fitted from the others)",
		"Instance", "GPUs", "Sat batch", "Meas (s)", "Pred (s)", "Err (%)", "b=1 err (%)")
	for _, r := range rows {
		tb.Row(r.Instance, r.GPUs, r.SatBatch,
			fmt.Sprintf("%.3f", r.TruthSat), fmt.Sprintf("%.3f", r.PredSat),
			fmt.Sprintf("%+.2f", r.ErrSatPct), fmt.Sprintf("%+.2f", r.ErrOnePct))
	}
	fmt.Println(tb.String())
	maxErr := engine.MaxAbsErrPct(rows)
	fmt.Printf("max held-out |error|: %.2f%%\n\n", maxErr)

	// Extrapolation to the unprofiled transfer targets.
	xt := report.NewTable("transfer targets (never profiled; roofline extrapolation)",
		"Instance", "GPUs", "Batch (s)", "img/s", "$/M images")
	var targets []targetPred
	for _, it := range cloud.TransferTargets() {
		b := m.SatPerGPU * it.GPUs
		sec, err := tp.BatchSeconds(ctx, degree, it, it.GPUs, b)
		if err != nil {
			return err
		}
		rate := float64(b) / sec
		usdPerM := 1e6 / rate * it.PricePerSecond()
		xt.Row(it.Name, it.GPUs, fmt.Sprintf("%.3f", sec), fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2f", usdPerM))
		targets = append(targets, targetPred{it.Name, it.GPUs, sec, rate, usdPerM})
	}
	fmt.Println(xt.String())

	var plan *trainPlan
	if *trainMode {
		plan = &trainPlan{Samples: *samples, Epochs: *epochs, Batch: *batch}
		cm := train.CostModel{Timer: tp, Degree: degree, Batch: *batch, BackwardFactor: *backward}
		if *fleetSpec == "" {
			err = trainTable(ctx, cm, plan, *deadlineHours)
		} else {
			err = trainFleet(ctx, tp, cm, plan, degree, *fleetSpec, *jobs, *deadlineHours, *faultSpec, *retryBudget)
		}
		if err != nil {
			return err
		}
	}

	if *reportOut != "" {
		payload := struct {
			Model      string               `json:"model"`
			Degree     string               `json:"degree"`
			Calibrated []string             `json:"calibrated"`
			Reference  string               `json:"reference"`
			Fit        engine.TransferModel `json:"fit"`
			Rows       []engine.LOORow      `json:"rows"`
			MaxErrPct  float64              `json:"max_err_pct"`
			Targets    []targetPred         `json:"targets"`
			Train      *trainPlan           `json:"train,omitempty"`
		}{*model, degree.Label(), m.Calibrated, m.RefName, m, rows, maxErr, targets, plan}
		if err := report.WriteEnvelopeFile(*reportOut, report.KindPredict, payload); err != nil {
			return fmt.Errorf("report-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "predict: report → %s\n", *reportOut)
	}
	if err := writeTelemetry(*metricsOut, *traceOut); err != nil {
		return err
	}
	if *maxError > 0 && maxErr > *maxError {
		return fmt.Errorf("predict: leave-one-out max |error| %.2f%% exceeds -max-error %.2f%%", maxErr, *maxError)
	}
	return nil
}

// trainTable prices the training job on every instance type — calibrated
// catalog and transfer targets alike — one instance at a time, filling
// plan.Rows.
func trainTable(ctx context.Context, cm train.CostModel, plan *trainPlan, deadlineHours float64) error {
	cols := []string{"Instance", "Source", "Step (s)", "Epoch (h)", "Job (h)", "Cost ($)"}
	if deadlineHours > 0 {
		cols = append(cols, fmt.Sprintf("≤%.1fh", deadlineHours))
	}
	factor := cm.BackwardFactor
	if factor <= 0 {
		factor = train.DefaultBackwardFactor
	}
	tb := report.NewTable(fmt.Sprintf("training plan: %d samples × %d epochs, batch %d (backward factor %.1f)",
		plan.Samples, plan.Epochs, plan.Batch, factor), cols...)
	tp, _ := cm.Timer.(*engine.TransferPredictor)
	for _, it := range cloud.AllTypes() {
		step, err := cm.StepSeconds(ctx, it, 0)
		if err != nil {
			return err
		}
		job, err := cm.JobSeconds(ctx, it, 0, plan.Samples, plan.Epochs)
		if err != nil {
			return err
		}
		row := trainRow{
			Instance:    it.Name,
			Transfer:    tp != nil && !tp.IsCalibrated(it.Name),
			StepSeconds: step,
			EpochHours:  job / float64(plan.Epochs) / 3600,
			JobHours:    job / 3600,
			CostUSD:     train.JobCost(job, it),
			Feasible:    deadlineHours <= 0 || job <= deadlineHours*3600,
		}
		plan.Rows = append(plan.Rows, row)
		source := "measured"
		if row.Transfer {
			source = "transfer"
		}
		cells := []any{it.Name, source,
			fmt.Sprintf("%.3f", row.StepSeconds), fmt.Sprintf("%.2f", row.EpochHours),
			fmt.Sprintf("%.2f", row.JobHours), fmt.Sprintf("%.2f", row.CostUSD)}
		if deadlineHours > 0 {
			mark := "yes"
			if !row.Feasible {
				mark = "NO"
			}
			cells = append(cells, mark)
		}
		tb.Row(cells...)
	}
	fmt.Println(tb.String())
	return nil
}

// trainFleet plans the training jobs on a concrete fleet through the
// failure-aware cluster simulator: inference rates from the transfer
// predictor, training rates from the cost model, per-second billing,
// optional fault schedule.
func trainFleet(ctx context.Context, tp *engine.TransferPredictor, cm train.CostModel, plan *trainPlan,
	degree prune.Degree, fleetSpec string, jobs int, deadlineHours float64, faultSpec string, retryBudget int) error {
	cfg, err := cloud.ParseConfigAll(fleetSpec)
	if err != nil {
		return err
	}
	faults, err := fault.ParseSchedule(faultSpec)
	if err != nil {
		return err
	}
	if jobs < 1 {
		jobs = 1
	}
	visits := plan.Samples * int64(plan.Epochs)
	js := make([]cluster.Job, jobs)
	for i := range js {
		js[i] = cluster.Job{ID: i, Images: visits, Kind: cluster.KindTraining}
		if deadlineHours > 0 {
			js[i].Deadline = deadlineHours * 3600
		}
	}
	rcfg := cluster.Config{
		Fleet:       cfg.Instances,
		Perf:        tp.Perf(degree, 0),
		TrainPerf:   cm.Perf(ctx, 0),
		Faults:      faults,
		RetryBudget: retryBudget,
	}
	res, err := cluster.Run(ctx, rcfg, js)
	if err != nil {
		return err
	}
	plan.Jobs, plan.Fleet = jobs, cfg.Label()
	plan.Makespan, plan.CostUSD = res.Makespan, res.Cost
	plan.Misses, plan.Failed, plan.Preempted = res.Misses, res.FailedJobs, res.Preemptions

	fmt.Printf("fleet plan : %d training job(s) of %d sample-visits on %s\n", jobs, visits, cfg.Label())
	fmt.Printf("makespan   : %.2f h\n", res.Makespan/3600)
	fmt.Printf("cost       : $%.2f (per-second pro-rated, revoked instances billed to revocation)\n", res.Cost)
	if deadlineHours > 0 {
		fmt.Printf("deadline   : %.1f h — %d of %d jobs missed\n", deadlineHours, res.Misses, len(res.Jobs))
	}
	if len(faults.Events) > 0 {
		fmt.Printf("faults     : %d preemptions, %d retries, %d failed jobs, %.0f s wasted\n",
			res.Preemptions, res.Retries, res.FailedJobs, res.WastedSeconds)
	}
	return nil
}
