// Command paperbench regenerates every table and figure of the paper:
//
//	paperbench -exp all            # run everything, print to stdout
//	paperbench -exp fig9           # one experiment
//	paperbench -exp all -out out/  # also write one .txt per experiment
//	paperbench -list               # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ccperf"
	"ccperf/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (see -list) or \"all\"")
	out := flag.String("out", "", "directory to write per-experiment text files")
	jsonOut := flag.Bool("json", false, "also write machine-readable .json files (requires -out)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	metricsOut := flag.String("metrics-out", "", "write the regeneration's telemetry metrics snapshot JSON to this file")
	traceOut := flag.String("trace-out", "", "write the regeneration's telemetry span dump JSON to this file")
	flag.Parse()

	if *list {
		for _, id := range ccperf.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	ids := ccperf.ExperimentIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		res, err := ccperf.RunExperiment(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		text := render(res, time.Since(start))
		fmt.Print(text)
		if *out != "" {
			path := filepath.Join(*out, res.ID+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fatal(err)
			}
			if *jsonOut {
				var buf strings.Builder
				if err := res.WriteJSON(&buf); err != nil {
					fatal(err)
				}
				if err := os.WriteFile(filepath.Join(*out, res.ID+".json"), []byte(buf.String()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
	if err := writeTelemetry(*metricsOut, *traceOut); err != nil {
		fatal(err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeTelemetry dumps the process-wide registry/tracer the experiments
// recorded into while regenerating.
func writeTelemetry(metricsOut, traceOut string) error {
	write := func(path string, emit func(f *os.File) error) error {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if metricsOut != "" {
		if err := write(metricsOut, func(f *os.File) error { return telemetry.Default.WriteJSON(f) }); err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := write(traceOut, func(f *os.File) error { return telemetry.DefaultTracer.WriteJSON(f) }); err != nil {
			return err
		}
	}
	return nil
}

func render(res *ccperf.Result, d time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s — %s (regenerated in %v)\n\n", res.ID, res.Title, d.Round(time.Millisecond))
	b.WriteString(res.Text)
	if len(res.Findings) > 0 {
		b.WriteString("\nPaper vs measured:\n")
		for _, f := range res.Findings {
			paper := f.Paper
			if paper == "" {
				paper = "(not reported)"
			}
			fmt.Fprintf(&b, "  %-34s paper: %-44s measured: %s\n", f.Name, paper, f.Measured)
		}
	}
	b.WriteString("\n")
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
