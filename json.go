package ccperf

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the experiment result (ID, title, findings and the
// rendered text) as indented JSON, for downstream tooling that wants the
// paper-vs-measured comparisons machine-readable.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("ccperf: encode result %s: %w", r.ID, err)
	}
	return nil
}

// ResultFromJSON decodes a result written by WriteJSON.
func ResultFromJSON(r io.Reader) (*Result, error) {
	var out Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("ccperf: decode result: %w", err)
	}
	return &out, nil
}
