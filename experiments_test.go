package ccperf

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"table1", "table3", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "alg1", "empirical",
		"transfer", "calibration", "sensitivity", "robustness", "joint", "faults"}
	if len(ids) != len(want) {
		t.Fatalf("%d experiments, want %d", len(ids), len(want))
	}
	for i, w := range want {
		if ids[i] != w {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], w)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// runExp caches experiment results across tests in this package run.
var expCache = map[string]*Result{}

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	if r, ok := expCache[id]; ok {
		return r
	}
	r, err := RunExperiment(id)
	if err != nil {
		t.Fatal(err)
	}
	expCache[id] = r
	return r
}

func findingValue(t *testing.T, r *Result, name string) string {
	t.Helper()
	for _, f := range r.Findings {
		if f.Name == name {
			return f.Measured
		}
	}
	t.Fatalf("%s: finding %q missing (have %+v)", r.ID, name, r.Findings)
	return ""
}

func TestAllExperimentsProduceTextAndFindings(t *testing.T) {
	for _, id := range ExperimentIDs() {
		r := runExp(t, id)
		if r.Text == "" {
			t.Errorf("%s: empty text", id)
		}
		if len(r.Findings) == 0 {
			t.Errorf("%s: no findings", id)
		}
		if r.Title == "" || r.ID != id {
			t.Errorf("%s: bad metadata %q/%q", id, r.ID, r.Title)
		}
	}
}

func TestTable1Findings(t *testing.T) {
	r := runExp(t, "table1")
	if got := findingValue(t, r, "conv1 output"); !strings.Contains(got, "55 x 55 x 96") {
		t.Errorf("conv1 = %q", got)
	}
	params := findingValue(t, r, "total parameters")
	n, err := strconv.Atoi(params)
	if err != nil || n < 55e6 || n > 65e6 {
		t.Errorf("params = %q", params)
	}
}

func TestFig3Findings(t *testing.T) {
	r := runExp(t, "fig3")
	if got := findingValue(t, r, "conv1 share"); got != "51%" {
		t.Errorf("conv1 share = %q, want 51%%", got)
	}
	if got := findingValue(t, r, "conv2 share"); got != "16%" {
		t.Errorf("conv2 share = %q, want 16%%", got)
	}
}

func TestFig4Findings(t *testing.T) {
	r := runExp(t, "fig4")
	if got := findingValue(t, r, "Caffenet 0%→90%"); !strings.HasPrefix(got, "0.09") {
		t.Errorf("caffenet latency = %q", got)
	}
	if got := findingValue(t, r, "Googlenet 0%→90%"); !strings.HasPrefix(got, "0.16") {
		t.Errorf("googlenet latency = %q", got)
	}
}

func TestFig5Findings(t *testing.T) {
	r := runExp(t, "fig5")
	if got := findingValue(t, r, "saturation point"); !strings.HasPrefix(got, "300") {
		t.Errorf("saturation = %q", got)
	}
}

func TestFig8Findings(t *testing.T) {
	r := runExp(t, "fig8")
	cases := map[string]string{
		"nonpruned": "80% Top-5",
		"conv1-2":   "70% Top-5",
		"all-conv":  "62% Top-5",
	}
	for name, frag := range cases {
		if got := findingValue(t, r, name); !strings.Contains(got, frag) {
			t.Errorf("%s = %q, want containing %q", name, got, frag)
		}
	}
}

func TestFig9Findings(t *testing.T) {
	r := runExp(t, "fig9")
	feas := findingValue(t, r, "feasible configurations")
	// Deterministic: the rescaled deadline admits 7629 configurations.
	if !strings.HasPrefix(feas, "7629") {
		t.Errorf("feasible = %q", feas)
	}
	counts := findingValue(t, r, "Pareto-optimal count")
	parts := strings.Split(counts, " / ")
	if len(parts) != 2 {
		t.Fatalf("counts = %q", counts)
	}
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 3 || n > 20 {
			t.Errorf("frontier size %q out of plausible range", p)
		}
	}
	red := findingValue(t, r, "time reduction at max accuracy")
	if pct := parsePct(t, red); pct < 30 {
		t.Errorf("time reduction = %v%%, want substantial", pct)
	}
}

func TestFig10Findings(t *testing.T) {
	r := runExp(t, "fig10")
	feas := findingValue(t, r, "feasible configurations")
	if !strings.HasPrefix(feas, "1966") {
		t.Errorf("feasible = %q", feas)
	}
	save := findingValue(t, r, "cost saving at max accuracy")
	if pct := parsePct(t, save); pct <= 0 {
		t.Errorf("cost saving = %v%%, want positive", pct)
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.Fields(s)[0], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse percent from %q", s)
	}
	return v
}

func TestFig11Findings(t *testing.T) {
	r := runExp(t, "fig11")
	if got := findingValue(t, r, "grid"); got != "30 configs" {
		t.Errorf("grid = %q", got)
	}
	if got := findingValue(t, r, "same-accuracy groups"); !strings.Contains(got, "TAR ordering verified") {
		t.Errorf("TAR check = %q", got)
	}
}

func TestFig12Findings(t *testing.T) {
	r := runExp(t, "fig12")
	ratio := findingValue(t, r, "p2:g3 CAR ratio")
	v, err := strconv.ParseFloat(ratio, 64)
	if err != nil || v < 1.5 || v > 1.8 {
		t.Errorf("CAR ratio = %q, want ~1.63", ratio)
	}
}

func TestAlg1Findings(t *testing.T) {
	r := runExp(t, "alg1")
	c := findingValue(t, r, "complexity")
	// greedy evals must be far below exhaustive's 30660.
	var greedy, exhaustive int
	if _, err := fmt.Sscanf(c, "%d vs %d", &greedy, &exhaustive); err != nil {
		t.Fatalf("complexity = %q: %v", c, err)
	}
	if exhaustive != 30660 {
		t.Errorf("exhaustive evals = %d", exhaustive)
	}
	if greedy*20 > exhaustive {
		t.Errorf("greedy evals %d not ≪ %d", greedy, exhaustive)
	}
	if got := findingValue(t, r, "solution quality"); !strings.Contains(got, "100%") {
		t.Errorf("greedy should match optimum on this input, got %q", got)
	}
}

func TestFaultsFindings(t *testing.T) {
	r := runExp(t, "faults")
	prem := findingValue(t, r, "preemption premium")
	// The revocation must register as a deadline/goodput problem: at least
	// one miss, and a strictly positive on-time cost premium.
	if !strings.Contains(prem, "misses 1 of") && !strings.Contains(prem, "misses 2 of") {
		t.Errorf("premium = %q, want a deadline miss", prem)
	}
	if strings.Contains(prem, "(+0%)") || strings.Contains(prem, "(-") {
		t.Errorf("premium = %q, want a positive on-time cost increase", prem)
	}
	if got := findingValue(t, r, "interpretation"); !strings.Contains(got, "spot refund") {
		t.Errorf("interpretation = %q", got)
	}
}

func TestEmpiricalFindings(t *testing.T) {
	r := runExp(t, "empirical")
	if got := findingValue(t, r, "sweet-spot exists"); !strings.Contains(got, "baseline") {
		t.Errorf("sweet-spot = %q", got)
	}
}
