package ccperf

import (
	"context"
	"testing"
	"time"

	"ccperf/internal/cloud"
	"ccperf/internal/prune"
	"ccperf/internal/serving"
	"ccperf/internal/tenant"
)

func TestOpenOfflineOnly(t *testing.T) {
	st, err := Open(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	if st.System() == nil || st.Planner() == nil || st.Predictor() == nil {
		t.Fatal("offline views must always exist")
	}
	if st.Gateway() != nil || st.Autoscaler() != nil {
		t.Fatal("online views must not exist without options")
	}
	if st.Planner().System() != st.System() {
		t.Fatal("planner must wrap the stack's system")
	}
	// No-ops, not panics.
	st.Start()
	st.Close()
}

func TestOpenRejectsBadInput(t *testing.T) {
	if _, err := Open("lenet"); err == nil {
		t.Fatal("unknown model must fail")
	}
	if _, err := Open(Caffenet, WithInstance("p9.huge")); err == nil {
		t.Fatal("unknown instance must fail")
	}
	if _, err := Open(Caffenet, WithLadder(0, 1.5)); err == nil {
		t.Fatal("out-of-range ladder ratio must fail")
	}
}

func TestOpenGatewayServes(t *testing.T) {
	st, err := Open(Caffenet, WithLadder(0, 0.5), WithReplicas(1), WithSLO(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	g := st.Gateway()
	if g == nil {
		t.Fatal("WithLadder must imply a gateway")
	}
	if st.Autoscaler() != nil {
		t.Fatal("no autoscaler was requested")
	}
	if n := len(g.Config().Ladder); n != 2 {
		t.Fatalf("ladder has %d rungs, want 2", n)
	}
	st.Start()
	defer st.Close()
	shape := g.Config().Ladder[0].Net.Input
	img := serving.SyntheticImage(shape.C, shape.H, shape.W, 1)
	resp := g.Infer(context.Background(), img, time.Time{})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
}

func TestOpenAutoscaleStack(t *testing.T) {
	st, err := Open(Caffenet,
		WithLadder(0, 0.5, 0.9),
		WithAutoscale(4.5, 2, 5),
		WithAutoscaleInterval(25*time.Millisecond),
		WithInstance("p2.xlarge"),
		WithSLO(80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	as := st.Autoscaler()
	if as == nil {
		t.Fatal("WithAutoscale must build an autoscaler")
	}
	pol := as.Policy()
	if pol.Limits.MinReplicas != 2 || pol.Limits.MaxReplicas != 5 || pol.Limits.BudgetPerHour != 4.5 {
		t.Fatalf("limits = %+v", pol.Limits)
	}
	if pol.Limits.PricePerReplicaHour != st.Instance().PricePerHour {
		t.Fatalf("replica price %v != instance price %v", pol.Limits.PricePerReplicaHour, st.Instance().PricePerHour)
	}
	if pol.SLOSeconds != 0.08 {
		t.Fatalf("SLOSeconds = %v, want 0.08", pol.SLOSeconds)
	}
	if len(pol.Profiles) != 3 {
		t.Fatalf("%d profiles for a 3-rung ladder", len(pol.Profiles))
	}
	if pol.Profiles[0].Speed != 1 || pol.Profiles[2].Speed < pol.Profiles[1].Speed {
		t.Fatalf("profile speeds not anchored/monotone: %+v", pol.Profiles)
	}
	// The gateway starts at the floor and is externally controlled.
	if got := st.Gateway().ReplicaCount(); got != 2 {
		t.Fatalf("initial replicas = %d, want MinReplicas", got)
	}
	if !st.Gateway().Config().ExternalControl {
		t.Fatal("autoscaled gateway must disable the built-in controller")
	}
	if as.Interval() != 25*time.Millisecond {
		t.Fatalf("interval = %v", as.Interval())
	}
	st.Start()
	st.Close()
	st.Close() // idempotent
}

// TestOpenTenantsStack: WithTenants builds the multi-tenant mux (each
// tenant with its own ladder) and, with WithAutoscale, the joint scaler
// whose profiles come from the shared predictor.
func TestOpenTenantsStack(t *testing.T) {
	specs := []tenant.Spec{
		{Name: "a", Ladder: []float64{0, 0.5}, SLOMS: 500, QPS: 50},
		{Name: "b", Ladder: []float64{0, 0.3, 0.9}, SLOMS: 200},
	}
	st, err := Open(Caffenet, WithTenants(specs), WithAutoscale(6, 1, 4), WithReplicas(1))
	if err != nil {
		t.Fatal(err)
	}
	m := st.TenantMux()
	if m == nil {
		t.Fatal("WithTenants must build a mux")
	}
	if st.Gateway() != nil {
		t.Fatal("WithTenants supersedes the single-model gateway")
	}
	sc := st.TenantScaler()
	if sc == nil {
		t.Fatal("WithTenants + WithAutoscale must build a joint scaler")
	}
	if lim := sc.Policy().Limits; lim.MinReplicas != 1 || lim.MaxReplicas != 4 ||
		lim.BudgetPerHour != 6 || lim.PricePerReplicaHour != st.Instance().PricePerHour {
		t.Fatalf("limits = %+v", lim)
	}
	if la, lb := len(m.Ladder("a")), len(m.Ladder("b")); la != 2 || lb != 3 {
		t.Fatalf("ladders = %d/%d rungs, want 2/3", la, lb)
	}
	st.Start()
	defer st.Close()
	shape := m.Ladder("a")[0].Net.Input
	resp := m.InferAs(context.Background(), "a", serving.SyntheticImage(shape.C, shape.H, shape.W, 1), time.Time{})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if _, err := m.SubmitAs(context.Background(), "nobody", serving.SyntheticImage(shape.C, shape.H, shape.W, 2), time.Time{}); err == nil {
		t.Fatal("unknown tenant must be rejected")
	}
}

// TestOpenTenantsRejectsBadSpecs: spec validation surfaces through Open.
func TestOpenTenantsRejectsBadSpecs(t *testing.T) {
	if _, err := Open(Caffenet, WithTenants([]tenant.Spec{{Name: ""}})); err == nil {
		t.Fatal("unnamed tenant must fail")
	}
	if _, err := Open(Caffenet, WithTenants([]tenant.Spec{{Name: "a", Ladder: []float64{2}}})); err == nil {
		t.Fatal("out-of-range tenant ladder must fail")
	}
}

// TestOpenSharesOnePredictor: the facade's views consume predictions
// through one memoizing engine — a prediction made while building the
// autoscaler profiles is a cache hit for the planner's system.
func TestOpenSharesOnePredictor(t *testing.T) {
	st, err := Open(Caffenet, WithLadder(0, 0.5), WithAutoscale(8, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if st.Predictor() != st.System().Predictor() {
		t.Fatal("stack and system predictors differ")
	}
	if st.Planner().System().Predictor() != st.Predictor() {
		t.Fatal("planner does not share the stack predictor")
	}
}

func TestSystemLayerSweep(t *testing.T) {
	sys, err := NewSystem(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sys.LayerSweep(context.Background(), "conv2", nil, "p2.xlarge", W50k)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("default sweep has %d points, want 10 (0–90%% at 10%% steps)", len(pts))
	}
	if pts[0].Ratio != 0 || pts[0].Minutes <= 0 || pts[0].Top1 <= 0 {
		t.Fatalf("baseline point = %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Minutes >= pts[0].Minutes {
		t.Fatalf("pruning 90%% did not reduce time: %v → %v min", pts[0].Minutes, last.Minutes)
	}
	if _, err := sys.LayerSweep(context.Background(), "conv2", nil, "p9.huge", W50k); err == nil {
		t.Fatal("unknown instance must fail")
	}
}

func TestStackTransfer(t *testing.T) {
	st, err := Open(Caffenet)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	tp, err := st.Transfer(ctx)
	if err != nil {
		t.Fatal(err)
	}
	again, err := st.Transfer(ctx)
	if err != nil || again != tp {
		t.Fatalf("Transfer must memoize the fit: %v %v", again, err)
	}
	// The fitted predictor reaches an instance type the harness never
	// profiled.
	p3, err := cloud.ByNameAll("p3.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	sec, err := tp.BatchSeconds(ctx, prune.Degree{}, p3, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatalf("BatchSeconds = %g", sec)
	}
}

func TestWithCalibrationSet(t *testing.T) {
	st, err := Open(Caffenet, WithCalibrationSet("p2.xlarge", "g3.4xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tp, err := st.Transfer(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m := tp.Model()
	if len(m.Calibrated) != 2 {
		t.Fatalf("calibrated set = %v", m.Calibrated)
	}
	if tp.IsCalibrated("p2.8xlarge") {
		t.Fatal("p2.8xlarge should be held out of the calibration set")
	}

	bad, err := Open(Caffenet, WithCalibrationSet("p3.2xlarge", "p2.xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Transfer(context.Background()); err == nil {
		t.Fatal("an uncalibrated type in the calibration set must error")
	}
}
