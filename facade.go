package ccperf

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ccperf/internal/autoscale"
	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/fault"
	"ccperf/internal/prune"
	"ccperf/internal/serving"
	"ccperf/internal/telemetry"
	"ccperf/internal/tenant"
)

// Stack is the facade over the library's layers, all sharing one memoizing
// prediction engine: the offline System (characterization) and Planner
// (joint-space search) are always present; the online Gateway and
// Autoscaler exist when requested via WithGateway / WithAutoscale.
//
// Open is the documented entry point; NewSystem and NewPlanner remain as
// thin wrappers for callers that only want the offline layers.
type Stack struct {
	sys     *System
	planner *Planner
	inst    *cloud.Instance
	gw      *serving.Gateway
	scaler  *autoscale.Autoscaler
	tmux    *tenant.Mux
	tscaler *tenant.Scaler

	// Transfer prediction is fitted lazily on first use; the calibration
	// set comes from WithCalibrationSet (default: the full catalog).
	calibNames   []string
	transferOnce sync.Once
	transfer     *engine.TransferPredictor
	transferErr  error
}

// options collects the functional-option state for Open.
type options struct {
	gateway      bool
	ratios       []float64
	replicas     int
	queueCap     int
	maxBatch     int
	batchTimeout time.Duration
	slo          time.Duration
	deadline     time.Duration
	warmup       time.Duration
	injector     fault.Injector
	instance     string

	autoscale   bool
	budget      float64
	minReplicas int
	maxReplicas int
	interval    time.Duration
	policy      *autoscale.Policy

	registry *telemetry.Registry
	tracer   *telemetry.Tracer

	tenants []tenant.Spec

	calibration []string
}

// Option configures Open.
type Option func(*options)

// WithGateway adds an online inference gateway (dynamic batching, bounded
// admission, load-adaptive pruning) to the stack.
func WithGateway() Option { return func(o *options) { o.gateway = true } }

// WithLadder sets the gateway's prune-ratio ladder, least pruned first
// (default 0, 0.3, 0.5, 0.7, 0.9). Implies WithGateway.
func WithLadder(ratios ...float64) Option {
	return func(o *options) { o.gateway = true; o.ratios = ratios }
}

// WithReplicas sets the gateway's initial replica count (default 2, or
// MinReplicas when autoscaling).
func WithReplicas(n int) Option { return func(o *options) { o.replicas = n } }

// WithQueueCap bounds the gateway admission queue (default 64×replicas).
func WithQueueCap(n int) Option { return func(o *options) { o.queueCap = n } }

// WithMaxBatch caps the gateway's dynamic batch size (default 8).
func WithMaxBatch(n int) Option { return func(o *options) { o.maxBatch = n } }

// WithBatchTimeout sets the longest a batch waits to fill (default 2ms).
func WithBatchTimeout(d time.Duration) Option { return func(o *options) { o.batchTimeout = d } }

// WithSLO sets the p99 latency objective the control plane defends
// (default 50ms).
func WithSLO(d time.Duration) Option { return func(o *options) { o.slo = d } }

// WithDeadline sets the default per-request deadline (default none).
func WithDeadline(d time.Duration) Option { return func(o *options) { o.deadline = d } }

// WithWarmup is how long a replica added at runtime waits before serving —
// the stand-in for instance boot time (default none).
func WithWarmup(d time.Duration) Option { return func(o *options) { o.warmup = d } }

// WithInjector installs a fault injector on the gateway (chaos testing).
func WithInjector(inj fault.Injector) Option { return func(o *options) { o.injector = inj } }

// WithInstance names the cloud instance type that prices a replica
// (default p2.xlarge).
func WithInstance(name string) Option { return func(o *options) { o.instance = name } }

// WithAutoscale adds the cost-accuracy autoscaler: replicas scale between
// min and max, spending at most budgetPerHour dollars; the pruning ladder
// degrades only when the budget binds. Implies WithGateway and puts the
// gateway under external control.
func WithAutoscale(budgetPerHour float64, min, max int) Option {
	return func(o *options) {
		o.gateway, o.autoscale = true, true
		o.budget, o.minReplicas, o.maxReplicas = budgetPerHour, min, max
	}
}

// WithAutoscaleInterval sets the autoscaler's control tick (default 250ms).
func WithAutoscaleInterval(d time.Duration) Option { return func(o *options) { o.interval = d } }

// WithPolicy overrides the derived autoscale policy wholesale (Limits and
// Profiles included); the other autoscale options are ignored when set.
func WithPolicy(p autoscale.Policy) Option {
	return func(o *options) { o.gateway, o.autoscale = true, true; o.policy = &p }
}

// WithTenants hosts N tenants — each with its own pruning ladder, SLO,
// admission quota, and fair-share weight — on one shared replica fleet
// instead of the single-model gateway. Supersedes WithGateway: the stack
// exposes a tenant.Mux (TenantMux) rather than a serving.Gateway. With
// WithAutoscale, a joint tenant.Scaler (TenantScaler) drives the shared
// replica count and every tenant's ladder rung — which tenant degrades
// first is the one with the largest accuracy-per-dollar slack.
func WithTenants(specs []tenant.Spec) Option {
	return func(o *options) { o.tenants = specs }
}

// WithCalibrationSet names the calibrated catalog instance types the
// stack's transfer predictor (Stack.Transfer) fits its roofline scaling
// factors from. Default: the full catalog. At least two distinct device
// kinds are needed for the two-feature fit; a single-kind set degrades to
// the compute-only fallback.
func WithCalibrationSet(names ...string) Option {
	return func(o *options) { o.calibration = names }
}

// WithTelemetry routes the stack's metrics and spans to a private registry
// and tracer instead of the process-wide defaults.
func WithTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) Option {
	return func(o *options) { o.registry = reg; o.tracer = tr }
}

// Open builds a stack for a paper model ("caffenet" or "googlenet") with
// every requested view sharing one memoizing engine.Predictor:
//
//	st, err := ccperf.Open(ccperf.Caffenet,
//	        ccperf.WithLadder(0, 0.5, 0.9),
//	        ccperf.WithAutoscale(8.0, 1, 8))
//	...
//	st.Start()
//	defer st.Close()
//
// Without options the stack holds only the offline System and Planner
// views, and Start/Close are no-ops.
func Open(model string, opts ...Option) (*Stack, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.instance == "" {
		o.instance = "p2.xlarge"
	}
	sys, err := NewSystem(model)
	if err != nil {
		return nil, err
	}
	inst, err := cloud.ByName(o.instance)
	if err != nil {
		return nil, err
	}
	st := &Stack{sys: sys, planner: &Planner{sys: sys}, inst: inst, calibNames: o.calibration}
	if len(o.tenants) > 0 {
		return openTenants(st, &o)
	}
	if !o.gateway {
		return st, nil
	}

	// The ladder and the autoscaler profiles are both derived from the
	// system's shared predictor, so the accuracy the gateway advertises and
	// the accuracy the planner optimizes come from the same curves.
	ratios := o.ratios
	if len(ratios) == 0 {
		ratios = serving.DefaultLadderRatios
	}
	degrees, err := LadderDegrees(ratios)
	if err != nil {
		return nil, err
	}
	ladder, err := serving.BuildLadder(context.Background(), serving.TinyNet, degrees, prune.L1Filter, sys.engine)
	if err != nil {
		return nil, err
	}

	replicas := o.replicas
	if o.autoscale {
		if o.policy == nil {
			if o.minReplicas <= 0 {
				o.minReplicas = 1
			}
			if o.maxReplicas < o.minReplicas {
				o.maxReplicas = o.minReplicas
			}
		}
		if replicas <= 0 {
			replicas = o.minReplicas
			if o.policy != nil && o.policy.Limits.MinReplicas > 0 {
				replicas = o.policy.Limits.MinReplicas
			}
		}
	}
	gw, err := serving.New(serving.Config{
		Ladder:          ladder,
		Replicas:        replicas,
		QueueCap:        o.queueCap,
		MaxBatch:        o.maxBatch,
		BatchTimeout:    o.batchTimeout,
		SLO:             o.slo,
		Deadline:        o.deadline,
		WarmupDelay:     o.warmup,
		Injector:        o.injector,
		ExternalControl: o.autoscale,
		Registry:        o.registry,
		Tracer:          o.tracer,
	})
	if err != nil {
		return nil, err
	}
	st.gw = gw
	if !o.autoscale {
		return st, nil
	}

	var pol autoscale.Policy
	if o.policy != nil {
		pol = *o.policy
	} else {
		profiles, err := autoscale.BuildProfiles(context.Background(), sys.engine, degrees, inst, gw.Config().MaxBatch)
		if err != nil {
			return nil, err
		}
		pol = autoscale.Policy{
			SLOSeconds: gw.Config().SLO.Seconds(),
			Limits: autoscale.Limits{
				MinReplicas:         o.minReplicas,
				MaxReplicas:         o.maxReplicas,
				PricePerReplicaHour: inst.PricePerHour,
				BudgetPerHour:       o.budget,
			},
			Profiles: profiles,
		}
	}
	scaler, err := autoscale.New(gw, autoscale.Config{
		Policy:   pol,
		Interval: o.interval,
		Registry: o.registry,
		Tracer:   o.tracer,
	})
	if err != nil {
		return nil, err
	}
	st.scaler = scaler
	return st, nil
}

// LadderDegrees maps prune-ratio rungs to the uniform conv1+conv2 degrees
// the demo serving ladder and the pack search both use, so online proxies
// and offline predictions address the same calibrated curves.
func LadderDegrees(ratios []float64) ([]prune.Degree, error) {
	if len(ratios) == 0 {
		ratios = serving.DefaultLadderRatios
	}
	degrees := make([]prune.Degree, len(ratios))
	for i, r := range ratios {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("ccperf: ladder ratio %v out of [0,1]", r)
		}
		degrees[i] = prune.Uniform([]string{"conv1", "conv2"}, r)
	}
	return degrees, nil
}

// openTenants builds the multi-tenant serving stack: one mux hosting every
// spec's private ladder, and — under WithAutoscale — the joint scaler with
// per-tenant profiles derived from the shared predictor.
func openTenants(st *Stack, o *options) (*Stack, error) {
	buildLadder := func(ratios []float64) ([]serving.Variant, error) {
		degrees, err := LadderDegrees(ratios)
		if err != nil {
			return nil, err
		}
		return serving.BuildLadder(context.Background(), serving.TinyNet, degrees, prune.L1Filter, st.sys.engine)
	}
	replicas := o.replicas
	if o.autoscale {
		if o.minReplicas <= 0 {
			o.minReplicas = 1
		}
		if o.maxReplicas < o.minReplicas {
			o.maxReplicas = o.minReplicas
		}
		if replicas <= 0 {
			replicas = o.minReplicas
		}
	}
	m, err := tenant.New(tenant.Config{
		Specs:        o.tenants,
		BuildLadder:  buildLadder,
		Replicas:     replicas,
		MaxBatch:     o.maxBatch,
		BatchTimeout: o.batchTimeout,
		WarmupDelay:  o.warmup,
		Injector:     o.injector,
		Registry:     o.registry,
		Tracer:       o.tracer,
	})
	if err != nil {
		return nil, err
	}
	st.tmux = m
	if !o.autoscale {
		return st, nil
	}

	profiles := make(map[string][]autoscale.Profile, m.Registry().Len())
	for _, spec := range m.Registry().Specs() {
		degrees, err := LadderDegrees(spec.Ladder)
		if err != nil {
			return nil, err
		}
		prof, err := autoscale.BuildProfiles(context.Background(), st.sys.engine, degrees, st.inst, m.Config().MaxBatch)
		if err != nil {
			return nil, err
		}
		profiles[spec.Name] = prof
	}
	sc, err := tenant.NewScaler(m, tenant.ScalerConfig{
		Policy: autoscale.JointPolicy{
			Limits: autoscale.Limits{
				MinReplicas:         o.minReplicas,
				MaxReplicas:         o.maxReplicas,
				PricePerReplicaHour: st.inst.PricePerHour,
				BudgetPerHour:       o.budget,
			},
		},
		Profiles: profiles,
		Interval: o.interval,
		Registry: o.registry,
		Tracer:   o.tracer,
	})
	if err != nil {
		return nil, err
	}
	st.tscaler = sc
	return st, nil
}

// System returns the measurement/characterization view.
func (st *Stack) System() *System { return st.sys }

// Planner returns the joint-space planning view.
func (st *Stack) Planner() *Planner { return st.planner }

// Gateway returns the online serving view (nil unless WithGateway).
func (st *Stack) Gateway() *serving.Gateway { return st.gw }

// Autoscaler returns the cost-accuracy control plane (nil unless
// WithAutoscale).
func (st *Stack) Autoscaler() *autoscale.Autoscaler { return st.scaler }

// TenantMux returns the multi-tenant serving front-end (nil unless
// WithTenants).
func (st *Stack) TenantMux() *tenant.Mux { return st.tmux }

// TenantScaler returns the joint multi-tenant control plane (nil unless
// both WithTenants and WithAutoscale).
func (st *Stack) TenantScaler() *tenant.Scaler { return st.tscaler }

// Predictor returns the single memoizing prediction engine every view of
// this stack shares.
func (st *Stack) Predictor() engine.Predictor { return st.sys.engine }

// Transfer returns the stack's transfer predictor: the shared engine
// extended to instance types the harness never profiled (the p3/V100
// transfer targets), via roofline scaling factors fitted from the
// calibration set (WithCalibrationSet; default the full catalog). The fit
// runs once, on first call, against the shared memoizing engine, and the
// result is cached for the stack's lifetime.
func (st *Stack) Transfer(ctx context.Context) (*engine.TransferPredictor, error) {
	st.transferOnce.Do(func() {
		names := st.calibNames
		var calib []*cloud.Instance
		if len(names) == 0 {
			calib = cloud.Catalog()
		} else {
			for _, n := range names {
				inst, err := cloud.ByName(n)
				if err != nil {
					st.transferErr = err
					return
				}
				calib = append(calib, inst)
			}
		}
		st.transfer, st.transferErr = engine.FitTransfer(ctx, st.sys.engine, calib)
	})
	return st.transfer, st.transferErr
}

// Instance returns the cloud instance type pricing each replica.
func (st *Stack) Instance() *cloud.Instance { return st.inst }

// Start brings up the online components (gateway, then autoscaler). A
// stack without a gateway starts nothing.
func (st *Stack) Start() {
	if st.gw != nil {
		st.gw.Start()
	}
	if st.scaler != nil {
		st.scaler.Start()
	}
	if st.tmux != nil {
		st.tmux.Start()
	}
	if st.tscaler != nil {
		st.tscaler.Start()
	}
}

// Close stops the online components in reverse order (autoscaler, then
// gateway, draining in-flight requests). Idempotent.
func (st *Stack) Close() {
	if st.tscaler != nil {
		st.tscaler.Stop()
	}
	if st.tmux != nil {
		st.tmux.Stop()
	}
	if st.scaler != nil {
		st.scaler.Stop()
	}
	if st.gw != nil {
		st.gw.Stop()
	}
}
