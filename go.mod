module ccperf

go 1.22
