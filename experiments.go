package ccperf

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/explore"
	"ccperf/internal/measure"
	"ccperf/internal/metrics"
	"ccperf/internal/models"
	"ccperf/internal/prune"
	"ccperf/internal/report"
)

// Experiment workloads and constraints. W50k is the paper's inference set
// (Figures 3–8, 11–12); W1M is the Figure 9/10 workload. The deadline and
// budget are rescaled to this reproduction's self-consistent cost scale —
// chosen so they exclude comparable fractions of the configuration space
// as the paper's 10 h / $300 (see EXPERIMENTS.md for the rationale).
const (
	W50k = 50_000
	W1M  = 1_000_000

	Fig9DeadlineSeconds = 2270.0
	Fig10BudgetUSD      = 5.0

	// SpaceSeed fixes the 60-variant degree sample of Figures 9–10.
	SpaceSeed = 42
)

// Finding is one paper-vs-measured comparison row.
type Finding struct {
	Name     string
	Paper    string
	Measured string
}

// Result is a regenerated experiment: rendered text plus key findings.
type Result struct {
	ID       string
	Title    string
	Text     string
	Findings []Finding
}

// experimentFn builds one experiment result.
type experimentFn func() (*Result, error)

var experimentRegistry = []struct {
	id    string
	title string
	fn    experimentFn
}{
	{"table1", "Table 1: Caffenet layers", expTable1},
	{"table3", "Table 3: Amazon EC2 cloud resource types", expTable3},
	{"fig3", "Figure 3: Caffenet execution time distribution of CNN layers", expFig3},
	{"fig4", "Figure 4: Time for a single inference", expFig4},
	{"fig5", "Figure 5: Parallel inference on a GPU", expFig5},
	{"fig6", "Figure 6: Caffenet accuracy/time with individual layer pruning", expFig6},
	{"fig7", "Figure 7: Googlenet accuracy/time with individual layer pruning", expFig7},
	{"fig8", "Figure 8: Caffenet accuracy/time with multi-layer pruning", expFig8},
	{"fig9", "Figure 9: Impact of accuracy on cloud execution time (Pareto)", expFig9},
	{"fig10", "Figure 10: Impact of accuracy on cloud cost (Pareto)", expFig10},
	{"fig11", "Figure 11: Time-accuracy of degrees of pruning with TAR", expFig11},
	{"fig12", "Figure 12: Caffenet CAR across resource types", expFig12},
	{"alg1", "Algorithm 1: TAR/CAR-guided allocation vs exhaustive search", expAlg1},
	{"empirical", "Extra: sweet-spots on a really trained-and-pruned CNN", expEmpirical},
	{"transfer", "Extra: PROFET-style cross-instance transfer prediction (leave-one-out)", expTransfer},
}

// ExperimentIDs lists all regenerable experiments in paper order.
func ExperimentIDs() []string {
	out := make([]string, len(experimentRegistry))
	for i, e := range experimentRegistry {
		out[i] = e.id
	}
	return out
}

// RunExperiment regenerates one table or figure by ID (e.g. "fig9").
func RunExperiment(id string) (*Result, error) {
	for _, e := range experimentRegistry {
		if e.id == id {
			res, err := e.fn()
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", id, err)
			}
			res.ID, res.Title = e.id, e.title
			return res, nil
		}
	}
	return nil, fmt.Errorf("ccperf: unknown experiment %q (known: %s)", id, strings.Join(ExperimentIDs(), ", "))
}

func p2xlarge() *cloud.Instance {
	i, err := cloud.ByName("p2.xlarge")
	if err != nil {
		panic(err)
	}
	return i
}

func newHarness(model string) (*measure.Harness, error) { return measure.NewHarness(model) }

// ---- Table 1 ----------------------------------------------------------

func expTable1() (*Result, error) {
	tb := report.NewTable("", "Layer", "Size", "Number of Filters", "Filter Size")
	for _, r := range models.Table1() {
		nf := "-"
		if r.NumFilters > 0 {
			nf = fmt.Sprintf("%d", r.NumFilters)
		}
		tb.Row(r.Layer, r.Size, nf, r.FilterSize)
	}
	net := models.Caffenet()
	if err := net.Init(1); err != nil {
		return nil, err
	}
	return &Result{
		Text: tb.String(),
		Findings: []Finding{
			{"conv1 output", "55x55x96, 11x11x3 filters", tableRowOf(tb, "conv1")},
			{"conv2 output", "27x27x256, 5x5x48 filters", tableRowOf(tb, "conv2")},
			{"total parameters", "~61M (AlexNet)", fmt.Sprintf("%d", net.Params())},
		},
	}, nil
}

func tableRowOf(tb *report.Table, prefix string) string {
	for _, line := range strings.Split(tb.String(), "\n") {
		if strings.Contains(line, prefix) {
			return strings.Join(strings.Fields(line), " ")
		}
	}
	return "?"
}

// ---- Table 3 ----------------------------------------------------------

func expTable3() (*Result, error) {
	tb := report.NewTable("", "Instance Type", "vCPUs", "GPUs", "Mem (GB)", "GPU Mem (GB)", "Price ($/hr)", "GPU Type")
	for _, i := range cloud.Catalog() {
		tb.Row(i.Name, i.VCPUs, i.GPUs, i.MemGB, i.GPUMemGB, i.PricePerHour, string(i.GPU))
	}
	return &Result{
		Text: tb.String(),
		Findings: []Finding{
			{"types", "6 GPU instance types (p2/g3, Oregon)", fmt.Sprintf("%d types", tb.Len())},
			{"p2.xlarge price", "$0.9/hr", "$0.9/hr"},
		},
	}, nil
}

// ---- Figure 3 ---------------------------------------------------------

func expFig3() (*Result, error) {
	h, err := newHarness(Caffenet)
	if err != nil {
		return nil, err
	}
	net := models.Caffenet()
	if err := net.Init(1); err != nil {
		return nil, err
	}
	shares, err := h.LayerDistribution(context.Background(), net, prune.Degree{}, p2xlarge())
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	got := map[string]float64{}
	for _, s := range shares {
		got[s.Name] = s.Share
		if s.Share >= 0.005 {
			fmt.Fprintln(&b, report.Bar(s.Name, s.Share, 50))
		}
	}
	return &Result{
		Text: b.String(),
		Findings: []Finding{
			{"conv1 share", "51%", fmt.Sprintf("%.0f%%", got["conv1"]*100)},
			{"conv2 share", "16%", fmt.Sprintf("%.0f%%", got["conv2"]*100)},
			{"conv3/4/5 share", "9%/10%/7%", fmt.Sprintf("%.0f%%/%.0f%%/%.0f%%", got["conv3"]*100, got["conv4"]*100, got["conv5"]*100)},
		},
	}, nil
}

// ---- Figure 4 ---------------------------------------------------------

func expFig4() (*Result, error) {
	plot := report.NewPlot("Single-inference latency vs uniform prune ratio", "prune ratio (%)", "seconds")
	tb := report.NewTable("", "Prune (%)", "Caffenet (s)", "Googlenet (s)")
	findings := []Finding{}
	var caff, goog []measure.SingleInferencePoint
	for _, model := range []string{Caffenet, Googlenet} {
		h, err := newHarness(model)
		if err != nil {
			return nil, err
		}
		layers, err := convNames(model)
		if err != nil {
			return nil, err
		}
		pts, err := h.SingleInferenceSweep(context.Background(), layers, prune.Range(0, 0.9, 0.1), p2xlarge())
		if err != nil {
			return nil, err
		}
		xs, ys := make([]float64, len(pts)), make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.Ratio*100, p.Seconds
		}
		plot.Add(report.Series{Name: model, X: xs, Y: ys})
		if model == Caffenet {
			caff = pts
		} else {
			goog = pts
		}
	}
	for i := range caff {
		tb.Row(caff[i].Ratio*100, fmt.Sprintf("%.4f", caff[i].Seconds), fmt.Sprintf("%.4f", goog[i].Seconds))
	}
	findings = append(findings,
		Finding{"Caffenet 0%→90%", "0.09 s → 0.05 s", fmt.Sprintf("%.3f s → %.3f s", caff[0].Seconds, caff[len(caff)-1].Seconds)},
		Finding{"Googlenet 0%→90%", "0.16 s → 0.10 s", fmt.Sprintf("%.3f s → %.3f s", goog[0].Seconds, goog[len(goog)-1].Seconds)},
	)
	return &Result{Text: tb.String() + "\n" + plot.String(), Findings: findings}, nil
}

func convNames(model string) ([]string, error) {
	switch model {
	case Caffenet:
		return models.CaffenetConvNames(), nil
	case Googlenet:
		net := models.Googlenet()
		if err := net.Init(1); err != nil {
			return nil, err
		}
		var names []string
		for _, c := range net.ConvLayers() {
			names = append(names, c.Name())
		}
		return names, nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

// ---- Figure 5 ---------------------------------------------------------

func expFig5() (*Result, error) {
	h, err := newHarness(Caffenet)
	if err != nil {
		return nil, err
	}
	parallel := []int{1, 5, 10, 20, 50, 100, 150, 200, 300, 400, 600, 800, 1000, 1400, 2000}
	pts, err := h.SaturationSweep(context.Background(), parallel, p2xlarge(), W50k)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("", "Parallel inferences", "Total time (s)")
	xs, ys := []float64{}, []float64{}
	for _, p := range pts {
		tb.Row(p.Parallel, fmt.Sprintf("%.0f", p.Seconds))
		if p.Parallel >= 5 { // match the figure's visible range
			xs = append(xs, float64(p.Parallel))
			ys = append(ys, p.Seconds)
		}
	}
	plot := report.NewPlot("Caffenet 50k-image time vs parallel inferences (p2.xlarge)", "parallel inferences", "seconds")
	plot.Add(report.Series{Name: "caffenet", X: xs, Y: ys})
	knee := measure.SaturationBatch(pts, 0.01)
	return &Result{
		Text: tb.String() + "\n" + plot.String(),
		Findings: []Finding{
			{"saturation point", "~300 parallel inferences", fmt.Sprintf("%d (within 1%% of saturated time)", knee)},
		},
	}, nil
}

// ---- Figures 6 and 7 --------------------------------------------------

func layerSweepExperiment(model string, layers []string, w int64) (*Result, error) {
	h, err := newHarness(model)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	type endpoints struct {
		layer    string
		min, max float64
	}
	var eps []endpoints
	for _, layer := range layers {
		pts, err := h.LayerSweep(context.Background(), layer, prune.Range(0, 0.9, 0.1), p2xlarge(), w)
		if err != nil {
			return nil, err
		}
		tb := report.NewTable(fmt.Sprintf("(%s)", layer), "Prune (%)", "Time (min)", "Top-1 (%)", "Top-5 (%)")
		for _, p := range pts {
			tb.Row(p.Ratio*100, fmt.Sprintf("%.1f", p.Minutes), fmt.Sprintf("%.0f", p.Top1*100), fmt.Sprintf("%.0f", p.Top5*100))
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
		eps = append(eps, endpoints{layer, pts[len(pts)-1].Minutes, pts[0].Minutes})
	}
	var findings []Finding
	for _, e := range eps {
		findings = append(findings, Finding{
			e.layer + " time range", "",
			fmt.Sprintf("%.1f → %.1f min", e.max, e.min),
		})
	}
	return &Result{Text: b.String(), Findings: findings}, nil
}

func expFig6() (*Result, error) {
	res, err := layerSweepExperiment(Caffenet, models.CaffenetConvNames(), W50k)
	if err != nil {
		return nil, err
	}
	// Attach the paper's endpoints to the findings we can compare.
	paper := map[string]string{
		"conv1 time range": "19 → 16.6 min",
		"conv2 time range": "19 → 14 min",
	}
	for i := range res.Findings {
		if p, ok := paper[res.Findings[i].Name]; ok {
			res.Findings[i].Paper = p
		}
	}
	res.Findings = append(res.Findings, Finding{
		"sweet-spots", "accuracy flat until 30% (conv1) / 50% (conv2–5)",
		"thresholds 30%/50% (calibrated curves; see internal/accuracy)",
	})
	return res, nil
}

func expFig7() (*Result, error) {
	res, err := layerSweepExperiment(Googlenet, models.GooglenetSelectedConvNames(), W50k)
	if err != nil {
		return nil, err
	}
	paper := map[string]string{
		"conv2-3x3 time range": "13 → 9 min",
	}
	for i := range res.Findings {
		if p, ok := paper[res.Findings[i].Name]; ok {
			res.Findings[i].Paper = p
		}
	}
	res.Findings = append(res.Findings, Finding{
		"sweet-spots", "accuracy flat until 60% pruning", "thresholds 60% (calibrated)",
	})
	return res, nil
}

// ---- Figure 8 ---------------------------------------------------------

func expFig8() (*Result, error) {
	h, err := newHarness(Caffenet)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		d    prune.Degree
	}{
		{"nonpruned", prune.Degree{}},
		{"conv1-2", prune.NewDegree("conv1", 0.3, "conv2", 0.5)},
		{"all-conv", prune.NewDegree("conv1", 0.3, "conv2", 0.5, "conv3", 0.5, "conv4", 0.5, "conv5", 0.5)},
	}
	tb := report.NewTable("", "Prune configuration", "Time (min)", "Top-1 (%)", "Top-5 (%)")
	vals := map[string]metrics.Record{}
	for _, c := range cases {
		rec, err := h.Record(context.Background(), c.d, p2xlarge(), 0, W50k)
		if err != nil {
			return nil, err
		}
		vals[c.name] = rec
		tb.Row(c.name, fmt.Sprintf("%.1f", rec.Seconds/60), fmt.Sprintf("%.0f", rec.Top1*100), fmt.Sprintf("%.0f", rec.Top5*100))
	}
	f := func(n string) metrics.Record { return vals[n] }
	return &Result{
		Text: tb.String(),
		Findings: []Finding{
			{"nonpruned", "19 min, 80% Top-5", fmt.Sprintf("%.1f min, %.0f%% Top-5", f("nonpruned").Seconds/60, f("nonpruned").Top5*100)},
			{"conv1-2", "13 min, 70% Top-5", fmt.Sprintf("%.1f min, %.0f%% Top-5", f("conv1-2").Seconds/60, f("conv1-2").Top5*100)},
			{"all-conv", "11 min, 62% Top-5", fmt.Sprintf("%.1f min, %.0f%% Top-5", f("all-conv").Seconds/60, f("all-conv").Top5*100)},
		},
	}, nil
}

// ---- Figures 9 and 10 -------------------------------------------------

// fig9Space builds the paper's joint space: 60 live Caffenet variants ×
// all non-empty subsets of a 9-instance p2 pool, W = 1M images.
func fig9Space() (*explore.Space, []explore.Candidate, error) {
	h, err := newHarness(Caffenet)
	if err != nil {
		return nil, nil, err
	}
	keep := func(d prune.Degree) bool {
		a, err := h.Eval.Evaluate(d)
		return err == nil && a.Top1 >= 0.15
	}
	degrees := prune.SampleDegreesFiltered(models.CaffenetConvNames(), prune.Range(0, 0.9, 0.1), 60, SpaceSeed, keep)
	pool := cloud.BuildPool(cloud.P2Types(), 3)
	sp := &explore.Space{Pred: engine.NewCache(h), Degrees: degrees, Pool: pool, W: W1M}
	cands, err := sp.Enumerate(context.Background())
	if err != nil {
		return nil, nil, err
	}
	return sp, cands, nil
}

func frontierText(title string, fr []explore.Candidate, m explore.Metric, costAxis bool) string {
	tb := report.NewTable(title, "Accuracy (%)", "Time (h)", "Cost ($)", "Degree", "Config")
	for _, c := range fr {
		acc := c.Acc.Top1
		if m == explore.Top5 {
			acc = c.Acc.Top5
		}
		tb.Row(fmt.Sprintf("%.0f", acc*100), fmt.Sprintf("%.3f", c.Hours()), fmt.Sprintf("%.2f", c.Cost), c.Degree.Label(), c.Config.Label())
	}
	return tb.String()
}

// savingsAtBest computes how much time (or cost) the Pareto point saves
// versus the worst feasible configuration at the same accuracy — the
// paper's "up to 50%/55%" claims. It returns the saving at the highest
// feasible accuracy that has at least two same-accuracy configurations
// (a single-configuration level has nothing to save against).
func savingsAtBest(feas []explore.Candidate, m explore.Metric, costAxis bool) (acc, best, worst, pct float64) {
	type span struct{ lo, hi float64 }
	byAcc := map[float64]*span{}
	for _, c := range feas {
		a := m.Pick(c.Acc)
		v := c.Seconds
		if costAxis {
			v = c.Cost
		}
		s, ok := byAcc[a]
		if !ok {
			byAcc[a] = &span{v, v}
			continue
		}
		s.lo = math.Min(s.lo, v)
		s.hi = math.Max(s.hi, v)
	}
	for a, s := range byAcc {
		if s.hi > s.lo && a > acc {
			acc, best, worst = a, s.lo, s.hi
		}
	}
	if worst > 0 {
		pct = (worst - best) / worst * 100
	}
	return acc, best, worst, pct
}

// feasibleScatter renders the paper's Figure 9/10 visual form: the cloud
// of feasible configurations (subsampled for legibility) with the Pareto
// frontier overlaid as a second series.
func feasibleScatter(title, ylabel string, feas, frontier []explore.Candidate, m explore.Metric, costAxis bool) string {
	plot := report.NewPlot(title, "accuracy (%)", ylabel)
	stride := len(feas)/600 + 1
	var xs, ys []float64
	for i := 0; i < len(feas); i += stride {
		c := feas[i]
		xs = append(xs, m.Pick(c.Acc)*100)
		if costAxis {
			ys = append(ys, c.Cost)
		} else {
			ys = append(ys, c.Hours())
		}
	}
	plot.Add(report.Series{Name: "feasible", X: xs, Y: ys})
	var fx, fy []float64
	for _, c := range frontier {
		fx = append(fx, m.Pick(c.Acc)*100)
		if costAxis {
			fy = append(fy, c.Cost)
		} else {
			fy = append(fy, c.Hours())
		}
	}
	plot.Add(report.Series{Name: "pareto", X: fx, Y: fy})
	return plot.String()
}

func expFig9() (*Result, error) {
	_, cands, err := fig9Space()
	if err != nil {
		return nil, err
	}
	feas := explore.Feasible(cands, Fig9DeadlineSeconds, math.Inf(1))
	fr1 := explore.Frontier(feas, explore.ByTime, explore.Top1)
	fr5 := explore.Frontier(feas, explore.ByTime, explore.Top5)
	acc, best, worst, pct := savingsAtBest(feas, explore.Top1, false)

	var b strings.Builder
	fmt.Fprintf(&b, "space: %d candidates (%d degrees × 511 subsets of 9 p2 instances), W=1M images\n", len(cands), len(cands)/511)
	fmt.Fprintf(&b, "deadline T' = %.0f s (%.2f h): %d feasible configurations\n\n", Fig9DeadlineSeconds, Fig9DeadlineSeconds/3600, len(feas))
	b.WriteString(feasibleScatter("(a) Top-1 accuracy vs execution time", "hours", feas, fr1, explore.Top1, false))
	b.WriteString("\n")
	b.WriteString(frontierText("Time-accuracy Pareto frontier (Top-1)", fr1, explore.Top1, false))
	b.WriteString("\n")
	b.WriteString(frontierText("Time-accuracy Pareto frontier (Top-5)", fr5, explore.Top5, false))
	fmt.Fprintf(&b, "\nhighest feasible Top-1 accuracy %.0f%%: Pareto %.0f s vs worst same-accuracy %.0f s → %.0f%% time reduction\n", acc*100, best, worst, pct)

	top1Lo, top1Hi := fr1[0].Acc.Top1, fr1[len(fr1)-1].Acc.Top1
	top5Lo, top5Hi := fr5[0].Acc.Top5, fr5[len(fr5)-1].Acc.Top5
	return &Result{
		Text: b.String(),
		Findings: []Finding{
			{"feasible configurations", "7654 (10 h deadline)", fmt.Sprintf("%d (T' rescaled to %.2f h; same excluded fraction)", len(feas), Fig9DeadlineSeconds/3600)},
			{"Pareto-optimal count", "5 each (Top-1, Top-5)", fmt.Sprintf("%d / %d", len(fr1), len(fr5))},
			{"Pareto Top-1 range", "27%–53%", fmt.Sprintf("%.0f%%–%.0f%%", top1Lo*100, top1Hi*100)},
			{"Pareto Top-5 range", "45%–78%", fmt.Sprintf("%.0f%%–%.0f%%", top5Lo*100, top5Hi*100)},
			{"time reduction at max accuracy", "up to 50%", fmt.Sprintf("%.0f%%", pct)},
		},
	}, nil
}

func expFig10() (*Result, error) {
	_, cands, err := fig9Space()
	if err != nil {
		return nil, err
	}
	feas := explore.Feasible(cands, math.Inf(1), Fig10BudgetUSD)
	fr1 := explore.Frontier(feas, explore.ByCost, explore.Top1)
	fr5 := explore.Frontier(feas, explore.ByCost, explore.Top5)
	acc, best, worst, pct := savingsAtBest(feas, explore.Top1, true)

	var b strings.Builder
	fmt.Fprintf(&b, "budget C' = $%.2f: %d feasible configurations\n\n", Fig10BudgetUSD, len(feas))
	b.WriteString(feasibleScatter("(a) Top-1 accuracy vs cloud cost", "dollars", feas, fr1, explore.Top1, true))
	b.WriteString("\n")
	b.WriteString(frontierText("Cost-accuracy Pareto frontier (Top-1)", fr1, explore.Top1, true))
	b.WriteString("\n")
	b.WriteString(frontierText("Cost-accuracy Pareto frontier (Top-5)", fr5, explore.Top5, true))
	fmt.Fprintf(&b, "\nhighest feasible Top-1 accuracy %.0f%%: Pareto $%.2f vs worst same-accuracy $%.2f → %.0f%% cost saving\n", acc*100, best, worst, pct)

	return &Result{
		Text: b.String(),
		Findings: []Finding{
			{"feasible configurations", "1042 ($300 budget)", fmt.Sprintf("%d (C' rescaled to $%.2f; self-consistent cost scale)", len(feas), Fig10BudgetUSD)},
			{"Pareto-optimal count", "5 each (Top-1, Top-5)", fmt.Sprintf("%d / %d", len(fr1), len(fr5))},
			{"Pareto cost range", "$69–$119", costRange(fr1)},
			{"cost saving at max accuracy", "up to 55%", fmt.Sprintf("%.0f%%", pct)},
		},
	}, nil
}

func costRange(fr []explore.Candidate) string {
	if len(fr) == 0 {
		return "(empty)"
	}
	lo, hi := math.Inf(1), 0.0
	for _, c := range fr {
		lo, hi = math.Min(lo, c.Cost), math.Max(hi, c.Cost)
	}
	return fmt.Sprintf("$%.2f–$%.2f", lo, hi)
}

// ---- Figure 11 --------------------------------------------------------

func expFig11() (*Result, error) {
	h, err := newHarness(Caffenet)
	if err != nil {
		return nil, err
	}
	grid := prune.Grid([]string{"conv1", "conv2"},
		[][]float64{prune.Range(0, 0.4, 0.1), prune.Range(0, 0.5, 0.1)})
	tb := report.NewTable("", "conv1 (%)", "conv2 (%)", "Time (min)", "Top-1 (%)", "Top-5 (%)", "TAR(Top-1)", "TAR(Top-5)")
	type pt struct {
		rec metrics.Record
		d   prune.Degree
	}
	var pts []pt
	for _, d := range grid {
		rec, err := h.Record(context.Background(), d, p2xlarge(), 0, W50k)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt{rec, d})
		tb.Row(d.Ratio("conv1")*100, d.Ratio("conv2")*100,
			fmt.Sprintf("%.1f", rec.Seconds/60),
			fmt.Sprintf("%.0f", rec.Top1*100), fmt.Sprintf("%.0f", rec.Top5*100),
			fmt.Sprintf("%.0f", rec.TARTop1()), fmt.Sprintf("%.0f", rec.TARTop5()))
	}
	// For each distinct accuracy, the lowest-TAR configuration gives the
	// least time (Section 4.5.1's use of TAR).
	byAcc := map[string][]pt{}
	for _, p := range pts {
		k := fmt.Sprintf("%.0f", p.rec.Top5*100)
		byAcc[k] = append(byAcc[k], p)
	}
	multi := 0
	for _, group := range byAcc {
		if len(group) > 1 {
			multi++
			sort.Slice(group, func(a, b int) bool { return group[a].rec.TARTop5() < group[b].rec.TARTop5() })
			if group[0].rec.Seconds > group[len(group)-1].rec.Seconds {
				return nil, fmt.Errorf("fig11: lowest TAR did not give least time")
			}
		}
	}
	return &Result{
		Text: tb.String(),
		Findings: []Finding{
			{"grid", "conv1 0–40% × conv2 0–50%, 10% steps (30 configs)", fmt.Sprintf("%d configs", tb.Len())},
			{"same-accuracy groups", "multiple degrees share one accuracy; lowest TAR ⇒ least time", fmt.Sprintf("%d multi-config accuracy levels, TAR ordering verified", multi)},
		},
	}, nil
}

// ---- Figure 12 --------------------------------------------------------

func expFig12() (*Result, error) {
	h, err := newHarness(Caffenet)
	if err != nil {
		return nil, err
	}
	d := prune.NewDegree("conv1", 0.2, "conv2", 0.2)
	acc, err := h.Eval.Evaluate(d)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("", "Resource type", "CAR Top-1 all GPUs ($)", "CAR Top-5 all GPUs ($)", "CAR Top-1 one GPU ($)", "CAR Top-5 one GPU ($)")
	carAll := map[string]float64{}
	for _, inst := range cloud.Catalog() {
		allSec, err := h.TotalSeconds(context.Background(), d, inst, 0, W50k)
		if err != nil {
			return nil, err
		}
		oneSec, err := h.TotalSeconds(context.Background(), d, inst, 1, W50k)
		if err != nil {
			return nil, err
		}
		allCost := math.Ceil(allSec) * inst.PricePerSecond()
		oneCost := math.Ceil(oneSec) * inst.PricePerSecond()
		carAll[inst.Name] = metrics.CAR(allCost, acc.Top1)
		tb.Row(inst.Name,
			fmt.Sprintf("%.3f", metrics.CAR(allCost, acc.Top1)),
			fmt.Sprintf("%.3f", metrics.CAR(allCost, acc.Top5)),
			fmt.Sprintf("%.3f", metrics.CAR(oneCost, acc.Top1)),
			fmt.Sprintf("%.3f", metrics.CAR(oneCost, acc.Top5)))
	}
	p2 := (carAll["p2.xlarge"] + carAll["p2.8xlarge"] + carAll["p2.16xlarge"]) / 3
	g3 := (carAll["g3.4xlarge"] + carAll["g3.8xlarge"] + carAll["g3.16xlarge"]) / 3
	return &Result{
		Text: tb.String(),
		Findings: []Finding{
			{"p2 CAR (all GPUs)", "~$0.57", fmt.Sprintf("$%.3f", p2)},
			{"g3 CAR (all GPUs)", "~$0.35", fmt.Sprintf("$%.3f", g3)},
			{"p2:g3 CAR ratio", "1.63", fmt.Sprintf("%.2f", p2/g3)},
			{"within-category spread", "approximately equal", fmt.Sprintf("p2 ±%.1f%%, g3 ±%.1f%%", spreadPct(carAll, "p2"), spreadPct(carAll, "g3"))},
		},
	}, nil
}

func spreadPct(car map[string]float64, prefix string) float64 {
	lo, hi := math.Inf(1), 0.0
	for k, v := range car {
		if strings.HasPrefix(k, prefix) {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if lo == 0 || math.IsInf(lo, 1) {
		return 0
	}
	return (hi - lo) / lo * 100 / 2
}

// ---- Algorithm 1 ------------------------------------------------------

func expAlg1() (*Result, error) {
	p, err := NewPlanner(Caffenet)
	if err != nil {
		return nil, err
	}
	req := Request{
		Images:        W1M,
		DeadlineHours: Fig9DeadlineSeconds / 3600,
		BudgetUSD:     Fig10BudgetUSD,
	}
	greedy, err := p.Allocate(context.Background(), req)
	if err != nil {
		return nil, err
	}
	exact, err := p.AllocateExhaustive(context.Background(), req)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("", "Search", "Found", "Degree", "Config", "Top-1 (%)", "Hours", "Cost ($)", "Model evals")
	row := func(name string, pl Plan) {
		tb.Row(name, fmt.Sprintf("%v", pl.Found), pl.Degree, pl.Config,
			fmt.Sprintf("%.0f", pl.Top1*100), fmt.Sprintf("%.3f", pl.Hours), fmt.Sprintf("%.2f", pl.CostUSD), pl.Ops)
	}
	row("Algorithm 1 (TAR/CAR greedy)", greedy)
	row("Exhaustive (2^|G| subsets)", exact)

	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nworst-case model evaluations: greedy %d (O(|P|·|G|)), exhaustive %d (O(|P|·2^|G|))\n",
		explore.GreedyOpsBound(60, 9), explore.ExhaustiveOps(60, 9))

	gap := "n/a"
	if greedy.Found && exact.Found {
		gap = fmt.Sprintf("%.0f%% of optimum accuracy", greedy.Top1/exact.Top1*100)
	}
	return &Result{
		Text: b.String(),
		Findings: []Finding{
			{"complexity", "O(2^|G|) → O(|G| log |G|) with TAR/CAR heuristics", fmt.Sprintf("%d vs %d model evaluations on the Figure 9/10 input", greedy.Ops, exact.Ops)},
			{"solution quality", "(not quantified in paper)", gap},
		},
	}, nil
}

// ---- Transfer prediction extra ----------------------------------------

// expTransfer validates cross-instance transfer prediction the way PROFET
// does: hold each catalog instance type out, fit the roofline scaling
// factors from the other five, and compare the transferred prediction
// against the held-out type's measured (jittered) batch time. The paper's
// predictor is calibrated per type; this experiment is what lets the
// planner extend to types the harness never profiled.
func expTransfer() (*Result, error) {
	h, err := newHarness(Caffenet)
	if err != nil {
		return nil, err
	}
	pred := engine.NewCache(h)
	rows, err := engine.LeaveOneOut(context.Background(), pred, cloud.Catalog(), prune.Degree{}, 0)
	if err != nil {
		return nil, err
	}
	tb := report.NewTable("leave-one-out held-out error (Caffenet, unpruned)",
		"Held-out instance", "GPUs", "Sat batch", "Meas (s)", "Pred (s)", "Err (%)")
	for _, r := range rows {
		tb.Row(r.Instance, r.GPUs, r.SatBatch,
			fmt.Sprintf("%.3f", r.TruthSat), fmt.Sprintf("%.3f", r.PredSat), fmt.Sprintf("%+.2f", r.ErrSatPct))
	}
	maxErr := engine.MaxAbsErrPct(rows)

	// Extrapolate to a type outside the calibrated catalog entirely.
	tp, err := engine.FitTransfer(context.Background(), pred, cloud.Catalog())
	if err != nil {
		return nil, err
	}
	p3, err := cloud.ByNameAll("p3.2xlarge")
	if err != nil {
		return nil, err
	}
	k80, err := cloud.ByName("p2.xlarge")
	if err != nil {
		return nil, err
	}
	satB := tp.Model().SatPerGPU
	p3Sec, err := tp.BatchSeconds(context.Background(), prune.Degree{}, p3, 1, satB)
	if err != nil {
		return nil, err
	}
	k80Sec, err := tp.BatchSeconds(context.Background(), prune.Degree{}, k80, 1, satB)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nmax held-out |error| %.2f%%; V100 (p3.2xlarge) extrapolated to %.2fx the K80 throughput\n",
		maxErr, k80Sec/p3Sec)
	return &Result{
		Text: b.String(),
		Findings: []Finding{
			{"held-out error", "PROFET reports ~10–20% cross-instance error; our substrate is in-family, so only measurement jitter remains",
				fmt.Sprintf("max |error| %.2f%% across %d types", maxErr, len(rows))},
			{"extrapolation", "V100 ≈ 3–4× K80 on fp32 CNN inference",
				fmt.Sprintf("%.2fx predicted from roofline features alone", k80Sec/p3Sec)},
		},
	}, nil
}

// ---- Empirical extra --------------------------------------------------

func expEmpirical() (*Result, error) {
	e := EmpiricalEvaluator()
	base := e.Baseline()
	if base.Top1 == 0 {
		return nil, fmt.Errorf("empirical substrate failed to train")
	}
	tb := report.NewTable("", "Layer", "Prune (%)", "Top-1 (%)", "Top-3 (%)")
	for _, layer := range []string{"conv1", "conv2"} {
		for _, r := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
			a, err := e.Evaluate(prune.NewDegree(layer, r))
			if err != nil {
				return nil, err
			}
			tb.Row(layer, r*100, fmt.Sprintf("%.0f", a.Top1*100), fmt.Sprintf("%.0f", a.Top5*100))
		}
	}
	mild, err := e.Evaluate(prune.NewDegree("conv1", 0.25))
	if err != nil {
		return nil, err
	}
	deep, err := e.Evaluate(prune.NewDegree("conv1", 0.9))
	if err != nil {
		return nil, err
	}
	return &Result{
		Text: tb.String(),
		Findings: []Finding{
			{"sweet-spot exists", "accuracy flat under mild pruning (Obs. 1)",
				fmt.Sprintf("baseline %.0f%%, conv1@25%% %.0f%% (Δ%.0f pts)", base.Top1*100, mild.Top1*100, (base.Top1-mild.Top1)*100)},
			{"collapse under deep pruning", "conv1 falls to 0% at 90% (Fig. 6a)",
				fmt.Sprintf("conv1@90%% %.0f%% (Δ%.0f pts)", deep.Top1*100, (base.Top1-deep.Top1)*100)},
		},
	}, nil
}
