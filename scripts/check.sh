#!/bin/sh
# Tier-1+ gate: everything a PR must pass before merge (see ROADMAP.md).
# Runs formatting, vet, build, the full test suite under the race
# detector, and a one-iteration benchmark smoke pass.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke (go test -run - -bench . -benchtime 1x)"
go test -run - -bench . -benchtime 1x .

echo "check.sh: all gates passed"
