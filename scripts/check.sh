#!/bin/sh
# Tier-1+ gate: everything a PR must pass before merge (see ROADMAP.md).
# Runs formatting, vet, build, the full test suite under the race
# detector, and a one-iteration benchmark smoke pass.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke (go test -run - -bench . -benchtime 1x)"
go test -run - -bench . -benchtime 1x . ./internal/explore ./internal/serving

echo "== loadtest smoke (race-enabled gateway replay)"
go run -race ./cmd/ccperf loadtest \
    -requests 300 -duration 2s -windows 4 -replicas 1 \
    -queue 16 -max-batch 4 -slo 5ms -deadline 250ms -cooldown 300ms

echo "== chaos smoke (breakers + retries under canned faults, error-rate gate)"
go run -race ./cmd/ccperf loadtest \
    -requests 300 -duration 2s -windows 4 -replicas 2 \
    -queue 64 -max-batch 4 -slo 5ms -deadline 250ms \
    -chaos -max-error-rate 0.75

echo "== autoscale smoke (cost-accuracy loop; exits non-zero past the budget or p99 gate)"
go run -race ./cmd/ccperf loadtest \
    -requests 300 -duration 2s -windows 4 \
    -queue 64 -max-batch 4 -slo 50ms -deadline 500ms -cooldown 300ms \
    -autoscale -budget 2.7 -min-replicas 1 -max-replicas 3 \
    -autoscale-interval 100ms -max-p99 2s

echo "== fault-injected simulate smoke (preemption + straggler schedule)"
go run ./cmd/ccperf simulate \
    -fleet 2xp2.xlarge -degree conv1@30+conv2@50 \
    -faults "preempt@0:21600,slow@1:30000+3600x2,seed=7"

echo "check.sh: all gates passed"
