#!/bin/sh
# Tier-1+ gate: everything a PR must pass before merge (see ROADMAP.md).
# Runs formatting, vet, build, the full test suite under the race
# detector, and a two-count one-iteration benchmark smoke pass.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke (go test -run - -bench . -benchtime 1x -count 2)"
mkdir -p out
# -count 2 gives every timing unit two samples, so the benchdiff gate can
# run a real Welch test instead of the raw-threshold fallback — on a noisy
# shared box a single 1x iteration of a millisecond-scale benchmark swings
# well past any sane threshold without any code change.
go test -run - -bench . -benchmem -benchtime 1x -count 2 \
    . ./internal/nn ./internal/explore ./internal/engine ./internal/serving ./internal/tenant ./internal/shard | tee out/bench-check.txt

# Regression gate: diff the smoke run against the latest committed
# trajectory point. The smoke is single-iteration and the baseline may
# come from a different machine, so the default threshold is generous
# (0.5 = 50%) — it catches order-of-magnitude breakage, not noise; the
# committed-vs-committed trajectory carries the fine-grained story.
# BENCHDIFF_SKIP=1 escapes the gate; an intentional perf change is
# blessed by committing a fresh BENCH_<n+1>.json (docs/TELEMETRY.md).
baseline=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)
if [ "${BENCHDIFF_SKIP:-0}" = "1" ]; then
    echo "== benchdiff gate skipped (BENCHDIFF_SKIP=1)"
elif [ -z "$baseline" ]; then
    echo "== benchdiff gate skipped (no committed BENCH_*.json baseline)"
else
    echo "== benchdiff gate (vs $baseline, threshold ${BENCHDIFF_THRESHOLD:-0.5})"
    go run ./cmd/ccperf benchjson -in out/bench-check.txt \
        -sha "$(git rev-parse --short HEAD 2>/dev/null || echo nogit)" \
        -benchtime 1x -count 2 -note check.sh -out out/bench-check.json
    go run ./cmd/ccperf benchdiff \
        -threshold "${BENCHDIFF_THRESHOLD:-0.5}" -fail-on-regression \
        "$baseline" out/bench-check.json
fi

echo "== loadtest smoke (race-enabled gateway replay)"
go run -race ./cmd/ccperf loadtest \
    -requests 300 -duration 2s -windows 4 -replicas 1 \
    -queue 16 -max-batch 4 -slo 5ms -deadline 250ms -cooldown 300ms

echo "== chaos smoke (breakers + retries under canned faults, error-rate gate)"
go run -race ./cmd/ccperf loadtest \
    -requests 300 -duration 2s -windows 4 -replicas 2 \
    -queue 64 -max-batch 4 -slo 5ms -deadline 250ms \
    -chaos -max-error-rate 0.75

echo "== autoscale smoke (cost-accuracy loop; exits non-zero past the budget or p99 gate)"
go run -race ./cmd/ccperf loadtest \
    -requests 300 -duration 2s -windows 4 \
    -queue 64 -max-batch 4 -slo 50ms -deadline 500ms -cooldown 300ms \
    -autoscale -budget 2.7 -min-replicas 1 -max-replicas 3 \
    -autoscale-interval 100ms -max-p99 2s

echo "== sharded chaos smoke (3 shards / 2 regions, correlated regional failure mid-replay)"
# The resilience claim, gated: us-east goes dark for the middle third of
# the replay under a 2x spot spike, and client-visible errors must stay
# under 1% — requests re-route, fail over, or shift; they do not fail.
go run -race ./cmd/ccperf loadtest \
    -shards 3 -regions us-west,us-east -requests 200 -duration 3s \
    -replicas 2 -queue 64 -max-batch 4 -deadline 1s -cooldown 300ms \
    -shape "flash:0.5+0.05+0.2x2" -origin-corr 0.5 \
    -faults "region@us-east:1+1,spot@us-east:0+3x2,seed=9" \
    -max-error-rate 0.01

echo "== tenant chaos smoke (two-tenant fleet under canned faults, error-rate gate)"
go run -race ./cmd/ccperf loadtest \
    -tenants examples/tenants.json -duration 2s \
    -replicas 2 -max-batch 4 \
    -faults "err:0.05,seed=11" -max-error-rate 0.75

echo "== fault-injected simulate smoke (preemption + straggler schedule)"
go run ./cmd/ccperf simulate \
    -fleet 2xp2.xlarge -degree conv1@30+conv2@50 \
    -faults "preempt@0:21600,slow@1:30000+3600x2,seed=7"

echo "== predict smoke (leave-one-out transfer fit, 5% held-out error gate)"
# The fit recovers the simulated device model up to measurement jitter
# (±3%); 5% is breakage, not noise. The -train leg exercises the
# training cost model end-to-end on a mixed measured+transferred fleet.
go run ./cmd/ccperf predict -max-error 5
go run ./cmd/ccperf predict -max-error 5 \
    -train -samples 120000 -epochs 2 \
    -fleet "1xp3.2xlarge+1xp2.8xlarge" -jobs 2 -deadline-hours 24

echo "check.sh: all gates passed"
