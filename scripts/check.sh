#!/bin/sh
# Tier-1+ gate: everything a PR must pass before merge (see ROADMAP.md).
# Runs formatting, vet, build, the full test suite under the race
# detector, and a one-iteration benchmark smoke pass.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== bench smoke (go test -run - -bench . -benchtime 1x)"
go test -run - -bench . -benchtime 1x . ./internal/explore ./internal/serving

echo "== loadtest smoke (race-enabled gateway replay)"
go run -race ./cmd/ccperf loadtest \
    -requests 300 -duration 2s -windows 4 -replicas 1 \
    -queue 16 -max-batch 4 -slo 5ms -deadline 250ms -cooldown 300ms

echo "check.sh: all gates passed"
