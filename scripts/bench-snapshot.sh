#!/bin/sh
# Capture one bench trajectory point: run the hot-path benchmarks with
# -count repetitions (so benchdiff has variance to reason about) and write
# a sample-preserving ccperf/v1 bench envelope. Committed points live at
# the repo root as BENCH_<n>.json, one per PR (see docs/TELEMETRY.md).
#
#   scripts/bench-snapshot.sh                 # repo-root BENCH_<n+1>.json
#   scripts/bench-snapshot.sh out/bench.json  # explicit path (CI artifact)
#   COUNT=5 BENCHTIME=100ms scripts/bench-snapshot.sh   # more samples/time
#   LOADTEST=0 scripts/bench-snapshot.sh      # skip the macro loadtest run
set -eu

cd "$(dirname "$0")/.."

sha=$(git rev-parse --short HEAD 2>/dev/null || echo nogit)
benchtime=${BENCHTIME:-1x}
count=${COUNT:-3}
loadtest=${LOADTEST:-1}

# Default output: next free repo-root trajectory point BENCH_<n>.json.
out=${1:-}
if [ -z "$out" ]; then
    n=$(ls BENCH_*.json 2>/dev/null |
        sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$/\1/p' |
        sort -n | tail -1)
    n=$((${n:-0} + 1))
    out=BENCH_${n}.json
fi

mkdir -p out

echo "bench snapshot: micro benchmarks (-benchtime $benchtime -count $count)"
go test -run - -bench . -benchmem -benchtime "$benchtime" -count "$count" \
    . ./internal/nn ./internal/explore ./internal/engine ./internal/serving ./internal/tenant ./internal/shard > out/bench-raw.txt

loadtest_flag=""
if [ "$loadtest" = "1" ]; then
    echo "bench snapshot: macro loadtest (throughput/p99 + stage attribution)"
    go run ./cmd/ccperf loadtest \
        -requests 400 -duration 2s -windows 4 -replicas 2 \
        -queue 64 -max-batch 8 -slo 50ms -deadline 500ms -cooldown 200ms \
        -report-out out/loadtest-snapshot.json >/dev/null
    loadtest_flag="-loadtest out/loadtest-snapshot.json"
fi

# shellcheck disable=SC2086  # loadtest_flag is intentionally word-split
go run ./cmd/ccperf benchjson \
    -in out/bench-raw.txt \
    -sha "$sha" -benchtime "$benchtime" -count "$count" \
    $loadtest_flag \
    -out "$out"
echo "bench snapshot: $out"
