#!/bin/sh
# Capture the root-package benchmarks as a telemetry Snapshot JSON so perf
# trajectories can be diffed across PRs (see docs/TELEMETRY.md).
#
#   scripts/bench-snapshot.sh                # out/BENCH_<git-sha>.json
#   scripts/bench-snapshot.sh out/BENCH.json # explicit path
#   BENCHTIME=1s scripts/bench-snapshot.sh   # longer runs (default 1x smoke)
set -eu

cd "$(dirname "$0")/.."

sha=$(git rev-parse --short HEAD 2>/dev/null || echo nogit)
out=${1:-out/BENCH_${sha}.json}
benchtime=${BENCHTIME:-1x}

go test -run - -bench . -benchtime "$benchtime" . |
    go run ./cmd/ccperf benchjson -out "$out"
echo "bench snapshot: $out"
