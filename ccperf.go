// Package ccperf reproduces "Characterizing the Cost-Accuracy Performance
// of Cloud Applications" (Rathnayake, Ramapantulu, Teo — ICPP Workshops
// 2020) as a Go library.
//
// The library models CNN inference on cloud GPU instances whose accuracy is
// tuned by pruning, and answers the paper's central question: given a time
// deadline and a cost budget, which degree of pruning and which cloud
// resource configuration should a consumer pick?
//
// Three layers of API:
//
//   - System: measurement-driven characterization of one CNN (layer time
//     distribution, pruning sweeps, sweet-spots, TAR/CAR records).
//   - Planner: joint (pruning × cloud-configuration) space exploration —
//     feasible sets, Pareto frontiers, and Algorithm 1's greedy allocation.
//   - RunExperiment: regenerates every table and figure of the paper
//     (see experiments.go), used by cmd/paperbench and the benchmarks.
//
// The substrate is simulated: internal/gpusim is calibrated against the
// paper's published measurements, and internal/accuracy provides both
// calibrated curves and an empirically trained-and-pruned CNN. See
// DESIGN.md for the substitution inventory.
package ccperf

import (
	"context"
	"fmt"
	"math"

	"ccperf/internal/accuracy"
	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/explore"
	"ccperf/internal/measure"
	"ccperf/internal/metrics"
	"ccperf/internal/models"
	"ccperf/internal/prune"
)

// Model names accepted by NewSystem and NewPlanner.
const (
	Caffenet  = models.CaffenetName
	Googlenet = models.GooglenetName
)

// System characterizes one CNN on the cloud: the Section 3 measurement
// pipeline behind Figures 3–8, 11 and 12.
type System struct {
	Model   string
	harness *measure.Harness
	engine  *engine.Cache
}

// NewSystem builds a measurement system for a paper model ("caffenet" or
// "googlenet").
func NewSystem(model string) (*System, error) {
	h, err := measure.NewHarness(model)
	if err != nil {
		return nil, err
	}
	return &System{Model: model, harness: h, engine: engine.NewCache(h)}, nil
}

// SweepPoint is one row of a layer sweep: the prune ratio, the measured
// total time for the workload, and the predicted accuracy there.
type SweepPoint struct {
	Ratio   float64
	Minutes float64
	Top1    float64
	Top5    float64
}

// LayerSweep prunes a single layer at each ratio and measures total time
// and accuracy for w images on the named instance type — one sub-figure of
// Figures 6/7. Nil ratios mean the paper's 0–90% range at 10% steps.
func (s *System) LayerSweep(ctx context.Context, layer string, ratios []float64, instance string, w int64) ([]SweepPoint, error) {
	inst, err := cloud.ByName(instance)
	if err != nil {
		return nil, err
	}
	if len(ratios) == 0 {
		ratios = prune.Range(0, 0.9, 0.1)
	}
	pts, err := s.harness.LayerSweep(ctx, layer, ratios, inst, w)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(pts))
	for i, p := range pts {
		out[i] = SweepPoint{Ratio: p.Ratio, Minutes: p.Minutes, Top1: p.Top1, Top5: p.Top5}
	}
	return out, nil
}

// Predictor exposes the system's shared memoizing prediction engine. Every
// planner, simulator or serving layer built on this system should consume
// predictions through it, so repeated (degree, instance-type) evaluations
// are made once per process.
func (s *System) Predictor() engine.Predictor { return s.engine }

// Baseline returns the unpruned Top-1/Top-5 accuracy.
func (s *System) Baseline() (top1, top5 float64) {
	b := s.harness.Eval.Baseline()
	return b.Top1, b.Top5
}

// Measure runs the full measurement of one degree of pruning on one
// instance type for w images: inference time, pro-rated cost, accuracy,
// TAR and CAR (Section 3.3's output list).
func (s *System) Measure(ctx context.Context, d prune.Degree, instance string, w int64) (metrics.Record, error) {
	inst, err := cloud.ByName(instance)
	if err != nil {
		return metrics.Record{}, err
	}
	return s.harness.Record(ctx, d, inst, 0, w)
}

// SweetSpot describes a layer's sweet-spot region (Observation 1): the
// largest prune ratio with no accuracy loss, and the time saved there.
type SweetSpot struct {
	Layer        string
	MaxRatio     float64 // last ratio with unchanged accuracy
	TimeSavedPct float64 // total-time reduction at MaxRatio, in percent
}

// SweetSpots sweeps each layer at 10% steps on p2.xlarge and reports the
// sweet-spot end per layer.
func (s *System) SweetSpots(ctx context.Context, layers []string, w int64) ([]SweetSpot, error) {
	inst, err := cloud.ByName("p2.xlarge")
	if err != nil {
		return nil, err
	}
	var out []SweetSpot
	for _, layer := range layers {
		pts, err := s.harness.LayerSweep(ctx, layer, prune.Range(0, 0.9, 0.1), inst, w)
		if err != nil {
			return nil, err
		}
		base := pts[0]
		ss := SweetSpot{Layer: layer}
		for _, p := range pts {
			if p.Top1 == base.Top1 && p.Top5 == base.Top5 {
				ss.MaxRatio = p.Ratio
				ss.TimeSavedPct = (base.Minutes - p.Minutes) / base.Minutes * 100
			} else {
				break
			}
		}
		out = append(out, ss)
	}
	return out, nil
}

// Request describes a planning problem: infer Images within DeadlineHours
// and BudgetUSD, choosing among pruned variants and subsets of a resource
// pool.
type Request struct {
	Images        int64
	DeadlineHours float64 // 0 = unbounded
	BudgetUSD     float64 // 0 = unbounded
	// PoolTypes are instance type names; PerType replicates each
	// (default: the three p2 types × 3, the paper's Figure 9/10 pool).
	PoolTypes []string
	PerType   int
	// Variants is the number of pruned model versions to consider
	// (default 60, the paper's Figure 9/10 set). Seed fixes the sample.
	Variants int
	Seed     int64
	// UseTop5 selects the accuracy metric (default Top-1).
	UseTop5 bool
	// CapacityWeighted distributes the workload proportionally to each
	// instance's throughput instead of the paper's even split
	// (Equation 4) — see internal/cloud.Distribution.
	CapacityWeighted bool
	// Workers bounds the enumeration worker pool used by Frontiers
	// (default: runtime.NumCPU()). Telemetry reports pool utilization at
	// the chosen size under explore.worker_utilization.
	Workers int
}

func (r *Request) defaults() {
	if len(r.PoolTypes) == 0 {
		r.PoolTypes = []string{"p2.xlarge", "p2.8xlarge", "p2.16xlarge"}
	}
	if r.PerType == 0 {
		r.PerType = 3
	}
	if r.Variants == 0 {
		r.Variants = 60
	}
	if r.Seed == 0 {
		r.Seed = 42
	}
}

// Plan is a planning outcome.
type Plan struct {
	Found   bool
	Degree  string  // degree-of-pruning label
	Top1    float64 // fraction
	Top5    float64
	Config  string // resource configuration label
	Hours   float64
	CostUSD float64
	Ops     int // analytical-model evaluations spent searching
}

// Planner explores the joint configuration space for one model.
type Planner struct {
	sys *System
}

// NewPlanner builds a planner for a paper model.
func NewPlanner(model string) (*Planner, error) {
	sys, err := NewSystem(model)
	if err != nil {
		return nil, err
	}
	return &Planner{sys: sys}, nil
}

// System returns the underlying measurement system.
func (p *Planner) System() *System { return p.sys }

func (p *Planner) space(r *Request) (*explore.Space, explore.Input, error) {
	r.defaults()
	var pool []*cloud.Instance
	for _, name := range r.PoolTypes {
		inst, err := cloud.ByName(name)
		if err != nil {
			return nil, explore.Input{}, err
		}
		pool = append(pool, instReplicas(inst, r.PerType)...)
	}
	degrees := p.degrees(r)
	deadline, budget := math.Inf(1), math.Inf(1)
	if r.DeadlineHours > 0 {
		deadline = r.DeadlineHours * 3600
	}
	if r.BudgetUSD > 0 {
		budget = r.BudgetUSD
	}
	metric := explore.Top1
	if r.UseTop5 {
		metric = explore.Top5
	}
	dist := cloud.EvenSplit
	if r.CapacityWeighted {
		dist = cloud.CapacityWeighted
	}
	sp := &explore.Space{Pred: p.sys.engine, Degrees: degrees, Pool: pool, W: r.Images, Dist: dist, Workers: r.Workers}
	in := explore.Input{
		Degrees: degrees, Pool: pool, W: r.Images,
		Deadline: deadline, Budget: budget, Metric: metric, Dist: dist,
	}
	return sp, in, nil
}

func instReplicas(i *cloud.Instance, n int) []*cloud.Instance {
	out := make([]*cloud.Instance, n)
	for k := range out {
		out[k] = i
	}
	return out
}

// degrees builds the pruned-variant set: live variants only (Top-1 ≥ 15%),
// matching the paper's 60-version Caffenet space.
func (p *Planner) degrees(r *Request) []prune.Degree {
	var layers []string
	if p.sys.Model == Caffenet {
		layers = models.CaffenetConvNames()
	} else {
		layers = models.GooglenetSelectedConvNames()
	}
	keep := func(d prune.Degree) bool {
		a, err := p.sys.engine.Accuracy(context.Background(), d)
		return err == nil && a.Top1 >= 0.15
	}
	return prune.SampleDegreesFiltered(layers, prune.Range(0, 0.9, 0.1), r.Variants, r.Seed, keep)
}

// Allocate runs Algorithm 1: greedy TAR/CAR-guided allocation.
func (p *Planner) Allocate(ctx context.Context, r Request) (Plan, error) {
	_, in, err := p.space(&r)
	if err != nil {
		return Plan{}, err
	}
	res, err := explore.Allocate(ctx, p.sys.engine, in)
	if err != nil {
		return Plan{}, err
	}
	return toPlan(res), nil
}

// AllocateExhaustive runs the exponential brute-force baseline.
func (p *Planner) AllocateExhaustive(ctx context.Context, r Request) (Plan, error) {
	_, in, err := p.space(&r)
	if err != nil {
		return Plan{}, err
	}
	res, err := explore.Exhaustive(ctx, p.sys.engine, in)
	if err != nil {
		return Plan{}, err
	}
	return toPlan(res), nil
}

func toPlan(res explore.Result) Plan {
	return Plan{
		Found:  res.Found,
		Degree: res.Degree.Label(),
		Top1:   res.Acc.Top1, Top5: res.Acc.Top5,
		Config: res.Config.Label(),
		Hours:  res.Seconds / 3600, CostUSD: res.Cost,
		Ops: res.Ops,
	}
}

// FrontierPoint is one Pareto-optimal configuration.
type FrontierPoint struct {
	Degree   string
	Config   string
	Accuracy float64 // in the requested metric
	Hours    float64
	CostUSD  float64
}

// Frontiers enumerates the joint space under the request's constraints and
// returns (feasible count, time-accuracy frontier, cost-accuracy frontier)
// — the machinery of Figures 9 and 10.
func (p *Planner) Frontiers(ctx context.Context, r Request) (int, []FrontierPoint, []FrontierPoint, error) {
	sp, in, err := p.space(&r)
	if err != nil {
		return 0, nil, nil, err
	}
	cands, err := sp.Enumerate(ctx)
	if err != nil {
		return 0, nil, nil, err
	}
	feas := explore.Feasible(cands, in.Deadline, in.Budget)
	tf := explore.Frontier(feas, explore.ByTime, in.Metric)
	cf := explore.Frontier(feas, explore.ByCost, in.Metric)
	conv := func(cs []explore.Candidate) []FrontierPoint {
		out := make([]FrontierPoint, len(cs))
		for i, c := range cs {
			acc := c.Acc.Top1
			if r.UseTop5 {
				acc = c.Acc.Top5
			}
			out[i] = FrontierPoint{
				Degree: c.Degree.Label(), Config: c.Config.Label(),
				Accuracy: acc, Hours: c.Hours(), CostUSD: c.Cost,
			}
		}
		return out
	}
	return len(feas), conv(tf), conv(cf), nil
}

// EmpiricalEvaluator returns the trained-and-really-pruned accuracy
// evaluator (synthetic data, real SGD training, real L1-filter pruning) —
// the ground-truth companion to the calibrated curves.
func EmpiricalEvaluator() *accuracy.Empirical {
	return accuracy.NewEmpirical(accuracy.DefaultEmpiricalConfig())
}

// Validate sanity-checks a request.
func (r Request) Validate() error {
	if r.Images <= 0 {
		return fmt.Errorf("ccperf: request needs Images > 0")
	}
	if r.DeadlineHours < 0 || r.BudgetUSD < 0 {
		return fmt.Errorf("ccperf: negative constraints")
	}
	return nil
}
