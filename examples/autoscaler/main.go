// Autoscaler: the paper's cost-accuracy trade-off as a live control loop.
// One bursty arrival trace is replayed twice through the ccperf.Open
// facade — first under a generous $/hr budget, then under a budget that
// buys exactly one replica. With money available the autoscaler buys
// capacity (scale-out) and accuracy stays at 100%; with the budget binding
// the only remaining knob is the pruning ladder, so the fleet degrades
// through the same rungs the offline planner prices (Figures 6–10, live).
//
//	go run ./examples/autoscaler
package main

import (
	"fmt"
	"log"
	"time"

	"ccperf"
	"ccperf/internal/serving"
	"ccperf/internal/workload"
)

func replay(budget float64, maxReplicas int, trace *workload.Trace) {
	st, err := ccperf.Open(ccperf.Caffenet,
		ccperf.WithLadder(0, 0.5, 0.9),
		ccperf.WithSLO(30*time.Millisecond),
		ccperf.WithDeadline(500*time.Millisecond),
		ccperf.WithAutoscale(budget, 1, maxReplicas),
		ccperf.WithAutoscaleInterval(50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	st.Start()
	rep, err := serving.RunLoad(st.Gateway(), serving.LoadConfig{
		Trace:    trace,
		Duration: 3 * time.Second,
		Seed:     42,
		Cooldown: 300 * time.Millisecond,
	})
	st.Close()
	if err != nil {
		log.Fatal(err)
	}
	s := st.Autoscaler().Status()
	fmt.Printf("budget $%.2f/h (%s at $%.2f/h per replica):\n",
		budget, st.Instance().Name, st.Instance().PricePerHour)
	fmt.Printf("  served %d/%d, p99 %.1f ms, mean accuracy %.1f%%\n",
		rep.OK, rep.Submitted, rep.P99MS, rep.MeanAccuracy*100)
	fmt.Printf("  decisions: %d scale-outs, %d degrades, %d restores, %d scale-ins\n",
		s.ScaleOuts, s.Degrades, s.Restores, s.ScaleIns)
	fmt.Printf("  final fleet: %d replicas at ladder rung %d (%s)\n",
		s.Replicas, s.Variant, s.Profiles[s.Variant].Degree)
	fmt.Printf("  realized cost $%.4f over %.1f replica-seconds\n\n",
		s.Cost, s.ReplicaSeconds)
}

func main() {
	// A compressed day of bursty traffic, identical for both runs.
	trace, err := workload.Generate(workload.Config{
		Pattern:    workload.Bursty,
		DailyTotal: 900,
		Windows:    12,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Money available: buy capacity, keep accuracy ==")
	replay(6.0, 6, trace) // up to 6 replicas fit under $6/h

	fmt.Println("== Budget binds: the pruning ladder absorbs the surge ==")
	replay(0.9, 6, trace) // $0.9/h = exactly one p2.xlarge
}
