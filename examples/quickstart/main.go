// Quickstart: characterize Caffenet, measure one pruned configuration, and
// let Algorithm 1 pick a cloud configuration under a deadline and budget.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ccperf"
	"ccperf/internal/prune"
)

func main() {
	ctx := context.Background()
	// 1. A measurement system for the paper's Caffenet CNN.
	sys, err := ccperf.NewSystem(ccperf.Caffenet)
	if err != nil {
		log.Fatal(err)
	}
	top1, top5 := sys.Baseline()
	fmt.Printf("Caffenet baseline accuracy: Top-1 %.0f%%, Top-5 %.0f%%\n\n", top1*100, top5*100)

	// 2. Measure a degree of pruning on one EC2 instance: time, pro-rated
	// cost, accuracy, and the paper's TAR/CAR metrics.
	degree := prune.NewDegree("conv1", 0.3, "conv2", 0.5) // Figure 8's conv1-2
	rec, err := sys.Measure(ctx, degree, "p2.xlarge", 50_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conv1@30%%+conv2@50%% on p2.xlarge, 50k images:\n")
	fmt.Printf("  time %.1f min, cost $%.3f, Top-5 %.0f%%\n", rec.Seconds/60, rec.Cost, rec.Top5*100)
	fmt.Printf("  TAR %.0f s/acc, CAR $%.3f/acc\n\n", rec.TARTop5(), rec.CARTop5())

	// 3. Find each layer's sweet-spot: the deepest pruning with no
	// accuracy loss (Observation 1).
	spots, err := sys.SweetSpots(ctx, []string{"conv1", "conv2", "conv3"}, 50_000)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range spots {
		fmt.Printf("sweet-spot %-6s prune ≤ %.0f%%  (saves %.1f%% time for free)\n", s.Layer, s.MaxRatio*100, s.TimeSavedPct)
	}
	fmt.Println()

	// 4. Plan: one million images, 40-minute deadline, $5 budget.
	// Algorithm 1 picks the degree of pruning and the cloud configuration.
	planner, err := ccperf.NewPlanner(ccperf.Caffenet)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Allocate(ctx, ccperf.Request{
		Images:        1_000_000,
		DeadlineHours: 0.66,
		BudgetUSD:     5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !plan.Found {
		fmt.Println("no feasible configuration — relax the deadline or budget")
		return
	}
	fmt.Printf("plan: %s on %s\n", plan.Degree, plan.Config)
	fmt.Printf("      Top-1 %.0f%%, %.2f h, $%.2f  (%d model evaluations)\n",
		plan.Top1*100, plan.Hours, plan.CostUSD, plan.Ops)
}
