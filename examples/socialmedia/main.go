// Social-media photo filtering — the paper's motivating workload
// (Section 1): photos uploaded to a social platform must pass a CNN
// filter in near-real-time before publishing. "Close enough" accuracy is
// acceptable (a 75%-confident violation goes to manual review), so the
// operator trades accuracy for cost hour by hour.
//
// The example sizes the pipeline over a bursty diurnal day: fixed
// operating points are compared on the full trace, and for windows where
// the fixed fleet would miss its deadline (viral spikes), Algorithm 1
// re-plans the degree of pruning and the fleet on the fly.
//
//	go run ./examples/socialmedia
package main

import (
	"context"
	"fmt"
	"log"

	"ccperf"
	"ccperf/internal/prune"
	"ccperf/internal/report"
	"ccperf/internal/workload"
)

const (
	dailyPhotos   = 3_500_000 // paper's Facebook figure scaled by 100×
	deadlineHours = 0.5       // each hour's photos must clear within 30 min
	hourlyBudget  = 1.2       // dollars per window
)

func main() {
	ctx := context.Background()
	planner, err := ccperf.NewPlanner(ccperf.Caffenet)
	if err != nil {
		log.Fatal(err)
	}
	sys := planner.System()

	trace, err := workload.Generate(workload.Config{
		Pattern: workload.Bursty, DailyTotal: dailyPhotos, Windows: 24,
		BurstProb: 0.1, BurstScale: 3, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bursty diurnal day: %d photos total, peak hour %d photos\n\n", trace.Total(), trace.Peak())

	// Fixed operating points compared on the whole day.
	points := []struct {
		name string
		d    prune.Degree
	}{
		{"full-accuracy", prune.Degree{}},
		{"sweet-spot", prune.NewDegree("conv1", 0.3, "conv2", 0.5)}, // Figure 8 conv1-2
		{"aggressive", prune.NewDegree("conv1", 0.3, "conv2", 0.7, "conv3", 0.7)},
	}
	tb := report.NewTable("Fixed p2.16xlarge, per operating point (whole day)",
		"Operating point", "Top-5 (%)", "Cost ($/day)", "CAR ($)", "Deadline misses")
	for _, p := range points {
		var cost float64
		misses := 0
		var top5 float64
		for _, photos := range trace.Windows {
			rec, err := sys.Measure(ctx, p.d, "p2.16xlarge", photos)
			if err != nil {
				log.Fatal(err)
			}
			top5 = rec.Top5
			cost += rec.Cost
			if rec.Seconds > deadlineHours*3600 {
				misses++
			}
		}
		tb.Row(p.name, fmt.Sprintf("%.0f", top5*100), fmt.Sprintf("%.2f", cost),
			fmt.Sprintf("%.3f", cost/top5), misses)
	}
	fmt.Println(tb.String())

	// Adaptive operation: per window, Algorithm 1 picks degree AND fleet
	// under the deadline and hourly budget — spikes get more pruning or
	// more GPUs, quiet hours get a single cheap instance.
	at := report.NewTable("Adaptive (Algorithm 1 per window)",
		"Hour", "Photos", "Degree", "Config", "Top-1 (%)", "Minutes", "Cost ($)")
	var dayCost float64
	adaptMisses := 0
	for hour, photos := range trace.Windows {
		plan, err := planner.Allocate(ctx, ccperf.Request{
			Images:        photos,
			DeadlineHours: deadlineHours,
			BudgetUSD:     hourlyBudget,
			Variants:      25,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !plan.Found {
			adaptMisses++
			at.Row(hour, photos, "(infeasible)", "-", "-", "-", "-")
			continue
		}
		dayCost += plan.CostUSD
		if hour%4 == 0 || photos == trace.Peak() { // keep the table short
			at.Row(hour, photos, plan.Degree, plan.Config,
				fmt.Sprintf("%.0f", plan.Top1*100), fmt.Sprintf("%.0f", plan.Hours*60), fmt.Sprintf("%.2f", plan.CostUSD))
		}
	}
	fmt.Println(at.String())
	fmt.Printf("adaptive day: $%.2f total, %d infeasible windows\n", dayCost, adaptMisses)
}
