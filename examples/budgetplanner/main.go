// Budget planner: sweep the cost budget and watch the achievable accuracy,
// the Pareto frontier, and Algorithm 1's picks move — Section 4.4/4.5 as a
// planning tool. Also contrasts the greedy allocation against the
// exhaustive optimum at each budget.
//
//	go run ./examples/budgetplanner
package main

import (
	"context"
	"fmt"
	"log"

	"ccperf"
	"ccperf/internal/report"
)

func main() {
	ctx := context.Background()
	planner, err := ccperf.NewPlanner(ccperf.Caffenet)
	if err != nil {
		log.Fatal(err)
	}

	const images = 1_000_000
	const deadlineH = 0.75

	fmt.Printf("Planning %d Caffenet inferences, deadline %.2f h, budget sweep\n\n", images, deadlineH)
	tb := report.NewTable("Algorithm 1 vs exhaustive across budgets",
		"Budget ($)", "Greedy Top-1 (%)", "Greedy cost ($)", "Optimal Top-1 (%)", "Optimal cost ($)", "Greedy evals", "Exhaustive evals")
	for _, budget := range []float64{2.5, 3, 4, 5, 6, 8} {
		req := ccperf.Request{Images: images, DeadlineHours: deadlineH, BudgetUSD: budget}
		greedy, err := planner.Allocate(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := planner.AllocateExhaustive(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		cell := func(p ccperf.Plan, cost bool) string {
			if !p.Found {
				return "-"
			}
			if cost {
				return fmt.Sprintf("%.2f", p.CostUSD)
			}
			return fmt.Sprintf("%.0f", p.Top1*100)
		}
		tb.Row(budget, cell(greedy, false), cell(greedy, true), cell(exact, false), cell(exact, true), greedy.Ops, exact.Ops)
	}
	fmt.Println(tb.String())

	// At the mid budget, show the cost-accuracy frontier the consumer is
	// actually choosing from.
	req := ccperf.Request{Images: images, BudgetUSD: 5}
	n, _, costFrontier, err := planner.Frontiers(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget $5, no deadline: %d feasible configurations; cost-accuracy Pareto frontier:\n", n)
	fr := report.NewTable("", "Top-1 (%)", "Cost ($)", "Hours", "Degree", "Config")
	for _, p := range costFrontier {
		fr.Row(fmt.Sprintf("%.0f", p.Accuracy*100), fmt.Sprintf("%.2f", p.CostUSD), fmt.Sprintf("%.2f", p.Hours), p.Degree, p.Config)
	}
	fmt.Println(fr.String())
}
