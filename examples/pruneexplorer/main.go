// Prune explorer: the empirical path. Trains a small CNN in Go on a
// synthetic dataset, then really prunes it with all four pruning
// algorithms and re-measures accuracy — demonstrating that the paper's
// sweet-spot phenomenon (and the layer-sensitivity asymmetry of
// Observation 2) emerges from real pruning, not from calibration. Finally
// times the same custom network through the GPU simulator's FLOPs-based
// fallback to show pruning translating into simulated cloud time/cost.
//
//	go run ./examples/pruneexplorer
package main

import (
	"fmt"
	"log"

	"ccperf/internal/accuracy"
	"ccperf/internal/cloud"
	"ccperf/internal/dataset"
	"ccperf/internal/gpusim"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
	"ccperf/internal/report"
	"ccperf/internal/train"
)

func main() {
	// 1. Train the substrate once per pruning method (methods mutate
	// weights, so each comparison starts from an identical trained model).
	shape := nn.Shape{C: 1, H: 16, W: 16}
	ds, err := dataset.Synthetic(dataset.Config{
		Classes: 10, PerClass: 60, Shape: shape, Noise: 1.2, Shift: 2, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, val := ds.Split(0.75)
	model, err := train.New(train.Config{Input: shape, Conv1: 8, Conv2: 16, Classes: 10, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := model.Train(tr, train.DefaultOpts()); err != nil {
		log.Fatal(err)
	}
	base, _, err := model.Evaluate(val, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained small CNN: %.0f%% Top-1 on held-out synthetic data (chance 10%%)\n\n", base*100)

	// 2. Sweep all four pruning algorithms on conv1 and conv2.
	methods := []prune.Method{prune.L1Filter, prune.Magnitude, prune.StructuredScore, prune.GreedyCost}
	for layer := 1; layer <= 2; layer++ {
		tb := report.NewTable(fmt.Sprintf("Top-1 (%%) after pruning conv%d", layer),
			"Method", "0%", "25%", "50%", "75%", "90%")
		for _, m := range methods {
			row := []any{m.String(), fmt.Sprintf("%.0f", base*100)}
			for _, r := range []float64{0.25, 0.5, 0.75, 0.9} {
				c := model.Clone()
				if err := c.PruneConv(layer, r, m); err != nil {
					log.Fatal(err)
				}
				a, _, err := c.Evaluate(val, 3)
				if err != nil {
					log.Fatal(err)
				}
				row = append(row, fmt.Sprintf("%.0f", a*100))
			}
			tb.Row(row...)
		}
		fmt.Println(tb.String())
	}

	// 3. The packaged empirical evaluator (same substrate behind one call).
	e := accuracy.NewEmpirical(accuracy.DefaultEmpiricalConfig())
	a, err := e.Evaluate(prune.NewDegree("conv1", 0.25, "conv2", 0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("empirical evaluator, conv1@25%%+conv2@50%%: Top-1 %.0f%% (baseline %.0f%%)\n\n",
		a.Top1*100, e.Baseline().Top1*100)

	// 4. Time an uncalibrated custom network on the simulated cloud via
	// effective-FLOPs accounting: pruning really shrinks simulated time
	// and cost because the engine executes sparse kernels.
	net := nn.NewNet("custom", nn.Shape{C: 3, H: 64, W: 64})
	net.Add(
		nn.NewConv("c1", 32, 3, 3, 1, 1, 1, 1, 1),
		nn.NewReLU("r1"),
		nn.NewMaxPool("p1", 2, 2),
		nn.NewConv("c2", 64, 3, 3, 1, 1, 1, 1, 1),
		nn.NewReLU("r2"),
		nn.NewGlobalAvgPool("gap"),
		nn.NewFlatten("f"),
		nn.NewFC("fc", 10),
		nn.NewSoftmax("sm"),
	)
	if err := net.Init(7); err != nil {
		log.Fatal(err)
	}
	sim := gpusim.New()
	inst, err := cloud.ByName("p2.xlarge")
	if err != nil {
		log.Fatal(err)
	}
	tb := report.NewTable("custom net on simulated p2.xlarge (100k images)", "c2 prune (%)", "Time (s)", "Cost ($)")
	for _, r := range []float64{0, 0.5, 0.9} {
		if r > 0 {
			if err := prune.Apply(net, prune.NewDegree("c2", r), prune.L1Filter); err != nil {
				log.Fatal(err)
			}
		}
		sec, err := sim.TotalTime(gpusim.ModelRun{ModelName: "custom", Net: net}, inst, 1, 100_000)
		if err != nil {
			log.Fatal(err)
		}
		tb.Row(r*100, fmt.Sprintf("%.0f", sec), fmt.Sprintf("%.3f", sec/3600*inst.PricePerHour))
	}
	fmt.Println(tb.String())
}
