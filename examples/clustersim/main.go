// Cluster simulation: run a photo-filtering service through a full bursty
// day on a rented GPU fleet and observe what the analytical model cannot
// show — queueing delay, tail latency, utilization, and how a degree of
// pruning converts directly into latency headroom on the same fleet.
//
//	go run ./examples/clustersim
package main

import (
	"context"
	"fmt"
	"log"

	"ccperf"
	"ccperf/internal/cloud"
	"ccperf/internal/cluster"
	"ccperf/internal/fault"
	"ccperf/internal/prune"
	"ccperf/internal/report"
	"ccperf/internal/workload"
)

func main() {
	sys, err := ccperf.NewSystem(ccperf.Caffenet)
	if err != nil {
		log.Fatal(err)
	}

	trace, err := workload.Generate(workload.Config{
		Pattern: workload.Bursty, DailyTotal: 3_500_000, Windows: 24,
		BurstProb: 0.1, BurstScale: 3, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	// 20k-image jobs arriving through each hour, each due within 30 min.
	jobs := cluster.JobsFromWindows(trace.Windows, 3600, 20_000, 0.5)
	fmt.Printf("day: %d photos in %d jobs (peak hour %d photos)\n\n", trace.Total(), len(jobs), trace.Peak())

	xl, err := cloud.ByName("p2.xlarge")
	if err != nil {
		log.Fatal(err)
	}
	g3, err := cloud.ByName("g3.4xlarge")
	if err != nil {
		log.Fatal(err)
	}
	rep := func(i *cloud.Instance, n int) []*cloud.Instance {
		out := make([]*cloud.Instance, n)
		for k := range out {
			out[k] = i
		}
		return out
	}

	// The peak hour carries ~3.2 GPU-hours of unpruned Caffenet work, so a
	// 2-GPU K80 fleet saturates at the peak (queues build, deadlines slip)
	// while 3 GPUs — or 2 GPUs with sweet-spot pruning — keep up.
	fleets := []struct {
		name  string
		fleet []*cloud.Instance
	}{
		{"2x p2.xlarge", rep(xl, 2)},
		{"3x p2.xlarge", rep(xl, 3)},
		{"2x g3.4xlarge", rep(g3, 2)},
	}
	degrees := []struct {
		name string
		d    prune.Degree
	}{
		{"nonpruned", prune.Degree{}},
		{"sweet-spot", prune.NewDegree("conv1", 0.3, "conv2", 0.5)},
	}

	tb := report.NewTable("24 h service simulation (30-min job deadlines)",
		"Fleet", "Degree", "p50 resp (min)", "p95 resp (min)", "Misses", "Util (%)", "Cost ($/day)")
	for _, f := range fleets {
		for _, d := range degrees {
			res, err := cluster.Run(context.Background(), cluster.Config{
				Fleet:   f.fleet,
				Perf:    sys.Predictor().Perf(d.d, 0),
				Horizon: 24 * 3600,
			}, jobs)
			if err != nil {
				log.Fatal(err)
			}
			tb.Row(f.name, d.name,
				fmt.Sprintf("%.1f", res.P50Response/60),
				fmt.Sprintf("%.1f", res.P95Response/60),
				res.Misses,
				fmt.Sprintf("%.0f", res.AverageUtilization()*100),
				fmt.Sprintf("%.2f", res.Cost))
		}
	}
	fmt.Println(tb.String())

	// Autoscaling: instead of a fixed fleet, size p2.xlarge count per hour.
	// The oracle predictor tracks the trace perfectly; the reactive one
	// lags it by an hour and pays at burst onset.
	at := report.NewTable("Autoscaled p2.xlarge fleet (sweet-spot degree, 5-min boot delay)",
		"Predictor", "p50 resp (min)", "p95 resp (min)", "Misses", "Util (%)", "Cost ($/day)", "Peak fleet")
	perf := sys.Predictor().Perf(prune.NewDegree("conv1", 0.3, "conv2", 0.5), 0)
	specXL, err := cluster.SpecFor(xl, perf)
	if err != nil {
		log.Fatal(err)
	}
	for _, pred := range []cluster.Predictor{cluster.Oracle, cluster.Reactive} {
		res, err := cluster.RunAutoscaled(cluster.AutoscaleConfig{
			Instance: specXL, Min: 1, Max: 8, TargetUtil: 0.7,
			BootDelay: 300, WindowSeconds: 3600, Predictor: pred,
		}, trace.Windows, 20_000, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		peak := 0
		for _, n := range res.Active {
			if n > peak {
				peak = n
			}
		}
		at.Row(pred.String(),
			fmt.Sprintf("%.1f", res.P50Response/60),
			fmt.Sprintf("%.1f", res.P95Response/60),
			res.Misses,
			fmt.Sprintf("%.0f", res.AverageUtilization()*100),
			fmt.Sprintf("%.2f", res.Cost),
			peak)
	}
	fmt.Println(at.String())

	// Fault injection: a spot-market reclaim takes one of the two
	// tight-fleet instances in the middle of the busiest hour and keeps it.
	// The revoked instance stops billing (the day gets *cheaper*), but the
	// surviving GPU inherits the interrupted job plus the whole backlog:
	// deadline misses pile up, so the cost of each image actually served
	// on time rises — the honest price of the preemption.
	peakHour := 0
	for h, n := range trace.Windows {
		if n > trace.Windows[peakHour] {
			peakHour = h
		}
	}
	spec := fmt.Sprintf("preempt@1:%d,seed=9", peakHour*3600+1800)
	faults, err := fault.ParseSchedule(spec)
	if err != nil {
		log.Fatal(err)
	}
	ft := report.NewTable(fmt.Sprintf("spot preemption mid-hour-%d on the 2x p2.xlarge fleet (sweet-spot degree)", peakHour),
		"Scenario", "Misses", "Retries", "Wasted (s)", "$ / M on-time", "Cost ($/day)")
	for _, sc := range []struct {
		name   string
		faults *fault.Schedule
	}{
		{"fault-free", nil},
		{spec, faults},
	} {
		res, err := cluster.Run(context.Background(), cluster.Config{
			Fleet:   fleets[0].fleet,
			Perf:    sys.Predictor().Perf(degrees[1].d, 0),
			Horizon: 24 * 3600,
			Faults:  sc.faults,
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		ft.Row(sc.name, res.Misses, res.Retries,
			fmt.Sprintf("%.0f", res.WastedSeconds),
			fmt.Sprintf("%.2f", res.CostPerMillionOnTime()),
			fmt.Sprintf("%.2f", res.Cost))
	}
	fmt.Println(ft.String())

	// Response-time distribution for the tight fleet at both degrees.
	for _, d := range degrees {
		res, err := cluster.Run(context.Background(), cluster.Config{
			Fleet:   fleets[0].fleet,
			Perf:    sys.Predictor().Perf(d.d, 0),
			Horizon: 24 * 3600,
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		resp := make([]float64, len(res.Jobs))
		for i, s := range res.Jobs {
			resp[i] = s.Response() / 60
		}
		fmt.Println(report.Histogram(fmt.Sprintf("response-time distribution, %s on %s (min)", d.name, fleets[0].name), "m", resp, 8, 40))
	}

	fmt.Println("Pruning to the sweet-spot buys the same latency as adding hardware —")
	fmt.Println("but for free; autoscaling then keeps the rented fleet near the target")
	fmt.Println("utilization instead of paying for the peak all day.")
}
