package ccperf

import (
	"bytes"
	"strings"
	"testing"
)

func TestResultJSONRoundTrip(t *testing.T) {
	r := runExp(t, "table3")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"ID\": \"table3\"") {
		t.Fatalf("json = %s", buf.String())
	}
	back, err := ResultFromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != r.ID || back.Title != r.Title || back.Text != r.Text {
		t.Fatal("round trip lost fields")
	}
	if len(back.Findings) != len(r.Findings) {
		t.Fatal("round trip lost findings")
	}
}

func TestResultFromJSONGarbage(t *testing.T) {
	if _, err := ResultFromJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("expected error for broken JSON")
	}
}
