package ccperf

// Benchmark harness: one benchmark per table and figure of the paper (plus
// the ablations called out in DESIGN.md §6). Each benchmark regenerates
// the experiment and prints the paper-vs-measured findings once, so
//
//	go test -bench=. -benchmem
//
// reproduces every row/series the paper reports alongside Go-level timing
// of the regeneration itself.

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"ccperf/internal/cloud"
	"ccperf/internal/explore"
	"ccperf/internal/gpusim"
	"ccperf/internal/measure"
	"ccperf/internal/models"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
	"ccperf/internal/tensor"
)

var printOnce sync.Map

// benchExperiment runs one registered experiment per iteration, printing
// its findings the first time.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id)
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := printOnce.LoadOrStore(id, true); !loaded {
			fmt.Fprintf(os.Stdout, "\n==== %s — %s\n%s", res.ID, res.Title, res.Text)
			for _, f := range res.Findings {
				paper := f.Paper
				if paper == "" {
					paper = "(not reported)"
				}
				fmt.Fprintf(os.Stdout, "  %-34s paper: %-44s measured: %s\n", f.Name, paper, f.Measured)
			}
		}
	}
}

func BenchmarkTable1CaffenetLayers(b *testing.B)         { benchExperiment(b, "table1") }
func BenchmarkTable3CloudResources(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkFigure3LayerTimeDistribution(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFigure4SingleInference(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFigure5ParallelInference(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFigure6CaffenetLayerSweep(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFigure7GooglenetLayerSweep(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFigure8MultiLayerPruning(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFigure9TimeAccuracyPareto(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFigure10CostAccuracyPareto(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFigure11TARGrid(b *testing.B)              { benchExperiment(b, "fig11") }
func BenchmarkFigure12CARResourceTypes(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkEmpiricalSweetSpot(b *testing.B)           { benchExperiment(b, "empirical") }
func BenchmarkCalibrationTable(b *testing.B)             { benchExperiment(b, "calibration") }
func BenchmarkConstraintSensitivity(b *testing.B)        { benchExperiment(b, "sensitivity") }
func BenchmarkSampleRobustness(b *testing.B)             { benchExperiment(b, "robustness") }
func BenchmarkJointParetoSurface(b *testing.B)           { benchExperiment(b, "joint") }
func BenchmarkTransferLeaveOneOut(b *testing.B)          { benchExperiment(b, "transfer") }

// BenchmarkAlgorithm1VsExhaustive times the two searches on the Figure
// 9/10 input and reports their model-evaluation counts — the paper's
// exponential-to-polynomial claim, measured.
func BenchmarkAlgorithm1VsExhaustive(b *testing.B) {
	planner, err := NewPlanner(Caffenet)
	if err != nil {
		b.Fatal(err)
	}
	req := Request{Images: W1M, DeadlineHours: Fig9DeadlineSeconds / 3600, BudgetUSD: Fig10BudgetUSD}
	b.Run("greedy", func(b *testing.B) {
		var ops int
		for i := 0; i < b.N; i++ {
			plan, err := planner.Allocate(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			ops = plan.Ops
		}
		b.ReportMetric(float64(ops), "model-evals")
	})
	b.Run("exhaustive", func(b *testing.B) {
		var ops int
		for i := 0; i < b.N; i++ {
			plan, err := planner.AllocateExhaustive(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			ops = plan.Ops
		}
		b.ReportMetric(float64(ops), "model-evals")
	})
	benchExperiment(b, "alg1")
}

// BenchmarkAblationSparseGEMM compares the dense GEMM and CSR SpMM kernels
// a pruned convolution can run through, across weight sparsities — the
// crossover that justifies the sparse execution path (DESIGN.md §6.1).
func BenchmarkAblationSparseGEMM(b *testing.B) {
	const rows, inner, cols = 256, 1200, 729 // Caffenet conv2 GEMM shape
	dense := tensor.NewMatrix(rows, inner)
	x := tensor.NewMatrix(inner, cols)
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	for _, sparsity := range []float64{0, 0.5, 0.9} {
		w := dense.Clone()
		for i := range w.Data {
			if float64(i%100) >= sparsity*100 {
				w.Data[i] = float32(i%13) - 6
			}
		}
		csr := tensor.ToCSR(w)
		b.Run(fmt.Sprintf("dense/sparsity=%.0f%%", sparsity*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMul(w, x)
			}
		})
		b.Run(fmt.Sprintf("csr/sparsity=%.0f%%", sparsity*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.SpMM(csr, x)
			}
		})
	}
}

// BenchmarkAblationPruningMethods times the four pruning algorithms on a
// Caffenet-conv2-sized weight matrix (DESIGN.md §6.2). The network is
// built once; each iteration restores the pristine weights and re-prunes.
func BenchmarkAblationPruningMethods(b *testing.B) {
	net := models.Caffenet()
	if err := net.Init(1); err != nil {
		b.Fatal(err)
	}
	p, ok := net.PrunableByName("conv2")
	if !ok {
		b.Fatal("conv2 missing")
	}
	var _ nn.Prunable = p
	pristine := p.Weights().Clone()
	for _, m := range []prune.Method{prune.L1Filter, prune.Magnitude, prune.StructuredScore, prune.GreedyCost} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(p.Weights().Data, pristine.Data)
				b.StartTimer()
				if err := prune.Layer(p, 0.5, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBatchSize shows the simulated-cloud cost of running
// below, at, and above the GPU saturation batch (DESIGN.md §6.3).
func BenchmarkAblationBatchSize(b *testing.B) {
	sim := gpusim.New()
	inst, err := cloud.ByName("p2.xlarge")
	if err != nil {
		b.Fatal(err)
	}
	dev, err := sim.Device(inst.GPU)
	if err != nil {
		b.Fatal(err)
	}
	run := gpusim.ModelRun{ModelName: models.CaffenetName}
	for _, batch := range []int{30, 300, 1200} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				bt, err := sim.BatchTime(run, dev, 1, batch)
				if err != nil {
					b.Fatal(err)
				}
				total = math.Ceil(float64(W50k)/float64(batch)) * bt
			}
			b.ReportMetric(total, "sim-seconds-50k")
		})
	}
}

// BenchmarkAblationDistribution quantifies the waste of the paper's even
// workload split (Equation 4) against a capacity-weighted split on
// heterogeneous configurations (DESIGN.md §6): the mixed three-type config
// is dominated by its p2.xlarge straggler under the even split.
func BenchmarkAblationDistribution(b *testing.B) {
	h, err := measure.NewHarness(models.CaffenetName)
	if err != nil {
		b.Fatal(err)
	}
	perf := h.Perf(prune.Degree{}, 0)
	xl, _ := cloud.ByName("p2.xlarge")
	xl16, _ := cloud.ByName("p2.16xlarge")
	cfgs := map[string]cloud.Config{
		"homogeneous": cloud.NewConfig(xl, xl, xl),
		"mixed":       cloud.NewConfig(xl, xl16),
	}
	for name, cfg := range cfgs {
		for _, dist := range []cloud.Distribution{cloud.EvenSplit, cloud.CapacityWeighted} {
			b.Run(name+"/"+dist.String(), func(b *testing.B) {
				var sec float64
				for i := 0; i < b.N; i++ {
					est, err := cloud.EstimateRunWith(cfg, W1M, perf, dist)
					if err != nil {
						b.Fatal(err)
					}
					sec = est.Seconds
				}
				b.ReportMetric(sec, "sim-seconds-1M")
			})
		}
	}
}

// BenchmarkMatmul is the ROADMAP-named matmul hot path at the Caffenet
// conv2 GEMM shape (256×1200 · 1200×729), aliased into the root package so
// every bench snapshot — which runs ., ./internal/explore,
// ./internal/serving and ./internal/tenant — carries all five gated hot
// paths (Enumerate/Batcher/GatewayThroughput/TenantFairness/Matmul).
func BenchmarkMatmul(b *testing.B) {
	const rows, inner, cols = 256, 1200, 729
	w := tensor.NewMatrix(rows, inner)
	x := tensor.NewMatrix(inner, cols)
	for i := range w.Data {
		w.Data[i] = float32(i%13) - 6
	}
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(w, x)
	}
}

// BenchmarkSpaceEnumeration times the full Figure 9/10 joint-space
// enumeration (30 660 analytical-model evaluations).
func BenchmarkSpaceEnumeration(b *testing.B) {
	h, err := measure.NewHarness(models.CaffenetName)
	if err != nil {
		b.Fatal(err)
	}
	keep := func(d prune.Degree) bool {
		a, err := h.Eval.Evaluate(d)
		return err == nil && a.Top1 >= 0.15
	}
	degrees := prune.SampleDegreesFiltered(models.CaffenetConvNames(), prune.Range(0, 0.9, 0.1), 60, SpaceSeed, keep)
	pool := cloud.BuildPool(cloud.P2Types(), 3)
	sp := &explore.Space{Pred: h, Degrees: degrees, Pool: pool, W: W1M}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := sp.Enumerate(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(cands) != 60*511 {
			b.Fatalf("candidates = %d", len(cands))
		}
	}
}
