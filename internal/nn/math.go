package nn

import "math"

// sqrtNeg2Log returns sqrt(-2 ln u), the Box-Muller radius.
func sqrtNeg2Log(u float64) float64 { return math.Sqrt(-2 * math.Log(u)) }

// cosTau returns cos(2πu).
func cosTau(u float64) float64 { return math.Cos(2 * math.Pi * u) }

// sinTau returns sin(2πu).
func sinTau(u float64) float64 { return math.Sin(2 * math.Pi * u) }
