package nn

import (
	"math"

	"ccperf/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct{ name string }

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Kind implements Layer.
func (r *ReLU) Kind() string { return "relu" }

// OutShape implements Layer.
func (r *ReLU) OutShape(in Shape) Shape { return in }

// Forward implements Layer. The input is never mutated. When a ReLU
// directly follows a conv or FC layer, Net.planFusion folds it into that
// layer's kernel epilogue and this standalone path is skipped entirely.
func (r *ReLU) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	out := wsAcquire(ws, in.Dim(0), in.Dim(1), in.Dim(2))
	for i, v := range in.Data {
		if v < 0 {
			v = 0
		}
		out.Data[i] = v
	}
	return out
}

// Cost implements Layer.
func (r *ReLU) Cost(in Shape) Cost {
	n := int64(in.Volume())
	return Cost{FLOPs: n, EffectiveFLOPs: n, ActivationBytes: 8 * n}
}

// LRN is AlexNet-style local response normalization across channels.
type LRN struct {
	name  string
	Size  int
	Alpha float64
	Beta  float64
	K     float64
}

// NewLRN constructs an LRN layer with AlexNet defaults (n=5, α=1e-4, β=0.75).
func NewLRN(name string) *LRN {
	return &LRN{name: name, Size: 5, Alpha: 1e-4, Beta: 0.75, K: 1}
}

// Name implements Layer.
func (l *LRN) Name() string { return l.name }

// Kind implements Layer.
func (l *LRN) Kind() string { return "lrn" }

// OutShape implements Layer.
func (l *LRN) OutShape(in Shape) Shape { return in }

// Forward implements Layer.
func (l *LRN) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	out := wsAcquire(ws, c, h, w)
	plane := h * w
	half := l.Size / 2
	for y := 0; y < plane; y++ {
		for ch := 0; ch < c; ch++ {
			lo := ch - half
			if lo < 0 {
				lo = 0
			}
			hi := ch + half
			if hi >= c {
				hi = c - 1
			}
			var ss float64
			for j := lo; j <= hi; j++ {
				v := float64(in.Data[j*plane+y])
				ss += v * v
			}
			denom := math.Pow(l.K+l.Alpha/float64(l.Size)*ss, l.Beta)
			out.Data[ch*plane+y] = float32(float64(in.Data[ch*plane+y]) / denom)
		}
	}
	return out
}

// Cost implements Layer. LRN does ~Size multiply-adds plus a pow per element.
func (l *LRN) Cost(in Shape) Cost {
	n := int64(in.Volume())
	flops := n * int64(2*l.Size+8)
	return Cost{FLOPs: flops, EffectiveFLOPs: flops, ActivationBytes: 8 * n}
}

// Softmax converts logits to probabilities. Numerically stabilized.
type Softmax struct{ name string }

// NewSoftmax constructs a softmax layer.
func NewSoftmax(name string) *Softmax { return &Softmax{name: name} }

// Name implements Layer.
func (s *Softmax) Name() string { return s.name }

// Kind implements Layer.
func (s *Softmax) Kind() string { return "softmax" }

// OutShape implements Layer.
func (s *Softmax) OutShape(in Shape) Shape { return in }

// Forward implements Layer.
func (s *Softmax) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	out := wsAcquire(ws, in.Dim(0), in.Dim(1), in.Dim(2))
	copy(out.Data, in.Data)
	SoftmaxInPlace(out.Data)
	return out
}

// SoftmaxInPlace normalizes logits to probabilities in place.
func SoftmaxInPlace(x []float32) {
	if len(x) == 0 {
		return
	}
	mx := x[0]
	for _, v := range x {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - mx))
		x[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range x {
		x[i] *= inv
	}
}

// Cost implements Layer.
func (s *Softmax) Cost(in Shape) Cost {
	n := int64(in.Volume())
	return Cost{FLOPs: 8 * n, EffectiveFLOPs: 8 * n, ActivationBytes: 8 * n}
}

// Dropout is an inference-time no-op kept so network definitions mirror the
// training-time topology (Caffenet has dropout after fc1 and fc2).
type Dropout struct {
	name string
	Rate float64
}

// NewDropout constructs an inference no-op dropout layer.
func NewDropout(name string, rate float64) *Dropout { return &Dropout{name: name, Rate: rate} }

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Kind implements Layer.
func (d *Dropout) Kind() string { return "dropout" }

// OutShape implements Layer.
func (d *Dropout) OutShape(in Shape) Shape { return in }

// Forward implements Layer. At inference dropout is identity.
func (d *Dropout) Forward(in *tensor.Tensor, _ *Workspace) *tensor.Tensor { return in }

// Cost implements Layer.
func (d *Dropout) Cost(Shape) Cost { return Cost{} }

// Flatten reshapes CHW to a 1-D vector (Cx1x1 convention).
type Flatten struct{ name string }

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Kind implements Layer.
func (f *Flatten) Kind() string { return "flatten" }

// OutShape implements Layer.
func (f *Flatten) OutShape(in Shape) Shape { return Shape{C: in.Volume(), H: 1, W: 1} }

// Forward implements Layer: a zero-copy view over the input's data. With a
// workspace the header comes from its pool; either way no data moves.
func (f *Flatten) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	if ws == nil {
		return in.Reshape(in.Len(), 1, 1)
	}
	return ws.View(in.Data, in.Len(), 1, 1)
}

// Cost implements Layer.
func (f *Flatten) Cost(Shape) Cost { return Cost{} }
