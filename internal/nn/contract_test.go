package nn

import (
	"testing"

	"ccperf/internal/tensor"
)

// TestLayerContract exercises every layer type through the full Layer
// interface: stable name/kind, OutShape consistency with Forward, and
// non-negative cost accounting.
func TestLayerContract(t *testing.T) {
	in := Shape{C: 4, H: 8, W: 8}

	conv := NewConv("conv", 6, 3, 3, 1, 1, 1, 1, 1)
	if err := conv.Init(in.C, 1); err != nil {
		t.Fatal(err)
	}
	fc := NewFC("fc", 5)
	fc.Init(in.Volume(), 2)
	incep := NewInception("incep", 2, 2, 4, 2, 2, 2)
	if err := incep.Init(in.C, 3); err != nil {
		t.Fatal(err)
	}
	res := NewResidual("res", NewConv("res-c", 4, 3, 3, 1, 1, 1, 1, 1))
	if err := res.Init(in, 4); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		layer Layer
		kind  string
		// flat is true for layers that need a flattened (Cx1x1) input.
		flat bool
	}{
		{conv, "conv", false},
		{fc, "fc", true},
		{incep, "inception", false},
		{res, "residual", false},
		{NewReLU("relu"), "relu", false},
		{NewLRN("lrn"), "lrn", false},
		{NewSoftmax("sm"), "softmax", false},
		{NewDropout("do", 0.5), "dropout", false},
		{NewFlatten("fl"), "flatten", false},
		{NewMaxPool("mp", 2, 2), "pool", false},
		{NewAvgPool("ap", 2, 2), "pool", false},
		{NewGlobalAvgPool("gap"), "pool", false},
		{NewBatchNorm("bn", 4), "batchnorm", false},
	}
	for _, c := range cases {
		if c.layer.Name() == "" {
			t.Errorf("%T: empty name", c.layer)
		}
		if c.layer.Kind() != c.kind {
			t.Errorf("%s: kind = %q, want %q", c.layer.Name(), c.layer.Kind(), c.kind)
		}
		shape := in
		var x *tensor.Tensor
		if c.flat {
			shape = Shape{C: in.Volume(), H: 1, W: 1}
		}
		x = tensor.New(shape.C, shape.H, shape.W)
		for i := range x.Data {
			x.Data[i] = float32(i%13)/13 - 0.4
		}
		want := c.layer.OutShape(shape)
		out := c.layer.Forward(x, nil)
		got := Shape{C: out.Dim(0), H: out.Dim(1), W: out.Dim(2)}
		if got != want {
			t.Errorf("%s: Forward shape %v, OutShape %v", c.layer.Name(), got, want)
		}
		// The workspace path must be numerically identical to the
		// allocating path.
		ws := NewWorkspace()
		wsOut := c.layer.Forward(x, ws)
		if len(wsOut.Data) != len(out.Data) {
			t.Errorf("%s: workspace Forward len %d, want %d", c.layer.Name(), len(wsOut.Data), len(out.Data))
		} else {
			for i, v := range wsOut.Data {
				if v != out.Data[i] {
					t.Errorf("%s: workspace Forward data[%d] = %v, want %v", c.layer.Name(), i, v, out.Data[i])
					break
				}
			}
		}
		cost := c.layer.Cost(shape)
		if cost.FLOPs < 0 || cost.EffectiveFLOPs < 0 || cost.EffectiveFLOPs > cost.FLOPs {
			t.Errorf("%s: cost %+v inconsistent", c.layer.Name(), cost)
		}
		if cost.NNZ > cost.Params {
			t.Errorf("%s: NNZ %d > Params %d", c.layer.Name(), cost.NNZ, cost.Params)
		}
	}
}

func TestConvGroupsFloorAtOne(t *testing.T) {
	c := NewConv("c", 4, 3, 3, 1, 1, 1, 1, 0)
	if c.Groups != 1 {
		t.Fatalf("groups = %d, want clamped to 1", c.Groups)
	}
}

func TestInceptionInitErrorPropagates(t *testing.T) {
	// An inception whose 3x3 branch width cannot be initialized (groups
	// are always 1 inside inception, so force the error via zero input
	// channels through a bad outer call).
	b := NewInception("bad", 2, 2, 4, 2, 2, 2)
	if err := b.Init(0, 1); err == nil {
		t.Fatal("expected error for zero input channels")
	}
}
