package nn

import (
	"fmt"

	"ccperf/internal/tensor"
)

// Net is a sequential CNN: layers execute in order on CHW tensors.
// Inception blocks appear as single composite layers.
type Net struct {
	Name   string
	Input  Shape
	layers []Layer
	shapes []Shape // shapes[i] is the input shape of layers[i]
	// fused[i] marks layers folded into their predecessor's kernel
	// epilogue (ReLU after conv/FC) and skipped by Forward. Computed by
	// planFusion during Init; nil means nothing is fused.
	fused []bool
}

// NewNet constructs an empty network with the given input shape.
func NewNet(name string, input Shape) *Net {
	return &Net{Name: name, Input: input}
}

// Add appends layers.
func (n *Net) Add(ls ...Layer) { n.layers = append(n.layers, ls...) }

// Layers returns the layer list in execution order.
func (n *Net) Layers() []Layer { return n.layers }

// Init wires input shapes through the network, initializing the weights of
// every Conv, FC and Inception layer deterministically from seed.
func (n *Net) Init(seed int64) error {
	n.shapes = make([]Shape, 0, len(n.layers))
	s := n.Input
	for i, l := range n.layers {
		n.shapes = append(n.shapes, s)
		switch v := l.(type) {
		case *Conv:
			if err := v.Init(s.C, seed+int64(i)*104729); err != nil {
				return err
			}
		case *FC:
			v.Init(s.Volume(), seed+int64(i)*104729)
		case *Inception:
			if err := v.Init(s.C, seed+int64(i)*104729); err != nil {
				return err
			}
		case *Residual:
			if err := v.Init(s, seed+int64(i)*104729); err != nil {
				return err
			}
		}
		s = l.OutShape(s)
	}
	n.planFusion()
	return nil
}

// planFusion folds each ReLU that directly follows a conv or FC layer into
// that layer's fused kernel epilogue, marking the ReLU itself as skipped.
// Cost accounting is untouched — only execution changes, and ReLU is
// idempotent so a fused-then-standalone replay would still be correct.
func (n *Net) planFusion() {
	n.fused = make([]bool, len(n.layers))
	for i := 0; i+1 < len(n.layers); i++ {
		if _, ok := n.layers[i+1].(*ReLU); !ok {
			continue
		}
		switch v := n.layers[i].(type) {
		case *Conv:
			v.fuseReLU = true
			n.fused[i+1] = true
		case *FC:
			v.fuseReLU = true
			n.fused[i+1] = true
		}
	}
}

// OutShape returns the network output shape.
func (n *Net) OutShape() Shape {
	s := n.Input
	for _, l := range n.layers {
		s = l.OutShape(s)
	}
	return s
}

// Forward runs a single CHW image through the network. With a non-nil
// workspace the pass is allocation-free once warm: the workspace is Reset
// on entry (invalidating the previous pass's output), each intermediate is
// released back to the workspace as soon as the next layer consumed it,
// and the returned tensor stays valid until the next Forward/Reset on the
// same workspace — Clone it to keep it longer. ws == nil allocates every
// activation on the heap (see ForwardAlloc).
func (n *Net) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	if in.Dim(0) != n.Input.C || in.Dim(1) != n.Input.H || in.Dim(2) != n.Input.W {
		panic(fmt.Sprintf("nn: %s input shape %v, want %v", n.Name, in.Shape, n.Input))
	}
	if ws != nil {
		ws.Reset()
	}
	x := in
	for i, l := range n.layers {
		if n.fused != nil && n.fused[i] {
			continue // folded into the previous layer's kernel epilogue
		}
		y := l.Forward(x, ws)
		if ws != nil && x != in && x != y && !sameData(x, y) {
			ws.Release(x)
		}
		x = y
	}
	return x
}

// ForwardAlloc is the pre-workspace convenience path: every activation is
// heap-allocated and the result is independently owned by the caller.
func (n *Net) ForwardAlloc(in *tensor.Tensor) *tensor.Tensor {
	return n.Forward(in, nil)
}

// LayerCost describes one layer's cost at its position in the network.
type LayerCost struct {
	Layer Layer
	In    Shape
	Out   Shape
	Cost  Cost
}

// LayerCosts returns per-layer costs in execution order. Init must have
// been called.
func (n *Net) LayerCosts() []LayerCost {
	if len(n.shapes) != len(n.layers) {
		panic("nn: LayerCosts before Init")
	}
	out := make([]LayerCost, len(n.layers))
	for i, l := range n.layers {
		out[i] = LayerCost{
			Layer: l,
			In:    n.shapes[i],
			Out:   l.OutShape(n.shapes[i]),
			Cost:  l.Cost(n.shapes[i]),
		}
	}
	return out
}

// TotalCost sums all layer costs.
func (n *Net) TotalCost() Cost {
	var c Cost
	for _, lc := range n.LayerCosts() {
		c.Add(lc.Cost)
	}
	return c
}

// Params returns the total parameter count.
func (n *Net) Params() int64 { return n.TotalCost().Params }

// Prunables returns every prunable layer, descending into inception blocks,
// keyed by layer name in execution order.
func (n *Net) Prunables() []Prunable {
	var out []Prunable
	for _, l := range n.layers {
		switch v := l.(type) {
		case *Conv:
			out = append(out, v)
		case *FC:
			out = append(out, v)
		case *Inception:
			for _, c := range v.Convs() {
				out = append(out, c)
			}
		case *Residual:
			out = append(out, v.Prunables()...)
		}
	}
	return out
}

// PrunableByName finds a prunable layer by name, descending into inception
// blocks. The boolean reports whether it was found.
func (n *Net) PrunableByName(name string) (Prunable, bool) {
	for _, p := range n.Prunables() {
		if p.Name() == name {
			return p, true
		}
	}
	return nil, false
}

// ConvLayers returns all convolution layers (descending into inception),
// in execution order.
func (n *Net) ConvLayers() []*Conv {
	var out []*Conv
	for _, l := range n.layers {
		switch v := l.(type) {
		case *Conv:
			out = append(out, v)
		case *Inception:
			out = append(out, v.Convs()...)
		case *Residual:
			for _, p := range v.Prunables() {
				if c, ok := p.(*Conv); ok {
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// InputShapeOf returns the input shape seen by the named top-level layer.
// Init must have been called.
func (n *Net) InputShapeOf(name string) (Shape, bool) {
	for i, l := range n.layers {
		if l.Name() == name {
			return n.shapes[i], true
		}
	}
	return Shape{}, false
}
