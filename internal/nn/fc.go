package nn

import (
	"ccperf/internal/tensor"
)

// FC is a fully-connected layer. Input must be flattened (Cx1x1).
type FC struct {
	name string
	Out  int

	weights *tensor.Matrix // Out × In, neuron-major
	bias    []float32
	csr     *tensor.CSR
	useCSR  bool
}

// NewFC constructs an uninitialized fully-connected layer.
func NewFC(name string, out int) *FC { return &FC{name: name, Out: out} }

// Name implements Layer.
func (f *FC) Name() string { return f.name }

// Kind implements Layer.
func (f *FC) Kind() string { return "fc" }

// Init allocates weights for the given input width.
func (f *FC) Init(in int, seed int64) {
	f.weights = tensor.NewMatrix(f.Out, in)
	fillGaussian(f.weights.Data, seed, 0, 0.02)
	f.bias = make([]float32, f.Out)
	f.Rebuild()
}

// OutShape implements Layer.
func (f *FC) OutShape(Shape) Shape { return Shape{C: f.Out, H: 1, W: 1} }

// Forward implements Layer.
func (f *FC) Forward(in *tensor.Tensor) *tensor.Tensor {
	var y []float32
	if f.useCSR {
		y = tensor.SpMV(f.csr, in.Data)
	} else {
		y = tensor.MatVec(f.weights, in.Data)
	}
	for i := range y {
		y[i] += f.bias[i]
	}
	return tensor.FromSlice(y, f.Out, 1, 1)
}

// Cost implements Layer.
func (f *FC) Cost(in Shape) Cost {
	dense := 2 * int64(f.Out) * int64(in.Volume())
	params := int64(f.Out)*int64(in.Volume()) + int64(f.Out)
	nnz := params
	eff := dense
	if f.weights != nil {
		wnnz := int64(f.weights.NNZ())
		nnz = wnnz + int64(f.Out)
		eff = int64(float64(dense) * float64(wnnz) / float64(len(f.weights.Data)))
	}
	return Cost{
		FLOPs:           dense,
		EffectiveFLOPs:  eff,
		Params:          params,
		NNZ:             nnz,
		WeightBytes:     4 * nnz,
		ActivationBytes: 4 * int64(in.Volume()+f.Out),
	}
}

// Weights implements Prunable.
func (f *FC) Weights() *tensor.Matrix { return f.weights }

// Bias returns the live bias vector.
func (f *FC) Bias() []float32 { return f.bias }

// Rebuild implements Prunable.
func (f *FC) Rebuild() {
	if f.weights == nil {
		return
	}
	if f.weights.Sparsity() >= sparseExecThreshold {
		f.csr = tensor.ToCSR(f.weights)
		f.useCSR = true
	} else {
		f.csr = nil
		f.useCSR = false
	}
}

// WeightSparsity implements Prunable.
func (f *FC) WeightSparsity() float64 {
	if f.weights == nil {
		return 0
	}
	return f.weights.Sparsity()
}
