package nn

import (
	"ccperf/internal/tensor"
)

// FC is a fully-connected layer. Input must be flattened (Cx1x1).
type FC struct {
	name string
	Out  int

	weights *tensor.Matrix // Out × In, neuron-major
	bias    []float32
	csr     *tensor.CSR
	useCSR  bool

	// fuseReLU folds the following ReLU into the kernel epilogue
	// (set by Net.planFusion).
	fuseReLU bool
	// nnz is cached by Rebuild so Cost never rescans the weights.
	nnz int
}

// NewFC constructs an uninitialized fully-connected layer.
func NewFC(name string, out int) *FC { return &FC{name: name, Out: out} }

// Name implements Layer.
func (f *FC) Name() string { return f.name }

// Kind implements Layer.
func (f *FC) Kind() string { return "fc" }

// Init allocates weights for the given input width.
func (f *FC) Init(in int, seed int64) {
	f.weights = tensor.NewMatrix(f.Out, in)
	fillGaussian(f.weights.Data, seed, 0, 0.02)
	f.bias = make([]float32, f.Out)
	f.Rebuild()
}

// OutShape implements Layer.
func (f *FC) OutShape(Shape) Shape { return Shape{C: f.Out, H: 1, W: 1} }

// Forward implements Layer: one fused matrix-vector product with bias
// (and a ReLU when the following layer was folded in) applied in the
// kernel epilogue, written straight into the output tensor.
func (f *FC) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	out := wsAcquire(ws, f.Out, 1, 1)
	if f.useCSR {
		tensor.SpMVFusedInto(out.Data, f.csr, in.Data, f.bias, f.fuseReLU)
	} else {
		tensor.MatVecFusedInto(out.Data, f.weights, in.Data, f.bias, f.fuseReLU)
	}
	return out
}

// Cost implements Layer.
func (f *FC) Cost(in Shape) Cost {
	dense := 2 * int64(f.Out) * int64(in.Volume())
	params := int64(f.Out)*int64(in.Volume()) + int64(f.Out)
	nnz := params
	eff := dense
	if f.weights != nil {
		// f.nnz is cached by Rebuild — see Conv.Cost.
		wnnz := int64(f.nnz)
		nnz = wnnz + int64(f.Out)
		eff = int64(float64(dense) * float64(wnnz) / float64(len(f.weights.Data)))
	}
	return Cost{
		FLOPs:           dense,
		EffectiveFLOPs:  eff,
		Params:          params,
		NNZ:             nnz,
		WeightBytes:     4 * nnz,
		ActivationBytes: 4 * int64(in.Volume()+f.Out),
	}
}

// Weights implements Prunable.
func (f *FC) Weights() *tensor.Matrix { return f.weights }

// Bias returns the live bias vector.
func (f *FC) Bias() []float32 { return f.bias }

// Rebuild implements Prunable: refreshes the cached NNZ and the sparse
// execution path.
func (f *FC) Rebuild() {
	if f.weights == nil {
		return
	}
	f.nnz = f.weights.NNZ()
	if f.WeightSparsity() >= sparseExecThreshold {
		f.csr = tensor.ToCSR(f.weights)
		f.useCSR = true
	} else {
		f.csr = nil
		f.useCSR = false
	}
}

// WeightSparsity implements Prunable, reading the NNZ cached at the last
// Rebuild.
func (f *FC) WeightSparsity() float64 {
	if f.weights == nil || len(f.weights.Data) == 0 {
		return 0
	}
	return 1 - float64(f.nnz)/float64(len(f.weights.Data))
}
