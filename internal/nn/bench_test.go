package nn

import (
	"fmt"
	"testing"

	"ccperf/internal/tensor"
)

func benchNet(b *testing.B) (*Net, *tensor.Tensor) {
	b.Helper()
	n := NewNet("bench", Shape{C: 3, H: 64, W: 64})
	n.Add(
		NewConv("c1", 32, 3, 3, 1, 1, 1, 1, 1),
		NewReLU("r1"),
		NewMaxPool("p1", 2, 2),
		NewConv("c2", 64, 3, 3, 1, 1, 1, 1, 1),
		NewReLU("r2"),
		NewGlobalAvgPool("gap"),
		NewFlatten("f"),
		NewFC("fc", 100),
		NewSoftmax("sm"),
	)
	if err := n.Init(1); err != nil {
		b.Fatal(err)
	}
	in := tensor.New(3, 64, 64)
	for i := range in.Data {
		in.Data[i] = float32(i%13)/13 - 0.4
	}
	return n, in
}

// BenchmarkNetForward measures a full single-image forward pass.
func BenchmarkNetForward(b *testing.B) {
	n, in := benchNet(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Forward(in)
	}
}

// BenchmarkNetForwardBatch measures engine-level batch parallelism.
func BenchmarkNetForwardBatch(b *testing.B) {
	n, in := benchNet(b)
	batch := make([]*tensor.Tensor, 8)
	for i := range batch {
		batch[i] = in
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n.ForwardBatch(batch, workers)
			}
		})
	}
}

// BenchmarkConvForwardDenseVsSparse measures the dense→CSR execution
// crossover on one convolution at 0/50/90 % weight sparsity.
func BenchmarkConvForwardDenseVsSparse(b *testing.B) {
	in := tensor.New(48, 27, 27)
	for i := range in.Data {
		in.Data[i] = float32(i%11)/11 - 0.5
	}
	for _, sparsity := range []int{0, 50, 90} {
		c := NewConv("c", 128, 5, 5, 1, 1, 2, 2, 1)
		if err := c.Init(48, 7); err != nil {
			b.Fatal(err)
		}
		w := c.Weights()
		for i := range w.Data {
			if i%100 < sparsity {
				w.Data[i] = 0
			}
		}
		c.Rebuild()
		b.Run(fmt.Sprintf("sparsity=%d%%/csr=%v", sparsity, c.UsesSparseKernel()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Forward(in)
			}
		})
	}
}
