package nn

import (
	"fmt"
	"testing"

	"ccperf/internal/tensor"
)

func benchNet(b *testing.B) (*Net, *tensor.Tensor) {
	b.Helper()
	n := NewNet("bench", Shape{C: 3, H: 64, W: 64})
	n.Add(
		NewConv("c1", 32, 3, 3, 1, 1, 1, 1, 1),
		NewReLU("r1"),
		NewMaxPool("p1", 2, 2),
		NewConv("c2", 64, 3, 3, 1, 1, 1, 1, 1),
		NewReLU("r2"),
		NewGlobalAvgPool("gap"),
		NewFlatten("f"),
		NewFC("fc", 100),
		NewSoftmax("sm"),
	)
	if err := n.Init(1); err != nil {
		b.Fatal(err)
	}
	in := tensor.New(3, 64, 64)
	for i := range in.Data {
		in.Data[i] = float32(i%13)/13 - 0.4
	}
	return n, in
}

// BenchmarkNetForward measures a full single-image forward pass.
func BenchmarkNetForward(b *testing.B) {
	n, in := benchNet(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Forward(in, nil)
	}
}

// BenchmarkNetForwardBatch measures engine-level batch parallelism.
func BenchmarkNetForwardBatch(b *testing.B) {
	n, in := benchNet(b)
	batch := make([]*tensor.Tensor, 8)
	for i := range batch {
		batch[i] = in
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n.ForwardBatch(batch, workers)
			}
		})
	}
}

// BenchmarkForwardWorkspace measures the same full forward pass as
// BenchmarkNetForward through a warmed workspace — the zero-allocation
// serving path. allocs/op is part of the regression signal (expected 0).
// Gated by the benchdiff CI pattern.
func BenchmarkForwardWorkspace(b *testing.B) {
	n, in := benchNet(b)
	ws := NewWorkspace()
	n.Forward(in, ws) // warm buckets, headers and im2col scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(in, ws)
	}
}

// BenchmarkConvForward measures one Caffenet-conv2-scale convolution
// (48×27×27 input, 128 5×5 filters) through a warmed workspace: Im2ColInto
// plus the fused-bias GEMM, no allocation. Gated by the benchdiff CI
// pattern.
func BenchmarkConvForward(b *testing.B) {
	in := tensor.New(48, 27, 27)
	for i := range in.Data {
		in.Data[i] = float32(i%11)/11 - 0.5
	}
	c := NewConv("c", 128, 5, 5, 1, 1, 2, 2, 1)
	if err := c.Init(48, 7); err != nil {
		b.Fatal(err)
	}
	ws := NewWorkspace()
	ws.Release(c.Forward(in, ws)) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Release(c.Forward(in, ws))
	}
}

// BenchmarkConvForwardDenseVsSparse measures the dense→CSR execution
// crossover on one convolution at 0/50/90 % weight sparsity.
func BenchmarkConvForwardDenseVsSparse(b *testing.B) {
	in := tensor.New(48, 27, 27)
	for i := range in.Data {
		in.Data[i] = float32(i%11)/11 - 0.5
	}
	for _, sparsity := range []int{0, 50, 90} {
		c := NewConv("c", 128, 5, 5, 1, 1, 2, 2, 1)
		if err := c.Init(48, 7); err != nil {
			b.Fatal(err)
		}
		w := c.Weights()
		for i := range w.Data {
			if i%100 < sparsity {
				w.Data[i] = 0
			}
		}
		c.Rebuild()
		b.Run(fmt.Sprintf("sparsity=%d%%/csr=%v", sparsity, c.UsesSparseKernel()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Forward(in, nil)
			}
		})
	}
}
