package nn

import (
	"math"
	"testing"
	"testing/quick"

	"ccperf/internal/tensor"
)

func TestConvOutShape(t *testing.T) {
	c := NewConv("c", 96, 11, 11, 4, 4, 2, 2, 1)
	if err := c.Init(3, 1); err != nil {
		t.Fatal(err)
	}
	out := c.OutShape(Shape{C: 3, H: 224, W: 224})
	if out != (Shape{C: 96, H: 55, W: 55}) {
		t.Fatalf("OutShape = %v, want 96x55x55", out)
	}
}

func TestConvGroupsValidation(t *testing.T) {
	c := NewConv("c", 4, 3, 3, 1, 1, 1, 1, 3)
	if err := c.Init(6, 1); err == nil {
		t.Fatal("expected error: groups=3 does not divide outC=4")
	}
	c2 := NewConv("c2", 6, 3, 3, 1, 1, 1, 1, 3)
	if err := c2.Init(5, 1); err == nil {
		t.Fatal("expected error: groups=3 does not divide inC=5")
	}
}

func TestConvForwardKnownValues(t *testing.T) {
	// 1 input channel 3x3, one 2x2 all-ones filter, stride 1, no pad.
	c := NewConv("c", 1, 2, 2, 1, 1, 0, 0, 1)
	if err := c.Init(1, 1); err != nil {
		t.Fatal(err)
	}
	for i := range c.Weights().Data {
		c.Weights().Data[i] = 1
	}
	c.Rebuild()
	in := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	out := c.Forward(in, nil)
	want := []float32{12, 16, 24, 28} // 2x2 window sums
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("out = %v, want %v", out.Data, want)
		}
	}
}

func TestConvBias(t *testing.T) {
	c := NewConv("c", 2, 1, 1, 1, 1, 0, 0, 1)
	if err := c.Init(1, 1); err != nil {
		t.Fatal(err)
	}
	c.Weights().Data[0] = 1
	c.Weights().Data[1] = 2
	c.Bias()[0] = 10
	c.Bias()[1] = -1
	c.Rebuild()
	in := tensor.FromSlice([]float32{3}, 1, 1, 1)
	out := c.Forward(in, nil)
	if out.Data[0] != 13 || out.Data[1] != 5 {
		t.Fatalf("out = %v, want [13 5]", out.Data)
	}
}

func TestConvSparseDenseEquivalence(t *testing.T) {
	// Prune 60% of weights, confirm CSR path gives identical output.
	c := NewConv("c", 8, 3, 3, 1, 1, 1, 1, 1)
	if err := c.Init(4, 7); err != nil {
		t.Fatal(err)
	}
	w := c.Weights()
	for i := range w.Data {
		if i%5 < 3 {
			w.Data[i] = 0
		}
	}
	in := tensor.New(4, 6, 6)
	for i := range in.Data {
		in.Data[i] = float32((i*31)%11) / 11
	}
	c.Rebuild()
	if !c.UsesSparseKernel() {
		t.Fatal("expected sparse kernel at 60% sparsity")
	}
	sparse := c.Forward(in, nil)

	// Force dense path by lying about sparsity: rebuild from a dense copy.
	dense := &Conv{
		name: "d", OutC: c.OutC, KH: c.KH, KW: c.KW,
		StrideH: c.StrideH, StrideW: c.StrideW, PadH: c.PadH, PadW: c.PadW, Groups: 1,
	}
	if err := dense.Init(4, 7); err != nil {
		t.Fatal(err)
	}
	copy(dense.Weights().Data, w.Data)
	dense.useCSR = false
	dense.csr = nil
	denseOut := dense.Forward(in, nil)
	for i := range sparse.Data {
		if d := math.Abs(float64(sparse.Data[i] - denseOut.Data[i])); d > 1e-4 {
			t.Fatalf("sparse/dense mismatch at %d: %v", i, d)
		}
	}
}

func TestConvGroupedMatchesManualSplit(t *testing.T) {
	// A grouped conv equals two independent convs on channel halves.
	g := NewConv("g", 4, 3, 3, 1, 1, 1, 1, 2)
	if err := g.Init(6, 3); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(6, 5, 5)
	for i := range in.Data {
		in.Data[i] = float32((i*17)%7) - 3
	}
	out := g.Forward(in, nil)

	for grp := 0; grp < 2; grp++ {
		single := NewConv("s", 2, 3, 3, 1, 1, 1, 1, 1)
		if err := single.Init(3, 99); err != nil {
			t.Fatal(err)
		}
		copy(single.Weights().Data, g.Weights().Data[grp*2*27:(grp+1)*2*27])
		single.Rebuild()
		half := tensor.FromSlice(in.Data[grp*75:(grp+1)*75], 3, 5, 5)
		want := single.Forward(half, nil)
		got := out.Data[grp*2*25 : (grp+1)*2*25]
		for i := range want.Data {
			if d := math.Abs(float64(want.Data[i] - got[i])); d > 1e-4 {
				t.Fatalf("group %d mismatch at %d", grp, i)
			}
		}
	}
}

func TestConvCostSparsityScaling(t *testing.T) {
	c := NewConv("c", 16, 3, 3, 1, 1, 1, 1, 1)
	if err := c.Init(8, 1); err != nil {
		t.Fatal(err)
	}
	in := Shape{C: 8, H: 10, W: 10}
	full := c.Cost(in)
	if full.EffectiveFLOPs != full.FLOPs {
		t.Fatalf("dense EffectiveFLOPs = %d, want %d", full.EffectiveFLOPs, full.FLOPs)
	}
	// Zero half the weights.
	w := c.Weights()
	for i := 0; i < len(w.Data)/2; i++ {
		w.Data[i] = 0
	}
	c.Rebuild()
	half := c.Cost(in)
	ratio := float64(half.EffectiveFLOPs) / float64(full.FLOPs)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("EffectiveFLOPs ratio = %v, want ~0.5", ratio)
	}
	if half.FLOPs != full.FLOPs {
		t.Fatal("dense FLOPs must not change with pruning")
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU("r")
	in := tensor.FromSlice([]float32{-1, 0, 2, -3}, 4, 1, 1)
	out := r.Forward(in, nil)
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("ReLU = %v, want %v", out.Data, want)
		}
	}
	if in.Data[0] != -1 {
		t.Fatal("ReLU must not mutate its input")
	}
}

func TestMaxPoolKnown(t *testing.T) {
	p := NewMaxPool("p", 2, 2)
	p.CeilMode = false
	in := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := p.Forward(in, nil)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("MaxPool = %v, want %v", out.Data, want)
		}
	}
}

func TestMaxPoolCeilMode(t *testing.T) {
	// Caffenet pool1: 55x55, k3 s2, ceil → 27x27? ceil((55-3)/2)+1 = 27.
	p := NewMaxPool("p", 3, 2)
	out := p.OutShape(Shape{C: 96, H: 55, W: 55})
	if out.H != 27 || out.W != 27 {
		t.Fatalf("pool1 out = %v, want 27x27", out)
	}
	// 13x13 k3 s2 ceil → 6x6.
	out = p.OutShape(Shape{C: 256, H: 13, W: 13})
	if out.H != 6 || out.W != 6 {
		t.Fatalf("pool5 out = %v, want 6x6", out)
	}
}

func TestAvgPoolAndGlobal(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	g := NewGlobalAvgPool("g")
	out := g.Forward(in, nil)
	if out.Len() != 1 || out.Data[0] != 2.5 {
		t.Fatalf("global avg = %v, want [2.5]", out.Data)
	}
	if s := g.OutShape(Shape{C: 7, H: 9, W: 9}); s != (Shape{C: 7, H: 1, W: 1}) {
		t.Fatalf("global OutShape = %v", s)
	}
	a := NewAvgPool("a", 2, 2)
	a.CeilMode = false
	out = a.Forward(in, nil)
	if out.Data[0] != 2.5 {
		t.Fatalf("avg = %v, want 2.5", out.Data[0])
	}
}

func TestLRNIdentityForZeroAlpha(t *testing.T) {
	l := NewLRN("l")
	l.Alpha = 0
	in := tensor.FromSlice([]float32{1, -2, 3, 4}, 4, 1, 1)
	out := l.Forward(in, nil)
	for i := range in.Data {
		if math.Abs(float64(out.Data[i]-in.Data[i])) > 1e-6 {
			t.Fatalf("LRN with alpha=0 must be identity, got %v", out.Data)
		}
	}
}

func TestLRNNormalizes(t *testing.T) {
	l := NewLRN("l")
	l.Alpha = 1
	l.Size = 1
	l.Beta = 0.5
	l.K = 0
	// denom = sqrt(x²) = |x| → output sign(x).
	in := tensor.FromSlice([]float32{2, -4}, 2, 1, 1)
	out := l.Forward(in, nil)
	if math.Abs(float64(out.Data[0]-1)) > 1e-5 || math.Abs(float64(out.Data[1]+1)) > 1e-5 {
		t.Fatalf("LRN = %v, want [1 -1]", out.Data)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	s := NewSoftmax("s")
	in := tensor.FromSlice([]float32{1, 2, 3, 400}, 4, 1, 1)
	out := s.Forward(in, nil)
	if sum := out.Sum(); math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if out.ArgMax() != 3 {
		t.Fatal("softmax must preserve argmax")
	}
	// Large logits must not overflow.
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflow")
		}
	}
}

// Property: softmax always sums to 1 and preserves order.
func TestSoftmaxProperty(t *testing.T) {
	f := func(a, b, c float32) bool {
		for _, v := range []float32{a, b, c} {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 80 {
				return true
			}
		}
		x := []float32{a, b, c}
		SoftmaxInPlace(x)
		var sum float64
		for _, v := range x {
			if v < 0 {
				return false
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			return false
		}
		return (a >= b) == (x[0] >= x[1]) && (b >= c) == (x[1] >= x[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDropoutIsIdentityAtInference(t *testing.T) {
	d := NewDropout("d", 0.5)
	in := tensor.FromSlice([]float32{1, 2}, 2, 1, 1)
	if out := d.Forward(in, nil); out != in {
		t.Fatal("inference dropout must be identity")
	}
}

func TestFlatten(t *testing.T) {
	f := NewFlatten("f")
	in := tensor.New(2, 3, 4)
	out := f.Forward(in, nil)
	if out.Dim(0) != 24 || out.Dim(1) != 1 || out.Dim(2) != 1 {
		t.Fatalf("flatten shape = %v", out.Shape)
	}
}

func TestFCForwardKnown(t *testing.T) {
	fc := NewFC("fc", 2)
	fc.Init(3, 1)
	copy(fc.Weights().Data, []float32{1, 0, 0, 0, 1, 1})
	fc.Bias()[1] = 5
	fc.Rebuild()
	in := tensor.FromSlice([]float32{7, 8, 9}, 3, 1, 1)
	out := fc.Forward(in, nil)
	if out.Data[0] != 7 || out.Data[1] != 22 {
		t.Fatalf("FC = %v, want [7 22]", out.Data)
	}
}

func TestFCSparseDenseEquivalence(t *testing.T) {
	fc := NewFC("fc", 10)
	fc.Init(20, 2)
	w := fc.Weights()
	for i := range w.Data {
		if i%3 != 0 {
			w.Data[i] = 0
		}
	}
	in := tensor.New(20, 1, 1)
	for i := range in.Data {
		in.Data[i] = float32(i) / 20
	}
	fc.Rebuild()
	sparse := fc.Forward(in, nil)
	fc.useCSR = false
	dense := fc.Forward(in, nil)
	for i := range sparse.Data {
		if math.Abs(float64(sparse.Data[i]-dense.Data[i])) > 1e-5 {
			t.Fatalf("FC sparse/dense mismatch at %d", i)
		}
	}
}

func TestInceptionShapesAndForward(t *testing.T) {
	b := NewInception("inception-3a", 64, 96, 128, 16, 32, 32)
	if err := b.Init(192, 5); err != nil {
		t.Fatal(err)
	}
	in := Shape{C: 192, H: 8, W: 8}
	out := b.OutShape(in)
	if out != (Shape{C: 256, H: 8, W: 8}) {
		t.Fatalf("inception out = %v, want 256x8x8", out)
	}
	x := tensor.New(192, 8, 8)
	for i := range x.Data {
		x.Data[i] = float32(i%9) / 9
	}
	y := b.Forward(x, nil)
	if y.Dim(0) != 256 || y.Dim(1) != 8 || y.Dim(2) != 8 {
		t.Fatalf("forward shape = %v", y.Shape)
	}
	if len(b.Convs()) != 6 {
		t.Fatalf("inception has %d convs, want 6", len(b.Convs()))
	}
}

func TestConcatChannelsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on spatial mismatch")
		}
	}()
	ConcatChannels(tensor.New(1, 2, 2), tensor.New(1, 3, 3))
}

func TestNetInitAndCosts(t *testing.T) {
	n := NewNet("tiny", Shape{C: 3, H: 16, W: 16})
	n.Add(
		NewConv("c1", 8, 3, 3, 1, 1, 1, 1, 1),
		NewReLU("r1"),
		NewMaxPool("p1", 2, 2),
		NewFlatten("f"),
		NewFC("fc", 10),
		NewSoftmax("sm"),
	)
	if err := n.Init(1); err != nil {
		t.Fatal(err)
	}
	costs := n.LayerCosts()
	if len(costs) != 6 {
		t.Fatalf("%d layer costs", len(costs))
	}
	if costs[0].Out != (Shape{C: 8, H: 16, W: 16}) {
		t.Fatalf("conv out = %v", costs[0].Out)
	}
	total := n.TotalCost()
	if total.Params != int64(8*27+8+10*8*8*8+10) {
		t.Fatalf("params = %d", total.Params)
	}
	// Prunables: conv + fc.
	if got := len(n.Prunables()); got != 2 {
		t.Fatalf("prunables = %d, want 2", got)
	}
	if _, ok := n.PrunableByName("c1"); !ok {
		t.Fatal("PrunableByName(c1) failed")
	}
	if _, ok := n.PrunableByName("nope"); ok {
		t.Fatal("PrunableByName(nope) should fail")
	}
}

func TestNetForwardWrongShapePanics(t *testing.T) {
	n := NewNet("x", Shape{C: 3, H: 8, W: 8})
	n.Add(NewReLU("r"))
	if err := n.Init(1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input shape")
		}
	}()
	n.Forward(tensor.New(3, 4, 4), nil)
}

func TestCostAdd(t *testing.T) {
	a := Cost{FLOPs: 1, EffectiveFLOPs: 2, Params: 3, NNZ: 4, WeightBytes: 5, ActivationBytes: 6}
	b := a
	a.Add(b)
	if a.FLOPs != 2 || a.EffectiveFLOPs != 4 || a.Params != 6 || a.NNZ != 8 || a.WeightBytes != 10 || a.ActivationBytes != 12 {
		t.Fatalf("Cost.Add = %+v", a)
	}
}

func TestFillGaussianDeterministic(t *testing.T) {
	a := make([]float32, 64)
	b := make([]float32, 64)
	fillGaussian(a, 42, 0, 1)
	fillGaussian(b, 42, 0, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fillGaussian must be deterministic per seed")
		}
	}
	fillGaussian(b, 43, 0, 1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must give different streams")
	}
	// Rough moment check.
	var mean float64
	for _, v := range a {
		mean += float64(v)
	}
	mean /= float64(len(a))
	if math.Abs(mean) > 0.5 {
		t.Fatalf("gaussian mean = %v, want ~0", mean)
	}
}
