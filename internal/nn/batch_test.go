package nn

import (
	"testing"

	"ccperf/internal/tensor"
)

func batchNet(t *testing.T) *Net {
	t.Helper()
	n := NewNet("b", Shape{C: 2, H: 8, W: 8})
	n.Add(
		NewConv("c1", 4, 3, 3, 1, 1, 1, 1, 1),
		NewReLU("r1"),
		NewMaxPool("p1", 2, 2),
		NewFlatten("f"),
		NewFC("fc", 6),
		NewSoftmax("sm"),
	)
	if err := n.Init(5); err != nil {
		t.Fatal(err)
	}
	return n
}

func batchImages(n int) []*tensor.Tensor {
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		img := tensor.New(2, 8, 8)
		for j := range img.Data {
			img.Data[j] = float32((i*131+j*17)%23)/23 - 0.5
		}
		imgs[i] = img
	}
	return imgs
}

func TestForwardBatchMatchesSequential(t *testing.T) {
	n := batchNet(t)
	imgs := batchImages(17)
	seq := make([]*tensor.Tensor, len(imgs))
	for i, img := range imgs {
		seq[i] = n.Forward(img, nil)
	}
	for _, workers := range []int{0, 1, 2, 4, 32} {
		par := n.ForwardBatch(imgs, workers)
		for i := range seq {
			for j := range seq[i].Data {
				if seq[i].Data[j] != par[i].Data[j] {
					t.Fatalf("workers=%d: output %d differs at %d", workers, i, j)
				}
			}
		}
	}
}

func TestForwardBatchEmpty(t *testing.T) {
	n := batchNet(t)
	if out := n.ForwardBatch(nil, 4); len(out) != 0 {
		t.Fatal("empty batch must return empty")
	}
}

func TestClassify(t *testing.T) {
	n := batchNet(t)
	img := batchImages(1)[0]
	top1, topK, err := n.Classify(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(topK) != 3 || topK[0] != top1 {
		t.Fatalf("classify = %d %v", top1, topK)
	}
	if _, _, err := n.Classify(img, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, _, err := n.Classify(img, 7); err == nil {
		t.Fatal("expected error for k > classes")
	}
}

func TestAccuracyOn(t *testing.T) {
	n := batchNet(t)
	imgs := batchImages(10)
	// Label every image with its own predicted class → accuracy 1.
	labels := make([]int, len(imgs))
	for i, img := range imgs {
		top1, _, err := n.Classify(img, 1)
		if err != nil {
			t.Fatal(err)
		}
		labels[i] = top1
	}
	top1, topK, err := n.AccuracyOn(imgs, labels, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if top1 != 1 || topK != 1 {
		t.Fatalf("accuracy = %v/%v, want 1/1", top1, topK)
	}
	// Wrong labels → 0 Top-1 (but Top-3 may still catch some).
	for i := range labels {
		labels[i] = (labels[i] + 1) % 6
	}
	top1, _, err = n.AccuracyOn(imgs, labels, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top1 != 0 {
		t.Fatalf("shifted labels top1 = %v, want 0", top1)
	}
}

func TestAccuracyOnValidation(t *testing.T) {
	n := batchNet(t)
	imgs := batchImages(3)
	if _, _, err := n.AccuracyOn(nil, nil, 1, 1); err == nil {
		t.Fatal("expected error for empty set")
	}
	if _, _, err := n.AccuracyOn(imgs, []int{1}, 1, 1); err == nil {
		t.Fatal("expected error for label mismatch")
	}
	if _, _, err := n.AccuracyOn(imgs, []int{1, 2, 3}, 99, 1); err == nil {
		t.Fatal("expected error for bad k")
	}
}
