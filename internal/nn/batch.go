package nn

import (
	"fmt"
	"runtime"
	"sync"

	"ccperf/internal/tensor"
)

// defaultWSPool backs the convenience entry points (ForwardBatch,
// Classify) that are not wired to an explicitly configured WorkspacePool.
// Serial GEMM: batch-level parallelism already saturates the cores.
var defaultWSPool = NewWorkspacePool(1)

// ForwardBatch runs a batch of CHW images through the network using a
// worker pool — the engine-level counterpart of the GPU batch parallelism
// the paper exploits (Section 4.2.3). workers ≤ 0 uses GOMAXPROCS.
// Outputs are returned in input order. Equivalent to ForwardBatchPool with
// the package default workspace pool.
func (n *Net) ForwardBatch(images []*tensor.Tensor, workers int) []*tensor.Tensor {
	return n.ForwardBatchPool(images, workers, defaultWSPool)
}

// ForwardBatchPool is ForwardBatch running each worker's passes through a
// workspace taken from pool, so steady-state batches allocate only the
// (small) output clones — the activations that must outlive workspace
// reuse. A nil pool heap-allocates everything.
func (n *Net) ForwardBatchPool(images []*tensor.Tensor, workers int, pool *WorkspacePool) []*tensor.Tensor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(images) {
		workers = len(images)
	}
	out := make([]*tensor.Tensor, len(images))
	if workers <= 1 {
		if pool == nil {
			for i, img := range images {
				out[i] = n.Forward(img, nil)
			}
			return out
		}
		ws := pool.Get()
		for i, img := range images {
			out[i] = n.Forward(img, ws).Clone()
		}
		pool.Put(ws)
		return out
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if pool == nil {
				for i := range jobs {
					out[i] = n.Forward(images[i], nil)
				}
				return
			}
			ws := pool.Get()
			defer pool.Put(ws)
			for i := range jobs {
				out[i] = n.Forward(images[i], ws).Clone()
			}
		}()
	}
	for i := range images {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// Classify runs one image and returns its Top-1 class index and the Top-k
// class indices in descending probability order.
func (n *Net) Classify(img *tensor.Tensor, k int) (top1 int, topK []int, err error) {
	ws := defaultWSPool.Get()
	defer defaultWSPool.Put(ws)
	out := n.Forward(img, ws)
	if k < 1 || k > out.Len() {
		return 0, nil, fmt.Errorf("nn: k=%d out of range for %d classes", k, out.Len())
	}
	topK = out.TopK(k)
	return topK[0], topK, nil
}

// AccuracyOn evaluates Top-1 and Top-k accuracy of the network over a
// labeled image set, running the batch through the worker pool.
func (n *Net) AccuracyOn(images []*tensor.Tensor, labels []int, k, workers int) (top1, topK float64, err error) {
	if len(images) == 0 {
		return 0, 0, fmt.Errorf("nn: empty evaluation set")
	}
	if len(images) != len(labels) {
		return 0, 0, fmt.Errorf("nn: %d images but %d labels", len(images), len(labels))
	}
	outs := n.ForwardBatch(images, workers)
	if k < 1 || k > outs[0].Len() {
		return 0, 0, fmt.Errorf("nn: k=%d out of range for %d classes", k, outs[0].Len())
	}
	var c1, ck int
	for i, out := range outs {
		tk := out.TopK(k)
		if tk[0] == labels[i] {
			c1++
		}
		for _, j := range tk {
			if j == labels[i] {
				ck++
				break
			}
		}
	}
	total := float64(len(images))
	return float64(c1) / total, float64(ck) / total, nil
}
