package nn

import (
	"fmt"
	"runtime"
	"sync"

	"ccperf/internal/tensor"
)

// ForwardBatch runs a batch of CHW images through the network using a
// worker pool — the engine-level counterpart of the GPU batch parallelism
// the paper exploits (Section 4.2.3). workers ≤ 0 uses GOMAXPROCS.
// Outputs are returned in input order.
func (n *Net) ForwardBatch(images []*tensor.Tensor, workers int) []*tensor.Tensor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(images) {
		workers = len(images)
	}
	out := make([]*tensor.Tensor, len(images))
	if workers <= 1 {
		for i, img := range images {
			out[i] = n.Forward(img)
		}
		return out
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = n.Forward(images[i])
			}
		}()
	}
	for i := range images {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// Classify runs one image and returns its Top-1 class index and the Top-k
// class indices in descending probability order.
func (n *Net) Classify(img *tensor.Tensor, k int) (top1 int, topK []int, err error) {
	out := n.Forward(img)
	if k < 1 || k > out.Len() {
		return 0, nil, fmt.Errorf("nn: k=%d out of range for %d classes", k, out.Len())
	}
	topK = out.TopK(k)
	return topK[0], topK, nil
}

// AccuracyOn evaluates Top-1 and Top-k accuracy of the network over a
// labeled image set, running the batch through the worker pool.
func (n *Net) AccuracyOn(images []*tensor.Tensor, labels []int, k, workers int) (top1, topK float64, err error) {
	if len(images) == 0 {
		return 0, 0, fmt.Errorf("nn: empty evaluation set")
	}
	if len(images) != len(labels) {
		return 0, 0, fmt.Errorf("nn: %d images but %d labels", len(images), len(labels))
	}
	outs := n.ForwardBatch(images, workers)
	if k < 1 || k > outs[0].Len() {
		return 0, 0, fmt.Errorf("nn: k=%d out of range for %d classes", k, outs[0].Len())
	}
	var c1, ck int
	for i, out := range outs {
		tk := out.TopK(k)
		if tk[0] == labels[i] {
			c1++
		}
		for _, j := range tk {
			if j == labels[i] {
				ck++
				break
			}
		}
	}
	total := float64(len(images))
	return float64(c1) / total, float64(ck) / total, nil
}
