package nn

import (
	"math"

	"ccperf/internal/tensor"
)

// PoolMode selects the pooling reduction.
type PoolMode int

// Pooling modes.
const (
	MaxPool PoolMode = iota
	AvgPool
)

// Pool is a 2-D spatial pooling layer. Caffe-style ceil-mode output sizing
// is used (Caffenet's pool layers round up), controlled by CeilMode.
type Pool struct {
	name             string
	Mode             PoolMode
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
	CeilMode         bool
	// Global makes the kernel cover the whole input plane regardless of
	// KH/KW (GoogLeNet's final average pool, kept size-independent so
	// reduced-resolution model variants stay valid).
	Global bool
}

// NewGlobalAvgPool constructs a pooling layer that averages each full
// channel plane to 1x1.
func NewGlobalAvgPool(name string) *Pool {
	return &Pool{name: name, Mode: AvgPool, Global: true, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
}

// NewMaxPool constructs a max-pooling layer with ceil-mode sizing.
func NewMaxPool(name string, k, stride int) *Pool {
	return &Pool{name: name, Mode: MaxPool, KH: k, KW: k, StrideH: stride, StrideW: stride, CeilMode: true}
}

// NewAvgPool constructs an average-pooling layer with ceil-mode sizing.
func NewAvgPool(name string, k, stride int) *Pool {
	return &Pool{name: name, Mode: AvgPool, KH: k, KW: k, StrideH: stride, StrideW: stride, CeilMode: true}
}

// Name implements Layer.
func (p *Pool) Name() string { return p.name }

// Kind implements Layer.
func (p *Pool) Kind() string { return "pool" }

func (p *Pool) outDim(in, k, stride, pad int) int {
	if p.CeilMode {
		return int(math.Ceil(float64(in+2*pad-k)/float64(stride))) + 1
	}
	return (in+2*pad-k)/stride + 1
}

// effective returns the kernel/stride/pad actually used for the input.
func (p *Pool) effective(in Shape) (kh, kw, sh, sw, ph, pw int) {
	if p.Global {
		return in.H, in.W, 1, 1, 0, 0
	}
	return p.KH, p.KW, p.StrideH, p.StrideW, p.PadH, p.PadW
}

// OutShape implements Layer.
func (p *Pool) OutShape(in Shape) Shape {
	if p.Global {
		return Shape{C: in.C, H: 1, W: 1}
	}
	return Shape{
		C: in.C,
		H: p.outDim(in.H, p.KH, p.StrideH, p.PadH),
		W: p.outDim(in.W, p.KW, p.StrideW, p.PadW),
	}
}

// Forward implements Layer.
func (p *Pool) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	inS := Shape{C: in.Dim(0), H: in.Dim(1), W: in.Dim(2)}
	outS := p.OutShape(inS)
	kh, kw, sh, sw, padH, padW := p.effective(inS)
	out := wsAcquire(ws, outS.C, outS.H, outS.W)
	for c := 0; c < inS.C; c++ {
		src := in.Data[c*inS.H*inS.W:]
		dst := out.Data[c*outS.H*outS.W:]
		for oy := 0; oy < outS.H; oy++ {
			for ox := 0; ox < outS.W; ox++ {
				y0 := oy*sh - padH
				x0 := ox*sw - padW
				var acc float32
				n := 0
				first := true
				for ky := 0; ky < kh; ky++ {
					iy := y0 + ky
					if iy < 0 || iy >= inS.H {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := x0 + kx
						if ix < 0 || ix >= inS.W {
							continue
						}
						v := src[iy*inS.W+ix]
						if p.Mode == MaxPool {
							if first || v > acc {
								acc = v
							}
							first = false
						} else {
							acc += v
							n++
						}
					}
				}
				if p.Mode == AvgPool && n > 0 {
					acc /= float32(n)
				}
				dst[oy*outS.W+ox] = acc
			}
		}
	}
	return out
}

// Cost implements Layer. Pooling is memory bound: one compare/add per
// window element, no parameters.
func (p *Pool) Cost(in Shape) Cost {
	out := p.OutShape(in)
	kh, kw, _, _, _, _ := p.effective(in)
	flops := int64(out.Volume()) * int64(kh*kw)
	return Cost{
		FLOPs:           flops,
		EffectiveFLOPs:  flops,
		ActivationBytes: 4 * int64(in.Volume()+out.Volume()),
	}
}
