package nn

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"ccperf/internal/tensor"
)

// Workspace owns the reusable scratch memory for forward passes: a
// size-bucketed free list of activation buffers, a pool of tensor headers,
// a dedicated im2col scratch matrix and persistent kernel headers. After a
// warm-up pass every steady-state Forward through the same workspace
// performs zero heap allocations (docs/KERNELS.md describes the contract).
//
// A workspace is single-threaded: one forward pass at a time. Concurrent
// batch workers each take their own workspace from a WorkspacePool.
//
// Tensors handed out by Acquire/View stay valid until they are Released or
// the workspace is Reset — Net.Forward resets at entry, so a network
// output is valid until the next forward pass on the same workspace.
// Callers that keep results longer must Clone them.
type Workspace struct {
	// Workers is the goroutine fan-out for large dense convolution GEMMs
	// (tensor.ParallelMatMulFusedInto); ≤ 1 keeps them serial. Plumbed
	// from the serving gateway's ForwardWorkers config.
	Workers int

	buckets [33][][]float32 // free buffers; bucket b holds cap 1<<b
	hdrFree []*tensor.Tensor
	lent    []lease

	colsBuf []float32     // dedicated im2col scratch, grown on demand
	colsM   tensor.Matrix // persistent header over colsBuf
	dstM    tensor.Matrix // persistent header binding GEMM outputs

	allocs uint64 // buffers + headers newly allocated (bucket misses)
	bytes  uint64 // bytes of those allocations
}

// lease records one outstanding tensor. owned marks buffers that came from
// the bucket free lists; views over foreign memory are recycled
// header-only.
type lease struct {
	t     *tensor.Tensor
	owned bool
}

// NewWorkspace returns an empty workspace. Buffers are allocated lazily on
// first use and recycled after that.
func NewWorkspace() *Workspace { return &Workspace{Workers: 1} }

// sameData reports whether two tensors share a backing array.
func sameData(a, b *tensor.Tensor) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

// bucketFor returns the free-list index for a buffer of at least n
// elements: the smallest b with 1<<b ≥ n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// header returns a recycled tensor header, or a fresh one on a pool miss.
func (ws *Workspace) header() *tensor.Tensor {
	if n := len(ws.hdrFree); n > 0 {
		t := ws.hdrFree[n-1]
		ws.hdrFree = ws.hdrFree[:n-1]
		return t
	}
	ws.allocs++
	ws.bytes += 96 // approximate header + shape/stride storage
	return &tensor.Tensor{}
}

// Acquire returns a workspace-backed tensor of the given shape. Contents
// are NOT zeroed — layers must write every element (the fused kernels and
// pooling/activation loops all do).
func (ws *Workspace) Acquire(shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	var buf []float32
	if n > 0 {
		b := bucketFor(n)
		if l := len(ws.buckets[b]); l > 0 {
			buf = ws.buckets[b][l-1]
			ws.buckets[b][l-1] = nil
			ws.buckets[b] = ws.buckets[b][:l-1]
		} else {
			buf = make([]float32, 1<<b)
			ws.allocs++
			ws.bytes += uint64(4 << b)
		}
	}
	t := ws.header()
	t.SetData(buf[:n], shape...)
	ws.lent = append(ws.lent, lease{t: t, owned: n > 0})
	return t
}

// View returns a workspace header over foreign data without copying —
// how Flatten reshapes without allocating. Releasing a view never returns
// the underlying buffer to the free lists.
func (ws *Workspace) View(data []float32, shape ...int) *tensor.Tensor {
	t := ws.header()
	t.SetData(data, shape...)
	ws.lent = append(ws.lent, lease{t: t, owned: false})
	return t
}

// Release returns t's buffer (if workspace-owned) and header to the free
// lists. Releasing a tensor the workspace did not hand out — including one
// already released — is a no-op, so callers can release unconditionally.
func (ws *Workspace) Release(t *tensor.Tensor) {
	for i := range ws.lent {
		if ws.lent[i].t != t {
			continue
		}
		ws.retire(i)
		return
	}
}

// retire removes lease i, recycling its buffer and header.
func (ws *Workspace) retire(i int) {
	l := ws.lent[i]
	last := len(ws.lent) - 1
	ws.lent[i] = ws.lent[last]
	ws.lent[last] = lease{}
	ws.lent = ws.lent[:last]
	if l.owned {
		buf := l.t.Data[:cap(l.t.Data)]
		// Owned buffers are always exact power-of-two capacity; anything
		// else would corrupt the bucket invariant.
		if b := bucketFor(len(buf)); len(buf) == 1<<b {
			ws.buckets[b] = append(ws.buckets[b], buf)
		}
	}
	l.t.SetData(nil, 0)
	ws.hdrFree = append(ws.hdrFree, l.t)
}

// Reset returns every outstanding tensor to the free lists. Net.Forward
// calls it on entry, which is what bounds the workspace's footprint to one
// pass's peak while invalidating the previous pass's output.
func (ws *Workspace) Reset() {
	for len(ws.lent) > 0 {
		ws.retire(len(ws.lent) - 1)
	}
}

// Im2colScratch returns the workspace's dedicated im2col matrix sized
// rows×cols, growing the backing buffer if needed. The same matrix is
// returned every call — it is scratch for exactly one GEMM at a time.
func (ws *Workspace) Im2colScratch(rows, cols int) *tensor.Matrix {
	n := rows * cols
	if cap(ws.colsBuf) < n {
		ws.colsBuf = make([]float32, n)
		ws.allocs++
		ws.bytes += uint64(4 * n)
	}
	ws.colsM.Reset(ws.colsBuf[:cap(ws.colsBuf)][:n], rows, cols)
	return &ws.colsM
}

// BindMatrix rebinds the workspace's persistent output header around data.
// Like Im2colScratch, the same header is returned every call.
func (ws *Workspace) BindMatrix(data []float32, rows, cols int) *tensor.Matrix {
	ws.dstM.Reset(data, rows, cols)
	return &ws.dstM
}

// AllocStats reports the cumulative buffer/header allocations this
// workspace performed (bucket misses) and their total bytes. A warmed
// workspace stops accumulating — that is the property the serving gauge
// and the AllocsPerRun regression tests watch.
func (ws *Workspace) AllocStats() (allocs, bytes uint64) { return ws.allocs, ws.bytes }

// takeAllocStats returns and clears the counters (WorkspacePool aggregation).
func (ws *Workspace) takeAllocStats() (allocs, bytes uint64) {
	a, b := ws.allocs, ws.bytes
	ws.allocs, ws.bytes = 0, 0
	return a, b
}

// WorkspacePool hands workspaces to concurrent batch workers, backed by a
// sync.Pool so idle workspaces are reclaimable by the GC under memory
// pressure. It also aggregates the allocation counters of everything that
// passes through it, which feeds the serving-layer allocs/op gauge.
type WorkspacePool struct {
	pool    sync.Pool
	workers int
	allocs  atomic.Uint64
	bytes   atomic.Uint64
	gets    atomic.Uint64
}

// NewWorkspacePool returns a pool whose workspaces run convolution GEMMs
// with the given worker fan-out (≤ 1 = serial).
func NewWorkspacePool(workers int) *WorkspacePool {
	if workers < 1 {
		workers = 1
	}
	p := &WorkspacePool{workers: workers}
	p.pool.New = func() any {
		ws := NewWorkspace()
		ws.Workers = workers
		return ws
	}
	return p
}

// Get takes a workspace from the pool.
func (p *WorkspacePool) Get() *Workspace {
	p.gets.Add(1)
	return p.pool.Get().(*Workspace)
}

// Put resets ws, folds its allocation counters into the pool's aggregate,
// and returns it for reuse.
func (p *WorkspacePool) Put(ws *Workspace) {
	if ws == nil {
		return
	}
	ws.Reset()
	a, b := ws.takeAllocStats()
	if a > 0 {
		p.allocs.Add(a)
		p.bytes.Add(b)
	}
	p.pool.Put(ws)
}

// AllocStats reports cumulative allocations and bytes folded in by Put,
// plus the number of Get calls — the serving layer divides deltas of the
// first by deltas of the last for its allocs/op gauge.
func (p *WorkspacePool) AllocStats() (allocs, bytes, gets uint64) {
	return p.allocs.Load(), p.bytes.Load(), p.gets.Load()
}
