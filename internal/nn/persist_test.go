package nn

import (
	"bytes"
	"strings"
	"testing"

	"ccperf/internal/tensor"
)

func persistNet(t *testing.T, seed int64) *Net {
	t.Helper()
	n := NewNet("p", Shape{C: 3, H: 12, W: 12})
	n.Add(
		NewConv("c1", 4, 3, 3, 1, 1, 1, 1, 1),
		NewReLU("r"),
		NewResidual("blk", NewConv("blk-c", 4, 3, 3, 1, 1, 1, 1, 1)),
		NewFlatten("f"),
		NewFC("fc", 5),
		NewSoftmax("sm"),
	)
	if err := n.Init(seed); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSaveLoadWeightsRoundTrip(t *testing.T) {
	src := persistNet(t, 1)
	// Perturb a bias so the snapshot is not just the init state.
	p, _ := src.PrunableByName("c1")
	p.(*Conv).Bias()[0] = 7
	in := tensor.New(3, 12, 12)
	for i := range in.Data {
		in.Data[i] = float32(i%7) / 7
	}
	want := src.Forward(in, nil)

	var buf bytes.Buffer
	if err := SaveWeights(src, &buf); err != nil {
		t.Fatal(err)
	}
	dst := persistNet(t, 99) // different init
	if err := LoadWeights(dst, &buf); err != nil {
		t.Fatal(err)
	}
	got := dst.Forward(in, nil)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("outputs differ at %d after weight load", i)
		}
	}
}

func TestLoadWeightsSparseStateRestored(t *testing.T) {
	src := persistNet(t, 2)
	p, _ := src.PrunableByName("c1")
	w := p.Weights()
	for i := 0; i < len(w.Data)/2; i++ {
		w.Data[i] = 0
	}
	p.Rebuild()
	var buf bytes.Buffer
	if err := SaveWeights(src, &buf); err != nil {
		t.Fatal(err)
	}
	dst := persistNet(t, 3)
	if err := LoadWeights(dst, &buf); err != nil {
		t.Fatal(err)
	}
	q, _ := dst.PrunableByName("c1")
	if q.WeightSparsity() < 0.4 {
		t.Fatalf("sparsity not restored: %v", q.WeightSparsity())
	}
}

func TestLoadWeightsArchitectureMismatch(t *testing.T) {
	src := persistNet(t, 4)
	var buf bytes.Buffer
	if err := SaveWeights(src, &buf); err != nil {
		t.Fatal(err)
	}
	other := NewNet("q", Shape{C: 3, H: 12, W: 12})
	other.Add(NewConv("c1", 8, 3, 3, 1, 1, 1, 1, 1)) // wrong width + missing layers
	if err := other.Init(1); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(other, &buf); err == nil {
		t.Fatal("expected error for architecture mismatch")
	}
}

func TestLoadWeightsGarbage(t *testing.T) {
	n := persistNet(t, 5)
	if err := LoadWeights(n, strings.NewReader("junk")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSaveWeightsUninitialized(t *testing.T) {
	n := NewNet("u", Shape{C: 1, H: 8, W: 8})
	n.Add(NewConv("c", 2, 3, 3, 1, 1, 1, 1, 1))
	var buf bytes.Buffer
	if err := SaveWeights(n, &buf); err == nil {
		t.Fatal("expected error for uninitialized net")
	}
}
