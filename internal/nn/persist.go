package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// weightsSnapshot is the serialized form of a network's parameters, keyed
// by prunable-layer name so a snapshot survives as long as the
// architecture (and its layer names) is unchanged.
type weightsSnapshot struct {
	Version int
	Net     string
	Layers  map[string]layerWeights
}

type layerWeights struct {
	Rows, Cols int
	Data       []float32
	Bias       []float32
}

const weightsVersion = 1

// SaveWeights serializes every prunable layer's weights and biases
// (convolutions — including those inside inception and residual blocks —
// and fully-connected layers). The network must be initialized.
func SaveWeights(n *Net, w io.Writer) error {
	snap := weightsSnapshot{Version: weightsVersion, Net: n.Name, Layers: map[string]layerWeights{}}
	for _, p := range n.Prunables() {
		mat := p.Weights()
		if mat == nil {
			return fmt.Errorf("nn: layer %q not initialized", p.Name())
		}
		lw := layerWeights{Rows: mat.Rows, Cols: mat.Cols, Data: mat.Data}
		switch v := p.(type) {
		case *Conv:
			lw.Bias = v.Bias()
		case *FC:
			lw.Bias = v.Bias()
		}
		if _, dup := snap.Layers[p.Name()]; dup {
			return fmt.Errorf("nn: duplicate layer name %q", p.Name())
		}
		snap.Layers[p.Name()] = lw
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("nn: save weights: %w", err)
	}
	return nil
}

// LoadWeights restores parameters saved with SaveWeights into an
// initialized network of the same architecture. Every snapshot layer must
// exist with matching dimensions; layers absent from the snapshot are an
// error, so a partial snapshot cannot silently half-load.
func LoadWeights(n *Net, r io.Reader) error {
	var snap weightsSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: load weights: %w", err)
	}
	if snap.Version != weightsVersion {
		return fmt.Errorf("nn: load weights: unsupported version %d", snap.Version)
	}
	prunables := n.Prunables()
	if len(prunables) != len(snap.Layers) {
		return fmt.Errorf("nn: snapshot has %d layers, network has %d", len(snap.Layers), len(prunables))
	}
	for _, p := range prunables {
		lw, ok := snap.Layers[p.Name()]
		if !ok {
			return fmt.Errorf("nn: snapshot missing layer %q", p.Name())
		}
		mat := p.Weights()
		if mat == nil {
			return fmt.Errorf("nn: layer %q not initialized", p.Name())
		}
		if mat.Rows != lw.Rows || mat.Cols != lw.Cols {
			return fmt.Errorf("nn: layer %q is %dx%d, snapshot %dx%d", p.Name(), mat.Rows, mat.Cols, lw.Rows, lw.Cols)
		}
		copy(mat.Data, lw.Data)
		switch v := p.(type) {
		case *Conv:
			copy(v.Bias(), lw.Bias)
		case *FC:
			copy(v.Bias(), lw.Bias)
		}
		p.Rebuild()
	}
	return nil
}
