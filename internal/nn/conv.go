package nn

import (
	"fmt"

	"ccperf/internal/tensor"
)

// sparseExecThreshold is the weight sparsity above which a convolution
// switches from dense GEMM to CSR SpMM. Below it, sparse bookkeeping costs
// more than the skipped multiplies — the same crossover the paper's
// sparse-Caffe substrate exhibits. Re-measured after the fused
// register-blocked GEMM landed: at the Caffenet-conv2 shape the kernels
// tie at ≈25% sparsity (dense wins at 20%, CSR wins from 30%), so the
// threshold holds — measurement table in docs/KERNELS.md.
const sparseExecThreshold = 0.25

// Conv is a 2-D convolution layer with optional groups (Caffenet's conv2,
// conv4 and conv5 are grouped, which is why Table 1 lists filter depths of
// 48 and 192 against wider inputs).
type Conv struct {
	name             string
	OutC             int
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
	Groups           int

	weights *tensor.Matrix // OutC × (inCg*KH*KW), filter-major
	bias    []float32
	inCg    int // input channels per group; fixed at Init
	csr     *tensor.CSR
	useCSR  bool

	// fuseReLU folds the following ReLU into the GEMM/SpMM epilogue.
	// Set by Net.planFusion (and Inception/Residual Init) — the fused
	// kernels clamp rows as they finish, so the separate ReLU layer is
	// skipped at execution time.
	fuseReLU bool

	// Execution caches, refreshed by Rebuild so Forward allocates nothing:
	// per-group dense weight headers, per-group CSR slices, and the weight
	// NNZ (so Cost stops rescanning the whole matrix per call).
	groupW   []tensor.Matrix
	groupCSR []*tensor.CSR
	nnz      int
}

// NewConv constructs an uninitialized convolution. Init must be called with
// the input shape before Forward. groups must divide both the input
// channels and OutC.
func NewConv(name string, outC, kh, kw, strideH, strideW, padH, padW, groups int) *Conv {
	if groups < 1 {
		groups = 1
	}
	return &Conv{
		name: name, OutC: outC, KH: kh, KW: kw,
		StrideH: strideH, StrideW: strideW, PadH: padH, PadW: padW,
		Groups: groups,
	}
}

// Name implements Layer.
func (c *Conv) Name() string { return c.name }

// Kind implements Layer.
func (c *Conv) Kind() string { return "conv" }

// Init allocates weights for the given input channel count using a
// deterministic pseudo-random initialization derived from seed.
func (c *Conv) Init(inC int, seed int64) error {
	if inC < 1 {
		return fmt.Errorf("nn: conv %q input channels %d < 1", c.name, inC)
	}
	if inC%c.Groups != 0 || c.OutC%c.Groups != 0 {
		return fmt.Errorf("nn: conv %q groups=%d does not divide inC=%d outC=%d", c.name, c.Groups, inC, c.OutC)
	}
	c.inCg = inC / c.Groups
	c.weights = tensor.NewMatrix(c.OutC, c.inCg*c.KH*c.KW)
	fillGaussian(c.weights.Data, seed, 0, 0.05)
	c.bias = make([]float32, c.OutC)
	c.Rebuild()
	return nil
}

func (c *Conv) geom(in Shape) tensor.ConvGeom {
	return tensor.ConvGeom{
		InC: c.inCg, InH: in.H, InW: in.W,
		KH: c.KH, KW: c.KW,
		StrideH: c.StrideH, StrideW: c.StrideW,
		PadH: c.PadH, PadW: c.PadW,
	}
}

// OutShape implements Layer.
func (c *Conv) OutShape(in Shape) Shape {
	g := c.geom(in)
	return Shape{C: c.OutC, H: g.OutH(), W: g.OutW()}
}

// Forward implements Layer via im2col + GEMM (dense) or SpMM (pruned).
// The GEMM writes straight into the output tensor's group segment with the
// bias (and a fused ReLU, when the following layer was folded in) applied
// in the kernel epilogue — no intermediate result matrix, no separate bias
// pass. Dense GEMMs above tensor.ParallelThreshold fan out across
// ws.Workers goroutines.
func (c *Conv) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	inS := Shape{C: in.Dim(0), H: in.Dim(1), W: in.Dim(2)}
	g := c.geom(inS)
	oh, ow := g.OutH(), g.OutW()
	out := wsAcquire(ws, c.OutC, oh, ow)
	outCg := c.OutC / c.Groups
	chVol := inS.H * inS.W
	plane := oh * ow
	rows, cols := c.inCg*c.KH*c.KW, plane
	workers := 1
	if ws != nil {
		workers = ws.Workers
	}
	for grp := 0; grp < c.Groups; grp++ {
		sub := in.Data[grp*c.inCg*chVol : (grp+1)*c.inCg*chVol]
		var colsM *tensor.Matrix
		if ws != nil {
			colsM = ws.Im2colScratch(rows, cols)
		} else {
			colsM = tensor.NewMatrix(rows, cols)
		}
		tensor.Im2ColInto(g, sub, colsM)
		seg := out.Data[grp*outCg*plane : (grp+1)*outCg*plane]
		var dst *tensor.Matrix
		if ws != nil {
			dst = ws.BindMatrix(seg, outCg, plane)
		} else {
			dst = tensor.MatrixFromSlice(seg, outCg, plane)
		}
		biasSeg := c.bias[grp*outCg : (grp+1)*outCg]
		if c.useCSR {
			tensor.SpMMFusedInto(dst, c.groupCSR[grp], colsM, biasSeg, c.fuseReLU)
		} else {
			tensor.ParallelMatMulFusedInto(dst, &c.groupW[grp], colsM, biasSeg, c.fuseReLU, workers)
		}
	}
	return out
}

// Cost implements Layer.
func (c *Conv) Cost(in Shape) Cost {
	g := c.geom(in)
	dense := tensor.ConvFLOPs(g, c.OutC/c.Groups) * int64(c.Groups)
	params := int64(c.OutC)*int64(c.inCg*c.KH*c.KW) + int64(c.OutC)
	nnz := params
	eff := dense
	if c.weights != nil {
		// c.nnz is cached by Rebuild — Cost runs inside explore's
		// enumeration loop and must not rescan the weight matrix.
		wnnz := int64(c.nnz)
		nnz = wnnz + int64(c.OutC)
		density := float64(wnnz) / float64(len(c.weights.Data))
		eff = int64(float64(dense) * density)
	}
	out := c.OutShape(in)
	return Cost{
		FLOPs:           dense,
		EffectiveFLOPs:  eff,
		Params:          params,
		NNZ:             nnz,
		WeightBytes:     4 * nnz,
		ActivationBytes: 4 * int64(in.Volume()+out.Volume()),
	}
}

// Weights implements Prunable.
func (c *Conv) Weights() *tensor.Matrix { return c.weights }

// Bias returns the live bias vector.
func (c *Conv) Bias() []float32 { return c.bias }

// Rebuild implements Prunable: refreshes every execution cache — the
// cached NNZ (so Cost never rescans weights), the per-group dense weight
// headers, and when sparsity crosses the threshold, the full CSR plus
// per-group CSR row slices (so Forward never rebuilds RowPtr tables).
func (c *Conv) Rebuild() {
	if c.weights == nil {
		return
	}
	c.nnz = c.weights.NNZ()
	outCg := c.OutC / c.Groups
	if cap(c.groupW) < c.Groups {
		c.groupW = make([]tensor.Matrix, c.Groups)
	}
	c.groupW = c.groupW[:c.Groups]
	for grp := 0; grp < c.Groups; grp++ {
		c.groupW[grp].Reset(
			c.weights.Data[grp*outCg*c.weights.Cols:(grp+1)*outCg*c.weights.Cols],
			outCg, c.weights.Cols)
	}
	if c.Sparsity() >= sparseExecThreshold {
		c.csr = tensor.ToCSR(c.weights)
		c.useCSR = true
		c.groupCSR = c.groupCSR[:0]
		if c.Groups == 1 {
			c.groupCSR = append(c.groupCSR, c.csr)
		} else {
			for grp := 0; grp < c.Groups; grp++ {
				c.groupCSR = append(c.groupCSR, c.csrGroup(grp, outCg))
			}
		}
	} else {
		c.csr = nil
		c.useCSR = false
		c.groupCSR = c.groupCSR[:0]
	}
}

// csrGroup extracts group grp's rows from the cached CSR weights; called
// only from Rebuild so Forward reuses the precomputed slices.
func (c *Conv) csrGroup(grp, outCg int) *tensor.CSR {
	r0, r1 := grp*outCg, (grp+1)*outCg
	p0, p1 := c.csr.RowPtr[r0], c.csr.RowPtr[r1]
	sub := &tensor.CSR{
		Rows: outCg, Cols: c.csr.Cols,
		RowPtr: make([]int32, outCg+1),
		ColIdx: c.csr.ColIdx[p0:p1],
		Val:    c.csr.Val[p0:p1],
	}
	for i := 0; i <= outCg; i++ {
		sub.RowPtr[i] = c.csr.RowPtr[r0+i] - p0
	}
	return sub
}

// Sparsity returns the zero fraction from the cached NNZ.
func (c *Conv) Sparsity() float64 {
	if c.weights == nil || len(c.weights.Data) == 0 {
		return 0
	}
	return 1 - float64(c.nnz)/float64(len(c.weights.Data))
}

// WeightSparsity implements Prunable. Like Cost it reads the NNZ cached at
// the last Rebuild.
func (c *Conv) WeightSparsity() float64 { return c.Sparsity() }

// UsesSparseKernel reports whether Forward currently runs through SpMM.
func (c *Conv) UsesSparseKernel() bool { return c.useCSR }

// fillGaussian writes a deterministic N(mean, std) sample stream derived
// from seed, using a splitmix-style generator plus Box-Muller. Avoids
// importing math/rand so layer init order cannot perturb other consumers.
func fillGaussian(dst []float32, seed int64, mean, std float64) {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	next := func() float64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
	for i := 0; i < len(dst); i += 2 {
		u1, u2 := next(), next()
		if u1 < 1e-300 {
			u1 = 1e-300
		}
		r := std * sqrtNeg2Log(u1)
		dst[i] = float32(mean + r*cosTau(u2))
		if i+1 < len(dst) {
			dst[i+1] = float32(mean + r*sinTau(u2))
		}
	}
}
