package nn

import (
	"math"
	"testing"

	"ccperf/internal/tensor"
)

func TestBatchNormIdentityInit(t *testing.T) {
	bn := NewBatchNorm("bn", 3)
	in := tensor.New(3, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i%7) - 3
	}
	out := bn.Forward(in, nil)
	for i := range in.Data {
		if math.Abs(float64(out.Data[i]-in.Data[i])) > 1e-4 {
			t.Fatalf("identity-init batchnorm changed values at %d", i)
		}
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	bn.Mean[0] = 2
	bn.Var[0] = 4
	bn.Gamma[0] = 3
	bn.Beta[0] = 1
	// y = 3·(x−2)/2 + 1.
	in := tensor.FromSlice([]float32{2, 4, 0}, 1, 3, 1)
	out := bn.Forward(in, nil)
	want := []float32{1, 4, -2}
	for i, w := range want {
		if math.Abs(float64(out.Data[i]-w)) > 1e-3 {
			t.Fatalf("bn[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestBatchNormChannelMismatchPanics(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for channel mismatch")
		}
	}()
	bn.Forward(tensor.New(3, 2, 2), nil)
}

func TestResidualIdentityShortcut(t *testing.T) {
	// Body preserves shape → identity shortcut, no projection.
	r := NewResidual("res",
		NewConv("c1", 4, 3, 3, 1, 1, 1, 1, 1),
		NewReLU("r1"),
		NewConv("c2", 4, 3, 3, 1, 1, 1, 1, 1),
	)
	in := Shape{C: 4, H: 6, W: 6}
	if err := r.Init(in, 3); err != nil {
		t.Fatal(err)
	}
	if r.Projection() != nil {
		t.Fatal("identity shortcut should have no projection")
	}
	if got := r.OutShape(in); got != in {
		t.Fatalf("OutShape = %v", got)
	}
	x := tensor.New(4, 6, 6)
	for i := range x.Data {
		x.Data[i] = float32(i%5) / 5
	}
	out := r.Forward(x, nil)
	if out.Dim(0) != 4 || out.Dim(1) != 6 {
		t.Fatalf("forward shape %v", out.Shape)
	}
	// Output is ReLU'd: non-negative.
	for _, v := range out.Data {
		if v < 0 {
			t.Fatal("residual output must be non-negative after ReLU")
		}
	}
	if len(r.Prunables()) != 2 {
		t.Fatalf("prunables = %d, want 2", len(r.Prunables()))
	}
}

func TestResidualZeroBodyIsReLUIdentity(t *testing.T) {
	// With a body conv of all-zero weights, out = ReLU(x).
	c := NewConv("c", 3, 3, 3, 1, 1, 1, 1, 1)
	r := NewResidual("res", c)
	in := Shape{C: 3, H: 4, W: 4}
	if err := r.Init(in, 1); err != nil {
		t.Fatal(err)
	}
	w := c.Weights()
	for i := range w.Data {
		w.Data[i] = 0
	}
	c.Rebuild()
	x := tensor.New(3, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i) - 20
	}
	out := r.Forward(x, nil)
	for i, v := range x.Data {
		want := v
		if want < 0 {
			want = 0
		}
		if out.Data[i] != want {
			t.Fatalf("at %d: %v, want relu(%v)", i, out.Data[i], v)
		}
	}
}

func TestResidualProjectionShortcut(t *testing.T) {
	// Body downsamples and widens → 1x1 stride-2 projection.
	r := NewResidual("res",
		NewConv("c1", 8, 3, 3, 2, 2, 1, 1, 1),
	)
	in := Shape{C: 4, H: 8, W: 8}
	if err := r.Init(in, 5); err != nil {
		t.Fatal(err)
	}
	p := r.Projection()
	if p == nil {
		t.Fatal("expected projection shortcut")
	}
	if p.OutC != 8 || p.StrideH != 2 {
		t.Fatalf("projection = %+v", p)
	}
	x := tensor.New(4, 8, 8)
	out := r.Forward(x, nil)
	if out.Dim(0) != 8 || out.Dim(1) != 4 || out.Dim(2) != 4 {
		t.Fatalf("forward shape %v", out.Shape)
	}
	// Projection is prunable too.
	if len(r.Prunables()) != 2 {
		t.Fatalf("prunables = %d, want body conv + projection", len(r.Prunables()))
	}
}

func TestResidualRejectsFC(t *testing.T) {
	r := NewResidual("res", NewFC("fc", 4))
	if err := r.Init(Shape{C: 4, H: 4, W: 4}, 1); err == nil {
		t.Fatal("expected error for FC in residual body")
	}
}

func TestResidualInNet(t *testing.T) {
	n := NewNet("resnetish", Shape{C: 3, H: 16, W: 16})
	n.Add(
		NewConv("stem", 8, 3, 3, 1, 1, 1, 1, 1),
		NewBatchNorm("bn0", 8),
		NewReLU("r0"),
		NewResidual("block1",
			NewConv("b1c1", 8, 3, 3, 1, 1, 1, 1, 1),
			NewBatchNorm("b1bn", 8),
			NewReLU("b1r"),
			NewConv("b1c2", 8, 3, 3, 1, 1, 1, 1, 1),
		),
		NewResidual("block2",
			NewConv("b2c1", 16, 3, 3, 2, 2, 1, 1, 1),
		),
		NewGlobalAvgPool("gap"),
		NewFlatten("f"),
		NewFC("fc", 10),
		NewSoftmax("sm"),
	)
	if err := n.Init(7); err != nil {
		t.Fatal(err)
	}
	// Prunables: stem + 2 in block1 + (1 body + proj) in block2 + fc = 6.
	if got := len(n.Prunables()); got != 6 {
		t.Fatalf("prunables = %d, want 6", got)
	}
	if got := len(n.ConvLayers()); got != 5 {
		t.Fatalf("convs = %d, want 5", got)
	}
	x := tensor.New(3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(i%11) / 11
	}
	out := n.Forward(x, nil)
	if out.Len() != 10 {
		t.Fatalf("output len = %d", out.Len())
	}
	if s := out.Sum(); math.Abs(s-1) > 1e-4 {
		t.Fatalf("softmax sum = %v", s)
	}
	// Cost accounting covers the whole net.
	if c := n.TotalCost(); c.FLOPs <= 0 || c.Params <= 0 {
		t.Fatalf("cost = %+v", c)
	}
	// Pruning a residual-body conv through the net works.
	p, ok := n.PrunableByName("b1c2")
	if !ok {
		t.Fatal("b1c2 not found")
	}
	w := p.Weights()
	for i := range w.Data {
		w.Data[i] = 0
	}
	p.Rebuild()
	if p.WeightSparsity() != 1 {
		t.Fatal("sparsity accounting broken for residual conv")
	}
}
