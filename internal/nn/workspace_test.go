package nn

import (
	"sync"
	"testing"

	"ccperf/internal/tensor"
)

// testNet builds a small but representative network: grouped conv, fused
// conv+ReLU, LRN, pooling, flatten view, fused FC+ReLU, dropout, softmax.
func testNet(t testing.TB) *Net {
	t.Helper()
	n := NewNet("ws-test", Shape{C: 4, H: 16, W: 16})
	n.Add(
		NewConv("conv1", 8, 3, 3, 1, 1, 1, 1, 1),
		NewReLU("relu1"),
		NewLRN("lrn1"),
		NewMaxPool("pool1", 2, 2),
		NewConv("conv2", 8, 3, 3, 1, 1, 1, 1, 2), // grouped
		NewReLU("relu2"),
		NewGlobalAvgPool("gap"),
		NewFlatten("flat"),
		NewFC("fc1", 12),
		NewReLU("relu3"),
		NewDropout("drop", 0.5),
		NewFC("fc2", 10),
		NewSoftmax("prob"),
	)
	if err := n.Init(7); err != nil {
		t.Fatal(err)
	}
	return n
}

func testImage(s Shape) *tensor.Tensor {
	img := tensor.New(s.C, s.H, s.W)
	for i := range img.Data {
		img.Data[i] = float32(i%17)/17 - 0.4
	}
	return img
}

func TestWorkspaceAcquireReleaseRecycles(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Acquire(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Acquire len = %d, want 24", a.Len())
	}
	base := &a.Data[0]
	ws.Release(a)
	b := ws.Acquire(4, 3, 2) // same bucket (32) — must reuse the buffer
	if &b.Data[0] != base {
		t.Fatal("Release/Acquire did not recycle the buffer")
	}
	allocs0, _ := ws.AllocStats()
	ws.Release(b)
	c := ws.Acquire(2, 2, 2)
	ws.Release(c)
	if allocs1, _ := ws.AllocStats(); allocs1 != allocs0+1 {
		// 8 elems lands in a smaller bucket than 24 — one fresh buffer,
		// recycled header.
		t.Fatalf("allocs %d → %d, want exactly one new bucket", allocs0, allocs1)
	}
	// Releasing a foreign tensor (and double-releasing) is a no-op.
	ws.Release(tensor.New(2, 2))
	ws.Release(c)
}

func TestWorkspaceViewDoesNotCaptureForeignBuffer(t *testing.T) {
	ws := NewWorkspace()
	data := make([]float32, 24)
	v := ws.View(data, 24, 1, 1)
	if &v.Data[0] != &data[0] {
		t.Fatal("View copied instead of aliasing")
	}
	ws.Release(v)
	// The foreign buffer must NOT be handed back out by Acquire.
	got := ws.Acquire(24, 1, 1)
	if &got.Data[0] == &data[0] {
		t.Fatal("released view leaked its foreign buffer into the free list")
	}
}

func TestWorkspaceResetReclaimsEverything(t *testing.T) {
	ws := NewWorkspace()
	for i := 0; i < 4; i++ {
		ws.Acquire(8, 2, 2)
	}
	ws.Reset()
	allocs0, _ := ws.AllocStats()
	for i := 0; i < 4; i++ {
		ws.Acquire(8, 2, 2)
	}
	if allocs1, _ := ws.AllocStats(); allocs1 != allocs0 {
		t.Fatalf("post-Reset acquires allocated (%d → %d)", allocs0, allocs1)
	}
}

// TestForwardWorkspaceMatchesAlloc pins the tentpole equivalence: the
// workspace-threaded pass is numerically identical to the allocating pass,
// on dense and on pruned (CSR) weights, across repeated reuse.
func TestForwardWorkspaceMatchesAlloc(t *testing.T) {
	n := testNet(t)
	img := testImage(n.Input)
	want := n.ForwardAlloc(img)
	ws := NewWorkspace()
	for pass := 0; pass < 3; pass++ {
		got := n.Forward(img, ws)
		if len(got.Data) != len(want.Data) {
			t.Fatalf("pass %d: len %d, want %d", pass, len(got.Data), len(want.Data))
		}
		for i, v := range got.Data {
			if v != want.Data[i] {
				t.Fatalf("pass %d: data[%d] = %v, want %v", pass, i, v, want.Data[i])
			}
		}
	}

	// Prune conv2 past the sparse-execution threshold and re-check.
	p, ok := n.PrunableByName("conv2")
	if !ok {
		t.Fatal("conv2 not prunable")
	}
	w := p.Weights()
	for i := range w.Data {
		if i%2 == 0 {
			w.Data[i] = 0
		}
	}
	p.Rebuild()
	if !p.(*Conv).UsesSparseKernel() {
		t.Fatal("conv2 did not switch to CSR")
	}
	want = n.ForwardAlloc(img)
	got := n.Forward(img, ws)
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("sparse: data[%d] = %v, want %v", i, v, want.Data[i])
		}
	}
}

// TestNetForwardZeroAllocs asserts the tentpole claim end to end: a warmed
// workspace makes the whole network forward pass allocation-free.
func TestNetForwardZeroAllocs(t *testing.T) {
	n := testNet(t)
	img := testImage(n.Input)
	ws := NewWorkspace()
	n.Forward(img, ws) // warm buckets and headers
	if allocs := testing.AllocsPerRun(20, func() { n.Forward(img, ws) }); allocs != 0 {
		t.Fatalf("warmed Net.Forward allocs/run = %v, want 0", allocs)
	}
	a0, _ := ws.AllocStats()
	for i := 0; i < 10; i++ {
		n.Forward(img, ws)
	}
	if a1, _ := ws.AllocStats(); a1 != a0 {
		t.Fatalf("workspace miss counter grew %d → %d in steady state", a0, a1)
	}
}

// TestLayerForwardZeroAllocs asserts zero steady-state allocations for the
// individual conv (dense and CSR), FC and pool forward paths.
func TestLayerForwardZeroAllocs(t *testing.T) {
	in := testImage(Shape{C: 4, H: 16, W: 16})

	conv := NewConv("c", 8, 3, 3, 1, 1, 1, 1, 2)
	if err := conv.Init(4, 1); err != nil {
		t.Fatal(err)
	}
	sparse := NewConv("cs", 8, 3, 3, 1, 1, 1, 1, 1)
	if err := sparse.Init(4, 2); err != nil {
		t.Fatal(err)
	}
	for i := range sparse.weights.Data {
		if i%3 != 0 {
			sparse.weights.Data[i] = 0
		}
	}
	sparse.Rebuild()
	if !sparse.UsesSparseKernel() {
		t.Fatal("sparse conv did not switch to CSR")
	}
	pool := NewMaxPool("p", 2, 2)
	flat := testImage(Shape{C: 4 * 16 * 16, H: 1, W: 1})
	fc := NewFC("f", 32)
	fc.Init(flat.Len(), 3)

	cases := []struct {
		name  string
		layer Layer
		input *tensor.Tensor
	}{
		{"conv-dense-grouped", conv, in},
		{"conv-csr", sparse, in},
		{"pool", pool, in},
		{"fc", fc, flat},
	}
	for _, c := range cases {
		ws := NewWorkspace()
		out := c.layer.Forward(c.input, ws)
		ws.Release(out)
		allocs := testing.AllocsPerRun(50, func() {
			o := c.layer.Forward(c.input, ws)
			ws.Release(o)
		})
		if allocs != 0 {
			t.Errorf("%s: allocs/run = %v, want 0", c.name, allocs)
		}
	}
}

// TestWorkspacePoolConcurrent hammers one WorkspacePool from concurrent
// batch workers — the serving-gateway usage pattern — and checks outputs
// stay correct. Run with -race to validate the pool's synchronization.
func TestWorkspacePoolConcurrent(t *testing.T) {
	n := testNet(t)
	img := testImage(n.Input)
	want := n.ForwardAlloc(img)
	pool := NewWorkspacePool(1)
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ws := pool.Get()
				out := n.Forward(img, ws)
				for i, v := range out.Data {
					if v != want.Data[i] {
						select {
						case errc <- &mismatchErr{i: i, got: v, want: want.Data[i]}:
						default:
						}
						break
					}
				}
				pool.Put(ws)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if allocs, _, gets := pool.AllocStats(); gets != workers*rounds || allocs == 0 {
		t.Fatalf("pool stats allocs=%d gets=%d, want warm-up allocs and %d gets", allocs, gets, workers*rounds)
	}
}

type mismatchErr struct {
	i         int
	got, want float32
}

func (e *mismatchErr) Error() string {
	return "concurrent forward mismatch"
}

// TestForwardBatchPoolMatchesSerial checks the pooled batch path returns
// independently-owned, correct outputs.
func TestForwardBatchPoolMatchesSerial(t *testing.T) {
	n := testNet(t)
	imgs := make([]*tensor.Tensor, 6)
	for i := range imgs {
		imgs[i] = testImage(n.Input)
		imgs[i].Data[0] = float32(i) // make each image distinct
	}
	var want []*tensor.Tensor
	for _, img := range imgs {
		want = append(want, n.ForwardAlloc(img))
	}
	pool := NewWorkspacePool(2)
	got := n.ForwardBatchPool(imgs, 3, pool)
	for i := range got {
		for j, v := range got[i].Data {
			if v != want[i].Data[j] {
				t.Fatalf("img %d: data[%d] = %v, want %v", i, j, v, want[i].Data[j])
			}
		}
	}
	// Outputs must be clones, not workspace memory that the next batch
	// overwrites.
	again := n.ForwardBatchPool(imgs, 3, pool)
	for i := range got {
		if sameData(got[i], again[i]) {
			t.Fatalf("img %d: batch outputs share workspace memory", i)
		}
	}
}
