package nn

import (
	"fmt"

	"ccperf/internal/tensor"
)

// Inception is a GoogLeNet inception-v1 block: four parallel branches whose
// outputs are concatenated along channels.
//
//	branch 1: 1x1 conv
//	branch 2: 1x1 reduce → 3x3 conv
//	branch 3: 1x1 reduce → 5x5 conv
//	branch 4: 3x3 maxpool → 1x1 proj
//
// Its six convolutions are individually prunable; the paper's Figure 7
// prunes e.g. "inception-3a-3x3" and "inception-4d-5x5".
type Inception struct {
	name string

	C1x1    *Conv
	Reduce3 *Conv
	C3x3    *Conv
	Reduce5 *Conv
	C5x5    *Conv
	PoolP   *Pool
	Proj    *Conv
}

// NewInception constructs an inception block with the given branch widths,
// matching the Szegedy et al. table (e.g. 3a: 64, 96→128, 16→32, 32).
func NewInception(name string, c1, r3, c3, r5, c5, proj int) *Inception {
	b := &Inception{name: name}
	b.C1x1 = NewConv(name+"-1x1", c1, 1, 1, 1, 1, 0, 0, 1)
	b.Reduce3 = NewConv(name+"-3x3-reduce", r3, 1, 1, 1, 1, 0, 0, 1)
	b.C3x3 = NewConv(name+"-3x3", c3, 3, 3, 1, 1, 1, 1, 1)
	b.Reduce5 = NewConv(name+"-5x5-reduce", r5, 1, 1, 1, 1, 0, 0, 1)
	b.C5x5 = NewConv(name+"-5x5", c5, 5, 5, 1, 1, 2, 2, 1)
	b.PoolP = &Pool{name: name + "-pool", Mode: MaxPool, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b.Proj = NewConv(name+"-pool-proj", proj, 1, 1, 1, 1, 0, 0, 1)
	return b
}

// Name implements Layer.
func (b *Inception) Name() string { return b.name }

// Kind implements Layer.
func (b *Inception) Kind() string { return "inception" }

// Convs returns the six prunable convolutions of the block.
func (b *Inception) Convs() []*Conv {
	return []*Conv{b.C1x1, b.Reduce3, b.C3x3, b.Reduce5, b.C5x5, b.Proj}
}

// Init initializes all branch convolutions for inC input channels.
func (b *Inception) Init(inC int, seed int64) error {
	inits := []struct {
		c  *Conv
		in int
	}{
		{b.C1x1, inC},
		{b.Reduce3, inC},
		{b.C3x3, b.Reduce3.OutC},
		{b.Reduce5, inC},
		{b.C5x5, b.Reduce5.OutC},
		{b.Proj, inC},
	}
	for i, x := range inits {
		if err := x.c.Init(x.in, seed+int64(i)*7919); err != nil {
			return fmt.Errorf("nn: inception %q: %w", b.name, err)
		}
		// Every branch conv is followed by a ReLU in GoogLeNet; fold it
		// into the kernel epilogue instead of a separate pass.
		x.c.fuseReLU = true
	}
	return nil
}

// OutShape implements Layer. Spatial dims are preserved by all branches.
func (b *Inception) OutShape(in Shape) Shape {
	return Shape{C: b.C1x1.OutC + b.C3x3.OutC + b.C5x5.OutC + b.Proj.OutC, H: in.H, W: in.W}
}

// Forward implements Layer: runs the four branches and concatenates.
// Branch ReLUs are fused into the conv kernels (set at Init); reduce and
// pool intermediates are released as soon as their branch consumed them.
func (b *Inception) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	release := func(t *tensor.Tensor) {
		if ws != nil {
			ws.Release(t)
		}
	}
	o1 := b.C1x1.Forward(in, ws)
	r3 := b.Reduce3.Forward(in, ws)
	o2 := b.C3x3.Forward(r3, ws)
	release(r3)
	r5 := b.Reduce5.Forward(in, ws)
	o3 := b.C5x5.Forward(r5, ws)
	release(r5)
	p := b.PoolP.Forward(in, ws)
	o4 := b.Proj.Forward(p, ws)
	release(p)
	h, w := in.Dim(1), in.Dim(2)
	out := wsAcquire(ws, o1.Dim(0)+o2.Dim(0)+o3.Dim(0)+o4.Dim(0), h, w)
	off := 0
	for _, t := range [...]*tensor.Tensor{o1, o2, o3, o4} {
		copy(out.Data[off:], t.Data)
		off += t.Len()
		release(t)
	}
	return out
}

// Cost implements Layer: sum of branch costs.
func (b *Inception) Cost(in Shape) Cost {
	var c Cost
	c.Add(b.C1x1.Cost(in))
	r3 := b.Reduce3.Cost(in)
	c.Add(r3)
	c.Add(b.C3x3.Cost(b.Reduce3.OutShape(in)))
	r5 := b.Reduce5.Cost(in)
	c.Add(r5)
	c.Add(b.C5x5.Cost(b.Reduce5.OutShape(in)))
	c.Add(b.PoolP.Cost(in))
	c.Add(b.Proj.Cost(b.PoolP.OutShape(in)))
	return c
}

// ConcatChannels concatenates CHW tensors along the channel axis. All
// inputs must share H and W.
func ConcatChannels(ts ...*tensor.Tensor) *tensor.Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatChannels with no inputs")
	}
	h, w := ts[0].Dim(1), ts[0].Dim(2)
	total := 0
	for _, t := range ts {
		if t.Dim(1) != h || t.Dim(2) != w {
			panic(fmt.Sprintf("nn: ConcatChannels spatial mismatch %dx%d vs %dx%d", t.Dim(1), t.Dim(2), h, w))
		}
		total += t.Dim(0)
	}
	out := tensor.New(total, h, w)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += t.Len()
	}
	return out
}
