package nn

import (
	"fmt"
	"math"

	"ccperf/internal/tensor"
)

// BatchNorm is inference-time batch normalization: per-channel
// y = γ·(x−μ)/√(σ²+ε) + β with frozen statistics. Extends the layer
// library beyond the two paper CNNs (ResNet-era networks need it).
type BatchNorm struct {
	name  string
	Gamma []float32
	Beta  []float32
	Mean  []float32
	Var   []float32
	Eps   float64
}

// NewBatchNorm constructs an identity-initialized batch norm for c channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	bn := &BatchNorm{
		name:  name,
		Gamma: make([]float32, c),
		Beta:  make([]float32, c),
		Mean:  make([]float32, c),
		Var:   make([]float32, c),
		Eps:   1e-5,
	}
	for i := range bn.Gamma {
		bn.Gamma[i] = 1
		bn.Var[i] = 1
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm) Name() string { return bn.name }

// Kind implements Layer.
func (bn *BatchNorm) Kind() string { return "batchnorm" }

// OutShape implements Layer.
func (bn *BatchNorm) OutShape(in Shape) Shape { return in }

// Forward implements Layer.
func (bn *BatchNorm) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	if c != len(bn.Gamma) {
		panic(fmt.Sprintf("nn: batchnorm %q has %d channels, input has %d", bn.name, len(bn.Gamma), c))
	}
	out := wsAcquire(ws, c, h, w)
	plane := h * w
	for ch := 0; ch < c; ch++ {
		scale := float32(float64(bn.Gamma[ch]) / math.Sqrt(float64(bn.Var[ch])+bn.Eps))
		shift := bn.Beta[ch] - bn.Mean[ch]*scale
		src := in.Data[ch*plane : (ch+1)*plane]
		dst := out.Data[ch*plane : (ch+1)*plane]
		for i, v := range src {
			dst[i] = v*scale + shift
		}
	}
	return out
}

// Cost implements Layer: two FLOPs per element plus the per-channel
// parameters.
func (bn *BatchNorm) Cost(in Shape) Cost {
	n := int64(in.Volume())
	params := int64(4 * len(bn.Gamma))
	return Cost{
		FLOPs: 2 * n, EffectiveFLOPs: 2 * n,
		Params: params, NNZ: params,
		WeightBytes: 4 * params, ActivationBytes: 8 * n,
	}
}

// Residual is a ResNet-style block: out = ReLU(body(x) + shortcut(x)).
// The shortcut is identity when shapes match, or a 1x1 projection
// convolution otherwise. Its convolutions are prunable like any other.
type Residual struct {
	name string
	body []Layer
	proj *Conv // nil for identity shortcut
}

// NewResidual constructs a residual block around body layers. Init decides
// whether a projection shortcut is needed.
func NewResidual(name string, body ...Layer) *Residual {
	return &Residual{name: name, body: body}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Kind implements Layer.
func (r *Residual) Kind() string { return "residual" }

// Body returns the inner layers.
func (r *Residual) Body() []Layer { return r.body }

// Projection returns the shortcut conv, or nil for an identity shortcut.
func (r *Residual) Projection() *Conv { return r.proj }

// Init wires the body and creates a projection if the output shape differs
// from the input.
func (r *Residual) Init(in Shape, seed int64) error {
	s := in
	for i, l := range r.body {
		switch v := l.(type) {
		case *Conv:
			if err := v.Init(s.C, seed+int64(i)*271); err != nil {
				return err
			}
		case *FC:
			return fmt.Errorf("nn: residual %q cannot contain FC layers", r.name)
		case *Inception:
			if err := v.Init(s.C, seed+int64(i)*271); err != nil {
				return err
			}
		case *Residual:
			if err := v.Init(s, seed+int64(i)*271); err != nil {
				return err
			}
		}
		s = l.OutShape(s)
	}
	if s == in {
		r.proj = nil
		return nil
	}
	if s.H == 0 || s.W == 0 {
		return fmt.Errorf("nn: residual %q body collapses spatial dims", r.name)
	}
	strideH := in.H / s.H
	strideW := in.W / s.W
	if strideH < 1 || strideW < 1 || strideH*s.H != in.H || strideW*s.W != in.W {
		return fmt.Errorf("nn: residual %q body shape %v incompatible with input %v", r.name, s, in)
	}
	r.proj = NewConv(r.name+"-proj", s.C, 1, 1, strideH, strideW, 0, 0, 1)
	return r.proj.Init(in.C, seed+7)
}

// OutShape implements Layer.
func (r *Residual) OutShape(in Shape) Shape {
	s := in
	for _, l := range r.body {
		s = l.OutShape(s)
	}
	return s
}

// Forward implements Layer. Body intermediates are released back to the
// workspace as soon as the next body layer consumed them, so the block's
// peak footprint is two activations plus the shortcut.
func (r *Residual) Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor {
	x := in
	for _, l := range r.body {
		y := l.Forward(x, ws)
		if ws != nil && x != in && x != y && !sameData(x, y) {
			ws.Release(x)
		}
		x = y
	}
	var short *tensor.Tensor
	if r.proj != nil {
		short = r.proj.Forward(in, ws)
	} else {
		short = in
	}
	if x.Len() != short.Len() {
		panic(fmt.Sprintf("nn: residual %q add mismatch %v vs %v", r.name, x.Shape, short.Shape))
	}
	out := wsAcquire(ws, x.Dim(0), x.Dim(1), x.Dim(2))
	for i := range out.Data {
		v := x.Data[i] + short.Data[i]
		if v < 0 {
			v = 0
		}
		out.Data[i] = v
	}
	if ws != nil {
		if x != in {
			ws.Release(x)
		}
		if short != in {
			ws.Release(short)
		}
	}
	return out
}

// Cost implements Layer: body + projection + the add/relu.
func (r *Residual) Cost(in Shape) Cost {
	var c Cost
	s := in
	for _, l := range r.body {
		c.Add(l.Cost(s))
		s = l.OutShape(s)
	}
	if r.proj != nil {
		c.Add(r.proj.Cost(in))
	}
	n := int64(s.Volume())
	c.FLOPs += 2 * n
	c.EffectiveFLOPs += 2 * n
	c.ActivationBytes += 8 * n
	return c
}

// Prunables returns the block's prunable convolutions (body + projection).
func (r *Residual) Prunables() []Prunable {
	var out []Prunable
	for _, l := range r.body {
		switch v := l.(type) {
		case *Conv:
			out = append(out, v)
		case *Inception:
			for _, c := range v.Convs() {
				out = append(out, c)
			}
		case *Residual:
			out = append(out, v.Prunables()...)
		}
	}
	if r.proj != nil {
		out = append(out, r.proj)
	}
	return out
}
