// Package nn implements the CNN inference engine: convolution (dense and
// sparse), pooling, normalization, fully-connected and inception layers, a
// sequential network executor, and per-layer FLOP/byte/parameter accounting.
// The accounting feeds the GPU timing simulator in internal/gpusim; the
// forward pass executes genuine arithmetic so pruning has a real
// computational effect.
package nn

import (
	"fmt"

	"ccperf/internal/tensor"
)

// Shape is a CHW activation shape.
type Shape struct {
	C, H, W int
}

// Volume returns C*H*W.
func (s Shape) Volume() int { return s.C * s.H * s.W }

// String renders CxHxW.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.C) }

// Cost is the work and data footprint of one layer's forward pass on a
// single input. EffectiveFLOPs accounts for weight sparsity: a pruned layer
// executed through sparse kernels performs work proportional to its
// non-zero weights, which is what makes pruning reduce inference time.
type Cost struct {
	FLOPs           int64 // dense-equivalent floating point operations
	EffectiveFLOPs  int64 // sparsity-adjusted operations actually executed
	Params          int64 // weight + bias parameter count
	NNZ             int64 // non-zero parameters after pruning
	WeightBytes     int64 // bytes of weights read
	ActivationBytes int64 // bytes of activations read + written
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.FLOPs += o.FLOPs
	c.EffectiveFLOPs += o.EffectiveFLOPs
	c.Params += o.Params
	c.NNZ += o.NNZ
	c.WeightBytes += o.WeightBytes
	c.ActivationBytes += o.ActivationBytes
}

// Layer is one stage of a CNN. Forward consumes and produces CHW tensors
// for a single image.
type Layer interface {
	// Name is the unique layer name within its network (e.g. "conv2").
	Name() string
	// Kind is the layer type tag (e.g. "conv", "fc", "pool").
	Kind() string
	// OutShape maps an input shape to the output shape.
	OutShape(in Shape) Shape
	// Forward runs the layer on one CHW input. ws supplies reusable scratch
	// and output memory; a nil ws makes the layer heap-allocate its output
	// (the pre-workspace behavior). Workspace-backed outputs stay valid
	// until the workspace is Reset — see Workspace.
	//
	// NOTE: this signature changed when the zero-allocation forward path
	// landed (internal API bump); Net.ForwardAlloc keeps the old
	// allocate-per-call convenience.
	Forward(in *tensor.Tensor, ws *Workspace) *tensor.Tensor
	// Cost reports the work for one forward pass on the given input shape.
	Cost(in Shape) Cost
}

// wsAcquire returns a workspace tensor, or a fresh heap tensor when ws is
// nil. Workspace tensors are NOT zeroed; every layer writes its output
// densely.
func wsAcquire(ws *Workspace, c, h, w int) *tensor.Tensor {
	if ws == nil {
		return tensor.New(c, h, w)
	}
	return ws.Acquire(c, h, w)
}

// Prunable is implemented by layers whose weights can be pruned. The
// weight matrix is filter-major: row f holds all weights of output
// filter/neuron f.
type Prunable interface {
	Layer
	// Weights returns the live weight matrix (mutating it reprunes the layer).
	Weights() *tensor.Matrix
	// Rebuild must be called after mutating weights so sparse execution
	// structures and NNZ accounting are refreshed.
	Rebuild()
	// WeightSparsity returns the zero fraction of the weights in [0,1].
	WeightSparsity() float64
}
