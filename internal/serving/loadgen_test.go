package serving

import (
	"context"
	"runtime"
	"testing"
	"time"

	"ccperf/internal/telemetry"
	"ccperf/internal/workload"
)

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestOverloadShedsAndDegradesThenRestores is the acceptance scenario:
// sustained overload must engage load shedding (bounded queue) and drive
// the controller down the ladder; recovery must bring it back up.
func TestOverloadShedsAndDegradesThenRestores(t *testing.T) {
	g := testGateway(t, Config{
		Ladder:          testLadder(t, 0, 0.9),
		Replicas:        1,
		QueueCap:        16,
		MaxBatch:        4,
		BatchTimeout:    time.Millisecond,
		SLO:             5 * time.Millisecond,
		ControlInterval: 10 * time.Millisecond,
		HoldIntervals:   2,
	})
	g.Start()
	defer g.Stop()

	// Overload phase: open-loop flood, much faster than one replica can
	// drain. Keep the pressure on until the controller reacts.
	floodUntil := time.Now().Add(5 * time.Second)
	for time.Now().Before(floodUntil) {
		for i := 0; i < 20; i++ {
			g.Submit(context.Background(), testImage(int64(i)), time.Time{})
		}
		st := g.Stats()
		if st.Degrades >= 1 && st.Shed >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := g.Stats()
	if st.Shed == 0 {
		t.Fatal("bounded queue never shed under sustained overload")
	}
	if st.Degrades == 0 {
		t.Fatal("controller never degraded under sustained overload")
	}
	if g.CurrentVariant() == 0 {
		t.Fatal("still serving the unpruned variant under overload")
	}

	// Recovery phase: stop submitting; idle healthy intervals must walk
	// the ladder back to the accurate end.
	waitUntil(t, 5*time.Second, "restoration", func() bool {
		return g.Stats().Restores >= 1 && g.CurrentVariant() == 0
	})
}

func TestRunLoadReport(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := testGateway(t, Config{
		Ladder:          testLadder(t, 0, 0.5, 0.9),
		Replicas:        2,
		QueueCap:        32,
		MaxBatch:        8,
		BatchTimeout:    time.Millisecond,
		SLO:             20 * time.Millisecond,
		ControlInterval: 10 * time.Millisecond,
		Registry:        reg,
	})
	g.Start()
	trace, err := workload.Generate(workload.Config{
		Pattern: workload.Bursty, DailyTotal: 300, Windows: 6, Seed: 4,
		BurstProb: 0.5, BurstScale: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(g, LoadConfig{
		Trace:    trace,
		Duration: 300 * time.Millisecond,
		Seed:     11,
		Deadline: 2 * time.Second,
		Cooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Stop()

	if int64(rep.Submitted) != trace.Total() {
		t.Fatalf("submitted %d, trace total %d", rep.Submitted, trace.Total())
	}
	if rep.OK+rep.Shed+rep.Expired != rep.Submitted {
		t.Fatalf("outcomes don't add up: %+v", rep)
	}
	if rep.OK == 0 {
		t.Fatal("no request served")
	}
	var perVariant int
	for _, n := range rep.PerVariant {
		perVariant += n
	}
	if perVariant != rep.OK {
		t.Fatalf("per-variant %v sums to %d, want %d", rep.PerVariant, perVariant, rep.OK)
	}
	if rep.P99MS < rep.P50MS || rep.MaxMS < rep.P99MS {
		t.Fatalf("percentiles disordered: %+v", rep)
	}
	if rep.MeanAccuracy <= 0 || rep.MeanAccuracy > 1 {
		t.Fatalf("mean accuracy proxy = %v", rep.MeanAccuracy)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput)
	}
	if s := rep.String(); len(s) == 0 {
		t.Fatal("empty report rendering")
	}
	// The gateway's own registry carried the run's counters.
	snap := reg.Snapshot()
	if snap.Counters["serving.admitted_total"] == 0 || snap.Counters["serving.served_total"] == 0 {
		t.Fatalf("registry counters missing: %v", snap.Counters)
	}
}

func TestRunLoadValidation(t *testing.T) {
	g := testGateway(t, Config{})
	if _, err := RunLoad(g, LoadConfig{}); err == nil {
		t.Fatal("expected error for missing trace")
	}
	tr := &workload.Trace{Windows: []int64{1}}
	if _, err := RunLoad(g, LoadConfig{Trace: tr}); err == nil {
		t.Fatal("expected error for missing duration")
	}
}

// TestLoadTestLeavesNoGoroutines wraps a whole loadtest cycle and checks
// the goroutine count returns to baseline — the leak gate the race smoke
// in scripts/check.sh relies on.
func TestLoadTestLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	g := testGateway(t, Config{Replicas: 2, QueueCap: 32})
	g.Start()
	trace, err := workload.Generate(workload.Config{Pattern: workload.Uniform, DailyTotal: 100, Windows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLoad(g, LoadConfig{Trace: trace, Duration: 100 * time.Millisecond, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	g.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after loadtest", before, runtime.NumGoroutine())
}
