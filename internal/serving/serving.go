// Package serving is the online inference gateway: it turns the paper's
// static cost-accuracy knob (the degree of pruning) into a runtime control
// loop. Where internal/cluster *simulates* a fleet serving a day of
// traffic, serving actually accepts requests, batches them, runs them
// through the real internal/nn forward path, and answers under a deadline.
//
// Three mechanisms cooperate:
//
//   - A bounded admission queue with per-request deadlines. When the queue
//     is full, new requests are shed immediately (ErrOverloaded) instead of
//     growing latency without bound; requests whose deadline passes while
//     queued are dropped before dispatch (ErrExpired).
//   - Per-replica dynamic batchers. Each replica coalesces queued requests
//     up to Config.MaxBatch or until Config.BatchTimeout after the first
//     request of the batch, whichever comes first, then executes the batch
//     through nn.(*Net).ForwardBatch — the serving-side analogue of the
//     GPU batch saturation of Figure 5.
//   - A load-adaptive pruning controller (controller.go) that moves the
//     whole pool along a ladder of pre-pruned model variants when the
//     observed p99 latency or queue pressure violates the SLO — trading
//     accuracy for throughput along exactly the axis of Figures 6–8.
//
// Every admission decision, batch execution and ladder move is recorded in
// internal/telemetry (metric names in docs/SERVING.md).
package serving

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ccperf/internal/fault"
	"ccperf/internal/nn"
	"ccperf/internal/telemetry"
	"ccperf/internal/tensor"
)

// Errors returned by Submit and reported in Response.Err.
var (
	// ErrOverloaded means the admission queue was full (load shedding).
	ErrOverloaded = errors.New("serving: overloaded, request shed")
	// ErrExpired means the request's deadline passed while it queued.
	ErrExpired = errors.New("serving: deadline expired before dispatch")
	// ErrStopped means the gateway is shut down.
	ErrStopped = errors.New("serving: gateway stopped")
	// ErrFaulted means fault injection failed the request and the retry
	// budget (or shutdown) ruled out another attempt.
	ErrFaulted = errors.New("serving: request failed by fault injection")
)

// Config parameterizes a Gateway. Zero fields take the documented defaults.
type Config struct {
	// Ladder is the variant ladder, least-pruned (most accurate) first.
	// Required, at least one variant.
	Ladder []Variant
	// Replicas is the number of batcher goroutines (default 2) — the
	// in-process stand-in for fleet size.
	Replicas int
	// QueueCap bounds the admission queue (default 64·Replicas).
	QueueCap int
	// MaxBatch caps a dynamic batch (default 8).
	MaxBatch int
	// BatchTimeout is the longest a batch waits to fill after its first
	// request (default 2ms).
	BatchTimeout time.Duration
	// Deadline is the default per-request deadline applied at admission
	// when the caller supplies none (0 = no deadline).
	Deadline time.Duration
	// SLO is the p99 latency target the controller defends (default
	// 50ms). Control is disabled when the ladder has a single variant.
	SLO time.Duration
	// ControlInterval is the controller tick period (default SLO, min 1ms).
	ControlInterval time.Duration
	// DegradeUtilization is the queue-fullness fraction that triggers
	// degradation even before p99 catches up (default 0.75).
	DegradeUtilization float64
	// RestoreFraction: the interval p99 must stay under SLO·RestoreFraction
	// to count as healthy (default 0.5).
	RestoreFraction float64
	// HoldIntervals is the number of consecutive healthy intervals before
	// one restoration step (default 3).
	HoldIntervals int
	// ForwardWorkers sizes each batch execution's worker pool (default 1;
	// replicas already run in parallel).
	ForwardWorkers int
	// Injector, when non-nil, drives chaos testing: each batch asks it
	// whether the replica is crashed and which requests to fail. Failed
	// requests go through the retry path below. Use *fault.Schedule.
	Injector fault.Injector
	// MaxRetries is how many extra attempts a fault-injected request gets
	// before it is answered with ErrFaulted (default 2; negative = none).
	MaxRetries int
	// RetryBackoff is the base delay before re-enqueueing a failed request;
	// attempt n waits RetryBackoff·2^(n-1) plus deterministic jitter
	// (default 2ms).
	RetryBackoff time.Duration
	// BreakerThreshold is how many consecutive failed batches open a
	// replica's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks its replica before
	// admitting a half-open probe batch (default 250ms).
	BreakerCooldown time.Duration
	// WarmupDelay is how long a replica added at runtime (ScaleTo) waits
	// before pulling its first request — the in-process stand-in for
	// instance boot time (default 0). Replicas present at Start are warm.
	WarmupDelay time.Duration
	// ExternalControl disables the built-in pruning controller so an
	// outside control plane (internal/autoscale) owns both the ladder and
	// the replica count, through ControlSignal, SetVariant and ScaleTo.
	ExternalControl bool
	// Registry and Tracer receive telemetry (nil = package defaults).
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
}

func (c *Config) defaults() error {
	if len(c.Ladder) == 0 {
		return fmt.Errorf("serving: config needs a non-empty Ladder")
	}
	for i, v := range c.Ladder {
		if v.Net == nil {
			return fmt.Errorf("serving: ladder variant %d has nil net", i)
		}
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64 * c.Replicas
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 2 * time.Millisecond
	}
	if c.SLO <= 0 {
		c.SLO = 50 * time.Millisecond
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = c.SLO
	}
	if c.ControlInterval < time.Millisecond {
		c.ControlInterval = time.Millisecond
	}
	if c.DegradeUtilization <= 0 || c.DegradeUtilization > 1 {
		c.DegradeUtilization = 0.75
	}
	if c.RestoreFraction <= 0 || c.RestoreFraction >= 1 {
		c.RestoreFraction = 0.5
	}
	if c.HoldIntervals <= 0 {
		c.HoldIntervals = 3
	}
	if c.ForwardWorkers <= 0 {
		c.ForwardWorkers = 1
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 250 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	if c.Tracer == nil {
		c.Tracer = telemetry.DefaultTracer
	}
	return nil
}

// Response is one request's outcome.
type Response struct {
	ID    int64
	Err   error
	Class int // Top-1 class index (valid when Err == nil)
	// Variant is the ladder index the request was served at; Degree and
	// Accuracy describe that variant.
	Variant  int
	Degree   string
	Accuracy float64
	// Queue is admission→dispatch wait; Total is admission→completion
	// latency; Batch is the executed batch size.
	Queue time.Duration
	Total time.Duration
	Batch int
	// Attempts is how many executions the request took (1 = no retries).
	Attempts int
}

// DefaultTenant labels single-tenant traffic in the tenant-keyed stage
// histograms: Submit tags every request with it, so StageStatsByTenant
// stays meaningful on paths that never name a tenant.
const DefaultTenant = "default"

// request is the queued form of one submission. ctx carries the
// serving.request span so batch execution parents under it, and finish
// closes that span exactly once when the request is answered.
type request struct {
	id       int64
	img      *tensor.Tensor
	deadline time.Time // zero = none
	enqueued time.Time
	attempts int // execution attempts so far, starting at 1
	ctx      context.Context
	finish   telemetry.FinishFunc
	done     chan Response
	// stages is the tenant-keyed stage histogram set the request reports
	// into (resolved once at admission, so the hot path never locks).
	stages *stageSet
}

// respond finishes the request's span with its outcome and delivers the
// response. Every answered request goes through here, so the span is
// closed exactly once no matter which path (serve, expire, fault, drain)
// completed it.
func (r *request) respond(resp Response) {
	if r.finish != nil {
		r.finish(
			telemetry.L("outcome", outcomeLabel(resp.Err)),
			telemetry.L("attempts", resp.Attempts),
		)
		r.finish = nil
	}
	r.done <- resp
}

// outcomeLabel names a response error for span labels.
func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrExpired):
		return "expired"
	case errors.Is(err, ErrFaulted):
		return "faulted"
	case errors.Is(err, ErrOverloaded):
		return "shed"
	case errors.Is(err, ErrStopped):
		return "stopped"
	default:
		return "error"
	}
}

// replicaHandle is one live replica's control block. The id is stable for
// the gateway's lifetime (scale-out after scale-in mints a fresh id), so
// per-replica telemetry and fault-injection targets stay unambiguous.
type replicaHandle struct {
	id      int
	brk     *breaker
	stop    chan struct{} // closed exactly once by ScaleTo (guarded by scaleMu)
	retired bool          // guarded by Gateway.scaleMu
}

// Gateway is the online inference service. Construct with New, then Start;
// Submit/Infer from any goroutine; Stop for a graceful drain. The replica
// set is dynamic: ScaleTo adds and retires batcher goroutines at runtime.
type Gateway struct {
	cfg     Config
	queue   chan *request
	startAt time.Time // set by Start; injector elapsed-time origin

	nextID   atomic.Int64
	variant  atomic.Int64 // current ladder index
	stopping atomic.Bool
	stopCh   chan struct{}
	started  atomic.Bool

	submits sync.WaitGroup // in-flight Submit calls
	workers sync.WaitGroup // replica + controller goroutines

	// scaleMu guards the replica set and the replica-seconds integral.
	// Stop takes it as a barrier before closing stopCh, so a concurrent
	// ScaleTo can never register a worker after workers.Wait begins or
	// close a retired replica's stop channel twice.
	scaleMu    sync.Mutex
	replicas   []*replicaHandle
	replicaSeq int       // next replica id
	repSeconds float64   // accumulated replica-seconds up to repMark
	repMark    time.Time // zero before Start and after Stop

	// execMu guards the execution-throughput accumulators the autoscaler
	// uses to estimate per-replica capacity (served requests per busy
	// second of one batcher).
	execMu      sync.Mutex
	execSeconds float64
	execServed  int64

	// window collects the current control interval's total latencies
	// (seconds); the controller swaps it out each tick.
	windowMu sync.Mutex
	window   []float64

	// stageMu guards the tenant-keyed stage histogram sets; defaultStages
	// is prefetched so the single-tenant path skips the map.
	stageMu       sync.Mutex
	stageSets     map[string]*stageSet
	defaultStages *stageSet

	healthy int // consecutive healthy intervals (controller goroutine only)

	// wsPool hands forward workspaces to batch workers. Warmed at Start so
	// steady-state batches run the nn forward path allocation-free.
	wsPool *nn.WorkspacePool

	m gatewayMetrics
}

// gatewayMetrics holds the resolved telemetry instruments so hot paths
// skip the registry map lookups.
type gatewayMetrics struct {
	admitted, shed, expired, served *telemetry.Counter
	degrades, restores              *telemetry.Counter
	batches                         *telemetry.Counter
	retries, faulted, breakerOpens  *telemetry.Counter
	queueDepth, variantGauge        *telemetry.Gauge
	breakersOpen, replicasGauge     *telemetry.Gauge
	queueWait, total                *telemetry.Histogram
	batchSize                       *telemetry.Histogram
	assembly, forward               *telemetry.Histogram
	wsAllocsPerOp                   *telemetry.Gauge
}

// New validates the config and builds a gateway (not yet serving).
func New(cfg Config) (*Gateway, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:    cfg,
		queue:  make(chan *request, cfg.QueueCap),
		stopCh: make(chan struct{}),
	}
	reg := cfg.Registry
	g.m = gatewayMetrics{
		admitted:      reg.Counter("serving.admitted_total"),
		shed:          reg.Counter("serving.shed_total"),
		expired:       reg.Counter("serving.expired_total"),
		served:        reg.Counter("serving.served_total"),
		degrades:      reg.Counter("serving.degrade_total"),
		restores:      reg.Counter("serving.restore_total"),
		batches:       reg.Counter("serving.batches_total"),
		queueDepth:    reg.Gauge("serving.queue_depth"),
		variantGauge:  reg.Gauge("serving.variant"),
		retries:       reg.Counter("serving.retries_total"),
		faulted:       reg.Counter("fault.injected_requests"),
		breakerOpens:  reg.Counter("serving.breaker_opens_total"),
		breakersOpen:  reg.Gauge("serving.breakers_open"),
		replicasGauge: reg.Gauge("serving.replicas"),
		queueWait:     reg.Histogram("serving.queue_seconds", nil),
		total:         reg.Histogram("serving.request_seconds", nil),
		batchSize:     reg.Histogram("serving.batch_size", telemetry.LinearBuckets(1, 1, 64)),
		assembly:      reg.Histogram("serving.stage_assembly_seconds", nil),
		forward:       reg.Histogram("serving.stage_forward_seconds", nil),
		wsAllocsPerOp: reg.Gauge("serving.ws_allocs_per_op"),
	}
	g.wsPool = nn.NewWorkspacePool(cfg.ForwardWorkers)
	g.m.variantGauge.Set(0)
	g.stageSets = make(map[string]*stageSet)
	g.defaultStages = g.stageSetFor(DefaultTenant)
	for i := 0; i < cfg.Replicas; i++ {
		g.replicas = append(g.replicas, g.newReplicaLocked())
	}
	g.m.replicasGauge.Set(float64(len(g.replicas)))
	return g, nil
}

// newReplicaLocked mints a handle with a stable id and its own breaker.
// Callers hold scaleMu (or, in New, have exclusive access).
func (g *Gateway) newReplicaLocked() *replicaHandle {
	id := g.replicaSeq
	g.replicaSeq++
	state := g.cfg.Registry.Gauge(fmt.Sprintf("serving.breaker_state.r%d", id))
	h := &replicaHandle{id: id, stop: make(chan struct{})}
	h.brk = newBreaker(g.cfg.BreakerThreshold, g.cfg.BreakerCooldown,
		func(from, to BreakerState) {
			state.Set(float64(to))
			if to == BreakerOpen {
				g.m.breakerOpens.Inc()
				g.m.breakersOpen.Add(1)
			}
			if from == BreakerOpen {
				g.m.breakersOpen.Add(-1)
			}
		})
	return h
}

// accrueLocked folds the elapsed replica-time into the replica-seconds
// integral — the quantity the autoscaler prices. Callers hold scaleMu.
func (g *Gateway) accrueLocked(now time.Time) {
	if !g.repMark.IsZero() {
		g.repSeconds += float64(len(g.replicas)) * now.Sub(g.repMark).Seconds()
	}
	g.repMark = now
}

// ReplicaSeconds returns the fleet-time integral ∑ replicas·dt since
// Start, in seconds — replica-count-aware rental time, so cost under
// autoscaling is PricePerSecond × ReplicaSeconds.
func (g *Gateway) ReplicaSeconds() float64 {
	g.scaleMu.Lock()
	defer g.scaleMu.Unlock()
	s := g.repSeconds
	if !g.repMark.IsZero() {
		s += float64(len(g.replicas)) * time.Since(g.repMark).Seconds()
	}
	return s
}

// ReplicaCount returns the current number of live replicas (including any
// still in their warm-up delay).
func (g *Gateway) ReplicaCount() int {
	g.scaleMu.Lock()
	defer g.scaleMu.Unlock()
	return len(g.replicas)
}

// ScaleTo grows or shrinks the replica set to n (clamped to ≥ 1) and
// returns the resulting count. Scale-out spawns fresh batchers that begin
// serving after Config.WarmupDelay; scale-in retires the newest replicas
// by closing their private stop channels — each finishes its in-flight
// batch and exits without touching the shared queue, which the surviving
// replicas keep draining. Calling ScaleTo during or after Stop is a no-op
// returning ErrStopped.
func (g *Gateway) ScaleTo(n int) (int, error) {
	if n < 1 {
		n = 1
	}
	g.scaleMu.Lock()
	defer g.scaleMu.Unlock()
	if g.stopping.Load() {
		return len(g.replicas), ErrStopped
	}
	g.accrueLocked(time.Now())
	cur := len(g.replicas)
	switch {
	case n > cur:
		for i := cur; i < n; i++ {
			h := g.newReplicaLocked()
			g.replicas = append(g.replicas, h)
			if g.started.Load() {
				g.workers.Add(1)
				go g.replica(h, g.cfg.WarmupDelay)
			}
		}
	case n < cur:
		for _, h := range g.replicas[n:] {
			if !h.retired {
				h.retired = true
				close(h.stop)
			}
		}
		g.replicas = g.replicas[:n]
	}
	g.m.replicasGauge.Set(float64(len(g.replicas)))
	return len(g.replicas), nil
}

// Config returns the resolved (defaulted) configuration.
func (g *Gateway) Config() Config { return g.cfg }

// Start launches the replica batchers and, unless Config.ExternalControl
// hands the ladder to an outside control plane, the pruning controller.
func (g *Gateway) Start() {
	if !g.started.CompareAndSwap(false, true) {
		return
	}
	g.warmWorkspaces()
	g.scaleMu.Lock()
	g.startAt = time.Now()
	g.repMark = g.startAt
	for _, h := range g.replicas {
		g.workers.Add(1)
		go g.replica(h, 0) // replicas present at Start are warm
	}
	g.scaleMu.Unlock()
	if len(g.cfg.Ladder) > 1 && !g.cfg.ExternalControl {
		g.workers.Add(1)
		go g.controlLoop()
	}
}

// warmWorkspaces pre-sizes one forward workspace per batch worker across
// the fleet (Replicas × ForwardWorkers, each bounded by the model's peak
// activation footprint) by pushing a zero image of the largest ladder
// variant through each before any traffic arrives. Steady-state batches
// then hit only warm buckets — the ws_allocs_per_op gauge decays from the
// warm-up cost toward zero.
func (g *Gateway) warmWorkspaces() {
	n := g.cfg.Replicas * g.cfg.ForwardWorkers
	if n < 1 {
		n = 1
	}
	v := &g.cfg.Ladder[0]
	img := tensor.New(v.Net.Input.C, v.Net.Input.H, v.Net.Input.W)
	wss := make([]*nn.Workspace, 0, n)
	// Hold all n before returning any, so the sync.Pool actually minted n
	// distinct workspaces.
	for i := 0; i < n; i++ {
		ws := g.wsPool.Get()
		v.Net.Forward(img, ws)
		wss = append(wss, ws)
	}
	for _, ws := range wss {
		g.wsPool.Put(ws)
	}
}

// Stop drains and shuts down: in-flight submissions land, queued requests
// are served, goroutines exit. Safe to call once; Submit after (or during)
// Stop returns ErrStopped.
func (g *Gateway) Stop() {
	if !g.stopping.CompareAndSwap(false, true) {
		return
	}
	g.submits.Wait() // no new queue sends after this
	// Barrier against a racing ScaleTo: any call that entered before the
	// stopping flag flipped has finished mutating the replica set (and
	// registering its workers) once we hold scaleMu; any later call sees
	// stopping and backs off. Also freezes the replica-seconds integral.
	g.scaleMu.Lock()
	g.accrueLocked(time.Now())
	g.repMark = time.Time{}
	g.scaleMu.Unlock()
	close(g.stopCh)
	g.workers.Wait()
	// Everything left in the queue was drained by the replicas. A request
	// can still sit here if Start was never called, or if a sleeping retry
	// re-enqueued it after the replicas finished draining; workers.Wait
	// covers the retry goroutines, so by now the queue is quiescent.
	for {
		select {
		case r := <-g.queue:
			r.respond(Response{ID: r.id, Err: ErrStopped, Attempts: r.attempts})
		default:
			return
		}
	}
}

// Submit enqueues one image for inference and returns a channel that will
// receive exactly one Response. deadline zero applies Config.Deadline.
// Shedding and shutdown are reported as errors immediately. The request
// is attributed to DefaultTenant in the tenant-keyed stage histograms;
// multi-tenant callers use SubmitAs.
//
// ctx is the request's trace context (nil is treated as Background): a
// serving.request span opens here and closes when the request is answered,
// and the batch that executes it parents its serving.batch span under it.
func (g *Gateway) Submit(ctx context.Context, img *tensor.Tensor, deadline time.Time) (<-chan Response, error) {
	return g.SubmitAs(ctx, DefaultTenant, img, deadline)
}

// SubmitAs is Submit with an explicit tenant label: the request's stage
// latencies (queue wait, batch assembly, nn forward) land in histograms
// keyed by the tenant, so per-stage attribution survives multi-tenant
// traffic through one gateway. An empty tenant maps to DefaultTenant.
func (g *Gateway) SubmitAs(ctx context.Context, tenant string, img *tensor.Tensor, deadline time.Time) (<-chan Response, error) {
	if img == nil {
		return nil, fmt.Errorf("serving: nil image")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	g.submits.Add(1)
	defer g.submits.Done()
	if g.stopping.Load() {
		return nil, ErrStopped
	}
	now := time.Now()
	if deadline.IsZero() && g.cfg.Deadline > 0 {
		deadline = now.Add(g.cfg.Deadline)
	}
	sctx, finish := g.cfg.Tracer.StartSpan(ctx, "serving.request")
	r := &request{
		id:       g.nextID.Add(1),
		img:      img,
		deadline: deadline,
		enqueued: now,
		attempts: 1,
		ctx:      sctx,
		finish:   finish,
		done:     make(chan Response, 1),
		stages:   g.stageSetFor(tenant),
	}
	select {
	case g.queue <- r:
		g.m.admitted.Inc()
		g.m.queueDepth.Set(float64(len(g.queue)))
		return r.done, nil
	default:
		g.m.shed.Inc()
		finish(telemetry.L("outcome", "shed"), telemetry.L("attempts", 0))
		return nil, ErrOverloaded
	}
}

// Infer is the synchronous form of Submit: it blocks until the response
// (including admission errors, reported in Response.Err).
func (g *Gateway) Infer(ctx context.Context, img *tensor.Tensor, deadline time.Time) Response {
	ch, err := g.Submit(ctx, img, deadline)
	if err != nil {
		return Response{Err: err}
	}
	select {
	case resp := <-ch:
		return resp
	case <-ctx.Done():
		// The batcher still owns the request and will complete it; the
		// caller just stopped waiting.
		return Response{Err: ctx.Err()}
	}
}

// replica is one dynamic batcher: wait for a first request, fill the batch
// until MaxBatch or BatchTimeout, drop expired entries, execute, respond.
// warmup delays the first pull (a freshly scaled-out replica booting); a
// close of h.stop (scale-in) exits after the in-flight batch, while a
// close of g.stopCh (shutdown) drains the shared queue first.
func (g *Gateway) replica(h *replicaHandle, warmup time.Duration) {
	defer g.workers.Done()
	if warmup > 0 {
		select {
		case <-time.After(warmup):
		case <-h.stop:
			return
		case <-g.stopCh:
			g.drain(h)
			return
		}
	}
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// An open breaker takes this replica out of rotation: it stops
		// pulling from the shared queue, so traffic re-routes to healthy
		// replicas (and, capacity now short, the pruning controller
		// degrades the ladder if latency suffers).
		if wait := h.brk.waitTime(time.Now()); wait > 0 {
			select {
			case <-time.After(wait):
			case <-h.stop:
				return
			case <-g.stopCh:
				g.drain(h)
				return
			}
			continue
		}
		var first *request
		select {
		case first = <-g.queue:
		case <-h.stop:
			return // retired: the surviving replicas own the queue
		case <-g.stopCh:
			g.drain(h)
			return
		}
		pulledAt := time.Now() // batch-assembly stage starts here
		batch := make([]*request, 1, g.cfg.MaxBatch)
		batch[0] = first
		timer.Reset(g.cfg.BatchTimeout)
	fill:
		for len(batch) < g.cfg.MaxBatch {
			select {
			case r := <-g.queue:
				batch = append(batch, r)
			case <-timer.C:
				break fill
			case <-h.stop:
				// Flush what we have, then exit on the next iteration.
				break fill
			case <-g.stopCh:
				// Flush what we have; the post-stop drain picks up the rest.
				break fill
			}
		}
		stopTimer(timer)
		g.execute(h, batch, pulledAt)
	}
}

func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// drain serves whatever is still queued at shutdown, in MaxBatch groups.
// Multiple replicas drain concurrently until the queue is empty.
func (g *Gateway) drain(h *replicaHandle) {
	for {
		pulledAt := time.Now()
		batch := make([]*request, 0, g.cfg.MaxBatch)
		for len(batch) < g.cfg.MaxBatch {
			select {
			case r := <-g.queue:
				batch = append(batch, r)
			default:
				goto flush
			}
		}
	flush:
		if len(batch) == 0 {
			return
		}
		g.execute(h, batch, pulledAt)
	}
}

// execute runs one coalesced batch: expired requests are answered with
// ErrExpired, fault-injected ones go through the retry path, and the rest
// run the current variant's forward path. The replica's breaker observes
// the batch outcome: a crashed replica (or a batch the injector failed
// wholesale) counts as a failure. pulledAt is when the replica received
// the batch's first request — now−pulledAt is the batch-assembly stage.
func (g *Gateway) execute(h *replicaHandle, batch []*request, pulledAt time.Time) {
	now := time.Now()
	asm := now.Sub(pulledAt).Seconds()
	g.m.assembly.Observe(asm)
	forEachStageSet(batch, func(s *stageSet) { s.assembly.Observe(asm) })
	live := batch[:0]
	for _, r := range batch {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			g.m.expired.Inc()
			r.respond(Response{ID: r.id, Err: ErrExpired, Attempts: r.attempts, Queue: now.Sub(r.enqueued), Total: now.Sub(r.enqueued)})
			continue
		}
		live = append(live, r)
	}
	g.m.queueDepth.Set(float64(len(g.queue)))
	if len(live) == 0 {
		return
	}
	var failed []*request
	if inj := g.cfg.Injector; inj != nil {
		if inj.CrashActive(h.id, now.Sub(g.startAt).Seconds()) {
			failed, live = live, nil
		} else {
			keep := live[:0]
			for _, r := range live {
				if inj.FailRequest(h.id, r.id, r.attempts) {
					failed = append(failed, r)
				} else {
					keep = append(keep, r)
				}
			}
			live = keep
		}
	}
	if len(failed) > 0 {
		g.m.faulted.Add(int64(len(failed)))
		for _, r := range failed {
			g.retryOrFail(r)
		}
		if len(live) == 0 {
			h.brk.observe(false, time.Now())
			return
		}
	}
	vi := int(g.variant.Load())
	v := &g.cfg.Ladder[vi]
	imgs := make([]*tensor.Tensor, len(live))
	for i, r := range live {
		imgs[i] = r.img
	}
	// The batch span parents under the first live request's serving.request
	// span (satellite fix: it used to start from context.Background(), so
	// request↔batch linkage was impossible). The nn forward pass gets its
	// own child span so queue/assembly/forward attribution shows up in the
	// trace tree, not just the stage histograms.
	parent := live[0].ctx
	if parent == nil {
		parent = context.Background()
	}
	execStart := time.Now()
	bctx, finish := g.cfg.Tracer.StartSpan(parent, "serving.batch")
	_, finishFwd := g.cfg.Tracer.StartSpan(bctx, "serving.forward")
	outs := v.Net.ForwardBatchPool(imgs, g.cfg.ForwardWorkers, g.wsPool)
	fwdDone := time.Now()
	finishFwd(telemetry.L("workers", g.cfg.ForwardWorkers))
	if a, _, gets := g.wsPool.AllocStats(); gets > 0 {
		g.m.wsAllocsPerOp.Set(float64(a) / float64(gets))
	}
	fwd := fwdDone.Sub(execStart).Seconds()
	g.m.forward.Observe(fwd)
	forEachStageSet(live, func(s *stageSet) { s.forward.Observe(fwd) })
	finish(
		telemetry.L("replica", h.id),
		telemetry.L("batch", len(live)),
		telemetry.L("variant", v.Degree.Label()),
	)
	g.m.batches.Inc()
	g.m.batchSize.Observe(float64(len(live)))
	done := time.Now()
	g.execMu.Lock()
	g.execSeconds += done.Sub(execStart).Seconds()
	g.execServed += int64(len(live))
	g.execMu.Unlock()
	h.brk.observe(true, done)
	for i, r := range live {
		total := done.Sub(r.enqueued)
		g.m.served.Inc()
		g.m.queueWait.Observe(now.Sub(r.enqueued).Seconds())
		if r.stages != nil {
			r.stages.queueWait.Observe(now.Sub(r.enqueued).Seconds())
		}
		g.m.total.Observe(total.Seconds())
		g.observeLatency(total.Seconds())
		r.respond(Response{
			ID:       r.id,
			Class:    outs[i].ArgMax(),
			Variant:  vi,
			Degree:   v.Degree.Label(),
			Accuracy: v.Accuracy,
			Queue:    now.Sub(r.enqueued),
			Total:    total,
			Batch:    len(live),
			Attempts: r.attempts,
		})
	}
}

// retryOrFail handles one fault-injected request. If the retry budget and
// the request's deadline allow another attempt, it re-enqueues the request
// after an exponential backoff with deterministic jitter (so seeded chaos
// runs repeat); otherwise it answers ErrFaulted. Requests whose remaining
// deadline budget cannot cover the backoff are expired immediately rather
// than retried into certain failure.
func (g *Gateway) retryOrFail(r *request) {
	fail := func(err error) {
		age := time.Since(r.enqueued)
		r.respond(Response{ID: r.id, Err: err, Attempts: r.attempts, Queue: age, Total: age})
	}
	if r.attempts > g.cfg.MaxRetries || g.stopping.Load() {
		fail(ErrFaulted)
		return
	}
	backoff := g.cfg.RetryBackoff << uint(r.attempts-1)
	backoff += time.Duration(fault.Frac(uint64(r.id)*0x9e3779b97f4a7c15+uint64(r.attempts)) * float64(backoff))
	if !r.deadline.IsZero() && time.Now().Add(backoff).After(r.deadline) {
		g.m.expired.Inc()
		fail(ErrExpired)
		return
	}
	r.attempts++
	g.m.retries.Inc()
	// Registered in g.workers: the caller is a replica goroutine (itself
	// counted), so the group can't hit zero concurrently with this Add,
	// and Stop's workers.Wait covers sleeping retries.
	g.workers.Add(1)
	go func() {
		defer g.workers.Done()
		time.Sleep(backoff)
		if g.stopping.Load() {
			fail(ErrStopped)
			return
		}
		select {
		case g.queue <- r:
			g.m.queueDepth.Set(float64(len(g.queue)))
		default:
			g.m.shed.Inc()
			fail(ErrOverloaded)
		}
	}()
}

// observeLatency adds one completed-request latency to the controller's
// current interval window.
func (g *Gateway) observeLatency(sec float64) {
	g.windowMu.Lock()
	g.window = append(g.window, sec)
	g.windowMu.Unlock()
}

// takeWindow swaps out the interval window.
func (g *Gateway) takeWindow() []float64 {
	g.windowMu.Lock()
	w := g.window
	g.window = nil
	g.windowMu.Unlock()
	return w
}

// Stats is a point-in-time view of the gateway's counters, for /status and
// the loadtest report.
type Stats struct {
	Variant  int     `json:"variant"`
	Degree   string  `json:"degree"`
	Accuracy float64 `json:"accuracy"`
	Replicas int     `json:"replicas"`
	// ReplicaSeconds is the fleet-time integral ∑ replicas·dt since Start —
	// multiply by an instance's per-second price for the rental cost.
	ReplicaSeconds float64 `json:"replica_seconds"`
	QueueDepth     int     `json:"queue_depth"`
	QueueCap       int     `json:"queue_cap"`
	Admitted       int64   `json:"admitted"`
	Served         int64   `json:"served"`
	Shed           int64   `json:"shed"`
	Expired        int64   `json:"expired"`
	Batches        int64   `json:"batches"`
	Degrades       int64   `json:"degrades"`
	Restores       int64   `json:"restores"`
	// Resilience counters (all zero when no Injector is configured).
	Faulted      int64    `json:"faulted"`
	Retries      int64    `json:"retries"`
	BreakerOpens int64    `json:"breaker_opens"`
	OpenBreakers int      `json:"open_breakers"`
	Breakers     []string `json:"breakers"`
	// Workspace-pool health: cumulative scratch-buffer allocations by the
	// forward workspaces, total workspace checkouts, and their ratio. The
	// count plateaus after warm-up — a growing ratio means the
	// zero-allocation steady state is broken.
	WsAllocs      uint64  `json:"ws_allocs"`
	WsGets        uint64  `json:"ws_gets"`
	WsAllocsPerOp float64 `json:"ws_allocs_per_op"`
}

// Stats snapshots the gateway.
func (g *Gateway) Stats() Stats {
	vi := int(g.variant.Load())
	v := g.cfg.Ladder[vi]
	open := 0
	g.scaleMu.Lock()
	states := make([]string, len(g.replicas))
	for i, h := range g.replicas {
		s := h.brk.current()
		states[i] = s.String()
		if s == BreakerOpen {
			open++
		}
	}
	replicas := len(g.replicas)
	repSec := g.repSeconds
	if !g.repMark.IsZero() {
		repSec += float64(replicas) * time.Since(g.repMark).Seconds()
	}
	g.scaleMu.Unlock()
	wsAllocs, _, wsGets := g.wsPool.AllocStats()
	var wsPerOp float64
	if wsGets > 0 {
		wsPerOp = float64(wsAllocs) / float64(wsGets)
	}
	return Stats{
		Variant:        vi,
		Degree:         v.Degree.Label(),
		Accuracy:       v.Accuracy,
		Replicas:       replicas,
		ReplicaSeconds: repSec,
		QueueDepth:     len(g.queue),
		QueueCap:       g.cfg.QueueCap,
		Admitted:       g.m.admitted.Value(),
		Served:         g.m.served.Value(),
		Shed:           g.m.shed.Value(),
		Expired:        g.m.expired.Value(),
		Batches:        g.m.batches.Value(),
		Degrades:       g.m.degrades.Value(),
		Restores:       g.m.restores.Value(),
		Faulted:        g.m.faulted.Value(),
		Retries:        g.m.retries.Value(),
		BreakerOpens:   g.m.breakerOpens.Value(),
		OpenBreakers:   open,
		Breakers:       states,
		WsAllocs:       wsAllocs,
		WsGets:         wsGets,
		WsAllocsPerOp:  wsPerOp,
	}
}

// CurrentVariant returns the ladder index requests are being served at.
func (g *Gateway) CurrentVariant() int { return int(g.variant.Load()) }

// SetVariant moves the ladder to rung target (clamped to the ladder ends)
// and returns the rung now in effect. Each rung crossed counts as one
// degrade or restore in the gateway's counters, so an external controller
// jumping several rungs stays comparable with the built-in one-step
// controller. Safe from any goroutine.
//
// ctx is the caller's trace context (nil = Background): an external
// control plane passes its decision span's context so the
// serving.set_variant span links to the autoscaler verb that caused it.
func (g *Gateway) SetVariant(ctx context.Context, target int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	if target < 0 {
		target = 0
	}
	if last := len(g.cfg.Ladder) - 1; target > last {
		target = last
	}
	for {
		cur := g.variant.Load()
		next := int64(target)
		if next == cur {
			return target
		}
		if !g.variant.CompareAndSwap(cur, next) {
			continue
		}
		g.m.variantGauge.Set(float64(next))
		if steps := next - cur; steps > 0 {
			g.m.degrades.Add(steps)
		} else {
			g.m.restores.Add(-steps)
		}
		_, finish := g.cfg.Tracer.StartSpan(ctx, "serving.set_variant")
		finish(
			telemetry.L("from", g.cfg.Ladder[cur].Degree.Label()),
			telemetry.L("to", g.cfg.Ladder[next].Degree.Label()),
		)
		return target
	}
}

// StageSummary is one pipeline stage's latency distribution, in
// milliseconds (the natural scale for serving stages).
type StageSummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Stages attributes request latency to the serving pipeline's stages:
// admission-queue wait (per request), batch assembly (per batch, first
// pull → execution start) and the nn forward pass (per batch). It is the
// per-stage half of the loadtest report — the macro numbers the bench
// trajectory folds in alongside microbenchmarks.
type Stages struct {
	QueueWait     StageSummary `json:"queue_wait"`
	BatchAssembly StageSummary `json:"batch_assembly"`
	NNForward     StageSummary `json:"nn_forward"`
}

// stageSet is one tenant's keyed stage histograms. Requests resolve their
// set once at admission; batch stages are observed once per distinct
// tenant present in the batch.
type stageSet struct {
	queueWait, assembly, forward *telemetry.Histogram
}

// stageSetFor returns (lazily creating) the tenant's stage histogram set.
// The default tenant's set is prefetched so single-tenant traffic skips
// the lock after construction.
func (g *Gateway) stageSetFor(tenant string) *stageSet {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if tenant == DefaultTenant && g.defaultStages != nil {
		return g.defaultStages
	}
	g.stageMu.Lock()
	defer g.stageMu.Unlock()
	if s, ok := g.stageSets[tenant]; ok {
		return s
	}
	reg := g.cfg.Registry
	s := &stageSet{
		queueWait: reg.Histogram("serving.queue_seconds."+tenant, nil),
		assembly:  reg.Histogram("serving.stage_assembly_seconds."+tenant, nil),
		forward:   reg.Histogram("serving.stage_forward_seconds."+tenant, nil),
	}
	g.stageSets[tenant] = s
	return s
}

// forEachStageSet calls fn once per distinct stage set among the batch's
// requests (batches are small, so the duplicate scan is a few pointer
// compares).
func forEachStageSet(reqs []*request, fn func(*stageSet)) {
	for i, r := range reqs {
		if r.stages == nil {
			continue
		}
		dup := false
		for _, prev := range reqs[:i] {
			if prev.stages == r.stages {
				dup = true
				break
			}
		}
		if !dup {
			fn(r.stages)
		}
	}
}

// StageStats summarizes the per-stage latency histograms across all
// tenants (the aggregate the single-tenant report always carried).
func (g *Gateway) StageStats() Stages {
	return Stages{
		QueueWait:     SummarizeStage(g.m.queueWait),
		BatchAssembly: SummarizeStage(g.m.assembly),
		NNForward:     SummarizeStage(g.m.forward),
	}
}

// StageStatsByTenant summarizes the stage histograms keyed by tenant
// label. Single-tenant traffic appears under DefaultTenant.
func (g *Gateway) StageStatsByTenant() map[string]Stages {
	g.stageMu.Lock()
	defer g.stageMu.Unlock()
	out := make(map[string]Stages, len(g.stageSets))
	for tenant, s := range g.stageSets {
		out[tenant] = Stages{
			QueueWait:     SummarizeStage(s.queueWait),
			BatchAssembly: SummarizeStage(s.assembly),
			NNForward:     SummarizeStage(s.forward),
		}
	}
	return out
}

// SummarizeStage folds one stage histogram (recorded in seconds) into a
// millisecond StageSummary — shared with the tenant mux's keyed stages.
func SummarizeStage(h *telemetry.Histogram) StageSummary {
	s := h.Snapshot()
	const ms = 1e3 // histograms record seconds
	return StageSummary{
		Count:  s.Count,
		MeanMS: s.Mean * ms,
		P50MS:  s.P50 * ms,
		P99MS:  s.P99 * ms,
		MaxMS:  s.Max * ms,
	}
}

// ExecStats reports the cumulative served-request count and batch
// execution busy-time across all replicas. Because each replica executes
// serially, Δserved/Δseconds between two calls estimates the requests per
// busy-second one replica sustains at the current ladder rung — the
// capacity signal the autoscaler feeds its policy.
func (g *Gateway) ExecStats() (served int64, execSeconds float64) {
	g.execMu.Lock()
	defer g.execMu.Unlock()
	return g.execServed, g.execSeconds
}

// BreakerState reports one replica's circuit-breaker state, by position
// in the current replica set.
func (g *Gateway) BreakerState(replica int) BreakerState {
	g.scaleMu.Lock()
	defer g.scaleMu.Unlock()
	if replica < 0 || replica >= len(g.replicas) {
		return BreakerClosed
	}
	return g.replicas[replica].brk.current()
}
