package serving

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"ccperf/internal/fault"
)

// scriptedInjector lets each test script exactly which replicas are
// crashed and which (replica, id, attempt) requests fail.
type scriptedInjector struct {
	crashed func(replica int, elapsed float64) bool
	fail    func(replica int, id int64, attempt int) bool
}

func (s scriptedInjector) CrashActive(replica int, elapsed float64) bool {
	return s.crashed != nil && s.crashed(replica, elapsed)
}

func (s scriptedInjector) FailRequest(replica int, id int64, attempt int) bool {
	return s.fail != nil && s.fail(replica, id, attempt)
}

func TestBreakerStateMachine(t *testing.T) {
	var transitions []string
	b := newBreaker(3, 100*time.Millisecond, func(from, to BreakerState) {
		transitions = append(transitions, from.String()+"->"+to.String())
	})
	t0 := time.Unix(1000, 0)
	if w := b.waitTime(t0); w != 0 {
		t.Fatalf("closed breaker wait = %v", w)
	}
	// Two failures stay under the threshold of three.
	b.observe(false, t0)
	b.observe(false, t0)
	if b.current() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v", b.current())
	}
	// A success resets the consecutive count.
	b.observe(true, t0)
	b.observe(false, t0)
	b.observe(false, t0)
	if b.current() != BreakerClosed {
		t.Fatal("success did not reset the failure streak")
	}
	// The third consecutive failure opens.
	b.observe(false, t0)
	if b.current() != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v", b.current())
	}
	if w := b.waitTime(t0.Add(40 * time.Millisecond)); w != 60*time.Millisecond {
		t.Fatalf("open breaker wait = %v, want the cooldown remainder", w)
	}
	// Cooldown elapsed: half-open, probe admitted.
	if w := b.waitTime(t0.Add(100 * time.Millisecond)); w != 0 {
		t.Fatalf("post-cooldown wait = %v", w)
	}
	if b.current() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v", b.current())
	}
	// Probe failure re-opens immediately (no threshold).
	b.observe(false, t0.Add(101*time.Millisecond))
	if b.current() != BreakerOpen {
		t.Fatalf("state after failed probe = %v", b.current())
	}
	// Second probe succeeds and closes the breaker.
	if w := b.waitTime(t0.Add(250 * time.Millisecond)); w != 0 {
		t.Fatalf("second-probe wait = %v", w)
	}
	b.observe(true, t0.Add(251*time.Millisecond))
	if b.current() != BreakerClosed {
		t.Fatalf("state after successful probe = %v", b.current())
	}
	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrOverloaded, http.StatusTooManyRequests},
		{ErrExpired, http.StatusGatewayTimeout},
		{ErrStopped, http.StatusServiceUnavailable},
		{ErrFaulted, http.StatusInternalServerError},
		{errors.New("anything else"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestInjectedFailureRetriesAndSucceeds(t *testing.T) {
	// Every request fails its first attempt and passes thereafter: with the
	// default retry budget everything must come back OK on attempt 2.
	inj := scriptedInjector{fail: func(_ int, _ int64, attempt int) bool { return attempt == 1 }}
	g := testGateway(t, Config{
		Replicas: 1, MaxBatch: 4, QueueCap: 64,
		RetryBackoff: time.Millisecond, BreakerThreshold: 1000,
		Injector: inj,
	})
	g.Start()
	defer g.Stop()
	const n = 8
	chans := make([]<-chan Response, 0, n)
	for i := 0; i < n; i++ {
		ch, err := g.Submit(context.Background(), testImage(int64(i)), time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		if resp.Attempts != 2 {
			t.Fatalf("request %d took %d attempts, want 2", i, resp.Attempts)
		}
	}
	st := g.Stats()
	if st.Faulted != n || st.Retries != n || st.Served != n {
		t.Fatalf("stats = faulted %d, retries %d, served %d; want %d each", st.Faulted, st.Retries, st.Served, n)
	}
}

func TestRetryBudgetExhaustedAnswersErrFaulted(t *testing.T) {
	inj := scriptedInjector{fail: func(int, int64, int) bool { return true }}
	g := testGateway(t, Config{
		Replicas: 1, QueueCap: 8, MaxRetries: 1,
		RetryBackoff: time.Millisecond, BreakerThreshold: 1000,
		Injector: inj,
	})
	g.Start()
	defer g.Stop()
	resp := g.Infer(context.Background(), testImage(1), time.Time{})
	if !errors.Is(resp.Err, ErrFaulted) {
		t.Fatalf("err = %v, want ErrFaulted", resp.Err)
	}
	if resp.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (original + one retry)", resp.Attempts)
	}

	// MaxRetries < 0 disables retries: first injected failure is final.
	g2 := testGateway(t, Config{
		Replicas: 1, QueueCap: 8, MaxRetries: -1,
		BreakerThreshold: 1000, Injector: inj,
	})
	g2.Start()
	defer g2.Stop()
	resp = g2.Infer(context.Background(), testImage(1), time.Time{})
	if !errors.Is(resp.Err, ErrFaulted) || resp.Attempts != 1 {
		t.Fatalf("MaxRetries<0: err=%v attempts=%d, want immediate ErrFaulted", resp.Err, resp.Attempts)
	}
	if g2.Stats().Retries != 0 {
		t.Fatalf("MaxRetries<0 still retried %d times", g2.Stats().Retries)
	}
}

func TestRetryRespectsDeadlineBudget(t *testing.T) {
	// The backoff (≥300ms) cannot fit in the 50ms deadline budget, so the
	// failed request must expire immediately instead of retrying into
	// certain failure.
	inj := scriptedInjector{fail: func(_ int, _ int64, attempt int) bool { return attempt == 1 }}
	g := testGateway(t, Config{
		Replicas: 1, QueueCap: 8,
		RetryBackoff: 300 * time.Millisecond, BreakerThreshold: 1000,
		Injector: inj,
	})
	g.Start()
	defer g.Stop()
	start := time.Now()
	resp := g.Infer(context.Background(), testImage(1), time.Now().Add(50*time.Millisecond))
	if !errors.Is(resp.Err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", resp.Err)
	}
	if resp.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no doomed retry)", resp.Attempts)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("expiry took %v; the request waited out a doomed backoff", elapsed)
	}
	if g.Stats().Retries != 0 {
		t.Fatal("a retry was scheduled past the deadline budget")
	}
}

func TestStopDrainsInFlightFaultedRequests(t *testing.T) {
	// Every attempt fails, so at Stop time requests are mid-retry (sleeping
	// in backoff goroutines) and mid-drain. Stop must answer every one of
	// them and return promptly.
	before := runtime.NumGoroutine()
	inj := scriptedInjector{fail: func(int, int64, int) bool { return true }}
	g := testGateway(t, Config{
		Replicas: 2, QueueCap: 64, MaxRetries: 3,
		RetryBackoff: 5 * time.Millisecond, BreakerThreshold: 1000,
		Injector: inj,
	})
	const n = 32
	chans := make([]<-chan Response, 0, n)
	for i := 0; i < n; i++ {
		ch, err := g.Submit(context.Background(), testImage(int64(i)), time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	g.Start()
	time.Sleep(3 * time.Millisecond) // let batches fault and retries schedule
	done := make(chan struct{})
	go func() {
		g.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung with in-flight faulted requests")
	}
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if !errors.Is(resp.Err, ErrFaulted) && !errors.Is(resp.Err, ErrStopped) {
				t.Fatalf("request %d: err = %v, want ErrFaulted or ErrStopped", i, resp.Err)
			}
		default:
			t.Fatalf("request %d never answered after Stop", i)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after Stop", before, runtime.NumGoroutine())
}

func TestChaosEndToEnd(t *testing.T) {
	// The seeded end-to-end scenario: replica 0 is crashed from t=0 (its
	// breaker must open and traffic re-route to replica 1) and a low
	// error rate peppers the survivor (retries must recover it). The
	// 1ms SLO is unattainable on half capacity, so the pruning ladder is
	// the graceful-degradation backstop: the controller must step down.
	faults, err := fault.ParseSchedule("crash@0:0+3600,err:0.05,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	g := testGateway(t, Config{
		Replicas: 2, MaxBatch: 4, QueueCap: 512,
		BatchTimeout:     time.Millisecond,
		SLO:              time.Millisecond,
		ControlInterval:  2 * time.Millisecond,
		HoldIntervals:    1 << 30, // never restore during the test
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
		Injector: faults,
	})
	g.Start()
	defer g.Stop()

	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[bool]int{} // ok → count
	submit := func(k int) {
		for i := 0; i < k; i++ {
			ch, err := g.Submit(context.Background(), testImage(int64(i)), time.Time{})
			if err != nil {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp := <-ch
				mu.Lock()
				outcomes[resp.Err == nil]++
				mu.Unlock()
			}()
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := g.Stats()
		if st.BreakerOpens >= 1 && st.Degrades >= 1 && st.Retries >= 1 && st.Served > 0 {
			break
		}
		submit(64)
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	st := g.Stats()
	if st.BreakerOpens < 1 {
		t.Fatalf("crashed replica never opened its breaker: %+v", st)
	}
	if st.Served == 0 {
		t.Fatal("no requests served — traffic did not re-route to the healthy replica")
	}
	if st.Retries < 1 || st.Faulted < 1 {
		t.Fatalf("error injection never exercised the retry path: %+v", st)
	}
	if st.Degrades < 1 || g.CurrentVariant() == 0 {
		t.Fatalf("ladder never degraded under lost capacity: degrades=%d variant=%d", st.Degrades, g.CurrentVariant())
	}
	mu.Lock()
	ok := outcomes[true]
	mu.Unlock()
	if ok == 0 {
		t.Fatal("every request failed; the gateway did not stay available through the chaos")
	}
}

func TestReportErrorRate(t *testing.T) {
	r := &Report{Submitted: 200, Shed: 10, Expired: 5, Faulted: 5}
	if got := r.ErrorRate(); got != 0.1 {
		t.Fatalf("error rate = %v, want 0.1", got)
	}
	if got := (&Report{}).ErrorRate(); got != 0 {
		t.Fatalf("empty report error rate = %v", got)
	}
}
