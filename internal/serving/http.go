package serving

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"ccperf/internal/tensor"
)

// InferRequest is the POST /infer body. Either Image (flat CHW data whose
// length matches the gateway model's input volume) or Seed (a synthetic
// deterministic image — handy for curl) must be set.
type InferRequest struct {
	Image []float32 `json:"image,omitempty"`
	Seed  int64     `json:"seed,omitempty"`
	// DeadlineMS overrides the gateway's default per-request deadline,
	// in milliseconds from arrival (0 = use the default).
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
}

// InferResponse is the POST /infer reply.
type InferResponse struct {
	ID       int64   `json:"id"`
	Class    int     `json:"class"`
	Variant  int     `json:"variant"`
	Degree   string  `json:"degree"`
	Accuracy float64 `json:"accuracy"`
	QueueMS  float64 `json:"queue_ms"`
	TotalMS  float64 `json:"total_ms"`
	Batch    int     `json:"batch"`
	Attempts int     `json:"attempts"`
}

// Handler exposes the gateway over HTTP:
//
//	POST /infer           run one inference (InferRequest → InferResponse)
//	GET  /gateway/status  Stats as JSON
//
// Shedding maps to 429 Too Many Requests, an expired deadline to 504
// Gateway Timeout, shutdown to 503 Service Unavailable — so a load
// balancer in front sees the standard signals.
func Handler(g *Gateway) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		shape := g.cfg.Ladder[0].Net.Input
		var img *tensor.Tensor
		switch {
		case len(req.Image) > 0:
			if len(req.Image) != shape.Volume() {
				http.Error(w, fmt.Sprintf("image length %d, want %d (%v)", len(req.Image), shape.Volume(), shape), http.StatusBadRequest)
				return
			}
			img = tensor.FromSlice(req.Image, shape.C, shape.H, shape.W)
		default:
			img = SyntheticImage(shape.C, shape.H, shape.W, req.Seed)
		}
		var deadline time.Time
		if req.DeadlineMS > 0 {
			deadline = time.Now().Add(time.Duration(req.DeadlineMS * float64(time.Millisecond)))
		}
		resp := g.Infer(r.Context(), img, deadline)
		if resp.Err != nil {
			http.Error(w, resp.Err.Error(), statusFor(resp.Err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(InferResponse{
			ID: resp.ID, Class: resp.Class,
			Variant: resp.Variant, Degree: resp.Degree, Accuracy: resp.Accuracy,
			QueueMS:  float64(resp.Queue) / float64(time.Millisecond),
			TotalMS:  float64(resp.Total) / float64(time.Millisecond),
			Batch:    resp.Batch,
			Attempts: resp.Attempts,
		})
	})
	mux.HandleFunc("/gateway/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(g.Stats())
	})
	return mux
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrExpired):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrStopped):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrFaulted):
		// An injected failure that exhausted its retries is a plain
		// server-side error.
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// SyntheticImage builds a deterministic pseudo-random CHW image — the
// stand-in input the HTTP demo path and the load generator feed the model.
func SyntheticImage(c, h, w int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(c, h, w)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}
