package serving

import (
	"sync"
	"time"
)

// BreakerState is one replica's circuit-breaker state.
type BreakerState int32

// Breaker states. The classic three-state machine: Closed passes traffic,
// Open refuses it after BreakerThreshold consecutive batch failures, and
// after BreakerCooldown the breaker admits a single probe batch in
// HalfOpen — success re-closes it, failure re-opens it for another
// cooldown.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker guards one replica. Only that replica's goroutine drives
// waitTime/observe, but Stats() reads state concurrently — hence the
// mutex. onChange fires on every transition (metrics hook).
type breaker struct {
	threshold int
	cooldown  time.Duration
	onChange  func(from, to BreakerState)

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
}

func newBreaker(threshold int, cooldown time.Duration, onChange func(from, to BreakerState)) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, onChange: onChange}
}

// transition flips the state and fires the hook. Caller holds mu.
func (b *breaker) transition(to BreakerState, now time.Time) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if to == BreakerOpen {
		b.openedAt = now
	}
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// waitTime returns how long the replica must hold off before taking work:
// 0 when Closed or when an Open breaker's cooldown has elapsed (the
// breaker then moves to HalfOpen and admits the probe batch).
func (b *breaker) waitTime(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	if remaining := b.cooldown - now.Sub(b.openedAt); remaining > 0 {
		return remaining
	}
	b.transition(BreakerHalfOpen, now)
	return 0
}

// observe records one executed batch's outcome and applies the state
// machine: consecutive failures open a Closed breaker, any HalfOpen probe
// failure re-opens it, and a success closes it from any state.
func (b *breaker) observe(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.consecutive = 0
		b.transition(BreakerClosed, now)
		return
	}
	b.consecutive++
	if b.state == BreakerHalfOpen || b.consecutive >= b.threshold {
		b.transition(BreakerOpen, now)
	}
}

// current reads the state (for Stats and tests).
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
