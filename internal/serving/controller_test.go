package serving

import (
	"testing"
	"time"

	"ccperf/internal/telemetry"
)

var testPolicy = Policy{
	SLOSeconds:         0.050,
	DegradeUtilization: 0.75,
	RestoreFraction:    0.5,
	HoldIntervals:      3,
}

func TestPolicyDegradeOnP99Violation(t *testing.T) {
	a, streak := testPolicy.Decide(Signal{P99: 0.080, Samples: 100})
	if a != Degrade || streak != 0 {
		t.Fatalf("got %v/%d, want degrade", a, streak)
	}
}

func TestPolicyDegradeOnQueuePressure(t *testing.T) {
	// Queue nearly full forces a degrade even while p99 still looks fine —
	// the queue is the leading indicator, p99 the lagging one.
	a, _ := testPolicy.Decide(Signal{P99: 0.010, Samples: 50, QueueFrac: 0.9})
	if a != Degrade {
		t.Fatalf("got %v, want degrade on queue pressure", a)
	}
}

func TestPolicyHoldInTheMiddleBand(t *testing.T) {
	// p99 between restore threshold and SLO: neither degrade nor restore,
	// and the healthy streak resets.
	a, streak := testPolicy.Decide(Signal{P99: 0.040, Samples: 50, Healthy: 2})
	if a != Hold || streak != 0 {
		t.Fatalf("got %v/%d, want hold with streak reset", a, streak)
	}
}

func TestPolicyRestoreNeedsConsecutiveHealthyIntervals(t *testing.T) {
	sig := Signal{P99: 0.010, Samples: 50}
	a, streak := testPolicy.Decide(sig)
	if a != Hold || streak != 1 {
		t.Fatalf("tick 1: %v/%d", a, streak)
	}
	sig.Healthy = streak
	a, streak = testPolicy.Decide(sig)
	if a != Hold || streak != 2 {
		t.Fatalf("tick 2: %v/%d", a, streak)
	}
	sig.Healthy = streak
	a, streak = testPolicy.Decide(sig)
	if a != Restore || streak != 0 {
		t.Fatalf("tick 3: %v/%d, want restore", a, streak)
	}
}

func TestPolicyIdleCountsHealthy(t *testing.T) {
	a, streak := testPolicy.Decide(Signal{Samples: 0, QueueFrac: 0, Healthy: 2})
	if a != Restore || streak != 0 {
		t.Fatalf("idle interval: %v/%d, want restore", a, streak)
	}
}

// tickGateway drives controlTick directly for deterministic ladder moves.
func tickGateway(t *testing.T) *Gateway {
	t.Helper()
	return testGateway(t, Config{
		Ladder:        testLadder(t, 0, 0.5, 0.9),
		SLO:           50 * time.Millisecond,
		HoldIntervals: 2,
	})
}

func TestControlTickDegradesAndRestores(t *testing.T) {
	g := tickGateway(t)
	// Interval with a violated p99 → one degrade step.
	for i := 0; i < 100; i++ {
		g.observeLatency(0.200)
	}
	g.controlTick()
	if got := g.CurrentVariant(); got != 1 {
		t.Fatalf("variant after violation = %d, want 1", got)
	}
	// Still violated → bottom of the ladder; further violations clamp.
	for i := 0; i < 100; i++ {
		g.observeLatency(0.200)
	}
	g.controlTick()
	for i := 0; i < 100; i++ {
		g.observeLatency(0.200)
	}
	g.controlTick()
	if got := g.CurrentVariant(); got != 2 {
		t.Fatalf("variant should clamp at ladder end, got %d", got)
	}
	if got := g.Stats().Degrades; got != 2 {
		t.Fatalf("degrade counter = %d, want 2 (clamped move not counted)", got)
	}
	// Healthy intervals: restore one step per HoldIntervals streak.
	g.controlTick() // idle tick 1
	g.controlTick() // idle tick 2 → restore
	if got := g.CurrentVariant(); got != 1 {
		t.Fatalf("variant after recovery = %d, want 1", got)
	}
	g.controlTick()
	g.controlTick()
	if got := g.CurrentVariant(); got != 0 {
		t.Fatalf("variant after full recovery = %d, want 0", got)
	}
	st := g.Stats()
	if st.Restores != 2 {
		t.Fatalf("restore counter = %d, want 2", st.Restores)
	}
}

func TestControlTickEmitsSpans(t *testing.T) {
	tr := telemetry.NewTracer(64)
	g := testGateway(t, Config{
		Ladder: testLadder(t, 0, 0.9),
		SLO:    50 * time.Millisecond,
		Tracer: tr,
	})
	for i := 0; i < 10; i++ {
		g.observeLatency(1.0)
	}
	g.controlTick()
	var found bool
	for _, s := range tr.Spans() {
		if s.Name == "serving.degrade" {
			found = true
			labels := map[string]string{}
			for _, l := range s.Labels {
				labels[l.Key] = l.Value
			}
			if labels["from"] != "nonpruned" || labels["to"] == "" {
				t.Fatalf("degrade span labels = %v", labels)
			}
		}
	}
	if !found {
		t.Fatal("no serving.degrade span recorded")
	}
}

func TestControllerDisabledForSingleVariantLadder(t *testing.T) {
	g := testGateway(t, Config{Ladder: testLadder(t, 0)})
	g.Start()
	defer g.Stop()
	// With one variant there is nothing to adapt; the control loop must
	// not have been launched (Stop would hang on a stuck goroutine).
	for i := 0; i < 10; i++ {
		g.observeLatency(10)
	}
	g.controlTick()
	if g.CurrentVariant() != 0 {
		t.Fatal("single-variant ladder moved")
	}
}
