package serving

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ccperf/internal/telemetry"
	"ccperf/internal/tensor"
)

func benchGateway(b *testing.B, cfg Config) *Gateway {
	b.Helper()
	if cfg.Ladder == nil {
		ladder, err := DemoLadder([]float64{0, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		cfg.Ladder = ladder
	}
	cfg.Registry = telemetry.NewRegistry()
	cfg.Tracer = telemetry.NewTracer(64)
	g, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// warmGateway pushes n requests through the gateway before the timed
// region so one-time costs — replica spin-up, workspace-pool minting,
// size-bucket fills — don't pollute the steady-state B/op and allocs/op
// numbers (which would otherwise swing with -benchtime/-count as the
// constant amortizes over a different b.N).
func warmGateway(b *testing.B, g *Gateway, img *tensor.Tensor, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		ch, err := g.Submit(context.Background(), img, time.Time{})
		if err != nil {
			b.Fatal(err)
		}
		if resp := <-ch; resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
}

// BenchmarkBatcher measures coalescing overhead: cost per request of the
// queue→batch→forward→respond cycle at each batch size, against a single
// replica fed exactly one batch at a time.
func BenchmarkBatcher(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			g := benchGateway(b, Config{
				Replicas: 1, MaxBatch: batch, QueueCap: batch * 2,
				BatchTimeout: 50 * time.Microsecond,
			})
			g.Start()
			defer g.Stop()
			img := SyntheticImage(TinyShape.C, TinyShape.H, TinyShape.W, 1)
			chans := make([]<-chan Response, batch)
			warmGateway(b, g, img, 2*batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range chans {
					ch, err := g.Submit(context.Background(), img, time.Time{})
					if err != nil {
						b.Fatal(err)
					}
					chans[j] = ch
				}
				for _, ch := range chans {
					if resp := <-ch; resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
			}
			b.StopTimer()
			reqs := float64(b.N * batch)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/reqs, "ns/req")
		})
	}
}

// BenchmarkGatewayThroughput saturates the gateway from a single producer
// and reports sustained requests/second through the full admission → batch
// → forward path.
func BenchmarkGatewayThroughput(b *testing.B) {
	g := benchGateway(b, Config{
		Replicas: 2, MaxBatch: 8, QueueCap: 128,
		BatchTimeout: 200 * time.Microsecond,
	})
	g.Start()
	defer g.Stop()
	img := SyntheticImage(TinyShape.C, TinyShape.H, TinyShape.W, 2)
	warmGateway(b, g, img, 32)
	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan Response, b.N)
	submitted := 0
	for submitted < b.N {
		ch, err := g.Submit(context.Background(), img, time.Time{})
		if err != nil {
			// Queue full: absorb a completion, then retry.
			<-done
			continue
		}
		submitted++
		go func() { done <- <-ch }()
	}
	for drained := len(done); drained < submitted; {
		<-done
		drained++
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "req/s")
	}
}
