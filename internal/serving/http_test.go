package serving

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func startHTTPGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	g := testGateway(t, cfg)
	g.Start()
	srv := httptest.NewServer(Handler(g))
	t.Cleanup(func() {
		srv.Close()
		g.Stop()
	})
	return g, srv
}

func postInfer(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/infer", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPInferWithSeed(t *testing.T) {
	_, srv := startHTTPGateway(t, Config{})
	resp := postInfer(t, srv.URL, InferRequest{Seed: 42})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Class < 0 || out.Class >= TinyClasses {
		t.Fatalf("class %d", out.Class)
	}
	if out.Degree != "nonpruned" || out.TotalMS <= 0 {
		t.Fatalf("response %+v", out)
	}
}

func TestHTTPInferWithExplicitImage(t *testing.T) {
	_, srv := startHTTPGateway(t, Config{})
	img := make([]float32, TinyShape.Volume())
	for i := range img {
		img[i] = float32(i%7) - 3
	}
	resp := postInfer(t, srv.URL, InferRequest{Image: img})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestHTTPInferRejectsBadInput(t *testing.T) {
	_, srv := startHTTPGateway(t, Config{})
	// Wrong image length.
	resp := postInfer(t, srv.URL, InferRequest{Image: []float32{1, 2, 3}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short image: status %d", resp.StatusCode)
	}
	// Malformed JSON.
	r2, err := http.Post(srv.URL+"/infer", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", r2.StatusCode)
	}
	// GET not allowed.
	r3, err := http.Get(srv.URL + "/infer")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", r3.StatusCode)
	}
}

func TestHTTPExpiredDeadlineMapsTo504(t *testing.T) {
	// A deadline far shorter than the batch timeout expires in the queue.
	_, srv := startHTTPGateway(t, Config{BatchTimeout: 50 * time.Millisecond, MaxBatch: 64})
	resp := postInfer(t, srv.URL, InferRequest{Seed: 1, DeadlineMS: 0.001})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 504 (or rare 200 if dispatched instantly)", resp.StatusCode)
	}
}

func TestHTTPStatusEndpoint(t *testing.T) {
	g, srv := startHTTPGateway(t, Config{})
	postInfer(t, srv.URL, InferRequest{Seed: 9}).Body.Close()
	resp, err := http.Get(srv.URL + "/gateway/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served < 1 || st.QueueCap != g.Config().QueueCap {
		t.Fatalf("status = %+v", st)
	}
	if st.Degree != "nonpruned" {
		t.Fatalf("degree = %q", st.Degree)
	}
}

func TestHTTPStoppedGatewayMapsTo503(t *testing.T) {
	g := testGateway(t, Config{})
	g.Start()
	srv := httptest.NewServer(Handler(g))
	defer srv.Close()
	g.Stop()
	resp := postInfer(t, srv.URL, InferRequest{Seed: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}
