package serving

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestHalfOpenProbeBatchFaults walks a live gateway through the half-open
// edge the unit test covers only on a bare breaker: the probe batch
// itself faults, the breaker must re-open for another cooldown, and the
// first clean probe after that closes it.
func TestHalfOpenProbeBatchFaults(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	inj := scriptedInjector{fail: func(int, int64, int) bool { return failing.Load() }}
	g := testGateway(t, Config{
		Replicas: 1, QueueCap: 16, MaxRetries: -1,
		BreakerThreshold: 1, BreakerCooldown: 30 * time.Millisecond,
		BatchTimeout: time.Millisecond,
		Injector:     inj,
	})
	g.Start()
	defer g.Stop()
	ctx := context.Background()

	// One failure trips the threshold-1 breaker.
	if resp := g.Infer(ctx, testImage(1), time.Time{}); !errors.Is(resp.Err, ErrFaulted) {
		t.Fatalf("first request err = %v, want ErrFaulted", resp.Err)
	}
	if st := g.BreakerState(0); st != BreakerOpen {
		t.Fatalf("breaker after first fault = %v, want open", st)
	}

	// The next request queues behind the open breaker, rides the half-open
	// probe after the cooldown, faults, and must re-open the breaker. The
	// opens counter — bumped on every transition into Open — is the proof
	// the probe actually ran and failed rather than the breaker never
	// leaving Open.
	if resp := g.Infer(ctx, testImage(2), time.Time{}); !errors.Is(resp.Err, ErrFaulted) {
		t.Fatalf("probe request err = %v, want ErrFaulted", resp.Err)
	}
	if st := g.BreakerState(0); st != BreakerOpen {
		t.Fatalf("breaker after failed probe = %v, want re-opened", st)
	}
	if opens := g.Stats().BreakerOpens; opens != 2 {
		t.Fatalf("breaker opens = %d, want 2 (initial trip + failed probe)", opens)
	}

	// Heal the replica: the next probe succeeds and closes the breaker.
	failing.Store(false)
	resp := g.Infer(ctx, testImage(3), time.Time{})
	if resp.Err != nil {
		t.Fatalf("clean probe err = %v", resp.Err)
	}
	if st := g.BreakerState(0); st != BreakerClosed {
		t.Fatalf("breaker after clean probe = %v, want closed", st)
	}
	if opens := g.Stats().BreakerOpens; opens != 2 {
		t.Fatalf("breaker opens after recovery = %d, want still 2", opens)
	}
}

// TestStopDuringHalfOpenProbe hammers the shutdown path while every
// replica is somewhere in the open → half-open → failed-probe cycle:
// sleeping out a cooldown, mid-probe, or re-opening. Stop must land
// promptly wherever it cuts in, answer every queued request, and leak no
// goroutines. The millisecond cooldown keeps the cycle tight so repeated
// iterations sample different interleavings under -race.
func TestStopDuringHalfOpenProbe(t *testing.T) {
	for iter := 0; iter < 5; iter++ {
		before := runtime.NumGoroutine()
		inj := scriptedInjector{fail: func(int, int64, int) bool { return true }}
		g := testGateway(t, Config{
			Replicas: 2, QueueCap: 64, MaxRetries: -1,
			BreakerThreshold: 1, BreakerCooldown: time.Millisecond,
			BatchTimeout: time.Millisecond,
			Injector:     inj,
		})
		const n = 24
		chans := make([]<-chan Response, 0, n)
		for i := 0; i < n; i++ {
			ch, err := g.Submit(context.Background(), testImage(int64(i)), time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
		}
		g.Start()
		// Let the breakers trip and start cycling through probes; vary the
		// phase Stop lands on across iterations.
		time.Sleep(time.Duration(iter+1) * time.Millisecond)
		done := make(chan struct{})
		go func() {
			g.Stop()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: Stop hung during breaker probe cycle", iter)
		}
		for i, ch := range chans {
			select {
			case resp := <-ch:
				if !errors.Is(resp.Err, ErrFaulted) && !errors.Is(resp.Err, ErrStopped) {
					t.Fatalf("iter %d request %d: err = %v, want ErrFaulted or ErrStopped", iter, i, resp.Err)
				}
			default:
				t.Fatalf("iter %d request %d never answered after Stop", iter, i)
			}
		}
		// Replica goroutines sleeping in a cooldown wait must have exited.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Fatalf("iter %d: goroutines grew from %d to %d after Stop", iter, before, got)
		}
	}
}
