package serving

import (
	"context"
	"time"

	"ccperf/internal/stats"
	"ccperf/internal/telemetry"
)

// Action is one control decision.
type Action int

// Control decisions.
const (
	// Hold keeps the current variant.
	Hold Action = iota
	// Degrade moves one step toward more pruning (faster, less accurate).
	Degrade
	// Restore moves one step toward less pruning (slower, more accurate).
	Restore
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Degrade:
		return "degrade"
	case Restore:
		return "restore"
	default:
		return "hold"
	}
}

// Signal is what the controller observed over one interval.
type Signal struct {
	// P99 is the interval's p99 total latency in seconds (0 when Samples
	// is 0).
	P99 float64
	// Samples is the number of completed requests in the interval.
	Samples int
	// QueueFrac is the admission-queue fill fraction at tick time.
	QueueFrac float64
	// Healthy is the consecutive-healthy-interval count entering the tick.
	Healthy int
}

// Policy is the pure decision core of the load-adaptive pruning
// controller, separated from the goroutine so it can be tested
// deterministically. SLO fields are in seconds.
type Policy struct {
	SLOSeconds         float64
	DegradeUtilization float64 // queue fraction forcing a degrade
	RestoreFraction    float64 // healthy iff p99 < SLO·RestoreFraction
	HoldIntervals      int     // healthy intervals required per restore
}

// Decide maps one interval's signal to an action and the next healthy
// streak. A violated SLO (p99 over target, or queue pressure past the
// utilization bound) degrades immediately; restoration needs HoldIntervals
// consecutive healthy intervals — asymmetric on purpose, the classic
// fast-down/slow-up rule that keeps the fleet from oscillating.
// An idle interval (no samples) with an empty queue counts as healthy.
func (p Policy) Decide(s Signal) (Action, int) {
	violated := s.QueueFrac >= p.DegradeUtilization ||
		(s.Samples > 0 && s.P99 > p.SLOSeconds)
	if violated {
		return Degrade, 0
	}
	healthy := s.QueueFrac < p.DegradeUtilization &&
		(s.Samples == 0 || s.P99 <= p.SLOSeconds*p.RestoreFraction)
	if !healthy {
		return Hold, 0
	}
	streak := s.Healthy + 1
	if streak >= p.HoldIntervals {
		return Restore, 0
	}
	return Hold, streak
}

// policy derives the Policy from the gateway config.
func (g *Gateway) policy() Policy {
	return Policy{
		SLOSeconds:         g.cfg.SLO.Seconds(),
		DegradeUtilization: g.cfg.DegradeUtilization,
		RestoreFraction:    g.cfg.RestoreFraction,
		HoldIntervals:      g.cfg.HoldIntervals,
	}
}

// controlLoop ticks the controller until shutdown.
func (g *Gateway) controlLoop() {
	defer g.workers.Done()
	ticker := time.NewTicker(g.cfg.ControlInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			g.controlTick()
		case <-g.stopCh:
			return
		}
	}
}

// ControlSignal drains the latency window accumulated since the last call
// and snapshots queue pressure — one control interval's observation. It is
// consumed either by the gateway's own pruning controller or, under
// Config.ExternalControl, by the autoscaler that has taken over both the
// ladder and the replica count. Healthy carries the built-in controller's
// streak; an external controller keeps its own.
func (g *Gateway) ControlSignal() Signal {
	window := g.takeWindow()
	return Signal{
		P99:       stats.Percentile(window, 0.99),
		Samples:   len(window),
		QueueFrac: float64(len(g.queue)) / float64(g.cfg.QueueCap),
		Healthy:   g.healthy,
	}
}

// controlTick evaluates one interval and applies the decision. It is the
// unit the tests drive directly.
func (g *Gateway) controlTick() {
	sig := g.ControlSignal()
	action, streak := g.policy().Decide(sig)
	g.healthy = streak
	g.apply(action, sig)
}

// apply moves the pool along the ladder (clamped at the ends) and records
// the decision: a counter per direction and one span carrying the signal
// that drove it.
func (g *Gateway) apply(action Action, sig Signal) {
	cur := int(g.variant.Load())
	next := cur
	switch action {
	case Degrade:
		if cur < len(g.cfg.Ladder)-1 {
			next = cur + 1
		}
	case Restore:
		if cur > 0 {
			next = cur - 1
		}
	}
	if next == cur {
		return
	}
	g.variant.Store(int64(next))
	g.m.variantGauge.Set(float64(next))
	switch action {
	case Degrade:
		g.m.degrades.Inc()
	case Restore:
		g.m.restores.Inc()
	}
	_, finish := g.cfg.Tracer.StartSpan(context.Background(), "serving."+action.String())
	finish(
		telemetry.L("from", g.cfg.Ladder[cur].Degree.Label()),
		telemetry.L("to", g.cfg.Ladder[next].Degree.Label()),
		telemetry.L("p99_seconds", sig.P99),
		telemetry.L("samples", sig.Samples),
		telemetry.L("queue_frac", sig.QueueFrac),
	)
}
