package serving

import (
	"context"
	"testing"
	"time"

	"ccperf/internal/telemetry"
)

// spanByName returns the first recorded span with the given name.
func spanByName(spans []telemetry.SpanRecord, name string) *telemetry.SpanRecord {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
	}
	return nil
}

// TestRequestBatchSpanLinkage asserts the request→batch→forward span chain:
// serving.batch must parent under the serving.request span of the batch's
// first live request (it used to start from context.Background(), making
// linkage impossible), and serving.forward under the batch.
func TestRequestBatchSpanLinkage(t *testing.T) {
	tracer := telemetry.NewTracer(256)
	g := testGateway(t, Config{Replicas: 1, Tracer: tracer})
	g.Start()
	resp := g.Infer(context.Background(), testImage(1), time.Time{})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	g.Stop()

	spans := tracer.Spans()
	req := spanByName(spans, "serving.request")
	batch := spanByName(spans, "serving.batch")
	fwd := spanByName(spans, "serving.forward")
	if req == nil || batch == nil || fwd == nil {
		t.Fatalf("missing spans: request=%v batch=%v forward=%v", req, batch, fwd)
	}
	if req.ID == 0 {
		t.Fatal("request span has no id")
	}
	if batch.Parent != req.ID {
		t.Fatalf("serving.batch parent = %d, want the serving.request span %d", batch.Parent, req.ID)
	}
	if fwd.Parent != batch.ID {
		t.Fatalf("serving.forward parent = %d, want the serving.batch span %d", fwd.Parent, batch.ID)
	}
	var outcome string
	for _, l := range req.Labels {
		if l.Key == "outcome" {
			outcome = l.Value
		}
	}
	if outcome != "ok" {
		t.Fatalf("request span outcome = %q, want ok (labels %v)", outcome, req.Labels)
	}
}

// TestSubmitSpanCarriesCallerParent: a caller that already holds a span
// (e.g. the HTTP handler or loadtest.replay) must become the parent of the
// serving.request span.
func TestSubmitSpanCarriesCallerParent(t *testing.T) {
	tracer := telemetry.NewTracer(256)
	g := testGateway(t, Config{Replicas: 1, Tracer: tracer})
	g.Start()
	ctx, finish := tracer.StartSpan(context.Background(), "test.root")
	resp := g.Infer(ctx, testImage(1), time.Time{})
	finish()
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	g.Stop()

	spans := tracer.Spans()
	root := spanByName(spans, "test.root")
	req := spanByName(spans, "serving.request")
	if root == nil || req == nil {
		t.Fatalf("missing spans: root=%v request=%v", root, req)
	}
	if req.Parent != root.ID {
		t.Fatalf("serving.request parent = %d, want caller span %d", req.Parent, root.ID)
	}
}

// TestSetVariantSpanLinkage: an external controller's decision span must
// parent the serving.set_variant span it causes.
func TestSetVariantSpanLinkage(t *testing.T) {
	tracer := telemetry.NewTracer(64)
	g := testGateway(t, Config{Tracer: tracer, ExternalControl: true})
	ctx, finish := tracer.StartSpan(context.Background(), "test.decision")
	if got := g.SetVariant(ctx, 1); got != 1 {
		t.Fatalf("SetVariant = %d", got)
	}
	finish()

	spans := tracer.Spans()
	dec := spanByName(spans, "test.decision")
	sv := spanByName(spans, "serving.set_variant")
	if dec == nil || sv == nil {
		t.Fatalf("missing spans: decision=%v set_variant=%v", dec, sv)
	}
	if sv.Parent != dec.ID {
		t.Fatalf("serving.set_variant parent = %d, want decision span %d", sv.Parent, dec.ID)
	}
}

// TestStageStats: after traffic, all three pipeline stages must have
// observations and plausible orderings (p50 ≤ p99 ≤ max).
func TestStageStats(t *testing.T) {
	g := testGateway(t, Config{Replicas: 1})
	g.Start()
	for i := 0; i < 8; i++ {
		if resp := g.Infer(context.Background(), testImage(int64(i)), time.Time{}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	g.Stop()
	st := g.StageStats()
	for name, s := range map[string]StageSummary{
		"queue_wait":     st.QueueWait,
		"batch_assembly": st.BatchAssembly,
		"nn_forward":     st.NNForward,
	} {
		if s.Count == 0 {
			t.Errorf("stage %s has no observations", name)
		}
		if s.P50MS > s.P99MS+1e-9 || s.P99MS > s.MaxMS+1e-9 {
			t.Errorf("stage %s quantiles out of order: %+v", name, s)
		}
	}
	if st.NNForward.MeanMS <= 0 {
		t.Errorf("nn_forward mean = %v, want > 0", st.NNForward.MeanMS)
	}
}

// TestStageStatsByTenant: Submit lands in the default tenant's stage
// histograms; SubmitAs keys a separate per-tenant set, and the aggregate
// StageStats sees both.
func TestStageStatsByTenant(t *testing.T) {
	g := testGateway(t, Config{Replicas: 1})
	g.Start()
	for i := 0; i < 4; i++ {
		if resp := g.Infer(context.Background(), testImage(int64(i)), time.Time{}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	ch, err := g.SubmitAs(context.Background(), "acme", testImage(99), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if resp := <-ch; resp.Err != nil {
		t.Fatal(resp.Err)
	}
	g.Stop()

	byTenant := g.StageStatsByTenant()
	def, ok := byTenant[DefaultTenant]
	if !ok || def.QueueWait.Count != 4 {
		t.Fatalf("default tenant stages: ok=%v %+v", ok, def)
	}
	acme, ok := byTenant["acme"]
	if !ok || acme.QueueWait.Count != 1 || acme.NNForward.Count == 0 {
		t.Fatalf("acme stages: ok=%v %+v", ok, acme)
	}
	// The unkeyed aggregate spans every tenant.
	if agg := g.StageStats(); agg.QueueWait.Count != 5 {
		t.Fatalf("aggregate queue count = %d, want 5", agg.QueueWait.Count)
	}
}
