package serving

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"ccperf/internal/stats"
	"ccperf/internal/telemetry"
	"ccperf/internal/workload"
)

// LoadConfig parameterizes one open-loop replay of a workload trace
// against a gateway.
type LoadConfig struct {
	// Trace supplies per-window request counts (typically a compressed
	// day: the whole trace replays in Duration).
	Trace *workload.Trace
	// Duration is the wall-clock length of the replay.
	Duration time.Duration
	// Seed drives the Poisson arrival expansion within windows.
	Seed int64
	// Deadline is the per-request deadline offset (0 = gateway default).
	Deadline time.Duration
	// Cooldown keeps the gateway running idle after the last arrival so
	// the controller can observe recovery and restore accuracy (0 = none).
	Cooldown time.Duration
}

// Report summarizes one load test: admission outcomes, end-to-end latency
// percentiles, throughput, and the accuracy proxy actually delivered
// (request-weighted over the variants each request was served at).
type Report struct {
	Submitted int `json:"submitted"`
	OK        int `json:"ok"`
	Shed      int `json:"shed"`
	Expired   int `json:"expired"`
	// Faulted counts requests failed by fault injection after exhausting
	// their retries; Retries and BreakerOpens snapshot the gateway's
	// resilience counters at the end of the run.
	Faulted      int   `json:"faulted"`
	Retries      int64 `json:"retries"`
	BreakerOpens int64 `json:"breaker_opens"`

	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput_rps"` // served requests per wall second

	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`

	// MeanAccuracy is the request-weighted mean of the serving variants'
	// accuracy proxies; MinAccuracy is the worst variant any request saw.
	MeanAccuracy float64 `json:"mean_accuracy"`
	MinAccuracy  float64 `json:"min_accuracy"`
	// PerVariant counts served requests by ladder index.
	PerVariant []int `json:"per_variant"`

	Degrades int64 `json:"degrades"`
	Restores int64 `json:"restores"`

	// Stages attributes latency to the serving pipeline's stages (queue
	// wait, batch assembly, nn forward) over the whole run, aggregated
	// across tenants; TenantStages keys the same attribution by tenant
	// label (single-tenant runs carry one DefaultTenant entry).
	Stages       *Stages           `json:"stages,omitempty"`
	TenantStages map[string]Stages `json:"tenant_stages,omitempty"`
}

// RunLoad replays the trace open-loop: arrivals fire at their scheduled
// offsets whether or not earlier requests completed (the arrival process
// does not slow down when the service does — which is exactly what makes
// overload visible). It returns after every response has arrived and the
// cooldown has elapsed. The caller owns gateway Start/Stop.
func RunLoad(g *Gateway, cfg LoadConfig) (*Report, error) {
	if cfg.Trace == nil || len(cfg.Trace.Windows) == 0 {
		return nil, fmt.Errorf("serving: load config needs a trace")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("serving: load config needs a positive duration")
	}
	windowSec := cfg.Duration.Seconds() / float64(len(cfg.Trace.Windows))
	arrivals := workload.ArrivalTimes(cfg.Trace, windowSec, cfg.Seed)

	shape := g.cfg.Ladder[0].Net.Input
	rep := &Report{PerVariant: make([]int, len(g.cfg.Ladder))}
	var mu sync.Mutex
	latencies := make([]float64, 0, len(arrivals))
	var wg sync.WaitGroup

	// One replay-root span per run: every request span parents under it,
	// so a trace dump of a loadtest is a single tree.
	ctx, finishReplay := g.cfg.Tracer.StartSpan(context.Background(), "loadtest.replay")
	start := time.Now()
	for i, at := range arrivals {
		offset := time.Duration(at * float64(time.Second))
		if d := time.Until(start.Add(offset)); d > 0 {
			time.Sleep(d)
		}
		img := SyntheticImage(shape.C, shape.H, shape.W, cfg.Seed+int64(i))
		var deadline time.Time
		if cfg.Deadline > 0 {
			deadline = time.Now().Add(cfg.Deadline)
		}
		rep.Submitted++
		ch, err := g.Submit(ctx, img, deadline)
		if err != nil {
			mu.Lock()
			countError(rep, err)
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := <-ch
			mu.Lock()
			defer mu.Unlock()
			if resp.Err != nil {
				countError(rep, resp.Err)
				return
			}
			rep.OK++
			rep.PerVariant[resp.Variant]++
			rep.MeanAccuracy += resp.Accuracy
			if rep.MinAccuracy == 0 || resp.Accuracy < rep.MinAccuracy {
				rep.MinAccuracy = resp.Accuracy
			}
			latencies = append(latencies, resp.Total.Seconds())
		}()
	}
	wg.Wait()
	finishReplay(telemetry.L("submitted", rep.Submitted))
	if cfg.Cooldown > 0 {
		time.Sleep(cfg.Cooldown)
	}
	rep.WallSeconds = time.Since(start).Seconds()
	if rep.OK > 0 {
		rep.MeanAccuracy /= float64(rep.OK)
		rep.Throughput = float64(rep.OK) / rep.WallSeconds
		p50, p95, p99, max := stats.Summary(latencies)
		rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS = p50*1000, p95*1000, p99*1000, max*1000
	}
	st := g.Stats()
	rep.Degrades, rep.Restores = st.Degrades, st.Restores
	rep.Retries, rep.BreakerOpens = st.Retries, st.BreakerOpens
	stages := g.StageStats()
	rep.Stages = &stages
	rep.TenantStages = g.StageStatsByTenant()
	return rep, nil
}

func countError(rep *Report, err error) {
	switch err {
	case ErrOverloaded:
		rep.Shed++
	case ErrExpired:
		rep.Expired++
	case ErrFaulted:
		rep.Faulted++
	}
}

// ErrorRate is the fraction of submitted requests that were shed, expired,
// or faulted — the loadtest CLI gates its exit status on this.
func (r *Report) ErrorRate() float64 {
	if r.Submitted == 0 {
		return 0
	}
	return float64(r.Shed+r.Expired+r.Faulted) / float64(r.Submitted)
}

// String renders the report for the CLI.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests : %d submitted, %d ok, %d shed, %d expired, %d faulted\n",
		r.Submitted, r.OK, r.Shed, r.Expired, r.Faulted)
	fmt.Fprintf(&b, "latency  : p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, max %.1f ms\n",
		r.P50MS, r.P95MS, r.P99MS, r.MaxMS)
	fmt.Fprintf(&b, "rate     : %.0f req/s served over %.2f s\n", r.Throughput, r.WallSeconds)
	fmt.Fprintf(&b, "accuracy : %.1f%% mean proxy, %.1f%% worst variant served\n",
		r.MeanAccuracy*100, r.MinAccuracy*100)
	fmt.Fprintf(&b, "ladder   : %v per-variant, %d degradations, %d restorations\n",
		r.PerVariant, r.Degrades, r.Restores)
	if r.Faulted > 0 || r.Retries > 0 || r.BreakerOpens > 0 {
		fmt.Fprintf(&b, "faults   : %d retries, %d breaker opens, %.1f%% error rate\n",
			r.Retries, r.BreakerOpens, r.ErrorRate()*100)
	}
	if s := r.Stages; s != nil {
		fmt.Fprintf(&b, "stages   : queue p99 %.1f ms, assembly p99 %.1f ms, forward p99 %.1f ms\n",
			s.QueueWait.P99MS, s.BatchAssembly.P99MS, s.NNForward.P99MS)
	}
	return b.String()
}
