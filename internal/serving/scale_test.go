package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestScaleToGrowsAndShrinks(t *testing.T) {
	g := testGateway(t, Config{Replicas: 1, QueueCap: 64})
	g.Start()
	defer g.Stop()

	if n, err := g.ScaleTo(3); err != nil || n != 3 {
		t.Fatalf("ScaleTo(3) = %d, %v", n, err)
	}
	if got := g.ReplicaCount(); got != 3 {
		t.Fatalf("ReplicaCount = %d after scale-out", got)
	}
	// The grown fleet still serves.
	resp := g.Infer(context.Background(), testImage(1), time.Time{})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if n, err := g.ScaleTo(1); err != nil || n != 1 {
		t.Fatalf("ScaleTo(1) = %d, %v", n, err)
	}
	if got := g.Stats().Replicas; got != 1 {
		t.Fatalf("Stats().Replicas = %d after scale-in", got)
	}
	// The shrunk fleet still serves: retired replicas must not have taken
	// the shared queue down with them.
	for i := 0; i < 8; i++ {
		if resp := g.Infer(context.Background(), testImage(int64(i)), time.Time{}); resp.Err != nil {
			t.Fatalf("request %d after scale-in: %v", i, resp.Err)
		}
	}
}

func TestScaleToClampsAtOne(t *testing.T) {
	g := testGateway(t, Config{Replicas: 2})
	if n, err := g.ScaleTo(0); err != nil || n != 1 {
		t.Fatalf("ScaleTo(0) = %d, %v; want clamp to 1", n, err)
	}
	g.Start()
	g.Stop()
	if _, err := g.ScaleTo(4); !errors.Is(err, ErrStopped) {
		t.Fatalf("ScaleTo after Stop: err = %v, want ErrStopped", err)
	}
}

// TestStopScaleInRace is the regression test for the double-close hazard:
// Stop (which closes the shared stopCh) racing a scale-in (which closes
// per-replica stop channels) must neither close a channel twice nor
// register workers after workers.Wait — both blow up under -race or panic
// outright. Every queued request must still get exactly one answer.
func TestStopScaleInRace(t *testing.T) {
	for round := 0; round < 25; round++ {
		g := testGateway(t, Config{Replicas: 4, QueueCap: 64, MaxBatch: 4})
		g.Start()
		chans := make([]<-chan Response, 0, 16)
		for i := 0; i < 16; i++ {
			if ch, err := g.Submit(context.Background(), testImage(int64(i)), time.Time{}); err == nil {
				chans = append(chans, ch)
			}
		}
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { defer wg.Done(); g.ScaleTo(1) }()
		go func() { defer wg.Done(); g.Stop() }()
		go func() { defer wg.Done(); g.ScaleTo(6) }()
		wg.Wait()
		for i, ch := range chans {
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				t.Fatalf("round %d: request %d never answered", round, i)
			}
		}
	}
}

func TestWarmupDelaysNewReplicaOnly(t *testing.T) {
	g := testGateway(t, Config{Replicas: 1, WarmupDelay: 50 * time.Millisecond})
	g.Start()
	defer g.Stop()
	// The Start-time replica is warm: a request lands immediately.
	start := time.Now()
	if resp := g.Infer(context.Background(), testImage(1), time.Time{}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("initial replica appears to have warmed up (%v)", d)
	}
	g.ScaleTo(2) // the new replica warms up but must not disturb service
	if resp := g.Infer(context.Background(), testImage(2), time.Time{}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
}

func TestReplicaSecondsAccrues(t *testing.T) {
	g := testGateway(t, Config{Replicas: 2})
	if s := g.ReplicaSeconds(); s != 0 {
		t.Fatalf("ReplicaSeconds before Start = %v", s)
	}
	g.Start()
	time.Sleep(30 * time.Millisecond)
	mid := g.ReplicaSeconds()
	if mid <= 0 {
		t.Fatalf("ReplicaSeconds did not accrue: %v", mid)
	}
	g.ScaleTo(4)
	time.Sleep(30 * time.Millisecond)
	g.Stop()
	final := g.ReplicaSeconds()
	// 2 replicas for ≥30ms then 4 for ≥30ms ⥂ at least 0.18 replica-seconds.
	if final < 0.15 {
		t.Fatalf("ReplicaSeconds after scaled run = %v, want ≥ 0.15", final)
	}
	if again := g.ReplicaSeconds(); again != final {
		t.Fatalf("ReplicaSeconds kept accruing after Stop: %v then %v", final, again)
	}
}

func TestSetVariantClampsAndCounts(t *testing.T) {
	g := testGateway(t, Config{Ladder: testLadder(t, 0, 0.5, 0.9)})
	if got := g.SetVariant(context.Background(), 99); got != 2 {
		t.Fatalf("SetVariant(99) = %d, want clamp to 2", got)
	}
	if got := g.Stats().Degrades; got != 2 {
		t.Fatalf("degrades = %d after two-rung jump, want 2", got)
	}
	if got := g.SetVariant(context.Background(), -5); got != 0 {
		t.Fatalf("SetVariant(-5) = %d, want clamp to 0", got)
	}
	if got := g.Stats().Restores; got != 2 {
		t.Fatalf("restores = %d after two-rung return, want 2", got)
	}
	if got := g.SetVariant(context.Background(), 0); got != 0 || g.Stats().Restores != 2 {
		t.Fatal("no-op SetVariant must not count a move")
	}
}

func TestExternalControlDisablesBuiltInController(t *testing.T) {
	g := testGateway(t, Config{
		Ladder: testLadder(t, 0, 0.9), ExternalControl: true,
		ControlInterval: time.Millisecond, SLO: time.Nanosecond, QueueCap: 4,
	})
	g.Start()
	// Saturate latency far past the 1ns SLO; with the built-in controller
	// disabled the ladder must not move on its own.
	for i := 0; i < 8; i++ {
		g.Infer(context.Background(), testImage(int64(i)), time.Time{})
	}
	time.Sleep(20 * time.Millisecond)
	g.Stop()
	if v := g.CurrentVariant(); v != 0 {
		t.Fatalf("variant moved to %d with ExternalControl set", v)
	}
}
