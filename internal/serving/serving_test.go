package serving

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"ccperf/internal/telemetry"
	"ccperf/internal/tensor"
)

// testLadder builds a short demo ladder with an isolated registry/tracer.
func testLadder(t testing.TB, ratios ...float64) []Variant {
	t.Helper()
	if len(ratios) == 0 {
		ratios = []float64{0, 0.9}
	}
	ladder, err := DemoLadder(ratios)
	if err != nil {
		t.Fatal(err)
	}
	return ladder
}

func testGateway(t testing.TB, cfg Config) *Gateway {
	t.Helper()
	if cfg.Ladder == nil {
		cfg.Ladder = testLadder(t)
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.NewTracer(256)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testImage(seed int64) *tensor.Tensor {
	return SyntheticImage(TinyShape.C, TinyShape.H, TinyShape.W, seed)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error for empty ladder")
	}
	if _, err := New(Config{Ladder: []Variant{{}}}); err == nil {
		t.Fatal("expected error for nil variant net")
	}
}

func TestInferReturnsClassAndVariant(t *testing.T) {
	g := testGateway(t, Config{})
	g.Start()
	defer g.Stop()
	resp := g.Infer(context.Background(), testImage(1), time.Time{})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Class < 0 || resp.Class >= TinyClasses {
		t.Fatalf("class %d out of range", resp.Class)
	}
	if resp.Variant != 0 || resp.Degree != "nonpruned" {
		t.Fatalf("fresh gateway should serve variant 0, got %d (%s)", resp.Variant, resp.Degree)
	}
	if resp.Accuracy <= 0 {
		t.Fatalf("accuracy proxy = %v", resp.Accuracy)
	}
	if resp.Batch < 1 || resp.Total <= 0 {
		t.Fatalf("batch=%d total=%v", resp.Batch, resp.Total)
	}
}

func TestDeterministicClassAcrossSubmissions(t *testing.T) {
	// A generous SLO pins the ladder at variant 0: on a loaded machine the
	// default 50ms target can degrade between the two submissions, and a
	// pruned variant legitimately classifies differently — this test is
	// about determinism of the forward path, not ladder stability.
	g := testGateway(t, Config{SLO: time.Hour})
	g.Start()
	defer g.Stop()
	a := g.Infer(context.Background(), testImage(7), time.Time{})
	b := g.Infer(context.Background(), testImage(7), time.Time{})
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.Class != b.Class {
		t.Fatalf("same image classified %d then %d", a.Class, b.Class)
	}
}

func TestBatchCoalescing(t *testing.T) {
	// One replica, batch up to 16 with a generous timeout: submissions
	// parked while the replica is busy must coalesce into shared batches.
	g := testGateway(t, Config{
		Replicas: 1, MaxBatch: 16, QueueCap: 64,
		BatchTimeout: 20 * time.Millisecond,
	})
	g.Start()
	defer g.Stop()
	const n = 32
	chans := make([]<-chan Response, 0, n)
	for i := 0; i < n; i++ {
		ch, err := g.Submit(context.Background(), testImage(int64(i)), time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	maxBatch := 0
	for _, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if resp.Batch > maxBatch {
			maxBatch = resp.Batch
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no coalescing observed: max batch %d", maxBatch)
	}
	if maxBatch > 16 {
		t.Fatalf("batch %d exceeds MaxBatch", maxBatch)
	}
}

func TestLoadSheddingOnFullQueue(t *testing.T) {
	// Gateway not started: nothing consumes the queue, so QueueCap
	// submissions are admitted and the next is shed deterministically.
	g := testGateway(t, Config{QueueCap: 4})
	for i := 0; i < 4; i++ {
		if _, err := g.Submit(context.Background(), testImage(int64(i)), time.Time{}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := g.Submit(context.Background(), testImage(99), time.Time{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	st := g.Stats()
	if st.Admitted != 4 || st.Shed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	g.Start()
	g.Stop()
}

func TestExpiredRequestsDroppedBeforeDispatch(t *testing.T) {
	g := testGateway(t, Config{QueueCap: 8})
	// Enqueue with an already-passed deadline before starting the
	// replicas, so expiry is checked at dispatch.
	ch, err := g.Submit(context.Background(), testImage(1), time.Now().Add(-time.Second))
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	defer g.Stop()
	resp := <-ch
	if !errors.Is(resp.Err, ErrExpired) {
		t.Fatalf("expected ErrExpired, got %v", resp.Err)
	}
	if got := g.Stats().Expired; got != 1 {
		t.Fatalf("expired counter = %d", got)
	}
}

func TestDefaultDeadlineApplied(t *testing.T) {
	g := testGateway(t, Config{QueueCap: 8, Deadline: time.Nanosecond})
	ch, err := g.Submit(context.Background(), testImage(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // let the 1ns default deadline lapse
	g.Start()
	defer g.Stop()
	if resp := <-ch; !errors.Is(resp.Err, ErrExpired) {
		t.Fatalf("expected ErrExpired from default deadline, got %v", resp.Err)
	}
}

func TestStopDrainsQueuedRequests(t *testing.T) {
	g := testGateway(t, Config{Replicas: 1, QueueCap: 32, MaxBatch: 4})
	chans := make([]<-chan Response, 0, 16)
	for i := 0; i < 16; i++ {
		ch, err := g.Submit(context.Background(), testImage(int64(i)), time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	g.Start()
	g.Stop()
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("request %d: %v", i, resp.Err)
			}
		default:
			t.Fatalf("request %d never answered after Stop", i)
		}
	}
	if _, err := g.Submit(context.Background(), testImage(0), time.Time{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("expected ErrStopped, got %v", err)
	}
}

func TestStopWithoutStartAnswersQueued(t *testing.T) {
	g := testGateway(t, Config{QueueCap: 4})
	ch, err := g.Submit(context.Background(), testImage(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	g.Stop()
	if resp := <-ch; !errors.Is(resp.Err, ErrStopped) {
		t.Fatalf("expected ErrStopped, got %v", resp.Err)
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		g := testGateway(t, Config{Replicas: 3, QueueCap: 32})
		g.Start()
		for i := 0; i < 40; i++ {
			g.Submit(context.Background(), testImage(int64(i)), time.Time{}) // responses intentionally unread (buffered)
		}
		g.Stop()
	}
	// Allow the runtime a moment to retire exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after Stop", before, runtime.NumGoroutine())
}

func TestPrunedVariantsShrinkWork(t *testing.T) {
	// The ladder's premise: more pruning ⇒ genuinely cheaper forward.
	ladder := testLadder(t, 0, 0.9)
	img := testImage(3)
	timeOf := func(v Variant) time.Duration {
		start := time.Now()
		for i := 0; i < 5; i++ {
			v.Net.Forward(img, nil)
		}
		return time.Since(start)
	}
	full, pruned := timeOf(ladder[0]), timeOf(ladder[1])
	if pruned >= full {
		t.Logf("warning: pruned forward %v not faster than full %v (timing noise?)", pruned, full)
	}
	if ladder[1].Accuracy >= ladder[0].Accuracy {
		t.Fatalf("accuracy proxy should fall along the ladder: %v vs %v",
			ladder[1].Accuracy, ladder[0].Accuracy)
	}
}
