package serving

import (
	"context"
	"fmt"

	"ccperf/internal/engine"
	"ccperf/internal/measure"
	"ccperf/internal/models"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
)

// Variant is one rung of the pruning ladder: a pre-built pruned model plus
// the accuracy proxy the gateway reports for requests served at this rung.
type Variant struct {
	Degree prune.Degree
	Net    *nn.Net
	// Accuracy is the variant's Top-1 accuracy proxy (from the calibrated
	// curves of internal/accuracy, or measured by the caller).
	Accuracy float64
}

// BuildLadder constructs the variant ladder: for each degree (least pruned
// first) it builds a fresh network, applies the degree with the method,
// and attaches the Top-1 accuracy predicted by src (any engine
// AccuracySource — pass an engine.Cache to share calibration evaluations
// with the planning layers, or nil to skip calibration). Building each
// variant once up front is what makes runtime switching free — the
// controller flips an index instead of re-pruning live weights.
func BuildLadder(ctx context.Context, build func() (*nn.Net, error), degrees []prune.Degree, m prune.Method, src engine.AccuracySource) ([]Variant, error) {
	if len(degrees) == 0 {
		return nil, fmt.Errorf("serving: empty degree ladder")
	}
	out := make([]Variant, 0, len(degrees))
	for _, d := range degrees {
		net, err := build()
		if err != nil {
			return nil, fmt.Errorf("serving: building variant %s: %w", d.Label(), err)
		}
		if err := prune.Apply(net, d, m); err != nil {
			return nil, fmt.Errorf("serving: pruning variant %s: %w", d.Label(), err)
		}
		v := Variant{Degree: d, Net: net}
		if src != nil {
			a, err := src.Accuracy(ctx, d)
			if err != nil {
				return nil, fmt.Errorf("serving: evaluating variant %s: %w", d.Label(), err)
			}
			v.Accuracy = a.Top1
		}
		out = append(out, v)
	}
	return out, nil
}

// TinyShape is the demo model's input (a reduced-resolution stand-in for
// the paper's 224×224×3, sized so a pure-Go forward stays sub-millisecond
// and a loadtest can push thousands of requests through it).
var TinyShape = nn.Shape{C: 3, H: 32, W: 32}

// TinyClasses is the demo model's output width.
const TinyClasses = 10

// TinyNet builds and initializes the demo serving CNN: conv1/conv2 blocks
// (named after Caffenet's so the calibrated accuracy curves apply) and a
// small classifier head. Pruning conv1/conv2 genuinely shrinks the dense
// GEMM work — the ladder's speedup is real, not simulated.
func TinyNet() (*nn.Net, error) {
	n := nn.NewNet("tinynet", TinyShape)
	n.Add(
		nn.NewConv("conv1", 16, 3, 3, 1, 1, 1, 1, 1),
		nn.NewReLU("relu1"),
		nn.NewMaxPool("pool1", 2, 2),
		nn.NewConv("conv2", 32, 3, 3, 1, 1, 1, 1, 1),
		nn.NewReLU("relu2"),
		nn.NewMaxPool("pool2", 2, 2),
		nn.NewFlatten("flatten"),
		nn.NewFC("fc1", TinyClasses),
		nn.NewSoftmax("prob"),
	)
	if err := n.Init(7); err != nil {
		return nil, err
	}
	return n, nil
}

// DefaultLadderRatios are the demo ladder's uniform conv1+conv2 prune
// ratios, least pruned first.
var DefaultLadderRatios = []float64{0, 0.3, 0.5, 0.7, 0.9}

// DemoLadder builds the ladder `ccperf serve -gateway` and `ccperf
// loadtest` use: TinyNet pruned uniformly over conv1+conv2 at
// DefaultLadderRatios, with accuracy proxies from the paper's calibrated
// Caffenet curves (the degrees address conv1/conv2, which those curves
// cover).
func DemoLadder(ratios []float64) ([]Variant, error) {
	if len(ratios) == 0 {
		ratios = DefaultLadderRatios
	}
	h, err := measure.NewHarness(models.CaffenetName)
	if err != nil {
		return nil, err
	}
	degrees := make([]prune.Degree, len(ratios))
	for i, r := range ratios {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("serving: ladder ratio %v out of [0,1]", r)
		}
		degrees[i] = prune.Uniform([]string{"conv1", "conv2"}, r)
	}
	return BuildLadder(context.Background(), TinyNet, degrees, prune.L1Filter, engine.NewCache(h))
}
