package gpusim

import (
	"fmt"

	"ccperf/internal/cloud"
	"ccperf/internal/models"
)

// Per-GPU memory by device kind (Table 3: p2 instances expose 12 GB per
// K80 GPU, g3 expose 8 GB per M60 GPU).
const (
	k80MemBytes = 12 << 30
	m60MemBytes = 8 << 30
)

// Calibrated memory footprints for the two paper models: weight bytes are
// the fp32 parameter sizes; per-image bytes cover double-buffered
// activations plus im2col workspace, the dominant per-inference allocation
// in a Caffe-style engine.
const (
	caffenetWeightBytes    = 61_000_000 * 4
	caffenetPerImageBytes  = 24 << 20 // ~6 MB activations ×2 + im2col ~12 MB
	googlenetWeightBytes   = 7_000_000 * 4
	googlenetPerImageBytes = 22 << 20 // smaller planes than Caffenet (no 96×55² stage)
)

// memBytesFor returns the per-GPU memory of a device kind.
func memBytesFor(kind cloud.GPUKind) (int64, error) {
	switch kind {
	case cloud.K80:
		return k80MemBytes, nil
	case cloud.M60:
		return m60MemBytes, nil
	default:
		return 0, fmt.Errorf("gpusim: unknown GPU kind %q", kind)
	}
}

// footprint returns (weightBytes, perImageBytes) for a model run.
func footprint(m ModelRun) (int64, int64, error) {
	switch m.ModelName {
	case models.CaffenetName:
		return caffenetWeightBytes, caffenetPerImageBytes, nil
	case models.GooglenetName:
		return googlenetWeightBytes, googlenetPerImageBytes, nil
	}
	if m.Net == nil {
		return 0, 0, fmt.Errorf("gpusim: model %q has no memory calibration and no Net", m.ModelName)
	}
	c := m.Net.TotalCost()
	// Weights are shared across the batch; activations (in+out per layer,
	// already both counted in ActivationBytes) plus an im2col workspace
	// comparable to the activation volume scale per image.
	return c.WeightBytes, 2 * c.ActivationBytes, nil
}

// MemoryLimitedBatch returns the largest per-GPU batch whose working set
// fits in one GPU of the given kind, or an error if even a single image
// does not fit. This is the constraint that can force an application to
// use fewer images in flight than the saturation batch (Section 4.5.2's
// "requirements such as memory and storage").
func (s *Simulator) MemoryLimitedBatch(m ModelRun, kind cloud.GPUKind) (int, error) {
	mem, err := memBytesFor(kind)
	if err != nil {
		return 0, err
	}
	weights, perImage, err := footprint(m)
	if err != nil {
		return 0, err
	}
	free := mem - weights
	if free < perImage {
		return 0, fmt.Errorf("gpusim: model %q does not fit on a %s GPU (needs %d+%d bytes of %d)",
			m.ModelName, kind, weights, perImage, mem)
	}
	return int(free / perImage), nil
}

// MaxBatchFor returns b_i for an instance utilizing gpus GPUs, respecting
// both the saturation batch and the GPU memory capacity.
func (s *Simulator) MaxBatchFor(m ModelRun, inst *cloud.Instance, gpus int) (int, error) {
	if gpus <= 0 || gpus > inst.GPUs {
		return 0, fmt.Errorf("gpusim: instance %s has %d GPUs, requested %d", inst.Name, inst.GPUs, gpus)
	}
	memBatch, err := s.MemoryLimitedBatch(m, inst.GPU)
	if err != nil {
		return 0, err
	}
	per := perGPUSatBatch
	if memBatch < per {
		per = memBatch
	}
	return per * gpus, nil
}
