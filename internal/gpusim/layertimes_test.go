package gpusim

import (
	"math"
	"testing"

	"ccperf/internal/cloud"
	"ccperf/internal/models"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
)

func TestLayerTimesFallbackFollowsFLOPs(t *testing.T) {
	// For an uncalibrated model the per-layer split follows effective
	// FLOPs from the engine's accounting.
	s := New()
	k80, _ := s.Device(cloud.K80)
	net := nn.NewNet("custom", nn.Shape{C: 3, H: 32, W: 32})
	net.Add(
		nn.NewConv("heavy", 32, 3, 3, 1, 1, 1, 1, 1),
		nn.NewConv("light", 8, 1, 1, 1, 1, 0, 0, 1),
	)
	if err := net.Init(2); err != nil {
		t.Fatal(err)
	}
	lt, err := s.LayerTimes(ModelRun{ModelName: "custom", Net: net}, k80, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(lt) != 2 {
		t.Fatalf("%d layer times", len(lt))
	}
	if lt[0].Share <= lt[1].Share {
		t.Fatalf("heavy layer share %v should exceed light %v", lt[0].Share, lt[1].Share)
	}
	if math.Abs(lt[0].Share+lt[1].Share-1) > 1e-9 {
		t.Fatal("shares must sum to 1")
	}
	// Pruning the heavy layer shifts the split.
	if err := prune.Apply(net, prune.NewDegree("heavy", 0.9), prune.L1Filter); err != nil {
		t.Fatal(err)
	}
	lt2, err := s.LayerTimes(ModelRun{ModelName: "custom", Net: net}, k80, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if lt2[0].Share >= lt[0].Share {
		t.Fatalf("pruned heavy layer share %v should drop from %v", lt2[0].Share, lt[0].Share)
	}
}

func TestLayerTimesErrors(t *testing.T) {
	s := New()
	k80, _ := s.Device(cloud.K80)
	if _, err := s.LayerTimes(ModelRun{ModelName: models.CaffenetName}, k80, 1, 300); err == nil {
		t.Fatal("expected error without a Net")
	}
	// A network with zero work.
	empty := nn.NewNet("empty", nn.Shape{C: 1, H: 8, W: 8})
	empty.Add(nn.NewDropout("d", 0.5))
	if err := empty.Init(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LayerTimes(ModelRun{ModelName: "empty", Net: empty}, k80, 1, 10); err == nil {
		t.Fatal("expected error for zero-work network")
	}
}

func TestJitteredBatchTimeErrorPath(t *testing.T) {
	s := New()
	k80, _ := s.Device(cloud.K80)
	if _, err := s.JitteredBatchTime(ModelRun{ModelName: "mystery"}, k80, 1, 1, 1); err == nil {
		t.Fatal("expected error for uncalibrated model")
	}
	// Zero-jitter device returns base even for rep > 0.
	quiet := *k80
	quiet.JitterPct = 0
	a, err := s.JitteredBatchTime(ModelRun{ModelName: models.CaffenetName}, &quiet, 1, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.BatchTime(ModelRun{ModelName: models.CaffenetName}, &quiet, 1, 300)
	if a != b {
		t.Fatal("zero jitter must return base time")
	}
}

func TestGooglenetLayerTimesCalibrated(t *testing.T) {
	s := New()
	k80, _ := s.Device(cloud.K80)
	net := models.Googlenet()
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	lt, err := s.LayerTimes(ModelRun{ModelName: models.GooglenetName, Net: net}, k80, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	shares := map[string]float64{}
	sum := 0.0
	for _, l := range lt {
		shares[l.Name] = l.Share
		sum += l.Share
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("shares sum = %v", sum)
	}
	// conv2-3x3 dominates (its Figure 7 sweep removes ~30% of total time).
	if shares["conv2-3x3"] < 0.2 {
		t.Fatalf("conv2-3x3 share = %v", shares["conv2-3x3"])
	}
}
