package gpusim

import (
	"math"

	"ccperf/internal/models"
	"ccperf/internal/prune"
)

// Calibration constants. Every number here is read off the paper's text and
// figures (see DESIGN.md §5); together they make the simulator's *unpruned*
// behaviour match the published measurements, from which everything else in
// the reproduction is derived — mirroring how the paper derives its results
// from its own measurements.
const (
	// k80LaunchOverhead is the fixed per-batch cost on the K80 for a
	// Caffenet-depth network. Fit so that batch-1 Caffenet latency is
	// 0.09 s (Figure 4) given the saturated per-image work below.
	k80LaunchOverhead = 0.0445

	// satExp shapes the utilization ramp. Fit so u(1) ≈ 0.497, which
	// reconciles Figure 4's batch-1 latency with Figure 6's 19-minute
	// 50 000-image total at batch 300.
	satExp = 0.1226

	// m60SpeedFactor is the per-GPU speedup of the M60 over the K80.
	// Fit from Figure 12: the p2:g3 CAR ratio of ≈0.57:0.35 with
	// p2.xlarge at $0.90/h vs g3.4xlarge at $1.14/h requires
	// t_M60/t_K80 ≈ 0.485.
	m60SpeedFactor = 2.06

	// caffenetPerImage is w: saturated per-image work for unpruned
	// Caffenet on one K80, in seconds. 19 min for 50 000 images at batch
	// 300 → 167 batches × 6.826 s; (6.826 − launch)/300.
	caffenetPerImage = 0.022605

	// googlenetPerImage: 13 min → 167 × 4.671 s; (4.671 − launch_g)/300.
	googlenetPerImage = 0.015139

	// googlenetLaunchOverhead: Googlenet is ~3× deeper, so its fixed
	// per-batch cost is larger; fit from its 0.16 s batch-1 latency
	// (Figure 4) against its 13-minute saturated total (Figure 7).
	googlenetLaunchOverhead = 0.1290

	// googlenetOverheadPruneCoupling (ω): fraction of launch overhead
	// that pruning eliminates (whole-filter removal drops kernel tiles).
	// Fit so uniform 90 % pruning lands Googlenet batch-1 latency at
	// 0.10 s (Figure 4). Caffenet needs no coupling (ω = 0): its pruned
	// batch-1 latency already lands at 0.05 s.
	googlenetOverheadPruneCoupling = 0.462

	// caffenetSynergy (γ): super-additive time interaction between
	// pruning conv1 and conv2 together, R ×= exp(−γ·r1·r2). Fit from
	// Figure 8: conv1@30 %+conv2@50 % → 13 min while the individual
	// prunes give 18.4 and 16.7 min.
	caffenetSynergy = 1.458
)

// caffenetShares is Figure 3: the measured execution-time distribution
// across Caffenet layers (conv1 51 %, conv2 16 %, conv3–5 9/10/7 %, the
// rest ≈7 % split across fc and auxiliary layers).
var caffenetShares = map[string]float64{
	"conv1": 0.51,
	"conv2": 0.16,
	"conv3": 0.09,
	"conv4": 0.10,
	"conv5": 0.07,
	"fc1":   0.030,
	"fc2":   0.015,
	"fc3":   0.005,
	// Remaining 0.04 is spread over pool/norm/relu/softmax by the
	// simulator (uniformly across layers not listed here).
}

// caffenetPhi is the per-layer pruning time response: pruning layer l by
// ratio r multiplies total time by (1 − φ_l·r). conv1 and conv2 endpoints
// are Figure 6's measured ranges (19→16.6 and 19→14 min at 90 %); conv3–5
// follow the near-linear decreases of Figures 6(c–e).
var caffenetPhi = map[string]float64{
	"conv1": 0.1404,
	"conv2": 0.2924,
	"conv3": 0.1871,
	"conv4": 0.1637,
	"conv5": 0.1053,
}

// googlenetPhi covers the six selected layers of Figure 7 (conv2-3x3's
// 13→9 min endpoint dominates) plus a small default for the remaining
// 51 convolutions, applied in calibrationFor.
var googlenetPhi = map[string]float64{
	"conv1-7x7-s2":     0.1282,
	"conv2-3x3":        0.3419,
	"inception-3a-3x3": 0.045,
	"inception-4d-5x5": 0.035,
	"inception-4e-5x5": 0.035,
	"inception-5a-3x3": 0.025,
}

// googlenetDefaultPhi applies to Googlenet conv layers not listed above.
const googlenetDefaultPhi = 0.01

// googlenetShares gives Googlenet's per-layer time distribution, dominated
// by the two main convolution stages (consistent with the Figure 7 sweep
// ranges). Unlisted layers share the remainder proportional to FLOPs.
var googlenetShares = map[string]float64{
	"conv1-7x7-s2":     0.14,
	"conv2-3x3":        0.38,
	"inception-3a-3x3": 0.05,
	"inception-4d-5x5": 0.04,
	"inception-4e-5x5": 0.04,
	"inception-5a-3x3": 0.03,
}

// calibration bundles the per-model constants the simulator consumes.
type calibration struct {
	perImage         float64            // w: saturated per-image seconds on K80
	launchOverhead   float64            // α: fixed per-batch seconds on K80
	overheadCoupling float64            // ω: overhead reduction under pruning
	shares           map[string]float64 // Figure 3 layer time shares
	phi              map[string]float64 // per-layer time response slopes
	defaultPhi       float64            // slope for conv layers not in phi
	synergy          float64            // γ for the conv1×conv2 interaction
	synergyLayers    [2]string
}

// calibrationFor returns the calibration for a model name, or nil when the
// model is not calibrated (the simulator then uses FLOPs-based fallback).
func calibrationFor(model string) *calibration {
	switch model {
	case models.CaffenetName:
		return &calibration{
			perImage:         caffenetPerImage,
			launchOverhead:   k80LaunchOverhead,
			overheadCoupling: 0,
			shares:           caffenetShares,
			phi:              caffenetPhi,
			defaultPhi:       0,
			synergy:          caffenetSynergy,
			synergyLayers:    [2]string{"conv1", "conv2"},
		}
	case models.GooglenetName:
		return &calibration{
			perImage:         googlenetPerImage,
			launchOverhead:   googlenetLaunchOverhead,
			overheadCoupling: googlenetOverheadPruneCoupling,
			shares:           googlenetShares,
			phi:              googlenetPhi,
			defaultPhi:       googlenetDefaultPhi,
		}
	default:
		return nil
	}
}

// Response returns R(degree) ∈ (0,1]: the factor by which the degree of
// pruning multiplies per-image work, R = Π_l (1−φ_l·r_l) · exp(−γ·r₁·r₂).
func (c *calibration) Response(d prune.Degree) float64 {
	r := 1.0
	for layer, ratio := range d.Ratios {
		if ratio <= 0 {
			continue
		}
		phi, ok := c.phi[layer]
		if !ok {
			phi = c.defaultPhi
		}
		r *= 1 - phi*ratio
	}
	if c.synergy > 0 {
		r1 := d.Ratio(c.synergyLayers[0])
		r2 := d.Ratio(c.synergyLayers[1])
		if r1 > 0 && r2 > 0 {
			r *= math.Exp(-c.synergy * r1 * r2)
		}
	}
	if r < 0.01 {
		r = 0.01 // sparse execution never removes all work
	}
	return r
}

// LayerResponse returns the time factor for one layer under the degree,
// used to break total time into the per-layer view of Figure 3. The layer's
// own share absorbs its φ_l·r_l reduction (scaled by its share so the
// total matches Response within the share-weighted approximation).
func (c *calibration) LayerResponse(layer string, d prune.Degree) float64 {
	ratio := d.Ratio(layer)
	if ratio <= 0 {
		return 1
	}
	phi, ok := c.phi[layer]
	if !ok {
		phi = c.defaultPhi
	}
	share := c.shares[layer]
	if share <= 0 {
		return 1
	}
	f := 1 - phi*ratio/share
	if f < 0.02 {
		f = 0.02
	}
	return f
}
