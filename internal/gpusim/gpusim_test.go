package gpusim

import (
	"math"
	"testing"

	"ccperf/internal/cloud"
	"ccperf/internal/models"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
)

const w50k = 50_000

func sim(t *testing.T) *Simulator {
	t.Helper()
	return New()
}

func p2xl(t *testing.T) *cloud.Instance {
	t.Helper()
	i, err := cloud.ByName("p2.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func caffenetRun(d prune.Degree) ModelRun {
	return ModelRun{ModelName: models.CaffenetName, Degree: d}
}

func googlenetRun(d prune.Degree) ModelRun {
	return ModelRun{ModelName: models.GooglenetName, Degree: d}
}

// within asserts got is within tol (relative) of want.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s = %v, want %v ±%.0f%%", name, got, want, tol*100)
	}
}

func TestCaffenetUnprunedTotal19Min(t *testing.T) {
	s := sim(t)
	sec, err := s.TotalTime(caffenetRun(prune.Degree{}), p2xl(t), 1, w50k)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "Caffenet 50k total", sec/60, 19, 0.02)
}

func TestGooglenetUnprunedTotal13Min(t *testing.T) {
	s := sim(t)
	sec, err := s.TotalTime(googlenetRun(prune.Degree{}), p2xl(t), 1, w50k)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "Googlenet 50k total", sec/60, 13, 0.02)
}

func TestSingleInferenceLatencies(t *testing.T) {
	// Figure 4 endpoints: Caffenet 0.09→0.05 s, Googlenet 0.16→0.10 s
	// under uniform 0→90 % pruning of all conv layers, batch 1.
	s := sim(t)
	k80, _ := s.Device(cloud.K80)

	cn := models.Caffenet()
	gn := models.Googlenet()
	caffeLayers := models.CaffenetConvNames()
	var googLayers []string
	if err := gn.Init(1); err != nil {
		t.Fatal(err)
	}
	for _, c := range gn.ConvLayers() {
		googLayers = append(googLayers, c.Name())
	}
	_ = cn

	cases := []struct {
		name      string
		run       func(prune.Degree) ModelRun
		layers    []string
		at0, at90 float64
	}{
		{"caffenet", caffenetRun, caffeLayers, 0.09, 0.05},
		{"googlenet", googlenetRun, googLayers, 0.16, 0.10},
	}
	for _, c := range cases {
		t0, err := s.BatchTime(c.run(prune.Degree{}), k80, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		within(t, c.name+" batch-1 unpruned", t0, c.at0, 0.03)
		t90, err := s.BatchTime(c.run(prune.Uniform(c.layers, 0.9)), k80, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		within(t, c.name+" batch-1 @90%", t90, c.at90, 0.08)
	}
}

func TestFigure6SingleLayerEndpoints(t *testing.T) {
	// conv2@90% → ~14 min; conv1@90% → ~16.6 min (Figure 6 a–b).
	s := sim(t)
	inst := p2xl(t)
	conv2, err := s.TotalTime(caffenetRun(prune.NewDegree("conv2", 0.9)), inst, 1, w50k)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "conv2@90%", conv2/60, 14, 0.03)
	conv1, err := s.TotalTime(caffenetRun(prune.NewDegree("conv1", 0.9)), inst, 1, w50k)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "conv1@90%", conv1/60, 16.6, 0.03)
	// Ordering (Observation 2): conv2 gives the largest reduction,
	// conv1 the smallest, even though conv1 has the largest time share.
	if conv2 >= conv1 {
		t.Errorf("conv2@90%% (%v) must be faster than conv1@90%% (%v)", conv2, conv1)
	}
}

func TestFigure8MultiLayerPruning(t *testing.T) {
	// nonpruned 19, conv1-2 ≈13, all-conv ≈11 min (we land 12.5 / 9.8;
	// the shape — strict ordering and super-additive combination — holds).
	s := sim(t)
	inst := p2xl(t)
	non, _ := s.TotalTime(caffenetRun(prune.Degree{}), inst, 1, w50k)
	combo := prune.NewDegree("conv1", 0.3, "conv2", 0.5)
	c12, _ := s.TotalTime(caffenetRun(combo), inst, 1, w50k)
	all := prune.NewDegree("conv1", 0.3, "conv2", 0.5, "conv3", 0.5, "conv4", 0.5, "conv5", 0.5)
	ac, _ := s.TotalTime(caffenetRun(all), inst, 1, w50k)

	within(t, "conv1-2 combo", c12/60, 13, 0.08)
	within(t, "all-conv", ac/60, 11, 0.15)
	if !(ac < c12 && c12 < non) {
		t.Fatalf("ordering broken: %v < %v < %v expected", ac, c12, non)
	}

	// Super-additivity: combined reduction exceeds the sum of individual
	// reductions (Observation 3 mechanism, Figure 8 vs Figure 6).
	c1, _ := s.TotalTime(caffenetRun(prune.NewDegree("conv1", 0.3)), inst, 1, w50k)
	c2, _ := s.TotalTime(caffenetRun(prune.NewDegree("conv2", 0.5)), inst, 1, w50k)
	sumSavings := (non - c1) + (non - c2)
	comboSavings := non - c12
	if comboSavings <= sumSavings {
		t.Errorf("combo savings %v must exceed sum of individual savings %v", comboSavings, sumSavings)
	}
	// And individual values track Figure 8's discussion: 18.4 and 16.7 min.
	within(t, "conv1@30%", c1/60, 18.4, 0.03)
	within(t, "conv2@50%", c2/60, 16.7, 0.04)
}

func TestBatchSaturationCurve(t *testing.T) {
	// Figure 5: total time decreases with parallelism and saturates ≈300.
	s := sim(t)
	k80, _ := s.Device(cloud.K80)
	run := caffenetRun(prune.Degree{})
	total := func(b int) float64 {
		bt, err := s.BatchTime(run, k80, 1, b)
		if err != nil {
			t.Fatal(err)
		}
		return math.Ceil(w50k/float64(b)) * bt
	}
	t1, t30, t100, t300, t2000 := total(1), total(30), total(100), total(300), total(2000)
	if !(t1 > t30 && t30 > t100 && t100 > t300) {
		t.Fatalf("times must decrease with batch: %v %v %v %v", t1, t30, t100, t300)
	}
	// Beyond saturation the curve is flat to within 1%.
	if math.Abs(t300-t2000)/t300 > 0.01 {
		t.Errorf("beyond saturation: %v vs %v", t300, t2000)
	}
	// Before saturation there is still visible improvement (>3% from 100→300).
	if (t100-t300)/t100 < 0.01 {
		t.Errorf("100→300 improvement too small: %v → %v", t100, t300)
	}
}

func TestUtilizationMonotone(t *testing.T) {
	d, _ := New().Device(cloud.K80)
	prev := 0.0
	for _, b := range []int{1, 2, 4, 16, 64, 150, 300, 1000} {
		u := d.Utilization(b)
		if u < prev || u > 1 || (u == prev && prev < 1) {
			t.Fatalf("utilization not monotone in (0,1]: u(%d)=%v prev=%v", b, u, prev)
		}
		prev = u
	}
	if d.Utilization(300) != 1 {
		t.Fatal("u(satBatch) must be 1")
	}
}

func TestM60SpeedFactor(t *testing.T) {
	// Figure 12 calibration: t_M60/t_K80 ≈ 0.485 per GPU.
	s := sim(t)
	k80, _ := s.Device(cloud.K80)
	m60, _ := s.Device(cloud.M60)
	run := caffenetRun(prune.NewDegree("conv1", 0.2, "conv2", 0.2))
	tk, _ := s.BatchTime(run, k80, 1, 300)
	tm, _ := s.BatchTime(run, m60, 1, 300)
	within(t, "M60/K80 ratio", tm/tk, 0.485, 0.02)
}

func TestMultiGPUScaling(t *testing.T) {
	// Within a family, time for the full workload scales ~1/GPUs when the
	// batch scales with GPUs.
	s := sim(t)
	p28, err := cloud.ByName("p2.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	run := caffenetRun(prune.Degree{})
	t1, _ := s.TotalTime(run, p2xl(t), 1, w50k)
	t8, _ := s.TotalTime(run, p28, 8, w50k)
	ratio := t1 / t8
	if ratio < 6.5 || ratio > 9.5 {
		t.Fatalf("8-GPU speedup = %v, want ~8", ratio)
	}
}

func TestLayerTimesMatchFigure3(t *testing.T) {
	s := sim(t)
	k80, _ := s.Device(cloud.K80)
	net := models.Caffenet()
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	lt, err := s.LayerTimes(ModelRun{ModelName: models.CaffenetName, Degree: prune.Degree{}, Net: net}, k80, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	shares := map[string]float64{}
	var sum float64
	for _, l := range lt {
		shares[l.Name] = l.Share
		sum += l.Share
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("shares sum to %v", sum)
	}
	want := map[string]float64{"conv1": 0.51, "conv2": 0.16, "conv3": 0.09, "conv4": 0.10, "conv5": 0.07}
	for name, w := range want {
		if math.Abs(shares[name]-w) > 0.005 {
			t.Errorf("%s share = %v, want %v", name, shares[name], w)
		}
	}
}

func TestLayerTimesPrunedReduceOwnShare(t *testing.T) {
	s := sim(t)
	k80, _ := s.Device(cloud.K80)
	net := models.Caffenet()
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	d := prune.NewDegree("conv2", 0.9)
	lt, err := s.LayerTimes(ModelRun{ModelName: models.CaffenetName, Degree: d, Net: net}, k80, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lt {
		if l.Name == "conv2" && l.Share > 0.10 {
			t.Errorf("pruned conv2 share = %v, want well under unpruned 0.16", l.Share)
		}
	}
}

func TestFallbackUncalibratedModel(t *testing.T) {
	// A custom net times via effective FLOPs and speeds up under pruning.
	s := sim(t)
	k80, _ := s.Device(cloud.K80)
	net := nn.NewNet("custom", nn.Shape{C: 3, H: 64, W: 64})
	net.Add(
		nn.NewConv("c1", 16, 3, 3, 1, 1, 1, 1, 1),
		nn.NewReLU("r1"),
		nn.NewConv("c2", 32, 3, 3, 1, 1, 1, 1, 1),
		nn.NewFlatten("f"),
		nn.NewFC("fc", 10),
	)
	if err := net.Init(9); err != nil {
		t.Fatal(err)
	}
	dense, err := s.BatchTime(ModelRun{ModelName: "custom", Net: net}, k80, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := prune.Apply(net, prune.NewDegree("c2", 0.8), prune.L1Filter); err != nil {
		t.Fatal(err)
	}
	pruned, err := s.BatchTime(ModelRun{ModelName: "custom", Net: net}, k80, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if pruned >= dense {
		t.Fatalf("pruned %v must be faster than dense %v", pruned, dense)
	}
	// No net and no calibration → error.
	if _, err := s.BatchTime(ModelRun{ModelName: "mystery"}, k80, 1, 1); err == nil {
		t.Fatal("expected error for uncalibrated model without Net")
	}
}

func TestJitterDeterministicAndCancelledByMin(t *testing.T) {
	s := sim(t)
	k80, _ := s.Device(cloud.K80)
	run := caffenetRun(prune.Degree{})
	base, _ := s.BatchTime(run, k80, 1, 300)
	a1, _ := s.JitteredBatchTime(run, k80, 1, 300, 1)
	a2, _ := s.JitteredBatchTime(run, k80, 1, 300, 1)
	if a1 != a2 {
		t.Fatal("jitter must be deterministic per repetition")
	}
	b1, _ := s.JitteredBatchTime(run, k80, 1, 300, 2)
	if a1 == b1 {
		t.Fatal("different repetitions should jitter differently")
	}
	min := math.Min(base, math.Min(a1, b1))
	if min != base {
		t.Fatal("rep 0 (jitter-free) must be the minimum")
	}
	if a1 < base || a1 > base*1.05 {
		t.Fatalf("jitter out of range: base %v jittered %v", base, a1)
	}
}

func TestResponseBounds(t *testing.T) {
	cal := calibrationFor(models.CaffenetName)
	if cal == nil {
		t.Fatal("caffenet must be calibrated")
	}
	if r := cal.Response(prune.Degree{}); r != 1 {
		t.Fatalf("unpruned response = %v, want 1", r)
	}
	all := prune.Uniform(models.CaffenetConvNames(), 1.0)
	if r := cal.Response(all); r <= 0 || r >= 1 {
		t.Fatalf("full-prune response = %v, want (0,1)", r)
	}
}

func TestInstancePerfAdapter(t *testing.T) {
	s := sim(t)
	inst := p2xl(t)
	perf := InstancePerf{Sim: s, Run: caffenetRun(prune.Degree{})}
	if b := perf.MaxBatch(inst); b != 300 {
		t.Fatalf("MaxBatch = %d, want 300", b)
	}
	p28, _ := cloud.ByName("p2.8xlarge")
	if b := perf.MaxBatch(p28); b != 2400 {
		t.Fatalf("MaxBatch(8 GPU) = %d, want 2400", b)
	}
	one := InstancePerf{Sim: s, Run: caffenetRun(prune.Degree{}), GPUs: 1}
	if b := one.MaxBatch(p28); b != 300 {
		t.Fatalf("MaxBatch(limited to 1 GPU) = %d, want 300", b)
	}
	if perf.BatchTime(inst, 300) <= 0 {
		t.Fatal("BatchTime must be positive")
	}
}

func TestBatchTimeInputValidation(t *testing.T) {
	s := sim(t)
	k80, _ := s.Device(cloud.K80)
	if _, err := s.BatchTime(caffenetRun(prune.Degree{}), k80, 0, 10); err == nil {
		t.Fatal("expected error for 0 GPUs")
	}
	if _, err := s.BatchTime(caffenetRun(prune.Degree{}), k80, 1, 0); err == nil {
		t.Fatal("expected error for 0 batch")
	}
	if _, err := s.TotalTime(caffenetRun(prune.Degree{}), p2xl(t), 2, w50k); err == nil {
		t.Fatal("expected error for more GPUs than the instance has")
	}
}

func TestDeviceForUnknown(t *testing.T) {
	if _, err := DeviceFor(cloud.GPUKind("V100")); err == nil {
		t.Fatal("expected error for unknown GPU kind")
	}
}

// TestJitterDeterministicAcrossSimulators pins the property the engine
// cache's memoization soundness rests on: jittered measurements are a pure
// function of the run identity, with no per-Simulator state — two
// independent simulators agree on every (degree, device, gpus, batch, rep)
// point, so re-evaluating a cache key can never yield a different value.
func TestJitterDeterministicAcrossSimulators(t *testing.T) {
	s1, s2 := New(), New()
	for _, kind := range []cloud.GPUKind{cloud.K80, cloud.M60} {
		d1, err := s1.Device(kind)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := s2.Device(kind)
		if err != nil {
			t.Fatal(err)
		}
		for _, deg := range []prune.Degree{{}, prune.NewDegree("conv1", 0.3), prune.NewDegree("conv1", 0.5, "conv2", 0.7)} {
			run := caffenetRun(deg)
			for rep := 0; rep <= 3; rep++ {
				a, err := s1.JitteredBatchTime(run, d1, 1, 300, rep)
				if err != nil {
					t.Fatal(err)
				}
				b, err := s2.JitteredBatchTime(run, d2, 1, 300, rep)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("%s %s rep %d: %v vs %v", kind, deg.Label(), rep, a, b)
				}
			}
		}
	}
}
