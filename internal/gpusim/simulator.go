package gpusim

import (
	"fmt"
	"math"

	"ccperf/internal/cloud"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
	"ccperf/internal/telemetry"
)

// k80EffGFLOPS is the effective sustained throughput used for models
// without a calibration table: Caffenet's ~1.45 GFLOP forward pass divided
// by its calibrated 22.6 ms saturated per-image time.
const k80EffGFLOPS = 64.0

// perGPUSatBatch is the per-GPU parallel-inference saturation point
// (Figure 5). An instance's b_i is this times its GPU count.
const perGPUSatBatch = 300

// ModelRun identifies a (model, degree-of-pruning) pair to time. Net is
// optional for the two calibrated paper models and required for any other
// network, where timing falls back to effective-FLOP accounting of the
// actual (pruned) network.
type ModelRun struct {
	ModelName string
	Degree    prune.Degree
	Net       *nn.Net
}

// Simulator computes inference times for model runs on cloud GPU devices.
// The zero value is not usable; construct with New.
type Simulator struct {
	devices map[cloud.GPUKind]*Device
}

// New returns a simulator with the built-in K80 and M60 device models.
func New() *Simulator {
	k80, err := DeviceFor(cloud.K80)
	if err != nil {
		panic(err)
	}
	m60, err := DeviceFor(cloud.M60)
	if err != nil {
		panic(err)
	}
	return &Simulator{devices: map[cloud.GPUKind]*Device{cloud.K80: k80, cloud.M60: m60}}
}

// Device returns the device model for a GPU kind.
func (s *Simulator) Device(kind cloud.GPUKind) (*Device, error) {
	d, ok := s.devices[kind]
	if !ok {
		return nil, fmt.Errorf("gpusim: unknown GPU kind %q", kind)
	}
	return d, nil
}

// workAndOverhead returns (w·R, α·overheadFactor) — the pruned per-image
// work and fixed per-batch overhead on the K80 baseline, before device
// speed scaling.
func (s *Simulator) workAndOverhead(m ModelRun) (perImage, overhead float64, err error) {
	if cal := calibrationFor(m.ModelName); cal != nil {
		r := cal.Response(m.Degree)
		perImage = cal.perImage * r
		overhead = cal.launchOverhead * (1 - cal.overheadCoupling*(1-r))
		return perImage, overhead, nil
	}
	if m.Net == nil {
		return 0, 0, fmt.Errorf("gpusim: model %q is uncalibrated and has no Net for FLOP accounting", m.ModelName)
	}
	c := m.Net.TotalCost()
	perImage = float64(c.EffectiveFLOPs) / (k80EffGFLOPS * 1e9)
	// Overhead scales with depth relative to Caffenet's 23 layers.
	overhead = k80LaunchOverhead * float64(len(m.Net.Layers())) / 23.0
	return perImage, overhead, nil
}

// BatchTime returns the seconds to run one batch of b images on gpus GPUs
// of the given device (the batch splits evenly across GPUs).
func (s *Simulator) BatchTime(m ModelRun, dev *Device, gpus, b int) (float64, error) {
	if gpus <= 0 {
		return 0, fmt.Errorf("gpusim: non-positive GPU count %d", gpus)
	}
	if b <= 0 {
		return 0, fmt.Errorf("gpusim: non-positive batch %d", b)
	}
	perImage, overhead, err := s.workAndOverhead(m)
	if err != nil {
		return 0, err
	}
	perGPU := float64(b) / float64(gpus)
	u := dev.Utilization(int(math.Ceil(perGPU)))
	t := overhead/dev.SpeedFactor + perGPU*perImage/(u*dev.SpeedFactor)
	telemetry.Default.Counter("gpusim.batch_time_calls").Inc()
	telemetry.Default.Histogram("gpusim.batch_seconds", nil).Observe(t)
	return t, nil
}

// MaxBatch returns b_i for an instance utilizing the given GPU count.
func (s *Simulator) MaxBatch(gpus int) int { return perGPUSatBatch * gpus }

// TotalTime returns the seconds to infer w images on one instance with the
// given GPU count, running ⌈w/b⌉ saturated batches (Equations 2–3 for a
// single resource).
func (s *Simulator) TotalTime(m ModelRun, inst *cloud.Instance, gpus int, w int64) (float64, error) {
	if gpus <= 0 || gpus > inst.GPUs {
		return 0, fmt.Errorf("gpusim: instance %s has %d GPUs, requested %d", inst.Name, inst.GPUs, gpus)
	}
	dev, err := s.Device(inst.GPU)
	if err != nil {
		return 0, err
	}
	b := s.MaxBatch(gpus)
	bt, err := s.BatchTime(m, dev, gpus, b)
	if err != nil {
		return 0, err
	}
	n := math.Ceil(float64(w) / float64(b))
	return n * bt, nil
}

// JitteredBatchTime perturbs BatchTime with deterministic virtualization
// noise for repetition rep: cloud GPU instances vary run to run
// (Section 4.2.3), which the paper cancels by running each experiment
// three times and keeping the minimum. rep 0 is jitter-free.
func (s *Simulator) JitteredBatchTime(m ModelRun, dev *Device, gpus, b, rep int) (float64, error) {
	t, err := s.BatchTime(m, dev, gpus, b)
	if err != nil {
		return 0, err
	}
	if rep == 0 || dev.JitterPct == 0 {
		return t, nil
	}
	h := jitterHash(m.ModelName, m.Degree.Label(), gpus, b, rep)
	return t * (1 + dev.JitterPct*h), nil
}

// jitterHash returns a deterministic value in [0,1) from the run identity.
func jitterHash(model, degree string, gpus, b, rep int) float64 {
	h := uint64(1469598103934665603)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(model)
	mix(degree)
	h ^= uint64(gpus)<<32 | uint64(b)
	h *= 1099511628211
	h ^= uint64(rep)
	h *= 1099511628211
	return float64(h>>11) / (1 << 53)
}

// LayerTime is one layer's share of a batch execution (Figure 3).
type LayerTime struct {
	Name    string
	Kind    string
	Seconds float64
	Share   float64
}

// LayerTimes breaks one saturated batch's execution into per-layer times.
// For calibrated models the split follows the measured Figure 3 shares
// (with unlisted layers splitting the remainder uniformly); for other
// models it follows effective FLOPs.
func (s *Simulator) LayerTimes(m ModelRun, dev *Device, gpus, b int) ([]LayerTime, error) {
	if m.Net == nil {
		return nil, fmt.Errorf("gpusim: LayerTimes requires a Net")
	}
	total, err := s.BatchTime(m, dev, gpus, b)
	if err != nil {
		return nil, err
	}
	layers := m.Net.Layers()
	out := make([]LayerTime, 0, len(layers))

	if cal := calibrationFor(m.ModelName); cal != nil {
		// Weights: listed shares × their pruning response; others split
		// the leftover uniformly.
		weights := make([]float64, len(layers))
		rest := 1.0
		unlisted := 0
		for i, l := range layers {
			if sh, ok := cal.shares[l.Name()]; ok {
				weights[i] = sh * cal.LayerResponse(l.Name(), m.Degree)
				rest -= sh
			} else {
				unlisted++
			}
		}
		if rest < 0 {
			rest = 0
		}
		for i := range layers {
			if weights[i] == 0 && unlisted > 0 {
				weights[i] = rest / float64(unlisted)
			}
		}
		sum := 0.0
		for _, w := range weights {
			sum += w
		}
		for i, l := range layers {
			sec := total * weights[i] / sum
			out = append(out, LayerTime{Name: l.Name(), Kind: l.Kind(), Seconds: sec, Share: weights[i] / sum})
		}
		recordLayerTimes(out)
		return out, nil
	}

	costs := m.Net.LayerCosts()
	var sum float64
	for _, lc := range costs {
		sum += float64(lc.Cost.EffectiveFLOPs)
	}
	if sum == 0 {
		return nil, fmt.Errorf("gpusim: network has no work")
	}
	for _, lc := range costs {
		w := float64(lc.Cost.EffectiveFLOPs) / sum
		out = append(out, LayerTime{Name: lc.Layer.Name(), Kind: lc.Layer.Kind(), Seconds: total * w, Share: w})
	}
	recordLayerTimes(out)
	return out, nil
}

// recordLayerTimes publishes a layer split into the telemetry registry:
// one simulated-seconds histogram per layer kind ("gpusim.layer_seconds.conv",
// ".fc", …) so a characterization run exposes the Figure 3 shape at
// /metrics without re-deriving it.
func recordLayerTimes(lts []LayerTime) {
	reg := telemetry.Default
	reg.Counter("gpusim.layer_times_calls").Inc()
	for _, lt := range lts {
		reg.Histogram("gpusim.layer_seconds."+lt.Kind, nil).Observe(lt.Seconds)
	}
}

// InstancePerf adapts the simulator to cloud.Perf for a fixed model run,
// utilizing GPUs per instance (0 ⇒ all the instance has).
type InstancePerf struct {
	Sim  *Simulator
	Run  ModelRun
	GPUs int
}

// BatchTime implements cloud.Perf.
func (p InstancePerf) BatchTime(it *cloud.Instance, b int) float64 {
	dev, err := p.Sim.Device(it.GPU)
	if err != nil {
		panic(err)
	}
	g := p.gpus(it)
	t, err := p.Sim.BatchTime(p.Run, dev, g, b)
	if err != nil {
		panic(err)
	}
	return t
}

// MaxBatch implements cloud.Perf.
func (p InstancePerf) MaxBatch(it *cloud.Instance) int {
	return p.Sim.MaxBatch(p.gpus(it))
}

func (p InstancePerf) gpus(it *cloud.Instance) int {
	if p.GPUs > 0 && p.GPUs <= it.GPUs {
		return p.GPUs
	}
	return it.GPUs
}
