package gpusim

import (
	"strings"
	"testing"

	"ccperf/internal/cloud"
	"ccperf/internal/models"
	"ccperf/internal/nn"
)

func TestMemoryNotBindingForPaperModels(t *testing.T) {
	// Both paper models fit hundreds of images per GPU, so the saturation
	// batch (300) governs — the calibrated results stay intact.
	s := New()
	for _, model := range []string{models.CaffenetName, models.GooglenetName} {
		run := ModelRun{ModelName: model}
		for _, kind := range []cloud.GPUKind{cloud.K80, cloud.M60} {
			b, err := s.MemoryLimitedBatch(run, kind)
			if err != nil {
				t.Fatal(err)
			}
			if b < perGPUSatBatch {
				t.Errorf("%s on %s: memory batch %d below saturation %d", model, kind, b, perGPUSatBatch)
			}
		}
	}
	inst, _ := cloud.ByName("p2.8xlarge")
	got, err := s.MaxBatchFor(ModelRun{ModelName: models.CaffenetName}, inst, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2400 {
		t.Fatalf("MaxBatchFor = %d, want 2400", got)
	}
}

// hugeNet builds an uncalibrated model whose activations dominate memory.
func hugeNet(t *testing.T) *nn.Net {
	t.Helper()
	net := nn.NewNet("huge", nn.Shape{C: 64, H: 512, W: 512})
	net.Add(
		nn.NewConv("c1", 128, 3, 3, 1, 1, 1, 1, 1),
		nn.NewReLU("r1"),
	)
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestMemoryBindsForHugeModel(t *testing.T) {
	s := New()
	run := ModelRun{ModelName: "huge", Net: hugeNet(t)}
	// Activations: in 64·512²·4 ≈ 67 MB, out 128·512²·4 ≈ 134 MB →
	// ~0.4 GB/image on a 12 GB K80 → tens of images, below 300.
	b, err := s.MemoryLimitedBatch(run, cloud.K80)
	if err != nil {
		t.Fatal(err)
	}
	if b >= perGPUSatBatch || b < 1 {
		t.Fatalf("huge model memory batch = %d, want 1..299", b)
	}
	// The M60's 8 GB admits fewer images than the K80's 12 GB.
	bM, err := s.MemoryLimitedBatch(run, cloud.M60)
	if err != nil {
		t.Fatal(err)
	}
	if bM >= b {
		t.Fatalf("M60 batch %d should be below K80 batch %d", bM, b)
	}
	inst, _ := cloud.ByName("p2.xlarge")
	mb, err := s.MaxBatchFor(run, inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mb != b {
		t.Fatalf("MaxBatchFor = %d, want memory-limited %d", mb, b)
	}
}

func TestModelTooBigForGPU(t *testing.T) {
	s := New()
	// Activations alone: (512+1024)·1024²·4 ≈ 6 GB, doubled past 8 GB.
	net := nn.NewNet("giant", nn.Shape{C: 512, H: 1024, W: 1024})
	net.Add(nn.NewConv("c1", 1024, 3, 3, 1, 1, 1, 1, 1))
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	_, err := s.MemoryLimitedBatch(ModelRun{ModelName: "giant", Net: net}, cloud.M60)
	if err == nil || !strings.Contains(err.Error(), "does not fit") {
		t.Fatalf("err = %v, want does-not-fit", err)
	}
}

func TestMemoryValidation(t *testing.T) {
	s := New()
	if _, err := s.MemoryLimitedBatch(ModelRun{ModelName: "mystery"}, cloud.K80); err == nil {
		t.Fatal("expected error for uncalibrated model without Net")
	}
	if _, err := s.MemoryLimitedBatch(ModelRun{ModelName: models.CaffenetName}, cloud.GPUKind("V100")); err == nil {
		t.Fatal("expected error for unknown GPU kind")
	}
	inst, _ := cloud.ByName("p2.xlarge")
	if _, err := s.MaxBatchFor(ModelRun{ModelName: models.CaffenetName}, inst, 5); err == nil {
		t.Fatal("expected error for too many GPUs")
	}
}
