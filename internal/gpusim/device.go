// Package gpusim simulates CNN inference execution on cloud GPU instances.
//
// The paper's substrate is physical: Caffe with sparse-BLAS extensions on
// EC2 K80/M60 GPUs. Offline and in pure Go, we replace it with a calibrated
// execution model. For the two paper CNNs the simulator reproduces the
// published measurements (Figures 3–8): per-layer time shares, single-
// inference latency, batch-saturation behaviour and the per-layer pruning
// time response. For any other network it falls back to first-principles
// accounting — effective (sparsity-adjusted) FLOPs from the real inference
// engine divided by calibrated device throughput — so the same code path
// also executes arbitrary models.
//
// Timing model for one batch of b images on one GPU:
//
//	batchTime = launchOverhead + (perImage·b·R(degree)) / u(b)
//	u(b) = min(1, (b/satBatch)^satExp)        (utilization ramp, Figure 5)
//
// R(degree) is the pruning time-response surface (calibration.go). For a
// multi-GPU instance the batch splits evenly across GPUs.
package gpusim

import (
	"fmt"
	"math"

	"ccperf/internal/cloud"
)

// Device models one GPU kind's execution characteristics.
type Device struct {
	Kind cloud.GPUKind
	// Cores is the CUDA core count (K80: 2496, M60: 2048 — Section 4.1.2).
	Cores int
	// SpeedFactor scales per-image work relative to the K80 baseline
	// (higher is faster). Calibrated from Figure 12's p2-vs-g3 CAR gap.
	SpeedFactor float64
	// LaunchOverhead is the fixed per-batch kernel-launch cost in seconds,
	// independent of pruning. Calibrated from Figure 4's batch-1 latency.
	LaunchOverhead float64
	// SatBatch is the parallel-inference count that saturates the GPU
	// (Figure 5: ≈300 on the K80).
	SatBatch int
	// SatExp shapes the utilization ramp u(b) = (b/SatBatch)^SatExp.
	SatExp float64
	// JitterPct is the virtualization noise amplitude (multi-tenancy,
	// Section 4.2.3). Zero disables jitter; measurements use run-3-take-min
	// to cancel it, as the paper does.
	JitterPct float64
}

// DeviceFor returns the device model backing a GPU kind.
func DeviceFor(kind cloud.GPUKind) (*Device, error) {
	switch kind {
	case cloud.K80:
		return &Device{
			Kind:           cloud.K80,
			Cores:          2496,
			SpeedFactor:    1.0,
			LaunchOverhead: k80LaunchOverhead,
			SatBatch:       300,
			SatExp:         satExp,
			JitterPct:      0.03,
		}, nil
	case cloud.M60:
		return &Device{
			Kind:           cloud.M60,
			Cores:          2048,
			SpeedFactor:    m60SpeedFactor,
			LaunchOverhead: k80LaunchOverhead * 0.8,
			SatBatch:       300,
			SatExp:         satExp,
			JitterPct:      0.03,
		}, nil
	default:
		return nil, fmt.Errorf("gpusim: unknown GPU kind %q", kind)
	}
}

// Utilization returns u(b) ∈ (0,1], the fraction of peak throughput reached
// at batch size b on one GPU.
func (d *Device) Utilization(b int) float64 {
	if b <= 0 {
		return math.SmallestNonzeroFloat64
	}
	if b >= d.SatBatch {
		return 1
	}
	return math.Pow(float64(b)/float64(d.SatBatch), d.SatExp)
}
