// Package metrics defines the paper's two accuracy-performance metrics
// (Section 3.5): Time Accuracy Ratio (TAR = t/a) and Cost Accuracy Ratio
// (CAR = c/a). Both measure the time or cost spent per unit of accuracy;
// lower is better.
package metrics

import (
	"fmt"
	"math"
)

// TAR returns t/a: the time (seconds) to achieve one unit of accuracy,
// for accuracy a ∈ (0,1]. Any input outside the measurable domain — zero,
// negative or NaN accuracy, negative or NaN time — yields +Inf, so useless
// configurations sort last. The NaN check must be explicit: `NaN <= 0` is
// false, so a bare `a <= 0` guard would let NaN flow through the division
// and break every sort comparing against the result.
func TAR(tSeconds, a float64) float64 {
	if math.IsNaN(a) || a <= 0 || math.IsNaN(tSeconds) || tSeconds < 0 {
		return math.Inf(1)
	}
	return tSeconds / a
}

// CAR returns c/a: the cost (dollars) to achieve one unit of accuracy.
// Degenerate inputs (NaN or non-positive accuracy, NaN or negative cost)
// yield +Inf, same as TAR.
func CAR(cost, a float64) float64 {
	if math.IsNaN(a) || a <= 0 || math.IsNaN(cost) || cost < 0 {
		return math.Inf(1)
	}
	return cost / a
}

// Record bundles one application/resource configuration's measured
// quantities with its derived TAR and CAR, the measurement-phase output of
// Section 3.3.
type Record struct {
	Label   string
	Seconds float64
	Cost    float64
	Top1    float64
	Top5    float64
}

// TARTop1 returns TAR against Top-1 accuracy.
func (r Record) TARTop1() float64 { return TAR(r.Seconds, r.Top1) }

// TARTop5 returns TAR against Top-5 accuracy.
func (r Record) TARTop5() float64 { return TAR(r.Seconds, r.Top5) }

// CARTop1 returns CAR against Top-1 accuracy.
func (r Record) CARTop1() float64 { return CAR(r.Cost, r.Top1) }

// CARTop5 returns CAR against Top-5 accuracy.
func (r Record) CARTop5() float64 { return CAR(r.Cost, r.Top5) }

// String renders the record compactly.
func (r Record) String() string {
	return fmt.Sprintf("%s: t=%.1fs c=$%.3f top1=%.1f%% top5=%.1f%% TAR=%.1f CAR=%.3f",
		r.Label, r.Seconds, r.Cost, r.Top1*100, r.Top5*100, r.TARTop1(), r.CARTop1())
}
