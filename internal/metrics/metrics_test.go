package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTAR(t *testing.T) {
	if got := TAR(100, 0.5); got != 200 {
		t.Fatalf("TAR = %v, want 200", got)
	}
	if !math.IsInf(TAR(100, 0), 1) {
		t.Fatal("TAR at zero accuracy must be +Inf")
	}
	if !math.IsInf(TAR(100, -1), 1) {
		t.Fatal("TAR at negative accuracy must be +Inf")
	}
}

func TestCAR(t *testing.T) {
	if got := CAR(3, 0.75); got != 4 {
		t.Fatalf("CAR = %v, want 4", got)
	}
	if !math.IsInf(CAR(1, 0), 1) {
		t.Fatal("CAR at zero accuracy must be +Inf")
	}
}

// TestDegenerateInputs pins the "useless configurations sort last"
// contract over the whole degenerate domain. `NaN <= 0` is false, so
// before the explicit NaN guard a NaN accuracy produced a NaN ratio —
// which compares false with everything and silently corrupts the sorts in
// internal/explore.
func TestDegenerateInputs(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name       string
		numer, acc float64
		wantInf    bool
	}{
		{"valid", 100, 0.5, false},
		{"zero numerator", 0, 0.5, false},
		{"zero accuracy", 100, 0, true},
		{"negative accuracy", 100, -0.1, true},
		{"NaN accuracy", 100, nan, true},
		{"NaN numerator", nan, 0.5, true},
		{"negative numerator", -1, 0.5, true},
		{"both NaN", nan, nan, true},
		{"accuracy above one still divides", 50, 2, false}, // out of domain but well-defined
	}
	for _, tc := range cases {
		for fname, f := range map[string]func(float64, float64) float64{"TAR": TAR, "CAR": CAR} {
			got := f(tc.numer, tc.acc)
			if math.IsNaN(got) {
				t.Fatalf("%s/%s: got NaN — degenerate inputs must map to +Inf", fname, tc.name)
			}
			if gotInf := math.IsInf(got, 1); gotInf != tc.wantInf {
				t.Fatalf("%s/%s: IsInf=%v, want %v (got %v)", fname, tc.name, gotInf, tc.wantInf, got)
			}
			if !tc.wantInf && got != tc.numer/tc.acc {
				t.Fatalf("%s/%s: got %v, want %v", fname, tc.name, got, tc.numer/tc.acc)
			}
		}
	}
}

// TestDegenerateSortsLast is the contract the guard exists for: any
// degenerate record must order strictly after any real one under an
// ascending TAR sort.
func TestDegenerateSortsLast(t *testing.T) {
	good := TAR(1e9, 0.01) // terrible but real
	for _, bad := range []float64{TAR(10, math.NaN()), TAR(math.NaN(), 0.5), TAR(10, 0)} {
		if !(good < bad) {
			t.Fatalf("real TAR %v must sort before degenerate %v", good, bad)
		}
	}
}

func TestLowerIsBetterOrdering(t *testing.T) {
	// Same time, higher accuracy → lower (better) TAR.
	if TAR(100, 0.8) >= TAR(100, 0.4) {
		t.Fatal("higher accuracy must improve TAR")
	}
	// Same accuracy, lower cost → lower CAR.
	if CAR(10, 0.5) >= CAR(20, 0.5) {
		t.Fatal("lower cost must improve CAR")
	}
}

func TestRecordDerived(t *testing.T) {
	r := Record{Label: "x", Seconds: 120, Cost: 0.6, Top1: 0.5, Top5: 0.8}
	if r.TARTop1() != 240 || r.TARTop5() != 150 {
		t.Fatalf("TAR = %v/%v", r.TARTop1(), r.TARTop5())
	}
	if math.Abs(r.CARTop1()-1.2) > 1e-9 || math.Abs(r.CARTop5()-0.75) > 1e-9 {
		t.Fatalf("CAR = %v/%v", r.CARTop1(), r.CARTop5())
	}
	if !strings.Contains(r.String(), "x:") {
		t.Fatalf("String = %q", r.String())
	}
}

// Property: TAR and CAR scale linearly in their numerator and inversely in
// accuracy.
func TestScalingProperty(t *testing.T) {
	f := func(tRaw, aRaw uint16) bool {
		tv := float64(tRaw)/100 + 0.01
		a := float64(aRaw%100)/100 + 0.005
		return math.Abs(TAR(2*tv, a)-2*TAR(tv, a)) < 1e-9 &&
			math.Abs(TAR(tv, a)-CAR(tv, a)) < 1e-9 &&
			TAR(tv, a/2) > TAR(tv, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
