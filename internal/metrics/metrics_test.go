package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTAR(t *testing.T) {
	if got := TAR(100, 0.5); got != 200 {
		t.Fatalf("TAR = %v, want 200", got)
	}
	if !math.IsInf(TAR(100, 0), 1) {
		t.Fatal("TAR at zero accuracy must be +Inf")
	}
	if !math.IsInf(TAR(100, -1), 1) {
		t.Fatal("TAR at negative accuracy must be +Inf")
	}
}

func TestCAR(t *testing.T) {
	if got := CAR(3, 0.75); got != 4 {
		t.Fatalf("CAR = %v, want 4", got)
	}
	if !math.IsInf(CAR(1, 0), 1) {
		t.Fatal("CAR at zero accuracy must be +Inf")
	}
}

func TestLowerIsBetterOrdering(t *testing.T) {
	// Same time, higher accuracy → lower (better) TAR.
	if TAR(100, 0.8) >= TAR(100, 0.4) {
		t.Fatal("higher accuracy must improve TAR")
	}
	// Same accuracy, lower cost → lower CAR.
	if CAR(10, 0.5) >= CAR(20, 0.5) {
		t.Fatal("lower cost must improve CAR")
	}
}

func TestRecordDerived(t *testing.T) {
	r := Record{Label: "x", Seconds: 120, Cost: 0.6, Top1: 0.5, Top5: 0.8}
	if r.TARTop1() != 240 || r.TARTop5() != 150 {
		t.Fatalf("TAR = %v/%v", r.TARTop1(), r.TARTop5())
	}
	if math.Abs(r.CARTop1()-1.2) > 1e-9 || math.Abs(r.CARTop5()-0.75) > 1e-9 {
		t.Fatalf("CAR = %v/%v", r.CARTop1(), r.CARTop5())
	}
	if !strings.Contains(r.String(), "x:") {
		t.Fatalf("String = %q", r.String())
	}
}

// Property: TAR and CAR scale linearly in their numerator and inversely in
// accuracy.
func TestScalingProperty(t *testing.T) {
	f := func(tRaw, aRaw uint16) bool {
		tv := float64(tRaw)/100 + 0.01
		a := float64(aRaw%100)/100 + 0.005
		return math.Abs(TAR(2*tv, a)-2*TAR(tv, a)) < 1e-9 &&
			math.Abs(TAR(tv, a)-CAR(tv, a)) < 1e-9 &&
			TAR(tv, a/2) > TAR(tv, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
