package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refMatMul is the textbook triple loop the optimized kernels are checked
// against. Accumulation is ascending k per element, the order every
// production path preserves, so comparisons can be exact.
func refMatMul(a, b *Matrix, bias []float32, relu bool) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			if bias != nil {
				s = bias[i]
			}
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			if relu && s < 0 {
				s = 0
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randMatrix(rng *rand.Rand, rows, cols int, sparsity float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Float64() >= sparsity {
			m.Data[i] = float32(rng.NormFloat64())
		}
	}
	return m
}

func matricesEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: dims %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("%s: data[%d] = %v, want %v", name, i, v, want.Data[i])
		}
	}
}

func TestMatMulIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Rows chosen to exercise the quad loop, the remainder rows, and
	// degenerate dims.
	for _, dims := range [][3]int{{4, 7, 9}, {5, 3, 8}, {7, 16, 2}, {1, 5, 5}, {3, 1, 1}, {8, 8, 8}, {0, 3, 4}, {2, 0, 3}, {2, 3, 0}} {
		a := randMatrix(rng, dims[0], dims[1], 0.2)
		b := randMatrix(rng, dims[1], dims[2], 0)
		want := refMatMul(a, b, nil, false)
		got := NewMatrix(dims[0], dims[2])
		for i := range got.Data {
			got.Data[i] = float32(math.NaN()) // dirty scratch must be overwritten
		}
		MatMulInto(got, a, b)
		matricesEqual(t, "MatMulInto", got, want)
		matricesEqual(t, "MatMul", MatMul(a, b), want)
	}
}

func TestMatMulFusedIntoBiasRelu(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 6, 11, 0)
	b := randMatrix(rng, 11, 13, 0)
	bias := make([]float32, 6)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	for _, relu := range []bool{false, true} {
		want := refMatMul(a, b, bias, relu)
		got := NewMatrix(6, 13)
		MatMulFusedInto(got, a, b, bias, relu)
		matricesEqual(t, "MatMulFusedInto", got, want)
	}
	if relu := refMatMul(a, b, bias, true); relu.Data[0] < 0 {
		t.Fatal("reference relu left a negative value")
	}
}

func TestTiledGEMMMatchesFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("large tiled GEMM in -short mode")
	}
	// B must exceed gemmCacheBudget to engage the tiled path:
	// 1500×1500×4 B ≈ 8.6 MiB > 8 MiB.
	const k, n = 1500, 1500
	if k*n*4 <= gemmCacheBudget {
		t.Fatalf("test shape no longer exceeds gemmCacheBudget=%d", gemmCacheBudget)
	}
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 9, k, 0)
	b := randMatrix(rng, k, n, 0)
	bias := make([]float32, 9)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	want := NewMatrix(9, n)
	gemmRowsFlat(want, a, b, bias, 0, 9)
	got := NewMatrix(9, n)
	gemmRowsTiled(got, a, b, bias, 0, 9)
	matricesEqual(t, "gemmRowsTiled", got, want) // bit-identical: same per-element k order
}

func TestParallelMatMulFusedIntoMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// 150×150 > ParallelThreshold elements so workers actually engage.
	a := randMatrix(rng, 150, 40, 0)
	b := randMatrix(rng, 40, 150, 0)
	bias := make([]float32, 150)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	want := NewMatrix(150, 150)
	MatMulFusedInto(want, a, b, bias, true)
	for _, workers := range []int{2, 3, 8} {
		got := NewMatrix(150, 150)
		ParallelMatMulFusedInto(got, a, b, bias, true, workers)
		matricesEqual(t, "ParallelMatMulFusedInto", got, want)
	}
}

func TestMatVecFusedInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 7, 12, 0.3)
	x := make([]float32, 12)
	bias := make([]float32, 7)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	plain := MatVec(a, x)
	fused := make([]float32, 7)
	MatVecFusedInto(fused, a, x, bias, true)
	for i := range fused {
		want := plain[i] + bias[i]
		if want < 0 {
			want = 0
		}
		if fused[i] != want {
			t.Fatalf("fused[%d] = %v, want %v", i, fused[i], want)
		}
	}
}

func TestSpMMFusedIntoMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := randMatrix(rng, 9, 14, 0.6)
	b := randMatrix(rng, 14, 10, 0)
	bias := make([]float32, 9)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	csr := ToCSR(w)
	for _, relu := range []bool{false, true} {
		want := refMatMul(w, b, bias, relu)
		got := NewMatrix(9, 10)
		for i := range got.Data {
			got.Data[i] = -999 // dirty
		}
		SpMMFusedInto(got, csr, b, bias, relu)
		// CSR visits the same nonzeros in ascending k; zeros contribute
		// exactly 0 to the reference, so results are bit-identical.
		matricesEqual(t, "SpMMFusedInto", got, want)
	}
	plain := SpMM(csr, b)
	matricesEqual(t, "SpMM", plain, refMatMul(w, b, nil, false))
}

func TestSpMVFusedInto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := randMatrix(rng, 8, 11, 0.5)
	x := make([]float32, 11)
	bias := make([]float32, 8)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	csr := ToCSR(w)
	plain := SpMV(csr, x)
	fused := make([]float32, 8)
	SpMVFusedInto(fused, csr, x, bias, true)
	for i := range fused {
		want := plain[i] + bias[i]
		if want < 0 {
			want = 0
		}
		if fused[i] != want {
			t.Fatalf("fused[%d] = %v, want %v", i, fused[i], want)
		}
	}
}

func TestIm2ColIntoMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	geoms := []ConvGeom{
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 2, InH: 9, InW: 7, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2},
		{InC: 1, InH: 11, InW: 11, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 0, PadW: 0},
		{InC: 2, InH: 10, InW: 10, KH: 4, KW: 4, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{InC: 1, InH: 6, InW: 6, KH: 6, KW: 6, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
	}
	for _, g := range geoms {
		if err := g.Validate(); err != nil {
			t.Fatalf("geom %+v: %v", g, err)
		}
		input := make([]float32, g.InC*g.InH*g.InW)
		for i := range input {
			input[i] = float32(rng.NormFloat64())
		}
		want := Im2Col(g, input)
		got := NewMatrix(want.Rows, want.Cols)
		for i := range got.Data {
			got.Data[i] = float32(math.Inf(1)) // dirty scratch: pads must be rewritten to zero
		}
		Im2ColInto(g, input, got)
		matricesEqual(t, "Im2ColInto", got, want)
	}
}

func TestMatrixReset(t *testing.T) {
	var m Matrix
	data := []float32{1, 2, 3, 4, 5, 6}
	m.Reset(data, 2, 3)
	if m.Rows != 2 || m.Cols != 3 || m.At(1, 2) != 6 {
		t.Fatalf("Reset header wrong: %+v", m)
	}
	if allocs := testing.AllocsPerRun(100, func() { m.Reset(data, 3, 2) }); allocs != 0 {
		t.Fatalf("Matrix.Reset allocs = %v, want 0", allocs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched Reset dims")
		}
	}()
	m.Reset(data, 2, 2)
}

func TestTensorSetData(t *testing.T) {
	tt := New(2, 2)
	data := make([]float32, 12)
	for i := range data {
		data[i] = float32(i)
	}
	tt.SetData(data, 3, 4)
	if tt.Dim(0) != 3 || tt.Dim(1) != 4 || tt.At(2, 3) != 11 {
		t.Fatalf("SetData header wrong: shape %v", tt.Shape)
	}
	// Steady-state rebinds with rank ≤ the header's capacity are alloc-free.
	if allocs := testing.AllocsPerRun(100, func() { tt.SetData(data, 4, 3) }); allocs != 0 {
		t.Fatalf("SetData allocs = %v, want 0", allocs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched SetData volume")
		}
	}()
	tt.SetData(data, 5, 5)
}

// BenchmarkMatMulInto times the allocation-free GEMM at the Caffenet conv2
// shape — the same product BenchmarkMatMul measures with allocation.
func BenchmarkMatMulInto(b *testing.B) {
	const rows, inner, cols = 256, 1200, 729
	w := NewMatrix(rows, inner)
	x := NewMatrix(inner, cols)
	for i := range w.Data {
		w.Data[i] = float32(i%13) - 6
	}
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	dst := NewMatrix(rows, cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, w, x)
	}
}

// BenchmarkIm2ColInto times the allocation-free lowering on the Caffenet
// conv2 geometry.
func BenchmarkIm2ColInto(b *testing.B) {
	g := ConvGeom{InC: 48, InH: 27, InW: 27, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	input := make([]float32, g.InC*g.InH*g.InW)
	for i := range input {
		input[i] = float32(i%11) - 5
	}
	dst := NewMatrix(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2ColInto(g, input, dst)
	}
}
