package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixSetCloneSparsity(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone aliases data")
	}
	if got := m.Sparsity(); math.Abs(got-5.0/6) > 1e-9 {
		t.Fatalf("Sparsity = %v", got)
	}
	if (&Matrix{}).Sparsity() != 0 {
		t.Fatal("empty matrix sparsity")
	}
}

func TestMatrixConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"NewMatrix-negative":    func() { NewMatrix(-1, 3) },
		"MatrixFromSlice-wrong": func() { MatrixFromSlice([]float32{1, 2}, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestParallelMatMulSmallFallsBackSerial(t *testing.T) {
	// Tiny product takes the serial path; workers clamp to rows.
	a := MatrixFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := MatrixFromSlice([]float32{5, 6, 7, 8}, 2, 2)
	got := ParallelMatMul(a, b, 100)
	want := MatMul(a, b)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("parallel fallback differs")
		}
	}
	// Large product with explicit worker count exercises the parallel path.
	big := NewMatrix(64, 64)
	for i := range big.Data {
		big.Data[i] = float32(i % 9)
	}
	p := ParallelMatMul(big, big, 3)
	s := MatMul(big, big)
	for i := range s.Data {
		if p.Data[i] != s.Data[i] {
			t.Fatal("parallel big product differs")
		}
	}
}

func TestParallelMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParallelMatMul(NewMatrix(2, 3), NewMatrix(4, 2), 2)
}

func TestMatVecAndSpMVMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MatVec": func() { MatVec(NewMatrix(2, 3), []float32{1}) },
		"SpMV":   func() { SpMV(ToCSR(NewMatrix(2, 3)), []float32{1}) },
		"SpMM":   func() { SpMM(ToCSR(NewMatrix(2, 3)), NewMatrix(2, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCSRSparsityAndEmpty(t *testing.T) {
	m := MatrixFromSlice([]float32{0, 1, 0, 0}, 2, 2)
	if got := ToCSR(m).Sparsity(); got != 0.75 {
		t.Fatalf("CSR sparsity = %v", got)
	}
	empty := ToCSR(NewMatrix(0, 0))
	if empty.Sparsity() != 0 {
		t.Fatal("empty CSR sparsity")
	}
}

func TestCol2ImAdjointProperty(t *testing.T) {
	// <Im2Col(x), Y> == <x, Col2Im(Y)> — the defining adjoint identity
	// backprop relies on.
	g := ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	rng := rand.New(rand.NewSource(9))
	x := make([]float32, g.InC*g.InH*g.InW)
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	cols := Im2Col(g, x)
	y := NewMatrix(cols.Rows, cols.Cols)
	for i := range y.Data {
		y.Data[i] = rng.Float32() - 0.5
	}
	var lhs float64
	for i := range cols.Data {
		lhs += float64(cols.Data[i]) * float64(y.Data[i])
	}
	back := Col2Im(g, y)
	var rhs float64
	for i := range x {
		rhs += float64(x[i]) * float64(back[i])
	}
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Fatalf("adjoint identity broken: %v vs %v", lhs, rhs)
	}
}

func TestCol2ImShapePanics(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong cols shape")
		}
	}()
	Col2Im(g, NewMatrix(3, 3))
}

func TestTensorMiscCoverage(t *testing.T) {
	tt := FromSlice([]float32{-1, 2, -3}, 3)
	if got := tt.AbsSum(); got != 6 {
		t.Fatalf("AbsSum = %v", got)
	}
	if s := tt.String(); !strings.Contains(s, "Tensor[3]") {
		t.Fatalf("String = %q", s)
	}
	if (&Tensor{}).Sparsity() != 0 {
		t.Fatal("empty tensor sparsity")
	}
	// Reshape volume mismatch panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected Reshape panic")
			}
		}()
		tt.Reshape(2, 2)
	}()
	// AddScaled mismatch panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected AddScaled panic")
			}
		}()
		tt.AddScaled(New(5), 1)
	}()
	// offset rank mismatch panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected At panic")
			}
		}()
		tt.At(0, 0)
	}()
	// ArgMax empty panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected ArgMax panic")
			}
		}()
		(&Tensor{}).ArgMax()
	}()
	// TopK too large panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected TopK panic")
			}
		}()
		tt.TopK(9)
	}()
}
