package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchMatrix(rows, cols int, density float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.Float32() - 0.5
		}
	}
	return m
}

// BenchmarkMatMul measures the dense GEMM kernel at the Caffenet conv2
// shape (the hottest kernel of the inference engine).
func BenchmarkMatMul(b *testing.B) {
	a := benchMatrix(256, 1200, 1, 1)
	x := benchMatrix(1200, 729, 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(a, x)
	}
}

// BenchmarkParallelMatMul measures the row-parallel GEMM at worker counts.
func BenchmarkParallelMatMul(b *testing.B) {
	a := benchMatrix(256, 1200, 1, 1)
	x := benchMatrix(1200, 729, 1, 2)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ParallelMatMul(a, x, w)
			}
		})
	}
}

// BenchmarkSpMM measures the sparse kernel pruned layers execute through.
func BenchmarkSpMM(b *testing.B) {
	for _, density := range []float64{0.5, 0.1} {
		s := ToCSR(benchMatrix(256, 1200, density, 3))
		x := benchMatrix(1200, 729, 1, 4)
		b.Run(fmt.Sprintf("density=%.0f%%", density*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SpMM(s, x)
			}
		})
	}
}

// BenchmarkIm2Col measures the convolution lowering at Caffenet conv2
// geometry.
func BenchmarkIm2Col(b *testing.B) {
	g := ConvGeom{InC: 48, InH: 27, InW: 27, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	in := make([]float32, g.InC*g.InH*g.InW)
	for i := range in {
		in[i] = float32(i%7) - 3
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Im2Col(g, in)
	}
}

// BenchmarkToCSR measures sparse-structure construction after pruning.
func BenchmarkToCSR(b *testing.B) {
	m := benchMatrix(256, 1200, 0.5, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ToCSR(m)
	}
}
