// Package tensor provides dense and sparse numerical containers and the
// linear-algebra kernels (GEMM, im2col) that the CNN inference engine in
// internal/nn is built on. Everything is float32, matching the precision
// CNN inference frameworks use on GPU.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major N-dimensional array of float32.
// The zero value is an empty tensor.
type Tensor struct {
	Shape   []int
	Data    []float32
	strides []int
}

// New allocates a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
	t.computeStrides()
	return t
}

// FromSlice wraps data in a tensor of the given shape. The data is not
// copied. It panics if len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	t.computeStrides()
	return t
}

func (t *Tensor) computeStrides() {
	t.strides = make([]int, len(t.Shape))
	s := 1
	for i := len(t.Shape) - 1; i >= 0; i-- {
		t.strides[i] = s
		s *= t.Shape[i]
	}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// SetData rebinds t to data with the given shape, reusing the header's
// Shape and stride storage so steady-state rebinds do not allocate. This
// is how workspace-pooled tensor headers are recycled across forward
// calls. It panics if len(data) does not match the shape volume.
func (t *Tensor) SetData(data []float32, shape ...int) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Copy shape before boxing so the variadic slice does not
			// escape on the hot (non-panicking) path.
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, append([]int(nil), shape...)))
		}
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", append([]int(nil), shape...), n, len(data)))
	}
	t.Shape = append(t.Shape[:0], shape...)
	t.Data = data
	if cap(t.strides) < len(shape) {
		t.strides = make([]int, len(shape))
	} else {
		t.strides = t.strides[:len(shape)]
	}
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		t.strides[i] = s
		s *= shape[i]
	}
}

// Reshape returns a view with a new shape covering the same data.
// It panics if the volumes differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.Shape, len(t.Data), shape, n))
	}
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	v.computeStrides()
	return v
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	clear(t.Data)
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddScaled adds s*o to t element-wise in place.
// It panics if shapes mismatch in volume.
func (t *Tensor) AddScaled(o *Tensor, s float32) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddScaled volume mismatch")
	}
	for i := range t.Data {
		t.Data[i] += s * o.Data[i]
	}
}

// Sum returns the sum of all elements in float64 for stability.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// AbsSum returns the L1 norm of all elements.
func (t *Tensor) AbsSum() float64 {
	var s float64
	for _, v := range t.Data {
		s += math.Abs(float64(v))
	}
	return s
}

// MaxAbs returns the largest absolute element value, or 0 for an empty tensor.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// NNZ returns the number of non-zero elements.
func (t *Tensor) NNZ() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of elements that are exactly zero, in [0,1].
// An empty tensor has sparsity 0.
func (t *Tensor) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return 1 - float64(t.NNZ())/float64(len(t.Data))
}

// ArgMax returns the index of the largest element. Ties resolve to the
// earliest index. It panics on an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bv := 0, t.Data[0]
	for i, v := range t.Data {
		if v > bv {
			best, bv = i, v
		}
	}
	return best
}

// TopK returns the indices of the k largest elements in descending value
// order. It panics if k exceeds the element count.
func (t *Tensor) TopK(k int) []int {
	if k > len(t.Data) {
		panic(fmt.Sprintf("tensor: TopK k=%d > len=%d", k, len(t.Data)))
	}
	// Simple selection: k is small (e.g. 5 for Top-5 accuracy).
	idx := make([]int, 0, k)
	used := make([]bool, len(t.Data))
	for j := 0; j < k; j++ {
		best := -1
		var bv float32
		for i, v := range t.Data {
			if used[i] {
				continue
			}
			if best < 0 || v > bv {
				best, bv = i, v
			}
		}
		used[best] = true
		idx = append(idx, best)
	}
	return idx
}

// String renders a compact description, not full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v nnz=%d", t.Shape, t.NNZ())
}
