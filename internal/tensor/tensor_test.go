package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	if tt.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", tt.Rank())
	}
	for i, want := range []int{2, 3, 4} {
		if tt.Dim(i) != want {
			t.Errorf("Dim(%d) = %d, want %d", i, tt.Dim(i), want)
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(3, 4, 5)
	tt.Set(42, 1, 2, 3)
	if got := tt.At(1, 2, 3); got != 42 {
		t.Fatalf("At = %v, want 42", got)
	}
	// Row-major offset: 1*20 + 2*5 + 3 = 33.
	if tt.Data[33] != 42 {
		t.Fatalf("expected offset 33 set, data[33]=%v", tt.Data[33])
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	tt.At(2, 0)
}

func TestFromSliceWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong data length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	tt := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	v := tt.Reshape(3, 2)
	v.Set(99, 0, 1)
	if tt.At(0, 1) != 99 {
		t.Fatal("Reshape must alias underlying data")
	}
}

func TestCloneIndependent(t *testing.T) {
	tt := FromSlice([]float32{1, 2}, 2)
	c := tt.Clone()
	c.Data[0] = 9
	if tt.Data[0] != 1 {
		t.Fatal("Clone must not alias data")
	}
}

func TestFillZeroScale(t *testing.T) {
	tt := New(4)
	tt.Fill(2)
	tt.Scale(3)
	if got := tt.Sum(); got != 24 {
		t.Fatalf("Sum = %v, want 24", got)
	}
	tt.Zero()
	if got := tt.Sum(); got != 0 {
		t.Fatalf("Sum after Zero = %v, want 0", got)
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	a.AddScaled(b, 0.5)
	want := []float32{6, 12, 18}
	for i, w := range want {
		if a.Data[i] != w {
			t.Errorf("a[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
}

func TestSparsityAndNNZ(t *testing.T) {
	tt := FromSlice([]float32{0, 1, 0, 2}, 4)
	if tt.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", tt.NNZ())
	}
	if got := tt.Sparsity(); got != 0.5 {
		t.Fatalf("Sparsity = %v, want 0.5", got)
	}
}

func TestArgMaxAndTopK(t *testing.T) {
	tt := FromSlice([]float32{3, 9, 1, 9, 5}, 5)
	if got := tt.ArgMax(); got != 1 {
		t.Fatalf("ArgMax = %d, want 1 (earliest tie)", got)
	}
	top := tt.TopK(3)
	want := []int{1, 3, 4}
	for i, w := range want {
		if top[i] != w {
			t.Fatalf("TopK = %v, want %v", top, want)
		}
	}
}

func TestMaxAbs(t *testing.T) {
	tt := FromSlice([]float32{-7, 3, 5}, 3)
	if got := tt.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := MatrixFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MatrixFromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 2))
}

func TestParallelMatMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(37, 53)
	b := NewMatrix(53, 29)
	for i := range a.Data {
		a.Data[i] = rng.Float32() - 0.5
	}
	for i := range b.Data {
		b.Data[i] = rng.Float32() - 0.5
	}
	s := MatMul(a, b)
	for _, w := range []int{1, 2, 4, 8} {
		p := ParallelMatMul(a, b, w)
		for i := range s.Data {
			if math.Abs(float64(s.Data[i]-p.Data[i])) > 1e-5 {
				t.Fatalf("workers=%d: mismatch at %d: %v vs %v", w, i, s.Data[i], p.Data[i])
			}
		}
	}
}

func TestMatVec(t *testing.T) {
	a := MatrixFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := MatVec(a, []float32{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MatVec = %v, want [3 7]", y)
	}
}

func TestTranspose(t *testing.T) {
	a := MatrixFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("Transpose shape %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("Transpose values wrong")
	}
}

func TestCSRRoundTrip(t *testing.T) {
	m := MatrixFromSlice([]float32{0, 1, 0, 2, 0, 0, 3, 0, 4}, 3, 3)
	c := ToCSR(m)
	if c.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", c.NNZ())
	}
	d := c.ToDense()
	for i := range m.Data {
		if d.Data[i] != m.Data[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	if c.At(2, 0) != 3 || c.At(1, 1) != 0 {
		t.Fatal("CSR.At wrong")
	}
}

func TestSpMMMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(20, 30)
	for i := range a.Data {
		if rng.Float64() < 0.3 { // 70% sparse
			a.Data[i] = rng.Float32() - 0.5
		}
	}
	b := NewMatrix(30, 17)
	for i := range b.Data {
		b.Data[i] = rng.Float32() - 0.5
	}
	dense := MatMul(a, b)
	sparse := SpMM(ToCSR(a), b)
	for i := range dense.Data {
		if math.Abs(float64(dense.Data[i]-sparse.Data[i])) > 1e-5 {
			t.Fatalf("SpMM mismatch at %d", i)
		}
	}
}

func TestSpMVMatchesMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix(15, 25)
	for i := range a.Data {
		if rng.Float64() < 0.4 {
			a.Data[i] = rng.Float32() - 0.5
		}
	}
	x := make([]float32, 25)
	for i := range x {
		x[i] = rng.Float32()
	}
	want := MatVec(a, x)
	got := SpMV(ToCSR(a), x)
	for i := range want {
		if math.Abs(float64(want[i]-got[i])) > 1e-5 {
			t.Fatalf("SpMV mismatch at %d", i)
		}
	}
}

// Property: CSR round-trip preserves any dense matrix exactly.
func TestCSRRoundTripProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		cols := 1 + len(vals)%7
		rows := (len(vals) + cols - 1) / cols
		padded := make([]float32, rows*cols)
		copy(padded, vals)
		// Replace NaN: NaN != NaN would break comparison, and weights are
		// never NaN in practice.
		for i, v := range padded {
			if math.IsNaN(float64(v)) {
				padded[i] = 0
			}
		}
		m := MatrixFromSlice(padded, rows, cols)
		d := ToCSR(m).ToDense()
		for i := range m.Data {
			if d.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sparsity of CSR equals sparsity of the dense source.
func TestCSRSparsityProperty(t *testing.T) {
	f := func(seed int64, sparseTenths uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := float64(sparseTenths%11) / 10
		m := NewMatrix(8, 9)
		for i := range m.Data {
			if rng.Float64() >= p {
				m.Data[i] = rng.Float32() + 0.1
			}
		}
		return ToCSR(m).NNZ() == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity layout.
	g := ConvGeom{InC: 2, InH: 3, InW: 3, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	in := make([]float32, 18)
	for i := range in {
		in[i] = float32(i)
	}
	m := Im2Col(g, in)
	if m.Rows != 2 || m.Cols != 9 {
		t.Fatalf("shape %dx%d, want 2x9", m.Rows, m.Cols)
	}
	for i, v := range in {
		if m.Data[i] != v {
			t.Fatalf("identity layout broken at %d", i)
		}
	}
}

func TestIm2ColConvMatchesDirect(t *testing.T) {
	// Compare im2col+GEMM convolution against direct nested-loop conv.
	g := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	in := make([]float32, g.InC*g.InH*g.InW)
	for i := range in {
		in[i] = rng.Float32() - 0.5
	}
	outC := 4
	w := NewMatrix(outC, g.InC*g.KH*g.KW)
	for i := range w.Data {
		w.Data[i] = rng.Float32() - 0.5
	}
	got := MatMul(w, Im2Col(g, in))

	oh, ow := g.OutH(), g.OutW()
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for c := 0; c < g.InC; c++ {
					for kh := 0; kh < g.KH; kh++ {
						for kw := 0; kw < g.KW; kw++ {
							iy := oy*g.StrideH - g.PadH + kh
							ix := ox*g.StrideW - g.PadW + kw
							if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
								continue
							}
							s += w.At(oc, (c*g.KH+kh)*g.KW+kw) * in[c*g.InH*g.InW+iy*g.InW+ix]
						}
					}
				}
				if d := math.Abs(float64(s - got.At(oc, oy*ow+ox))); d > 1e-4 {
					t.Fatalf("conv mismatch at oc=%d oy=%d ox=%d: diff %v", oc, oy, ox, d)
				}
			}
		}
	}
}

func TestConvGeomOutDims(t *testing.T) {
	// Caffenet conv1: 224x224x3, 11x11 kernel, stride 4 → 55x55 (with pad 2
	// per the Caffe prototxt — the paper's Table 1 output size).
	g := ConvGeom{InC: 3, InH: 224, InW: 224, KH: 11, KW: 11, StrideH: 4, StrideW: 4, PadH: 2, PadW: 2}
	// (224 + 4 - 11)/4 + 1 = 55 with pad 2? (224+4-11)=217, /4=54, +1=55.
	if g.OutH() != 55 || g.OutW() != 55 {
		t.Fatalf("conv1 out = %dx%d, want 55x55", g.OutH(), g.OutW())
	}
}

func TestConvGeomValidate(t *testing.T) {
	bad := []ConvGeom{
		{InC: 0, InH: 1, InW: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 1, InW: 1, KH: 0, KW: 1, StrideH: 1, StrideW: 1},
		{InC: 1, InH: 1, InW: 1, KH: 1, KW: 1, StrideH: 0, StrideW: 1},
		{InC: 1, InH: 1, InW: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1, PadH: -1},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, StrideH: 1, StrideW: 1},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("case %d: expected validation error for %+v", i, g)
		}
	}
	good := ConvGeom{InC: 3, InH: 224, InW: 224, KH: 11, KW: 11, StrideH: 4, StrideW: 4, PadH: 2, PadW: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestConvFLOPs(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 4, InW: 4, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	// out 2x2, macs = 5 filters * 12 * 4 = 240, flops = 480
	if got := ConvFLOPs(g, 5); got != 480 {
		t.Fatalf("ConvFLOPs = %d, want 480", got)
	}
}
