package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major 2-D view. Rows*Cols == len(Data).
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// MatrixFromSlice wraps data without copying.
func MatrixFromSlice(data []float32, rows, cols int) *Matrix {
	if rows*cols != len(data) {
		panic(fmt.Sprintf("tensor: matrix %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Reset rebinds the matrix header to data with the given dims, without
// allocating — the workspace path reuses one header across forward calls.
func (m *Matrix) Reset(data []float32, rows, cols int) {
	if rows*cols != len(data) {
		panic(fmt.Sprintf("tensor: matrix %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data)))
	}
	m.Rows, m.Cols, m.Data = rows, cols, data
}

// At returns element (r,c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set stores v at (r,c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a slice aliasing row r.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// NNZ returns the number of non-zero entries.
func (m *Matrix) NNZ() int {
	n := 0
	for _, v := range m.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the zero fraction in [0,1].
func (m *Matrix) Sparsity() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return 1 - float64(m.NNZ())/float64(len(m.Data))
}

// GEMM cache-blocking parameters (see docs/KERNELS.md). The kernel is
// tiled over j and k, but the tiles engage only when the B operand
// exceeds gemmCacheBudget: the scalar inner loop is ALU-bound whenever B
// is LLC-resident — every model-zoo conv GEMM in this repo — and there
// tiling is pure loop overhead (measured +15–30% on the Caffenet conv2
// shape). Oversized products fall back to a blockK×blockJ B panel
// (2 MiB) that stays cache-resident while every A row quad streams over
// it. Accumulation order per output element is ascending k regardless of
// tiling, so blocked and unblocked paths produce bit-identical results.
const (
	gemmBlockJ      = 1024
	gemmBlockK      = 512
	gemmCacheBudget = 8 << 20
)

// ParallelThreshold is the dst element count below which row-parallel GEMM
// dispatch falls back to the serial kernel: goroutine fan-out costs more
// than it saves on small products.
const ParallelThreshold = 1 << 14

// MatMul computes C = A × B into a freshly allocated matrix.
// It panics on dimension mismatch.
func MatMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A × B into dst, overwriting it. dst must be
// a.Rows × b.Cols and must not alias a or b. It panics on mismatch.
func MatMulInto(dst, a, b *Matrix) {
	MatMulFusedInto(dst, a, b, nil, false)
}

// MatMulFusedInto computes C = A × B into dst with a fused epilogue: each
// output row i is initialized to bias[i] (zero when bias is nil) before
// accumulation, and relu clamps the finished rows to max(0, ·) — the
// conv/fc fast path runs GEMM, bias and activation as one kernel call
// instead of three passes over the output.
func MatMulFusedInto(dst, a, b *Matrix, bias []float32, relu bool) {
	checkGEMM("MatMul", dst, a, b, bias)
	gemmRows(dst, a, b, bias, relu, 0, a.Rows)
}

// ParallelMatMul computes C = A × B splitting rows of A across workers.
// workers <= 0 uses GOMAXPROCS.
func ParallelMatMul(a, b *Matrix, workers int) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	ParallelMatMulFusedInto(c, a, b, nil, false, workers)
	return c
}

// ParallelMatMulInto computes C = A × B into dst, splitting rows of A
// across workers. Small products (dst smaller than ParallelThreshold
// elements) run serially.
func ParallelMatMulInto(dst, a, b *Matrix, workers int) {
	ParallelMatMulFusedInto(dst, a, b, nil, false, workers)
}

// ParallelMatMulFusedInto is MatMulFusedInto with rows of A split across
// workers (≤ 0 uses GOMAXPROCS). The epilogue is row-local, so each worker
// fuses bias and activation for its own row range.
func ParallelMatMulFusedInto(dst, a, b *Matrix, bias []float32, relu bool, workers int) {
	checkGEMM("ParallelMatMul", dst, a, b, bias)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.Rows*b.Cols < ParallelThreshold {
		gemmRows(dst, a, b, bias, relu, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for r0 := 0; r0 < a.Rows; r0 += chunk {
		r1 := r0 + chunk
		if r1 > a.Rows {
			r1 = a.Rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			gemmRows(dst, a, b, bias, relu, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

func checkGEMM(kernel string, dst, a, b *Matrix, bias []float32) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: %s %dx%d × %dx%d", kernel, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s dst %dx%d, want %dx%d", kernel, dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if bias != nil && len(bias) != a.Rows {
		panic(fmt.Sprintf("tensor: %s bias len %d, want %d", kernel, len(bias), a.Rows))
	}
}

// gemmRows computes rows [r0,r1) of C = A×B with register blocking (quads
// of A rows share each streamed B row), bias row initialization and an
// optional ReLU epilogue. B operands within gemmCacheBudget — every
// model-zoo shape — take the flat single-tile path; larger products go
// through the j/k-tiled panel walk.
func gemmRows(dst, a, b *Matrix, bias []float32, relu bool, r0, r1 int) {
	if b.Cols == 0 {
		return
	}
	if a.Cols*b.Cols*4 <= gemmCacheBudget {
		gemmRowsFlat(dst, a, b, bias, r0, r1)
	} else {
		gemmRowsTiled(dst, a, b, bias, r0, r1)
	}
	if relu {
		reluRows(dst, r0, r1)
	}
}

// initRow seeds one output row with its bias value (zero when bias is nil).
func initRow(ci []float32, bias []float32, i int) {
	if bias == nil {
		clear(ci)
		return
	}
	v := bias[i]
	for j := range ci {
		ci[j] = v
	}
}

// axpy4 accumulates one streamed B row into four output row segments:
// cX[j] += avX·bk[j]. It is deliberately a noinline leaf — with only the
// j-loop state live, the four row pointers stay in registers; inlined
// into the k loop the register allocator spills them to the stack on
// every iteration (measured ~30% slower on the Caffenet conv2 shape).
//
//go:noinline
func axpy4(bk, c0, c1, c2, c3 []float32, av0, av1, av2, av3 float32) {
	c0 = c0[:len(bk)]
	c1 = c1[:len(bk)]
	c2 = c2[:len(bk)]
	c3 = c3[:len(bk)]
	for j, bv := range bk {
		c0[j] += av0 * bv
		c1[j] += av1 * bv
		c2[j] += av2 * bv
		c3[j] += av3 * bv
	}
}

// gemmQuad accumulates four output row segments against their A rows:
// cX[j] += aX[k]·b[k·stride+j] for k in [0,len(a0)). There is no
// zero-skip branch: it pays ~15% on dense weights and sparse ones
// execute through CSR instead.
func gemmQuad(c0, c1, c2, c3, a0, a1, a2, a3, b []float32, stride int) {
	w := len(c0)
	a1 = a1[:len(a0)]
	a2 = a2[:len(a0)]
	a3 = a3[:len(a0)]
	for k := range a0 {
		axpy4(b[k*stride:k*stride+w], c0, c1, c2, c3, a0[k], a1[k], a2[k], a3[k])
	}
}

// gemmRow is the single-row remainder kernel: ci[j] += ai[k]·b[k·stride+j].
// Unlike the quad kernel it skips zero A entries — with one row the branch
// is cheap and pruned-but-dense weights still benefit.
func gemmRow(ci, ai, b []float32, stride int) {
	w := len(ci)
	for k, av := range ai {
		if av == 0 {
			continue
		}
		bk := b[k*stride : k*stride+w]
		ci := ci[:len(bk)]
		for j, bv := range bk {
			ci[j] += av * bv
		}
	}
}

// gemmRowsFlat is the in-cache fast path: full-width rows, no j/k tiling.
func gemmRowsFlat(dst, a, b *Matrix, bias []float32, r0, r1 int) {
	n := b.Cols
	kTot := a.Cols
	i := r0
	for ; i+4 <= r1; i += 4 {
		c0 := dst.Data[(i+0)*n : (i+1)*n]
		c1 := dst.Data[(i+1)*n : (i+2)*n]
		c2 := dst.Data[(i+2)*n : (i+3)*n]
		c3 := dst.Data[(i+3)*n : (i+4)*n]
		initRow(c0, bias, i+0)
		initRow(c1, bias, i+1)
		initRow(c2, bias, i+2)
		initRow(c3, bias, i+3)
		gemmQuad(c0, c1, c2, c3,
			a.Data[(i+0)*kTot:(i+1)*kTot],
			a.Data[(i+1)*kTot:(i+2)*kTot],
			a.Data[(i+2)*kTot:(i+3)*kTot],
			a.Data[(i+3)*kTot:(i+4)*kTot],
			b.Data, n)
	}
	for ; i < r1; i++ {
		ci := dst.Data[i*n : (i+1)*n]
		initRow(ci, bias, i)
		gemmRow(ci, a.Data[i*kTot:(i+1)*kTot], b.Data, n)
	}
}

// gemmRowsTiled walks B in blockK×blockJ panels so each panel stays
// cache-resident while every A row quad streams over it. Per-element
// accumulation order is still ascending k, so results are bit-identical
// to the flat path.
func gemmRowsTiled(dst, a, b *Matrix, bias []float32, r0, r1 int) {
	n := b.Cols
	kTot := a.Cols
	for i := r0; i < r1; i++ {
		initRow(dst.Data[i*n:(i+1)*n], bias, i)
	}
	for jj := 0; jj < n; jj += gemmBlockJ {
		jw := gemmBlockJ
		if jj+jw > n {
			jw = n - jj
		}
		for kk := 0; kk < kTot; kk += gemmBlockK {
			kw := kk + gemmBlockK
			if kw > kTot {
				kw = kTot
			}
			// B panel for this tile, offset so row k of the panel
			// starts at element k·n.
			bp := b.Data[kk*n+jj:]
			i := r0
			for ; i+4 <= r1; i += 4 {
				gemmQuad(
					dst.Data[(i+0)*n+jj:(i+0)*n+jj+jw],
					dst.Data[(i+1)*n+jj:(i+1)*n+jj+jw],
					dst.Data[(i+2)*n+jj:(i+2)*n+jj+jw],
					dst.Data[(i+3)*n+jj:(i+3)*n+jj+jw],
					a.Data[(i+0)*kTot+kk:(i+0)*kTot+kw],
					a.Data[(i+1)*kTot+kk:(i+1)*kTot+kw],
					a.Data[(i+2)*kTot+kk:(i+2)*kTot+kw],
					a.Data[(i+3)*kTot+kk:(i+3)*kTot+kw],
					bp, n)
			}
			for ; i < r1; i++ {
				gemmRow(dst.Data[i*n+jj:i*n+jj+jw],
					a.Data[i*kTot+kk:i*kTot+kw], bp, n)
			}
		}
	}
}

// reluRows clamps rows [r0,r1) of m to max(0, ·) in place.
func reluRows(m *Matrix, r0, r1 int) {
	seg := m.Data[r0*m.Cols : r1*m.Cols]
	for i, v := range seg {
		if v < 0 {
			seg[i] = 0
		}
	}
}

// MatVec computes y = A × x. It panics on dimension mismatch.
func MatVec(a *Matrix, x []float32) []float32 {
	y := make([]float32, a.Rows)
	MatVecInto(y, a, x)
	return y
}

// MatVecInto computes y = A × x into y (len a.Rows), overwriting it.
func MatVecInto(y []float32, a *Matrix, x []float32) {
	MatVecFusedInto(y, a, x, nil, false)
}

// MatVecFusedInto computes y = A × x + bias with an optional ReLU clamp,
// into y. bias may be nil (zero). This is the fully-connected fast path.
func MatVecFusedInto(y []float32, a *Matrix, x []float32, bias []float32, relu bool) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec %dx%d × %d", a.Rows, a.Cols, len(x)))
	}
	if len(y) != a.Rows {
		panic(fmt.Sprintf("tensor: MatVec dst len %d, want %d", len(y), a.Rows))
	}
	if bias != nil && len(bias) != a.Rows {
		panic(fmt.Sprintf("tensor: MatVec bias len %d, want %d", len(bias), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		if bias != nil {
			s += bias[i]
		}
		if relu && s < 0 {
			s = 0
		}
		y[i] = s
	}
}

// Transpose returns Aᵀ.
func Transpose(a *Matrix) *Matrix {
	t := NewMatrix(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			t.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return t
}
