package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major 2-D view. Rows*Cols == len(Data).
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// MatrixFromSlice wraps data without copying.
func MatrixFromSlice(data []float32, rows, cols int) *Matrix {
	if rows*cols != len(data) {
		panic(fmt.Sprintf("tensor: matrix %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r,c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set stores v at (r,c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a slice aliasing row r.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// NNZ returns the number of non-zero entries.
func (m *Matrix) NNZ() int {
	n := 0
	for _, v := range m.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the zero fraction in [0,1].
func (m *Matrix) Sparsity() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return 1 - float64(m.NNZ())/float64(len(m.Data))
}

// MatMul computes C = A × B with a cache-friendly ikj loop order.
// It panics on dimension mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	matMulInto(a, b, c, 0, a.Rows)
	return c
}

// matMulInto computes rows [r0,r1) of C = A×B.
func matMulInto(a, b, c *Matrix, r0, r1 int) {
	n := b.Cols
	for i := r0; i < r1; i++ {
		ci := c.Data[i*n : (i+1)*n]
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		for k, av := range ai {
			if av == 0 {
				continue
			}
			bk := b.Data[k*n : (k+1)*n]
			for j, bv := range bk {
				ci[j] += av * bv
			}
		}
	}
}

// ParallelMatMul computes C = A × B splitting rows of A across workers.
// workers <= 0 uses GOMAXPROCS.
func ParallelMatMul(a, b *Matrix, workers int) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: ParallelMatMul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	c := NewMatrix(a.Rows, b.Cols)
	if workers <= 1 || a.Rows*b.Cols < 1<<14 {
		matMulInto(a, b, c, 0, a.Rows)
		return c
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for r0 := 0; r0 < a.Rows; r0 += chunk {
		r1 := r0 + chunk
		if r1 > a.Rows {
			r1 = a.Rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			matMulInto(a, b, c, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
	return c
}

// MatVec computes y = A × x. It panics on dimension mismatch.
func MatVec(a *Matrix, x []float32) []float32 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("tensor: MatVec %dx%d × %d", a.Rows, a.Cols, len(x)))
	}
	y := make([]float32, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Transpose returns Aᵀ.
func Transpose(a *Matrix) *Matrix {
	t := NewMatrix(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			t.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return t
}
