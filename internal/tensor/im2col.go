package tensor

import "fmt"

// ConvGeom describes a 2-D convolution geometry on CHW inputs.
type ConvGeom struct {
	InC, InH, InW    int // input channels, height, width
	KH, KW           int // kernel height, width
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Validate reports whether the geometry is internally consistent.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: non-positive input dims %dx%dx%d", g.InC, g.InH, g.InW)
	case g.KH <= 0 || g.KW <= 0:
		return fmt.Errorf("tensor: non-positive kernel %dx%d", g.KH, g.KW)
	case g.StrideH <= 0 || g.StrideW <= 0:
		return fmt.Errorf("tensor: non-positive stride %dx%d", g.StrideH, g.StrideW)
	case g.PadH < 0 || g.PadW < 0:
		return fmt.Errorf("tensor: negative padding %dx%d", g.PadH, g.PadW)
	case g.InH+2*g.PadH < g.KH || g.InW+2*g.PadW < g.KW:
		return fmt.Errorf("tensor: kernel %dx%d larger than padded input %dx%d",
			g.KH, g.KW, g.InH+2*g.PadH, g.InW+2*g.PadW)
	}
	return nil
}

// Im2Col lowers a CHW input image to a (InC*KH*KW) × (OutH*OutW) matrix so
// convolution becomes GEMM, the formulation GPU frameworks (and the paper's
// Caffe substrate) use. input length must be InC*InH*InW.
func Im2Col(g ConvGeom, input []float32) *Matrix {
	m := NewMatrix(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	Im2ColInto(g, input, m)
	return m
}

// Im2ColInto lowers input into dst, overwriting every element (padded
// positions are written as zero, so a dirty scratch matrix is fine). dst
// must be (InC*KH*KW) × (OutH*OutW). Unit horizontal stride — the common
// case for every conv in the model zoo past the stem — takes a contiguous
// copy fast path per output row.
func Im2ColInto(g ConvGeom, input []float32, dst *Matrix) {
	if len(input) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input len %d != %d", len(input), g.InC*g.InH*g.InW))
	}
	oh, ow := g.OutH(), g.OutW()
	if dst.Rows != g.InC*g.KH*g.KW || dst.Cols != oh*ow {
		panic(fmt.Sprintf("tensor: Im2Col dst %dx%d, want %dx%d", dst.Rows, dst.Cols, g.InC*g.KH*g.KW, oh*ow))
	}
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				r := (c*g.KH+kh)*g.KW + kw
				row := dst.Row(r)
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.StrideH - g.PadH + kh
					seg := row[oy*ow : oy*ow+ow]
					if iy < 0 || iy >= g.InH {
						clear(seg) // padded region
						continue
					}
					rowOff := chOff + iy*g.InW
					if g.StrideW == 1 {
						// ix = ox - PadW + kw is valid for ox in [lo,hi).
						lo, hi := g.PadW-kw, g.InW+g.PadW-kw
						if lo < 0 {
							lo = 0
						}
						if hi > ow {
							hi = ow
						}
						clear(seg[:lo])
						copy(seg[lo:hi], input[rowOff+lo-g.PadW+kw:])
						clear(seg[hi:])
						continue
					}
					for ox := range seg {
						ix := ox*g.StrideW - g.PadW + kw
						if ix < 0 || ix >= g.InW {
							seg[ox] = 0
						} else {
							seg[ox] = input[rowOff+ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im scatters a (InC*KH*KW) × (OutH*OutW) column matrix back to a CHW
// image, accumulating overlaps — the adjoint of Im2Col, used by the
// convolution backward pass in internal/train.
func Col2Im(g ConvGeom, cols *Matrix) []float32 {
	oh, ow := g.OutH(), g.OutW()
	if cols.Rows != g.InC*g.KH*g.KW || cols.Cols != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im cols %dx%d for geom %+v", cols.Rows, cols.Cols, g))
	}
	out := make([]float32, g.InC*g.InH*g.InW)
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				r := (c*g.KH+kh)*g.KW + kw
				src := cols.Row(r)
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= g.InH {
						continue
					}
					rowOff := chOff + iy*g.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix < 0 || ix >= g.InW {
							continue
						}
						out[rowOff+ix] += src[oy*ow+ox]
					}
				}
			}
		}
	}
	return out
}

// ConvFLOPs returns the multiply-accumulate FLOP count (2 FLOPs per MAC) of
// a dense convolution with outC output filters over geometry g.
func ConvFLOPs(g ConvGeom, outC int) int64 {
	macs := int64(outC) * int64(g.InC*g.KH*g.KW) * int64(g.OutH()*g.OutW())
	return 2 * macs
}
