package tensor

import "fmt"

// CSR is a compressed-sparse-row matrix. Pruned CNN layers are executed
// through CSR kernels, mirroring the sparse-BLAS extensions of the Caffe
// fork the paper uses.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32   // len Rows+1
	ColIdx     []int32   // len NNZ
	Val        []float32 // len NNZ
}

// ToCSR converts a dense matrix to CSR, dropping exact zeros.
func ToCSR(m *Matrix) *CSR {
	c := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int32, m.Rows+1)}
	nnz := m.NNZ()
	c.ColIdx = make([]int32, 0, nnz)
	c.Val = make([]float32, 0, nnz)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if v != 0 {
				c.ColIdx = append(c.ColIdx, int32(j))
				c.Val = append(c.Val, v)
			}
		}
		c.RowPtr[i+1] = int32(len(c.Val))
	}
	return c
}

// ToDense converts back to a dense matrix.
func (c *CSR) ToDense() *Matrix {
	m := NewMatrix(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			m.Data[i*c.Cols+int(c.ColIdx[p])] = c.Val[p]
		}
	}
	return m
}

// NNZ returns the stored non-zero count.
func (c *CSR) NNZ() int { return len(c.Val) }

// Sparsity returns the zero fraction in [0,1].
func (c *CSR) Sparsity() float64 {
	total := c.Rows * c.Cols
	if total == 0 {
		return 0
	}
	return 1 - float64(len(c.Val))/float64(total)
}

// At returns element (r,c) by scanning row r.
func (c *CSR) At(r, col int) float32 {
	for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
		if int(c.ColIdx[p]) == col {
			return c.Val[p]
		}
	}
	return 0
}

// SpMM computes C = S × B where S is sparse and B dense.
// This is the kernel pruned convolution layers run through: its work is
// proportional to NNZ(S)·B.Cols rather than S.Rows·S.Cols·B.Cols.
func SpMM(s *CSR, b *Matrix) *Matrix {
	c := NewMatrix(s.Rows, b.Cols)
	SpMMInto(c, s, b)
	return c
}

// SpMMInto computes C = S × B into dst, overwriting it. dst must be
// s.Rows × b.Cols and must not alias b.
func SpMMInto(dst *Matrix, s *CSR, b *Matrix) {
	SpMMFusedInto(dst, s, b, nil, false)
}

// SpMMFusedInto is SpMMInto with the fused epilogue of MatMulFusedInto:
// row i is initialized to bias[i] (zero when bias is nil) before
// accumulation and relu clamps finished rows to max(0, ·). Sparse and
// dense execution of a pruned layer thus share one epilogue contract.
func SpMMFusedInto(dst *Matrix, s *CSR, b *Matrix, bias []float32, relu bool) {
	if s.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: SpMM %dx%d × %dx%d", s.Rows, s.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != s.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: SpMM dst %dx%d, want %dx%d", dst.Rows, dst.Cols, s.Rows, b.Cols))
	}
	if bias != nil && len(bias) != s.Rows {
		panic(fmt.Sprintf("tensor: SpMM bias len %d, want %d", len(bias), s.Rows))
	}
	n := b.Cols
	for i := 0; i < s.Rows; i++ {
		ci := dst.Data[i*n : (i+1)*n]
		if bias == nil {
			clear(ci)
		} else {
			v := bias[i]
			for j := range ci {
				ci[j] = v
			}
		}
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			k := int(s.ColIdx[p])
			v := s.Val[p]
			bk := b.Data[k*n : (k+1)*n]
			ci := ci[:len(bk)]
			for j, bv := range bk {
				ci[j] += v * bv
			}
		}
		if relu {
			for j, v := range ci {
				if v < 0 {
					ci[j] = 0
				}
			}
		}
	}
}

// SpMV computes y = S × x.
func SpMV(s *CSR, x []float32) []float32 {
	y := make([]float32, s.Rows)
	SpMVInto(y, s, x)
	return y
}

// SpMVInto computes y = S × x into y (len s.Rows), overwriting it.
func SpMVInto(y []float32, s *CSR, x []float32) {
	SpMVFusedInto(y, s, x, nil, false)
}

// SpMVFusedInto computes y = S × x + bias with an optional ReLU clamp,
// into y. bias may be nil (zero) — the sparse fully-connected fast path.
func SpMVFusedInto(y []float32, s *CSR, x []float32, bias []float32, relu bool) {
	if s.Cols != len(x) {
		panic(fmt.Sprintf("tensor: SpMV %dx%d × %d", s.Rows, s.Cols, len(x)))
	}
	if len(y) != s.Rows {
		panic(fmt.Sprintf("tensor: SpMV dst len %d, want %d", len(y), s.Rows))
	}
	if bias != nil && len(bias) != s.Rows {
		panic(fmt.Sprintf("tensor: SpMV bias len %d, want %d", len(bias), s.Rows))
	}
	for i := 0; i < s.Rows; i++ {
		var sum float32
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			sum += s.Val[p] * x[int(s.ColIdx[p])]
		}
		if bias != nil {
			sum += bias[i]
		}
		if relu && sum < 0 {
			sum = 0
		}
		y[i] = sum
	}
}
