package prune

import (
	"math"
	"testing"
	"testing/quick"

	"ccperf/internal/nn"
)

func newConv(t *testing.T, out, in int) *nn.Conv {
	t.Helper()
	c := nn.NewConv("c", out, 3, 3, 1, 1, 1, 1, 1)
	if err := c.Init(in, 42); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestL1FilterPrunesLowestNormRows(t *testing.T) {
	c := newConv(t, 4, 2)
	w := c.Weights()
	// Give rows clearly ordered norms: row0 smallest, row3 largest.
	for r := 0; r < 4; r++ {
		row := w.Row(r)
		for j := range row {
			row[j] = float32(r + 1)
		}
	}
	if err := Layer(c, 0.5, L1Filter); err != nil {
		t.Fatal(err)
	}
	for j, v := range w.Row(0) {
		if v != 0 {
			t.Fatalf("row0[%d] = %v, want 0", j, v)
		}
	}
	for j, v := range w.Row(1) {
		if v != 0 {
			t.Fatalf("row1[%d] = %v, want 0", j, v)
		}
	}
	for _, r := range []int{2, 3} {
		for j, v := range w.Row(r) {
			if v == 0 {
				t.Fatalf("row%d[%d] pruned, should survive", r, j)
			}
		}
	}
}

func TestMagnitudeReachesTargetSparsity(t *testing.T) {
	c := newConv(t, 8, 4)
	for _, ratio := range []float64{0.1, 0.3, 0.5, 0.9} {
		cc := newConv(t, 8, 4)
		if err := Layer(cc, ratio, Magnitude); err != nil {
			t.Fatal(err)
		}
		got := cc.WeightSparsity()
		if math.Abs(got-ratio) > 0.02 {
			t.Errorf("ratio %v: sparsity = %v", ratio, got)
		}
	}
	_ = c
}

func TestMagnitudeRemovesSmallestFirst(t *testing.T) {
	c := newConv(t, 2, 1)
	w := c.Weights()
	for i := range w.Data {
		w.Data[i] = float32(i + 1) // 1..18
	}
	if err := Layer(c, 0.5, Magnitude); err != nil {
		t.Fatal(err)
	}
	// Smallest half (1..9) must be zero, largest half intact.
	for i := 0; i < 9; i++ {
		if w.Data[i] != 0 {
			t.Fatalf("data[%d] = %v, want 0", i, w.Data[i])
		}
	}
	for i := 9; i < 18; i++ {
		if w.Data[i] == 0 {
			t.Fatalf("data[%d] pruned, should survive", i)
		}
	}
}

func TestFilterMethodsSparsityMatchesRatio(t *testing.T) {
	for _, m := range []Method{L1Filter, StructuredScore, GreedyCost} {
		c := newConv(t, 10, 4)
		if err := Layer(c, 0.3, m); err != nil {
			t.Fatal(err)
		}
		// 3 of 10 filters zeroed → sparsity 0.3 exactly.
		if got := c.WeightSparsity(); math.Abs(got-0.3) > 1e-9 {
			t.Errorf("%v sparsity = %v, want 0.3", m, got)
		}
	}
}

func TestGreedyCostAgreesWithL1OnSimpleCase(t *testing.T) {
	// With uniform work, greedy-cost degenerates to L1 ordering.
	a := newConv(t, 6, 3)
	b := newConv(t, 6, 3)
	copy(b.Weights().Data, a.Weights().Data)
	if err := Layer(a, 0.5, L1Filter); err != nil {
		t.Fatal(err)
	}
	if err := Layer(b, 0.5, GreedyCost); err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights().Data {
		az := a.Weights().Data[i] == 0
		bz := b.Weights().Data[i] == 0
		if az != bz {
			t.Fatalf("greedy-cost and l1-filter diverge at %d", i)
		}
	}
}

func TestLayerRatioValidation(t *testing.T) {
	c := newConv(t, 4, 2)
	if err := Layer(c, -0.1, L1Filter); err == nil {
		t.Fatal("expected error for negative ratio")
	}
	if err := Layer(c, 1.5, L1Filter); err == nil {
		t.Fatal("expected error for ratio > 1")
	}
	if err := Layer(c, 0, L1Filter); err != nil {
		t.Fatalf("ratio 0 must be a no-op, got %v", err)
	}
}

func TestLayerUninitializedErrors(t *testing.T) {
	c := nn.NewConv("c", 4, 3, 3, 1, 1, 1, 1, 1) // no Init
	if err := Layer(c, 0.5, L1Filter); err == nil {
		t.Fatal("expected error for uninitialized layer")
	}
}

func TestMethodStringRoundTrip(t *testing.T) {
	for _, m := range []Method{L1Filter, Magnitude, StructuredScore, GreedyCost} {
		got, err := ParseMethod(m.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Fatalf("round trip %v → %v", m, got)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestDegreeLabel(t *testing.T) {
	d := NewDegree("conv2", 0.5, "conv1", 0.3)
	if got := d.Label(); got != "conv1@30+conv2@50" {
		t.Fatalf("Label = %q", got)
	}
	empty := Degree{}
	if got := empty.Label(); got != "nonpruned" {
		t.Fatalf("empty Label = %q", got)
	}
	zeroOnly := NewDegree("conv1", 0.0)
	if got := zeroOnly.Label(); got != "nonpruned" {
		t.Fatalf("zero Label = %q", got)
	}
	if !zeroOnly.IsUnpruned() {
		t.Fatal("zero-ratio degree must be unpruned")
	}
	if d.IsUnpruned() {
		t.Fatal("nonzero degree must not be unpruned")
	}
}

func TestDegreeCloneIndependent(t *testing.T) {
	d := NewDegree("conv1", 0.3)
	c := d.Clone()
	c.Ratios["conv1"] = 0.9
	if d.Ratios["conv1"] != 0.3 {
		t.Fatal("Clone must not share map")
	}
}

func TestDegreeValidate(t *testing.T) {
	if err := NewDegree("x", 1.2).Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	if err := NewDegree("x", 0.5).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyToNet(t *testing.T) {
	n := nn.NewNet("t", nn.Shape{C: 3, H: 16, W: 16})
	n.Add(
		nn.NewConv("conv1", 8, 3, 3, 1, 1, 1, 1, 1),
		nn.NewConv("conv2", 8, 3, 3, 1, 1, 1, 1, 1),
	)
	if err := n.Init(1); err != nil {
		t.Fatal(err)
	}
	if err := Apply(n, NewDegree("conv1", 0.5), L1Filter); err != nil {
		t.Fatal(err)
	}
	p1, _ := n.PrunableByName("conv1")
	p2, _ := n.PrunableByName("conv2")
	if p1.WeightSparsity() < 0.49 {
		t.Fatalf("conv1 sparsity = %v", p1.WeightSparsity())
	}
	if p2.WeightSparsity() != 0 {
		t.Fatalf("conv2 sparsity = %v, want 0", p2.WeightSparsity())
	}
	if err := Apply(n, NewDegree("missing", 0.5), L1Filter); err == nil {
		t.Fatal("expected error for unknown layer")
	}
}

func TestSweepSingleLayer(t *testing.T) {
	ds := SweepSingleLayer("conv1", 0.9, 0.1)
	if len(ds) != 10 {
		t.Fatalf("sweep len = %d, want 10", len(ds))
	}
	if ds[0].Ratio("conv1") != 0 || math.Abs(ds[9].Ratio("conv1")-0.9) > 1e-9 {
		t.Fatalf("sweep endpoints wrong: %v .. %v", ds[0].Ratio("conv1"), ds[9].Ratio("conv1"))
	}
}

func TestGrid(t *testing.T) {
	ds := Grid([]string{"a", "b"}, [][]float64{Range(0, 0.4, 0.1), Range(0, 0.5, 0.1)})
	if len(ds) != 5*6 {
		t.Fatalf("grid len = %d, want 30", len(ds))
	}
	// Last varies fastest: first 6 entries all have a=0.
	for i := 0; i < 6; i++ {
		if ds[i].Ratio("a") != 0 {
			t.Fatalf("grid order wrong at %d", i)
		}
	}
}

func TestRange(t *testing.T) {
	r := Range(0, 0.5, 0.1)
	want := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	if len(r) != len(want) {
		t.Fatalf("Range = %v", r)
	}
	for i, w := range want {
		if math.Abs(r[i]-w) > 1e-9 {
			t.Fatalf("Range[%d] = %v, want %v", i, r[i], w)
		}
	}
}

func TestSampleDegreesDistinctAndDeterministic(t *testing.T) {
	layers := []string{"conv1", "conv2", "conv3"}
	ratios := Range(0, 0.9, 0.1)
	a := SampleDegrees(layers, ratios, 60, 7)
	b := SampleDegrees(layers, ratios, 60, 7)
	if len(a) != 60 {
		t.Fatalf("sampled %d degrees, want 60", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Label() != b[i].Label() {
			t.Fatal("SampleDegrees must be deterministic")
		}
		if seen[a[i].Label()] {
			t.Fatalf("duplicate degree %q", a[i].Label())
		}
		seen[a[i].Label()] = true
	}
	if a[0].Label() != "nonpruned" {
		t.Fatal("first sampled degree must be nonpruned")
	}
}

// Property: for any ratio in [0,1], L1-filter pruning yields weight
// sparsity ≥ round(ratio·rows)/rows and never un-prunes.
func TestL1FilterSparsityProperty(t *testing.T) {
	f := func(tenths uint8) bool {
		ratio := float64(tenths%11) / 10
		c := nn.NewConv("c", 10, 3, 3, 1, 1, 1, 1, 1)
		if err := c.Init(4, int64(tenths)); err != nil {
			return false
		}
		if err := Layer(c, ratio, L1Filter); err != nil {
			return false
		}
		want := math.Round(ratio*10) / 10
		return c.WeightSparsity() >= want-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: pruning is monotone — a higher ratio never yields lower sparsity.
func TestPruneMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		prev := -1.0
		for _, ratio := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
			c := nn.NewConv("c", 16, 3, 3, 1, 1, 1, 1, 1)
			if err := c.Init(4, seed); err != nil {
				return false
			}
			if err := Layer(c, ratio, Magnitude); err != nil {
				return false
			}
			s := c.WeightSparsity()
			if s < prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
