package prune

import (
	"math"
	"strings"
	"testing"

	"ccperf/internal/nn"
	"ccperf/internal/tensor"
)

func TestMethodStringUnknown(t *testing.T) {
	if got := Method(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown method string = %q", got)
	}
}

func TestWeightsDirect(t *testing.T) {
	w := tensor.NewMatrix(4, 4)
	for i := range w.Data {
		w.Data[i] = float32(i + 1)
	}
	if err := Weights(w, 0.5, L1Filter); err != nil {
		t.Fatal(err)
	}
	if got := w.Sparsity(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("sparsity = %v", got)
	}
	if err := Weights(w, -1, L1Filter); err == nil {
		t.Fatal("expected ratio error")
	}
	if err := Weights(w, 0.5, Method(99)); err == nil {
		t.Fatal("expected unknown-method error")
	}
	if err := Weights(w, 0, Magnitude); err != nil {
		t.Fatal("ratio 0 must be a no-op")
	}
}

func TestUniformDegree(t *testing.T) {
	d := Uniform([]string{"a", "b"}, 0.3)
	if d.Ratio("a") != 0.3 || d.Ratio("b") != 0.3 || d.Ratio("c") != 0 {
		t.Fatalf("Uniform = %+v", d)
	}
}

func TestNewDegreeOddPairsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd pairs")
		}
	}()
	NewDegree("a")
}

func TestApplyInvalidDegree(t *testing.T) {
	n := nn.NewNet("t", nn.Shape{C: 3, H: 8, W: 8})
	n.Add(nn.NewConv("c", 4, 3, 3, 1, 1, 1, 1, 1))
	if err := n.Init(1); err != nil {
		t.Fatal(err)
	}
	if err := Apply(n, NewDegree("c", 1.7), L1Filter); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSampleDegreesFilteredRespectsKeep(t *testing.T) {
	layers := []string{"a", "b"}
	ratios := Range(0, 0.9, 0.1)
	// Keep only degrees whose total pruning is mild.
	keep := func(d Degree) bool { return d.Ratio("a")+d.Ratio("b") <= 0.5 }
	ds := SampleDegreesFiltered(layers, ratios, 20, 3, keep)
	if len(ds) != 20 {
		t.Fatalf("sampled %d", len(ds))
	}
	if ds[0].Label() != "nonpruned" {
		t.Fatal("first must be nonpruned")
	}
	for _, d := range ds[1:] {
		if !keep(d) {
			t.Fatalf("filter violated by %s", d.Label())
		}
	}
	// Deterministic.
	ds2 := SampleDegreesFiltered(layers, ratios, 20, 3, keep)
	for i := range ds {
		if ds[i].Label() != ds2[i].Label() {
			t.Fatal("not deterministic")
		}
	}
	// Impossible filter: only the unpruned degree survives.
	none := SampleDegreesFiltered(layers, ratios, 20, 3, func(Degree) bool { return false })
	if len(none) != 1 {
		t.Fatalf("impossible filter yielded %d degrees", len(none))
	}
}

func TestGridMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched grid")
		}
	}()
	Grid([]string{"a"}, [][]float64{{0.1}, {0.2}})
}

func TestParseDegreeRoundTrip(t *testing.T) {
	cases := []Degree{
		{},
		NewDegree("conv1", 0.3),
		NewDegree("conv1", 0.3, "conv2", 0.55),
	}
	for _, want := range cases {
		got, err := ParseDegree(want.Label())
		if err != nil {
			t.Fatalf("ParseDegree(%q): %v", want.Label(), err)
		}
		if got.Label() != want.Label() {
			t.Fatalf("round trip %q → %q", want.Label(), got.Label())
		}
	}
	if d, err := ParseDegree("nonpruned"); err != nil || !d.IsUnpruned() {
		t.Fatalf("nonpruned: %v %v", d, err)
	}
}

func TestParseDegreeErrors(t *testing.T) {
	for _, bad := range []string{"conv1", "conv1@x", "@30", "conv1@150"} {
		if _, err := ParseDegree(bad); err == nil {
			t.Errorf("ParseDegree(%q) should fail", bad)
		}
	}
}
