package prune

import (
	"math/rand"
	"sort"
)

// SweepSingleLayer returns degrees pruning one layer at ratios 0..max in
// the given step (inclusive), the x-axis of Figures 6 and 7.
func SweepSingleLayer(layer string, max, step float64) []Degree {
	var out []Degree
	for r := 0.0; r <= max+1e-9; r += step {
		out = append(out, NewDegree(layer, round3(r)))
	}
	return out
}

// Grid returns the cross product of per-layer ratio lists, e.g. Figure 11's
// conv1 {0..0.4} × conv2 {0..0.5} grid. Layer order fixes enumeration
// order: the last layer varies fastest.
func Grid(layers []string, ratios [][]float64) []Degree {
	if len(layers) != len(ratios) {
		panic("prune: Grid layers/ratios length mismatch")
	}
	out := []Degree{{Ratios: map[string]float64{}}}
	for li, layer := range layers {
		var next []Degree
		for _, d := range out {
			for _, r := range ratios[li] {
				c := d.Clone()
				c.Ratios[layer] = round3(r)
				next = append(next, c)
			}
		}
		out = next
	}
	return out
}

// Range returns {from, from+step, ..., to} inclusive.
func Range(from, to, step float64) []float64 {
	var out []float64
	for v := from; v <= to+1e-9; v += step {
		out = append(out, round3(v))
	}
	return out
}

// SampleDegrees draws n distinct random degrees over the given layers, each
// layer ratio drawn from ratios, deterministically from seed. It is used to
// build the 60-variant Caffenet set of Figures 9–10. The unpruned degree is
// always included as the first element.
func SampleDegrees(layers []string, ratios []float64, n int, seed int64) []Degree {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	out := []Degree{{Ratios: map[string]float64{}}}
	seen["nonpruned"] = true
	for attempts := 0; len(out) < n && attempts < n*100; attempts++ {
		d := Degree{Ratios: make(map[string]float64, len(layers))}
		for _, l := range layers {
			d.Ratios[l] = ratios[rng.Intn(len(ratios))]
		}
		if lbl := d.Label(); !seen[lbl] {
			seen[lbl] = true
			out = append(out, d)
		}
	}
	sort.Slice(out[1:], func(a, b int) bool { return out[a+1].Label() < out[b+1].Label() })
	return out
}

// SampleDegreesFiltered draws n distinct random degrees like SampleDegrees
// but rejects any degree for which keep returns false — used to build the
// paper's 60-variant Caffenet set spanning a wide but *live* accuracy range
// (Figure 9's points start around 15 % Top-1; fully-destroyed models are
// not in the space).
func SampleDegreesFiltered(layers []string, ratios []float64, n int, seed int64, keep func(Degree) bool) []Degree {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{"nonpruned": true}
	out := []Degree{{Ratios: map[string]float64{}}}
	for attempts := 0; len(out) < n && attempts < n*1000; attempts++ {
		d := Degree{Ratios: make(map[string]float64, len(layers))}
		for _, l := range layers {
			d.Ratios[l] = ratios[rng.Intn(len(ratios))]
		}
		lbl := d.Label()
		if seen[lbl] || !keep(d) {
			continue
		}
		seen[lbl] = true
		out = append(out, d)
	}
	sort.Slice(out[1:], func(a, b int) bool { return out[a+1].Label() < out[b+1].Label() })
	return out
}

func round3(v float64) float64 {
	return float64(int(v*1000+0.5)) / 1000
}
