// Package prune implements the CNN pruning algorithms the paper surveys and
// uses as its accuracy-tuning tool (Section 3.2.1): L1-norm filter pruning
// (Li et al., the method the paper adopts), element-magnitude pruning,
// structured-score pruning (Anwar et al.) and greedy cost-function pruning
// (Huang et al.). It also defines Degree — a per-layer prune-ratio
// assignment, the paper's "degree of pruning" — and generators for spaces
// of degrees.
package prune

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"ccperf/internal/nn"
	"ccperf/internal/tensor"
)

// Method selects a pruning algorithm.
type Method int

// Supported pruning methods.
const (
	// L1Filter removes whole filters (weight-matrix rows) with the
	// smallest L1 norms — Li et al. [17], the paper's choice.
	L1Filter Method = iota
	// Magnitude zeroes the individually smallest-magnitude weights.
	Magnitude
	// StructuredScore removes filters ranked by a combined L1/L2/max
	// score, after Anwar et al. [3].
	StructuredScore
	// GreedyCost removes filters one at a time, each step dropping the
	// filter whose removal minimizes a norm-per-work cost function,
	// after Huang et al. [13].
	GreedyCost
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case L1Filter:
		return "l1-filter"
	case Magnitude:
		return "magnitude"
	case StructuredScore:
		return "structured-score"
	case GreedyCost:
		return "greedy-cost"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ParseMethod parses a method name as produced by String.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "l1-filter":
		return L1Filter, nil
	case "magnitude":
		return Magnitude, nil
	case "structured-score":
		return StructuredScore, nil
	case "greedy-cost":
		return GreedyCost, nil
	default:
		return 0, fmt.Errorf("prune: unknown method %q", s)
	}
}

// Layer prunes a single prunable layer's weights in place by ratio∈[0,1]
// using the given method, then rebuilds its sparse execution path.
func Layer(p nn.Prunable, ratio float64, m Method) error {
	if ratio < 0 || ratio > 1 {
		return fmt.Errorf("prune: ratio %v out of [0,1] for layer %q", ratio, p.Name())
	}
	if ratio == 0 {
		return nil
	}
	w := p.Weights()
	if w == nil {
		return fmt.Errorf("prune: layer %q has no weights (not initialized)", p.Name())
	}
	if err := Weights(w, ratio, m); err != nil {
		return fmt.Errorf("prune: layer %q: %w", p.Name(), err)
	}
	p.Rebuild()
	return nil
}

// Weights prunes a filter-major weight matrix in place by ratio using the
// given method. It is the matrix-level core of Layer, exposed for weight
// stores outside the nn layer system (e.g. the trainable network in
// internal/train).
func Weights(w *tensor.Matrix, ratio float64, m Method) error {
	if ratio < 0 || ratio > 1 {
		return fmt.Errorf("prune: ratio %v out of [0,1]", ratio)
	}
	if ratio == 0 {
		return nil
	}
	switch m {
	case L1Filter:
		pruneFiltersByScore(w, ratio, l1Row)
	case Magnitude:
		pruneMagnitude(w, ratio)
	case StructuredScore:
		pruneFiltersByScore(w, ratio, structuredRow)
	case GreedyCost:
		pruneGreedyCost(w, ratio)
	default:
		return fmt.Errorf("prune: unknown method %v", m)
	}
	return nil
}

func l1Row(row []float32) float64 {
	var s float64
	for _, v := range row {
		s += math.Abs(float64(v))
	}
	return s
}

// structuredRow blends L1, L2 and max-magnitude, a simplified version of
// the multi-criteria particle scoring of Anwar et al.
func structuredRow(row []float32) float64 {
	var l1, l2 float64
	var mx float64
	for _, v := range row {
		a := math.Abs(float64(v))
		l1 += a
		l2 += a * a
		if a > mx {
			mx = a
		}
	}
	n := float64(len(row))
	if n == 0 {
		return 0
	}
	return 0.5*l1/n + 0.3*math.Sqrt(l2/n) + 0.2*mx
}

// pruneFiltersByScore zeroes the ratio fraction of rows with the lowest
// scores. Rows already all-zero count toward the target.
func pruneFiltersByScore(w *tensor.Matrix, ratio float64, score func([]float32) float64) {
	n := w.Rows
	k := int(math.Round(ratio * float64(n)))
	if k <= 0 {
		return
	}
	if k > n {
		k = n
	}
	type rs struct {
		i int
		s float64
	}
	rows := make([]rs, n)
	for i := 0; i < n; i++ {
		rows[i] = rs{i, score(w.Row(i))}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].s != rows[b].s {
			return rows[a].s < rows[b].s
		}
		return rows[a].i < rows[b].i
	})
	for _, r := range rows[:k] {
		row := w.Row(r.i)
		for j := range row {
			row[j] = 0
		}
	}
}

// pruneMagnitude zeroes the smallest-|w| elements so that the overall
// sparsity reaches at least ratio.
func pruneMagnitude(w *tensor.Matrix, ratio float64) {
	total := len(w.Data)
	target := int(math.Round(ratio * float64(total)))
	zero := total - nnz(w.Data)
	need := target - zero
	if need <= 0 {
		return
	}
	type ev struct {
		i int
		a float32
	}
	elems := make([]ev, 0, nnz(w.Data))
	for i, v := range w.Data {
		if v != 0 {
			a := v
			if a < 0 {
				a = -a
			}
			elems = append(elems, ev{i, a})
		}
	}
	sort.Slice(elems, func(a, b int) bool {
		if elems[a].a != elems[b].a {
			return elems[a].a < elems[b].a
		}
		return elems[a].i < elems[b].i
	})
	if need > len(elems) {
		need = len(elems)
	}
	for _, e := range elems[:need] {
		w.Data[e.i] = 0
	}
}

// pruneGreedyCost iteratively removes the filter minimizing
// score/workShare, modeling Huang et al.'s combinatorial objective with a
// greedy relaxation: prefer filters that contribute little norm relative
// to the uniform work each filter costs.
func pruneGreedyCost(w *tensor.Matrix, ratio float64) {
	n := w.Rows
	k := int(math.Round(ratio * float64(n)))
	if k <= 0 {
		return
	}
	if k > n {
		k = n
	}
	removed := make([]bool, n)
	for step := 0; step < k; step++ {
		best := -1
		bestCost := math.Inf(1)
		for i := 0; i < n; i++ {
			if removed[i] {
				continue
			}
			// Work share is uniform per filter; norm contribution varies.
			// Cost of keeping = norm contribution / work saved if removed.
			c := l1Row(w.Row(i))
			if c < bestCost {
				best, bestCost = i, c
			}
		}
		if best < 0 {
			return
		}
		removed[best] = true
		row := w.Row(best)
		for j := range row {
			row[j] = 0
		}
	}
}

func nnz(d []float32) int {
	n := 0
	for _, v := range d {
		if v != 0 {
			n++
		}
	}
	return n
}

// Degree is the paper's "degree of pruning": a per-layer prune-ratio
// assignment for one CNN. A nil/empty map is the unpruned model.
type Degree struct {
	// Ratios maps layer name → prune ratio in [0,1].
	Ratios map[string]float64
}

// NewDegree builds a Degree from layer/ratio pairs.
func NewDegree(pairs ...any) Degree {
	if len(pairs)%2 != 0 {
		panic("prune: NewDegree needs name/ratio pairs")
	}
	d := Degree{Ratios: make(map[string]float64, len(pairs)/2)}
	for i := 0; i < len(pairs); i += 2 {
		d.Ratios[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return d
}

// Uniform returns a Degree pruning each named layer by the same ratio.
func Uniform(layers []string, ratio float64) Degree {
	d := Degree{Ratios: make(map[string]float64, len(layers))}
	for _, l := range layers {
		d.Ratios[l] = ratio
	}
	return d
}

// Ratio returns the prune ratio for a layer (0 if unlisted).
func (d Degree) Ratio(layer string) float64 { return d.Ratios[layer] }

// IsUnpruned reports whether every ratio is zero.
func (d Degree) IsUnpruned() bool {
	for _, r := range d.Ratios {
		if r > 0 {
			return false
		}
	}
	return true
}

// Label renders a stable human-readable identifier, e.g.
// "conv1@30+conv2@50" or "nonpruned".
func (d Degree) Label() string {
	type kv struct {
		k string
		v float64
	}
	var items []kv
	for k, v := range d.Ratios {
		if v > 0 {
			items = append(items, kv{k, v})
		}
	}
	if len(items) == 0 {
		return "nonpruned"
	}
	sort.Slice(items, func(a, b int) bool { return items[a].k < items[b].k })
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = fmt.Sprintf("%s@%g", it.k, math.Round(it.v*1000)/10)
	}
	return strings.Join(parts, "+")
}

// Clone deep-copies the degree.
func (d Degree) Clone() Degree {
	c := Degree{Ratios: make(map[string]float64, len(d.Ratios))}
	for k, v := range d.Ratios {
		c.Ratios[k] = v
	}
	return c
}

// Validate checks all ratios are in [0,1].
func (d Degree) Validate() error {
	for k, v := range d.Ratios {
		if v < 0 || v > 1 {
			return fmt.Errorf("prune: degree ratio %v for layer %q out of [0,1]", v, k)
		}
	}
	return nil
}

// Apply prunes net in place according to the degree using method m.
// Unknown layer names are an error (a degree must address real layers).
func Apply(net *nn.Net, d Degree, m Method) error {
	if err := d.Validate(); err != nil {
		return err
	}
	for name, ratio := range d.Ratios {
		p, ok := net.PrunableByName(name)
		if !ok {
			return fmt.Errorf("prune: layer %q not in network %q", name, net.Name)
		}
		if err := Layer(p, ratio, m); err != nil {
			return err
		}
	}
	return nil
}

// ParseDegree parses a Label-formatted degree string — "conv1@30+conv2@50"
// with percent ratios — back into a Degree. "" and "nonpruned" yield the
// unpruned degree. It is the inverse of Label.
func ParseDegree(s string) (Degree, error) {
	d := Degree{Ratios: map[string]float64{}}
	s = strings.TrimSpace(s)
	if s == "" || s == "nonpruned" {
		return d, nil
	}
	for _, part := range strings.Split(s, "+") {
		name, pctStr, ok := strings.Cut(part, "@")
		if !ok {
			return Degree{}, fmt.Errorf("prune: bad degree element %q (want layer@percent)", part)
		}
		pct, err := strconv.ParseFloat(strings.TrimSpace(pctStr), 64)
		if err != nil {
			return Degree{}, fmt.Errorf("prune: bad ratio in %q: %w", part, err)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return Degree{}, fmt.Errorf("prune: empty layer name in %q", part)
		}
		d.Ratios[name] = pct / 100
	}
	return d, d.Validate()
}
