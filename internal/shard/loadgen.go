package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"ccperf/internal/cloud"
	"ccperf/internal/fault"
	"ccperf/internal/serving"
	"ccperf/internal/stats"
	"ccperf/internal/telemetry"
	"ccperf/internal/workload"
)

// BuildFleet constructs one gateway per shard from the base config,
// placing shards round-robin across the regions and wiring each
// gateway's Injector through sched.ForRegion so region-scoped faults
// reach the right shards' replicas. The base config's Ladder is shared —
// nets are read-only during forward, so N gateways over one ladder cost
// one ladder's memory. The caller owns Start/Stop of the returned
// gateways.
func BuildFleet(base serving.Config, shards int, regions []cloud.Region, sched *fault.Schedule) ([]Shard, error) {
	if shards <= 0 {
		return nil, errors.New("shard: fleet needs at least one shard")
	}
	if len(regions) == 0 {
		return nil, errors.New("shard: fleet needs at least one region")
	}
	out := make([]Shard, shards)
	for i := range out {
		region := regions[i%len(regions)].Name
		cfg := base
		if sched != nil {
			cfg.Injector = sched.ForRegion(region)
		}
		gw, err := serving.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		out[i] = Shard{Gateway: gw, Region: region}
	}
	return out, nil
}

// LoadConfig parameterizes one open-loop sharded replay. Arrivals come
// either from Shapes (Total arrivals over Duration through the composed
// intensity, workload.ShapedArrivals) or, when Shapes is nil and Trace is
// set, from the trace's window counts — both seed-deterministic, so a
// replay under a fault schedule is reproducible bit for bit.
type LoadConfig struct {
	// Total is the arrival count when Shapes drives the replay.
	Total int64
	// Shapes composes the arrival intensity (nil with Trace set falls
	// back to trace expansion; nil with Total set means uniform).
	Shapes []workload.Shape
	// Trace is the alternative per-window arrival source.
	Trace *workload.Trace
	// Duration is the wall-clock replay length.
	Duration time.Duration
	// Seed drives arrivals, origin assignment and request keys.
	Seed int64
	// Deadline is the per-request deadline offset; it also defines
	// on-time: an OK response slower than Deadline (e.g. by failover RTT)
	// is served but late (0 = no deadline, everything OK is on-time).
	Deadline time.Duration
	// Cooldown keeps observing after the last arrival (0 = none).
	Cooldown time.Duration
	// OriginWeights skews request origins across the router's regions in
	// Router.Regions() order (nil = uniform); OriginCorr is the Markov
	// stickiness of consecutive origins (workload.AssignRegions).
	OriginWeights []float64
	OriginCorr    float64
	// Schedule is consulted for cost accounting (spot-spike price
	// integrals) and outage bookkeeping in the report; injection itself
	// is wired into the gateways (BuildFleet). Nil = fault-free pricing.
	Schedule *fault.Schedule
	// Instance prices the fleet (nil = p2.xlarge, the paper's K80 box).
	Instance *cloud.Instance
}

// RegionReport is one region's slice of the replay: its shards' outcomes,
// its rental bill under regional pricing and any spot spikes, and the
// cost-accuracy point it contributes to the global frontier.
type RegionReport struct {
	Region string `json:"region"`
	Shards int    `json:"shards"`
	// OK / Late / Errors partition the responses served by this region's
	// shards: on-time, past-deadline, and failed.
	OK     int `json:"ok"`
	Late   int `json:"late"`
	Errors int `json:"errors"`
	// ReplicaSeconds is the region's fleet-time integral; SpotMean the
	// time-averaged price multiplier over the run (1 without spikes);
	// DownSeconds how long the schedule held the region dark.
	ReplicaSeconds float64 `json:"replica_seconds"`
	SpotMean       float64 `json:"spot_mean"`
	DownSeconds    float64 `json:"down_seconds"`
	// CostUSD = ReplicaSeconds × regional $/s × SpotMean; CostPerMillion
	// is that bill normalized per million on-time images — the paper's
	// cost-accuracy axis generalized to a region under faults.
	CostUSD        float64 `json:"cost_usd"`
	CostPerMillion float64 `json:"cost_per_million_on_time"`
	// MeanAccuracy is the request-weighted accuracy proxy of the
	// region's OK responses.
	MeanAccuracy float64 `json:"mean_accuracy"`
}

// Report summarizes one sharded replay.
type Report struct {
	Submitted int `json:"submitted"`
	OK        int `json:"ok"`
	Late      int `json:"late"`
	Shed      int `json:"shed"`
	Expired   int `json:"expired"`
	Faulted   int `json:"faulted"`
	Other     int `json:"other_errors"`

	// Rerouted counts submissions that spilled past their home shard;
	// Failovers responses resubmitted on another shard after a failure;
	// RouterShed submissions rejected because no shard could take them.
	Rerouted   int64 `json:"rerouted"`
	Failovers  int64 `json:"failovers"`
	RouterShed int64 `json:"router_shed"`

	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput_rps"`

	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`

	MeanAccuracy float64 `json:"mean_accuracy"`
	MinAccuracy  float64 `json:"min_accuracy"`

	// CostUSD and CostPerMillion aggregate the regional bills into the
	// global $/million-on-time-images point.
	CostUSD        float64 `json:"cost_usd"`
	CostPerMillion float64 `json:"cost_per_million_on_time"`

	Regions []RegionReport `json:"regions"`
}

// ErrorRate is the fraction of submissions that ended in an error —
// router sheds, gateway sheds, expiries and exhausted faults. Late
// responses are service-level failures but not errors.
func (r *Report) ErrorRate() float64 {
	if r.Submitted == 0 {
		return 0
	}
	return float64(r.Shed+r.Expired+r.Faulted+r.Other) / float64(r.Submitted)
}

// String renders the one-line summary the CLI prints.
func (r *Report) String() string {
	return fmt.Sprintf(
		"submitted=%d ok=%d late=%d shed=%d expired=%d faulted=%d rerouted=%d failover=%d err=%.2f%% p50=%.1fms p99=%.1fms acc=%.4f $%.4f ($%.2f/M on-time)",
		r.Submitted, r.OK, r.Late, r.Shed, r.Expired, r.Faulted, r.Rerouted, r.Failovers,
		100*r.ErrorRate(), r.P50MS, r.P99MS, r.MeanAccuracy, r.CostUSD, r.CostPerMillion)
}

// FrontierTable renders the per-region cost-accuracy frontier: each
// region is one point ($/million-on-time vs delivered accuracy), with
// the global aggregate last. This is the artifact the multi-region story
// is about — under a regional fault the dark region's row collapses
// while the survivors' rows absorb its load at a visible cost.
func (r *Report) FrontierTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %8s %6s %6s %8s %9s %12s %9s\n",
		"region", "shards", "ok", "late", "err", "down(s)", "spot", "$/M-on-time", "accuracy")
	for _, reg := range r.Regions {
		fmt.Fprintf(&b, "%-12s %6d %8d %6d %6d %8.1f %9.2f %12.2f %9.4f\n",
			reg.Region, reg.Shards, reg.OK, reg.Late, reg.Errors,
			reg.DownSeconds, reg.SpotMean, reg.CostPerMillion, reg.MeanAccuracy)
	}
	fmt.Fprintf(&b, "%-12s %6s %8d %6d %6d %8s %9s %12.2f %9.4f\n",
		"global", "", r.OK, r.Late, r.Shed+r.Expired+r.Faulted+r.Other, "", "", r.CostPerMillion, r.MeanAccuracy)
	return b.String()
}

// RunLoad replays arrivals open-loop through the router, mirroring
// serving.RunLoad one level up: arrivals fire at their scheduled offsets
// regardless of progress, latency is measured wall-to-wall around the
// router (so failover RTT counts), and outcomes are attributed to the
// region that served them. The caller owns gateway Start/Stop and
// router Start/Stop.
func RunLoad(r *Router, cfg LoadConfig) (*Report, error) {
	if cfg.Duration <= 0 {
		return nil, errors.New("shard: load config needs a positive duration")
	}
	var arrivals []float64
	switch {
	case cfg.Total > 0:
		arrivals = workload.ShapedArrivals(cfg.Total, cfg.Duration.Seconds(), cfg.Shapes, cfg.Seed)
	case cfg.Trace != nil && len(cfg.Trace.Windows) > 0:
		windowSec := cfg.Duration.Seconds() / float64(len(cfg.Trace.Windows))
		arrivals = workload.ArrivalTimes(cfg.Trace, windowSec, cfg.Seed)
	default:
		return nil, errors.New("shard: load config needs Total or a trace")
	}
	regions := r.Regions()
	weights := cfg.OriginWeights
	if weights == nil {
		weights = make([]float64, len(regions))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(regions) {
		return nil, fmt.Errorf("shard: %d origin weights for %d regions", len(weights), len(regions))
	}
	origins := workload.AssignRegions(len(arrivals), weights, cfg.OriginCorr, cfg.Seed+1)

	inst := cfg.Instance
	if inst == nil {
		var err error
		inst, err = cloud.ByName("p2.xlarge")
		if err != nil {
			return nil, err
		}
	}

	shape := r.shards[0].gw.Config().Ladder[0].Net.Input
	rep := &Report{}
	perShard := make([]struct {
		ok, late, errs int
		accSum         float64
	}, len(r.shards))
	var mu sync.Mutex
	latencies := make([]float64, 0, len(arrivals))
	var wg sync.WaitGroup

	shedBefore := r.shed.Value()
	reroutedBefore := r.rerouted.Value()
	failoversBefore := r.failovers.Value()

	ctx, finishReplay := r.cfg.Tracer.StartSpan(context.Background(), "shard.replay")
	start := time.Now()
	for i, at := range arrivals {
		offset := time.Duration(at * float64(time.Second))
		if d := time.Until(start.Add(offset)); d > 0 {
			time.Sleep(d)
		}
		img := serving.SyntheticImage(shape.C, shape.H, shape.W, cfg.Seed+int64(i))
		var deadline time.Time
		if cfg.Deadline > 0 {
			deadline = time.Now().Add(cfg.Deadline)
		}
		origin := regions[origins[i]]
		rep.Submitted++
		submitted := time.Now()
		ch, s, err := r.Submit(ctx, Key(cfg.Seed+int64(i)), origin, img, deadline)
		if err != nil {
			mu.Lock()
			countError(rep, err)
			if s >= 0 {
				perShard[s].errs++
			}
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, ok := <-ch
			took := time.Since(submitted)
			mu.Lock()
			defer mu.Unlock()
			if !ok {
				// Channel closed: gateway stopped with no failover target.
				rep.Other++
				perShard[s].errs++
				return
			}
			if resp.Err != nil {
				countError(rep, resp.Err)
				perShard[resp.Shard].errs++
				return
			}
			if cfg.Deadline > 0 && took > cfg.Deadline {
				rep.Late++
				perShard[resp.Shard].late++
			} else {
				rep.OK++
				perShard[resp.Shard].ok++
			}
			perShard[resp.Shard].accSum += resp.Accuracy
			rep.MeanAccuracy += resp.Accuracy
			if rep.MinAccuracy == 0 || resp.Accuracy < rep.MinAccuracy {
				rep.MinAccuracy = resp.Accuracy
			}
			latencies = append(latencies, took.Seconds())
		}()
	}
	wg.Wait()
	finishReplay(telemetry.L("submitted", rep.Submitted))
	if cfg.Cooldown > 0 {
		time.Sleep(cfg.Cooldown)
	}
	rep.WallSeconds = time.Since(start).Seconds()
	rep.RouterShed = r.shed.Value() - shedBefore
	rep.Rerouted = r.rerouted.Value() - reroutedBefore
	rep.Failovers = r.failovers.Value() - failoversBefore
	served := rep.OK + rep.Late
	if served > 0 {
		rep.MeanAccuracy /= float64(served)
		rep.Throughput = float64(served) / rep.WallSeconds
		p50, p95, p99, max := stats.Summary(latencies)
		rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS = p50*1000, p95*1000, p99*1000, max*1000
	}

	// Regional accounting: fold shards into their regions, bill each
	// region's replica-seconds at its regional price times the run's
	// time-averaged spot multiplier. (The multiplier is averaged over the
	// run rather than integrated against the instantaneous replica count;
	// with replica counts roughly constant the two agree.)
	byRegion := map[string]*RegionReport{}
	for i, st := range r.shards {
		reg := byRegion[st.region]
		if reg == nil {
			reg = &RegionReport{Region: st.region, SpotMean: 1}
			byRegion[st.region] = reg
		}
		reg.Shards++
		reg.OK += perShard[i].ok
		reg.Late += perShard[i].late
		reg.Errors += perShard[i].errs
		reg.MeanAccuracy += perShard[i].accSum
		reg.ReplicaSeconds += st.gw.ReplicaSeconds()
	}
	for _, name := range regions {
		reg := byRegion[name]
		if reg == nil {
			continue
		}
		region, err := cloud.RegionByName(name)
		if err != nil {
			// Unknown to the catalog (tests use synthetic names): bill at
			// baseline pricing.
			region = cloud.Region{Name: name, PriceMultiplier: 1}
		}
		if cfg.Schedule != nil && rep.WallSeconds > 0 {
			reg.SpotMean = cfg.Schedule.PriceIntegral(name, 0, rep.WallSeconds) / rep.WallSeconds
			reg.DownSeconds = regionDownSeconds(cfg.Schedule, name, rep.WallSeconds)
		}
		reg.CostUSD = reg.ReplicaSeconds * (cloud.RegionalPrice(inst, region) / 3600) * reg.SpotMean
		if reg.OK > 0 {
			reg.CostPerMillion = reg.CostUSD / (float64(reg.OK) / 1e6)
		}
		if n := reg.OK + reg.Late; n > 0 {
			reg.MeanAccuracy /= float64(n)
		}
		rep.CostUSD += reg.CostUSD
		rep.Regions = append(rep.Regions, *reg)
	}
	if rep.OK > 0 {
		rep.CostPerMillion = rep.CostUSD / (float64(rep.OK) / 1e6)
	}
	return rep, nil
}

// countError buckets a submission failure. Router sheds and gateway
// sheds both land in Shed — to the client they are the same refusal.
func countError(rep *Report, err error) {
	switch {
	case errors.Is(err, ErrNoShard), errors.Is(err, serving.ErrOverloaded):
		rep.Shed++
	case errors.Is(err, serving.ErrExpired):
		rep.Expired++
	case errors.Is(err, serving.ErrFaulted):
		rep.Faulted++
	default:
		rep.Other++
	}
}

// regionDownSeconds sums the schedule's RegionDown windows for one
// region clipped to [0, wall].
func regionDownSeconds(s *fault.Schedule, region string, wall float64) float64 {
	var total float64
	for _, e := range s.Events {
		if e.Kind != fault.RegionDown || e.Region != region {
			continue
		}
		lo, hi := e.At, e.At+e.Duration
		if lo < 0 {
			lo = 0
		}
		if hi > wall {
			hi = wall
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}
