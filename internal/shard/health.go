package shard

// HealthConfig tunes the per-shard weight hysteresis. The asymmetry is
// deliberate: draining is immediate (each unhealthy observation halves
// the weight, so a dead region stops receiving keys within a few ticks)
// while recovery is delayed (RecoverTicks consecutive healthy
// observations before the weight starts climbing back) — a flapping
// region therefore converges to drained, not to oscillation.
type HealthConfig struct {
	// DecayFactor multiplies the weight on each unhealthy tick
	// (default 0.5).
	DecayFactor float64
	// RecoverTicks is how many consecutive healthy ticks must elapse
	// before the weight starts recovering (default 3).
	RecoverTicks int
	// Floor is the weight below which the shard snaps to 0 — fully
	// drained, every key spills (default 1/16). Recovery restarts from
	// the floor.
	Floor float64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.DecayFactor <= 0 || c.DecayFactor >= 1 {
		c.DecayFactor = 0.5
	}
	if c.RecoverTicks <= 0 {
		c.RecoverTicks = 3
	}
	if c.Floor <= 0 || c.Floor >= 1 {
		c.Floor = 1.0 / 16
	}
	return c
}

// health is one shard's drain state. Not self-synchronized: the router
// ticks it under its own mutex and publishes the result atomically.
type health struct {
	weight float64 // ∈ {0} ∪ [Floor, 1]
	streak int     // consecutive healthy ticks
}

func newHealth() health { return health{weight: 1} }

// tick folds one health observation into the weight and returns the new
// value. Unhealthy: weight *= DecayFactor, snapping to 0 below Floor.
// Healthy: after RecoverTicks consecutive observations the weight doubles
// per tick (from Floor if fully drained), capped at 1.
func (h *health) tick(healthy bool, cfg HealthConfig) float64 {
	if !healthy {
		h.streak = 0
		h.weight *= cfg.DecayFactor
		if h.weight < cfg.Floor {
			h.weight = 0
		}
		return h.weight
	}
	h.streak++
	if h.streak >= cfg.RecoverTicks && h.weight < 1 {
		if h.weight == 0 {
			h.weight = cfg.Floor
		} else {
			h.weight *= 2
		}
		if h.weight > 1 {
			h.weight = 1
		}
	}
	return h.weight
}
