package shard

import (
	"context"
	"testing"
	"time"

	"ccperf/internal/autoscale"
	"ccperf/internal/fault"
	"ccperf/internal/serving"
)

// TestBalancerShiftsOnSpotSpike drives the regional loop end to end
// against a live fleet: a spot spike on us-east makes the balancer drop
// the east shards' bias (traffic shifts to cheap us-west, accuracy
// untouched), and after the spike the bias climbs back to 1.
func TestBalancerShiftsOnSpotSpike(t *testing.T) {
	sched, err := fault.ParseSchedule("spot@us-east:10+20x3")
	if err != nil {
		t.Fatal(err)
	}
	r := testFleet(t, 4, []string{"us-west", "us-east"}, nil,
		serving.Config{Replicas: 1, ExternalControl: true}, Config{})
	b, err := NewBalancer(r, autoscale.RegionalPolicy{SLOSeconds: 0.05}, sched, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Before the spike: everything holds at bias 1.
	for _, a := range b.TickAt(ctx, 5) {
		if a.Verb != autoscale.RegionHold {
			t.Fatalf("pre-spike action %+v", a)
		}
	}
	// During the spike: east shifts away, west holds; variants untouched.
	acts := b.TickAt(ctx, 15)
	var east autoscale.RegionAction
	for _, a := range acts {
		if a.Region == "us-east" {
			east = a
		} else if a.Verb != autoscale.RegionHold {
			t.Fatalf("west moved during east's spike: %+v", a)
		}
	}
	if east.Verb != autoscale.ShiftAway {
		t.Fatalf("east verb %v, want ShiftAway (%s)", east.Verb, east.Reason)
	}
	for _, st := range r.Statuses() {
		want := 1.0
		if st.Region == "us-east" {
			want = 0.5
		}
		if st.Bias != want {
			t.Fatalf("shard %d (%s) bias %v, want %v", st.Shard, st.Region, st.Bias, want)
		}
		if st.Serving.Variant != 0 {
			t.Fatalf("shard %d degraded during shift", st.Shard)
		}
	}
	// Repeated spiked ticks keep draining down to the floor, never past.
	for i := 0; i < 10; i++ {
		b.TickAt(ctx, 15)
	}
	for _, st := range r.Statuses() {
		if st.Region == "us-east" && st.Bias != 1.0/8 {
			t.Fatalf("east bias %v, want floor 1/8", st.Bias)
		}
	}
	// After the spike: bias steps back toward 1 and settles there.
	for i := 0; i < 10; i++ {
		b.TickAt(ctx, 35)
	}
	for _, st := range r.Statuses() {
		if st.Bias != 1 {
			t.Fatalf("post-spike shard %d (%s) bias %v, want 1", st.Shard, st.Region, st.Bias)
		}
	}
	if b.Last() == nil {
		t.Fatal("Last() empty after ticks")
	}
}

func TestBalancerStartStop(t *testing.T) {
	r := testFleet(t, 2, []string{"us-west"}, nil,
		serving.Config{Replicas: 1, ExternalControl: true}, Config{})
	b, err := NewBalancer(r, autoscale.RegionalPolicy{SLOSeconds: 0.05}, nil, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	b.Start()
	time.Sleep(10 * time.Millisecond)
	b.Stop()
	b.Stop()
	if _, err := NewBalancer(r, autoscale.RegionalPolicy{}, nil, 0); err == nil {
		t.Fatal("invalid policy accepted")
	}
}
