package shard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ccperf/internal/cloud"
	"ccperf/internal/fault"
	"ccperf/internal/serving"
	"ccperf/internal/telemetry"
	"ccperf/internal/workload"
)

var (
	ladderOnce sync.Once
	ladderVal  []serving.Variant
	ladderErr  error
)

// testLadder builds the two-variant demo ladder once per test binary —
// ladders are read-only during serving, so every fleet can share it.
func testLadder(t testing.TB) []serving.Variant {
	t.Helper()
	ladderOnce.Do(func() {
		ladderVal, ladderErr = serving.DemoLadder([]float64{0, 0.9})
	})
	if ladderErr != nil {
		t.Fatal(ladderErr)
	}
	return ladderVal
}

// testFleet builds a started fleet over the given regions plus a router,
// with cleanup registered.
func testFleet(t testing.TB, shards int, regions []string, sched *fault.Schedule, base serving.Config, rcfg Config) *Router {
	t.Helper()
	if base.Ladder == nil {
		base.Ladder = testLadder(t)
	}
	if base.Registry == nil {
		base.Registry = telemetry.NewRegistry()
	}
	if base.Tracer == nil {
		base.Tracer = telemetry.NewTracer(256)
	}
	regs := make([]cloud.Region, len(regions))
	for i, name := range regions {
		regs[i] = cloud.Region{Name: name, PriceMultiplier: 1}
	}
	fleet, err := BuildFleet(base, shards, regs, sched)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fleet {
		s.Gateway.Start()
	}
	t.Cleanup(func() {
		for _, s := range fleet {
			s.Gateway.Stop()
		}
	})
	rcfg.Shards = fleet
	if rcfg.Registry == nil {
		rcfg.Registry = base.Registry
	}
	if rcfg.Tracer == nil {
		rcfg.Tracer = base.Tracer
	}
	if rcfg.RTT == nil {
		rcfg.RTT = func(_, _ string) time.Duration { return 0 }
	}
	r, err := NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

func submitOne(t *testing.T, r *Router, key uint64, origin string) Routed {
	t.Helper()
	img := serving.SyntheticImage(serving.TinyShape.C, serving.TinyShape.H, serving.TinyShape.W, int64(key))
	ch, _, err := r.Submit(context.Background(), key, origin, img, time.Now().Add(2*time.Second))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	resp, ok := <-ch
	if !ok {
		t.Fatal("response channel closed")
	}
	return resp
}

func TestRouterServesAndRoutesByKey(t *testing.T) {
	r := testFleet(t, 3, []string{"us-west", "us-east"}, nil, serving.Config{Replicas: 1}, Config{})
	perShard := make([]int, 3)
	for i := 0; i < 30; i++ {
		resp := submitOne(t, r, Key(int64(i)), "us-west")
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		if resp.Shard < 0 || resp.Shard >= 3 {
			t.Fatalf("request %d served by shard %d", i, resp.Shard)
		}
		perShard[resp.Shard]++
	}
	total := 0
	for _, st := range r.Statuses() {
		if st.Weight != 1 {
			t.Fatalf("healthy shard %d weight %v", st.Shard, st.Weight)
		}
		total += perShard[st.Shard]
	}
	if total != 30 {
		t.Fatalf("fleet served %d, want 30", total)
	}
}

func TestRouterReroutesAroundDrainedShard(t *testing.T) {
	r := testFleet(t, 2, []string{"us-west", "us-east"}, nil, serving.Config{Replicas: 1}, Config{})
	// Find keys homed on shard 0, then drain it via bias: every one of
	// them must be served by shard 1 and counted as a reroute.
	var keys []uint64
	for i := 0; len(keys) < 10; i++ {
		k := Key(int64(i))
		if r.ring.Home(k) == 0 {
			keys = append(keys, k)
		}
	}
	r.SetBias(0, 0)
	before := r.rerouted.Value()
	for _, k := range keys {
		resp := submitOne(t, r, k, "us-west")
		if resp.Err != nil {
			t.Fatalf("key %d: %v", k, resp.Err)
		}
		if resp.Shard != 1 {
			t.Fatalf("key %d served by drained shard %d", k, resp.Shard)
		}
	}
	if got := r.rerouted.Value() - before; got != int64(len(keys)) {
		t.Fatalf("rerouted %d, want %d", got, len(keys))
	}
	// Restore the bias: home routing resumes.
	r.SetBias(0, 1)
	resp := submitOne(t, r, keys[0], "us-west")
	if resp.Shard != 0 {
		t.Fatalf("restored shard not used (served by %d)", resp.Shard)
	}
}

func TestRouterShedsWhenAllDrained(t *testing.T) {
	r := testFleet(t, 2, []string{"us-west"}, nil, serving.Config{Replicas: 1}, Config{})
	r.SetBias(0, 0)
	r.SetBias(1, 0)
	img := serving.SyntheticImage(serving.TinyShape.C, serving.TinyShape.H, serving.TinyShape.W, 1)
	_, _, err := r.Submit(context.Background(), Key(1), "us-west", img, time.Time{})
	if !errors.Is(err, ErrNoShard) {
		t.Fatalf("err = %v, want ErrNoShard", err)
	}
	if r.shed.Value() == 0 {
		t.Fatal("shed counter not bumped")
	}
}

// TestRouterHealthDrainsRegionDown is the tentpole's core loop in
// miniature: a region-scoped fault takes a shard's replicas down, its
// breakers open, the router's health ticks drain its weight, and traffic
// spills to the surviving region — with client-visible errors held off
// by failover in the meantime.
func TestRouterHealthDrainsRegionDown(t *testing.T) {
	sched, err := fault.ParseSchedule("region@us-east:0+600")
	if err != nil {
		t.Fatal(err)
	}
	r := testFleet(t, 2, []string{"us-west", "us-east"}, sched,
		serving.Config{
			Replicas:         2,
			MaxRetries:       1,
			RetryBackoff:     time.Millisecond,
			BreakerThreshold: 1,
			BreakerCooldown:  10 * time.Second, // stay open for the test's duration
			BatchTimeout:     time.Millisecond,
		}, Config{})
	// Drive traffic until the dead region's breakers open, then tick
	// health until the router drains it.
	for i := 0; i < 40; i++ {
		resp := submitOne(t, r, Key(int64(i)), "us-west")
		if resp.Err != nil && !errors.Is(resp.Err, serving.ErrFaulted) {
			t.Fatalf("request %d: unexpected error %v", i, resp.Err)
		}
		// Failover means even requests homed on the dead shard come back
		// served by the living one.
		if resp.Err == nil && resp.Shard == 1 {
			t.Fatalf("request %d served OK by the dead region's shard", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.Tick()
		sts := r.Statuses()
		if sts[1].Weight == 0 && sts[0].Weight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead shard never drained: %+v", sts)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Once drained, every submission routes straight to the survivor —
	// no failover needed.
	failBefore := r.failovers.Value()
	for i := 100; i < 120; i++ {
		resp := submitOne(t, r, Key(int64(i)), "us-east")
		if resp.Err != nil {
			t.Fatalf("post-drain request %d: %v", i, resp.Err)
		}
		if resp.Shard != 0 {
			t.Fatalf("post-drain request %d served by drained shard", i)
		}
	}
	if got := r.failovers.Value(); got != failBefore {
		t.Fatalf("failovers after drain: %d new", got-failBefore)
	}
}

func TestRouterRTTPenaltyOnCrossRegionServe(t *testing.T) {
	const rtt = 30 * time.Millisecond
	r := testFleet(t, 2, []string{"us-west", "us-east"}, nil, serving.Config{Replicas: 1},
		Config{RTT: func(origin, region string) time.Duration {
			if origin == region {
				return 0
			}
			return rtt
		}})
	// Drain us-east: requests originating there are served cross-region
	// and must pay the RTT.
	r.SetBias(1, 0)
	start := time.Now()
	resp := submitOne(t, r, Key(7), "us-east")
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if took := time.Since(start); took < rtt {
		t.Fatalf("cross-region response in %v, want ≥ %v", took, rtt)
	}
	// Same-region service pays nothing extra beyond service time.
	resp = submitOne(t, r, Key(7), "us-west")
	if resp.Err != nil || resp.Shard != 0 {
		t.Fatalf("same-region serve: %+v", resp)
	}
}

func TestRouterStartStopIdempotent(t *testing.T) {
	r := testFleet(t, 1, []string{"us-west"}, nil, serving.Config{Replicas: 1},
		Config{HealthInterval: time.Millisecond})
	r.Start()
	r.Start()
	time.Sleep(10 * time.Millisecond) // let a few health ticks run
	r.Stop()
	r.Stop()
}

// TestShardedReplayDeterministic pins the acceptance criterion that a
// seeded replay is bit-for-bit reproducible: the full routing plan —
// arrival times, origins, request keys and home shards — is a pure
// function of the seed.
func TestShardedReplayDeterministic(t *testing.T) {
	shapes := []workload.Shape{
		workload.Sinusoid{Amplitude: 0.6, Peak: 0.75},
		workload.FlashCrowd{At: 0.6, Ramp: 0.05, Hold: 0.1, Mult: 4},
	}
	plan := func(seed int64) ([]float64, []int, []int) {
		arrivals := workload.ShapedArrivals(1000, 30, shapes, seed)
		origins := workload.AssignRegions(len(arrivals), []float64{2, 1}, 0.7, seed+1)
		ring := NewRing(3, 0)
		homes := make([]int, len(arrivals))
		for i := range arrivals {
			homes[i] = ring.Home(Key(seed + int64(i)))
		}
		return arrivals, origins, homes
	}
	a1, o1, h1 := plan(42)
	a2, o2, h2 := plan(42)
	for i := range a1 {
		if a1[i] != a2[i] || o1[i] != o2[i] || h1[i] != h2[i] {
			t.Fatalf("replay plan diverged at %d: (%v,%d,%d) vs (%v,%d,%d)",
				i, a1[i], o1[i], h1[i], a2[i], o2[i], h2[i])
		}
	}
	_, _, h3 := plan(43)
	same := true
	for i := range h1 {
		if h1[i] != h3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical routing plan")
	}
}

func TestRunLoadSmoke(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := testFleet(t, 2, []string{"us-west", "us-east"}, nil,
		serving.Config{Replicas: 2, QueueCap: 256, Registry: reg}, Config{Registry: reg})
	rep, err := RunLoad(r, LoadConfig{
		Total:    100,
		Shapes:   []workload.Shape{workload.FlashCrowd{At: 0.5, Ramp: 0.1, Hold: 0.2, Mult: 3}},
		Duration: time.Second,
		Seed:     42,
		Deadline: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 100 {
		t.Fatalf("submitted %d", rep.Submitted)
	}
	if got := rep.OK + rep.Late + rep.Shed + rep.Expired + rep.Faulted + rep.Other; got != 100 {
		t.Fatalf("outcomes sum to %d, want 100: %s", got, rep)
	}
	if rep.ErrorRate() > 0.05 {
		t.Fatalf("fault-free error rate %.2f%%", 100*rep.ErrorRate())
	}
	if len(rep.Regions) != 2 {
		t.Fatalf("regions in report: %d", len(rep.Regions))
	}
	var regionOK int
	for _, reg := range rep.Regions {
		regionOK += reg.OK
		if reg.Shards != 1 {
			t.Fatalf("region %s shards %d", reg.Region, reg.Shards)
		}
		if reg.CostUSD <= 0 {
			t.Fatalf("region %s billed nothing", reg.Region)
		}
	}
	if regionOK != rep.OK {
		t.Fatalf("per-region OK %d != global %d", regionOK, rep.OK)
	}
	if rep.CostPerMillion <= 0 || rep.MeanAccuracy <= 0 {
		t.Fatalf("frontier point degenerate: %s", rep)
	}
	if rep.FrontierTable() == "" {
		t.Fatal("empty frontier table")
	}
}

func BenchmarkShardRouter(b *testing.B) {
	base := serving.Config{
		Ladder:   testLadder(b),
		Replicas: 1,
		Registry: telemetry.NewRegistry(),
		Tracer:   telemetry.NewTracer(16),
	}
	regs := []cloud.Region{{Name: "us-west", PriceMultiplier: 1}, {Name: "us-east", PriceMultiplier: 1}}
	fleet, err := BuildFleet(base, 8, regs, nil)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRouter(Config{Shards: fleet, Registry: base.Registry, Tracer: base.Tracer})
	if err != nil {
		b.Fatal(err)
	}
	// Exercise the routing decision alone (ring walk + bounded-load
	// check) — the per-request overhead the router adds in front of a
	// gateway, kept hermetic so the benchdiff gate sees CPU, not
	// goroutine scheduling.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Route(Key(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
