package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ccperf/internal/autoscale"
	"ccperf/internal/cloud"
	"ccperf/internal/fault"
)

// Balancer closes the regional control loop over a Router: each tick it
// assembles per-region signals (current price under any spot spikes,
// routing weights, queue pressure and latency aggregated across the
// region's shards), asks the pure autoscale.RegionalPolicy for actions,
// and actuates them — biases on the router for traffic shifting, ladder
// rungs on the region's gateways for degradation. It follows the
// observe/decide/actuate shape of autoscale.Autoscaler one level up.
//
// Gateways under a Balancer should run with ExternalControl so the
// built-in per-gateway controller does not fight the regional one over
// the ladder.
type Balancer struct {
	r     *Router
	pol   autoscale.RegionalPolicy
	sched *fault.Schedule

	interval time.Duration
	elapsed  func() float64

	mu    sync.Mutex
	ticks int
	last  []autoscale.RegionAction

	stop    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
}

// NewBalancer validates the policy and binds it to the router. sched
// supplies spot-spike pricing (nil = catalog pricing only).
func NewBalancer(r *Router, pol autoscale.RegionalPolicy, sched *fault.Schedule, interval time.Duration) (*Balancer, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	start := time.Now()
	return &Balancer{
		r:        r,
		pol:      pol,
		sched:    sched,
		interval: interval,
		elapsed:  func() float64 { return time.Since(start).Seconds() },
		stop:     make(chan struct{}),
	}, nil
}

// observe assembles the per-region signals at elapsed seconds into the
// run, in Router.Regions() order.
func (b *Balancer) observe(elapsed float64) []autoscale.RegionSignal {
	regions := b.r.Regions()
	byRegion := make(map[string]*autoscale.RegionSignal, len(regions))
	var out []autoscale.RegionSignal
	for _, name := range regions {
		pm := 1.0
		if reg, err := cloud.RegionByName(name); err == nil {
			pm = reg.PriceMultiplier
		}
		pm *= b.sched.PriceMultiplier(name, elapsed)
		byRegion[name] = &autoscale.RegionSignal{Region: name, PriceMultiplier: pm, Bias: 1}
	}
	for _, st := range b.r.Statuses() {
		sig := byRegion[st.Region]
		// The region's weight is its best shard's; bias likewise — the
		// balancer sets them region-wide, so any shard is representative,
		// but max() keeps a half-drained region visible as alive.
		if st.Weight > sig.Weight {
			sig.Weight = st.Weight
		}
		if st.Bias < sig.Bias {
			sig.Bias = st.Bias
		}
		cs := st.Serving
		if qf := float64(cs.QueueDepth) / float64(cs.QueueCap); qf > sig.QueueFrac {
			sig.QueueFrac = qf
		}
		if cs.Variant > sig.Variant {
			sig.Variant = cs.Variant
		}
		win := b.r.shards[st.Shard].gw.ControlSignal()
		if win.P99 > sig.P99 {
			sig.P99 = win.P99
		}
		sig.Samples += win.Samples
		sig.Variants = len(b.r.shards[st.Shard].gw.Config().Ladder)
	}
	for _, name := range regions {
		out = append(out, *byRegion[name])
	}
	return out
}

// actuate applies the actions: each region's bias lands on every one of
// its shards, and a ladder move lands on every one of its gateways.
func (b *Balancer) actuate(ctx context.Context, actions []autoscale.RegionAction) {
	byRegion := make(map[string]autoscale.RegionAction, len(actions))
	for _, a := range actions {
		byRegion[a.Region] = a
	}
	for i, st := range b.r.shards {
		a, ok := byRegion[st.region]
		if !ok {
			continue
		}
		switch a.Verb {
		case autoscale.ShiftAway, autoscale.ShiftBack:
			b.r.SetBias(i, a.Bias)
		case autoscale.RegionDegrade, autoscale.RegionRestore:
			st.gw.SetVariant(ctx, a.Variant)
		}
	}
}

// TickAt runs one observe→decide→actuate round at an explicit elapsed
// time — the deterministic entry point tests and replays drive; Tick and
// the Start loop feed it the wall clock.
func (b *Balancer) TickAt(ctx context.Context, elapsed float64) []autoscale.RegionAction {
	signals := b.observe(elapsed)
	actions := b.pol.Decide(signals)
	b.actuate(ctx, actions)
	b.mu.Lock()
	b.ticks++
	b.last = actions
	b.mu.Unlock()
	return actions
}

// Tick runs one round at the current wall-clock elapsed time.
func (b *Balancer) Tick(ctx context.Context) []autoscale.RegionAction {
	return b.TickAt(ctx, b.elapsed())
}

// Last returns the most recent tick's actions (nil before the first).
func (b *Balancer) Last() []autoscale.RegionAction {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last
}

// Start launches the background control loop. Stop halts it; both are
// idempotent.
func (b *Balancer) Start() {
	if !b.started.CompareAndSwap(false, true) {
		return
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		tick := time.NewTicker(b.interval)
		defer tick.Stop()
		for {
			select {
			case <-b.stop:
				return
			case <-tick.C:
				b.Tick(context.Background())
			}
		}
	}()
}

// Stop halts the control loop.
func (b *Balancer) Stop() {
	if !b.started.CompareAndSwap(true, false) {
		return
	}
	close(b.stop)
	b.wg.Wait()
}
