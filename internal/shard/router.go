package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ccperf/internal/cloud"
	"ccperf/internal/serving"
	"ccperf/internal/telemetry"
	"ccperf/internal/tensor"
)

// ErrNoShard means every shard was either drained by health or over its
// bounded-load cap — the router's load-shedding signal, analogous to
// serving.ErrOverloaded one level down.
var ErrNoShard = errors.New("shard: no healthy shard available")

// Shard is one routing target: a gateway placed in a region. The caller
// owns the gateway's lifecycle (Start/Stop) and is expected to wire its
// Injector through fault.Schedule.ForRegion(Region) so region-scoped
// faults actually take the shard's replicas down.
type Shard struct {
	Gateway *serving.Gateway
	Region  string
}

// Config parameterizes a Router. Zero fields take the documented defaults.
type Config struct {
	// Shards is the fleet, at least one entry.
	Shards []Shard
	// VNodes is the virtual-node count per shard (default DefaultVNodes).
	VNodes int
	// LoadFactor is the bounded-load slack c ≥ 1: a shard's in-flight cap
	// is ⌈c · total · share⌉ where share is its health-weighted fraction
	// of the fleet (default 1.25). Lower values balance harder; 1.0
	// approaches round-robin, large values approach plain consistent
	// hashing.
	LoadFactor float64
	// Health tunes the drain/recover hysteresis.
	Health HealthConfig
	// HealthInterval is the observation period of the background health
	// loop started by Start (default 50ms).
	HealthInterval time.Duration
	// RTT models the extra network latency a request pays when its origin
	// region differs from the serving shard's region; the delay is added
	// on the response path. Default cloud.InterRegionRTT. Set to a
	// function returning 0 to disable.
	RTT func(origin, region string) time.Duration
	// Registry receives shard.* metrics (nil = telemetry.Default).
	Registry *telemetry.Registry
	// Tracer receives shard.route spans (nil = telemetry.DefaultTracer).
	Tracer *telemetry.Tracer
}

// shardState is the router's mutable view of one shard.
type shardState struct {
	gw     *serving.Gateway
	region string
	// inflight counts requests routed here whose responses have not yet
	// been delivered — the bounded-load denominator.
	inflight atomic.Int64
	// weightBits is the published effective weight (health × bias),
	// float64 bits; the route path reads it lock-free.
	weightBits atomic.Uint64
	// health and bias are guarded by Router.mu.
	health health
	bias   float64
}

func (s *shardState) weight() float64 {
	return math.Float64frombits(s.weightBits.Load())
}

func (s *shardState) publish() {
	s.weightBits.Store(math.Float64bits(s.health.weight * s.bias))
}

// Router spreads submissions across shards by consistent hashing with
// bounded loads and health-aware spill. It is safe for concurrent use.
type Router struct {
	cfg    Config
	ring   *Ring
	shards []*shardState

	mu      sync.Mutex // guards health/bias mutation (Tick, SetBias)
	elapsed func() float64

	stop    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool

	routed    *telemetry.Counter
	rerouted  *telemetry.Counter
	spilled   *telemetry.Counter
	shed      *telemetry.Counter
	failovers *telemetry.Counter
	weights   []*telemetry.Gauge
}

// NewRouter validates cfg and builds the ring. Gateways are used as
// given — the router never starts or stops them.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: config needs at least one shard")
	}
	for i, s := range cfg.Shards {
		if s.Gateway == nil {
			return nil, fmt.Errorf("shard: shard %d has no gateway", i)
		}
	}
	if cfg.LoadFactor < 1 {
		cfg.LoadFactor = 1.25
	}
	cfg.Health = cfg.Health.withDefaults()
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	if cfg.RTT == nil {
		cfg.RTT = cloud.InterRegionRTT
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.DefaultTracer
	}
	r := &Router{
		cfg:       cfg,
		ring:      NewRing(len(cfg.Shards), cfg.VNodes),
		stop:      make(chan struct{}),
		routed:    cfg.Registry.Counter("shard.routed"),
		rerouted:  cfg.Registry.Counter("shard.rerouted"),
		spilled:   cfg.Registry.Counter("shard.spilled"),
		shed:      cfg.Registry.Counter("shard.shed"),
		failovers: cfg.Registry.Counter("shard.failovers"),
	}
	start := time.Now()
	r.elapsed = func() float64 { return time.Since(start).Seconds() }
	for i, s := range cfg.Shards {
		st := &shardState{gw: s.Gateway, region: s.Region, health: newHealth(), bias: 1}
		st.publish()
		r.shards = append(r.shards, st)
		r.weights = append(r.weights, cfg.Registry.Gauge(fmt.Sprintf("shard.weight.%d", i)))
		r.weights[i].Set(1)
	}
	return r, nil
}

// choose walks the ring from the key's home shard and returns the first
// shard that is neither drained nor over its bounded-load cap, skipping
// avoid (< 0 = none). accept, when non-nil, gets a veto on each
// candidate (the submission path uses it to hand the request to the
// gateway, so a full admission queue reads as one more spill). The bool
// reports whether the choice passed over at least one shard.
func (r *Router) choose(key uint64, avoid int, accept func(int) bool) (int, bool, error) {
	var total int64 = 1 // the request being placed
	var sumW float64
	for _, st := range r.shards {
		total += st.inflight.Load()
		sumW += st.weight()
	}
	if sumW <= 0 {
		return -1, false, ErrNoShard
	}
	chosen, hops := -1, 0
	r.ring.Walk(key, func(s int) bool {
		if s == avoid {
			hops++
			return false
		}
		st := r.shards[s]
		w := st.weight()
		if w <= 0 {
			hops++
			return false
		}
		cap := int64(math.Ceil(r.cfg.LoadFactor * float64(total) * w / sumW))
		if cap < 1 {
			cap = 1
		}
		if st.inflight.Load() >= cap {
			hops++
			r.spilled.Inc()
			return false
		}
		if accept != nil && !accept(s) {
			hops++
			return false
		}
		chosen = s
		return true
	})
	if chosen < 0 {
		return -1, false, ErrNoShard
	}
	return chosen, hops > 0, nil
}

// Route reports where a key would be served right now: the chosen shard
// and whether the choice spilled past the key's home. It has no side
// effects beyond the spill counter — the benchmark's and the balancer's
// read-only view of the routing decision.
func (r *Router) Route(key uint64) (int, bool, error) {
	return r.choose(key, -1, nil)
}

// place picks a shard (skipping avoid) and submits the request to it,
// bumping the shard's in-flight count on success. Beyond the weight
// check, place consults the candidate gateway's live breaker panel: a
// shard whose replicas are majority-open is bypassed immediately, so in
// the window between a fault landing and the health loop draining the
// weight, new requests do not queue behind open breakers until their
// deadlines rot.
func (r *Router) place(ctx context.Context, key uint64, avoid int, img *tensor.Tensor, deadline time.Time) (<-chan serving.Response, int, bool, error) {
	var ch <-chan serving.Response
	s, spilled, err := r.choose(key, avoid, func(s int) bool {
		st := r.shards[s]
		if !healthyNow(st.gw.Stats()) {
			return false
		}
		c, err := st.gw.Submit(ctx, img, deadline)
		if err != nil {
			return false
		}
		ch = c
		return true
	})
	if err != nil {
		return nil, -1, spilled, err
	}
	r.shards[s].inflight.Add(1)
	return ch, s, spilled, nil
}

// failoverable reports whether a response error is worth resubmitting on
// another shard. Injected faults (the shard's replicas are dying) are;
// deadline expiry is not — a second shard cannot beat a deadline the
// first already burned.
func failoverable(err error) bool {
	return errors.Is(err, serving.ErrFaulted) || errors.Is(err, serving.ErrStopped) ||
		errors.Is(err, serving.ErrOverloaded)
}

// Submit routes one request: hash the key to its home shard, spill along
// the ring past drained or saturated shards, and hand the request to the
// chosen shard's gateway. If the serving shard fails the request (fault
// injection, shutdown, overload) the router fails over: the request is
// resubmitted to the next shard on the ring, up to shards−1 times — this
// is what keeps client-visible errors under control while a regional
// outage is still draining the dead shards' weights. origin is the
// request's source region; when it differs from the final serving
// shard's region the response is delayed by the configured inter-region
// RTT, which is how a replay's latency distribution feels a failover's
// geography.
//
// The returned channel delivers exactly one Routed response (or closes
// on gateway shutdown with no failover target left), stamped with the
// shard that actually served it; the int is the shard the request was
// first placed on (failovers are visible in the shard.failovers
// counter).
func (r *Router) Submit(ctx context.Context, key uint64, origin string, img *tensor.Tensor, deadline time.Time) (<-chan Routed, int, error) {
	_, finish := r.cfg.Tracer.StartSpan(ctx, "shard.route")
	ch, s, spilled, err := r.place(ctx, key, -1, img, deadline)
	finish()
	if err != nil {
		r.shed.Inc()
		return nil, -1, err
	}
	r.routed.Inc()
	if spilled {
		r.rerouted.Inc()
	}
	out := make(chan Routed, 1)
	go func() {
		defer close(out)
		cur := s
		for tries := 0; ; tries++ {
			resp, ok := <-ch
			r.shards[cur].inflight.Add(-1)
			if ok && (resp.Err == nil || !failoverable(resp.Err) || tries >= len(r.shards)-1) {
				r.deliver(ctx, out, resp, origin, cur)
				return
			}
			if !ok && tries >= len(r.shards)-1 {
				return // gateway stopped, nowhere left to go
			}
			// The shard failed the request (or its gateway stopped under
			// us): resubmit on the next shard along the ring.
			nch, ns, _, err := r.place(ctx, key, cur, img, deadline)
			if err != nil {
				if ok {
					r.deliver(ctx, out, resp, origin, cur)
				}
				return
			}
			r.failovers.Inc()
			ch, cur = nch, ns
		}
	}()
	return out, s, nil
}

// Routed is a gateway response stamped with the shard that served it —
// after a failover that is not the shard the request was first placed
// on, and per-region attribution must follow the server, not the plan.
type Routed struct {
	serving.Response
	Shard int
}

// deliver forwards the final response, first paying the inter-region
// RTT when the serving shard is remote from the request's origin.
func (r *Router) deliver(ctx context.Context, out chan<- Routed, resp serving.Response, origin string, s int) {
	if rtt := r.cfg.RTT(origin, r.shards[s].region); rtt > 0 {
		t := time.NewTimer(rtt)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	out <- Routed{Response: resp, Shard: s}
}

// healthyNow derives one shard's instantaneous health from its gateway's
// breaker panel: healthy while a strict majority of replicas hold closed
// (or half-open) breakers. A regional outage fails every batch, opens
// every breaker, and flips this within a breaker-threshold's worth of
// batches — no oracle knowledge of the fault schedule involved.
func healthyNow(st serving.Stats) bool {
	replicas := st.Replicas
	if replicas <= 0 {
		return false
	}
	return st.OpenBreakers*2 < replicas || (replicas == 1 && st.OpenBreakers == 0)
}

// Tick runs one health observation round: read each gateway's stats,
// fold the observation into the shard's weight hysteresis, and publish
// the new effective weights. Start calls it on a timer; tests and
// deterministic replays may call it directly instead.
func (r *Router) Tick() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, st := range r.shards {
		st.health.tick(healthyNow(st.gw.Stats()), r.cfg.Health)
		st.publish()
		r.weights[i].Set(st.weight())
	}
}

// SetBias scales a shard's effective weight by bias ∈ [0,1] on top of
// health — the traffic-shifting actuator: a balancer lowers the bias of
// an expensive (spot-spiked) region to move load toward cheaper regions
// without waiting for breakers to open. Out-of-range values clamp.
func (r *Router) SetBias(shard int, bias float64) {
	if shard < 0 || shard >= len(r.shards) {
		return
	}
	if bias < 0 {
		bias = 0
	}
	if bias > 1 {
		bias = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.shards[shard]
	st.bias = bias
	st.publish()
	r.weights[shard].Set(st.weight())
}

// Start launches the background health loop. The router observes only;
// gateway lifecycles stay with the caller.
func (r *Router) Start() {
	if !r.started.CompareAndSwap(false, true) {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		tick := time.NewTicker(r.cfg.HealthInterval)
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				r.Tick()
			}
		}
	}()
}

// Stop halts the health loop. Idempotent; in-flight submissions drain
// through their gateways untouched.
func (r *Router) Stop() {
	if !r.started.CompareAndSwap(true, false) {
		return
	}
	close(r.stop)
	r.wg.Wait()
}

// Status is one shard's routing view for reports and balancers.
type Status struct {
	Shard    int     `json:"shard"`
	Region   string  `json:"region"`
	Weight   float64 `json:"weight"`
	Bias     float64 `json:"bias"`
	Inflight int64   `json:"inflight"`
	Serving  serving.Stats
}

// Statuses snapshots every shard.
func (r *Router) Statuses() []Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Status, len(r.shards))
	for i, st := range r.shards {
		out[i] = Status{
			Shard:    i,
			Region:   st.region,
			Weight:   st.weight(),
			Bias:     st.bias,
			Inflight: st.inflight.Load(),
			Serving:  st.gw.Stats(),
		}
	}
	return out
}

// Regions returns the distinct shard regions in first-seen order.
func (r *Router) Regions() []string {
	seen := map[string]bool{}
	var out []string
	for _, st := range r.shards {
		if !seen[st.region] {
			seen[st.region] = true
			out = append(out, st.region)
		}
	}
	return out
}
