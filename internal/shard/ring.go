// Package shard routes requests across a fleet of serving gateways —
// the horizontal dimension the single-gateway reproduction was missing.
// The paper characterizes one application's cost-accuracy frontier on one
// fleet (Section 3); a production deployment runs many fleets in many
// regions and the interesting failures are correlated: a whole region
// goes dark, or its spot price spikes, and the question becomes whether
// the system can hold the latency SLO by *moving* load before it starts
// *degrading* accuracy.
//
// The router is consistent hashing with bounded loads: each request key
// hashes to a home shard on a virtual-node ring, and a shard over its
// load cap (or drained by health) spills the key to the next distinct
// shard in ring order. Health is observed, not declared — each shard's
// weight drains multiplicatively while its gateway's circuit breakers
// report a majority-open fleet, and recovers with hysteresis once the
// breakers close — so regional failures injected by internal/fault
// surface through exactly the same breaker machinery that catches
// single-replica crashes.
package shard

import "sort"

// ringEntry is one virtual node: a point on the 64-bit hash circle owned
// by a shard.
type ringEntry struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring over a fixed shard count. Lookup walks
// clockwise from the key's position; vnodes smooth the key-space split so
// per-shard load stays near 1/n even for small fleets.
type Ring struct {
	entries []ringEntry
	shards  int
}

// DefaultVNodes is the virtual-node count per shard (128 keeps the
// largest shard's key-space share within a few percent of 1/n).
const DefaultVNodes = 128

// NewRing builds a ring over shards×vnodes virtual nodes (vnodes ≤ 0
// takes DefaultVNodes). The layout is a pure function of the two counts:
// every router over the same fleet size agrees on key placement.
func NewRing(shards, vnodes int) *Ring {
	if shards <= 0 {
		return &Ring{}
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards, entries: make([]ringEntry, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := mix64(uint64(s)<<32 | uint64(v) | 0x5bd1e995)
			r.entries = append(r.entries, ringEntry{hash: h, shard: s})
		}
	}
	sort.Slice(r.entries, func(i, j int) bool {
		if r.entries[i].hash != r.entries[j].hash {
			return r.entries[i].hash < r.entries[j].hash
		}
		return r.entries[i].shard < r.entries[j].shard
	})
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Home returns the key's home shard: the owner of the first virtual node
// at or after the key's hash, wrapping at the top of the circle.
func (r *Ring) Home(key uint64) int {
	if len(r.entries) == 0 {
		return -1
	}
	return r.entries[r.successor(key)].shard
}

// Walk visits every distinct shard in ring order starting from the key's
// home shard, calling fn until it returns true (accepted) or the shards
// run out. This is the spill path: the bounded-load check rejects a
// shard, and the key falls through to the next one clockwise — the same
// deterministic order every router instance derives.
func (r *Ring) Walk(key uint64, fn func(shard int) bool) {
	if len(r.entries) == 0 {
		return
	}
	seen := 0
	var visited [64]bool // shards is small; stack bitmap avoids a map alloc
	var visitedBig map[int]bool
	if r.shards > len(visited) {
		visitedBig = make(map[int]bool, r.shards)
	}
	for i, n := r.successor(key), len(r.entries); seen < r.shards && n > 0; n-- {
		s := r.entries[i].shard
		i++
		if i == len(r.entries) {
			i = 0
		}
		if visitedBig != nil {
			if visitedBig[s] {
				continue
			}
			visitedBig[s] = true
		} else {
			if visited[s] {
				continue
			}
			visited[s] = true
		}
		seen++
		if fn(s) {
			return
		}
	}
}

// successor returns the index of the first entry with hash ≥ key,
// wrapping to 0 past the end.
func (r *Ring) successor(key uint64) int {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= key })
	if i == len(r.entries) {
		return 0
	}
	return i
}

// Key hashes a request identifier onto the ring's 64-bit circle. Router
// callers use it so placement is a stable function of the identifier
// alone — the property that makes a seeded replay route identically
// run after run.
func Key(id int64) uint64 { return mix64(uint64(id)) }

// mix64 is the splitmix64 finalizer — the same full-avalanche mix
// internal/fault uses for seeded injection decisions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
