package shard

import "testing"

func TestRingHomeDeterministicAndBalanced(t *testing.T) {
	const shards = 4
	a := NewRing(shards, 0)
	b := NewRing(shards, 0)
	counts := make([]int, shards)
	const keys = 20000
	for i := 0; i < keys; i++ {
		k := Key(int64(i))
		h := a.Home(k)
		if h != b.Home(k) {
			t.Fatalf("key %d: rings disagree (%d vs %d)", i, h, b.Home(k))
		}
		if h < 0 || h >= shards {
			t.Fatalf("key %d: home %d out of range", i, h)
		}
		counts[h]++
	}
	for s, c := range counts {
		frac := float64(c) / keys
		if frac < 0.5/shards || frac > 2.0/shards {
			t.Fatalf("shard %d owns %.1f%% of keys — vnodes not smoothing (counts %v)",
				s, 100*frac, counts)
		}
	}
}

func TestRingWalkVisitsAllShardsOnce(t *testing.T) {
	r := NewRing(5, 16)
	for i := 0; i < 50; i++ {
		k := Key(int64(i))
		var order []int
		r.Walk(k, func(s int) bool {
			order = append(order, s)
			return false
		})
		if len(order) != 5 {
			t.Fatalf("key %d: walk visited %d shards, want 5 (%v)", i, len(order), order)
		}
		seen := map[int]bool{}
		for _, s := range order {
			if seen[s] {
				t.Fatalf("key %d: shard %d visited twice (%v)", i, s, order)
			}
			seen[s] = true
		}
		if order[0] != r.Home(k) {
			t.Fatalf("key %d: walk starts at %d, home is %d", i, order[0], r.Home(k))
		}
	}
	// Walk stops when the callback accepts.
	var n int
	r.Walk(Key(1), func(int) bool { n++; return true })
	if n != 1 {
		t.Fatalf("walk continued after acceptance: %d calls", n)
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(0, 8)
	if h := empty.Home(42); h != -1 {
		t.Fatalf("empty ring home %d, want -1", h)
	}
	empty.Walk(42, func(int) bool { t.Fatal("walk on empty ring"); return true })

	single := NewRing(1, 8)
	for i := 0; i < 10; i++ {
		if h := single.Home(Key(int64(i))); h != 0 {
			t.Fatalf("single-shard ring home %d", h)
		}
	}

	// Many shards exercise the map fallback in Walk.
	big := NewRing(80, 4)
	var order []int
	big.Walk(7, func(s int) bool { order = append(order, s); return false })
	if len(order) != 80 {
		t.Fatalf("big walk visited %d shards, want 80", len(order))
	}
}

func TestHealthHysteresis(t *testing.T) {
	cfg := HealthConfig{}.withDefaults()
	h := newHealth()
	if h.weight != 1 {
		t.Fatalf("fresh weight %v", h.weight)
	}
	// Draining halves per tick and snaps to zero below the floor.
	steps := 0
	for h.weight > 0 {
		h.tick(false, cfg)
		steps++
		if steps > 64 {
			t.Fatal("weight never reached zero")
		}
	}
	if steps > 6 {
		t.Fatalf("full drain took %d ticks, want fast (≤6 at decay 0.5, floor 1/16)", steps)
	}
	// Recovery waits out the hysteresis window...
	for i := 0; i < cfg.RecoverTicks-1; i++ {
		if w := h.tick(true, cfg); w != 0 {
			t.Fatalf("weight recovered after only %d healthy ticks: %v", i+1, w)
		}
	}
	// ...then climbs from the floor, doubling per tick, capped at 1.
	w := h.tick(true, cfg)
	if w != cfg.Floor {
		t.Fatalf("first recovery step %v, want floor %v", w, cfg.Floor)
	}
	for i := 0; i < 10; i++ {
		w = h.tick(true, cfg)
	}
	if w != 1 {
		t.Fatalf("weight settled at %v, want 1", w)
	}
	// One bad tick restarts the streak.
	h.tick(false, cfg)
	if h.streak != 0 {
		t.Fatalf("streak %d after unhealthy tick", h.streak)
	}
	if h.weight != 0.5 {
		t.Fatalf("weight %v after one unhealthy tick from full", h.weight)
	}
}
