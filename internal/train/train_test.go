package train

import (
	"testing"

	"ccperf/internal/dataset"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
)

func smallData(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Synthetic(dataset.Config{
		Classes: 8, PerClass: 60,
		Shape: nn.Shape{C: 1, H: 16, W: 16},
		Noise: 1.0, Shift: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Split(0.75)
}

func trained(t *testing.T) (*SmallCNN, *dataset.Dataset) {
	t.Helper()
	tr, val := smallData(t)
	m, err := New(Config{Input: nn.Shape{C: 1, H: 16, W: 16}, Conv1: 8, Conv2: 16, Classes: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(tr, DefaultOpts()); err != nil {
		t.Fatal(err)
	}
	return m, val
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Input: nn.Shape{C: 1, H: 4, W: 4}, Conv1: 4, Conv2: 4, Classes: 4},
		{Input: nn.Shape{C: 1, H: 16, W: 16}, Conv1: 0, Conv2: 4, Classes: 4},
		{Input: nn.Shape{C: 1, H: 16, W: 16}, Conv1: 4, Conv2: 4, Classes: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestTrainingLearns(t *testing.T) {
	m, val := trained(t)
	top1, top3, err := m.Evaluate(val, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Chance is 12.5% top-1; a trained model must do far better.
	if top1 < 0.5 {
		t.Fatalf("top1 = %v, want ≥ 0.5 (chance 0.125)", top1)
	}
	if top3 < top1 {
		t.Fatalf("top3 (%v) < top1 (%v)", top3, top1)
	}
}

func TestTrainingLossDecreases(t *testing.T) {
	tr, _ := smallData(t)
	m, err := New(Config{Input: nn.Shape{C: 1, H: 16, W: 16}, Conv1: 8, Conv2: 16, Classes: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOpts()
	opts.Epochs = 1
	first, err := m.Train(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	later, err := m.Train(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if later >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, later)
	}
}

func TestPruningSweetSpotEmerges(t *testing.T) {
	// The paper's core premise, validated empirically: mild L1-filter
	// pruning of a real trained network costs little accuracy; deep
	// pruning destroys it.
	m, val := trained(t)
	base, _, err := m.Evaluate(val, 3)
	if err != nil {
		t.Fatal(err)
	}
	mild := m.Clone()
	if err := mild.PruneConv(2, 0.25, prune.L1Filter); err != nil {
		t.Fatal(err)
	}
	mildAcc, _, _ := mild.Evaluate(val, 3)

	deep := m.Clone()
	if err := deep.PruneConv(2, 0.9, prune.L1Filter); err != nil {
		t.Fatal(err)
	}
	deepAcc, _, _ := deep.Evaluate(val, 3)

	if base-mildAcc > 0.15 {
		t.Errorf("mild pruning cost %.2f accuracy (base %.2f → %.2f), sweet-spot missing", base-mildAcc, base, mildAcc)
	}
	if deepAcc >= mildAcc {
		t.Errorf("deep pruning (%.2f) must hurt more than mild (%.2f)", deepAcc, mildAcc)
	}
}

func TestPruneSparsity(t *testing.T) {
	m, _ := trained(t)
	if err := m.PruneConv(1, 0.5, prune.L1Filter); err != nil {
		t.Fatal(err)
	}
	s, err := m.Sparsity(1)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.45 || s > 0.55 {
		t.Fatalf("sparsity = %v, want ~0.5", s)
	}
	if _, err := m.ConvWeights(3); err == nil {
		t.Fatal("expected error for conv layer 3")
	}
	if err := m.PruneConv(9, 0.5, prune.L1Filter); err == nil {
		t.Fatal("expected error for bad layer")
	}
}

func TestCloneIndependence(t *testing.T) {
	m, val := trained(t)
	c := m.Clone()
	if err := c.PruneConv(1, 0.9, prune.L1Filter); err != nil {
		t.Fatal(err)
	}
	s, _ := m.Sparsity(1)
	if s > 0.05 {
		t.Fatalf("pruning a clone changed the original (sparsity %v)", s)
	}
	a1, _, _ := m.Evaluate(val, 3)
	a2, _, _ := c.Evaluate(val, 3)
	if a1 == a2 {
		t.Log("warning: clone accuracy unchanged after 90% prune (possible but unlikely)")
	}
}

func TestEvaluateValidation(t *testing.T) {
	m, val := trained(t)
	if _, _, err := m.Evaluate(val, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, _, err := m.Evaluate(val, 99); err == nil {
		t.Fatal("expected error for k > classes")
	}
	empty := &dataset.Dataset{Classes: 8, Shape: val.Shape}
	if _, _, err := m.Evaluate(empty, 3); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestTrainValidation(t *testing.T) {
	tr, _ := smallData(t)
	m, _ := New(Config{Input: nn.Shape{C: 1, H: 16, W: 16}, Conv1: 4, Conv2: 4, Classes: 8, Seed: 1})
	if _, err := m.Train(tr, Opts{Epochs: 0}); err == nil {
		t.Fatal("expected error for 0 epochs")
	}
	wrong := &dataset.Dataset{Classes: 3, Shape: tr.Shape}
	if _, err := m.Train(wrong, DefaultOpts()); err == nil {
		t.Fatal("expected error for class mismatch")
	}
}

func TestDeterministicTraining(t *testing.T) {
	tr, val := smallData(t)
	mk := func() float64 {
		m, err := New(Config{Input: nn.Shape{C: 1, H: 16, W: 16}, Conv1: 8, Conv2: 16, Classes: 8, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOpts()
		opts.Epochs = 2
		if _, err := m.Train(tr, opts); err != nil {
			t.Fatal(err)
		}
		a, _, _ := m.Evaluate(val, 3)
		return a
	}
	if mk() != mk() {
		t.Fatal("training must be deterministic for fixed seeds")
	}
}
