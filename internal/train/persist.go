package train

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob-serializable form of a SmallCNN: configuration plus
// flat weight/bias payloads (momentum buffers are transient).
type snapshot struct {
	Version    int
	Cfg        Config
	W1, W2, Wf []float32
	B1, B2, Bf []float32
}

const snapshotVersion = 1

// Save serializes the model (weights and biases; training state such as
// momentum is not persisted) so an expensively trained network can be
// reloaded across processes.
func (m *SmallCNN) Save(w io.Writer) error {
	s := snapshot{
		Version: snapshotVersion,
		Cfg:     m.cfg,
		W1:      m.W1.Data, W2: m.W2.Data, Wf: m.Wf.Data,
		B1: m.B1, B2: m.B2, Bf: m.Bf,
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("train: save: %w", err)
	}
	return nil
}

// Load reconstructs a model saved with Save.
func Load(r io.Reader) (*SmallCNN, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("train: load: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("train: load: unsupported snapshot version %d", s.Version)
	}
	m, err := New(s.Cfg)
	if err != nil {
		return nil, fmt.Errorf("train: load: %w", err)
	}
	for _, cp := range []struct {
		dst, src []float32
		name     string
	}{
		{m.W1.Data, s.W1, "W1"},
		{m.W2.Data, s.W2, "W2"},
		{m.Wf.Data, s.Wf, "Wf"},
		{m.B1, s.B1, "B1"},
		{m.B2, s.B2, "B2"},
		{m.Bf, s.Bf, "Bf"},
	} {
		if len(cp.dst) != len(cp.src) {
			return nil, fmt.Errorf("train: load: %s length %d, want %d", cp.name, len(cp.src), len(cp.dst))
		}
		copy(cp.dst, cp.src)
	}
	return m, nil
}
