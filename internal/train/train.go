// Package train implements a small trainable CNN with explicit
// backpropagation and SGD, used by the empirical accuracy evaluator: the
// paper's accuracy curves come from ImageNet-trained models we cannot
// obtain offline, so this package demonstrates the sweet-spot phenomenon on
// a network actually trained in Go — real training, real L1-filter pruning,
// real re-evaluation.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"ccperf/internal/dataset"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
	"ccperf/internal/tensor"
)

// Config describes the small CNN: conv(3x3)-ReLU-pool2 ×2, then FC.
type Config struct {
	Input   nn.Shape
	Conv1   int // filters in conv1
	Conv2   int // filters in conv2
	Classes int
	Seed    int64
}

// SmallCNN is the trainable network. Weight matrices are filter-major so
// prune.Weights applies directly.
type SmallCNN struct {
	cfg Config

	g1, g2 tensor.ConvGeom // conv geometries
	p1Out  nn.Shape        // shape after pool1
	p2Out  nn.Shape        // shape after pool2

	W1, W2, Wf *tensor.Matrix
	B1, B2, Bf []float32

	// momentum buffers
	vW1, vW2, vWf *tensor.Matrix
	vB1, vB2, vBf []float32
}

// New builds and randomly initializes the network.
func New(cfg Config) (*SmallCNN, error) {
	if cfg.Input.H < 8 || cfg.Input.W < 8 {
		return nil, fmt.Errorf("train: input %v too small (need ≥8x8)", cfg.Input)
	}
	if cfg.Conv1 < 1 || cfg.Conv2 < 1 || cfg.Classes < 2 {
		return nil, fmt.Errorf("train: bad config %+v", cfg)
	}
	m := &SmallCNN{cfg: cfg}
	m.g1 = tensor.ConvGeom{
		InC: cfg.Input.C, InH: cfg.Input.H, InW: cfg.Input.W,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}
	c1Out := nn.Shape{C: cfg.Conv1, H: m.g1.OutH(), W: m.g1.OutW()}
	m.p1Out = nn.Shape{C: c1Out.C, H: c1Out.H / 2, W: c1Out.W / 2}
	m.g2 = tensor.ConvGeom{
		InC: cfg.Conv1, InH: m.p1Out.H, InW: m.p1Out.W,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}
	c2Out := nn.Shape{C: cfg.Conv2, H: m.g2.OutH(), W: m.g2.OutW()}
	m.p2Out = nn.Shape{C: c2Out.C, H: c2Out.H / 2, W: c2Out.W / 2}
	if m.p1Out.H < 1 || m.p2Out.H < 1 {
		return nil, fmt.Errorf("train: input %v too small after pooling", cfg.Input)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m.W1 = heInit(cfg.Conv1, cfg.Input.C*9, rng)
	m.B1 = make([]float32, cfg.Conv1)
	m.W2 = heInit(cfg.Conv2, cfg.Conv1*9, rng)
	m.B2 = make([]float32, cfg.Conv2)
	m.Wf = heInit(cfg.Classes, m.p2Out.Volume(), rng)
	m.Bf = make([]float32, cfg.Classes)

	m.vW1 = tensor.NewMatrix(m.W1.Rows, m.W1.Cols)
	m.vW2 = tensor.NewMatrix(m.W2.Rows, m.W2.Cols)
	m.vWf = tensor.NewMatrix(m.Wf.Rows, m.Wf.Cols)
	m.vB1 = make([]float32, len(m.B1))
	m.vB2 = make([]float32, len(m.B2))
	m.vBf = make([]float32, len(m.Bf))
	return m, nil
}

func heInit(rows, cols int, rng *rand.Rand) *tensor.Matrix {
	w := tensor.NewMatrix(rows, cols)
	std := math.Sqrt(2 / float64(cols))
	for i := range w.Data {
		w.Data[i] = float32(rng.NormFloat64() * std)
	}
	return w
}

// cache holds forward intermediates for one sample's backward pass.
type cache struct {
	x1cols *tensor.Matrix // im2col of input
	a1     []float32      // conv1 pre-pool post-relu activations
	relu1  []bool
	amax1  []int // argmax indices of pool1
	x2cols *tensor.Matrix
	a2     []float32
	relu2  []bool
	amax2  []int
	flat   []float32 // pool2 output (fc input)
	probs  []float32
}

// forward runs one image, filling the cache when not nil.
func (m *SmallCNN) forward(img *tensor.Tensor, cc *cache) []float32 {
	// conv1 + relu
	x1 := tensor.Im2Col(m.g1, img.Data)
	z1 := tensor.MatMul(m.W1, x1)
	plane1 := m.g1.OutH() * m.g1.OutW()
	relu1 := make([]bool, m.cfg.Conv1*plane1)
	for f := 0; f < m.cfg.Conv1; f++ {
		row := z1.Row(f)
		b := m.B1[f]
		for i := range row {
			v := row[i] + b
			if v > 0 {
				row[i] = v
				relu1[f*plane1+i] = true
			} else {
				row[i] = 0
			}
		}
	}
	// pool1 (2x2, stride 2)
	p1, amax1 := maxPool2(z1.Data, m.cfg.Conv1, m.g1.OutH(), m.g1.OutW())

	// conv2 + relu
	x2 := tensor.Im2Col(m.g2, p1)
	z2 := tensor.MatMul(m.W2, x2)
	plane2 := m.g2.OutH() * m.g2.OutW()
	relu2 := make([]bool, m.cfg.Conv2*plane2)
	for f := 0; f < m.cfg.Conv2; f++ {
		row := z2.Row(f)
		b := m.B2[f]
		for i := range row {
			v := row[i] + b
			if v > 0 {
				row[i] = v
				relu2[f*plane2+i] = true
			} else {
				row[i] = 0
			}
		}
	}
	// pool2
	p2, amax2 := maxPool2(z2.Data, m.cfg.Conv2, m.g2.OutH(), m.g2.OutW())

	// fc + softmax
	logits := tensor.MatVec(m.Wf, p2)
	for i := range logits {
		logits[i] += m.Bf[i]
	}
	probs := append([]float32(nil), logits...)
	nn.SoftmaxInPlace(probs)

	if cc != nil {
		cc.x1cols, cc.a1, cc.relu1, cc.amax1 = x1, z1.Data, relu1, amax1
		cc.x2cols, cc.a2, cc.relu2, cc.amax2 = x2, z2.Data, relu2, amax2
		cc.flat, cc.probs = p2, probs
	}
	return probs
}

// maxPool2 performs 2x2/2 max pooling over CHW data, returning pooled data
// and per-output argmax source indices (into the input plane layout).
func maxPool2(data []float32, c, h, w int) ([]float32, []int) {
	oh, ow := h/2, w/2
	out := make([]float32, c*oh*ow)
	amax := make([]int, c*oh*ow)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(0)
				bi := -1
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						iy, ix := oy*2+dy, ox*2+dx
						idx := ch*h*w + iy*w + ix
						if bi < 0 || data[idx] > best {
							best, bi = data[idx], idx
						}
					}
				}
				oi := ch*oh*ow + oy*ow + ox
				out[oi] = best
				amax[oi] = bi
			}
		}
	}
	return out, amax
}

// Predict returns class probabilities for one image.
func (m *SmallCNN) Predict(img *tensor.Tensor) []float32 {
	return m.forward(img, nil)
}

// Opts are training hyperparameters.
type Opts struct {
	Epochs   int
	LR       float64
	Momentum float64
	// Decay multiplies LR after each epoch (1 = constant).
	Decay float64
	Seed  int64
}

// DefaultOpts trains quickly to a usable accuracy on the synthetic task
// (per-sample SGD diverges at higher rates; 0.01/0.5 converges reliably).
func DefaultOpts() Opts {
	return Opts{Epochs: 6, LR: 0.01, Momentum: 0.5, Decay: 0.9, Seed: 1}
}

// Train runs SGD over the dataset. Returns the final average training loss.
func (m *SmallCNN) Train(ds *dataset.Dataset, o Opts) (float64, error) {
	if ds.Classes != m.cfg.Classes {
		return 0, fmt.Errorf("train: dataset has %d classes, model %d", ds.Classes, m.cfg.Classes)
	}
	if o.Epochs < 1 {
		return 0, fmt.Errorf("train: need ≥1 epoch")
	}
	rng := rand.New(rand.NewSource(o.Seed))
	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	lr := o.LR
	var lastLoss float64
	for e := 0; e < o.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		for _, idx := range order {
			sum += m.step(ds.Images[idx], ds.Labels[idx], lr, o.Momentum)
		}
		lastLoss = sum / float64(ds.Len())
		lr *= o.Decay
	}
	return lastLoss, nil
}

// step runs one SGD update and returns the sample's cross-entropy loss.
func (m *SmallCNN) step(img *tensor.Tensor, label int, lr, mom float64) float64 {
	var cc cache
	m.forward(img, &cc)
	loss := -logf(cc.probs[label])

	// dLogits = probs − onehot
	dLogits := append([]float32(nil), cc.probs...)
	dLogits[label] -= 1

	// FC backward.
	dWf := tensor.NewMatrix(m.Wf.Rows, m.Wf.Cols)
	dFlat := make([]float32, len(cc.flat))
	for o := 0; o < m.Wf.Rows; o++ {
		g := dLogits[o]
		if g == 0 {
			continue
		}
		wrow := m.Wf.Row(o)
		drow := dWf.Row(o)
		for i, x := range cc.flat {
			drow[i] = g * x
			dFlat[i] += g * wrow[i]
		}
	}

	// pool2 backward → conv2 activation grad.
	plane2 := m.g2.OutH() * m.g2.OutW()
	dA2 := make([]float32, m.cfg.Conv2*plane2)
	for oi, src := range cc.amax2 {
		dA2[src] += dFlat[oi]
	}
	// relu2 backward.
	for i := range dA2 {
		if !cc.relu2[i] {
			dA2[i] = 0
		}
	}
	// conv2 backward: dW2 = dZ2 × x2ᵀ; dP1 = col2im(W2ᵀ × dZ2).
	dZ2 := tensor.MatrixFromSlice(dA2, m.cfg.Conv2, plane2)
	dW2 := tensor.MatMul(dZ2, tensor.Transpose(cc.x2cols))
	dB2 := rowSums(dZ2)
	dP1cols := tensor.MatMul(tensor.Transpose(m.W2), dZ2)
	dP1 := tensor.Col2Im(m.g2, dP1cols)

	// pool1 backward.
	plane1 := m.g1.OutH() * m.g1.OutW()
	dA1 := make([]float32, m.cfg.Conv1*plane1)
	for oi, src := range cc.amax1 {
		dA1[src] += dP1[oi]
	}
	for i := range dA1 {
		if !cc.relu1[i] {
			dA1[i] = 0
		}
	}
	dZ1 := tensor.MatrixFromSlice(dA1, m.cfg.Conv1, plane1)
	dW1 := tensor.MatMul(dZ1, tensor.Transpose(cc.x1cols))
	dB1 := rowSums(dZ1)

	// SGD with momentum. Pruned (exactly zero) weights stay zero so that
	// evaluation after pruning reflects the pruned structure.
	applySGD(m.W1, m.vW1, dW1, lr, mom)
	applySGD(m.W2, m.vW2, dW2, lr, mom)
	applySGD(m.Wf, m.vWf, dWf, lr, mom)
	applySGDVec(m.B1, m.vB1, dB1, lr, mom)
	applySGDVec(m.B2, m.vB2, dB2, lr, mom)
	applySGDVec(m.Bf, m.vBf, dLogits, lr, mom)
	return loss
}

func rowSums(m *tensor.Matrix) []float32 {
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float32
		for _, v := range m.Row(i) {
			s += v
		}
		out[i] = s
	}
	return out
}

func applySGD(w, v, g *tensor.Matrix, lr, mom float64) {
	for i := range w.Data {
		v.Data[i] = float32(mom)*v.Data[i] - float32(lr)*g.Data[i]
		if w.Data[i] == 0 && v.Data[i] != 0 {
			// Respect pruning masks: a zeroed weight stays zeroed only if
			// it was pruned; during normal training exact zeros are
			// measure-zero, so this has no effect pre-pruning.
			continue
		}
		w.Data[i] += v.Data[i]
	}
}

func applySGDVec(w, v, g []float32, lr, mom float64) {
	for i := range w {
		v[i] = float32(mom)*v[i] - float32(lr)*g[i]
		w[i] += v[i]
	}
}

func logf(x float32) float64 {
	if x < 1e-12 {
		x = 1e-12
	}
	return math.Log(float64(x))
}

// Evaluate returns Top-1 and Top-k accuracy over a dataset.
func (m *SmallCNN) Evaluate(ds *dataset.Dataset, k int) (top1, topK float64, err error) {
	if ds.Len() == 0 {
		return 0, 0, fmt.Errorf("train: empty dataset")
	}
	if k < 1 || k > m.cfg.Classes {
		return 0, 0, fmt.Errorf("train: k=%d out of range", k)
	}
	var c1, ck int
	for i, img := range ds.Images {
		probs := m.Predict(img)
		pt := tensor.FromSlice(probs, len(probs))
		if pt.ArgMax() == ds.Labels[i] {
			c1++
		}
		for _, j := range pt.TopK(k) {
			if j == ds.Labels[i] {
				ck++
				break
			}
		}
	}
	n := float64(ds.Len())
	return float64(c1) / n, float64(ck) / n, nil
}

// Clone deep-copies the model (weights only; momentum buffers reset).
func (m *SmallCNN) Clone() *SmallCNN {
	c := *m
	c.W1, c.W2, c.Wf = m.W1.Clone(), m.W2.Clone(), m.Wf.Clone()
	c.B1 = append([]float32(nil), m.B1...)
	c.B2 = append([]float32(nil), m.B2...)
	c.Bf = append([]float32(nil), m.Bf...)
	c.vW1 = tensor.NewMatrix(m.W1.Rows, m.W1.Cols)
	c.vW2 = tensor.NewMatrix(m.W2.Rows, m.W2.Cols)
	c.vWf = tensor.NewMatrix(m.Wf.Rows, m.Wf.Cols)
	c.vB1 = make([]float32, len(m.B1))
	c.vB2 = make([]float32, len(m.B2))
	c.vBf = make([]float32, len(m.Bf))
	return &c
}

// ConvWeights returns the weight matrix of conv layer 1 or 2.
func (m *SmallCNN) ConvWeights(layer int) (*tensor.Matrix, error) {
	switch layer {
	case 1:
		return m.W1, nil
	case 2:
		return m.W2, nil
	default:
		return nil, fmt.Errorf("train: no conv layer %d", layer)
	}
}

// PruneConv prunes conv layer 1 or 2 by ratio with the given method.
func (m *SmallCNN) PruneConv(layer int, ratio float64, method prune.Method) error {
	w, err := m.ConvWeights(layer)
	if err != nil {
		return err
	}
	return prune.Weights(w, ratio, method)
}

// Sparsity returns the weight sparsity of a conv layer.
func (m *SmallCNN) Sparsity(layer int) (float64, error) {
	w, err := m.ConvWeights(layer)
	if err != nil {
		return 0, err
	}
	return w.Sparsity(), nil
}
