package train

import (
	"context"
	"fmt"
	"math"
	"testing"

	"ccperf/internal/cloud"
	"ccperf/internal/prune"
)

// linearTimer is a deterministic BatchTimer: t = 0.05 + b/(100·gpus).
type linearTimer struct{ fail bool }

func (lt linearTimer) BatchSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus, b int) (float64, error) {
	if lt.fail {
		return 0, fmt.Errorf("timer down")
	}
	if gpus <= 0 || b <= 0 {
		return 0, fmt.Errorf("bad args")
	}
	return 0.05 + float64(b)/(100*float64(gpus)), nil
}

func TestCostModelStepEpochJob(t *testing.T) {
	ctx := context.Background()
	inst, err := cloud.ByName("p2.8xlarge") // 8 GPUs
	if err != nil {
		t.Fatal(err)
	}
	cm := CostModel{Timer: linearTimer{}, Batch: 256}

	step, err := cm.StepSeconds(ctx, inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantFwd := 0.05 + 256.0/(100*8)
	if want := wantFwd * DefaultBackwardFactor; math.Abs(step-want) > 1e-12 {
		t.Fatalf("StepSeconds = %g, want %g", step, want)
	}

	// 1000 samples at batch 256 → 4 steps per epoch.
	if got := StepsPerEpoch(1000, 256); got != 4 {
		t.Fatalf("StepsPerEpoch = %d, want 4", got)
	}
	ep, err := cm.EpochSeconds(ctx, inst, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * step; math.Abs(ep-want) > 1e-12 {
		t.Fatalf("EpochSeconds = %g, want %g", ep, want)
	}
	job, err := cm.JobSeconds(ctx, inst, 0, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10 * ep; math.Abs(job-want) > 1e-9 {
		t.Fatalf("JobSeconds = %g, want %g", job, want)
	}
	if got, want := JobCost(job, inst), math.Ceil(job)*inst.PricePerSecond(); got != want {
		t.Fatalf("JobCost = %g, want %g", got, want)
	}
}

func TestCostModelBackwardFactorOverride(t *testing.T) {
	ctx := context.Background()
	inst, _ := cloud.ByName("p2.xlarge")
	base := CostModel{Timer: linearTimer{}, Batch: 64}
	fast := CostModel{Timer: linearTimer{}, Batch: 64, BackwardFactor: 2}
	s1, _ := base.StepSeconds(ctx, inst, 0)
	s2, _ := fast.StepSeconds(ctx, inst, 0)
	if want := s1 * 2 / DefaultBackwardFactor; math.Abs(s2-want) > 1e-12 {
		t.Fatalf("override: %g, want %g", s2, want)
	}
}

func TestCostModelErrors(t *testing.T) {
	ctx := context.Background()
	inst, _ := cloud.ByName("p2.xlarge")
	if _, err := (CostModel{Batch: 64}).StepSeconds(ctx, inst, 0); err == nil {
		t.Fatal("nil Timer must error")
	}
	if _, err := (CostModel{Timer: linearTimer{}}).StepSeconds(ctx, inst, 0); err == nil {
		t.Fatal("zero batch must error")
	}
	if _, err := (CostModel{Timer: linearTimer{}, Batch: 64}).EpochSeconds(ctx, inst, 0, 0); err == nil {
		t.Fatal("zero samples must error")
	}
	if _, err := (CostModel{Timer: linearTimer{}, Batch: 64}).JobSeconds(ctx, inst, 0, 100, 0); err == nil {
		t.Fatal("zero epochs must error")
	}
}

func TestCostPerfAdapterMatchesJobSeconds(t *testing.T) {
	ctx := context.Background()
	inst, _ := cloud.ByName("g3.8xlarge")
	cm := CostModel{Timer: linearTimer{}, Batch: 128}
	perf := cm.Perf(ctx, 0)
	if got := perf.MaxBatch(inst); got != 128 {
		t.Fatalf("MaxBatch = %d, want 128", got)
	}
	step, _ := cm.StepSeconds(ctx, inst, 0)
	if got := perf.BatchTime(inst, 128); got != step {
		t.Fatalf("BatchTime = %g, want step %g", got, step)
	}
	// Planning samples×epochs images at MaxBatch batches reproduces
	// JobSeconds: 1024 samples × 5 epochs = 5120 images = 40 steps.
	samples, epochs := int64(1024), 5
	job, _ := cm.JobSeconds(ctx, inst, 0, samples, epochs)
	images := samples * int64(epochs)
	n := math.Ceil(float64(images) / float64(perf.MaxBatch(inst)))
	if got := n * perf.BatchTime(inst, 128); math.Abs(got-job) > 1e-9 {
		t.Fatalf("planned %g, JobSeconds %g", got, job)
	}
	// A failing predictor degrades to zero batch time (cluster rejects).
	failing := CostModel{Timer: linearTimer{fail: true}, Batch: 128}
	if got := failing.Perf(ctx, 0).BatchTime(inst, 128); got != 0 {
		t.Fatalf("failing timer should yield 0, got %g", got)
	}
}
