package train

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m, val := trained(t)
	a1, k1, err := m.Evaluate(val, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a2, k2, err := loaded.Evaluate(val, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || k1 != k2 {
		t.Fatalf("accuracy changed over save/load: %v/%v → %v/%v", a1, k1, a2, k2)
	}
	// Loaded model is trainable (fresh momentum buffers).
	tr, _ := smallData(t)
	opts := DefaultOpts()
	opts.Epochs = 1
	if _, err := loaded.Train(tr, opts); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestLoadTruncated(t *testing.T) {
	m, _ := trained(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
	if _, err := Load(trunc); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}
