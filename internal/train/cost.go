package train

import (
	"context"
	"fmt"
	"math"

	"ccperf/internal/cloud"
	"ccperf/internal/prune"
)

// This file extends the package from *doing* training (SmallCNN above) to
// *pricing* it on cloud GPU fleets: a second workload class next to the
// paper's inference-only cost model. A training step is one forward pass
// plus one backward pass over a mini-batch; the forward half is exactly
// what the inference predictor measures, and the backward half is modeled
// as a fixed multiple of it (BackwardFactor — backprop re-runs every conv
// as two GEMMs of the same shape, so ~3× forward is the classic rule of
// thumb). Epoch time is steps × step time, job time is epochs × epoch
// time, and cost follows the paper's per-second pro-rated billing.

// BatchTimer supplies per-batch forward times. engine.Predictor and
// engine.TransferPredictor both satisfy it structurally; train declares
// its own copy because it cannot import engine (engine → accuracy → train
// would close an import cycle).
type BatchTimer interface {
	BatchSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus, b int) (float64, error)
}

// DefaultBackwardFactor is the forward+backward cost of one training step
// relative to the inference forward pass of the same mini-batch.
const DefaultBackwardFactor = 3.0

// CostModel prices training work on an instance type from the same
// predictor the inference stack uses — including, through a
// TransferPredictor, instance types the harness never profiled.
type CostModel struct {
	// Timer supplies forward batch times (an engine predictor, usually
	// wrapped in a cache).
	Timer BatchTimer
	// Degree is the pruning degree the model trains at (sparse training
	// runs the pruned forward/backward).
	Degree prune.Degree
	// Batch is the global mini-batch size per optimizer step.
	Batch int
	// BackwardFactor scales forward time to forward+backward; ≤0 means
	// DefaultBackwardFactor.
	BackwardFactor float64
}

func (c CostModel) factor() float64 {
	if c.BackwardFactor > 0 {
		return c.BackwardFactor
	}
	return DefaultBackwardFactor
}

func (c CostModel) gpus(inst *cloud.Instance, gpus int) int {
	if gpus > 0 && gpus <= inst.GPUs {
		return gpus
	}
	return inst.GPUs
}

// StepSeconds returns the time of one optimizer step (forward + backward
// over one mini-batch) on the instance.
func (c CostModel) StepSeconds(ctx context.Context, inst *cloud.Instance, gpus int) (float64, error) {
	if c.Timer == nil {
		return 0, fmt.Errorf("train: CostModel has no Timer")
	}
	if c.Batch <= 0 {
		return 0, fmt.Errorf("train: non-positive mini-batch %d", c.Batch)
	}
	fwd, err := c.Timer.BatchSeconds(ctx, c.Degree, inst, c.gpus(inst, gpus), c.Batch)
	if err != nil {
		return 0, err
	}
	return fwd * c.factor(), nil
}

// StepsPerEpoch returns ⌈samples/batch⌉, the optimizer steps in one pass
// over the dataset.
func StepsPerEpoch(samples int64, batch int) int64 {
	if samples <= 0 || batch <= 0 {
		return 0
	}
	return (samples + int64(batch) - 1) / int64(batch)
}

// EpochSeconds returns the time of one pass over samples training images.
func (c CostModel) EpochSeconds(ctx context.Context, inst *cloud.Instance, gpus int, samples int64) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("train: non-positive sample count %d", samples)
	}
	st, err := c.StepSeconds(ctx, inst, gpus)
	if err != nil {
		return 0, err
	}
	return float64(StepsPerEpoch(samples, c.Batch)) * st, nil
}

// JobSeconds returns the time of a full training job: epochs passes over
// samples images.
func (c CostModel) JobSeconds(ctx context.Context, inst *cloud.Instance, gpus int, samples int64, epochs int) (float64, error) {
	if epochs <= 0 {
		return 0, fmt.Errorf("train: non-positive epoch count %d", epochs)
	}
	ep, err := c.EpochSeconds(ctx, inst, gpus, samples)
	if err != nil {
		return 0, err
	}
	return float64(epochs) * ep, nil
}

// JobCost prices seconds of training on the instance with the paper's
// per-second pro-rated billing (Section 4.1.2).
func JobCost(seconds float64, inst *cloud.Instance) float64 {
	if seconds <= 0 {
		return 0
	}
	return math.Ceil(seconds) * inst.PricePerSecond()
}

// Perf adapts the cost model to cloud.Perf so the cluster simulator can
// plan training fleets with the machinery it already has: MaxBatch is the
// training mini-batch and BatchTime the full step time, so a cluster Job
// carrying Images = samples × epochs accumulates exactly JobSeconds. An
// underlying predictor error surfaces as a zero batch time, which cluster
// rejects at configuration time rather than silently planning with it.
func (c CostModel) Perf(ctx context.Context, gpus int) cloud.Perf {
	return costPerf{c: c, ctx: ctx, gpus: gpus}
}

type costPerf struct {
	c    CostModel
	ctx  context.Context
	gpus int
}

func (p costPerf) BatchTime(it *cloud.Instance, b int) float64 {
	t, err := p.c.StepSeconds(p.ctx, it, p.gpus)
	if err != nil {
		return 0
	}
	return t
}

func (p costPerf) MaxBatch(it *cloud.Instance) int { return p.c.Batch }
