package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// cosTau is cosine with period 1 (cos of a full turn times x), the natural
// unit for shapes parameterized over trace fraction.
func cosTau(x float64) float64 {
	return math.Cos(2 * math.Pi * x)
}

// Shape modulates arrival intensity over a trace. The paper's experiments
// (and the original Generate patterns) assume well-behaved load; the
// multi-region gateway has to survive the opposite — flash crowds stacked
// on diurnal swings with regionally skewed origins. Shapes are composable:
// the effective intensity at trace fraction u is the product of every
// shape's Intensity(u), so "a day's sinusoid with a flash crowd at 70%"
// is just two shapes in a slice.
//
// Intensity is a relative (unnormalized) density over u ∈ [0,1); only
// ratios matter, because ShapedArrivals normalizes the composite before
// sampling. Implementations must be pure functions — all randomness lives
// in the sampling seed — which is what keeps a hostile workload replayable
// bit for bit.
type Shape interface {
	// Intensity returns the relative arrival intensity at trace fraction
	// u ∈ [0,1). Must be non-negative and finite.
	Intensity(u float64) float64
	// String renders the shape for reports and logs.
	String() string
}

// Sinusoid is the diurnal cycle as a shape: intensity 1 + Amplitude·cos
// around the trace, peaking at fraction Peak. Amplitude 0.6 with Peak 0.75
// reproduces the classic evening-peak photo-upload curve of
// diurnalWeights; Cycles > 1 compresses several days into one trace.
type Sinusoid struct {
	// Amplitude ∈ [0,1) is the swing around the mean (0 = flat).
	Amplitude float64
	// Peak is the trace fraction of maximum intensity.
	Peak float64
	// Cycles is the number of full periods across the trace (0 = 1).
	Cycles float64
}

// Intensity implements Shape.
func (s Sinusoid) Intensity(u float64) float64 {
	cycles := s.Cycles
	if cycles <= 0 {
		cycles = 1
	}
	return 1 + s.Amplitude*cosTau(cycles*(u-s.Peak))
}

// String implements Shape.
func (s Sinusoid) String() string {
	return fmt.Sprintf("sinusoid(amp=%.2g,peak=%.2g)", s.Amplitude, s.Peak)
}

// FlashCrowd is a multiplicative burst with a ramp: intensity rises
// linearly from 1 to Mult over [At, At+Ramp], holds Mult over
// [At+Ramp, At+Ramp+Hold], and ramps back down over the next Ramp — the
// viral-event profile whose onset slope is exactly what gives an
// autoscaler (or a shard router shedding toward healthy regions) a
// fighting chance. All positions are trace fractions.
type FlashCrowd struct {
	// At is where the ramp starts; Ramp its length; Hold the plateau.
	At, Ramp, Hold float64
	// Mult ≥ 1 is the plateau's intensity multiple.
	Mult float64
}

// Intensity implements Shape.
func (f FlashCrowd) Intensity(u float64) float64 {
	if f.Mult <= 1 {
		return 1
	}
	switch {
	case u < f.At || u >= f.At+2*f.Ramp+f.Hold:
		return 1
	case u < f.At+f.Ramp: // rising edge
		if f.Ramp <= 0 {
			return f.Mult
		}
		return 1 + (f.Mult-1)*(u-f.At)/f.Ramp
	case u < f.At+f.Ramp+f.Hold: // plateau
		return f.Mult
	default: // falling edge
		if f.Ramp <= 0 {
			return 1
		}
		return f.Mult - (f.Mult-1)*(u-f.At-f.Ramp-f.Hold)/f.Ramp
	}
}

// String implements Shape.
func (f FlashCrowd) String() string {
	return fmt.Sprintf("flash(at=%.2g,ramp=%.2g,hold=%.2g,x%.2g)", f.At, f.Ramp, f.Hold, f.Mult)
}

// ShapeLabel joins the shapes' names ("uniform" when none).
func ShapeLabel(shapes []Shape) string {
	if len(shapes) == 0 {
		return "uniform"
	}
	parts := make([]string, len(shapes))
	for i, s := range shapes {
		parts[i] = s.String()
	}
	return strings.Join(parts, "·")
}

// shapeCells is the resolution of the piecewise-constant composite
// density ShapedArrivals samples from. 4096 cells keep the inverse-CDF
// error below 0.025% of the trace span — far under any serving timescale.
const shapeCells = 4096

// ShapedArrivals samples total arrival timestamps over [0, duration)
// seconds from the composed shapes' intensity product, sorted ascending
// and deterministic per seed: the same (total, duration, shapes, seed)
// yields bit-identical times, and every call returns exactly total
// arrivals — the shapes redistribute load, they never add or drop it.
//
// Sampling is inverse-CDF over a piecewise-linear CDF built from
// shapeCells intensity evaluations, driven by sorted uniform draws (the
// same order-statistics construction as ArrivalTimes), so within any
// constant-intensity stretch the arrivals remain Poisson-like.
func ShapedArrivals(total int64, duration float64, shapes []Shape, seed int64) []float64 {
	if total <= 0 || duration <= 0 {
		return nil
	}
	// Composite density, then cumulative mass per cell.
	cdf := make([]float64, shapeCells+1)
	for i := 0; i < shapeCells; i++ {
		u := (float64(i) + 0.5) / shapeCells
		w := 1.0
		for _, s := range shapes {
			w *= s.Intensity(u)
		}
		if w < 0 {
			w = 0
		}
		cdf[i+1] = cdf[i] + w
	}
	mass := cdf[shapeCells]
	if mass <= 0 {
		// Degenerate shapes (everything zero): fall back to uniform.
		for i := range cdf {
			cdf[i] = float64(i)
		}
		mass = cdf[shapeCells]
	}
	rng := rand.New(rand.NewSource(seed))
	draws := make([]float64, total)
	for i := range draws {
		draws[i] = rng.Float64() * mass
	}
	sort.Float64s(draws)
	out := make([]float64, total)
	cell := 0
	for i, d := range draws {
		for cell < shapeCells-1 && cdf[cell+1] < d {
			cell++
		}
		frac := 0.0
		if w := cdf[cell+1] - cdf[cell]; w > 0 {
			frac = (d - cdf[cell]) / w
		}
		out[i] = (float64(cell) + frac) / shapeCells * duration
	}
	return out
}

// AssignRegions gives each of n arrivals an origin region index drawn
// from weights, with Markov clustering: with probability corr an arrival
// repeats the previous arrival's region instead of drawing fresh. corr 0
// is iid skew; corr near 1 produces long single-region runs — the
// region-correlated arrival bursts that make one region's fleet melt
// while its neighbors idle. Deterministic per seed; len(weights) regions.
func AssignRegions(n int, weights []float64, corr float64, seed int64) []int {
	if n <= 0 || len(weights) == 0 {
		return nil
	}
	if corr < 0 {
		corr = 0
	}
	if corr > 1 {
		corr = 1
	}
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	draw := func() int {
		if sum <= 0 {
			return rng.Intn(len(weights))
		}
		x := rng.Float64() * sum
		for i, w := range weights {
			if w <= 0 {
				continue
			}
			x -= w
			if x < 0 {
				return i
			}
		}
		return len(weights) - 1
	}
	out[0] = draw()
	for i := 1; i < n; i++ {
		if rng.Float64() < corr {
			out[i] = out[i-1]
		} else {
			out[i] = draw()
		}
	}
	return out
}
