package workload

import (
	"math"
	"sort"
	"strings"
	"testing"
)

// identical asserts two float slices are bit-for-bit equal.
func identical(t *testing.T, a, b []float64, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths differ: %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", what, i, a[i], b[i])
		}
	}
}

// TestShapedArrivalsDeterministic mirrors TestArrivalTimesDeterministic
// for the shaped generator: same seed → bit-identical arrivals, distinct
// seeds differ.
func TestShapedArrivalsDeterministic(t *testing.T) {
	shapes := []Shape{
		Sinusoid{Amplitude: 0.6, Peak: 0.75},
		FlashCrowd{At: 0.7, Ramp: 0.05, Hold: 0.1, Mult: 5},
	}
	a := ShapedArrivals(2000, 60, shapes, 42)
	b := ShapedArrivals(2000, 60, shapes, 42)
	identical(t, a, b, "same seed")
	c := ShapedArrivals(2000, 60, shapes, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestShapedArrivalsInvariants(t *testing.T) {
	shapes := []Shape{FlashCrowd{At: 0.5, Ramp: 0.1, Hold: 0.2, Mult: 8}}
	out := ShapedArrivals(5000, 120, shapes, 7)
	if len(out) != 5000 {
		t.Fatalf("got %d arrivals, want 5000 (shapes must conserve total)", len(out))
	}
	if !sort.Float64sAreSorted(out) {
		t.Fatal("arrivals not sorted")
	}
	for _, v := range out {
		if v < 0 || v >= 120 {
			t.Fatalf("arrival %v outside [0,120)", v)
		}
	}
	// The flash plateau [0.6,0.7] must be ~8× denser than the flat tail.
	inWindow := func(ts []float64, lo, hi float64) int {
		n := 0
		for _, v := range ts {
			if v >= lo && v < hi {
				n++
			}
		}
		return n
	}
	plateau := inWindow(out, 0.6*120, 0.7*120)
	flat := inWindow(out, 0.0, 0.1*120)
	if plateau < 4*flat {
		t.Fatalf("plateau density %d vs flat %d: flash crowd not expressed", plateau, flat)
	}
	// Edge cases.
	if got := ShapedArrivals(0, 10, shapes, 1); got != nil {
		t.Fatalf("zero total: %v", got)
	}
	if got := ShapedArrivals(10, 0, shapes, 1); got != nil {
		t.Fatalf("zero duration: %v", got)
	}
	// No shapes degrades to a uniform trace.
	uni := ShapedArrivals(100, 10, nil, 3)
	if len(uni) != 100 || !sort.Float64sAreSorted(uni) {
		t.Fatalf("uniform fallback broken: %d arrivals", len(uni))
	}
}

func TestSinusoidIntensity(t *testing.T) {
	s := Sinusoid{Amplitude: 0.6, Peak: 0.75}
	if got := s.Intensity(0.75); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("peak intensity %v, want 1.6", got)
	}
	if got := s.Intensity(0.25); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("trough intensity %v, want 0.4", got)
	}
	// Matches diurnalWeights' functional form at the window midpoints.
	w := diurnalWeights(24)
	for i := range w {
		u := float64(i) / 24
		if got := s.Intensity(u); math.Abs(got-w[i]) > 1e-9 {
			t.Fatalf("window %d: Sinusoid %v vs diurnalWeights %v", i, got, w[i])
		}
	}
}

func TestFlashCrowdIntensity(t *testing.T) {
	f := FlashCrowd{At: 0.5, Ramp: 0.1, Hold: 0.2, Mult: 5}
	for _, tc := range []struct {
		u, want float64
	}{
		{0.0, 1}, {0.49, 1}, // before
		{0.55, 3},           // mid-ramp
		{0.6, 5}, {0.79, 5}, // plateau
		{0.85, 3},          // mid-fall
		{0.9, 1}, {1.0, 1}, // after
	} {
		if got := f.Intensity(tc.u); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Intensity(%v) = %v, want %v", tc.u, got, tc.want)
		}
	}
	// Mult ≤ 1 and zero-width ramps stay well-defined.
	if got := (FlashCrowd{At: 0.5, Mult: 0.5}).Intensity(0.5); got != 1 {
		t.Fatalf("sub-unit Mult intensity %v, want 1", got)
	}
	step := FlashCrowd{At: 0.5, Hold: 0.2, Mult: 4}
	if got := step.Intensity(0.5); got != 4 {
		t.Fatalf("zero-ramp rising edge %v, want 4", got)
	}
}

// TestAssignRegionsDeterministic: same seed → identical assignment,
// distinct seeds differ — the region generator's half of the satellite.
func TestAssignRegionsDeterministic(t *testing.T) {
	weights := []float64{4, 2, 1, 1}
	a := AssignRegions(3000, weights, 0.8, 42)
	b := AssignRegions(3000, weights, 0.8, 42)
	if len(a) != 3000 || len(b) != 3000 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := AssignRegions(3000, weights, 0.8, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical assignments")
	}
}

func TestAssignRegionsSkewAndCorrelation(t *testing.T) {
	weights := []float64{3, 1}
	iid := AssignRegions(20000, weights, 0, 9)
	counts := [2]int{}
	for _, r := range iid {
		if r < 0 || r > 1 {
			t.Fatalf("region index %d out of range", r)
		}
		counts[r]++
	}
	// 3:1 skew should land near 75/25.
	frac := float64(counts[0]) / 20000
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("region 0 fraction %v, want ≈0.75", frac)
	}
	// Correlation lengthens same-region runs: count transitions.
	runs := func(assign []int) int {
		n := 1
		for i := 1; i < len(assign); i++ {
			if assign[i] != assign[i-1] {
				n++
			}
		}
		return n
	}
	sticky := AssignRegions(20000, weights, 0.9, 9)
	if runs(sticky) >= runs(iid)/2 {
		t.Fatalf("corr=0.9 runs %d not much fewer than iid runs %d", runs(sticky), runs(iid))
	}
	// Edge cases.
	if got := AssignRegions(0, weights, 0.5, 1); got != nil {
		t.Fatalf("n=0: %v", got)
	}
	if got := AssignRegions(5, nil, 0.5, 1); got != nil {
		t.Fatalf("no weights: %v", got)
	}
	// All-zero weights fall back to uniform rather than panicking.
	uni := AssignRegions(100, []float64{0, 0}, 0.5, 1)
	if len(uni) != 100 {
		t.Fatalf("zero-weight fallback: %d", len(uni))
	}
}

func TestShapeLabel(t *testing.T) {
	if got := ShapeLabel(nil); got != "uniform" {
		t.Fatalf("empty label %q", got)
	}
	got := ShapeLabel([]Shape{Sinusoid{Amplitude: 0.6, Peak: 0.75}, FlashCrowd{At: 0.7, Ramp: 0.05, Hold: 0.1, Mult: 5}})
	for _, want := range []string{"sinusoid", "flash", "·"} {
		if !strings.Contains(got, want) {
			t.Fatalf("label %q missing %q", got, want)
		}
	}
}
