package workload

import (
	"testing"
	"testing/quick"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{DailyTotal: 0, Windows: 24}); err == nil {
		t.Fatal("expected error for zero total")
	}
	if _, err := Generate(Config{DailyTotal: 100, Windows: 0}); err == nil {
		t.Fatal("expected error for zero windows")
	}
	if _, err := Generate(Config{DailyTotal: 100, Windows: 4, Pattern: Pattern(99)}); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
}

func TestUniformExactTotal(t *testing.T) {
	tr, err := Generate(Config{Pattern: Uniform, DailyTotal: 1001, Windows: 24})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 1001 {
		t.Fatalf("total = %d", tr.Total())
	}
	// Uniform: windows differ by at most the remainder.
	min, max := tr.Windows[0], tr.Windows[0]
	for _, w := range tr.Windows {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if max-min > 17 { // remainder lands on one window
		t.Fatalf("uniform spread %d..%d", min, max)
	}
}

func TestDiurnalShape(t *testing.T) {
	tr, err := Generate(Config{Pattern: Diurnal, DailyTotal: 240_000, Windows: 24})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 240_000 {
		t.Fatalf("total = %d", tr.Total())
	}
	// Peak in the evening hours (window 18 ± 3), trough before dawn.
	peakIdx, troughIdx := 0, 0
	for i, w := range tr.Windows {
		if w > tr.Windows[peakIdx] {
			peakIdx = i
		}
		if w < tr.Windows[troughIdx] {
			troughIdx = i
		}
	}
	if peakIdx < 15 || peakIdx > 21 {
		t.Errorf("peak at window %d, want evening", peakIdx)
	}
	if troughIdx > 12 {
		t.Errorf("trough at window %d, want pre-dawn", troughIdx)
	}
	ratio := float64(tr.Peak()) / float64(tr.Windows[troughIdx])
	if ratio < 2 || ratio > 6 {
		t.Errorf("peak/trough = %v, want ~4", ratio)
	}
}

func TestBurstyAddsSpikes(t *testing.T) {
	base, _ := Generate(Config{Pattern: Diurnal, DailyTotal: 240_000, Windows: 24})
	burst, err := Generate(Config{Pattern: Bursty, DailyTotal: 240_000, Windows: 24, Seed: 5, BurstProb: 0.3, BurstScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if burst.Total() <= base.Total() {
		t.Fatalf("bursty total %d not above diurnal %d", burst.Total(), base.Total())
	}
	// Deterministic per seed.
	again, _ := Generate(Config{Pattern: Bursty, DailyTotal: 240_000, Windows: 24, Seed: 5, BurstProb: 0.3, BurstScale: 4})
	for i := range burst.Windows {
		if burst.Windows[i] != again.Windows[i] {
			t.Fatal("bursty trace not deterministic")
		}
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{Uniform: "uniform", Diurnal: "diurnal", Bursty: "bursty"} {
		if p.String() != want {
			t.Fatalf("%v", p)
		}
	}
	if Pattern(7).String() == "" {
		t.Fatal("unknown pattern string")
	}
}

func TestArrivalTimesWindowSums(t *testing.T) {
	tr, err := Generate(Config{Pattern: Bursty, DailyTotal: 5000, Windows: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const windowSec = 10.0
	at := ArrivalTimes(tr, windowSec, 99)
	if int64(len(at)) != tr.Total() {
		t.Fatalf("got %d arrivals, trace total %d", len(at), tr.Total())
	}
	// Sorted ascending, and each window realizes exactly its count.
	perWindow := make([]int64, len(tr.Windows))
	for i, a := range at {
		if i > 0 && a < at[i-1] {
			t.Fatalf("arrivals not sorted at %d: %v < %v", i, a, at[i-1])
		}
		w := int(a / windowSec)
		if w < 0 || w >= len(tr.Windows) {
			t.Fatalf("arrival %v outside trace horizon", a)
		}
		perWindow[w]++
	}
	for w := range perWindow {
		if perWindow[w] != tr.Windows[w] {
			t.Fatalf("window %d has %d arrivals, trace says %d", w, perWindow[w], tr.Windows[w])
		}
	}
}

func TestArrivalTimesDeterministic(t *testing.T) {
	tr, _ := Generate(Config{Pattern: Diurnal, DailyTotal: 1200, Windows: 6})
	a := ArrivalTimes(tr, 5, 42)
	b := ArrivalTimes(tr, 5, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := ArrivalTimes(tr, 5, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestArrivalTimesEdgeCases(t *testing.T) {
	if got := ArrivalTimes(nil, 10, 1); got != nil {
		t.Fatalf("nil trace: %v", got)
	}
	tr := &Trace{Windows: []int64{5}}
	if got := ArrivalTimes(tr, 0, 1); got != nil {
		t.Fatalf("zero window seconds: %v", got)
	}
	// Zero-count windows contribute nothing but keep later windows aligned.
	tr = &Trace{Windows: []int64{0, 3, 0, 2}}
	at := ArrivalTimes(tr, 10, 7)
	if len(at) != 5 {
		t.Fatalf("got %d arrivals, want 5", len(at))
	}
	for _, a := range at[:3] {
		if a < 10 || a >= 20 {
			t.Fatalf("arrival %v outside window 1", a)
		}
	}
	for _, a := range at[3:] {
		if a < 30 || a >= 40 {
			t.Fatalf("arrival %v outside window 3", a)
		}
	}
}

// Property: Uniform and Diurnal realize the daily total exactly for any
// window count and total.
func TestExactTotalProperty(t *testing.T) {
	f := func(totRaw uint32, winRaw uint8) bool {
		total := int64(totRaw%1_000_000) + 1
		windows := int(winRaw%96) + 1
		for _, p := range []Pattern{Uniform, Diurnal} {
			tr, err := Generate(Config{Pattern: p, DailyTotal: total, Windows: windows})
			if err != nil || tr.Total() != total {
				return false
			}
			for _, w := range tr.Windows {
				if w < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
