// Package workload generates deterministic request-arrival traces for the
// paper's motivating scenario (Section 1): an Internet service feeding a
// CNN inference pipeline. The paper sizes its experiments with fixed image
// counts; this package supplies the time dimension — diurnal, bursty and
// uniform arrival patterns — so examples can plan window by window.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Pattern selects an arrival shape.
type Pattern int

// Arrival patterns.
const (
	// Uniform spreads the daily volume evenly.
	Uniform Pattern = iota
	// Diurnal follows a day/night sinusoid with an evening peak, the
	// shape of consumer photo-upload traffic.
	Diurnal
	// Bursty is diurnal plus random spikes (viral events).
	Bursty
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Diurnal:
		return "diurnal"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Trace is a sequence of per-window request counts.
type Trace struct {
	Pattern Pattern
	Windows []int64
}

// Total returns the trace's request sum.
func (t *Trace) Total() int64 {
	var s int64
	for _, w := range t.Windows {
		s += w
	}
	return s
}

// Peak returns the largest window.
func (t *Trace) Peak() int64 {
	var m int64
	for _, w := range t.Windows {
		if w > m {
			m = w
		}
	}
	return m
}

// Config parameterizes trace generation.
type Config struct {
	Pattern Pattern
	// DailyTotal is the target number of requests per day.
	DailyTotal int64
	// Windows is the number of windows per day (e.g. 24 for hourly).
	Windows int
	// BurstProb is the per-window probability of a spike (Bursty only).
	BurstProb float64
	// BurstScale multiplies a window during a spike (Bursty only).
	BurstScale float64
	Seed       int64
}

// Generate builds one day's trace. The realized total matches DailyTotal
// exactly for Uniform and Diurnal; bursts add volume on top.
func Generate(cfg Config) (*Trace, error) {
	if cfg.DailyTotal <= 0 {
		return nil, fmt.Errorf("workload: non-positive daily total %d", cfg.DailyTotal)
	}
	if cfg.Windows < 1 {
		return nil, fmt.Errorf("workload: need ≥1 window, got %d", cfg.Windows)
	}
	tr := &Trace{Pattern: cfg.Pattern, Windows: make([]int64, cfg.Windows)}
	switch cfg.Pattern {
	case Uniform:
		fillProportional(tr.Windows, flatWeights(cfg.Windows), cfg.DailyTotal)
	case Diurnal:
		fillProportional(tr.Windows, diurnalWeights(cfg.Windows), cfg.DailyTotal)
	case Bursty:
		fillProportional(tr.Windows, diurnalWeights(cfg.Windows), cfg.DailyTotal)
		rng := rand.New(rand.NewSource(cfg.Seed))
		prob := cfg.BurstProb
		if prob <= 0 {
			prob = 0.08
		}
		scale := cfg.BurstScale
		if scale <= 1 {
			scale = 3
		}
		for i := range tr.Windows {
			if rng.Float64() < prob {
				tr.Windows[i] = int64(float64(tr.Windows[i]) * scale)
			}
		}
	default:
		return nil, fmt.Errorf("workload: unknown pattern %v", cfg.Pattern)
	}
	return tr, nil
}

// ArrivalTimes expands a trace's per-window counts into individual arrival
// timestamps (seconds from trace start, sorted ascending). Within each
// window the arrivals are a Poisson process conditioned on the window's
// count — i.e. sorted iid-uniform offsets, the standard order-statistics
// construction — so inter-arrival gaps are exponential-like and bursts
// cluster naturally. The expansion is deterministic per seed, and every
// window contributes exactly its count: len(result) == t.Total().
func ArrivalTimes(t *Trace, windowSeconds float64, seed int64) []float64 {
	if t == nil || windowSeconds <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, t.Total())
	for w, count := range t.Windows {
		if count <= 0 {
			continue
		}
		base := float64(w) * windowSeconds
		offsets := make([]float64, count)
		for i := range offsets {
			offsets[i] = rng.Float64() * windowSeconds
		}
		sort.Float64s(offsets)
		for _, o := range offsets {
			out = append(out, base+o)
		}
	}
	return out
}

func flatWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// diurnalWeights peaks around 3/4 of the day (early evening) and bottoms
// out before dawn, with a 4:1 peak-to-trough ratio.
func diurnalWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		phase := 2 * math.Pi * (float64(i)/float64(n) - 0.75)
		w[i] = 1 + 0.6*math.Cos(phase)
	}
	return w
}

// fillProportional distributes total across windows ∝ weights, assigning
// remainders to the largest windows so the sum is exact.
func fillProportional(dst []int64, weights []float64, total int64) {
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	var assigned int64
	maxIdx := 0
	for i, w := range weights {
		dst[i] = int64(float64(total) * w / wsum)
		assigned += dst[i]
		if w > weights[maxIdx] {
			maxIdx = i
		}
	}
	dst[maxIdx] += total - assigned
}
