package models

import (
	"math"
	"strings"
	"testing"

	"ccperf/internal/tensor"
)

const goodSpec = `
# a small custom classifier
input 3x32x32
conv name=c1 filters=16 k=3
batchnorm name=bn1 channels=16
relu
maxpool k=2
resblock name=b1 filters=16
resblock name=b2 filters=32 stride=2
gap
flatten
fc name=fc out=10
softmax
`

func TestParseSpecBuildsWorkingNet(t *testing.T) {
	net, err := ParseSpec("custom", goodSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Init(5); err != nil {
		t.Fatal(err)
	}
	if out := net.OutShape(); out.C != 10 {
		t.Fatalf("out shape = %v", out)
	}
	in := tensor.New(3, 32, 32)
	for i := range in.Data {
		in.Data[i] = float32(i%9) / 9
	}
	y := net.Forward(in, nil)
	if s := y.Sum(); math.Abs(s-1) > 1e-4 {
		t.Fatalf("softmax sum = %v", s)
	}
	// c1 + 2×(2 convs) + b2 projection + fc = 7 prunables.
	if got := len(net.Prunables()); got != 7 {
		t.Fatalf("prunables = %d, want 7", got)
	}
	if _, ok := net.PrunableByName("b2-conv1"); !ok {
		t.Fatal("resblock conv missing")
	}
}

func TestParseSpecInception(t *testing.T) {
	spec := `
input 3x64x64
conv name=stem filters=192 k=3
inception name=i3a 64 96 128 16 32 32
gap
flatten
fc out=5
`
	net, err := ParseSpec("inc", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := net.PrunableByName("i3a-3x3"); !ok {
		t.Fatal("inception branch conv missing")
	}
}

func TestParseSpecDefaults(t *testing.T) {
	net, err := ParseSpec("d", "input 1x16x16\nconv filters=4\nmaxpool\nflatten\nfc out=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	// conv default k=3 pad=1 keeps 16x16; maxpool default k=2 stride=2 → 8.
	if s, _ := net.InputShapeOf("flatten1"); s.H != 8 {
		// Auto-names count all auto-generated layers; find via shape walk.
		t.Logf("flatten input = %v", s)
	}
	if net.OutShape().C != 2 {
		t.Fatalf("out = %v", net.OutShape())
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"no input first":    "conv filters=4",
		"bad shape":         "input 3x32",
		"bad dim":           "input 3xAx32",
		"unknown directive": "input 1x8x8\nwarp",
		"missing filters":   "input 1x8x8\nconv k=3",
		"bad arg":           "input 1x8x8\nconv filters=4 k=x",
		"bad inception":     "input 1x8x8\ninception 1 2 3",
		"bn no channels":    "input 1x8x8\nbatchnorm",
		"bad dropout":       "input 1x8x8\ndropout rate=2",
		"empty spec":        "   \n# only comments\n",
		"malformed kv":      "input 1x8x8\nconv filters=",
	}
	for name, spec := range cases {
		if _, err := ParseSpec("x", spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseSpecCommentsAndWhitespace(t *testing.T) {
	spec := "  input 1x8x8   # shape\n\n\t# full-line comment\nconv filters=2 # trailing\nflatten\nfc out=2\n"
	net, err := ParseSpec("c", spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Layers()) != 3 {
		t.Fatalf("layers = %d", len(net.Layers()))
	}
}

func TestParseSpecRoundTripThroughEngine(t *testing.T) {
	// A spec-built net behaves identically to the same net built in Go.
	spec := "input 2x8x8\nconv name=c filters=4 k=3 stride=1 pad=1\nflatten\nfc name=f out=3\nsoftmax"
	fromSpec, err := ParseSpec("s", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := fromSpec.Init(3); err != nil {
		t.Fatal(err)
	}
	if got := fromSpec.TotalCost().Params; got != int64(4*2*9+4+3*4*8*8+3) {
		t.Fatalf("params = %d", got)
	}
	if !strings.Contains(fromSpec.Layers()[0].Name(), "c") {
		t.Fatal("layer naming")
	}
}
