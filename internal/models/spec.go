package models

import (
	"fmt"
	"strconv"
	"strings"

	"ccperf/internal/nn"
)

// ParseSpec builds a network from a compact text specification — the
// Caffe-prototxt role in this reproduction, so custom architectures can be
// defined without writing Go. One directive per line; '#' starts a
// comment. The first directive must be `input CxHxW`.
//
//	input 3x32x32
//	conv name=c1 filters=16 k=3 stride=1 pad=1 groups=1
//	batchnorm
//	relu
//	maxpool k=3 stride=2
//	resblock name=b1 filters=32 stride=2      # two 3x3 convs + batchnorms
//	inception name=i3a 64 96 128 16 32 32
//	avgpool k=2 stride=2
//	gap                                        # global average pool
//	flatten
//	dropout rate=0.5
//	fc name=fc1 out=10
//	softmax
//
// Defaults: conv stride=1 pad=(k-1)/2 groups=1; pools stride=k; names are
// auto-generated (`conv3`, `pool5`, …) when omitted.
func ParseSpec(name, spec string) (*nn.Net, error) {
	var net *nn.Net
	lineNo := 0
	auto := 0
	autoName := func(kind string) string {
		auto++
		return fmt.Sprintf("%s%d", kind, auto)
	}
	for _, raw := range strings.Split(spec, "\n") {
		lineNo++
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		directive := fields[0]
		args, pos, err := parseArgs(fields[1:])
		if err != nil {
			return nil, fmt.Errorf("models: line %d: %w", lineNo, err)
		}
		if net == nil {
			if directive != "input" {
				return nil, fmt.Errorf("models: line %d: first directive must be input, got %q", lineNo, directive)
			}
			if len(pos) != 1 {
				return nil, fmt.Errorf("models: line %d: input wants CxHxW", lineNo)
			}
			shape, err := parseShape(pos[0])
			if err != nil {
				return nil, fmt.Errorf("models: line %d: %w", lineNo, err)
			}
			net = nn.NewNet(name, shape)
			continue
		}
		layer, err := buildLayer(directive, args, pos, autoName)
		if err != nil {
			return nil, fmt.Errorf("models: line %d: %w", lineNo, err)
		}
		net.Add(layer)
	}
	if net == nil {
		return nil, fmt.Errorf("models: empty specification")
	}
	return net, nil
}

// parseArgs splits fields into key=value args and positional ints.
func parseArgs(fields []string) (map[string]string, []string, error) {
	args := map[string]string{}
	var pos []string
	for _, f := range fields {
		if k, v, ok := strings.Cut(f, "="); ok {
			if k == "" || v == "" {
				return nil, nil, fmt.Errorf("bad argument %q", f)
			}
			args[k] = v
		} else {
			pos = append(pos, f)
		}
	}
	return args, pos, nil
}

func parseShape(s string) (nn.Shape, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return nn.Shape{}, fmt.Errorf("shape %q: want CxHxW", s)
	}
	var dims [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nn.Shape{}, fmt.Errorf("shape %q: bad dimension %q", s, p)
		}
		dims[i] = v
	}
	return nn.Shape{C: dims[0], H: dims[1], W: dims[2]}, nil
}

func intArg(args map[string]string, key string, def int) (int, error) {
	v, ok := args[key]
	if !ok {
		if def < 0 {
			return 0, fmt.Errorf("missing required argument %s", key)
		}
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("argument %s=%q: %w", key, v, err)
	}
	return n, nil
}

func buildLayer(directive string, args map[string]string, pos []string, autoName func(string) string) (nn.Layer, error) {
	name := args["name"]
	switch directive {
	case "conv":
		if name == "" {
			name = autoName("conv")
		}
		filters, err := intArg(args, "filters", -1)
		if err != nil {
			return nil, err
		}
		k, err := intArg(args, "k", 3)
		if err != nil {
			return nil, err
		}
		stride, err := intArg(args, "stride", 1)
		if err != nil {
			return nil, err
		}
		pad, err := intArg(args, "pad", (k-1)/2)
		if err != nil {
			return nil, err
		}
		groups, err := intArg(args, "groups", 1)
		if err != nil {
			return nil, err
		}
		return nn.NewConv(name, filters, k, k, stride, stride, pad, pad, groups), nil
	case "fc":
		if name == "" {
			name = autoName("fc")
		}
		out, err := intArg(args, "out", -1)
		if err != nil {
			return nil, err
		}
		return nn.NewFC(name, out), nil
	case "maxpool", "avgpool":
		if name == "" {
			name = autoName("pool")
		}
		k, err := intArg(args, "k", 2)
		if err != nil {
			return nil, err
		}
		stride, err := intArg(args, "stride", k)
		if err != nil {
			return nil, err
		}
		if directive == "maxpool" {
			p := nn.NewMaxPool(name, k, stride)
			return p, nil
		}
		return nn.NewAvgPool(name, k, stride), nil
	case "gap":
		if name == "" {
			name = autoName("gap")
		}
		return nn.NewGlobalAvgPool(name), nil
	case "relu":
		if name == "" {
			name = autoName("relu")
		}
		return nn.NewReLU(name), nil
	case "lrn":
		if name == "" {
			name = autoName("lrn")
		}
		return nn.NewLRN(name), nil
	case "batchnorm":
		// Channel count is resolved at Init time via a thin wrapper: the
		// spec cannot know it, so require channels=N or defer.
		c, err := intArg(args, "channels", -1)
		if err != nil {
			return nil, fmt.Errorf("batchnorm requires channels=N (the spec parser cannot infer it)")
		}
		if name == "" {
			name = autoName("bn")
		}
		return nn.NewBatchNorm(name, c), nil
	case "dropout":
		if name == "" {
			name = autoName("drop")
		}
		rate := 0.5
		if v, ok := args["rate"]; ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f >= 1 {
				return nil, fmt.Errorf("bad dropout rate %q", v)
			}
			rate = f
		}
		return nn.NewDropout(name, rate), nil
	case "flatten":
		if name == "" {
			name = autoName("flatten")
		}
		return nn.NewFlatten(name), nil
	case "softmax":
		if name == "" {
			name = autoName("softmax")
		}
		return nn.NewSoftmax(name), nil
	case "inception":
		if name == "" {
			name = autoName("inception")
		}
		if len(pos) != 6 {
			return nil, fmt.Errorf("inception wants 6 branch widths (c1 r3 c3 r5 c5 proj), got %d", len(pos))
		}
		var w [6]int
		for i, p := range pos {
			v, err := strconv.Atoi(p)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("inception width %q", p)
			}
			w[i] = v
		}
		return nn.NewInception(name, w[0], w[1], w[2], w[3], w[4], w[5]), nil
	case "resblock":
		if name == "" {
			name = autoName("res")
		}
		filters, err := intArg(args, "filters", -1)
		if err != nil {
			return nil, err
		}
		stride, err := intArg(args, "stride", 1)
		if err != nil {
			return nil, err
		}
		return nn.NewResidual(name,
			nn.NewConv(name+"-conv1", filters, 3, 3, stride, stride, 1, 1, 1),
			nn.NewBatchNorm(name+"-bn1", filters),
			nn.NewReLU(name+"-relu"),
			nn.NewConv(name+"-conv2", filters, 3, 3, 1, 1, 1, 1, 1),
			nn.NewBatchNorm(name+"-bn2", filters),
		), nil
	default:
		return nil, fmt.Errorf("unknown directive %q", directive)
	}
}
