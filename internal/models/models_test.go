package models

import (
	"strings"
	"testing"

	"ccperf/internal/nn"
	"ccperf/internal/tensor"
)

func TestCaffenetTable1Shapes(t *testing.T) {
	net := Caffenet()
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	// Table 1 output sizes.
	want := map[string]nn.Shape{
		"conv1": {C: 96, H: 55, W: 55},
		"conv2": {C: 256, H: 27, W: 27},
		"conv3": {C: 384, H: 13, W: 13},
		"conv4": {C: 384, H: 13, W: 13},
		"conv5": {C: 256, H: 13, W: 13},
	}
	for name, w := range want {
		p, ok := net.PrunableByName(name)
		if !ok {
			t.Fatalf("layer %q not found", name)
		}
		in, ok := net.InputShapeOf(name)
		if !ok {
			t.Fatalf("input shape of %q not found", name)
		}
		got := p.(*nn.Conv).OutShape(in)
		if got != w {
			t.Errorf("%s out shape = %v, want %v", name, got, w)
		}
	}
	// Final output: 1000-class probabilities.
	if out := net.OutShape(); out.C != 1000 || out.H != 1 || out.W != 1 {
		t.Errorf("output shape = %v, want 1000x1x1", net.OutShape())
	}
}

func TestCaffenetFilterSizes(t *testing.T) {
	// Table 1 filter sizes: 11x11x3, 5x5x48, 3x3x256, 3x3x192, 3x3x192.
	rows := Table1()
	want := map[string]string{
		"conv1": "11x11x3",
		"conv2": "5x5x48",
		"conv3": "3x3x256",
		"conv4": "3x3x192",
		"conv5": "3x3x192",
	}
	seen := 0
	for _, r := range rows {
		if w, ok := want[r.Layer]; ok {
			seen++
			if r.FilterSize != w {
				t.Errorf("%s filter = %s, want %s", r.Layer, r.FilterSize, w)
			}
		}
	}
	if seen != 5 {
		t.Fatalf("saw %d conv rows, want 5", seen)
	}
	if rows[0].Layer != "input" || rows[0].Size != "224 x 224 x 3" {
		t.Errorf("first row = %+v, want input 224 x 224 x 3", rows[0])
	}
	if len(rows) != 9 {
		t.Errorf("Table 1 has %d rows, want 9", len(rows))
	}
}

func TestCaffenetParamCount(t *testing.T) {
	net := Caffenet()
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	p := net.Params()
	// AlexNet/Caffenet has ~61M parameters (60.97M).
	if p < 55_000_000 || p > 65_000_000 {
		t.Fatalf("Caffenet params = %d, want ~61M", p)
	}
}

func TestGooglenetStructure(t *testing.T) {
	net := Googlenet()
	if err := net.Init(2); err != nil {
		t.Fatal(err)
	}
	// 9 inception blocks ×6 convs + conv1 + conv2-reduce + conv2 = 57 convs.
	convs := net.ConvLayers()
	if len(convs) != 57 {
		t.Fatalf("Googlenet has %d convs, want 57", len(convs))
	}
	inceptions := 0
	for _, l := range net.Layers() {
		if l.Kind() == "inception" {
			inceptions++
		}
	}
	if inceptions != 9 {
		t.Fatalf("Googlenet has %d inception blocks, want 9", inceptions)
	}
	// Paper: Googlenet has far fewer parameters than Caffenet (~4–7M).
	p := net.Params()
	if p < 4_000_000 || p > 8_000_000 {
		t.Fatalf("Googlenet params = %d, want 4M–8M", p)
	}
	if out := net.OutShape(); out.C != 1000 {
		t.Fatalf("output classes = %d, want 1000", out.C)
	}
}

func TestGooglenetSelectedLayersExist(t *testing.T) {
	net := Googlenet()
	if err := net.Init(2); err != nil {
		t.Fatal(err)
	}
	for _, name := range GooglenetSelectedConvNames() {
		if _, ok := net.PrunableByName(name); !ok {
			t.Errorf("selected layer %q not found", name)
		}
	}
}

func TestGooglenetInceptionOutputWidths(t *testing.T) {
	net := Googlenet()
	if err := net.Init(2); err != nil {
		t.Fatal(err)
	}
	// 3b output = 128+192+96+64 = 480 channels at 28x28;
	// 4e output = 832 at 14x14; 5b output = 1024 at 7x7.
	want := map[string]nn.Shape{
		"inception-3b": {C: 480, H: 28, W: 28},
		"inception-4e": {C: 832, H: 14, W: 14},
		"inception-5b": {C: 1024, H: 7, W: 7},
	}
	for _, l := range net.Layers() {
		if w, ok := want[l.Name()]; ok {
			in, _ := net.InputShapeOf(l.Name())
			if got := l.OutShape(in); got != w {
				t.Errorf("%s out = %v, want %v", l.Name(), got, w)
			}
		}
	}
}

func TestScaledCaffenetForwardRuns(t *testing.T) {
	net := CaffenetAt(64)
	if err := net.Init(3); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(3, 64, 64)
	for i := range in.Data {
		in.Data[i] = float32(i%17) / 17
	}
	out := net.Forward(in, nil)
	if out.Len() != 1000 {
		t.Fatalf("output len = %d, want 1000", out.Len())
	}
	// Softmax output must sum to ~1.
	if s := out.Sum(); s < 0.999 || s > 1.001 {
		t.Fatalf("softmax sum = %v, want 1", s)
	}
}

func TestScaledGooglenetForwardRuns(t *testing.T) {
	net := GooglenetAt(64)
	if err := net.Init(4); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(3, 64, 64)
	for i := range in.Data {
		in.Data[i] = float32(i%13) / 13
	}
	out := net.Forward(in, nil)
	if out.Len() != 1000 {
		t.Fatalf("output len = %d, want 1000", out.Len())
	}
	if s := out.Sum(); s < 0.999 || s > 1.001 {
		t.Fatalf("softmax sum = %v, want 1", s)
	}
}

func TestBuild(t *testing.T) {
	for _, name := range []string{CaffenetName, GooglenetName} {
		n, err := Build(name)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if n.Name != name {
			t.Errorf("Build(%q).Name = %q", name, n.Name)
		}
	}
	if _, err := Build("resnet"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("Build(resnet) err = %v, want unknown model", err)
	}
}

func TestConvTimeShareDominatedByConv(t *testing.T) {
	// Figure 3's premise: convolution layers dominate inference work.
	net := Caffenet()
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	var convF, totalF int64
	for _, lc := range net.LayerCosts() {
		totalF += lc.Cost.FLOPs
		if lc.Layer.Kind() == "conv" {
			convF += lc.Cost.FLOPs
		}
	}
	if share := float64(convF) / float64(totalF); share < 0.85 {
		t.Fatalf("conv FLOP share = %.2f, want > 0.85", share)
	}
}

func TestCaffenetAtTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for side < 64")
		}
	}()
	CaffenetAt(32)
}
