// Package models defines the two CNN architectures the paper evaluates:
// Caffenet (the Caffe implementation of AlexNet, Table 1 / Figure 1) and
// Googlenet (inception-v1, Szegedy et al.). Both are built on the inference
// engine in internal/nn with exact full-scale geometry, plus reduced-
// resolution variants for fast in-process execution.
package models

import (
	"fmt"

	"ccperf/internal/nn"
)

// Canonical model names.
const (
	CaffenetName  = "caffenet"
	GooglenetName = "googlenet"
)

// InputSide is the paper's RGB input resolution for both CNNs (224x224).
const InputSide = 224

// Caffenet builds the full-scale Caffenet of Table 1: five convolution
// layers (conv2/4/5 grouped ×2, as in the Caffe reference model — hence
// Table 1's filter depths of 48 and 192) and three fully-connected layers.
func Caffenet() *nn.Net { return CaffenetAt(InputSide) }

// CaffenetAt builds Caffenet with a reduced square input resolution.
// side must be at least 64 so every pooled plane stays non-empty.
func CaffenetAt(side int) *nn.Net {
	if side < 64 {
		panic(fmt.Sprintf("models: CaffenetAt side %d < 64", side))
	}
	n := nn.NewNet(CaffenetName, nn.Shape{C: 3, H: side, W: side})
	n.Add(
		nn.NewConv("conv1", 96, 11, 11, 4, 4, 2, 2, 1),
		nn.NewReLU("relu1"),
		nn.NewMaxPool("pool1", 3, 2),
		nn.NewLRN("norm1"),

		nn.NewConv("conv2", 256, 5, 5, 1, 1, 2, 2, 2),
		nn.NewReLU("relu2"),
		nn.NewMaxPool("pool2", 3, 2),
		nn.NewLRN("norm2"),

		nn.NewConv("conv3", 384, 3, 3, 1, 1, 1, 1, 1),
		nn.NewReLU("relu3"),
		nn.NewConv("conv4", 384, 3, 3, 1, 1, 1, 1, 2),
		nn.NewReLU("relu4"),
		nn.NewConv("conv5", 256, 3, 3, 1, 1, 1, 1, 2),
		nn.NewReLU("relu5"),
		nn.NewMaxPool("pool5", 3, 2),

		nn.NewFlatten("flatten"),
		nn.NewFC("fc1", 4096),
		nn.NewReLU("relu6"),
		nn.NewDropout("drop1", 0.5),
		nn.NewFC("fc2", 4096),
		nn.NewReLU("relu7"),
		nn.NewDropout("drop2", 0.5),
		nn.NewFC("fc3", 1000),
		nn.NewSoftmax("prob"),
	)
	return n
}

// CaffenetConvNames lists Caffenet's prunable convolution layers in order.
// These are the five layers swept in Figure 6.
func CaffenetConvNames() []string {
	return []string{"conv1", "conv2", "conv3", "conv4", "conv5"}
}

// Googlenet builds the full-scale inception-v1 network: two main
// convolution stages and nine inception blocks of six convolutions each —
// the "56 convolution layers" of Section 4.1.1.
func Googlenet() *nn.Net { return GooglenetAt(InputSide) }

// GooglenetAt builds Googlenet with a reduced square input resolution.
// side must be at least 64.
func GooglenetAt(side int) *nn.Net {
	if side < 64 {
		panic(fmt.Sprintf("models: GooglenetAt side %d < 64", side))
	}
	n := nn.NewNet(GooglenetName, nn.Shape{C: 3, H: side, W: side})
	n.Add(
		nn.NewConv("conv1-7x7-s2", 64, 7, 7, 2, 2, 3, 3, 1),
		nn.NewReLU("relu-conv1"),
		nn.NewMaxPool("pool1-3x3-s2", 3, 2),
		nn.NewLRN("norm1"),

		nn.NewConv("conv2-3x3-reduce", 64, 1, 1, 1, 1, 0, 0, 1),
		nn.NewReLU("relu-conv2-reduce"),
		nn.NewConv("conv2-3x3", 192, 3, 3, 1, 1, 1, 1, 1),
		nn.NewReLU("relu-conv2"),
		nn.NewLRN("norm2"),
		nn.NewMaxPool("pool2-3x3-s2", 3, 2),

		nn.NewInception("inception-3a", 64, 96, 128, 16, 32, 32),
		nn.NewInception("inception-3b", 128, 128, 192, 32, 96, 64),
		nn.NewMaxPool("pool3-3x3-s2", 3, 2),

		nn.NewInception("inception-4a", 192, 96, 208, 16, 48, 64),
		nn.NewInception("inception-4b", 160, 112, 224, 24, 64, 64),
		nn.NewInception("inception-4c", 128, 128, 256, 24, 64, 64),
		nn.NewInception("inception-4d", 112, 144, 288, 32, 64, 64),
		nn.NewInception("inception-4e", 256, 160, 320, 32, 128, 128),
		nn.NewMaxPool("pool4-3x3-s2", 3, 2),

		nn.NewInception("inception-5a", 256, 160, 320, 32, 128, 128),
		nn.NewInception("inception-5b", 384, 192, 384, 48, 128, 128),

		nn.NewGlobalAvgPool("pool5-avg"),
		nn.NewDropout("drop", 0.4),
		nn.NewFlatten("flatten"),
		nn.NewFC("loss3-classifier", 1000),
		nn.NewSoftmax("prob"),
	)
	return n
}

// GooglenetSelectedConvNames lists the six convolution layers Figure 7
// sweeps, drawn from different depths of the network.
func GooglenetSelectedConvNames() []string {
	return []string{
		"conv1-7x7-s2",
		"conv2-3x3",
		"inception-3a-3x3",
		"inception-4d-5x5",
		"inception-4e-5x5",
		"inception-5a-3x3",
	}
}

// Build constructs a named model at full scale. It returns an error for an
// unknown name.
func Build(name string) (*nn.Net, error) {
	switch name {
	case CaffenetName:
		return Caffenet(), nil
	case GooglenetName:
		return Googlenet(), nil
	default:
		return nil, fmt.Errorf("models: unknown model %q", name)
	}
}

// LayerRow is one row of the paper's Table 1.
type LayerRow struct {
	Layer      string
	Size       string // output size, HxWxC
	NumFilters int    // 0 for non-conv layers
	FilterSize string // "-" for non-conv layers
}

// Table1 returns the Caffenet layer inventory exactly as Table 1 lists it:
// input, the five convolution layers with output sizes and filter shapes
// (per-group input depth, hence 5x5x48 etc.), and the three FC widths.
func Table1() []LayerRow {
	net := Caffenet()
	if err := net.Init(1); err != nil {
		panic(err)
	}
	rows := []LayerRow{{Layer: "input", Size: "224 x 224 x 3", FilterSize: "-"}}
	for _, name := range CaffenetConvNames() {
		p, _ := net.PrunableByName(name)
		c := p.(*nn.Conv)
		in, _ := net.InputShapeOf(name)
		out := c.OutShape(in)
		rows = append(rows, LayerRow{
			Layer:      name,
			Size:       fmt.Sprintf("%d x %d x %d", out.H, out.W, out.C),
			NumFilters: c.OutC,
			FilterSize: fmt.Sprintf("%dx%dx%d", c.KH, c.KW, in.C/c.Groups),
		})
	}
	for _, fc := range []struct {
		name string
		n    int
	}{{"fc1", 4096}, {"fc2", 4096}, {"fc3", 1000}} {
		rows = append(rows, LayerRow{Layer: fc.name, Size: fmt.Sprintf("%d", fc.n), FilterSize: "-"})
	}
	return rows
}
