package models

import (
	"fmt"

	"ccperf/internal/nn"
)

// TinyResNetName identifies the extension model (not in the paper).
const TinyResNetName = "tinyresnet"

// TinyResNetAt builds a small residual network — stem, three basic blocks
// (the middle one downsampling with a projection shortcut), global average
// pooling and a classifier. It is not one of the paper's CNNs; it exists
// to demonstrate that the library generalizes: an uncalibrated model runs
// through the same pruning machinery and is timed by the GPU simulator's
// effective-FLOPs fallback. side must be ≥ 32.
func TinyResNetAt(side, classes int) (*nn.Net, error) {
	if side < 32 {
		return nil, fmt.Errorf("models: TinyResNetAt side %d < 32", side)
	}
	if classes < 2 {
		return nil, fmt.Errorf("models: TinyResNetAt classes %d < 2", classes)
	}
	n := nn.NewNet(TinyResNetName, nn.Shape{C: 3, H: side, W: side})
	block := func(name string, filters, stride int) *nn.Residual {
		return nn.NewResidual(name,
			nn.NewConv(name+"-conv1", filters, 3, 3, stride, stride, 1, 1, 1),
			nn.NewBatchNorm(name+"-bn1", filters),
			nn.NewReLU(name+"-relu"),
			nn.NewConv(name+"-conv2", filters, 3, 3, 1, 1, 1, 1, 1),
			nn.NewBatchNorm(name+"-bn2", filters),
		)
	}
	n.Add(
		nn.NewConv("stem", 16, 3, 3, 1, 1, 1, 1, 1),
		nn.NewBatchNorm("stem-bn", 16),
		nn.NewReLU("stem-relu"),
		block("block1", 16, 1),
		block("block2", 32, 2),
		block("block3", 32, 1),
		nn.NewGlobalAvgPool("gap"),
		nn.NewFlatten("flatten"),
		nn.NewFC("fc", classes),
		nn.NewSoftmax("prob"),
	)
	return n, nil
}
