package models

import (
	"math"
	"testing"

	"ccperf/internal/prune"
	"ccperf/internal/tensor"
)

func TestTinyResNetValidation(t *testing.T) {
	if _, err := TinyResNetAt(16, 10); err == nil {
		t.Fatal("expected error for small side")
	}
	if _, err := TinyResNetAt(32, 1); err == nil {
		t.Fatal("expected error for 1 class")
	}
}

func TestTinyResNetForward(t *testing.T) {
	n, err := TinyResNetAt(32, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Init(11); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(3, 32, 32)
	for i := range in.Data {
		in.Data[i] = float32(i%19)/19 - 0.5
	}
	out := n.Forward(in, nil)
	if out.Len() != 10 {
		t.Fatalf("output len = %d", out.Len())
	}
	if s := out.Sum(); math.Abs(s-1) > 1e-4 {
		t.Fatalf("softmax sum = %v", s)
	}
}

func TestTinyResNetStructure(t *testing.T) {
	n, err := TinyResNetAt(32, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Init(11); err != nil {
		t.Fatal(err)
	}
	// stem + 2 convs × 3 blocks + 1 projection (block2) = 8 convs.
	if got := len(n.ConvLayers()); got != 8 {
		t.Fatalf("convs = %d, want 8", got)
	}
	// Prunables include the FC: 9.
	if got := len(n.Prunables()); got != 9 {
		t.Fatalf("prunables = %d, want 9", got)
	}
	// block2's downsampling created a projection named block2-proj.
	if _, ok := n.PrunableByName("block2-proj"); !ok {
		t.Fatal("block2 projection missing")
	}
}

func TestTinyResNetPruningReducesWork(t *testing.T) {
	n, err := TinyResNetAt(32, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Init(11); err != nil {
		t.Fatal(err)
	}
	before := n.TotalCost().EffectiveFLOPs
	if err := prune.Apply(n, prune.NewDegree("block3-conv2", 0.75), prune.L1Filter); err != nil {
		t.Fatal(err)
	}
	after := n.TotalCost().EffectiveFLOPs
	if after >= before {
		t.Fatalf("pruning did not reduce effective FLOPs: %d → %d", before, after)
	}
	// The pruned network still produces a valid distribution.
	in := tensor.New(3, 32, 32)
	out := n.Forward(in, nil)
	if s := out.Sum(); math.Abs(s-1) > 1e-4 {
		t.Fatalf("softmax sum after pruning = %v", s)
	}
}
