// Package fault expresses failure scenarios as pure data. The paper's
// cost model (Section 3.4) prices a fleet that always runs to completion,
// but the cheapest region of its cost-accuracy space — spot and
// preemptible instances, highly consolidated GPU serving — is exactly
// where instances get revoked, straggle, and crash. A Schedule describes
// such a scenario deterministically: every event carries an explicit
// target and time, and the only randomness (per-request error injection,
// sampled scenario generation) flows from an explicit seed through
// counter-based hashing, so a chaos run under `go test -race` is
// bit-for-bit reproducible regardless of goroutine interleaving.
//
// Two consumers share the package: internal/cluster applies Preempt and
// Slow events in simulated time, internal/serving applies Crash and
// Errors events in wall time through its Injector hook. The spec grammar
// both CLIs accept is in parse.go and docs/RESILIENCE.md.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind classifies one fault event.
type Kind int

// Fault kinds.
const (
	// Preempt revokes an instance at time At: in-flight work is
	// interrupted at batch granularity and the instance never returns
	// (the spot-market revocation model).
	Preempt Kind = iota
	// Slow multiplies the target's service time by Factor over
	// [At, At+Duration] — a transient straggler.
	Slow
	// Crash takes a serving replica down over [At, At+Duration]; batches
	// executed in the window fail, and the replica recovers afterwards.
	Crash
	// Errors injects per-request failures on the target with probability
	// Rate, decided by the schedule's seeded hash.
	Errors
	// RegionDown takes a whole region offline over [At, At+Duration]: a
	// correlated failure that hits every shard (and so every replica)
	// placed in Event.Region at once — the scenario per-replica faults
	// cannot express, because the per-replica failures it causes are
	// perfectly correlated.
	RegionDown
	// SpotSpike multiplies a region's instance pricing by Factor over
	// [At, At+Duration] — the spot-market price excursion that makes a
	// regional fleet suddenly unaffordable without taking it down.
	SpotSpike
)

// String names the kind (the spec keyword).
func (k Kind) String() string {
	switch k {
	case Preempt:
		return "preempt"
	case Slow:
		return "slow"
	case Crash:
		return "crash"
	case Errors:
		return "err"
	case RegionDown:
		return "region"
	case SpotSpike:
		return "spot"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllTargets addresses every instance or replica.
const AllTargets = -1

// Event is one scheduled fault — pure data, no behavior.
type Event struct {
	Kind Kind
	// Target is the instance (cluster) or replica (serving) index;
	// AllTargets (-1) hits the whole fleet.
	Target int
	// At is the event time in seconds from run start (simulated seconds
	// for the cluster, wall seconds since Gateway.Start for serving).
	At float64
	// Duration is the length of Slow and Crash windows.
	Duration float64
	// Factor is the Slow service-time multiplier (≥ 1), or the SpotSpike
	// price multiplier (≥ 1).
	Factor float64
	// Rate is the Errors injection probability in [0, 1].
	Rate float64
	// Region names the region a RegionDown or SpotSpike event addresses
	// (those kinds ignore Target).
	Region string
}

// Schedule is a full failure scenario: an event list plus the seed that
// drives every probabilistic decision.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Validate checks every event's fields against its kind.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if e.Target < AllTargets {
			return fmt.Errorf("fault: event %d target %d (want ≥ %d)", i, e.Target, AllTargets)
		}
		if e.At < 0 || math.IsNaN(e.At) {
			return fmt.Errorf("fault: event %d time %v (want ≥ 0)", i, e.At)
		}
		switch e.Kind {
		case Preempt:
		case Slow:
			if e.Duration <= 0 {
				return fmt.Errorf("fault: slow event %d duration %v (want > 0)", i, e.Duration)
			}
			if e.Factor < 1 {
				return fmt.Errorf("fault: slow event %d factor %v (want ≥ 1)", i, e.Factor)
			}
		case Crash:
			if e.Duration <= 0 {
				return fmt.Errorf("fault: crash event %d duration %v (want > 0)", i, e.Duration)
			}
		case Errors:
			if e.Rate < 0 || e.Rate > 1 {
				return fmt.Errorf("fault: err event %d rate %v (want in [0,1])", i, e.Rate)
			}
		case RegionDown:
			if e.Region == "" {
				return fmt.Errorf("fault: region event %d names no region", i)
			}
			if e.Duration <= 0 {
				return fmt.Errorf("fault: region event %d duration %v (want > 0)", i, e.Duration)
			}
		case SpotSpike:
			if e.Region == "" {
				return fmt.Errorf("fault: spot event %d names no region", i)
			}
			if e.Duration <= 0 {
				return fmt.Errorf("fault: spot event %d duration %v (want > 0)", i, e.Duration)
			}
			if e.Factor < 1 {
				return fmt.Errorf("fault: spot event %d factor %v (want ≥ 1)", i, e.Factor)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// matches reports whether the event addresses the given target.
func (e Event) matches(target int) bool {
	return e.Target == AllTargets || e.Target == target
}

// PreemptAt returns the earliest revocation time scheduled for the
// target, or +Inf when it is never preempted. Nil-safe.
func (s *Schedule) PreemptAt(target int) float64 {
	at := math.Inf(1)
	if s == nil {
		return at
	}
	for _, e := range s.Events {
		if e.Kind == Preempt && e.matches(target) && e.At < at {
			at = e.At
		}
	}
	return at
}

// SlowFactor returns the service-time multiplier in effect on the target
// at time t: the product of all active Slow windows (1 when none).
func (s *Schedule) SlowFactor(target int, t float64) float64 {
	f := 1.0
	if s == nil {
		return f
	}
	for _, e := range s.Events {
		if e.Kind == Slow && e.matches(target) && t >= e.At && t < e.At+e.Duration {
			f *= e.Factor
		}
	}
	return f
}

// CrashActive reports whether the target is inside a Crash window at
// elapsed seconds since start.
func (s *Schedule) CrashActive(target int, elapsed float64) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == Crash && e.matches(target) && elapsed >= e.At && elapsed < e.At+e.Duration {
			return true
		}
	}
	return false
}

// ErrorRate returns the combined injection probability for the target:
// 1 − ∏(1 − rate) over every matching Errors event, i.e. independent
// injectors compose.
func (s *Schedule) ErrorRate(target int) float64 {
	if s == nil {
		return 0
	}
	pass := 1.0
	for _, e := range s.Events {
		if e.Kind == Errors && e.matches(target) {
			pass *= 1 - e.Rate
		}
	}
	return 1 - pass
}

// FailRequest decides deterministically whether request id's attempt on
// the target is injected to fail. The decision is a counter-based hash of
// (seed, target, id, attempt) — independent of execution order, so a
// race-detected chaos test replays identically — and a fresh draw per
// attempt, so retries can succeed.
func (s *Schedule) FailRequest(target int, id int64, attempt int) bool {
	if s == nil {
		return false
	}
	rate := s.ErrorRate(target)
	if rate <= 0 {
		return false
	}
	x := uint64(s.Seed)
	x = mix(x ^ uint64(id)*0x9e3779b97f4a7c15)
	x = mix(x ^ uint64(attempt)*0xbf58476d1ce4e5b9)
	x = mix(x ^ uint64(int64(target)+2)*0x94d049bb133111eb)
	return Frac(x) < rate
}

// RegionDownActive reports whether the region is inside a RegionDown
// window at elapsed seconds since start. Nil-safe.
func (s *Schedule) RegionDownActive(region string, elapsed float64) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == RegionDown && e.Region == region && elapsed >= e.At && elapsed < e.At+e.Duration {
			return true
		}
	}
	return false
}

// PriceMultiplier returns the region's instance-price multiplier at
// elapsed seconds: the product of all active SpotSpike factors (1 when
// none). Nil-safe.
func (s *Schedule) PriceMultiplier(region string, elapsed float64) float64 {
	f := 1.0
	if s == nil {
		return f
	}
	for _, e := range s.Events {
		if e.Kind == SpotSpike && e.Region == region && elapsed >= e.At && elapsed < e.At+e.Duration {
			f *= e.Factor
		}
	}
	return f
}

// PriceIntegral returns ∫ PriceMultiplier(region, t) dt over [from, to] —
// the factor a region's rental bill is scaled by across the window, spikes
// included. Overlapping spikes compound multiplicatively, exactly as
// PriceMultiplier reports them.
func (s *Schedule) PriceIntegral(region string, from, to float64) float64 {
	if to <= from {
		return 0
	}
	// Segment [from, to] at every spike boundary, then integrate the
	// (piecewise-constant) multiplier by evaluating each segment's midpoint.
	cuts := []float64{from, to}
	if s != nil {
		for _, e := range s.Events {
			if e.Kind != SpotSpike || e.Region != region {
				continue
			}
			for _, c := range [2]float64{e.At, e.At + e.Duration} {
				if c > from && c < to {
					cuts = append(cuts, c)
				}
			}
		}
	}
	sort.Float64s(cuts)
	var sum float64
	for i := 1; i < len(cuts); i++ {
		lo, hi := cuts[i-1], cuts[i]
		if hi <= lo {
			continue
		}
		sum += s.PriceMultiplier(region, (lo+hi)/2) * (hi - lo)
	}
	return sum
}

// Injector is the hook the serving gateway's replica execute path calls.
// *Schedule implements it; tests substitute scripted fakes.
type Injector interface {
	// CrashActive reports whether the replica is down at elapsed seconds
	// since gateway start (a crashed replica fails whole batches).
	CrashActive(replica int, elapsed float64) bool
	// FailRequest decides whether one request attempt on the replica is
	// injected to fail.
	FailRequest(replica int, id int64, attempt int) bool
}

var _ Injector = (*Schedule)(nil)

// RegionInjector is a per-shard view of a schedule for a gateway placed in
// one region: replica-addressed Crash and Errors events pass through, and
// a RegionDown window covering the shard's region reads as every replica
// crashed at once — the correlated failure the shard router must survive.
type RegionInjector struct {
	Schedule *Schedule
	Region   string
}

// CrashActive reports a crash when either the replica's own Crash window
// or the whole region's RegionDown window is active.
func (ri RegionInjector) CrashActive(replica int, elapsed float64) bool {
	return ri.Schedule.CrashActive(replica, elapsed) ||
		ri.Schedule.RegionDownActive(ri.Region, elapsed)
}

// FailRequest delegates to the schedule's seeded per-request hash.
func (ri RegionInjector) FailRequest(replica int, id int64, attempt int) bool {
	return ri.Schedule.FailRequest(replica, id, attempt)
}

// ForRegion returns the schedule viewed from one region's shard — the
// Injector to hand that shard's gateway. Nil-safe (a nil schedule injects
// nothing).
func (s *Schedule) ForRegion(region string) RegionInjector {
	return RegionInjector{Schedule: s, Region: region}
}

var _ Injector = RegionInjector{}

// mix is the splitmix64 finalizer — the counter-based hash behind every
// probabilistic decision in the package.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Frac maps a hash to [0, 1). Exported so the serving layer derives its
// deterministic retry jitter from the same primitive.
func Frac(x uint64) float64 {
	return float64(mix(x)>>11) / float64(1<<53)
}

// SampleConfig parameterizes Sample.
type SampleConfig struct {
	Seed      int64
	Instances int
	// Horizon is the scenario length in seconds.
	Horizon float64
	// PreemptProb is each instance's probability of one revocation at a
	// uniform time within the horizon (the flat-hazard spot model).
	PreemptProb float64
	// SlowProb is each instance's probability of one straggler window of
	// SlowDuration seconds at SlowFactor, starting uniformly within the
	// horizon.
	SlowProb     float64
	SlowFactor   float64
	SlowDuration float64
}

// Sample draws a random but fully seed-determined failure scenario — the
// quickest way to ask "what does a day on spot instances cost me" without
// hand-writing a spec.
func Sample(cfg SampleConfig) (*Schedule, error) {
	if cfg.Instances <= 0 {
		return nil, fmt.Errorf("fault: sample needs a positive instance count")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("fault: sample needs a positive horizon")
	}
	if cfg.PreemptProb < 0 || cfg.PreemptProb > 1 || cfg.SlowProb < 0 || cfg.SlowProb > 1 {
		return nil, fmt.Errorf("fault: sample probabilities must be in [0,1]")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{Seed: cfg.Seed}
	for i := 0; i < cfg.Instances; i++ {
		if rng.Float64() < cfg.PreemptProb {
			s.Events = append(s.Events, Event{Kind: Preempt, Target: i, At: rng.Float64() * cfg.Horizon})
		}
		if rng.Float64() < cfg.SlowProb && cfg.SlowDuration > 0 && cfg.SlowFactor >= 1 {
			s.Events = append(s.Events, Event{
				Kind: Slow, Target: i,
				At:       rng.Float64() * cfg.Horizon,
				Duration: cfg.SlowDuration,
				Factor:   cfg.SlowFactor,
			})
		}
	}
	return s, s.Validate()
}
