package fault

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestValidate(t *testing.T) {
	bad := []Schedule{
		{Events: []Event{{Kind: Preempt, Target: -2}}},
		{Events: []Event{{Kind: Preempt, At: -1}}},
		{Events: []Event{{Kind: Slow, Duration: 0, Factor: 2}}},
		{Events: []Event{{Kind: Slow, Duration: 10, Factor: 0.5}}},
		{Events: []Event{{Kind: Crash, Duration: 0}}},
		{Events: []Event{{Kind: Errors, Rate: 1.5}}},
		{Events: []Event{{Kind: Kind(99)}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d: expected validation error", i)
		}
	}
	var nilSched *Schedule
	if err := nilSched.Validate(); err != nil {
		t.Fatalf("nil schedule: %v", err)
	}
}

func TestPreemptAt(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: Preempt, Target: 1, At: 100},
		{Kind: Preempt, Target: 1, At: 50},
		{Kind: Preempt, Target: AllTargets, At: 200},
	}}
	if got := s.PreemptAt(1); got != 50 {
		t.Fatalf("PreemptAt(1) = %v, want the earliest (50)", got)
	}
	if got := s.PreemptAt(0); got != 200 {
		t.Fatalf("PreemptAt(0) = %v, want the fleet-wide 200", got)
	}
	var nilSched *Schedule
	if got := nilSched.PreemptAt(0); !math.IsInf(got, 1) {
		t.Fatalf("nil PreemptAt = %v, want +Inf", got)
	}
}

func TestSlowFactorWindows(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: Slow, Target: 0, At: 10, Duration: 10, Factor: 2},
		{Kind: Slow, Target: AllTargets, At: 15, Duration: 10, Factor: 3},
	}}
	if got := s.SlowFactor(0, 5); got != 1 {
		t.Fatalf("before window: %v", got)
	}
	if got := s.SlowFactor(0, 12); got != 2 {
		t.Fatalf("first window: %v", got)
	}
	if got := s.SlowFactor(0, 17); got != 6 {
		t.Fatalf("overlap should compose: %v", got)
	}
	if got := s.SlowFactor(1, 17); got != 3 {
		t.Fatalf("fleet-wide window on other target: %v", got)
	}
	if got := s.SlowFactor(0, 25); got != 1 {
		t.Fatalf("after both windows: %v", got)
	}
	// Window end is exclusive.
	if got := s.SlowFactor(0, 20); got != 3 {
		t.Fatalf("at first window end: %v", got)
	}
}

func TestCrashActiveAndErrorRate(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: Crash, Target: 0, At: 1, Duration: 2},
		{Kind: Errors, Target: AllTargets, Rate: 0.5},
		{Kind: Errors, Target: 1, Rate: 0.5},
	}}
	if s.CrashActive(0, 0.5) || !s.CrashActive(0, 1.5) || s.CrashActive(0, 3) {
		t.Fatal("crash window misevaluated")
	}
	if s.CrashActive(1, 1.5) {
		t.Fatal("crash leaked to another replica")
	}
	if got := s.ErrorRate(0); got != 0.5 {
		t.Fatalf("ErrorRate(0) = %v", got)
	}
	// Independent injectors compose: 1 − 0.5·0.5.
	if got := s.ErrorRate(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("ErrorRate(1) = %v, want 0.75", got)
	}
}

func TestFailRequestDeterministicAndCalibrated(t *testing.T) {
	s := &Schedule{Seed: 42, Events: []Event{{Kind: Errors, Target: AllTargets, Rate: 0.3}}}
	n := 20000
	hits := 0
	for i := 0; i < n; i++ {
		a := s.FailRequest(0, int64(i), 1)
		if b := s.FailRequest(0, int64(i), 1); a != b {
			t.Fatalf("request %d: nondeterministic decision", i)
		}
		if a {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("injection rate %v, want ≈0.3", got)
	}
	// Fresh draw per attempt: over many ids, attempt 2 disagrees with
	// attempt 1 somewhere.
	differs := false
	for i := 0; i < 100 && !differs; i++ {
		differs = s.FailRequest(0, int64(i), 1) != s.FailRequest(0, int64(i), 2)
	}
	if !differs {
		t.Fatal("attempts share draws; retries could never succeed")
	}
	var nilSched *Schedule
	if nilSched.FailRequest(0, 1, 1) {
		t.Fatal("nil schedule injected a failure")
	}
}

func TestParseRoundTrip(t *testing.T) {
	// Table of schedules covering every kind, both target forms, and
	// fractional values; each must survive Schedule → String → Parse.
	cases := []*Schedule{
		{},
		{Seed: 7},
		{Events: []Event{{Kind: Preempt, Target: 2, At: 3600}}},
		{Seed: 9, Events: []Event{
			{Kind: Preempt, Target: 0, At: 1800.5},
			{Kind: Slow, Target: 1, At: 10, Duration: 600, Factor: 2.5},
			{Kind: Crash, Target: 0, At: 2, Duration: 1.25},
			{Kind: Errors, Target: AllTargets, Rate: 0.05},
			{Kind: Errors, Target: 3, Rate: 0.125},
		}},
		{Events: []Event{{Kind: Preempt, Target: AllTargets, At: 1_000_000}}},
	}
	for i, want := range cases {
		spec := want.String()
		got, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("case %d: parse %q: %v", i, spec, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("case %d: round-trip %q\n got %+v\nwant %+v", i, spec, got, want)
		}
	}
}

// normalize maps nil and empty event slices together for DeepEqual.
func normalize(s *Schedule) Schedule {
	out := Schedule{Seed: s.Seed}
	out.Events = append(out.Events, s.Events...)
	return out
}

// TestParseRandomRoundTrip is the fuzz-style sweep: generate random valid
// schedules and require String→Parse identity on each.
func TestParseRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rnd := func() float64 { return math.Round(rng.Float64()*1e6) / 1e3 } // 3 decimals, ≤ 1000
	for i := 0; i < 200; i++ {
		s := &Schedule{Seed: rng.Int63n(1000)}
		for n := rng.Intn(6); n > 0; n-- {
			target := rng.Intn(5) - 1
			switch Kind(rng.Intn(4)) {
			case Preempt:
				s.Events = append(s.Events, Event{Kind: Preempt, Target: target, At: rnd()})
			case Slow:
				s.Events = append(s.Events, Event{Kind: Slow, Target: target, At: rnd(), Duration: rnd() + 0.001, Factor: 1 + rnd()})
			case Crash:
				s.Events = append(s.Events, Event{Kind: Crash, Target: target, At: rnd(), Duration: rnd() + 0.001})
			case Errors:
				s.Events = append(s.Events, Event{Kind: Errors, Target: target, Rate: math.Mod(rnd(), 1)})
			}
		}
		spec := s.String()
		got, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("iter %d: parse %q: %v", i, spec, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(s)) {
			t.Fatalf("iter %d: round-trip %q diverged\n got %+v\nwant %+v", i, spec, got, s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"boom@0:1",            // unknown kind
		"preempt@x:1",         // bad target
		"preempt@-1:1",        // negative target index (use *)
		"preempt@0",           // missing time
		"slow@0:1+2",          // missing factor
		"slow@0:1x2",          // missing duration
		"crash@0:5",           // missing duration
		"err:2",               // rate out of range
		"seed=abc",            // bad seed
		"preempt@0:1 extra",   // trailing junk inside a token
		"preempt@0:1,,crash0", // malformed second token
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("spec %q: expected parse error", spec)
		}
	}
	s, err := ParseSchedule("  ")
	if err != nil || len(s.Events) != 0 {
		t.Fatalf("blank spec: %v, %+v", err, s)
	}
}

func TestParseWhitespaceAndStarTargets(t *testing.T) {
	s, err := ParseSchedule(" preempt@*:10 , err:0.1 , seed=3 ")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 3 || len(s.Events) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Events[0].Target != AllTargets || s.Events[1].Target != AllTargets {
		t.Fatalf("star/default targets: %+v", s.Events)
	}
}

func TestSampleDeterministicAndBounded(t *testing.T) {
	cfg := SampleConfig{
		Seed: 5, Instances: 8, Horizon: 3600,
		PreemptProb: 0.5, SlowProb: 0.5, SlowFactor: 2, SlowDuration: 300,
	}
	a, err := Sample(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scenarios")
	}
	for _, e := range a.Events {
		if e.At < 0 || e.At > cfg.Horizon {
			t.Fatalf("event time %v outside horizon", e.At)
		}
		if e.Target < 0 || e.Target >= cfg.Instances {
			t.Fatalf("event target %d outside fleet", e.Target)
		}
	}
	if len(a.Events) == 0 {
		t.Fatal("p=0.5 over 8 instances sampled no events (seed degenerate?)")
	}
	if _, err := Sample(SampleConfig{Instances: 0, Horizon: 1}); err == nil {
		t.Fatal("expected error for zero instances")
	}
	if _, err := Sample(SampleConfig{Instances: 1, Horizon: 0}); err == nil {
		t.Fatal("expected error for zero horizon")
	}
	if _, err := Sample(SampleConfig{Instances: 1, Horizon: 1, PreemptProb: 2}); err == nil {
		t.Fatal("expected error for probability out of range")
	}
}
