package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSchedule parses the CLI fault-spec grammar into a Schedule. A spec
// is a comma-separated list of tokens:
//
//	seed=<n>                     hash seed for err injection (default 0)
//	preempt@<target>:<at>        revoke instance <target> at <at> seconds
//	slow@<target>:<at>+<dur>x<factor>
//	                             straggle <target> over [<at>, <at>+<dur>]
//	                             with service time × <factor>
//	crash@<target>:<at>+<dur>    take replica <target> down for <dur> s
//	err@<target>:<rate>          inject failures on <target> at <rate>
//	err:<rate>                   same, on every replica
//
// <target> is a zero-based index or `*` for the whole fleet. Times are
// seconds (simulated for `ccperf simulate`, wall for `ccperf loadtest`).
// Example: "preempt@2:3600,slow@0:1800+900x2.5,err:0.05,seed=7".
// The empty string parses to an empty (fault-free) schedule.
func ParseSchedule(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if v, ok := strings.CutPrefix(tok, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %w", v, err)
			}
			s.Seed = seed
			continue
		}
		e, err := parseEvent(tok)
		if err != nil {
			return nil, err
		}
		s.Events = append(s.Events, e)
	}
	return s, s.Validate()
}

// parseEvent parses one non-seed token.
func parseEvent(tok string) (Event, error) {
	name, rest, found := strings.Cut(tok, "@")
	target := AllTargets
	if found {
		tstr, tail, ok := strings.Cut(rest, ":")
		if !ok {
			return Event{}, fmt.Errorf("fault: token %q: missing ':' after target", tok)
		}
		if tstr != "*" {
			n, err := strconv.Atoi(tstr)
			if err != nil || n < 0 {
				return Event{}, fmt.Errorf("fault: token %q: bad target %q", tok, tstr)
			}
			target = n
		}
		rest = tail
	} else {
		name, rest, found = strings.Cut(tok, ":")
		if !found {
			return Event{}, fmt.Errorf("fault: token %q: want kind@target:... or err:rate", tok)
		}
	}
	num := func(v, what string) (float64, error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("fault: token %q: bad %s %q", tok, what, v)
		}
		return f, nil
	}
	switch name {
	case "preempt":
		at, err := num(rest, "time")
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: Preempt, Target: target, At: at}, nil
	case "slow":
		span, factorStr, ok := strings.Cut(rest, "x")
		if !ok {
			return Event{}, fmt.Errorf("fault: token %q: slow wants <at>+<dur>x<factor>", tok)
		}
		atStr, durStr, ok := strings.Cut(span, "+")
		if !ok {
			return Event{}, fmt.Errorf("fault: token %q: slow wants <at>+<dur>x<factor>", tok)
		}
		at, err := num(atStr, "time")
		if err != nil {
			return Event{}, err
		}
		dur, err := num(durStr, "duration")
		if err != nil {
			return Event{}, err
		}
		factor, err := num(factorStr, "factor")
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: Slow, Target: target, At: at, Duration: dur, Factor: factor}, nil
	case "crash":
		atStr, durStr, ok := strings.Cut(rest, "+")
		if !ok {
			return Event{}, fmt.Errorf("fault: token %q: crash wants <at>+<dur>", tok)
		}
		at, err := num(atStr, "time")
		if err != nil {
			return Event{}, err
		}
		dur, err := num(durStr, "duration")
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: Crash, Target: target, At: at, Duration: dur}, nil
	case "err":
		rate, err := num(rest, "rate")
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: Errors, Target: target, Rate: rate}, nil
	default:
		return Event{}, fmt.Errorf("fault: token %q: unknown kind %q", tok, name)
	}
}

// String renders the schedule in the spec grammar; ParseSchedule(s.String())
// reconstructs an equal schedule (the round-trip the tests pin down).
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	for _, e := range s.Events {
		tgt := "*"
		if e.Target != AllTargets {
			tgt = strconv.Itoa(e.Target)
		}
		switch e.Kind {
		case Preempt:
			parts = append(parts, fmt.Sprintf("preempt@%s:%s", tgt, ftoa(e.At)))
		case Slow:
			parts = append(parts, fmt.Sprintf("slow@%s:%s+%sx%s", tgt, ftoa(e.At), ftoa(e.Duration), ftoa(e.Factor)))
		case Crash:
			parts = append(parts, fmt.Sprintf("crash@%s:%s+%s", tgt, ftoa(e.At), ftoa(e.Duration)))
		case Errors:
			if e.Target == AllTargets {
				parts = append(parts, fmt.Sprintf("err:%s", ftoa(e.Rate)))
			} else {
				parts = append(parts, fmt.Sprintf("err@%s:%s", tgt, ftoa(e.Rate)))
			}
		}
	}
	return strings.Join(parts, ",")
}

// ftoa formats a float with the shortest plain-decimal representation
// that parses back to the same value. Never exponent notation: a '+' in
// "1e+06" would collide with the '+' separating <at>+<dur>.
func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
