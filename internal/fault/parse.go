package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseSchedule parses the CLI fault-spec grammar into a Schedule. A spec
// is a comma-separated list of tokens:
//
//	seed=<n>                     hash seed for err injection (default 0)
//	preempt@<target>:<at>        revoke instance <target> at <at> seconds
//	slow@<target>:<at>+<dur>x<factor>
//	                             straggle <target> over [<at>, <at>+<dur>]
//	                             with service time × <factor>
//	crash@<target>:<at>+<dur>    take replica <target> down for <dur> s
//	err@<target>:<rate>          inject failures on <target> at <rate>
//	err:<rate>                   same, on every replica
//	region@<name>:<at>+<dur>     take every shard in region <name> down
//	                             over [<at>, <at>+<dur>] (correlated
//	                             regional failure)
//	spot@<name>:<at>+<dur>x<factor>
//	                             multiply region <name>'s instance pricing
//	                             by <factor> over the window (spot spike)
//
// <target> is a zero-based index or `*` for the whole fleet; <name> is a
// region name (internal/cloud.RegionCatalog, or any label the consumer
// assigns its shards). Times are seconds (simulated for `ccperf simulate`,
// wall for `ccperf loadtest`).
// Example: "preempt@2:3600,region@us-east:600+300,spot@eu-central:0+900x3".
// The empty string parses to an empty (fault-free) schedule. Parse errors
// name the offending token and its position in the spec.
func ParseSchedule(spec string) (*Schedule, error) {
	s := &Schedule{}
	offset, index := 0, 0
	for _, raw := range strings.Split(spec, ",") {
		start := offset
		offset += len(raw) + 1 // +1 for the separating comma
		tok := strings.TrimSpace(raw)
		if tok == "" {
			continue
		}
		index++
		// where pins the error to the token: its ordinal among the spec's
		// non-blank tokens and its 1-based character position.
		where := fmt.Sprintf("token %d %q at char %d", index, tok, start+strings.Index(raw, tok)+1)
		if v, ok := strings.CutPrefix(tok, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: %s: bad seed %q", where, v)
			}
			s.Seed = seed
			continue
		}
		e, err := parseEvent(tok, where)
		if err != nil {
			return nil, err
		}
		s.Events = append(s.Events, e)
	}
	return s, s.Validate()
}

// parseEvent parses one non-seed token; where prefixes every error with
// the token's spec position.
func parseEvent(tok, where string) (Event, error) {
	name, rest, found := strings.Cut(tok, "@")
	if !found {
		name, rest, found = strings.Cut(tok, ":")
		if !found {
			return Event{}, fmt.Errorf("fault: %s: want kind@target:... or err:rate", where)
		}
		if name != "err" {
			return Event{}, fmt.Errorf("fault: %s: only err may omit its @target", where)
		}
		return parseErrEvent(AllTargets, rest, where)
	}
	tstr, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return Event{}, fmt.Errorf("fault: %s: missing ':' after target", where)
	}
	num := func(v, what string) (float64, error) {
		f, err := strconv.ParseFloat(v, 64)
		// Non-finite values are rejected up front: "+Inf" would collide
		// with the '+' window separator on the String() round trip, and
		// NaN poisons every comparison downstream.
		if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
			return 0, fmt.Errorf("fault: %s: bad %s %q", where, what, v)
		}
		return f, nil
	}
	// The two region-scoped kinds address a named region, not a replica
	// index; everything else resolves tstr as an index (or `*`).
	switch name {
	case "region":
		at, dur, err := parseWindow(rest, where, num)
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: RegionDown, Target: AllTargets, Region: tstr, At: at, Duration: dur}, nil
	case "spot":
		span, factorStr, ok := strings.Cut(rest, "x")
		if !ok {
			return Event{}, fmt.Errorf("fault: %s: spot wants <at>+<dur>x<factor>", where)
		}
		at, dur, err := parseWindow(span, where, num)
		if err != nil {
			return Event{}, err
		}
		factor, err := num(factorStr, "factor")
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: SpotSpike, Target: AllTargets, Region: tstr, At: at, Duration: dur, Factor: factor}, nil
	}
	target := AllTargets
	if tstr != "*" {
		n, err := strconv.Atoi(tstr)
		if err != nil || n < 0 {
			return Event{}, fmt.Errorf("fault: %s: bad target %q", where, tstr)
		}
		target = n
	}
	switch name {
	case "preempt":
		at, err := num(rest, "time")
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: Preempt, Target: target, At: at}, nil
	case "slow":
		span, factorStr, ok := strings.Cut(rest, "x")
		if !ok {
			return Event{}, fmt.Errorf("fault: %s: slow wants <at>+<dur>x<factor>", where)
		}
		at, dur, err := parseWindow(span, where, num)
		if err != nil {
			return Event{}, err
		}
		factor, err := num(factorStr, "factor")
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: Slow, Target: target, At: at, Duration: dur, Factor: factor}, nil
	case "crash":
		at, dur, err := parseWindow(rest, where, num)
		if err != nil {
			return Event{}, err
		}
		return Event{Kind: Crash, Target: target, At: at, Duration: dur}, nil
	case "err":
		return parseErrEvent(target, rest, where)
	default:
		return Event{}, fmt.Errorf("fault: %s: unknown kind %q", where, name)
	}
}

// parseWindow parses the shared "<at>+<dur>" span syntax; where prefixes
// errors with the token's spec position.
func parseWindow(span, where string, num func(v, what string) (float64, error)) (at, dur float64, err error) {
	atStr, durStr, ok := strings.Cut(span, "+")
	if !ok {
		return 0, 0, fmt.Errorf("fault: %s: bad window %q (want <at>+<dur>)", where, span)
	}
	if at, err = num(atStr, "time"); err != nil {
		return 0, 0, err
	}
	if dur, err = num(durStr, "duration"); err != nil {
		return 0, 0, err
	}
	return at, dur, nil
}

// parseErrEvent parses the err payload (just a rate).
func parseErrEvent(target int, rest, where string) (Event, error) {
	rate, err := strconv.ParseFloat(rest, 64)
	if err != nil || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return Event{}, fmt.Errorf("fault: %s: bad rate %q", where, rest)
	}
	return Event{Kind: Errors, Target: target, Rate: rate}, nil
}

// String renders the schedule in the spec grammar; ParseSchedule(s.String())
// reconstructs an equal schedule (the round-trip the tests pin down).
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	for _, e := range s.Events {
		tgt := "*"
		if e.Target != AllTargets {
			tgt = strconv.Itoa(e.Target)
		}
		switch e.Kind {
		case Preempt:
			parts = append(parts, fmt.Sprintf("preempt@%s:%s", tgt, ftoa(e.At)))
		case Slow:
			parts = append(parts, fmt.Sprintf("slow@%s:%s+%sx%s", tgt, ftoa(e.At), ftoa(e.Duration), ftoa(e.Factor)))
		case Crash:
			parts = append(parts, fmt.Sprintf("crash@%s:%s+%s", tgt, ftoa(e.At), ftoa(e.Duration)))
		case Errors:
			if e.Target == AllTargets {
				parts = append(parts, fmt.Sprintf("err:%s", ftoa(e.Rate)))
			} else {
				parts = append(parts, fmt.Sprintf("err@%s:%s", tgt, ftoa(e.Rate)))
			}
		case RegionDown:
			parts = append(parts, fmt.Sprintf("region@%s:%s+%s", e.Region, ftoa(e.At), ftoa(e.Duration)))
		case SpotSpike:
			parts = append(parts, fmt.Sprintf("spot@%s:%s+%sx%s", e.Region, ftoa(e.At), ftoa(e.Duration), ftoa(e.Factor)))
		}
	}
	return strings.Join(parts, ",")
}

// ftoa formats a float with the shortest plain-decimal representation
// that parses back to the same value. Never exponent notation: a '+' in
// "1e+06" would collide with the '+' separating <at>+<dur>.
func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
