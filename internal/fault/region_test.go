package fault

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestRegionRoundTrip(t *testing.T) {
	cases := []*Schedule{
		{Events: []Event{{Kind: RegionDown, Target: AllTargets, Region: "us-east", At: 600, Duration: 300}}},
		{Seed: 11, Events: []Event{
			{Kind: RegionDown, Target: AllTargets, Region: "eu-central", At: 0.5, Duration: 2.25},
			{Kind: SpotSpike, Target: AllTargets, Region: "ap-south", At: 100, Duration: 900, Factor: 3.5},
			{Kind: Crash, Target: 1, At: 2, Duration: 1},
			{Kind: Errors, Target: AllTargets, Rate: 0.02},
		}},
		{Events: []Event{{Kind: SpotSpike, Target: AllTargets, Region: "us-west", At: 0, Duration: 1_000_000, Factor: 2}}},
	}
	for i, want := range cases {
		spec := want.String()
		got, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("case %d: parse %q: %v", i, spec, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("case %d: round-trip %q\n got %+v\nwant %+v", i, spec, got, want)
		}
	}
}

// TestRegionRandomRoundTrip extends the fuzz-style sweep over every kind,
// region-scoped ones included: random valid schedules must survive
// String→Parse bit for bit.
func TestRegionRandomRoundTrip(t *testing.T) {
	regions := []string{"us-west", "us-east", "eu-central", "ap-south"}
	rng := rand.New(rand.NewSource(23))
	rnd := func() float64 { return math.Round(rng.Float64()*1e6) / 1e3 }
	for i := 0; i < 200; i++ {
		s := &Schedule{Seed: rng.Int63n(1000)}
		for n := rng.Intn(6); n > 0; n-- {
			target := rng.Intn(5) - 1
			region := regions[rng.Intn(len(regions))]
			switch Kind(rng.Intn(6)) {
			case Preempt:
				s.Events = append(s.Events, Event{Kind: Preempt, Target: target, At: rnd()})
			case Slow:
				s.Events = append(s.Events, Event{Kind: Slow, Target: target, At: rnd(), Duration: rnd() + 0.001, Factor: 1 + rnd()})
			case Crash:
				s.Events = append(s.Events, Event{Kind: Crash, Target: target, At: rnd(), Duration: rnd() + 0.001})
			case Errors:
				s.Events = append(s.Events, Event{Kind: Errors, Target: target, Rate: math.Mod(rnd(), 1)})
			case RegionDown:
				s.Events = append(s.Events, Event{Kind: RegionDown, Target: AllTargets, Region: region, At: rnd(), Duration: rnd() + 0.001})
			case SpotSpike:
				s.Events = append(s.Events, Event{Kind: SpotSpike, Target: AllTargets, Region: region, At: rnd(), Duration: rnd() + 0.001, Factor: 1 + rnd()})
			}
		}
		spec := s.String()
		got, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("iter %d: parse %q: %v", i, spec, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(s)) {
			t.Fatalf("iter %d: round-trip %q diverged\n got %+v\nwant %+v", i, spec, got, s)
		}
	}
}

func TestRegionDownActive(t *testing.T) {
	s, err := ParseSchedule("region@us-east:10+5,region@us-east:30+5,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		at   float64
		want bool
	}{
		{9.99, false}, {10, true}, {14.99, true}, {15, false},
		{30, true}, {34.5, true}, {35, false},
	} {
		if got := s.RegionDownActive("us-east", tc.at); got != tc.want {
			t.Errorf("RegionDownActive(us-east, %v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if s.RegionDownActive("us-west", 12) {
		t.Fatal("outage leaked into another region")
	}
	var nilSched *Schedule
	if nilSched.RegionDownActive("us-east", 12) {
		t.Fatal("nil schedule reported an outage")
	}
}

func TestPriceMultiplierAndIntegral(t *testing.T) {
	s, err := ParseSchedule("spot@eu-central:10+10x3,spot@eu-central:15+10x2")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		at   float64
		want float64
	}{
		{5, 1}, {12, 3}, {17, 6}, {22, 2}, {30, 1},
	} {
		if got := s.PriceMultiplier("eu-central", tc.at); got != tc.want {
			t.Errorf("PriceMultiplier(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if got := s.PriceMultiplier("us-west", 12); got != 1 {
		t.Fatalf("spike leaked into another region: %v", got)
	}
	// ∫ over [0,30]: 10s at ×1, 5s at ×3, 5s at ×6, 5s at ×2, 5s at ×1.
	want := 10.0 + 5*3 + 5*6 + 5*2 + 5*1
	if got := s.PriceIntegral("eu-central", 0, 30); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PriceIntegral = %v, want %v", got, want)
	}
	// A fault-free region integrates to the plain window length.
	if got := s.PriceIntegral("us-west", 0, 30); math.Abs(got-30) > 1e-9 {
		t.Fatalf("flat integral = %v, want 30", got)
	}
	if got := s.PriceIntegral("eu-central", 20, 10); got != 0 {
		t.Fatalf("inverted window integral = %v, want 0", got)
	}
	var nilSched *Schedule
	if got := nilSched.PriceIntegral("eu-central", 0, 10); math.Abs(got-10) > 1e-9 {
		t.Fatalf("nil schedule integral = %v, want 10", got)
	}
}

func TestForRegionInjector(t *testing.T) {
	s, err := ParseSchedule("region@us-east:10+5,crash@1:2+3,err:0.5,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	east := s.ForRegion("us-east")
	west := s.ForRegion("us-west")
	// During the regional outage every replica of the east shard is down;
	// the west shard only sees its own replica-level crash window.
	if !east.CrashActive(0, 12) || !east.CrashActive(7, 12) {
		t.Fatal("regional outage should crash every replica in-region")
	}
	if west.CrashActive(0, 12) {
		t.Fatal("regional outage leaked into another region's shard")
	}
	if !west.CrashActive(1, 3) || west.CrashActive(0, 3) {
		t.Fatal("replica-level crash window misapplied through the region view")
	}
	// Per-request error injection passes through unchanged.
	if east.FailRequest(0, 42, 1) != s.FailRequest(0, 42, 1) {
		t.Fatal("FailRequest diverged through the region view")
	}
}

func TestRegionValidate(t *testing.T) {
	for _, bad := range []Schedule{
		{Events: []Event{{Kind: RegionDown, Target: AllTargets, At: 1, Duration: 5}}},                          // no region
		{Events: []Event{{Kind: RegionDown, Target: AllTargets, Region: "us-east", At: 1}}},                    // no duration
		{Events: []Event{{Kind: SpotSpike, Target: AllTargets, Region: "us-east", At: 1}}},                     // no duration
		{Events: []Event{{Kind: SpotSpike, Target: AllTargets, Region: "x", At: 1, Duration: 2, Factor: 0.5}}}, // refund, not spike
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("schedule %+v: expected validation error", bad)
		}
	}
}

// TestParseErrorPositions pins the satellite fix: a parse error names the
// offending token and its position in the spec.
func TestParseErrorPositions(t *testing.T) {
	_, err := ParseSchedule("preempt@0:5,slow@1:bad+2x3")
	if err == nil {
		t.Fatal("expected parse error")
	}
	msg := err.Error()
	for _, want := range []string{"token 2", `"slow@1:bad+2x3"`, "char 13", `"bad"`} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	// Leading whitespace shifts the reported character position.
	_, err = ParseSchedule("  boom@0:1")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if msg := err.Error(); !strings.Contains(msg, "char 3") || !strings.Contains(msg, "token 1") {
		t.Errorf("error %q should report token 1 at char 3", msg)
	}
	for _, bad := range []string{
		"region@us-east:5",     // missing duration window
		"region@us-east:1x2",   // window, not factor syntax
		"spot@us-east:1+2",     // missing factor
		"spot@us-east:1+2x0.5", // factor below 1
		"region@:1+2",          // empty region name
		"slow:1+2x3",           // non-err kind without @target
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("spec %q: expected parse error", bad)
		}
	}
}
