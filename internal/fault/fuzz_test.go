package fault

import (
	"reflect"
	"testing"
)

// FuzzParseRoundTrip throws arbitrary specs at the parser and checks the
// grammar's core contract: parsing never panics, and any spec the parser
// accepts survives a String() round trip — re-parsing yields a
// structurally equal schedule whose rendering is a fixpoint. The seeds
// cover every event kind, with the region-scoped ones (region@, spot@)
// in several spellings since their names are free-form strings rather
// than replica indices.
func FuzzParseRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"",
		"preempt@0:21600,seed=7",
		"slow@1:30000+3600x2",
		"crash@0:10+20,err:0.02,seed=3",
		"err@2:0.5",
		"err:1",
		"region@us-east:600+300",
		"region@a-b.c_d:0.5+1.25",
		"spot@eu-central:0+900x3",
		"spot@x:1+2x1.5,region@x:3+4,seed=42",
		" region@us-east : 1+2 ",
		"preempt@*:5",
		"seed=-9",
		"bogus",
		"region@:1+2",
		"spot@us-east:1+2x0.5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSchedule(spec)
		if err != nil {
			return // rejected specs only need to fail without panicking
		}
		rendered := s.String()
		rt, err := ParseSchedule(rendered)
		if err != nil {
			t.Fatalf("String() %q of accepted spec %q does not re-parse: %v", rendered, spec, err)
		}
		if !reflect.DeepEqual(rt, s) {
			t.Fatalf("round trip diverged:\nspec   %q\nfirst  %+v\nsecond %+v", spec, s, rt)
		}
		if again := rt.String(); again != rendered {
			t.Fatalf("String() not a fixpoint: %q → %q", rendered, again)
		}
	})
}
