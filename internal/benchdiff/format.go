package benchdiff

import (
	"fmt"
	"io"
)

// WriteText renders the report as an aligned old→new±% table. Markers:
// "~" the move is not statistically distinguishable from noise, "+"/"-"
// a significant improvement/worsening below the threshold, and
// "REGRESSION" a gated, significant, above-threshold worsening.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "benchdiff: old %s  →  new %s  (threshold %.0f%%, gate %s)\n",
		r.OldMeta, r.NewMeta, r.Threshold*100, r.Gate); err != nil {
		return err
	}
	rows := make([][5]string, 0, len(r.Rows)+1)
	rows = append(rows, [5]string{"benchmark", "unit", "old", "new", "delta"})
	for _, row := range r.Rows {
		rows = append(rows, [5]string{
			row.Name, row.Unit,
			formatStats(row.Old), formatStats(row.New),
			formatDelta(row),
		})
	}
	var width [5]int
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %*s  %*s  %s\n",
			width[0], row[0], width[1], row[1],
			width[2], row[2], width[3], row[3], row[4]); err != nil {
			return err
		}
	}
	for _, name := range r.MissingGated {
		if _, err := fmt.Fprintf(w, "MISSING gated benchmark: %s (present in old, absent in new)\n", name); err != nil {
			return err
		}
	}
	summary := "no gated regressions"
	if r.HasRegressions() {
		summary = fmt.Sprintf("%d gated regression(s)", len(r.Regressions)+len(r.MissingGated))
	}
	_, err := fmt.Fprintf(w, "benchdiff: %d comparisons, %s\n", len(r.Rows), summary)
	return err
}

// formatStats renders "mean ±spread%" (spread omitted for n<2 or zero
// variance).
func formatStats(s Stats) string {
	out := formatValue(s.Mean)
	if s.N >= 2 && s.Mean != 0 && s.Stddev > 0 {
		out += fmt.Sprintf(" ±%.0f%%", s.Stddev/abs(s.Mean)*100)
	}
	return out
}

// formatValue renders a measurement with engineering suffixes so ns/op in
// the billions stays readable.
func formatValue(v float64) string {
	a := abs(v)
	switch {
	case a >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func formatDelta(row Row) string {
	delta := fmt.Sprintf("%+.1f%%", row.DeltaPct)
	switch {
	case row.Regression:
		return delta + "  REGRESSION"
	case !row.Significant:
		return delta + "  (~)"
	case row.Worse:
		return delta + "  (worse)"
	case row.DeltaPct == 0:
		return delta
	default:
		return delta + "  (better)"
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
