package benchdiff

import (
	"fmt"
	"os"
	"strings"

	"ccperf/internal/report"
	"ccperf/internal/telemetry"
)

// Load reads a ccperf/v1 bench envelope from path into a BenchSet.
//
// Two payload shapes are accepted: the sample-preserving BenchSet written
// by current `ccperf benchjson`, and the legacy telemetry.Snapshot shape
// earlier snapshots used ("bench.<Name>.<unit>" gauges). Legacy points
// lose per-run variance — every series carries a single sample — so
// comparisons against them fall back to pure threshold tests.
func Load(path string) (*telemetry.BenchSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	env, err := report.ReadEnvelope(f)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	var set telemetry.BenchSet
	if err := env.Decode(report.KindBench, &set); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if len(set.Benchmarks) > 0 {
		return &set, nil
	}
	// Fall back to the legacy Snapshot gauge shape.
	var snap telemetry.Snapshot
	if err := env.Decode(report.KindBench, &snap); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	legacy := fromSnapshot(&snap)
	if len(legacy.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: %s: no benchmarks in bench payload", path)
	}
	return legacy, nil
}

// fromSnapshot reconstructs a BenchSet from the legacy gauge naming
// "bench.<Name>.<unit>", reversing sanitizeUnit's "/"→"_per_" mapping for
// the common units so direction classification still works.
func fromSnapshot(s *telemetry.Snapshot) *telemetry.BenchSet {
	var results []telemetry.BenchResult
	byName := make(map[string]int)
	for key, v := range s.Gauges {
		rest, ok := strings.CutPrefix(key, "bench.")
		if !ok {
			continue
		}
		i := strings.LastIndex(rest, ".")
		if i <= 0 || i == len(rest)-1 {
			continue
		}
		name, unit := rest[:i], desanitizeUnit(rest[i+1:])
		j, ok := byName[name]
		if !ok {
			j = len(results)
			byName[name] = j
			results = append(results, telemetry.BenchResult{
				Name:   name,
				Values: make(map[string]float64),
			})
		}
		results[j].Values[unit] = v
	}
	for name, j := range byName {
		if n, ok := s.Counters["bench."+name+".iterations"]; ok {
			results[j].Iterations = n
		}
	}
	return &telemetry.BenchSet{
		UnixNano:   s.UnixNano,
		Meta:       telemetry.BenchMeta{Note: "legacy snapshot"},
		Benchmarks: telemetry.CollectBench(results),
	}
}

// desanitizeUnit reverses telemetry's sanitizeUnit for metric-name
// segments ("ns_per_op" → "ns/op").
func desanitizeUnit(u string) string {
	return strings.ReplaceAll(u, "_per_", "/")
}

// CompareFiles loads both envelopes and diffs them.
func CompareFiles(oldPath, newPath string, opt Options) (*Report, error) {
	oldSet, err := Load(oldPath)
	if err != nil {
		return nil, err
	}
	newSet, err := Load(newPath)
	if err != nil {
		return nil, err
	}
	return Compare(oldSet, newSet, opt), nil
}
