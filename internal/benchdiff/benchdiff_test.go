package benchdiff

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccperf/internal/report"
	"ccperf/internal/telemetry"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{100, 110, 90})
	if s.N != 3 || s.Mean != 100 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Stddev-10) > 1e-9 {
		t.Fatalf("stddev = %v, want 10", s.Stddev)
	}
	if s := Summarize([]float64{42}); s.N != 1 || s.Mean != 42 || s.Stddev != 0 {
		t.Fatalf("single sample: %+v", s)
	}
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty: %+v", s)
	}
}

func TestWelchSignificance(t *testing.T) {
	// Tight samples, clearly separated means: significant.
	tight := compareOne("BenchmarkX", "ns/op",
		[]float64{100, 101, 99}, []float64{150, 151, 149}, 0.10)
	if !tight.Tested || !tight.Significant || !tight.Worse {
		t.Fatalf("separated samples must be a significant worsening: %+v", tight)
	}
	// Huge overlapping variance, tiny mean shift: not significant.
	noisy := compareOne("BenchmarkX", "ns/op",
		[]float64{50, 150, 100}, []float64{55, 160, 105}, 0.10)
	if !noisy.Tested || noisy.Significant {
		t.Fatalf("noise must not be significant: %+v", noisy)
	}
	// Single samples: fallback threshold rule, no t-test.
	single := compareOne("BenchmarkX", "ns/op", []float64{100}, []float64{130}, 0.10)
	if single.Tested || !single.Significant || !single.Worse {
		t.Fatalf("single-sample fallback: %+v", single)
	}
	below := compareOne("BenchmarkX", "ns/op", []float64{100}, []float64{105}, 0.10)
	if below.Significant {
		t.Fatalf("5%% move under a 10%% threshold must not count: %+v", below)
	}
	// Zero variance both sides (allocs/op style): fallback too — but the
	// move must clear the allocation-unit noise floor to count.
	det := compareOne("BenchmarkX", "allocs/op",
		[]float64{12, 12, 12}, []float64{60, 60, 60}, 0.10)
	if det.Tested || !det.Significant || det.DeltaPct != 400 {
		t.Fatalf("deterministic unit fallback: %+v", det)
	}
	subFloor := compareOne("BenchmarkX", "allocs/op",
		[]float64{12, 12, 12}, []float64{24, 24, 24}, 0.10)
	if subFloor.Significant {
		t.Fatalf("+12 allocs/op is under the noise floor: %+v", subFloor)
	}
}

// TestTCriticalInterpolation pins the t-table lookup: exact at integer
// df, linearly interpolated between entries (Welch df is real-valued),
// monotone non-increasing, normal limit past df 31.
func TestTCriticalInterpolation(t *testing.T) {
	if got := tCritical95(2); got != 4.303 {
		t.Fatalf("df=2: %v", got)
	}
	mid := tCritical95(2.5)
	if mid >= 4.303 || mid <= 3.182 {
		t.Fatalf("df=2.5 must interpolate between table entries: %v", mid)
	}
	if lo, hi := tCritical95(2.97), tCritical95(2.03); lo >= hi {
		t.Fatalf("interpolation not monotone: crit(2.97)=%v >= crit(2.03)=%v", lo, hi)
	}
	if got := tCritical95(0.5); got != 12.706 {
		t.Fatalf("df<1 clamps to the first entry: %v", got)
	}
	if got := tCritical95(200); got != 1.960 {
		t.Fatalf("large df uses the normal limit: %v", got)
	}
}

func TestDirection(t *testing.T) {
	up := compareOne("BenchmarkGatewayThroughput", "req/s",
		[]float64{900, 910, 890}, []float64{700, 710, 690}, 0.10)
	if !up.Worse {
		t.Fatalf("req/s dropping must be worse: %+v", up)
	}
	down := compareOne("BenchmarkEnumerate", "ns/op",
		[]float64{900, 910, 890}, []float64{700, 710, 690}, 0.10)
	if down.Worse {
		t.Fatalf("ns/op dropping is an improvement: %+v", down)
	}
}

func set(meta telemetry.BenchMeta, series ...telemetry.BenchSeries) *telemetry.BenchSet {
	results := make([]telemetry.BenchResult, 0)
	for _, s := range series {
		n := 0
		for _, vals := range s.Values {
			if len(vals) > n {
				n = len(vals)
			}
		}
		for i := 0; i < n; i++ {
			r := telemetry.BenchResult{Name: s.Name, Iterations: 1, Values: map[string]float64{}}
			for unit, vals := range s.Values {
				if i < len(vals) {
					r.Values[unit] = vals[i]
				}
			}
			results = append(results, r)
		}
	}
	return &telemetry.BenchSet{Meta: meta, Benchmarks: telemetry.CollectBench(results)}
}

func ser(name, unit string, vals ...float64) telemetry.BenchSeries {
	return telemetry.BenchSeries{Name: name, Values: map[string][]float64{unit: vals}}
}

func TestCompareGatedRegression(t *testing.T) {
	old := set(telemetry.BenchMeta{GitSHA: "aaaaaaa"},
		ser("BenchmarkEnumerate/subs=uncached", "ns/op", 1000, 1010, 990),
		ser("BenchmarkHelper", "ns/op", 100, 101, 99),
	)
	// Injected 2x regression in a gated hot path; helper regresses too but
	// is ungated, so it must not fail the run.
	niu := set(telemetry.BenchMeta{GitSHA: "bbbbbbb"},
		ser("BenchmarkEnumerate/subs=uncached", "ns/op", 2000, 2020, 1980),
		ser("BenchmarkHelper", "ns/op", 300, 303, 297),
	)
	rep := Compare(old, niu, Options{Threshold: 0.10})
	if !rep.HasRegressions() {
		t.Fatal("2x gated regression must fail")
	}
	if len(rep.Regressions) != 1 || !strings.HasPrefix(rep.Regressions[0], "BenchmarkEnumerate/subs=uncached") {
		t.Fatalf("regressions = %v", rep.Regressions)
	}
	var helper *Row
	for i := range rep.Rows {
		if rep.Rows[i].Name == "BenchmarkHelper" {
			helper = &rep.Rows[i]
		}
	}
	if helper == nil || helper.Gated || helper.Regression || !helper.Worse {
		t.Fatalf("ungated helper row = %+v", helper)
	}
}

func TestCompareImprovementAndNoise(t *testing.T) {
	old := set(telemetry.BenchMeta{},
		ser("BenchmarkBatcher/batch=4", "ns/op", 1000, 1010, 990),
		ser("BenchmarkMatmul", "ns/op", 500, 800, 600),
	)
	niu := set(telemetry.BenchMeta{},
		ser("BenchmarkBatcher/batch=4", "ns/op", 500, 505, 495), // 2x faster
		ser("BenchmarkMatmul", "ns/op", 520, 830, 620),          // within noise
	)
	rep := Compare(old, niu, Options{Threshold: 0.10})
	if rep.HasRegressions() {
		t.Fatalf("improvement + noise flagged as regression: %v", rep.Regressions)
	}
	for _, row := range rep.Rows {
		if row.Name == "BenchmarkBatcher/batch=4" && (row.Worse || !row.Significant) {
			t.Fatalf("improvement row = %+v", row)
		}
		if row.Name == "BenchmarkMatmul" && row.Significant {
			t.Fatalf("noisy row must not be significant: %+v", row)
		}
	}
}

// TestAllocNoiseFloor pins the absolute floor on allocation units: with a
// zero-alloc steady state, B/op and allocs/op carry benchmark-setup
// constants amortized over b.N, so a 60→120 B/op "doubling" between runs
// at different -benchtime is an artifact, while a real KB-scale leak must
// still gate.
func TestAllocNoiseFloor(t *testing.T) {
	old := set(telemetry.BenchMeta{},
		ser("BenchmarkGatewayThroughput", "B/op", 60),
		ser("BenchmarkGatewayThroughput", "allocs/op", 2),
		ser("BenchmarkBatcher/batch=4", "B/op", 1500),
	)
	niu := set(telemetry.BenchMeta{},
		ser("BenchmarkGatewayThroughput", "B/op", 120),    // +100% but +60 B
		ser("BenchmarkGatewayThroughput", "allocs/op", 4), // +100% but +2
		ser("BenchmarkBatcher/batch=4", "B/op", 400_000),  // a real leak
	)
	rep := Compare(old, niu, Options{Threshold: 0.10})
	if len(rep.Regressions) != 1 || !strings.HasPrefix(rep.Regressions[0], "BenchmarkBatcher/batch=4") {
		t.Fatalf("regressions = %v, want only the real leak", rep.Regressions)
	}
	for _, row := range rep.Rows {
		if row.Name == "BenchmarkGatewayThroughput" && row.Significant {
			t.Fatalf("sub-floor alloc move flagged significant: %+v", row)
		}
	}
}

func TestCompareMissingGated(t *testing.T) {
	old := set(telemetry.BenchMeta{},
		ser("BenchmarkGatewayThroughput", "req/s", 900, 910),
		ser("BenchmarkUngated", "ns/op", 1, 2),
	)
	niu := set(telemetry.BenchMeta{}) // both deleted
	rep := Compare(old, niu, Options{})
	if !rep.HasRegressions() {
		t.Fatal("deleting a gated benchmark must fail")
	}
	if len(rep.MissingGated) != 1 || rep.MissingGated[0] != "BenchmarkGatewayThroughput" {
		t.Fatalf("missing = %v", rep.MissingGated)
	}
}

func TestDefaultGatePattern(t *testing.T) {
	for name, want := range map[string]bool{
		"BenchmarkEnumerate":              true,
		"BenchmarkEnumerate/subs=cached":  true,
		"BenchmarkBatcher/batch=16":       true,
		"BenchmarkGatewayThroughput":      true,
		"BenchmarkMatmul":                 true,
		"BenchmarkMatMul":                 true,
		"BenchmarkMatMul/256x1200x729":    true,
		"BenchmarkShardRouter":            true,
		"BenchmarkTransferFit":            true,
		"BenchmarkTransferFitExtras":      false,
		"BenchmarkShardRouterSomething":   false,
		"BenchmarkEnumerateSomethingElse": false,
		"BenchmarkHelper":                 false,
	} {
		rep := Compare(set(telemetry.BenchMeta{}, ser(name, "ns/op", 1)),
			set(telemetry.BenchMeta{}, ser(name, "ns/op", 1)), Options{})
		if len(rep.Rows) != 1 || rep.Rows[0].Gated != want {
			t.Errorf("gate(%s) = %v, want %v", name, rep.Rows[0].Gated, want)
		}
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	in := set(telemetry.BenchMeta{GitSHA: "abc1234", Benchtime: "1x", Count: 3},
		ser("BenchmarkEnumerate", "ns/op", 100, 110, 90))
	if err := report.WriteEnvelopeFile(path, report.KindBench, in); err != nil {
		t.Fatal(err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Meta.GitSHA != "abc1234" || out.Meta.Count != 3 {
		t.Fatalf("meta = %+v", out.Meta)
	}
	s := out.Series("BenchmarkEnumerate")
	if s == nil || len(s.Values["ns/op"]) != 3 {
		t.Fatalf("series = %+v", s)
	}
}

func TestLoadLegacySnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.json")
	snap := telemetry.Snapshot{
		UnixNano: 42,
		Counters: map[string]int64{"bench.BenchmarkEnumerate.iterations": 10},
		Gauges: map[string]float64{
			"bench.BenchmarkEnumerate.ns_per_op":         123456,
			"bench.BenchmarkEnumerate.allocs_per_op":     12,
			"bench.BenchmarkGatewayThroughput.req_per_s": 900,
			"unrelated.gauge":                            1,
		},
	}
	if err := report.WriteEnvelopeFile(path, report.KindBench, snap); err != nil {
		t.Fatal(err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", out.Benchmarks)
	}
	e := out.Series("BenchmarkEnumerate")
	if e == nil || e.Values["ns/op"][0] != 123456 || e.Values["allocs/op"][0] != 12 {
		t.Fatalf("legacy series = %+v", e)
	}
	if e.Iterations[0] != 10 {
		t.Fatalf("legacy iterations = %v", e.Iterations)
	}
	g := out.Series("BenchmarkGatewayThroughput")
	if g == nil || g.Values["req/s"][0] != 900 {
		t.Fatalf("legacy unit desanitization: %+v", g)
	}
	// A legacy baseline vs itself must be clean end-to-end via CompareFiles.
	rep, err := CompareFiles(path, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasRegressions() {
		t.Fatalf("self-compare regressions: %v", rep.Regressions)
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wrong.json")
	if err := report.WriteEnvelopeFile(path, report.KindMetrics, telemetry.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("metrics envelope must be rejected as a bench input")
	}
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("unknown schema must be rejected")
	}
}

func TestWriteText(t *testing.T) {
	old := set(telemetry.BenchMeta{GitSHA: "aaaaaaa", Count: 3},
		ser("BenchmarkEnumerate", "ns/op", 1000, 1010, 990))
	niu := set(telemetry.BenchMeta{GitSHA: "bbbbbbb", Count: 3},
		ser("BenchmarkEnumerate", "ns/op", 2000, 2020, 1980))
	rep := Compare(old, niu, Options{Threshold: 0.10})
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"aaaaaaa", "bbbbbbb", "BenchmarkEnumerate", "REGRESSION", "+100.0%", "1 gated regression"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}
