// Package benchdiff compares two ccperf/v1 bench envelopes with
// variance-aware statistics — the perf-trajectory half of the telemetry
// layer. Where `ccperf benchjson` captures one snapshot (ideally over
// `-count N` repetitions), benchdiff answers the question every
// optimization PR must: did the named hot paths actually get faster, or
// did they regress?
//
// The statistics port the *ideas* of benchstat (golang.org/x/perf): each
// (benchmark, unit) pair is summarized as mean ± stddev over its samples,
// the old/new pair goes through a Welch two-sample t-test at 95%
// confidence, and a delta is only acted on when it is both statistically
// significant and larger than the configured threshold. Deterministic
// units (stddev 0, e.g. allocs/op or model-evals) and single-sample runs
// fall back to a pure threshold test — there is no variance to reason
// about, so any above-threshold move counts. Allocation units additionally
// pass through an absolute noise floor (see belowNoiseFloor): with a
// zero-allocation steady state, per-op byte/alloc counts are setup
// constants amortized over b.N, and percentage deltas on near-zero
// absolutes are measurement artifacts, not regressions.
//
// Direction matters: ns/op down is good, req/s down is bad. Units are
// classified by name (see lowerIsBetter) so a throughput collapse is
// flagged as the regression it is.
package benchdiff

import (
	"math"
	"regexp"
	"sort"
	"strings"

	"ccperf/internal/telemetry"
)

// DefaultGatePattern names the hot-path benchmarks a regression in which
// fails the build (ROADMAP: Enumerate, Batcher, GatewayThroughput,
// TenantFairness, matmul, the workspace forward path — ConvForward and
// ForwardWorkspace — the shard router's routing decision, ShardRouter,
// and the transfer-prediction roofline fit, TransferFit). Sub-benchmarks
// inherit their parent's gating by prefix;
// ConvForward deliberately does NOT match the ungated
// ConvForwardDenseVsSparse sweep.
const DefaultGatePattern = `^Benchmark(Enumerate|Batcher|GatewayThroughput|TenantFairness|[Mm]at[Mm]ul|ConvForward|ForwardWorkspace|ShardRouter|TransferFit)(/|$)`

// Options configures a comparison.
type Options struct {
	// Threshold is the relative delta (fraction, e.g. 0.10 = 10%) below
	// which a change is never a regression, significant or not.
	// 0 defaults to 0.10.
	Threshold float64
	// Gate selects the benchmarks whose regressions are fatal; nil
	// compiles DefaultGatePattern. Non-matching benchmarks are still
	// compared and reported, they just cannot fail the run.
	Gate *regexp.Regexp
	// Alpha is reserved for future confidence knobs; only the 95% table
	// is implemented, matching benchstat's default.
	Alpha float64
}

// Stats summarizes one sample set.
type Stats struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
}

// Summarize computes sample mean and (Bessel-corrected) stddev.
func Summarize(vals []float64) Stats {
	s := Stats{N: len(vals)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(s.N-1))
	return s
}

// Row is one (benchmark, unit) comparison.
type Row struct {
	Name string `json:"name"`
	Unit string `json:"unit"`
	Old  Stats  `json:"old"`
	New  Stats  `json:"new"`
	// DeltaPct is (new−old)/old in percent, sign as measured (negative =
	// value went down). Zero when the old mean is zero.
	DeltaPct float64 `json:"delta_pct"`
	// Significant is true when the move passed the Welch t-test, or when
	// the samples are too few/too deterministic to test and the
	// threshold check alone applies.
	Significant bool `json:"significant"`
	// Tested is true when a real t-test ran (≥2 samples with variance on
	// each side); false means Significant came from the fallback rule.
	Tested bool `json:"tested"`
	// Worse is true when the delta moves in the unit's bad direction.
	Worse bool `json:"worse"`
	// Gated is true when the benchmark matches the hot-path gate.
	Gated bool `json:"gated"`
	// Regression = Gated && Worse && Significant && |delta| > threshold.
	Regression bool `json:"regression"`
}

// Report is the full comparison, JSON-exportable as a ccperf/v1
// "benchdiff" envelope.
type Report struct {
	Threshold float64             `json:"threshold"`
	Gate      string              `json:"gate"`
	OldMeta   telemetry.BenchMeta `json:"old_meta"`
	NewMeta   telemetry.BenchMeta `json:"new_meta"`
	Rows      []Row               `json:"rows"`
	// Regressions lists "Name unit" for every fatal row, in row order.
	Regressions []string `json:"regressions,omitempty"`
	// MissingGated lists gated benchmarks present in old but absent from
	// new — a silently deleted hot-path benchmark is treated as fatal.
	MissingGated []string `json:"missing_gated,omitempty"`
}

// HasRegressions reports whether the comparison should fail a gated run.
func (r *Report) HasRegressions() bool {
	return len(r.Regressions) > 0 || len(r.MissingGated) > 0
}

// Compare diffs two bench sets. Only benchmarks and units present in both
// sets produce rows; gated benchmarks missing from new are recorded in
// MissingGated.
func Compare(old, new *telemetry.BenchSet, opt Options) *Report {
	if opt.Threshold <= 0 {
		opt.Threshold = 0.10
	}
	gate := opt.Gate
	if gate == nil {
		gate = regexp.MustCompile(DefaultGatePattern)
	}
	rep := &Report{
		Threshold: opt.Threshold,
		Gate:      gate.String(),
		OldMeta:   old.Meta,
		NewMeta:   new.Meta,
	}
	for _, series := range old.Benchmarks {
		gated := gate.MatchString(series.Name)
		ns := new.Series(series.Name)
		if ns == nil {
			if gated {
				rep.MissingGated = append(rep.MissingGated, series.Name)
			}
			continue
		}
		for _, unit := range sortedUnits(series.Values) {
			newVals, ok := ns.Values[unit]
			if !ok || len(newVals) == 0 || len(series.Values[unit]) == 0 {
				continue
			}
			row := compareOne(series.Name, unit, series.Values[unit], newVals, opt.Threshold)
			row.Gated = gated
			row.Regression = gated && row.Worse && row.Significant &&
				math.Abs(row.DeltaPct) > opt.Threshold*100
			if row.Regression {
				rep.Regressions = append(rep.Regressions, row.Name+" "+row.Unit)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// compareOne builds the statistical core of one row.
func compareOne(name, unit string, oldVals, newVals []float64, threshold float64) Row {
	row := Row{
		Name: name,
		Unit: unit,
		Old:  Summarize(oldVals),
		New:  Summarize(newVals),
	}
	if row.Old.Mean != 0 {
		row.DeltaPct = (row.New.Mean - row.Old.Mean) / math.Abs(row.Old.Mean) * 100
	}
	if lowerIsBetter(unit) {
		row.Worse = row.DeltaPct > 0
	} else {
		row.Worse = row.DeltaPct < 0
	}
	if t, df, ok := welch(row.Old, row.New); ok {
		row.Tested = true
		row.Significant = math.Abs(t) > tCritical95(df)
	} else {
		// Too few samples or zero variance: the threshold is the only
		// evidence we have, so an above-threshold move counts as real.
		row.Significant = math.Abs(row.DeltaPct) > threshold*100
	}
	if row.Significant && belowNoiseFloor(unit, row.Old.Mean, row.New.Mean) {
		row.Significant = false
	}
	return row
}

// belowNoiseFloor suppresses spurious allocation-unit moves. A zero-alloc
// steady state means the remaining per-op B/op and allocs/op are benchmark
// constants (harness bookkeeping, a GC-emptied sync.Pool re-minting once)
// amortized over b.N — so the same code measured at a different
// -benchtime/-count shifts those units by huge *percentages* at tiny
// *absolute* magnitudes. A move in these units only counts when it also
// clears an absolute floor; real leaks (KBs and dozens of allocations per
// op) sail over it, and the forward path's exact zero-allocation property
// is pinned separately by testing.AllocsPerRun tests.
func belowNoiseFloor(unit string, oldMean, newMean float64) bool {
	d := math.Abs(newMean - oldMean)
	switch strings.ToLower(unit) {
	case "b/op":
		return d < 1024
	case "allocs/op":
		return d < 16
	}
	return false
}

// welch computes the Welch two-sample t statistic and its
// Welch–Satterthwaite degrees of freedom. ok is false when either side
// has fewer than two samples or both variances are zero (the statistic is
// undefined there).
func welch(a, b Stats) (t, df float64, ok bool) {
	if a.N < 2 || b.N < 2 {
		return 0, 0, false
	}
	va := a.Stddev * a.Stddev / float64(a.N)
	vb := b.Stddev * b.Stddev / float64(b.N)
	if va+vb == 0 {
		return 0, 0, false
	}
	t = (b.Mean - a.Mean) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/float64(a.N-1) + vb*vb/float64(b.N-1))
	if df < 1 {
		df = 1
	}
	return t, df, true
}

// tTable95 holds two-tailed 95% critical values of Student's t by degrees
// of freedom; indexes 1..30, then the normal limit.
var tTable95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-tailed 95% critical value for df degrees of
// freedom. Welch–Satterthwaite degrees of freedom are real-valued, so the
// table is interpolated linearly between integer entries — flooring would
// overstate the critical value by up to 35% between df 2 and 3, where
// small-sample comparisons live. df ≥ 31 uses the normal approximation.
func tCritical95(df float64) float64 {
	if df <= 1 {
		return tTable95[1]
	}
	if df >= 31 {
		return 1.960
	}
	i := int(math.Floor(df))
	frac := df - float64(i)
	hi := 1.960 // virtual entry at df 31: the normal limit
	if i+1 < len(tTable95) {
		hi = tTable95[i+1]
	}
	return tTable95[i] + frac*(hi-tTable95[i])
}

// lowerIsBetter classifies a unit's good direction. Time, memory and
// work-count units improve downward; rate units ("req/s", anything per
// second) improve upward.
func lowerIsBetter(unit string) bool {
	u := strings.ToLower(unit)
	if strings.HasSuffix(u, "/s") || strings.HasSuffix(u, "/sec") ||
		strings.Contains(u, "per_s") || strings.Contains(u, "rps") ||
		strings.Contains(u, "throughput") {
		return false
	}
	return true
}

func sortedUnits(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
