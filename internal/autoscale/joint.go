// joint.go generalizes the single-tenant decision table to the joint
// multi-tenant placement problem of ROADMAP item 1: N tenants — each with
// its own pruning ladder, SLO and budget share — co-located on one shared
// replica fleet. The resource axis (replica count) is common property; the
// accuracy axis is per tenant, so every decision that spends or reclaims
// accuracy must also answer *whose* accuracy.
//
// The ordering rules extend the single-tenant policy:
//
//   - Money before accuracy, fleet-wide: when any tenant's SLO is violated
//     the policy still prefers to buy a replica while the joint $/hr budget
//     allows, because a replica helps every tenant at once.
//   - When the budget binds, the tenant with the largest accuracy-per-
//     dollar slack degrades first: the one whose next rung down frees the
//     most shared capacity per point of accuracy spent. That is the
//     Perseus/"No DNN Left Behind" observation made into a control law —
//     co-located tenants should not degrade uniformly, the cheapest
//     accuracy is spent first.
//   - Freed capacity flows back in the opposite order: on sustained
//     headroom the tenant that has lost the most accuracy is restored
//     first, and replicas are returned only when every tenant is fully
//     restored (or restoring would not fit).
//   - A tenant over its own $/hr share degrades alone, regardless of fleet
//     health: per-tenant budget enforcement is a hard isolation boundary,
//     not a preference.
//
// JointPolicy.Decide is pure — no clocks, no randomness, deterministic
// tie-breaks by tenant name — so the joint control law replays bit-for-bit
// and is unit-testable row by row like the single-tenant table.
package autoscale

import (
	"fmt"
	"sort"
)

// TenantSignal is one tenant's slice of a joint control tick.
type TenantSignal struct {
	// Name identifies the tenant (unique within the signal).
	Name string `json:"name"`
	// ArrivalRate is the tenant's offered load in requests/second
	// (admitted + shed + quota-rejected).
	ArrivalRate float64 `json:"arrival_rate"`
	// P99 is the tenant's tick p99 total latency in seconds (0 when
	// Samples is 0); Samples is its completed-request count this tick.
	P99     float64 `json:"p99_seconds"`
	Samples int     `json:"samples"`
	// QueueFrac is the tenant's admission-queue fill fraction.
	QueueFrac float64 `json:"queue_frac"`
	// ErrorRate is the tenant's shed+expired+faulted fraction this tick
	// (quota rejections are intentional back-pressure, not errors).
	ErrorRate float64 `json:"error_rate"`
	// Variant is the rung the tenant's ladder currently serves at.
	Variant int `json:"variant"`
	// SLOSeconds is the tenant's own p99 objective.
	SLOSeconds float64 `json:"slo_seconds"`
	// CostPerHour is the tenant's attributed share of the fleet burn rate;
	// MaxCostPerHour caps it (0 = uncapped).
	CostPerHour    float64 `json:"cost_per_hour"`
	MaxCostPerHour float64 `json:"max_cost_per_hour"`
	// Profiles describe the tenant's ladder, least-pruned first.
	Profiles []Profile `json:"profiles"`
}

// speed returns the rung's throughput multiplier (1 when unknown).
func (t *TenantSignal) speed(v int) float64 {
	if v < 0 || v >= len(t.Profiles) || t.Profiles[v].Speed <= 0 {
		return 1
	}
	return t.Profiles[v].Speed
}

// accuracy returns the rung's accuracy proxy (0 when unknown).
func (t *TenantSignal) accuracy(v int) float64 {
	if v < 0 || v >= len(t.Profiles) {
		return 0
	}
	return t.Profiles[v].Accuracy
}

// JointSignal is what the joint autoscaler observed over one control tick.
type JointSignal struct {
	// Tenants carries one signal per tenant. Decide treats the slice as a
	// set: its order never affects the decision (tie-breaks use names).
	Tenants []TenantSignal `json:"tenants"`
	// Replicas is the shared fleet size being controlled.
	Replicas int `json:"replicas"`
	// CapacityPerReplica is the rung-0-normalized requests/second one
	// replica sustains across the tenant mix (0 = not yet known).
	CapacityPerReplica float64 `json:"capacity_per_replica"`
	// Healthy is the consecutive-healthy-tick streak entering this tick;
	// SinceScale counts ticks since the last replica change.
	Healthy    int `json:"healthy"`
	SinceScale int `json:"since_scale"`
}

// JointAction is one joint tick's decision. For Degrade and Restore,
// Tenant names whose ladder moves and Variant is that tenant's target
// rung; other tenants hold their rungs.
type JointAction struct {
	Verb     Verb   `json:"verb"`
	Tenant   string `json:"tenant,omitempty"`
	Replicas int    `json:"replicas"`
	Variant  int    `json:"variant"`
	Healthy  int    `json:"healthy"`
	Reason   string `json:"reason"`
}

// JointPolicy is the pure decision core of the multi-tenant autoscaler.
// The knobs shared with the single-tenant Policy mean the same things;
// SLOs are per tenant (TenantSignal.SLOSeconds), so there is no policy-
// level SLO field.
type JointPolicy struct {
	// TargetUtilization is the load fraction of predicted joint capacity
	// the fleet aims to stay under when relaxing (default 0.7).
	TargetUtilization float64 `json:"target_utilization"`
	// DegradeQueueFrac is the per-tenant queue-fullness fraction that
	// counts as an SLO violation before p99 catches up (default 0.75).
	DegradeQueueFrac float64 `json:"degrade_queue_frac"`
	// RestoreFraction: a tenant is healthy iff p99 ≤ SLO·RestoreFraction
	// (default 0.5).
	RestoreFraction float64 `json:"restore_fraction"`
	// HoldTicks is the healthy-streak length required before relaxing
	// (default 3); CooldownTicks the minimum gap between replica moves
	// (default 2).
	HoldTicks     int `json:"hold_ticks"`
	CooldownTicks int `json:"cooldown_ticks"`
	// Limits bound the shared resource axis (replica caps, fleet budget).
	Limits Limits `json:"limits"`
}

// WithDefaults fills the documented defaults on zero fields. Exported so
// control planes in other packages (internal/tenant) can resolve the
// effective knobs before their first tick.
func (p JointPolicy) WithDefaults() JointPolicy {
	if p.TargetUtilization <= 0 || p.TargetUtilization > 1 {
		p.TargetUtilization = 0.7
	}
	if p.DegradeQueueFrac <= 0 || p.DegradeQueueFrac > 1 {
		p.DegradeQueueFrac = 0.75
	}
	if p.RestoreFraction <= 0 || p.RestoreFraction >= 1 {
		p.RestoreFraction = 0.5
	}
	if p.HoldTicks <= 0 {
		p.HoldTicks = 3
	}
	if p.CooldownTicks <= 0 {
		p.CooldownTicks = 2
	}
	if p.Limits.MinReplicas <= 0 {
		p.Limits.MinReplicas = 1
	}
	if p.Limits.MaxReplicas < p.Limits.MinReplicas {
		p.Limits.MaxReplicas = p.Limits.MinReplicas
	}
	return p
}

// Validate rejects a policy Decide cannot run on.
func (p JointPolicy) Validate() error {
	if p.Limits.PricePerReplicaHour < 0 || p.Limits.BudgetPerHour < 0 {
		return fmt.Errorf("autoscale: negative price or budget")
	}
	return nil
}

// affordable reports whether renting n replicas stays inside both the
// replica cap and the joint $/hr budget.
func (p JointPolicy) affordable(n int) bool {
	if n > p.Limits.MaxReplicas {
		return false
	}
	if p.Limits.BudgetPerHour <= 0 {
		return true
	}
	return float64(n)*p.Limits.PricePerReplicaHour <= p.Limits.BudgetPerHour+1e-9
}

// demand returns the joint load in replica units at the tenants' current
// rungs: Σ arrival_i / (capacity · speed_i). withRung overrides one
// tenant's rung (pass tenant "" to use current rungs everywhere).
func (p JointPolicy) demand(s JointSignal, tenant string, rung int) float64 {
	var d float64
	for i := range s.Tenants {
		t := &s.Tenants[i]
		v := t.Variant
		if t.Name == tenant {
			v = rung
		}
		d += t.ArrivalRate / t.speed(v)
	}
	return d
}

// fits predicts whether the joint offered load fits n replicas with
// TargetUtilization headroom, with tenant (if non-empty) moved to rung.
// Unknown capacity is only acceptable when nothing is arriving.
func (p JointPolicy) fits(s JointSignal, tenant string, rung, n int) bool {
	d := p.demand(s, tenant, rung)
	if d <= 0 {
		return true
	}
	if s.CapacityPerReplica <= 0 {
		return false
	}
	return d <= s.CapacityPerReplica*float64(n)*p.TargetUtilization
}

// violated reports whether the tenant's SLO is currently broken.
func (p JointPolicy) violated(t *TenantSignal) bool {
	return t.QueueFrac >= p.DegradeQueueFrac ||
		(t.Samples > 0 && t.SLOSeconds > 0 && t.P99 > t.SLOSeconds)
}

// healthy reports whether the tenant sits comfortably inside its SLO band.
func (p JointPolicy) healthy(t *TenantSignal) bool {
	return t.QueueFrac < p.DegradeQueueFrac &&
		(t.Samples == 0 || t.SLOSeconds <= 0 || t.P99 <= t.SLOSeconds*p.RestoreFraction)
}

// degradeSlack scores how cheaply tenant t converts accuracy into shared
// capacity by stepping one rung down: the replica-equivalent capacity it
// frees per point of accuracy spent. A tenant already at the ladder
// bottom has no slack (-1). Capacity freed is the drop in the tenant's
// replica-unit demand, arrival_i·(1/speed(v) − 1/speed(v+1)) — a tenant
// with no traffic frees nothing, so it is never degraded first on a
// miscalibrated profile alone.
func degradeSlack(t *TenantSignal) float64 {
	v := t.Variant
	if v >= len(t.Profiles)-1 {
		return -1
	}
	freed := t.ArrivalRate * (1/t.speed(v) - 1/t.speed(v+1))
	if freed < 0 {
		freed = 0
	}
	spent := t.accuracy(v) - t.accuracy(v+1)
	if spent < 1e-6 {
		spent = 1e-6 // free accuracy: slack is effectively the freed capacity
	}
	return freed / spent
}

// restoreDeficit scores how much accuracy tenant t has lent the fleet:
// the gap between its rung-0 accuracy and what it serves now. The most
// indebted tenant gets freed capacity first.
func restoreDeficit(t *TenantSignal) float64 {
	if t.Variant <= 0 {
		return -1
	}
	return t.accuracy(0) - t.accuracy(t.Variant)
}

// DegradeOrder returns the tenants that still have a rung to give, most
// accuracy-per-dollar slack first (the order Decide spends them in), with
// deterministic name tie-breaks. Exposed so status endpoints and reports
// can show "who degrades next" without replaying the policy.
func (p JointPolicy) DegradeOrder(s JointSignal) []string {
	type scored struct {
		name  string
		slack float64
	}
	var cands []scored
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if sl := degradeSlack(t); sl >= 0 {
			cands = append(cands, scored{t.Name, sl})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].slack != cands[b].slack {
			return cands[a].slack > cands[b].slack
		}
		return cands[a].name < cands[b].name
	})
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// Decide maps one joint tick's signal to an action. The branch order IS
// the policy:
//
//  1. fleet budget clamp — over budget shrinks, health notwithstanding;
//  2. per-tenant budget enforcement — a tenant over its own $/hr share
//     degrades alone (largest relative overshoot first);
//  3. any tenant's SLO violated — scale out if a replica is affordable
//     (shared capacity helps everyone), else degrade the tenant with the
//     largest accuracy-per-dollar slack — not necessarily the violator;
//  4. every tenant healthy long enough — restore the most-degraded tenant
//     whose restored load still fits, then hand back a replica;
//  5. otherwise hold, carrying the healthy streak.
//
// Decide is pure and order-independent over s.Tenants: equal signals
// (as sets) yield equal actions, bit for bit.
func (p JointPolicy) Decide(s JointSignal) JointAction {
	p = p.WithDefaults()
	hold := func(streak int, reason string) JointAction {
		if streak > p.HoldTicks {
			streak = p.HoldTicks
		}
		return JointAction{Verb: Hold, Replicas: s.Replicas, Healthy: streak, Reason: reason}
	}

	// 1. The joint budget is a hard ceiling.
	if s.Replicas > p.Limits.MinReplicas && !p.affordable(s.Replicas) {
		return JointAction{Verb: ScaleIn, Replicas: s.Replicas - 1,
			Reason: "fleet over budget/cap, shedding a replica"}
	}

	// 2. Per-tenant budget enforcement: the worst relative overshoot
	// degrades, deterministically.
	var overTenant *TenantSignal
	var overBy float64
	for i := range s.Tenants {
		t := &s.Tenants[i]
		if t.MaxCostPerHour <= 0 || t.CostPerHour <= t.MaxCostPerHour {
			continue
		}
		if t.Variant >= len(t.Profiles)-1 {
			continue // nothing left to give; admission quotas are the backstop
		}
		by := t.CostPerHour / t.MaxCostPerHour
		if overTenant == nil || by > overBy || (by == overBy && t.Name < overTenant.Name) {
			overTenant, overBy = t, by
		}
	}
	if overTenant != nil {
		return JointAction{Verb: Degrade, Tenant: overTenant.Name,
			Replicas: s.Replicas, Variant: overTenant.Variant + 1,
			Reason: fmt.Sprintf("tenant %s over its $/hr share, degrading it alone", overTenant.Name)}
	}

	// 3. Capacity is short somewhere. Money first, then the cheapest
	// accuracy anywhere in the fleet.
	anyViolated := false
	for i := range s.Tenants {
		if p.violated(&s.Tenants[i]) {
			anyViolated = true
			break
		}
	}
	if anyViolated {
		if s.Replicas < p.Limits.MaxReplicas && p.affordable(s.Replicas+1) {
			if s.SinceScale < p.CooldownTicks {
				return hold(0, "overloaded, waiting out scale cooldown")
			}
			return JointAction{Verb: ScaleOut, Replicas: s.Replicas + 1,
				Reason: "SLO violated, budget allows another replica"}
		}
		if order := p.DegradeOrder(s); len(order) > 0 {
			name := order[0]
			for i := range s.Tenants {
				if t := &s.Tenants[i]; t.Name == name {
					return JointAction{Verb: Degrade, Tenant: name,
						Replicas: s.Replicas, Variant: t.Variant + 1,
						Reason: fmt.Sprintf("SLO violated, budget binds: degrading %s (largest accuracy-per-dollar slack)", name)}
				}
			}
		}
		return hold(0, "saturated: replica and pruning headroom exhausted")
	}

	allHealthy := true
	for i := range s.Tenants {
		if !p.healthy(&s.Tenants[i]) {
			allHealthy = false
			break
		}
	}
	if !allHealthy {
		return hold(0, "inside SLO band")
	}
	streak := s.Healthy + 1
	if streak < p.HoldTicks {
		return hold(streak, "healthy, building streak")
	}

	// 4. Sustained headroom: freed capacity goes to the most-degraded
	// tenant first, money comes back last.
	var best *TenantSignal
	var bestDef float64
	for i := range s.Tenants {
		t := &s.Tenants[i]
		def := restoreDeficit(t)
		if def < 0 || !p.fits(s, t.Name, t.Variant-1, s.Replicas) {
			continue
		}
		if best == nil || def > bestDef || (def == bestDef && t.Name < best.Name) {
			best, bestDef = t, def
		}
	}
	if best != nil {
		return JointAction{Verb: Restore, Tenant: best.Name,
			Replicas: s.Replicas, Variant: best.Variant - 1,
			Reason: fmt.Sprintf("sustained headroom, restoring %s (largest accuracy deficit)", best.Name)}
	}
	if s.Replicas > p.Limits.MinReplicas && s.SinceScale >= p.CooldownTicks &&
		p.fits(s, "", 0, s.Replicas-1) {
		return JointAction{Verb: ScaleIn, Replicas: s.Replicas - 1,
			Reason: "sustained headroom, returning a replica"}
	}
	return hold(streak, "healthy, nothing left to relax")
}
