package autoscale

import (
	"context"
	"testing"
	"time"

	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/measure"
	"ccperf/internal/models"
	"ccperf/internal/prune"
	"ccperf/internal/serving"
	"ccperf/internal/telemetry"
	"ccperf/internal/workload"
)

// testStack builds an externally-controlled gateway over a 3-rung demo
// ladder plus an autoscaler with the given limits, on private telemetry.
func testStack(t *testing.T, replicas int, pol Policy) (*serving.Gateway, *Autoscaler) {
	t.Helper()
	ladder, err := serving.DemoLadder([]float64{0, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(256)
	g, err := serving.New(serving.Config{
		Ladder: ladder, Replicas: replicas, ExternalControl: true,
		Registry: reg, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pol.Profiles == nil {
		pol.Profiles = []Profile{
			{Degree: "nonpruned", Accuracy: 0.57, Speed: 1},
			{Degree: "conv@50", Accuracy: 0.52, Speed: 1.6},
			{Degree: "conv@90", Accuracy: 0.30, Speed: 2.4},
		}
	}
	a, err := New(g, Config{Policy: pol, Interval: 20 * time.Millisecond, Registry: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

func pump(t *testing.T, g *serving.Gateway, n int) {
	t.Helper()
	shape := serving.TinyShape
	for i := 0; i < n; i++ {
		img := serving.SyntheticImage(shape.C, shape.H, shape.W, int64(i))
		if resp := g.Infer(context.Background(), img, time.Time{}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New(nil) must fail")
	}
	ladder, err := serving.DemoLadder([]float64{0, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	g, err := serving.New(serving.Config{Ladder: ladder, ExternalControl: true,
		Registry: telemetry.NewRegistry(), Tracer: telemetry.NewTracer(8)})
	if err != nil {
		t.Fatal(err)
	}
	pol := Policy{SLOSeconds: 1, Profiles: []Profile{{Speed: 1}}} // 1 profile, 2 rungs
	if _, err := New(g, Config{Policy: pol}); err == nil {
		t.Fatal("profile/ladder length mismatch must fail")
	}
}

// TestTickScaleOutBeforeDegrade: a live surge with budget headroom buys a
// replica and leaves the ladder alone; the very next violated tick waits
// out the scale cooldown instead of panic-degrading.
func TestTickScaleOutBeforeDegrade(t *testing.T) {
	g, a := testStack(t, 1, Policy{
		SLOSeconds: 1e-9, // every served request violates
		Limits:     Limits{MinReplicas: 1, MaxReplicas: 4, PricePerReplicaHour: 1, BudgetPerHour: 10},
	})
	g.Start()
	defer g.Stop()

	pump(t, g, 8)
	d := a.Tick()
	if d.Verb != "scale_out" {
		t.Fatalf("surge tick decided %s (%s), want scale_out", d.Verb, d.Reason)
	}
	if got := g.ReplicaCount(); got != 2 {
		t.Fatalf("replicas = %d after scale-out, want 2", got)
	}
	if v := g.CurrentVariant(); v != 0 {
		t.Fatalf("variant = %d, want the ladder untouched", v)
	}

	pump(t, g, 8)
	if d := a.Tick(); d.Verb != "hold" {
		t.Fatalf("tick inside cooldown decided %s, want hold", d.Verb)
	}
	if got := g.ReplicaCount(); got != 2 {
		t.Fatalf("cooldown tick moved replicas to %d", got)
	}
}

// TestTickDegradeWhenBudgetBinds: same surge, but the budget covers only
// the current fleet — the ladder moves instead of the replica count.
func TestTickDegradeWhenBudgetBinds(t *testing.T) {
	g, a := testStack(t, 1, Policy{
		SLOSeconds: 1e-9,
		Limits:     Limits{MinReplicas: 1, MaxReplicas: 4, PricePerReplicaHour: 1, BudgetPerHour: 1},
	})
	g.Start()
	defer g.Stop()

	pump(t, g, 8)
	d := a.Tick()
	if d.Verb != "degrade" {
		t.Fatalf("budget-bound surge decided %s (%s), want degrade", d.Verb, d.Reason)
	}
	if got := g.ReplicaCount(); got != 1 {
		t.Fatalf("replicas = %d, want the fleet unchanged", got)
	}
	if v := g.CurrentVariant(); v != 1 {
		t.Fatalf("variant = %d after degrade, want 1", v)
	}
}

// TestTickQuietScaleInAfterStreak: an idle over-provisioned fleet holds
// through the healthy streak, then returns a replica.
func TestTickQuietScaleInAfterStreak(t *testing.T) {
	g, a := testStack(t, 2, Policy{
		SLOSeconds: 10, // nothing violates
		HoldTicks:  3,
		Limits:     Limits{MinReplicas: 1, MaxReplicas: 4, PricePerReplicaHour: 1, BudgetPerHour: 10},
	})
	g.Start()
	defer g.Stop()

	for i := 0; i < 2; i++ {
		if d := a.Tick(); d.Verb != "hold" {
			t.Fatalf("streak tick %d decided %s, want hold", i, d.Verb)
		}
	}
	d := a.Tick()
	if d.Verb != "scale_in" {
		t.Fatalf("post-streak tick decided %s (%s), want scale_in", d.Verb, d.Reason)
	}
	if got := g.ReplicaCount(); got != 1 {
		t.Fatalf("replicas = %d after scale-in, want 1", got)
	}
	st := a.Status()
	if st.ScaleIns != 1 || st.Holds != 2 || st.Ticks != 3 {
		t.Fatalf("status counters off: %+v", st)
	}
}

// TestE2ELoadtestHoldsBudgetAndSLO is the seeded end-to-end run: a diurnal
// trace replayed against the full gateway+autoscaler stack must end with
// realized spend inside the hourly budget pro-rated over the wall clock,
// while p99 stays inside a generous SLO.
func TestE2ELoadtestHoldsBudgetAndSLO(t *testing.T) {
	const budget = 8.0 // $/hr, price $1/hr per replica, max 8
	g, a := testStack(t, 1, Policy{
		SLOSeconds: 0.050,
		// A long healthy streak (~600ms at the 20ms tick) so the fleet holds
		// through the valleys between trace windows instead of re-ramping
		// from scratch at every peak.
		HoldTicks: 30,
		Limits:    Limits{MinReplicas: 1, MaxReplicas: 8, PricePerReplicaHour: 1, BudgetPerHour: budget},
	})
	g.Start()

	// Calibrate the offered load to this machine (race instrumentation
	// slows the forward pass ~10×): aim the average at 1.5× one replica's
	// serial throughput, so the surge forces scale-out but the 8-replica
	// fleet keeps ample headroom. This also primes the capacity estimator.
	calStart := time.Now()
	pump(t, g, 10)
	perReplica := 10 / time.Since(calStart).Seconds()

	a.Start()
	defer func() { a.Stop(); g.Stop() }()

	const duration = 2 * time.Second
	total := int64(1.5 * perReplica * duration.Seconds())
	if total < 60 {
		total = 60
	}
	trace, err := workload.Generate(workload.Config{
		Pattern: workload.Diurnal, DailyTotal: total, Windows: 12, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := serving.RunLoad(g, serving.LoadConfig{
		Trace: trace, Duration: duration, Seed: 42,
		Cooldown: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatal("no request survived the run")
	}
	st := a.Status()
	if st.Ticks == 0 {
		t.Fatal("autoscaler never ticked")
	}
	// Budget gate: the realized spend may not exceed the hourly budget
	// pro-rated over the wall clock (small slack for the final accrual).
	allowed := budget / 3600 * rep.WallSeconds * 1.10
	if st.Cost > allowed {
		t.Fatalf("spent $%.6f over %.2fs, budget allows $%.6f", st.Cost, rep.WallSeconds, allowed)
	}
	if st.CostPerHour > budget+1e-9 {
		t.Fatalf("final burn rate $%.2f/hr exceeds the $%.2f/hr budget", st.CostPerHour, budget)
	}
	// SLO gate: generous (well above the 50ms policy target) so race
	// instrumentation and scheduler noise on a loaded CI box cannot flake
	// the test, but genuinely runaway latency — a control loop that never
	// reacts — still fails.
	if rep.P99MS > 1000 {
		t.Fatalf("p99 = %.1fms, want ≤ 1000ms", rep.P99MS)
	}
	if st.Replicas < 1 || st.Replicas > 8 {
		t.Fatalf("final fleet size %d outside limits", st.Replicas)
	}
}

// TestBuildProfiles derives rung profiles from the real calibrated
// predictor: monotone accuracy loss and speed gain along the ladder.
func TestBuildProfiles(t *testing.T) {
	h, err := measure.NewHarness(models.CaffenetName)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cloud.ByName("p2.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	degrees := []prune.Degree{
		prune.Uniform([]string{"conv1", "conv2"}, 0),
		prune.Uniform([]string{"conv1", "conv2"}, 0.5),
		prune.Uniform([]string{"conv1", "conv2"}, 0.9),
	}
	profs, err := BuildProfiles(context.Background(), engine.NewCache(h), degrees, inst, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 3 {
		t.Fatalf("got %d profiles, want 3", len(profs))
	}
	if profs[0].Speed != 1 {
		t.Fatalf("rung 0 speed = %v, want exactly 1", profs[0].Speed)
	}
	for i := 1; i < len(profs); i++ {
		if profs[i].Speed < profs[i-1].Speed {
			t.Fatalf("speed not monotone: %v", profs)
		}
		if profs[i].Accuracy > profs[i-1].Accuracy {
			t.Fatalf("accuracy rose with pruning: %v", profs)
		}
	}
	if _, err := BuildProfiles(context.Background(), engine.NewCache(h), nil, inst, 8); err == nil {
		t.Fatal("empty degree list must fail")
	}
}

// TestStatusHandler smoke-tests the /autoscale/status endpoint shape.
func TestStatusHandler(t *testing.T) {
	g, a := testStack(t, 1, Policy{
		SLOSeconds: 0.05,
		Limits:     Limits{MinReplicas: 1, MaxReplicas: 2, PricePerReplicaHour: 1, BudgetPerHour: 2},
	})
	g.Start()
	defer g.Stop()
	a.Tick()

	st := a.Status()
	if st.BudgetPerHour != 2 || st.Replicas != 1 || len(st.Profiles) != 3 {
		t.Fatalf("status = %+v", st)
	}
	if st.LastDecision.Tick != 1 {
		t.Fatalf("last decision tick = %d, want 1", st.LastDecision.Tick)
	}
}

// TestStatusCountsArePerInstance: two autoscalers metering into one shared
// registry must not bleed decision counts into each other's Status — the
// registry aggregates across the process, Status reports this instance.
func TestStatusCountsArePerInstance(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(64)
	build := func() (*serving.Gateway, *Autoscaler) {
		ladder, err := serving.DemoLadder([]float64{0, 0.9})
		if err != nil {
			t.Fatal(err)
		}
		g, err := serving.New(serving.Config{
			Ladder: ladder, Replicas: 1, ExternalControl: true,
			Registry: reg, Tracer: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		pol := Policy{
			SLOSeconds: 10,
			Profiles:   []Profile{{Degree: "nonpruned", Speed: 1}, {Degree: "conv@90", Speed: 2}},
			Limits:     Limits{MinReplicas: 1, MaxReplicas: 2, PricePerReplicaHour: 1, BudgetPerHour: 4},
		}
		a, err := New(g, Config{Policy: pol, Registry: reg, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		return g, a
	}
	gA, aA := build()
	gB, aB := build()
	gA.Start()
	defer gA.Stop()
	gB.Start()
	defer gB.Stop()

	aA.Tick()
	aA.Tick()
	aA.Tick()
	if got := aA.Status().Holds; got != 3 {
		t.Fatalf("A holds = %d, want 3", got)
	}
	if st := aB.Status(); st.Holds != 0 || st.Ticks != 0 {
		t.Fatalf("B inherited A's counts: %+v", st)
	}
	aB.Tick()
	if got := aB.Status().Holds; got != 1 {
		t.Fatalf("B holds = %d, want 1", got)
	}
	// The shared registry still aggregates both instances for /metrics.
	if got := reg.Counter("autoscale.hold_total").Value(); got != 4 {
		t.Fatalf("registry hold_total = %d, want 4", got)
	}
}
