package autoscale

import "fmt"

// RegionSignal is one region's slice of a regional control tick: its
// current price (catalog multiplier × active spot spikes), its routing
// weight and balancer bias as the shard router sees them, and its load
// and ladder state aggregated over the region's shards.
type RegionSignal struct {
	Region string `json:"region"`
	// PriceMultiplier is the region's effective price multiple relative
	// to the baseline region (≥ 1; spikes push it up).
	PriceMultiplier float64 `json:"price_multiplier"`
	// Weight is the router's effective routing weight (health × bias);
	// 0 means the region is drained and not a candidate for anything.
	Weight float64 `json:"weight"`
	// Bias is the balancer-owned part of the weight — what Decide moves.
	Bias float64 `json:"bias"`
	// QueueFrac is the worst admission-queue fill across the region's
	// shards; P99 the worst per-shard p99 in seconds over the tick;
	// Samples the completed-request count backing it.
	QueueFrac float64 `json:"queue_frac"`
	P99       float64 `json:"p99_seconds"`
	Samples   int     `json:"samples"`
	// Variant is the region's current ladder rung; Variants the ladder
	// length.
	Variant  int `json:"variant"`
	Variants int `json:"variants"`
}

// RegionVerb is the kind of move a regional decision makes.
type RegionVerb int

// The regional control table's moves. ShiftAway/ShiftBack move load
// between regions (the new actuation this policy adds); RegionDegrade
// and RegionRestore walk one region's ladder, mirroring the fleet-level
// Degrade/Restore.
const (
	RegionHold RegionVerb = iota
	ShiftAway
	ShiftBack
	RegionDegrade
	RegionRestore
)

// String names the verb.
func (v RegionVerb) String() string {
	switch v {
	case ShiftAway:
		return "shift_away"
	case ShiftBack:
		return "shift_back"
	case RegionDegrade:
		return "degrade"
	case RegionRestore:
		return "restore"
	default:
		return "hold"
	}
}

// RegionAction is one region's decision for the tick: the bias the
// router should apply to its shards and the ladder rung its gateways
// should serve at.
type RegionAction struct {
	Verb    RegionVerb `json:"verb"`
	Region  string     `json:"region"`
	Bias    float64    `json:"bias"`
	Variant int        `json:"variant"`
	Reason  string     `json:"reason"`
}

// RegionalPolicy is the pure decision core of the cross-region balancer.
// Its one rule extends the paper's money-before-accuracy ordering across
// geography: when a region becomes expensive (spot spike) or overloaded,
// the first move is to shift load toward a cheap healthy region — only
// when no such sink exists does the region start spending accuracy.
// Decide is a deterministic function of its inputs, like Policy.Decide.
type RegionalPolicy struct {
	// SLOSeconds is the p99 objective each region defends.
	SLOSeconds float64 `json:"slo_seconds"`
	// SpikeFactor: a region counts as expensive when its price multiple
	// is ≥ SpikeFactor × the cheapest healthy region's (default 1.5).
	SpikeFactor float64 `json:"spike_factor"`
	// ShiftStep multiplies the bias on each ShiftAway (default 0.5) and
	// divides it on each ShiftBack — drain fast, return gradually.
	ShiftStep float64 `json:"shift_step"`
	// MinBias floors ShiftAway so price alone never fully abandons a
	// region — outright draining is health's job (default 1/8).
	MinBias float64 `json:"min_bias"`
	// HeadroomFrac: a sink region must have QueueFrac below this to
	// absorb shifted load (default 0.5).
	HeadroomFrac float64 `json:"headroom_frac"`
	// DegradeQueueFrac is the overload threshold (default 0.75), and
	// RestoreFraction the healthy band (p99 ≤ SLO·RestoreFraction,
	// default 0.5) — the same hysteresis shape as the fleet policy.
	DegradeQueueFrac float64 `json:"degrade_queue_frac"`
	RestoreFraction  float64 `json:"restore_fraction"`
}

func (p RegionalPolicy) withDefaults() RegionalPolicy {
	if p.SpikeFactor <= 1 {
		p.SpikeFactor = 1.5
	}
	if p.ShiftStep <= 0 || p.ShiftStep >= 1 {
		p.ShiftStep = 0.5
	}
	if p.MinBias <= 0 || p.MinBias >= 1 {
		p.MinBias = 1.0 / 8
	}
	if p.HeadroomFrac <= 0 || p.HeadroomFrac > 1 {
		p.HeadroomFrac = 0.5
	}
	if p.DegradeQueueFrac <= 0 || p.DegradeQueueFrac > 1 {
		p.DegradeQueueFrac = 0.75
	}
	if p.RestoreFraction <= 0 || p.RestoreFraction >= 1 {
		p.RestoreFraction = 0.5
	}
	return p
}

// Validate rejects a policy Decide cannot run on.
func (p RegionalPolicy) Validate() error {
	if p.SLOSeconds <= 0 {
		return fmt.Errorf("autoscale: regional policy needs SLOSeconds > 0")
	}
	return nil
}

// sink returns the index of the cheapest healthy region with queue
// headroom, excluding exclude — the destination shifted load would land
// on — or -1 when no region qualifies. Ties break on region name so the
// choice is deterministic.
func (p RegionalPolicy) sink(signals []RegionSignal, exclude int) int {
	best := -1
	for i, s := range signals {
		if i == exclude || s.Weight <= 0 || s.QueueFrac >= p.HeadroomFrac {
			continue
		}
		if best < 0 || s.PriceMultiplier < signals[best].PriceMultiplier ||
			(s.PriceMultiplier == signals[best].PriceMultiplier && s.Region < signals[best].Region) {
			best = i
		}
	}
	return best
}

// Decide maps one tick's per-region signals to per-region actions, one
// action per signal, index-aligned. The branch order per region IS the
// policy:
//
//  1. expensive or overloaded, and a cheap healthy sink exists — shift
//     load away (lower the region's bias) before touching accuracy;
//  2. overloaded with nowhere to shift — degrade the region's ladder;
//  3. healthy and cheap again — shift back (raise the bias toward 1)
//     before restoring accuracy, so the fleet returns to its home
//     geometry first;
//  4. sustained health with the bias home — restore accuracy;
//  5. otherwise hold.
func (p RegionalPolicy) Decide(signals []RegionSignal) []RegionAction {
	p = p.withDefaults()
	minPM := 0.0
	for _, s := range signals {
		if s.Weight <= 0 {
			continue
		}
		if minPM == 0 || s.PriceMultiplier < minPM {
			minPM = s.PriceMultiplier
		}
	}
	out := make([]RegionAction, len(signals))
	for i, s := range signals {
		hold := func(reason string) RegionAction {
			return RegionAction{Verb: RegionHold, Region: s.Region, Bias: s.Bias, Variant: s.Variant, Reason: reason}
		}
		spiked := minPM > 0 && s.PriceMultiplier >= p.SpikeFactor*minPM
		overloaded := s.QueueFrac >= p.DegradeQueueFrac ||
			(s.Samples > 0 && s.P99 > p.SLOSeconds)
		healthy := s.QueueFrac < p.DegradeQueueFrac &&
			(s.Samples == 0 || s.P99 <= p.SLOSeconds*p.RestoreFraction)
		switch {
		case (spiked || overloaded) && p.sink(signals, i) >= 0:
			bias := s.Bias * p.ShiftStep
			if bias < p.MinBias {
				bias = p.MinBias
			}
			reason := "spot spike: shifting load to cheaper region"
			if !spiked {
				reason = "overloaded: shifting load to region with headroom"
			}
			if bias >= s.Bias { // already at the floor
				out[i] = hold("shifted to bias floor, holding")
				continue
			}
			out[i] = RegionAction{Verb: ShiftAway, Region: s.Region, Bias: bias, Variant: s.Variant, Reason: reason}
		case overloaded && s.Variant < s.Variants-1:
			out[i] = RegionAction{Verb: RegionDegrade, Region: s.Region, Bias: s.Bias, Variant: s.Variant + 1,
				Reason: "overloaded with no shift target: trading accuracy for throughput"}
		case !spiked && !overloaded && s.Bias < 1:
			bias := s.Bias / p.ShiftStep
			if bias > 1 {
				bias = 1
			}
			out[i] = RegionAction{Verb: ShiftBack, Region: s.Region, Bias: bias, Variant: s.Variant,
				Reason: "price and load back to normal: returning shifted traffic"}
		case healthy && s.Bias >= 1 && s.Variant > 0:
			out[i] = RegionAction{Verb: RegionRestore, Region: s.Region, Bias: s.Bias, Variant: s.Variant - 1,
				Reason: "sustained regional headroom: restoring accuracy"}
		default:
			out[i] = hold("inside band")
		}
	}
	return out
}
