// Package autoscale closes the paper's cost-accuracy loop online. The
// offline planner (internal/explore, Algorithm 1) answers "which degree of
// pruning on which resource configuration" once, before the run; this
// package re-asks the same joint question continuously while a gateway
// serves traffic, and actuates the answer along both axes: the replica
// count (the resource configuration, priced per second like Section 4.1.2)
// and the pruning ladder (the degree of pruning, Figures 6–8).
//
// The ordering rule is the paper's Figure 9/10 trade-off made live: when
// the p99 latency or queue pressure violates the SLO, the controller
// prefers to buy capacity — add a replica — for as long as the $/hr budget
// allows, and only when the budget binds does it start spending accuracy
// by walking the ladder down. On recovery the priorities invert: accuracy
// is restored before replicas are returned, because accuracy is the thing
// the user actually paid for.
//
// Decisions are made by a pure Policy.Decide(Signal) table — no clocks, no
// randomness — so the control law is unit-testable row by row and a fixed
// signal sequence replays to bit-identical actions.
package autoscale

import "fmt"

// Profile describes one ladder rung to the policy: what serving there is
// worth (accuracy) and what it buys (relative speed), both predicted by
// the shared engine.Predictor.
type Profile struct {
	// Degree labels the rung's degree of pruning.
	Degree string `json:"degree"`
	// Accuracy is the rung's predicted Top-1 accuracy (fraction).
	Accuracy float64 `json:"accuracy"`
	// Speed is the rung's predicted throughput multiplier relative to rung
	// 0 (≥ 1 as pruning increases) — the per-batch time ratio t₀/tᵢ.
	Speed float64 `json:"speed"`
}

// Limits bound the resource axis: how many replicas the fleet may hold and
// what the money ceiling is.
type Limits struct {
	// MinReplicas ≥ 1 is the floor the fleet never drops below.
	MinReplicas int `json:"min_replicas"`
	// MaxReplicas caps scale-out regardless of budget.
	MaxReplicas int `json:"max_replicas"`
	// PricePerReplicaHour is one replica's rental price in $/hr.
	PricePerReplicaHour float64 `json:"price_per_replica_hour"`
	// BudgetPerHour is the fleet-wide spend ceiling in $/hr (0 = none).
	// Scale-out keeping replicas·price within it is always preferred over
	// degrading; a fleet already over it is shrunk unconditionally.
	BudgetPerHour float64 `json:"budget_per_hour"`
}

// Signal is what the autoscaler observed over one control tick.
type Signal struct {
	// ArrivalRate is the offered load in requests/second (admitted + shed).
	ArrivalRate float64 `json:"arrival_rate"`
	// CapacityPerReplica is the requests/second one replica sustains at
	// ladder rung 0 (0 = not yet known; capacity-gated relaxations wait).
	CapacityPerReplica float64 `json:"capacity_per_replica"`
	// P99 is the tick's p99 total latency in seconds (0 when Samples is 0).
	P99 float64 `json:"p99_seconds"`
	// Samples is the number of completed requests in the tick.
	Samples int `json:"samples"`
	// QueueFrac is the admission-queue fill fraction at tick time.
	QueueFrac float64 `json:"queue_frac"`
	// ErrorRate is the tick's shed+expired+faulted fraction of submissions.
	ErrorRate float64 `json:"error_rate"`
	// Replicas and Variant are the state being controlled.
	Replicas int `json:"replicas"`
	Variant  int `json:"variant"`
	// Healthy is the consecutive-healthy-tick streak entering this tick.
	Healthy int `json:"healthy"`
	// SinceScale is the number of ticks since the last replica change.
	SinceScale int `json:"since_scale"`
}

// Verb is the kind of move a decision makes.
type Verb int

// The five moves of the control table.
const (
	// Hold changes nothing this tick.
	Hold Verb = iota
	// ScaleOut adds one replica (buy capacity).
	ScaleOut
	// ScaleIn retires one replica (return money).
	ScaleIn
	// Degrade walks the ladder one rung down (spend accuracy).
	Degrade
	// Restore walks the ladder one rung up (reclaim accuracy).
	Restore
)

// String names the verb.
func (v Verb) String() string {
	switch v {
	case ScaleOut:
		return "scale_out"
	case ScaleIn:
		return "scale_in"
	case Degrade:
		return "degrade"
	case Restore:
		return "restore"
	default:
		return "hold"
	}
}

// Action is one tick's decision: the target state plus the bookkeeping the
// next tick's Signal carries back in.
type Action struct {
	Verb     Verb   `json:"verb"`
	Replicas int    `json:"replicas"` // target replica count
	Variant  int    `json:"variant"`  // target ladder rung
	Healthy  int    `json:"healthy"`  // next healthy-streak value
	Reason   string `json:"reason"`
}

// Policy is the pure decision core of the cost-accuracy autoscaler. All
// fields are plain numbers so Decide is a deterministic function of its
// Signal — the online analogue of the planner's Algorithm 1 step, with the
// TAR/CAR preference order baked into the branch structure.
type Policy struct {
	// SLOSeconds is the p99 latency objective being defended.
	SLOSeconds float64 `json:"slo_seconds"`
	// TargetUtilization is the fraction of predicted capacity the fleet
	// aims to stay under when relaxing (default 0.7): restores and
	// scale-ins only happen when the offered load would still fit.
	TargetUtilization float64 `json:"target_utilization"`
	// DegradeQueueFrac is the queue-fullness fraction that counts as an
	// SLO violation even before p99 catches up (default 0.75).
	DegradeQueueFrac float64 `json:"degrade_queue_frac"`
	// RestoreFraction: a tick is healthy iff p99 ≤ SLO·RestoreFraction
	// (default 0.5) — the hysteresis band between violate and relax.
	RestoreFraction float64 `json:"restore_fraction"`
	// HoldTicks is the consecutive-healthy-tick streak required before any
	// relaxation (default 3) — the classic fast-down/slow-up asymmetry.
	HoldTicks int `json:"hold_ticks"`
	// CooldownTicks is the minimum tick distance between replica changes
	// (default 2), covering warm-up so a booting replica is given a chance
	// to absorb load before the next move.
	CooldownTicks int `json:"cooldown_ticks"`
	// Limits bound the resource axis; Profiles describe the accuracy axis,
	// least-pruned first (rung 0 = the gateway ladder's rung 0).
	Limits   Limits    `json:"limits"`
	Profiles []Profile `json:"profiles"`
}

// withDefaults fills the documented defaults on zero fields.
func (p Policy) withDefaults() Policy {
	if p.TargetUtilization <= 0 || p.TargetUtilization > 1 {
		p.TargetUtilization = 0.7
	}
	if p.DegradeQueueFrac <= 0 || p.DegradeQueueFrac > 1 {
		p.DegradeQueueFrac = 0.75
	}
	if p.RestoreFraction <= 0 || p.RestoreFraction >= 1 {
		p.RestoreFraction = 0.5
	}
	if p.HoldTicks <= 0 {
		p.HoldTicks = 3
	}
	if p.CooldownTicks <= 0 {
		p.CooldownTicks = 2
	}
	if p.Limits.MinReplicas <= 0 {
		p.Limits.MinReplicas = 1
	}
	if p.Limits.MaxReplicas < p.Limits.MinReplicas {
		p.Limits.MaxReplicas = p.Limits.MinReplicas
	}
	return p
}

// validate rejects a policy Decide cannot run on.
func (p Policy) validate() error {
	if p.SLOSeconds <= 0 {
		return fmt.Errorf("autoscale: policy needs SLOSeconds > 0")
	}
	if len(p.Profiles) == 0 {
		return fmt.Errorf("autoscale: policy needs at least one ladder profile")
	}
	if p.Limits.PricePerReplicaHour < 0 || p.Limits.BudgetPerHour < 0 {
		return fmt.Errorf("autoscale: negative price or budget")
	}
	return nil
}

// affordable reports whether renting n replicas stays inside both the
// replica cap and the $/hr budget.
func (p Policy) affordable(n int) bool {
	if n > p.Limits.MaxReplicas {
		return false
	}
	if p.Limits.BudgetPerHour <= 0 {
		return true
	}
	return float64(n)*p.Limits.PricePerReplicaHour <= p.Limits.BudgetPerHour+1e-9
}

// speed returns the throughput multiplier of rung v (1 when unknown).
func (p Policy) speed(v int) float64 {
	if v < 0 || v >= len(p.Profiles) || p.Profiles[v].Speed <= 0 {
		return 1
	}
	return p.Profiles[v].Speed
}

// fits predicts whether the offered load fits n replicas at rung v with
// TargetUtilization headroom. Unknown capacity is only acceptable when
// nothing is arriving — relaxations are otherwise deferred until the
// estimator has data.
func (p Policy) fits(s Signal, v, n int) bool {
	if s.ArrivalRate <= 0 {
		return true
	}
	if s.CapacityPerReplica <= 0 {
		return false
	}
	capacity := s.CapacityPerReplica * p.speed(v) * float64(n) * p.TargetUtilization
	return s.ArrivalRate <= capacity
}

// Decide maps one tick's signal to an action. The branch order IS the
// policy:
//
//  1. budget clamp — a fleet over budget shrinks, health notwithstanding;
//  2. SLO violated — scale out if a replica is affordable (waiting out the
//     scale cooldown rather than panic-degrading), degrade only when the
//     budget or replica cap binds;
//  3. healthy long enough — restore accuracy first, and only once the
//     ladder is fully restored (or restoring would not fit) hand back a
//     replica;
//  4. otherwise hold, carrying the healthy streak.
//
// Decide is pure: equal signals yield equal actions, bit for bit.
func (p Policy) Decide(s Signal) Action {
	p = p.withDefaults()
	hold := func(streak int, reason string) Action {
		if streak > p.HoldTicks {
			streak = p.HoldTicks // saturate so idle eons don't overflow
		}
		return Action{Verb: Hold, Replicas: s.Replicas, Variant: s.Variant, Healthy: streak, Reason: reason}
	}

	// 1. The budget is a hard ceiling, not a preference: if the fleet
	// costs more than it (budget lowered mid-run, say), shed a replica now.
	if s.Replicas > p.Limits.MinReplicas && !p.affordable(s.Replicas) {
		return Action{Verb: ScaleIn, Replicas: s.Replicas - 1, Variant: s.Variant,
			Reason: "fleet over budget/cap, shedding a replica"}
	}

	violated := s.QueueFrac >= p.DegradeQueueFrac ||
		(s.Samples > 0 && s.P99 > p.SLOSeconds)
	if violated {
		// 2. Capacity is short. Money first, accuracy second.
		if s.Replicas < p.Limits.MaxReplicas && p.affordable(s.Replicas+1) {
			if s.SinceScale < p.CooldownTicks {
				return hold(0, "overloaded, waiting out scale cooldown")
			}
			return Action{Verb: ScaleOut, Replicas: s.Replicas + 1, Variant: s.Variant,
				Reason: "SLO violated, budget allows another replica"}
		}
		if s.Variant < len(p.Profiles)-1 {
			return Action{Verb: Degrade, Replicas: s.Replicas, Variant: s.Variant + 1,
				Reason: "SLO violated, budget binds: trading accuracy for throughput"}
		}
		return hold(0, "saturated: replica and pruning headroom exhausted")
	}

	healthy := s.QueueFrac < p.DegradeQueueFrac &&
		(s.Samples == 0 || s.P99 <= p.SLOSeconds*p.RestoreFraction)
	if !healthy {
		return hold(0, "inside SLO band")
	}
	streak := s.Healthy + 1
	if streak < p.HoldTicks {
		return hold(streak, "healthy, building streak")
	}

	// 3. Sustained headroom: give accuracy back before money.
	if s.Variant > 0 && p.fits(s, s.Variant-1, s.Replicas) {
		return Action{Verb: Restore, Replicas: s.Replicas, Variant: s.Variant - 1,
			Reason: "sustained headroom, restoring accuracy"}
	}
	if s.Replicas > p.Limits.MinReplicas && s.SinceScale >= p.CooldownTicks &&
		p.fits(s, s.Variant, s.Replicas-1) {
		return Action{Verb: ScaleIn, Replicas: s.Replicas - 1, Variant: s.Variant,
			Reason: "sustained headroom, returning a replica"}
	}
	return hold(streak, "healthy, nothing left to relax")
}
