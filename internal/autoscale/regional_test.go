package autoscale

import (
	"reflect"
	"testing"
)

func regionalPolicy() RegionalPolicy {
	return RegionalPolicy{SLOSeconds: 0.05}
}

// twoRegions is the canonical fixture: a cheap healthy west and an east
// whose signal the test bends.
func twoRegions(east RegionSignal) []RegionSignal {
	west := RegionSignal{
		Region: "us-west", PriceMultiplier: 1.0, Weight: 1, Bias: 1,
		QueueFrac: 0.1, P99: 0.01, Samples: 50, Variant: 0, Variants: 3,
	}
	east.Region = "us-east"
	if east.Variants == 0 {
		east.Variants = 3
	}
	return []RegionSignal{west, east}
}

func TestRegionalShiftBeforeDegrade(t *testing.T) {
	p := regionalPolicy()
	// East's spot price spiked ×3 while west is cheap and has headroom:
	// the policy must shift, not degrade — accuracy untouched.
	sigs := twoRegions(RegionSignal{
		PriceMultiplier: 3.0, Weight: 1, Bias: 1,
		QueueFrac: 0.2, P99: 0.01, Samples: 40,
	})
	acts := p.Decide(sigs)
	if acts[1].Verb != ShiftAway {
		t.Fatalf("east verb %v, want ShiftAway (%s)", acts[1].Verb, acts[1].Reason)
	}
	if acts[1].Bias >= 1 {
		t.Fatalf("ShiftAway bias %v did not drop", acts[1].Bias)
	}
	if acts[1].Variant != 0 {
		t.Fatalf("shift changed the ladder: variant %d", acts[1].Variant)
	}
	if acts[0].Verb != RegionHold {
		t.Fatalf("west verb %v, want Hold", acts[0].Verb)
	}

	// Same spike, but east is also overloaded: still shift first.
	sigs = twoRegions(RegionSignal{
		PriceMultiplier: 3.0, Weight: 1, Bias: 1,
		QueueFrac: 0.9, P99: 0.2, Samples: 40,
	})
	if acts := p.Decide(sigs); acts[1].Verb != ShiftAway {
		t.Fatalf("overloaded+spiked east verb %v, want ShiftAway", acts[1].Verb)
	}
}

func TestRegionalDegradeWhenNoSink(t *testing.T) {
	p := regionalPolicy()
	// West has no headroom (queue nearly full): an overloaded east has
	// nowhere to shift and must degrade.
	sigs := []RegionSignal{
		{Region: "us-west", PriceMultiplier: 1, Weight: 1, Bias: 1,
			QueueFrac: 0.9, P99: 0.2, Samples: 40, Variant: 0, Variants: 3},
		{Region: "us-east", PriceMultiplier: 1, Weight: 1, Bias: 1,
			QueueFrac: 0.9, P99: 0.2, Samples: 40, Variant: 0, Variants: 3},
	}
	acts := p.Decide(sigs)
	for i, a := range acts {
		if a.Verb != RegionDegrade {
			t.Fatalf("region %d verb %v, want RegionDegrade (%s)", i, a.Verb, a.Reason)
		}
		if a.Variant != 1 {
			t.Fatalf("region %d degraded to %d, want 1", i, a.Variant)
		}
	}
	// At the bottom of the ladder there is nothing left: hold.
	sigs[0].Variant, sigs[1].Variant = 2, 2
	for i, a := range p.Decide(sigs) {
		if a.Verb != RegionHold {
			t.Fatalf("saturated region %d verb %v, want Hold", i, a.Verb)
		}
	}
}

func TestRegionalShiftBackThenRestore(t *testing.T) {
	p := regionalPolicy()
	// Spike over, bias still low: first move is ShiftBack even though the
	// ladder is also degraded.
	sigs := twoRegions(RegionSignal{
		PriceMultiplier: 1.0, Weight: 1, Bias: 0.25,
		QueueFrac: 0.1, P99: 0.01, Samples: 40, Variant: 1,
	})
	acts := p.Decide(sigs)
	if acts[1].Verb != ShiftBack {
		t.Fatalf("east verb %v, want ShiftBack (%s)", acts[1].Verb, acts[1].Reason)
	}
	if acts[1].Bias != 0.5 {
		t.Fatalf("ShiftBack bias %v, want 0.5", acts[1].Bias)
	}
	// Bias home: now accuracy comes back.
	sigs[1].Bias = 1
	acts = p.Decide(sigs)
	if acts[1].Verb != RegionRestore || acts[1].Variant != 0 {
		t.Fatalf("east action %+v, want RegionRestore to 0", acts[1])
	}
}

func TestRegionalBiasFloorAndDrainExclusion(t *testing.T) {
	p := regionalPolicy()
	// At the bias floor further spiked ticks hold rather than shift.
	sigs := twoRegions(RegionSignal{
		PriceMultiplier: 3.0, Weight: 1, Bias: 1.0 / 8,
		QueueFrac: 0.2, P99: 0.01, Samples: 40,
	})
	if acts := p.Decide(sigs); acts[1].Verb != RegionHold {
		t.Fatalf("at-floor verb %v, want Hold", acts[1].Verb)
	}
	// A drained region (weight 0) is not a sink: overloaded east with a
	// dead west degrades instead of shifting into the void. It is also
	// excluded from the cheapest-price baseline, so east is not "spiked"
	// relative to a dead cheap region.
	sigs = []RegionSignal{
		{Region: "us-west", PriceMultiplier: 1, Weight: 0, Bias: 1,
			QueueFrac: 0, P99: 0, Samples: 0, Variant: 0, Variants: 3},
		{Region: "us-east", PriceMultiplier: 2, Weight: 1, Bias: 1,
			QueueFrac: 0.9, P99: 0.2, Samples: 40, Variant: 0, Variants: 3},
	}
	acts := p.Decide(sigs)
	if acts[1].Verb != RegionDegrade {
		t.Fatalf("no-sink verb %v, want RegionDegrade (%s)", acts[1].Verb, acts[1].Reason)
	}
}

func TestRegionalDecideDeterministic(t *testing.T) {
	p := regionalPolicy()
	sigs := []RegionSignal{
		{Region: "ap-south", PriceMultiplier: 1.28, Weight: 1, Bias: 0.5,
			QueueFrac: 0.4, P99: 0.03, Samples: 10, Variant: 1, Variants: 4},
		{Region: "eu-central", PriceMultiplier: 3.36, Weight: 1, Bias: 1,
			QueueFrac: 0.8, P99: 0.08, Samples: 25, Variant: 0, Variants: 4},
		{Region: "us-west", PriceMultiplier: 1, Weight: 0.5, Bias: 1,
			QueueFrac: 0.2, P99: 0.01, Samples: 60, Variant: 0, Variants: 4},
	}
	a := p.Decide(sigs)
	b := p.Decide(sigs)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Decide not deterministic:\n%+v\n%+v", a, b)
	}
	if len(a) != len(sigs) {
		t.Fatalf("actions %d for %d signals", len(a), len(sigs))
	}
}

func TestRegionalValidate(t *testing.T) {
	if err := (RegionalPolicy{}).Validate(); err == nil {
		t.Fatal("zero policy should fail validation")
	}
	if err := regionalPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
}
