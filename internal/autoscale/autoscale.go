package autoscale

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ccperf/internal/serving"
	"ccperf/internal/telemetry"
)

// Config parameterizes an Autoscaler. Zero fields take the documented
// defaults.
type Config struct {
	// Policy is the decision table (required: SLOSeconds and Profiles).
	Policy Policy
	// Interval is the control tick period (default 250ms, min 1ms).
	Interval time.Duration
	// Registry and Tracer receive telemetry (nil = package defaults).
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
}

// Decision is one applied tick, kept for /autoscale/status and tests.
type Decision struct {
	Tick     int64  `json:"tick"`
	Verb     string `json:"verb"`
	Replicas int    `json:"replicas"`
	Variant  int    `json:"variant"`
	Reason   string `json:"reason"`
	Signal   Signal `json:"signal"`
}

// Autoscaler drives a serving.Gateway along both cost-accuracy axes. It
// periodically reads the gateway's signals (arrival rate, queue depth, p99
// versus SLO, error rate, current rung), folds in the predictor-derived
// rung profiles, asks the pure Policy for a move, and actuates it through
// Gateway.ScaleTo / Gateway.SetVariant. Construct with New against a
// gateway built with Config.ExternalControl (so the built-in one-axis
// controller stays out of the way), then Start/Stop around the gateway's
// own lifecycle.
type Autoscaler struct {
	g        *serving.Gateway
	pol      Policy
	interval time.Duration
	tracer   *telemetry.Tracer

	stopOnce  sync.Once
	startOnce sync.Once
	stopCh    chan struct{}
	done      chan struct{}

	mu     sync.Mutex
	ticks  int64
	counts [5]int64 // per-verb decisions, indexed by Verb — this
	// autoscaler's own tally, independent of the (possibly shared) registry
	healthy     int
	sinceScale  int
	capEstimate float64 // req/s per replica at rung 0, last known
	lastOffered int64
	lastErrors  int64
	lastServed  int64
	lastExecSec float64
	last        Decision

	m scalerMetrics
}

type scalerMetrics struct {
	ticks, scaleOuts, scaleIns     *telemetry.Counter
	degrades, restores, holds      *telemetry.Counter
	replicas, variant              *telemetry.Gauge
	arrivalRate, capacityPerRep    *telemetry.Gauge
	costPerHour, budgetUtilization *telemetry.Gauge
}

// New validates the config and builds an autoscaler bound to g (not yet
// ticking). The policy's profile count must match the gateway's ladder.
func New(g *serving.Gateway, cfg Config) (*Autoscaler, error) {
	if g == nil {
		return nil, fmt.Errorf("autoscale: nil gateway")
	}
	cfg.Policy = cfg.Policy.withDefaults()
	if err := cfg.Policy.validate(); err != nil {
		return nil, err
	}
	if n := len(g.Config().Ladder); n != len(cfg.Policy.Profiles) {
		return nil, fmt.Errorf("autoscale: %d profiles for a %d-rung ladder", len(cfg.Policy.Profiles), n)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Interval < time.Millisecond {
		cfg.Interval = time.Millisecond
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.DefaultTracer
	}
	reg := cfg.Registry
	a := &Autoscaler{
		g:        g,
		pol:      cfg.Policy,
		interval: cfg.Interval,
		tracer:   cfg.Tracer,
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
		m: scalerMetrics{
			ticks:             reg.Counter("autoscale.ticks_total"),
			scaleOuts:         reg.Counter("autoscale.scale_out_total"),
			scaleIns:          reg.Counter("autoscale.scale_in_total"),
			degrades:          reg.Counter("autoscale.degrade_total"),
			restores:          reg.Counter("autoscale.restore_total"),
			holds:             reg.Counter("autoscale.hold_total"),
			replicas:          reg.Gauge("autoscale.replicas"),
			variant:           reg.Gauge("autoscale.variant"),
			arrivalRate:       reg.Gauge("autoscale.arrival_rate"),
			capacityPerRep:    reg.Gauge("autoscale.capacity_per_replica"),
			costPerHour:       reg.Gauge("autoscale.cost_per_hour"),
			budgetUtilization: reg.Gauge("autoscale.budget_utilization"),
		},
	}
	// Start the cooldown satisfied so the first genuine surge can act.
	a.sinceScale = a.pol.CooldownTicks
	a.m.replicas.Set(float64(g.ReplicaCount()))
	return a, nil
}

// Policy returns the resolved (defaulted) decision table.
func (a *Autoscaler) Policy() Policy { return a.pol }

// Interval returns the resolved tick period.
func (a *Autoscaler) Interval() time.Duration { return a.interval }

// Start launches the tick loop. Call after Gateway.Start.
func (a *Autoscaler) Start() {
	a.startOnce.Do(func() {
		go func() {
			defer close(a.done)
			ticker := time.NewTicker(a.interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					a.Tick()
				case <-a.stopCh:
					return
				}
			}
		}()
	})
}

// Stop halts the tick loop (idempotent; does not stop the gateway).
func (a *Autoscaler) Stop() {
	a.stopOnce.Do(func() { close(a.stopCh) })
	a.startOnce.Do(func() { close(a.done) }) // never started: unblock waiters
	<-a.done
}

// Tick runs one control step: observe, decide, actuate. Exported so tests
// and simulations can step the loop deterministically without the ticker.
func (a *Autoscaler) Tick() Decision {
	a.mu.Lock()
	defer a.mu.Unlock()

	sig := a.observeLocked()
	act := a.pol.Decide(sig)
	a.applyLocked(act, sig)

	a.ticks++
	d := Decision{
		Tick: a.ticks, Verb: act.Verb.String(),
		Replicas: act.Replicas, Variant: act.Variant,
		Reason: act.Reason, Signal: sig,
	}
	a.last = d
	return d
}

// observeLocked assembles one tick's Signal from the gateway's counters
// and the busy-time capacity estimator.
func (a *Autoscaler) observeLocked() Signal {
	cs := a.g.ControlSignal()
	st := a.g.Stats()
	served, execSec := a.g.ExecStats()

	offered := st.Admitted + st.Shed
	errs := st.Shed + st.Expired + st.Faulted
	dtSec := a.interval.Seconds()
	arrival := float64(offered-a.lastOffered) / dtSec
	errRate := 0.0
	if d := offered - a.lastOffered; d > 0 {
		errRate = float64(errs-a.lastErrors) / float64(d)
	}
	// Capacity estimate: requests per busy-second of one batcher over the
	// tick, normalized to rung 0 by the rung's predicted speed. Ticks with
	// no executions keep the last estimate (idle ≠ incapable).
	if dServed, dExec := served-a.lastServed, execSec-a.lastExecSec; dExec > 0 && dServed > 0 {
		a.capEstimate = float64(dServed) / dExec / a.pol.speed(st.Variant)
	}
	a.lastOffered, a.lastErrors = offered, errs
	a.lastServed, a.lastExecSec = served, execSec

	return Signal{
		ArrivalRate:        arrival,
		CapacityPerReplica: a.capEstimate,
		P99:                cs.P99,
		Samples:            cs.Samples,
		QueueFrac:          cs.QueueFrac,
		ErrorRate:          errRate,
		Replicas:           st.Replicas,
		Variant:            st.Variant,
		Healthy:            a.healthy,
		SinceScale:         a.sinceScale,
	}
}

// applyLocked actuates one decision and records it.
func (a *Autoscaler) applyLocked(act Action, sig Signal) {
	a.healthy = act.Healthy
	a.counts[act.Verb]++
	// The verb span opens before actuation so the gateway-side spans the
	// decision causes (serving.set_variant) parent under it — the trace
	// tree shows which autoscaler decision moved the ladder.
	ctx := context.Background()
	var finish telemetry.FinishFunc
	if act.Verb != Hold {
		ctx, finish = a.tracer.StartSpan(ctx, "autoscale."+act.Verb.String())
	}
	switch act.Verb {
	case ScaleOut, ScaleIn:
		a.sinceScale = 0
		a.g.ScaleTo(act.Replicas)
		if act.Verb == ScaleOut {
			a.m.scaleOuts.Inc()
		} else {
			a.m.scaleIns.Inc()
		}
	case Degrade, Restore:
		a.sinceScale++
		a.g.SetVariant(ctx, act.Variant)
		if act.Verb == Degrade {
			a.m.degrades.Inc()
		} else {
			a.m.restores.Inc()
		}
	default:
		a.sinceScale++
		a.m.holds.Inc()
	}
	a.m.ticks.Inc()
	a.m.replicas.Set(float64(a.g.ReplicaCount()))
	a.m.variant.Set(float64(a.g.CurrentVariant()))
	a.m.arrivalRate.Set(sig.ArrivalRate)
	a.m.capacityPerRep.Set(sig.CapacityPerReplica)
	costPerHour := float64(a.g.ReplicaCount()) * a.pol.Limits.PricePerReplicaHour
	a.m.costPerHour.Set(costPerHour)
	if b := a.pol.Limits.BudgetPerHour; b > 0 {
		a.m.budgetUtilization.Set(costPerHour / b)
	}
	if finish != nil {
		finish(
			telemetry.L("replicas", act.Replicas),
			telemetry.L("variant", act.Variant),
			telemetry.L("p99_seconds", sig.P99),
			telemetry.L("queue_frac", sig.QueueFrac),
			telemetry.L("arrival_rate", sig.ArrivalRate),
			telemetry.L("reason", act.Reason),
		)
	}
}

// Status is the point-in-time autoscaler view served at /autoscale/status
// and folded into the loadtest report.
type Status struct {
	Ticks     int64 `json:"ticks"`
	Replicas  int   `json:"replicas"`
	Variant   int   `json:"variant"`
	ScaleOuts int64 `json:"scale_outs"`
	ScaleIns  int64 `json:"scale_ins"`
	Degrades  int64 `json:"degrades"`
	Restores  int64 `json:"restores"`
	Holds     int64 `json:"holds"`
	// Cost prices the gateway's replica-seconds integral; CostPerHour is
	// the current burn rate against BudgetPerHour.
	Cost           float64   `json:"cost_usd"`
	CostPerHour    float64   `json:"cost_per_hour"`
	BudgetPerHour  float64   `json:"budget_per_hour"`
	ReplicaSeconds float64   `json:"replica_seconds"`
	LastDecision   Decision  `json:"last_decision"`
	Profiles       []Profile `json:"profiles"`
}

// Status snapshots the autoscaler.
func (a *Autoscaler) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	repSec := a.g.ReplicaSeconds()
	price := a.pol.Limits.PricePerReplicaHour
	return Status{
		Ticks:          a.ticks,
		Replicas:       a.g.ReplicaCount(),
		Variant:        a.g.CurrentVariant(),
		ScaleOuts:      a.counts[ScaleOut],
		ScaleIns:       a.counts[ScaleIn],
		Degrades:       a.counts[Degrade],
		Restores:       a.counts[Restore],
		Holds:          a.counts[Hold],
		Cost:           repSec / 3600 * price,
		CostPerHour:    float64(a.g.ReplicaCount()) * price,
		BudgetPerHour:  a.pol.Limits.BudgetPerHour,
		ReplicaSeconds: repSec,
		LastDecision:   a.last,
		Profiles:       a.pol.Profiles,
	}
}

// Handler serves GET /autoscale/status as indented JSON.
func Handler(a *Autoscaler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/autoscale/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(a.Status())
	})
	return mux
}
