package autoscale

import (
	"reflect"
	"testing"
)

// testPolicy is the shared table under test: a 3-rung ladder on $1/hr
// replicas with a $4/hr budget, 1–4 replicas.
func testPolicy() Policy {
	return Policy{
		SLOSeconds:        0.050,
		TargetUtilization: 0.7,
		DegradeQueueFrac:  0.75,
		RestoreFraction:   0.5,
		HoldTicks:         3,
		CooldownTicks:     2,
		Limits: Limits{
			MinReplicas: 1, MaxReplicas: 4,
			PricePerReplicaHour: 1, BudgetPerHour: 4,
		},
		Profiles: []Profile{
			{Degree: "nonpruned", Accuracy: 0.57, Speed: 1},
			{Degree: "conv@50", Accuracy: 0.52, Speed: 1.6},
			{Degree: "conv@90", Accuracy: 0.30, Speed: 2.4},
		},
	}
}

// base is a calm mid-state signal; rows tweak it.
func base() Signal {
	return Signal{
		ArrivalRate: 40, CapacityPerReplica: 50,
		P99: 0.020, Samples: 100, QueueFrac: 0.1,
		Replicas: 2, Variant: 0,
		Healthy: 0, SinceScale: 5,
	}
}

func TestDecideTable(t *testing.T) {
	p := testPolicy()
	rows := []struct {
		name string
		sig  func(Signal) Signal
		pol  func(Policy) Policy
		verb Verb
		// optional target checks (−1 = don't care)
		replicas, variant int
	}{
		{
			name: "surge scales out before degrading while budget allows",
			sig: func(s Signal) Signal {
				s.P99 = 0.120
				return s
			},
			verb: ScaleOut, replicas: 3, variant: 0,
		},
		{
			name: "queue pressure alone also buys a replica first",
			sig: func(s Signal) Signal {
				s.QueueFrac = 0.9
				return s
			},
			verb: ScaleOut, replicas: 3, variant: 0,
		},
		{
			name: "budget bound: surge degrades instead of scaling",
			sig: func(s Signal) Signal {
				s.P99, s.Replicas = 0.120, 4 // 5th replica would cost $5/hr > $4
				return s
			},
			verb: Degrade, replicas: 4, variant: 1,
		},
		{
			name: "replica cap binds the same way the budget does",
			sig: func(s Signal) Signal {
				s.P99, s.Replicas = 0.120, 4
				return s
			},
			pol: func(p Policy) Policy {
				p.Limits.BudgetPerHour = 0 // unbounded money, capped fleet
				return p
			},
			verb: Degrade, replicas: 4, variant: 1,
		},
		{
			name: "saturated: max rung and max replicas holds",
			sig: func(s Signal) Signal {
				s.P99, s.Replicas, s.Variant = 0.120, 4, 2
				return s
			},
			verb: Hold,
		},
		{
			name: "overload during scale cooldown waits for the warm replica",
			sig: func(s Signal) Signal {
				s.P99, s.SinceScale = 0.120, 1
				return s
			},
			verb: Hold,
		},
		{
			name: "over budget shrinks immediately even when healthy",
			sig: func(s Signal) Signal {
				s.Replicas = 3
				return s
			},
			pol: func(p Policy) Policy {
				p.Limits.BudgetPerHour = 2.5 // 3 replicas burn $3/hr
				return p
			},
			verb: ScaleIn, replicas: 2, variant: 0,
		},
		{
			name: "quiet fleet restores accuracy before returning replicas",
			sig: func(s Signal) Signal {
				s.Variant, s.Healthy, s.ArrivalRate = 1, 2, 10
				return s
			},
			verb: Restore, replicas: 2, variant: 0,
		},
		{
			name: "quiet and fully accurate: scale-in after the streak",
			sig: func(s Signal) Signal {
				s.Healthy, s.ArrivalRate = 2, 10 // one replica at 50 rps × 0.7 fits 10 rps
				return s
			},
			verb: ScaleIn, replicas: 1, variant: 0,
		},
		{
			name: "healthy but streak too short holds and counts",
			sig: func(s Signal) Signal {
				s.Healthy = 0
				return s
			},
			verb: Hold,
		},
		{
			name: "scale-in deferred when the load would not fit",
			sig: func(s Signal) Signal {
				s.Healthy, s.ArrivalRate = 2, 69 // 1 replica fits only 35 rps
				return s
			},
			verb: Hold,
		},
		{
			name: "relaxation deferred while capacity is unknown",
			sig: func(s Signal) Signal {
				s.Healthy, s.CapacityPerReplica, s.Variant = 2, 0, 1
				return s
			},
			verb: Hold,
		},
		{
			name: "idle ticks count as healthy",
			sig: func(s Signal) Signal {
				s.Samples, s.P99, s.ArrivalRate, s.Healthy, s.Variant = 0, 0, 0, 2, 1
				return s
			},
			verb: Restore, replicas: 2, variant: 0,
		},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			pol := p
			if row.pol != nil {
				pol = row.pol(p)
			}
			sig := row.sig(base())
			act := pol.Decide(sig)
			if act.Verb != row.verb {
				t.Fatalf("Decide(%+v) = %s (%q), want %s", sig, act.Verb, act.Reason, row.verb)
			}
			if row.verb != Hold {
				if act.Replicas != row.replicas {
					t.Fatalf("target replicas = %d, want %d", act.Replicas, row.replicas)
				}
				if act.Variant != row.variant {
					t.Fatalf("target variant = %d, want %d", act.Variant, row.variant)
				}
			}
		})
	}
}

// TestHysteresisHoldsUnderFlappingInput: input oscillating between healthy
// and borderline never accumulates the HoldTicks streak, so the policy
// never relaxes — the fleet neither flaps replicas nor the ladder.
func TestHysteresisHoldsUnderFlappingInput(t *testing.T) {
	p := testPolicy()
	s := base()
	s.Variant = 1 // something to restore, were the streak ever satisfied
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			s.P99 = 0.020 // healthy
		} else {
			s.P99 = 0.030 // inside SLO but above the restore band (0.025)
		}
		act := p.Decide(s)
		if act.Verb != Hold {
			t.Fatalf("tick %d: flapping input produced %s (%q)", i, act.Verb, act.Reason)
		}
		s.Healthy = act.Healthy
		s.SinceScale++
	}
}

// TestStreakResetOnViolation: one bad tick throws away the whole streak.
func TestStreakResetOnViolation(t *testing.T) {
	p := testPolicy()
	s := base()
	s.Variant = 1
	s.P99 = 0.020
	for i := 0; i < 2; i++ {
		act := p.Decide(s)
		s.Healthy = act.Healthy
	}
	if s.Healthy != 2 {
		t.Fatalf("streak = %d after two healthy ticks, want 2", s.Healthy)
	}
	s.P99 = 0.120
	act := p.Decide(s)
	if act.Healthy != 0 {
		t.Fatalf("violation carried streak %d forward", act.Healthy)
	}
}

// TestDecideDeterministic replays a fixed signal sequence twice through
// the closed loop (healthy/sinceScale fed back, targets applied) and
// requires bit-identical action sequences — the reproducibility the
// seeded loadtest smoke leans on.
func TestDecideDeterministic(t *testing.T) {
	p := testPolicy()
	run := func() []Action {
		s := base()
		s.Replicas, s.Variant = 1, 0
		// A synthetic day: ramp up, plateau over budget, ramp down.
		p99s := []float64{0.01, 0.02, 0.08, 0.09, 0.12, 0.13, 0.12, 0.11, 0.06,
			0.02, 0.02, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01}
		var out []Action
		for _, p99 := range p99s {
			s.P99 = p99
			act := p.Decide(s)
			out = append(out, act)
			s.Healthy = act.Healthy
			if act.Verb == ScaleOut || act.Verb == ScaleIn {
				s.SinceScale = 0
			} else {
				s.SinceScale++
			}
			s.Replicas, s.Variant = act.Replicas, act.Variant
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%v\nvs\n%v", a, b)
	}
	// And the trajectory actually exercises both axes.
	var sawOut, sawIn bool
	for _, act := range a {
		sawOut = sawOut || act.Verb == ScaleOut
		sawIn = sawIn || act.Verb == ScaleIn || act.Verb == Restore
	}
	if !sawOut || !sawIn {
		t.Fatalf("synthetic day never moved both directions: %v", a)
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := (Policy{}).validate(); err == nil {
		t.Fatal("empty policy must not validate")
	}
	p := testPolicy()
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
}
