package autoscale

import (
	"context"
	"fmt"

	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/prune"
)

// BuildProfiles asks the shared engine.Predictor what each ladder rung is
// worth: predicted Top-1 accuracy and the per-batch time ratio against
// rung 0 on the given instance type — one Speed per rung, the per-variant
// capacity model the policy scales its measured baseline by. Degrees must
// be the gateway ladder's, least-pruned first. Because the predictor is
// memoizing (engine.Cache), rungs shared with the planning layers cost
// nothing extra.
func BuildProfiles(ctx context.Context, pred engine.Predictor, degrees []prune.Degree, inst *cloud.Instance, batch int) ([]Profile, error) {
	if len(degrees) == 0 {
		return nil, fmt.Errorf("autoscale: no ladder degrees to profile")
	}
	if batch <= 0 {
		batch = 8
	}
	out := make([]Profile, 0, len(degrees))
	var base float64
	for i, d := range degrees {
		sec, err := pred.BatchSeconds(ctx, d, inst, 1, batch)
		if err != nil {
			return nil, fmt.Errorf("autoscale: profiling %s time: %w", d.Label(), err)
		}
		acc, err := pred.Accuracy(ctx, d)
		if err != nil {
			return nil, fmt.Errorf("autoscale: profiling %s accuracy: %w", d.Label(), err)
		}
		if i == 0 {
			base = sec
		}
		speed := 1.0
		if sec > 0 {
			speed = base / sec
		}
		out = append(out, Profile{Degree: d.Label(), Accuracy: acc.Top1, Speed: speed})
	}
	return out, nil
}
