package autoscale

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// jointLadder is a two-tenant fixture: tenant "cheap" spends accuracy at a
// low price (small accuracy drop, big speedup), tenant "precious" pays
// dearly for the same capacity.
func jointTenant(name string, rate, p99, slo float64, variant int, profiles []Profile) TenantSignal {
	return TenantSignal{
		Name:        name,
		ArrivalRate: rate,
		P99:         p99,
		Samples:     100,
		Variant:     variant,
		SLOSeconds:  slo,
		Profiles:    profiles,
	}
}

var (
	cheapLadder = []Profile{
		{Degree: "0", Accuracy: 0.90, Speed: 1},
		{Degree: "0.7", Accuracy: 0.89, Speed: 2.0}, // 0.01 acc buys 2× speed
	}
	preciousLadder = []Profile{
		{Degree: "0", Accuracy: 0.95, Speed: 1},
		{Degree: "0.7", Accuracy: 0.80, Speed: 1.3}, // 0.15 acc buys 1.3× speed
	}
)

func jointPolicy() JointPolicy {
	return JointPolicy{
		Limits: Limits{MinReplicas: 1, MaxReplicas: 4, PricePerReplicaHour: 1, BudgetPerHour: 4},
	}
}

func TestJointDecideBudgetClampFirst(t *testing.T) {
	p := jointPolicy()
	p.Limits.BudgetPerHour = 2 // fleet of 3 costs 3 $/hr: over budget
	s := JointSignal{
		Tenants: []TenantSignal{
			jointTenant("a", 50, 0.5, 0.2, 0, cheapLadder), // violated, irrelevant
		},
		Replicas: 3, CapacityPerReplica: 100, SinceScale: 5,
	}
	got := p.Decide(s)
	if got.Verb != ScaleIn || got.Replicas != 2 {
		t.Fatalf("over-budget fleet should shed a replica first, got %+v", got)
	}
}

func TestJointDecideScaleOutBeforeDegrade(t *testing.T) {
	p := jointPolicy()
	s := JointSignal{
		Tenants: []TenantSignal{
			jointTenant("a", 50, 0.5, 0.2, 0, cheapLadder),
			jointTenant("b", 10, 0.05, 0.2, 0, preciousLadder),
		},
		Replicas: 2, CapacityPerReplica: 40, SinceScale: 5,
	}
	got := p.Decide(s)
	if got.Verb != ScaleOut || got.Replicas != 3 {
		t.Fatalf("affordable replica should precede any degrade, got %+v", got)
	}
	if got.Tenant != "" {
		t.Fatalf("scale-out is fleet-wide, got tenant %q", got.Tenant)
	}

	// Within cooldown the policy waits rather than panic-degrading.
	s.SinceScale = 0
	if got := p.Decide(s); got.Verb != Hold {
		t.Fatalf("cooldown should hold, got %+v", got)
	}
}

func TestJointDecideDegradesLargestSlackFirst(t *testing.T) {
	p := jointPolicy()
	p.Limits.MaxReplicas = 2 // replica axis exhausted
	s := JointSignal{
		Tenants: []TenantSignal{
			// "precious" is the violator, but "cheap" has the larger
			// accuracy-per-dollar slack — it degrades instead.
			jointTenant("precious", 30, 0.5, 0.2, 0, preciousLadder),
			jointTenant("cheap", 30, 0.1, 0.2, 0, cheapLadder),
		},
		Replicas: 2, CapacityPerReplica: 40, SinceScale: 5,
	}
	got := p.Decide(s)
	if got.Verb != Degrade || got.Tenant != "cheap" || got.Variant != 1 {
		t.Fatalf("cheapest accuracy should be spent first, got %+v", got)
	}

	// With cheap already degraded, precious is next in line.
	s.Tenants[1].Variant = 1
	got = p.Decide(s)
	if got.Verb != Degrade || got.Tenant != "precious" || got.Variant != 1 {
		t.Fatalf("second degrade should hit precious, got %+v", got)
	}

	// Both at the bottom: nothing left to spend.
	s.Tenants[0].Variant = 1
	if got := p.Decide(s); got.Verb != Hold {
		t.Fatalf("exhausted ladders should hold, got %+v", got)
	}
}

func TestJointDecidePerTenantBudgetEnforcement(t *testing.T) {
	p := jointPolicy()
	a := jointTenant("a", 10, 0.05, 0.2, 0, cheapLadder)
	a.CostPerHour = 3
	a.MaxCostPerHour = 1 // 3× over its share
	b := jointTenant("b", 10, 0.05, 0.2, 0, preciousLadder)
	b.CostPerHour = 1
	b.MaxCostPerHour = 2
	s := JointSignal{
		Tenants:  []TenantSignal{b, a},
		Replicas: 2, CapacityPerReplica: 100, SinceScale: 5,
	}
	got := p.Decide(s)
	if got.Verb != Degrade || got.Tenant != "a" {
		t.Fatalf("tenant over its $/hr share should degrade alone, got %+v", got)
	}

	// At the ladder bottom budget enforcement has nothing to actuate.
	s.Tenants[1].Variant = 1
	if got := p.Decide(s); got.Verb == Degrade && got.Tenant == "a" {
		t.Fatalf("bottom-rung tenant cannot degrade further, got %+v", got)
	}
}

func TestJointDecideRestoresLargestDeficitFirst(t *testing.T) {
	p := jointPolicy()
	s := JointSignal{
		Tenants: []TenantSignal{
			jointTenant("cheap", 5, 0.05, 0.2, 1, cheapLadder),       // deficit 0.01
			jointTenant("precious", 5, 0.05, 0.2, 1, preciousLadder), // deficit 0.15
		},
		Replicas: 2, CapacityPerReplica: 100,
		Healthy: 2, SinceScale: 5, // streak reaches HoldTicks=3 this tick
	}
	got := p.Decide(s)
	if got.Verb != Restore || got.Tenant != "precious" || got.Variant != 0 {
		t.Fatalf("largest accuracy deficit should restore first, got %+v", got)
	}

	// Fully restored ladders release the replica instead.
	s.Tenants[0].Variant = 0
	s.Tenants[1].Variant = 0
	got = p.Decide(s)
	if got.Verb != ScaleIn || got.Replicas != 1 {
		t.Fatalf("restored fleet with headroom should scale in, got %+v", got)
	}

	// A restore that would not fit is skipped.
	s.Tenants[0].Variant = 1
	s.Tenants[1].Variant = 1
	s.Tenants[0].ArrivalRate = 130
	s.Tenants[1].ArrivalRate = 130
	got = p.Decide(s)
	if got.Verb == Restore {
		t.Fatalf("restore must respect the joint capacity fit, got %+v", got)
	}
}

func TestJointDecideStreakBuilds(t *testing.T) {
	p := jointPolicy()
	s := JointSignal{
		Tenants:  []TenantSignal{jointTenant("a", 5, 0.05, 0.2, 0, cheapLadder)},
		Replicas: 1, CapacityPerReplica: 100, Healthy: 0, SinceScale: 5,
	}
	got := p.Decide(s)
	if got.Verb != Hold || got.Healthy != 1 {
		t.Fatalf("healthy tick should build streak, got %+v", got)
	}
}

func TestJointDegradeOrder(t *testing.T) {
	p := jointPolicy()
	s := JointSignal{
		Tenants: []TenantSignal{
			jointTenant("precious", 30, 0.1, 0.2, 0, preciousLadder),
			jointTenant("cheap", 30, 0.1, 0.2, 0, cheapLadder),
			jointTenant("bottom", 30, 0.1, 0.2, 1, cheapLadder), // no rung left
		},
	}
	got := p.DegradeOrder(s)
	want := []string{"cheap", "precious"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DegradeOrder = %v, want %v", got, want)
	}
}

// randomJointSignal draws an arbitrary but reproducible signal from rng.
func randomJointSignal(rng *rand.Rand) JointSignal {
	ladders := [][]Profile{cheapLadder, preciousLadder, {
		{Degree: "0", Accuracy: 0.9, Speed: 1},
		{Degree: "0.5", Accuracy: 0.86, Speed: 1.5},
		{Degree: "0.9", Accuracy: 0.7, Speed: 3},
	}}
	n := 1 + rng.Intn(4)
	tenants := make([]TenantSignal, n)
	for i := range tenants {
		ladder := ladders[rng.Intn(len(ladders))]
		ts := jointTenant(
			fmt.Sprintf("t%d", i),
			rng.Float64()*120,
			rng.Float64()*0.4,
			0.05+rng.Float64()*0.3,
			rng.Intn(len(ladder)),
			ladder,
		)
		ts.QueueFrac = rng.Float64()
		ts.ErrorRate = rng.Float64() * 0.2
		ts.Samples = rng.Intn(200)
		if rng.Intn(2) == 0 {
			ts.MaxCostPerHour = 0.5 + rng.Float64()*2
			ts.CostPerHour = rng.Float64() * 3
		}
		tenants[i] = ts
	}
	return JointSignal{
		Tenants:            tenants,
		Replicas:           1 + rng.Intn(4),
		CapacityPerReplica: rng.Float64() * 120,
		Healthy:            rng.Intn(5),
		SinceScale:         rng.Intn(5),
	}
}

// TestJointDecideDeterministicReplay drives the joint table with a seeded
// stream of arbitrary signals and replays the identical stream: every
// action must match bit for bit, including with the tenant slice order
// shuffled — Decide treats Tenants as a set.
func TestJointDecideDeterministicReplay(t *testing.T) {
	const seed, rounds = 7, 500
	p := jointPolicy()

	rng := rand.New(rand.NewSource(seed))
	signals := make([]JointSignal, rounds)
	first := make([]JointAction, rounds)
	for i := range signals {
		signals[i] = randomJointSignal(rng)
		first[i] = p.Decide(signals[i])
	}

	// Replay 1: identical signals, identical actions.
	for i, s := range signals {
		if got := p.Decide(s); !reflect.DeepEqual(got, first[i]) {
			t.Fatalf("replay %d diverged:\n got %+v\nwant %+v", i, got, first[i])
		}
	}

	// Replay 2: shuffled tenant order must not change any decision.
	shuffler := rand.New(rand.NewSource(seed + 1))
	for i, s := range signals {
		shuffled := s
		shuffled.Tenants = append([]TenantSignal(nil), s.Tenants...)
		shuffler.Shuffle(len(shuffled.Tenants), func(a, b int) {
			shuffled.Tenants[a], shuffled.Tenants[b] = shuffled.Tenants[b], shuffled.Tenants[a]
		})
		if got := p.Decide(shuffled); !reflect.DeepEqual(got, first[i]) {
			t.Fatalf("shuffle replay %d diverged:\n got %+v\nwant %+v", i, got, first[i])
		}
	}

	// Replay 3: a JSON round-trip of the signal (how spans persist it)
	// must also replay identically.
	for i, s := range signals {
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back JointSignal
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if got := p.Decide(back); !reflect.DeepEqual(got, first[i]) {
			t.Fatalf("json replay %d diverged:\n got %+v\nwant %+v", i, got, first[i])
		}
	}
}

func TestJointPolicyValidate(t *testing.T) {
	p := JointPolicy{Limits: Limits{PricePerReplicaHour: -1}}
	if err := p.Validate(); err == nil {
		t.Fatal("negative price should not validate")
	}
	if err := jointPolicy().Validate(); err != nil {
		t.Fatalf("fixture policy should validate: %v", err)
	}
}
