package dataset

import (
	"testing"

	"ccperf/internal/nn"
)

func cfg() Config {
	return Config{
		Classes: 5, PerClass: 20,
		Shape: nn.Shape{C: 1, H: 12, W: 12},
		Noise: 0.5, Shift: 1, Seed: 7,
	}
}

func TestSyntheticBasics(t *testing.T) {
	d, err := Synthetic(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 100 {
		t.Fatalf("len = %d, want 100", d.Len())
	}
	counts := map[int]int{}
	for i, img := range d.Images {
		if img.Len() != 144 {
			t.Fatalf("image %d has %d elements", i, img.Len())
		}
		counts[d.Labels[i]]++
	}
	for c := 0; c < 5; c++ {
		if counts[c] != 20 {
			t.Fatalf("class %d has %d samples", c, counts[c])
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, _ := Synthetic(cfg())
	b, _ := Synthetic(cfg())
	for i := range a.Images {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.Images[i].Data {
			if a.Images[i].Data[j] != b.Images[i].Data[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
	c2 := cfg()
	c2.Seed = 8
	c, _ := Synthetic(c2)
	same := true
	for j := range a.Images[0].Data {
		if a.Images[0].Data[j] != c.Images[0].Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := cfg()
	bad.Classes = 1
	if _, err := Synthetic(bad); err == nil {
		t.Fatal("expected error for 1 class")
	}
	bad = cfg()
	bad.PerClass = 0
	if _, err := Synthetic(bad); err == nil {
		t.Fatal("expected error for 0 per class")
	}
	bad = cfg()
	bad.Shape = nn.Shape{}
	if _, err := Synthetic(bad); err == nil {
		t.Fatal("expected error for empty shape")
	}
}

func TestSplit(t *testing.T) {
	d, _ := Synthetic(cfg())
	tr, val := d.Split(0.8)
	if tr.Len() != 80 || val.Len() != 20 {
		t.Fatalf("split = %d/%d", tr.Len(), val.Len())
	}
	// Degenerate fractions still leave both sides non-empty.
	tr, val = d.Split(0)
	if tr.Len() < 1 || val.Len() < 1 {
		t.Fatal("split(0) left a side empty")
	}
	tr, val = d.Split(1)
	if tr.Len() < 1 || val.Len() < 1 {
		t.Fatal("split(1) left a side empty")
	}
}

func TestSubset(t *testing.T) {
	d, _ := Synthetic(cfg())
	s := d.Subset(10)
	if s.Len() != 10 {
		t.Fatalf("subset len = %d", s.Len())
	}
	if s2 := d.Subset(10_000); s2.Len() != d.Len() {
		t.Fatal("oversized subset must clamp")
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	d, _ := Synthetic(cfg())
	// Map image pointer → label before shuffle; must match after.
	before := map[interface{}]int{}
	for i, img := range d.Images {
		before[img] = d.Labels[i]
	}
	d.Shuffle(99)
	for i, img := range d.Images {
		if before[img] != d.Labels[i] {
			t.Fatal("shuffle broke image/label pairing")
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Prototypes should differ enough that a nearest-prototype classifier
	// beats chance by a wide margin — the dataset is learnable.
	c := cfg()
	c.Noise = 0.4
	d, _ := Synthetic(c)
	// Build per-class means from the first half, classify the second.
	half := d.Len() / 2
	sums := make([][]float32, d.Classes)
	counts := make([]int, d.Classes)
	for i := 0; i < half; i++ {
		l := d.Labels[i]
		if sums[l] == nil {
			sums[l] = make([]float32, d.Shape.Volume())
		}
		for j, v := range d.Images[i].Data {
			sums[l][j] += v
		}
		counts[l]++
	}
	correct := 0
	for i := half; i < d.Len(); i++ {
		best, bd := -1, float64(0)
		for cl := 0; cl < d.Classes; cl++ {
			if counts[cl] == 0 {
				continue
			}
			var dist float64
			for j, v := range d.Images[i].Data {
				diff := float64(v - sums[cl][j]/float32(counts[cl]))
				dist += diff * diff
			}
			if best < 0 || dist < bd {
				best, bd = cl, dist
			}
		}
		if best == d.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(d.Len()-half)
	if acc < 0.6 {
		t.Fatalf("nearest-prototype accuracy = %v, dataset not separable", acc)
	}
}
