// Package dataset generates deterministic synthetic image-classification
// data. The paper's substrate is ImageNet (1.2 M training images, 50 000
// held-out inference images), which is unavailable offline; this package
// provides the closest synthetic equivalent that exercises the same code
// paths: multi-class images with spatial structure, a train/validation
// split, and enough difficulty that a small CNN neither fails nor
// saturates — so pruning produces a measurable accuracy response.
package dataset

import (
	"fmt"
	"math/rand"

	"ccperf/internal/nn"
	"ccperf/internal/tensor"
)

// Dataset is a labeled set of CHW images.
type Dataset struct {
	Images  []*tensor.Tensor
	Labels  []int
	Classes int
	Shape   nn.Shape
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Images) }

// Config parameterizes synthetic generation.
type Config struct {
	Classes  int
	PerClass int
	Shape    nn.Shape
	// Noise is the additive Gaussian noise std relative to signal (~0.3–0.8
	// gives a learnable-but-imperfect task).
	Noise float64
	// Shift is the max random spatial translation in pixels.
	Shift int
	Seed  int64
}

// Synthetic generates a dataset of Classes×PerClass images: each class is
// a random smooth prototype pattern; samples are noisy, randomly shifted
// copies.
func Synthetic(cfg Config) (*Dataset, error) {
	if cfg.Classes < 2 || cfg.PerClass < 1 {
		return nil, fmt.Errorf("dataset: need ≥2 classes and ≥1 sample per class, got %d×%d", cfg.Classes, cfg.PerClass)
	}
	if cfg.Shape.Volume() <= 0 {
		return nil, fmt.Errorf("dataset: empty shape %v", cfg.Shape)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := make([]*tensor.Tensor, cfg.Classes)
	for c := range protos {
		protos[c] = prototype(cfg.Shape, rng)
	}
	d := &Dataset{Classes: cfg.Classes, Shape: cfg.Shape}
	for c := 0; c < cfg.Classes; c++ {
		for k := 0; k < cfg.PerClass; k++ {
			img := sample(protos[c], cfg, rng)
			d.Images = append(d.Images, img)
			d.Labels = append(d.Labels, c)
		}
	}
	d.Shuffle(cfg.Seed + 1)
	return d, nil
}

// prototype builds a smooth random pattern: a sum of random Gaussian blobs
// per channel, normalized to unit max magnitude.
func prototype(s nn.Shape, rng *rand.Rand) *tensor.Tensor {
	t := tensor.New(s.C, s.H, s.W)
	blobs := 3 + rng.Intn(3)
	for ch := 0; ch < s.C; ch++ {
		for b := 0; b < blobs; b++ {
			cy := rng.Float64() * float64(s.H)
			cx := rng.Float64() * float64(s.W)
			amp := rng.Float64()*2 - 1
			sigma := 1.5 + rng.Float64()*float64(s.H)/4
			for y := 0; y < s.H; y++ {
				for x := 0; x < s.W; x++ {
					dy, dx := float64(y)-cy, float64(x)-cx
					v := amp * gauss2(dy, dx, sigma)
					t.Data[ch*s.H*s.W+y*s.W+x] += float32(v)
				}
			}
		}
	}
	if m := t.MaxAbs(); m > 0 {
		t.Scale(1 / m)
	}
	return t
}

func gauss2(dy, dx, sigma float64) float64 {
	r2 := dy*dy + dx*dx
	return expNeg(r2 / (2 * sigma * sigma))
}

// expNeg approximates e^{-x} for x ≥ 0 with enough accuracy for pattern
// generation while avoiding repeated math.Exp cost on large grids.
func expNeg(x float64) float64 {
	if x > 30 {
		return 0
	}
	// (1 + x/64)^-64 ≈ e^-x, monotone and smooth.
	v := 1 + x/64
	v *= v // ^2
	v *= v // ^4
	v *= v // ^8
	v *= v // ^16
	v *= v // ^32
	v *= v // ^64
	return 1 / v
}

// sample produces one noisy shifted instance of a prototype.
func sample(proto *tensor.Tensor, cfg Config, rng *rand.Rand) *tensor.Tensor {
	s := cfg.Shape
	out := tensor.New(s.C, s.H, s.W)
	dy, dx := 0, 0
	if cfg.Shift > 0 {
		dy = rng.Intn(2*cfg.Shift+1) - cfg.Shift
		dx = rng.Intn(2*cfg.Shift+1) - cfg.Shift
	}
	for ch := 0; ch < s.C; ch++ {
		for y := 0; y < s.H; y++ {
			sy := y + dy
			if sy < 0 || sy >= s.H {
				continue
			}
			for x := 0; x < s.W; x++ {
				sx := x + dx
				if sx < 0 || sx >= s.W {
					continue
				}
				out.Data[ch*s.H*s.W+y*s.W+x] = proto.Data[ch*s.H*s.W+sy*s.W+sx]
			}
		}
	}
	for i := range out.Data {
		out.Data[i] += float32(rng.NormFloat64() * cfg.Noise)
	}
	return out
}

// Shuffle permutes samples deterministically.
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(d.Len(), func(i, j int) {
		d.Images[i], d.Images[j] = d.Images[j], d.Images[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	})
}

// Split divides into train (first frac) and validation (rest).
func (d *Dataset) Split(frac float64) (train, val *Dataset) {
	n := int(frac * float64(d.Len()))
	if n < 1 {
		n = 1
	}
	if n >= d.Len() {
		n = d.Len() - 1
	}
	train = &Dataset{Images: d.Images[:n], Labels: d.Labels[:n], Classes: d.Classes, Shape: d.Shape}
	val = &Dataset{Images: d.Images[n:], Labels: d.Labels[n:], Classes: d.Classes, Shape: d.Shape}
	return train, val
}

// Subset returns the first n samples.
func (d *Dataset) Subset(n int) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	return &Dataset{Images: d.Images[:n], Labels: d.Labels[:n], Classes: d.Classes, Shape: d.Shape}
}
