package cloud

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Region is one cloud region hosting an instance pool. The paper prices
// everything in a single region (Oregon, Table 3); a multi-region fleet
// sees two extra effects the single-instance study could not: regional
// price spread (the same instance type rents at a different rate per
// region) and inter-region network latency (a request served outside its
// origin region pays a round trip). Both are modeled here as pure data so
// the shard router and the regional autoscaler stay deterministic.
type Region struct {
	// Name is the region identifier, e.g. "us-west".
	Name string
	// PriceMultiplier scales the catalog's baseline (us-west/Oregon) $/hr
	// for instances rented in this region.
	PriceMultiplier float64
	// meridian is the region's position on a one-dimensional network
	// model, in milliseconds of one-way latency from us-west. Pairwise
	// round-trip time is 2·|a−b| — crude, but transitive and symmetric,
	// which is all the routing penalty needs.
	meridian float64
}

// RegionCatalog returns the modeled regions, baseline first. Multipliers
// follow the familiar public-cloud spread: US regions cheapest, Europe a
// little over, Asia-Pacific the most expensive.
func RegionCatalog() []Region {
	return []Region{
		{Name: "us-west", PriceMultiplier: 1.00, meridian: 0},
		{Name: "us-east", PriceMultiplier: 1.02, meridian: 35},
		{Name: "eu-central", PriceMultiplier: 1.12, meridian: 75},
		{Name: "ap-south", PriceMultiplier: 1.28, meridian: 120},
	}
}

// RegionByName returns the catalog region with the given name.
func RegionByName(name string) (Region, error) {
	for _, r := range RegionCatalog() {
		if r.Name == name {
			return r, nil
		}
	}
	return Region{}, fmt.Errorf("cloud: unknown region %q (have %s)", name, strings.Join(RegionNames(), ", "))
}

// RegionNames lists the catalog regions' names in catalog order.
func RegionNames() []string {
	cat := RegionCatalog()
	names := make([]string, len(cat))
	for i, r := range cat {
		names[i] = r.Name
	}
	return names
}

// ParseRegions parses a comma-separated region list ("us-west,us-east")
// against the catalog, rejecting duplicates. An empty spec is an error:
// callers that want a default choose it themselves.
func ParseRegions(spec string) ([]Region, error) {
	parts := strings.Split(spec, ",")
	out := make([]Region, 0, len(parts))
	seen := map[string]bool{}
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		r, err := RegionByName(p)
		if err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("cloud: region %q listed twice", r.Name)
		}
		seen[r.Name] = true
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cloud: empty region list %q", spec)
	}
	return out, nil
}

// InterRegionRTT returns the modeled network round-trip time between two
// regions (zero within one region). Unknown names cost the worst-case
// catalog distance, so a typo shows up as latency rather than a free ride.
func InterRegionRTT(a, b string) time.Duration {
	if a == b {
		return 0
	}
	ra, errA := RegionByName(a)
	rb, errB := RegionByName(b)
	if errA != nil || errB != nil {
		return worstRTT()
	}
	d := ra.meridian - rb.meridian
	if d < 0 {
		d = -d
	}
	return time.Duration(2 * d * float64(time.Millisecond))
}

// worstRTT is the largest pairwise round trip in the catalog.
func worstRTT() time.Duration {
	cat := RegionCatalog()
	var lo, hi float64
	for i, r := range cat {
		if i == 0 || r.meridian < lo {
			lo = r.meridian
		}
		if i == 0 || r.meridian > hi {
			hi = r.meridian
		}
	}
	return time.Duration(2 * (hi - lo) * float64(time.Millisecond))
}

// RegionalPrice returns the instance's $/hr in the region: the Table 3
// baseline scaled by the region's multiplier.
func RegionalPrice(inst *Instance, region Region) float64 {
	return inst.PricePerHour * region.PriceMultiplier
}

// CheapestRegion returns the lowest-multiplier region among candidates
// (ties broken by name, so the pick is deterministic). Empty input returns
// the zero Region.
func CheapestRegion(candidates []Region) Region {
	if len(candidates) == 0 {
		return Region{}
	}
	sorted := append([]Region(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].PriceMultiplier != sorted[j].PriceMultiplier {
			return sorted[i].PriceMultiplier < sorted[j].PriceMultiplier
		}
		return sorted[i].Name < sorted[j].Name
	})
	return sorted[0]
}
