package cloud

import (
	"testing"
	"time"
)

func TestRegionCatalogAndLookup(t *testing.T) {
	cat := RegionCatalog()
	if len(cat) < 2 {
		t.Fatalf("catalog too small: %d", len(cat))
	}
	if cat[0].Name != "us-west" || cat[0].PriceMultiplier != 1.0 {
		t.Fatalf("baseline region wrong: %+v", cat[0])
	}
	for _, r := range cat {
		got, err := RegionByName(r.Name)
		if err != nil {
			t.Fatalf("RegionByName(%s): %v", r.Name, err)
		}
		if got != r {
			t.Fatalf("RegionByName(%s) = %+v, want %+v", r.Name, got, r)
		}
		if r.PriceMultiplier < 1 {
			t.Fatalf("region %s undercuts the baseline: %v", r.Name, r.PriceMultiplier)
		}
	}
	if _, err := RegionByName("mars-north"); err == nil {
		t.Fatal("unknown region should error")
	}
}

func TestParseRegions(t *testing.T) {
	rs, err := ParseRegions(" us-west , us-east ")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Name != "us-west" || rs[1].Name != "us-east" {
		t.Fatalf("parsed %+v", rs)
	}
	for _, bad := range []string{"", " , ", "us-west,us-west", "us-west,atlantis"} {
		if _, err := ParseRegions(bad); err == nil {
			t.Errorf("ParseRegions(%q): expected error", bad)
		}
	}
}

func TestInterRegionRTT(t *testing.T) {
	if d := InterRegionRTT("us-west", "us-west"); d != 0 {
		t.Fatalf("intra-region RTT %v, want 0", d)
	}
	ab := InterRegionRTT("us-west", "eu-central")
	ba := InterRegionRTT("eu-central", "us-west")
	if ab != ba {
		t.Fatalf("RTT asymmetric: %v vs %v", ab, ba)
	}
	if ab <= 0 {
		t.Fatalf("cross-region RTT %v, want > 0", ab)
	}
	// The 1-D meridian model is transitive: west→ap ≥ west→eu.
	if far := InterRegionRTT("us-west", "ap-south"); far < ab {
		t.Fatalf("ap-south (%v) nearer than eu-central (%v) from us-west", far, ab)
	}
	// Unknown regions pay the worst-case distance, not zero.
	if d := InterRegionRTT("us-west", "atlantis"); d <= 0 {
		t.Fatalf("unknown region RTT %v, want worst-case > 0", d)
	}
}

func TestRegionalPriceAndCheapest(t *testing.T) {
	inst := mustByName("p2.xlarge")
	us, _ := RegionByName("us-west")
	ap, _ := RegionByName("ap-south")
	if got := RegionalPrice(inst, us); got != inst.PricePerHour {
		t.Fatalf("baseline regional price %v, want %v", got, inst.PricePerHour)
	}
	if got := RegionalPrice(inst, ap); got <= inst.PricePerHour {
		t.Fatalf("ap-south price %v should exceed baseline %v", got, inst.PricePerHour)
	}
	cheap := CheapestRegion([]Region{ap, us})
	if cheap.Name != "us-west" {
		t.Fatalf("cheapest = %s, want us-west", cheap.Name)
	}
	if CheapestRegion(nil) != (Region{}) {
		t.Fatal("empty candidates should return zero Region")
	}
	if d := time.Duration(0); worstRTT() <= d {
		t.Fatalf("worstRTT %v, want > 0", worstRTT())
	}
}
