package cloud

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseConfigRoundTrip(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	b, _ := ByName("p2.8xlarge")
	g, _ := ByName("g3.4xlarge")
	cases := []Config{
		NewConfig(a),
		NewConfig(a, a, b),
		NewConfig(g, b, a, a, g),
	}
	for _, want := range cases {
		got, err := ParseConfig(want.Label())
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", want.Label(), err)
		}
		if got.Label() != want.Label() {
			t.Fatalf("round trip %q → %q", want.Label(), got.Label())
		}
	}
}

func TestParseConfigBareNames(t *testing.T) {
	c, err := ParseConfig("p2.xlarge, g3.4xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d", c.Size())
	}
	c, err = ParseConfig("3xp2.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, bad := range []string{"", "empty", "2xm5.large", "m5.large", "0xp2.xlarge", "+,"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) should fail", bad)
		}
	}
}

// Property: any random multiset over the catalog round-trips.
func TestParseConfigRoundTripProperty(t *testing.T) {
	cat := Catalog()
	f := func(counts [6]uint8) bool {
		var insts []*Instance
		for i, c := range counts {
			for k := 0; k < int(c%4); k++ {
				insts = append(insts, cat[i])
			}
		}
		if len(insts) == 0 {
			return true
		}
		want := NewConfig(insts...)
		got, err := ParseConfig(want.Label())
		return err == nil && got.Label() == want.Label()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestParseConfigMalformed covers the error paths one by one: unknown
// types, empty specs, and malformed count prefixes.
func TestParseConfigMalformed(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring of the error
	}{
		{"", "empty configuration"},
		{"   ", "empty configuration"},
		{"empty", "empty configuration"},
		{"+", "no instances"},
		{"+,+", "no instances"},
		{"nosuch.type", "unknown instance"},
		{"2xnosuch.type", "unknown instance"},
		{"p2.xlarge+bogus", "unknown instance"},
		{"0xp2.xlarge", "non-positive count"},
		{"-3xp2.xlarge", "non-positive count"},
		{"1.5xp2.xlarge", "unknown instance"}, // non-integer prefix is read as a name
		{"xp2.xlarge", "unknown instance"},    // bare leading x is part of the name
	}
	for _, c := range cases {
		_, err := ParseConfig(c.in)
		if err == nil {
			t.Errorf("ParseConfig(%q) should fail", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseConfig(%q) error = %v, want substring %q", c.in, err, c.want)
		}
	}
}
