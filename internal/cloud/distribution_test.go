package cloud

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEvenSplitMatchesEstimateRun(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	b, _ := ByName("p2.8xlarge")
	cfg := NewConfig(a, b)
	perf := fakePerf{batch: 300, batchSecs: 10}
	e1, err := EstimateRun(cfg, 5000, perf)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := EstimateRunWith(cfg, 5000, perf, EvenSplit)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Seconds != e2.Seconds || e1.Cost != e2.Cost {
		t.Fatalf("EvenSplit diverges from Equation 4: %+v vs %+v", e1, e2)
	}
}

func TestCapacityWeightedHomogeneousEqualsEven(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	cfg := NewConfig(a, a, a)
	perf := fakePerf{batch: 300, batchSecs: 10}
	even, _ := EstimateRunWith(cfg, 9000, perf, EvenSplit)
	weighted, _ := EstimateRunWith(cfg, 9000, perf, CapacityWeighted)
	if math.Abs(even.Seconds-weighted.Seconds) > 1e-9 {
		t.Fatalf("homogeneous config: even %v vs weighted %v", even.Seconds, weighted.Seconds)
	}
}

func TestCapacityWeightedBeatsEvenOnMixedConfig(t *testing.T) {
	// p2.8xlarge is 8× faster: even split leaves it idle while p2.xlarge
	// crunches half the workload; weighting fixes that.
	a, _ := ByName("p2.xlarge")
	b, _ := ByName("p2.8xlarge")
	cfg := NewConfig(a, b)
	perf := fakePerf{batch: 300, batchSecs: 10}
	even, err := EstimateRunWith(cfg, 48_000, perf, EvenSplit)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := EstimateRunWith(cfg, 48_000, perf, CapacityWeighted)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Seconds >= even.Seconds {
		t.Fatalf("weighted %v not faster than even %v", weighted.Seconds, even.Seconds)
	}
	// Even: slow instance gets 24000 images → 80 batches × 10 s = 800 s.
	if math.Abs(even.Seconds-800) > 1e-9 {
		t.Fatalf("even = %v, want 800", even.Seconds)
	}
	// Weighted: rates are 30 vs 1920 img/s (8× batch and 8× batch speed),
	// so the slow instance gets 48000·30/1950 ≈ 738 images → 3 batches ×
	// 10 s = 30 s; the fast one finishes 20 batches × 1.25 s = 25 s.
	if math.Abs(weighted.Seconds-30) > 1e-9 {
		t.Fatalf("weighted = %v, want 30", weighted.Seconds)
	}
	waste, err := DistributionWaste(cfg, 48_000, perf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(waste-(800.0/30-1)) > 1e-9 {
		t.Fatalf("waste = %v", waste)
	}
}

func TestDistributionString(t *testing.T) {
	if EvenSplit.String() != "even-split" || CapacityWeighted.String() != "capacity-weighted" {
		t.Fatal("strategy names")
	}
	if Distribution(9).String() == "" {
		t.Fatal("unknown strategy must still render")
	}
}

func TestEstimateRunWithValidation(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	if _, err := EstimateRunWith(Config{}, 10, fakePerf{batch: 1, batchSecs: 1}, CapacityWeighted); err == nil {
		t.Fatal("expected error for empty config")
	}
	if _, err := EstimateRunWith(NewConfig(a), 0, fakePerf{batch: 1, batchSecs: 1}, CapacityWeighted); err == nil {
		t.Fatal("expected error for zero workload")
	}
	if _, err := EstimateRunWith(NewConfig(a), 5, fakePerf{batch: 0, batchSecs: 1}, CapacityWeighted); err == nil {
		t.Fatal("expected error for zero batch")
	}
}

// Property: capacity-weighted never loses to even split by more than batch
// quantization (one batch per instance).
func TestWeightedNeverMuchWorseProperty(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	b, _ := ByName("p2.16xlarge")
	f := func(wRaw uint32) bool {
		w := int64(wRaw%1_000_000) + 1
		cfg := NewConfig(a, b)
		perf := fakePerf{batch: 300, batchSecs: 7}
		even, err := EstimateRunWith(cfg, w, perf, EvenSplit)
		if err != nil {
			return false
		}
		weighted, err := EstimateRunWith(cfg, w, perf, CapacityWeighted)
		if err != nil {
			return false
		}
		// One extra batch on the slowest instance bounds the slack.
		return weighted.Seconds <= even.Seconds+7+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
