// Package cloud models the Amazon EC2 GPU instances of Table 3 and the
// paper's analytical time and cost models (Section 3.4, Equations 1–4):
// per-second pro-rated pay-per-use pricing, workload distribution across a
// resource configuration, and total time/cost estimation from per-batch
// inference measurements.
package cloud

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GPUKind names a GPU device model.
type GPUKind string

// GPU device kinds used by the paper's instance types. V100 backs the
// p3 transfer targets: instances the measurement harness has never
// profiled, reachable only through engine transfer prediction.
const (
	K80  GPUKind = "NVIDIA K80"
	M60  GPUKind = "NVIDIA M60"
	V100 GPUKind = "NVIDIA V100"
)

// Instance is one EC2 instance type row of Table 3.
//
// TFLOPs and MemBWGBs are the per-GPU roofline device features the
// transfer predictor (internal/engine) fits against: single-precision
// peak throughput and memory bandwidth of one GPU of the instance.
type Instance struct {
	Name         string
	VCPUs        int
	GPUs         int
	MemGB        int
	GPUMemGB     int
	PricePerHour float64 // USD
	GPU          GPUKind
	TFLOPs       float64 // per-GPU peak fp32 TFLOP/s
	MemBWGBs     float64 // per-GPU memory bandwidth, GB/s
}

// PricePerSecond returns the pro-rated per-second price (Section 4.1.2:
// the hourly price is pro-rated to the nearest second).
func (i *Instance) PricePerSecond() float64 { return i.PricePerHour / 3600 }

// Per-GPU device features: GK210 (one of the K80's two chips), GM204
// (one of the M60's two), and GV100 — published fp32 peak and memory
// bandwidth per GPU.
const (
	k80TFLOPs, k80MemBWGBs   = 4.37, 240.0
	m60TFLOPs, m60MemBWGBs   = 4.8, 160.0
	v100TFLOPs, v100MemBWGBs = 15.7, 900.0
)

// Catalog returns Table 3: the six Amazon EC2 GPU instance types (Oregon
// region) the paper evaluates.
func Catalog() []*Instance {
	return []*Instance{
		{Name: "p2.xlarge", VCPUs: 4, GPUs: 1, MemGB: 61, GPUMemGB: 12, PricePerHour: 0.9, GPU: K80, TFLOPs: k80TFLOPs, MemBWGBs: k80MemBWGBs},
		{Name: "p2.8xlarge", VCPUs: 32, GPUs: 8, MemGB: 488, GPUMemGB: 96, PricePerHour: 7.2, GPU: K80, TFLOPs: k80TFLOPs, MemBWGBs: k80MemBWGBs},
		{Name: "p2.16xlarge", VCPUs: 64, GPUs: 16, MemGB: 732, GPUMemGB: 192, PricePerHour: 14.4, GPU: K80, TFLOPs: k80TFLOPs, MemBWGBs: k80MemBWGBs},
		{Name: "g3.4xlarge", VCPUs: 16, GPUs: 1, MemGB: 122, GPUMemGB: 8, PricePerHour: 1.14, GPU: M60, TFLOPs: m60TFLOPs, MemBWGBs: m60MemBWGBs},
		{Name: "g3.8xlarge", VCPUs: 32, GPUs: 2, MemGB: 244, GPUMemGB: 16, PricePerHour: 2.28, GPU: M60, TFLOPs: m60TFLOPs, MemBWGBs: m60MemBWGBs},
		{Name: "g3.16xlarge", VCPUs: 64, GPUs: 4, MemGB: 488, GPUMemGB: 32, PricePerHour: 4.56, GPU: M60, TFLOPs: m60TFLOPs, MemBWGBs: m60MemBWGBs},
	}
}

// TransferTargets returns the p3 (V100) family: instance types the paper
// never profiled and the GPU simulator has no device model for. Their
// batch times are reachable only through the transfer predictor, which
// extrapolates from the calibrated catalog's roofline features.
func TransferTargets() []*Instance {
	return []*Instance{
		{Name: "p3.2xlarge", VCPUs: 8, GPUs: 1, MemGB: 61, GPUMemGB: 16, PricePerHour: 3.06, GPU: V100, TFLOPs: v100TFLOPs, MemBWGBs: v100MemBWGBs},
		{Name: "p3.8xlarge", VCPUs: 32, GPUs: 4, MemGB: 244, GPUMemGB: 64, PricePerHour: 12.24, GPU: V100, TFLOPs: v100TFLOPs, MemBWGBs: v100MemBWGBs},
		{Name: "p3.16xlarge", VCPUs: 64, GPUs: 8, MemGB: 488, GPUMemGB: 128, PricePerHour: 24.48, GPU: V100, TFLOPs: v100TFLOPs, MemBWGBs: v100MemBWGBs},
	}
}

// AllTypes returns the calibrated catalog followed by the transfer
// targets — the full instance universe the predict surface plans over.
func AllTypes() []*Instance {
	return append(Catalog(), TransferTargets()...)
}

// ByName returns the catalog instance with the given name.
func ByName(name string) (*Instance, error) {
	return byNameIn(Catalog(), name)
}

// ByNameAll resolves a name against the full instance universe (catalog +
// transfer targets). Commands that can serve uncalibrated instances (the
// predict surface) resolve through this; everything that needs the
// measurement harness keeps using ByName, so an unprofiled type stays an
// explicit error rather than a panic deep in the simulator.
func ByNameAll(name string) (*Instance, error) {
	return byNameIn(AllTypes(), name)
}

func byNameIn(types []*Instance, name string) (*Instance, error) {
	for _, i := range types {
		if i.Name == name {
			return i, nil
		}
	}
	return nil, fmt.Errorf("cloud: unknown instance type %q", name)
}

// P2Types returns the three p2-category types (the Figure 9/10 pool).
func P2Types() []*Instance {
	return []*Instance{
		mustByName("p2.xlarge"), mustByName("p2.8xlarge"), mustByName("p2.16xlarge"),
	}
}

func mustByName(n string) *Instance {
	i, err := ByName(n)
	if err != nil {
		panic(err)
	}
	return i
}

// Config is a cloud resource configuration R: a multiset of instances,
// stored as sorted instance pointers. The paper forms configurations as
// subsets of a finite pool G of available resource instances.
type Config struct {
	Instances []*Instance
}

// NewConfig builds a configuration from instances (order normalized).
func NewConfig(instances ...*Instance) Config {
	c := Config{Instances: append([]*Instance(nil), instances...)}
	sort.Slice(c.Instances, func(a, b int) bool { return c.Instances[a].Name < c.Instances[b].Name })
	return c
}

// Size returns |R|, the number of resource instances.
func (c Config) Size() int { return len(c.Instances) }

// Empty reports whether the configuration has no instances.
func (c Config) Empty() bool { return len(c.Instances) == 0 }

// HourlyPrice returns Σ cᵢ in $/hour.
func (c Config) HourlyPrice() float64 {
	var s float64
	for _, i := range c.Instances {
		s += i.PricePerHour
	}
	return s
}

// Label renders a stable multiset label, e.g. "2×p2.xlarge+1×p2.8xlarge".
func (c Config) Label() string {
	if c.Empty() {
		return "empty"
	}
	counts := map[string]int{}
	var order []string
	for _, i := range c.Instances {
		if counts[i.Name] == 0 {
			order = append(order, i.Name)
		}
		counts[i.Name]++
	}
	sort.Strings(order)
	parts := make([]string, len(order))
	for k, n := range order {
		parts[k] = fmt.Sprintf("%dx%s", counts[n], n)
	}
	return strings.Join(parts, "+")
}

// Perf supplies the per-instance measurements the analytical model consumes:
// t_{b,a}, the time for one batch of b parallel inferences at the current
// application accuracy (degree of pruning), and b_i, the instance's maximum
// parallel inference count. Implementations come from the GPU simulator via
// internal/measure.
type Perf interface {
	// BatchTime returns the seconds one instance of type it needs to run
	// one full batch of b parallel inferences.
	BatchTime(it *Instance, b int) float64
	// MaxBatch returns b_i, the saturating parallel inference count for
	// the instance (all GPUs).
	MaxBatch(it *Instance) int
}

// Estimate is the output of the analytical model for one configuration.
type Estimate struct {
	Config  Config
	Seconds float64 // T, Equation 2
	Cost    float64 // C, Equation 1
}

// Hours returns T in hours.
func (e Estimate) Hours() float64 { return e.Seconds / 3600 }

// EstimateRun applies Equations 1–4 to configuration cfg for W inference
// images: images are distributed evenly (Wᵢ = W/|R|, Equation 4), each
// instance runs nᵢ = ⌈Wᵢ/bᵢ⌉ batches (Equation 3), total time is the
// slowest instance (Equation 2), and cost is T·Σcᵢ with per-second
// pro-rating (Equation 1).
func EstimateRun(cfg Config, w int64, perf Perf) (Estimate, error) {
	if cfg.Empty() {
		return Estimate{}, fmt.Errorf("cloud: cannot estimate empty configuration")
	}
	if w <= 0 {
		return Estimate{}, fmt.Errorf("cloud: non-positive workload %d", w)
	}
	wi := float64(w) / float64(cfg.Size())
	var t float64
	for _, inst := range cfg.Instances {
		b := perf.MaxBatch(inst)
		if b <= 0 {
			return Estimate{}, fmt.Errorf("cloud: instance %s has non-positive batch size", inst.Name)
		}
		n := math.Ceil(wi / float64(b))
		ti := n * perf.BatchTime(inst, b)
		if ti > t {
			t = ti
		}
	}
	billed := math.Ceil(t) // pro-rated to the nearest second
	cost := 0.0
	for _, inst := range cfg.Instances {
		cost += billed * inst.PricePerSecond()
	}
	return Estimate{Config: cfg, Seconds: t, Cost: cost}, nil
}

// Pool is the paper's G: a concrete set of available resource instances.
// BuildPool replicates each type n times (e.g. 3 types × 3 instances for
// Figures 9–10, giving 2^9−1 non-empty subsets).
func BuildPool(types []*Instance, perType int) []*Instance {
	var pool []*Instance
	for _, t := range types {
		for k := 0; k < perType; k++ {
			pool = append(pool, t)
		}
	}
	return pool
}

// Subsets enumerates every non-empty subset of the pool as a Config. This
// is the exponential configuration space (O(2^|G|)) that Algorithm 1's
// greedy heuristic avoids. Identical instances produce duplicate multisets,
// which are kept: the paper counts configurations over subsets of G.
func Subsets(pool []*Instance) []Config {
	n := len(pool)
	if n > 20 {
		panic(fmt.Sprintf("cloud: refusing to enumerate 2^%d subsets", n))
	}
	out := make([]Config, 0, (1<<n)-1)
	for mask := 1; mask < 1<<n; mask++ {
		var insts []*Instance
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				insts = append(insts, pool[b])
			}
		}
		out = append(out, NewConfig(insts...))
	}
	return out
}

// UniqueMultisets deduplicates configurations that are the same multiset of
// instance types.
func UniqueMultisets(cfgs []Config) []Config {
	seen := map[string]bool{}
	var out []Config
	for _, c := range cfgs {
		l := c.Label()
		if !seen[l] {
			seen[l] = true
			out = append(out, c)
		}
	}
	return out
}
