package cloud

import (
	"fmt"
	"math"
)

// Distribution selects how a workload is split across the instances of a
// configuration.
type Distribution int

// Distribution strategies.
const (
	// EvenSplit is the paper's Equation 4: Wᵢ = W/|R| regardless of
	// instance speed. Simple, but a heterogeneous configuration is then
	// dominated by its slowest instance while every instance bills for
	// the full makespan.
	EvenSplit Distribution = iota
	// CapacityWeighted splits W proportionally to each instance's
	// sustained throughput (bᵢ / t_{bᵢ}), equalizing finish times — the
	// natural fix the ablation benchmarks quantify.
	CapacityWeighted
)

// String names the strategy.
func (d Distribution) String() string {
	switch d {
	case EvenSplit:
		return "even-split"
	case CapacityWeighted:
		return "capacity-weighted"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// EstimateRunWith is EstimateRun with an explicit distribution strategy.
// EvenSplit reproduces Equations 1–4 exactly.
func EstimateRunWith(cfg Config, w int64, perf Perf, dist Distribution) (Estimate, error) {
	if dist == EvenSplit {
		return EstimateRun(cfg, w, perf)
	}
	if cfg.Empty() {
		return Estimate{}, fmt.Errorf("cloud: cannot estimate empty configuration")
	}
	if w <= 0 {
		return Estimate{}, fmt.Errorf("cloud: non-positive workload %d", w)
	}
	// Per-instance sustained rate (images/second) at its saturated batch.
	rates := make([]float64, cfg.Size())
	var totalRate float64
	for i, inst := range cfg.Instances {
		b := perf.MaxBatch(inst)
		if b <= 0 {
			return Estimate{}, fmt.Errorf("cloud: instance %s has non-positive batch size", inst.Name)
		}
		bt := perf.BatchTime(inst, b)
		if bt <= 0 {
			return Estimate{}, fmt.Errorf("cloud: instance %s has non-positive batch time", inst.Name)
		}
		rates[i] = float64(b) / bt
		totalRate += rates[i]
	}
	var t float64
	for i, inst := range cfg.Instances {
		wi := float64(w) * rates[i] / totalRate
		b := perf.MaxBatch(inst)
		n := math.Ceil(wi / float64(b))
		ti := n * perf.BatchTime(inst, b)
		if ti > t {
			t = ti
		}
	}
	billed := math.Ceil(t)
	cost := 0.0
	for _, inst := range cfg.Instances {
		cost += billed * inst.PricePerSecond()
	}
	return Estimate{Config: cfg, Seconds: t, Cost: cost}, nil
}

// DistributionWaste quantifies Equation 4's cost: the fractional time
// increase of EvenSplit over CapacityWeighted on a configuration (0 for
// homogeneous configs, up to severalfold for mixed ones).
func DistributionWaste(cfg Config, w int64, perf Perf) (float64, error) {
	even, err := EstimateRunWith(cfg, w, perf, EvenSplit)
	if err != nil {
		return 0, err
	}
	weighted, err := EstimateRunWith(cfg, w, perf, CapacityWeighted)
	if err != nil {
		return 0, err
	}
	if weighted.Seconds <= 0 {
		return 0, fmt.Errorf("cloud: degenerate weighted estimate")
	}
	return even.Seconds/weighted.Seconds - 1, nil
}
