package cloud

import (
	"math"
	"testing"
	"testing/quick"
)

// fakePerf is a trivial Perf: every instance runs batches of fixed size in
// a fixed time scaled by GPU count.
type fakePerf struct {
	batch     int
	batchSecs float64
}

func (f fakePerf) BatchTime(it *Instance, b int) float64 { return f.batchSecs / float64(it.GPUs) }
func (f fakePerf) MaxBatch(it *Instance) int             { return f.batch * it.GPUs }

func TestCatalogMatchesTable3(t *testing.T) {
	want := []struct {
		name  string
		vcpus int
		gpus  int
		mem   int
		price float64
		gpu   GPUKind
	}{
		{"p2.xlarge", 4, 1, 61, 0.9, K80},
		{"p2.8xlarge", 32, 8, 488, 7.2, K80},
		{"p2.16xlarge", 64, 16, 732, 14.4, K80},
		{"g3.4xlarge", 16, 1, 122, 1.14, M60},
		{"g3.8xlarge", 32, 2, 244, 2.28, M60},
		{"g3.16xlarge", 64, 4, 488, 4.56, M60},
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d types, want %d", len(cat), len(want))
	}
	for i, w := range want {
		g := cat[i]
		if g.Name != w.name || g.VCPUs != w.vcpus || g.GPUs != w.gpus || g.MemGB != w.mem || g.PricePerHour != w.price || g.GPU != w.gpu {
			t.Errorf("row %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestPricesProportionalToGPUs(t *testing.T) {
	// Table 3 prices scale exactly with GPU count within each family.
	base := map[GPUKind]float64{}
	for _, i := range Catalog() {
		perGPU := i.PricePerHour / float64(i.GPUs)
		if b, ok := base[i.GPU]; ok {
			if math.Abs(perGPU-b) > 1e-9 {
				t.Errorf("%s: per-GPU price %v, family base %v", i.Name, perGPU, b)
			}
		} else {
			base[i.GPU] = perGPU
		}
	}
}

func TestByName(t *testing.T) {
	i, err := ByName("g3.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if i.GPUs != 2 {
		t.Fatalf("g3.8xlarge GPUs = %d", i.GPUs)
	}
	if _, err := ByName("m5.large"); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestPricePerSecond(t *testing.T) {
	i, _ := ByName("p2.xlarge")
	if got := i.PricePerSecond(); math.Abs(got-0.9/3600) > 1e-12 {
		t.Fatalf("PricePerSecond = %v", got)
	}
}

func TestConfigLabelAndPrice(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	b, _ := ByName("p2.8xlarge")
	c := NewConfig(b, a, a)
	if got := c.Label(); got != "1xp2.8xlarge+2xp2.xlarge" {
		t.Fatalf("Label = %q", got)
	}
	if got := c.HourlyPrice(); math.Abs(got-9.0) > 1e-9 {
		t.Fatalf("HourlyPrice = %v, want 9.0", got)
	}
	if c.Size() != 3 || c.Empty() {
		t.Fatal("Size/Empty wrong")
	}
	if (Config{}).Label() != "empty" {
		t.Fatal("empty label")
	}
}

func TestEstimateRunEquations(t *testing.T) {
	// Two p2.xlarge, W=1200, batch 300, batchTime 10s:
	// Wi = 600, n = 2 batches, T = 20s, C = 20s × 2 × $0.9/h.
	a, _ := ByName("p2.xlarge")
	cfg := NewConfig(a, a)
	est, err := EstimateRun(cfg, 1200, fakePerf{batch: 300, batchSecs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Seconds-20) > 1e-9 {
		t.Fatalf("T = %v, want 20", est.Seconds)
	}
	wantCost := 20.0 / 3600 * 0.9 * 2
	if math.Abs(est.Cost-wantCost) > 1e-9 {
		t.Fatalf("C = %v, want %v", est.Cost, wantCost)
	}
	if math.Abs(est.Hours()-20.0/3600) > 1e-12 {
		t.Fatalf("Hours = %v", est.Hours())
	}
}

func TestEstimateRunMaxAcrossInstances(t *testing.T) {
	// Mixed config: the slower (fewer-GPU) instance dominates T (Eq. 2),
	// but both are billed for T (Eq. 1).
	a, _ := ByName("p2.xlarge")  // 1 GPU → batchTime 10
	b, _ := ByName("p2.8xlarge") // 8 GPUs → batchTime 1.25, batch 2400
	cfg := NewConfig(a, b)
	// W = 1200 → Wi = 600 each. a: 2 batches × 10 = 20. b: 1 batch × 1.25.
	est, err := EstimateRun(cfg, 1200, fakePerf{batch: 300, batchSecs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Seconds-20) > 1e-9 {
		t.Fatalf("T = %v, want 20 (max)", est.Seconds)
	}
	wantCost := 20.0 / 3600 * (0.9 + 7.2)
	if math.Abs(est.Cost-wantCost) > 1e-9 {
		t.Fatalf("C = %v, want %v", est.Cost, wantCost)
	}
}

func TestEstimateRunProRatesToSecond(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	est, err := EstimateRun(NewConfig(a), 1, fakePerf{batch: 300, batchSecs: 10.4})
	if err != nil {
		t.Fatal(err)
	}
	// Billed seconds = ceil(10.4) = 11.
	want := 11.0 * 0.9 / 3600
	if math.Abs(est.Cost-want) > 1e-12 {
		t.Fatalf("Cost = %v, want %v", est.Cost, want)
	}
}

func TestEstimateRunErrors(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	if _, err := EstimateRun(Config{}, 100, fakePerf{batch: 1, batchSecs: 1}); err == nil {
		t.Fatal("expected error for empty config")
	}
	if _, err := EstimateRun(NewConfig(a), 0, fakePerf{batch: 1, batchSecs: 1}); err == nil {
		t.Fatal("expected error for zero workload")
	}
	if _, err := EstimateRun(NewConfig(a), 10, fakePerf{batch: 0, batchSecs: 1}); err == nil {
		t.Fatal("expected error for zero batch size")
	}
}

func TestBuildPoolAndSubsets(t *testing.T) {
	pool := BuildPool(P2Types(), 3)
	if len(pool) != 9 {
		t.Fatalf("pool size = %d, want 9", len(pool))
	}
	cfgs := Subsets(pool)
	if len(cfgs) != (1<<9)-1 {
		t.Fatalf("subsets = %d, want 511", len(cfgs))
	}
	uniq := UniqueMultisets(cfgs)
	// Multisets: counts 0..3 of each of 3 types, minus empty = 4³−1 = 63.
	if len(uniq) != 63 {
		t.Fatalf("unique multisets = %d, want 63", len(uniq))
	}
}

func TestSubsetsRefusesHugePool(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for pool > 20")
		}
	}()
	Subsets(BuildPool(P2Types(), 7))
}

// Property: for a single-type config, doubling the instance count never
// increases estimated time, and cost ordering follows price×time.
func TestEstimateMonotoneProperty(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	f := func(wSeed uint16) bool {
		w := int64(wSeed)%100_000 + 1
		perf := fakePerf{batch: 300, batchSecs: 7}
		one, err := EstimateRun(NewConfig(a), w, perf)
		if err != nil {
			return false
		}
		two, err := EstimateRun(NewConfig(a, a), w, perf)
		if err != nil {
			return false
		}
		return two.Seconds <= one.Seconds+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSubsetsExactCount pins the 2^n−1 invariant the exploration layer's
// complexity claims rest on, across pool sizes.
func TestSubsetsExactCount(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	b, _ := ByName("p2.8xlarge")
	for n := 1; n <= 6; n++ {
		pool := make([]*Instance, n)
		for i := range pool {
			if i%2 == 0 {
				pool[i] = a
			} else {
				pool[i] = b
			}
		}
		cfgs := Subsets(pool)
		if want := (1 << n) - 1; len(cfgs) != want {
			t.Fatalf("n=%d: subsets = %d, want %d", n, len(cfgs), want)
		}
		for _, c := range cfgs {
			if c.Empty() {
				t.Fatalf("n=%d: empty subset emitted", n)
			}
		}
	}
}

// TestUniqueMultisetsIdempotent pins dedup idempotence and first-seen
// ordering: a second pass changes nothing, and surviving labels keep the
// order of their first appearance.
func TestUniqueMultisetsIdempotent(t *testing.T) {
	pool := BuildPool(P2Types(), 2)
	cfgs := Subsets(pool)
	once := UniqueMultisets(cfgs)
	twice := UniqueMultisets(once)
	if len(once) != len(twice) {
		t.Fatalf("idempotence broken: %d then %d", len(once), len(twice))
	}
	for i := range once {
		if once[i].Label() != twice[i].Label() {
			t.Fatalf("order changed at %d: %s vs %s", i, once[i].Label(), twice[i].Label())
		}
	}
	// First-seen order: each label's first index in cfgs must be increasing.
	last := -1
	for _, u := range once {
		l := u.Label()
		first := -1
		for i, c := range cfgs {
			if c.Label() == l {
				first = i
				break
			}
		}
		if first <= last {
			t.Fatalf("label %s out of first-seen order (index %d after %d)", l, first, last)
		}
		last = first
	}
}

// TestConfigLabelOrderInvariant pins that Label is a canonical multiset
// rendering: any permutation of the same instances produces the identical,
// name-sorted label.
func TestConfigLabelOrderInvariant(t *testing.T) {
	a, _ := ByName("p2.xlarge")
	b, _ := ByName("p2.8xlarge")
	c, _ := ByName("p2.16xlarge")
	want := NewConfig(a, a, b, c).Label()
	perms := [][]*Instance{
		{a, a, b, c}, {c, b, a, a}, {a, b, a, c}, {b, a, c, a}, {c, a, b, a},
	}
	for _, p := range perms {
		if got := NewConfig(p...).Label(); got != want {
			t.Fatalf("permutation label = %q, want %q", got, want)
		}
	}
	// Sorted type names: p2.16xlarge < p2.8xlarge < p2.xlarge lexically.
	if want != "1xp2.16xlarge+1xp2.8xlarge+2xp2.xlarge" {
		t.Fatalf("canonical label = %q", want)
	}
}

func TestDeviceFeaturesPopulated(t *testing.T) {
	for _, i := range AllTypes() {
		if i.TFLOPs <= 0 || i.MemBWGBs <= 0 {
			t.Fatalf("%s missing roofline features: TFLOPs=%v MemBWGBs=%v", i.Name, i.TFLOPs, i.MemBWGBs)
		}
	}
	// Same GPU kind ⇒ same per-GPU features, whatever the instance size.
	byKind := map[GPUKind][2]float64{}
	for _, i := range AllTypes() {
		f := [2]float64{i.TFLOPs, i.MemBWGBs}
		if prev, ok := byKind[i.GPU]; ok && prev != f {
			t.Fatalf("%s features %v differ from earlier %v for %s", i.Name, f, prev, i.GPU)
		}
		byKind[i.GPU] = f
	}
	if len(byKind) != 3 {
		t.Fatalf("expected 3 GPU kinds across AllTypes, got %d", len(byKind))
	}
}

func TestTransferTargetsAreUncalibrated(t *testing.T) {
	for _, i := range TransferTargets() {
		if i.GPU != V100 {
			t.Fatalf("%s: transfer targets should be V100, got %s", i.Name, i.GPU)
		}
		if _, err := ByName(i.Name); err == nil {
			t.Fatalf("%s must not resolve through the calibrated catalog", i.Name)
		}
		got, err := ByNameAll(i.Name)
		if err != nil || got.Name != i.Name {
			t.Fatalf("ByNameAll(%s) = %v, %v", i.Name, got, err)
		}
	}
}

func TestParseConfigAllAcceptsTargets(t *testing.T) {
	cfg, err := ParseConfigAll("2xp3.2xlarge+1xp2.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Size() != 3 {
		t.Fatalf("size = %d, want 3", cfg.Size())
	}
	if _, err := ParseConfig("1xp3.2xlarge"); err == nil {
		t.Fatal("calibrated-only ParseConfig must reject p3 types")
	}
}
