package cloud

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseConfig parses a configuration label of the form produced by
// Config.Label — "2xp2.xlarge+1xp2.8xlarge" — or a bare comma/plus list of
// type names ("p2.xlarge+g3.4xlarge"). It is the inverse of Label up to
// instance ordering.
func ParseConfig(s string) (Config, error) {
	return parseConfig(s, ByName)
}

// ParseConfigAll is ParseConfig over the full instance universe: names
// from the calibrated catalog and the uncalibrated transfer targets both
// resolve. The predict surface parses fleets through this.
func ParseConfigAll(s string) (Config, error) {
	return parseConfig(s, ByNameAll)
}

func parseConfig(s string, byName func(string) (*Instance, error)) (Config, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "empty" {
		return Config{}, fmt.Errorf("cloud: empty configuration %q", s)
	}
	var insts []*Instance
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == '+' || r == ',' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		count := 1
		name := part
		// "NxTYPE" prefix — careful: instance names also contain 'x'
		// ("p2.xlarge"), so only split when the prefix is numeric.
		if i := strings.IndexByte(part, 'x'); i > 0 {
			if n, err := strconv.Atoi(part[:i]); err == nil {
				count, name = n, part[i+1:]
			}
		}
		if count < 1 {
			return Config{}, fmt.Errorf("cloud: non-positive count in %q", part)
		}
		inst, err := byName(name)
		if err != nil {
			return Config{}, err
		}
		for k := 0; k < count; k++ {
			insts = append(insts, inst)
		}
	}
	if len(insts) == 0 {
		return Config{}, fmt.Errorf("cloud: no instances in %q", s)
	}
	return NewConfig(insts...), nil
}
