package explore

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"

	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/measure"
	"ccperf/internal/models"
	"ccperf/internal/prune"
	"ccperf/internal/telemetry"
)

func harness(t *testing.T) *measure.Harness {
	t.Helper()
	h, err := measure.NewHarness(models.CaffenetName)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func smallPool(t *testing.T) []*cloud.Instance {
	t.Helper()
	a, err := cloud.ByName("p2.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cloud.ByName("p2.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return []*cloud.Instance{a, a, b, b}
}

func someDegrees() []prune.Degree {
	return []prune.Degree{
		{},
		prune.NewDegree("conv2", 0.5),
		prune.NewDegree("conv1", 0.3, "conv2", 0.5),
		prune.NewDegree("conv1", 0.7, "conv2", 0.8),
	}
}

func TestEnumerateCount(t *testing.T) {
	h := harness(t)
	sp := Space{Pred: h, Degrees: someDegrees(), Pool: smallPool(t), W: 100_000}
	cands, err := sp.Enumerate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := len(someDegrees()) * ((1 << 4) - 1)
	if len(cands) != want {
		t.Fatalf("candidates = %d, want %d", len(cands), want)
	}
	for _, c := range cands {
		if c.Seconds <= 0 || c.Cost <= 0 || !c.Acc.Valid() {
			t.Fatalf("bad candidate %+v", c)
		}
	}
}

func TestEnumerateCachedMatchesUncached(t *testing.T) {
	h := harness(t)
	ctx := context.Background()
	plain := Space{Pred: h, Degrees: someDegrees(), Pool: smallPool(t), W: 100_000}
	want, err := plain.Enumerate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cached := plain
	cached.Pred = engine.NewCache(h)
	got, err := cached.Enumerate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Seconds != want[i].Seconds || got[i].Cost != want[i].Cost ||
			got[i].Acc != want[i].Acc || got[i].Config.Label() != want[i].Config.Label() {
			t.Fatalf("cached enumeration diverges at %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestEnumerateCanceled(t *testing.T) {
	h := harness(t)
	sp := Space{Pred: h, Degrees: someDegrees(), Pool: smallPool(t), W: 100_000}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sp.Enumerate(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Enumerate error = %v, want context.Canceled", err)
	}
}

func TestFeasibleFilter(t *testing.T) {
	cands := []Candidate{
		{Seconds: 100, Cost: 5},
		{Seconds: 200, Cost: 1},
		{Seconds: 50, Cost: 10},
	}
	f := Feasible(cands, 150, 6)
	if len(f) != 1 || f[0].Seconds != 100 {
		t.Fatalf("feasible = %+v", f)
	}
	if got := Feasible(cands, math.Inf(1), math.Inf(1)); len(got) != 3 {
		t.Fatalf("unbounded feasible = %d", len(got))
	}
}

func TestFrontierPicksNonDominated(t *testing.T) {
	h := harness(t)
	sp := Space{Pred: h, Degrees: someDegrees(), Pool: smallPool(t), W: 100_000}
	cands, err := sp.Enumerate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fr := Frontier(cands, ByTime, Top5)
	if len(fr) == 0 {
		t.Fatal("empty frontier")
	}
	// Frontier must be strictly increasing in accuracy and time.
	for i := 1; i < len(fr); i++ {
		if fr[i].Acc.Top5 <= fr[i-1].Acc.Top5 || fr[i].Seconds <= fr[i-1].Seconds {
			t.Fatalf("frontier not strictly increasing at %d", i)
		}
	}
	// No candidate dominates a frontier point.
	for _, p := range fr {
		for _, c := range cands {
			if c.Acc.Top5 >= p.Acc.Top5 && c.Seconds < p.Seconds {
				t.Fatalf("candidate %+v dominates frontier point %+v", c, p)
			}
		}
	}
	// The highest-accuracy frontier point reaches baseline accuracy —
	// via the unpruned degree or a sweet-spot degree (conv2@50 matches
	// unpruned accuracy at lower time, so it wins the frontier slot).
	base, _ := h.Eval.Evaluate(prune.Degree{})
	if top := fr[len(fr)-1]; top.Acc.Top5 != base.Top5 {
		t.Fatalf("top frontier accuracy = %v, want baseline %v", top.Acc.Top5, base.Top5)
	}
}

func TestCostFrontier(t *testing.T) {
	h := harness(t)
	sp := Space{Pred: h, Degrees: someDegrees(), Pool: smallPool(t), W: 100_000}
	cands, _ := sp.Enumerate(context.Background())
	fr := Frontier(cands, ByCost, Top1)
	for i := 1; i < len(fr); i++ {
		if fr[i].Cost <= fr[i-1].Cost {
			t.Fatalf("cost frontier not increasing at %d", i)
		}
	}
}

func TestAllocateMeetsConstraints(t *testing.T) {
	h := harness(t)
	in := Input{
		Degrees:  someDegrees(),
		Pool:     smallPool(t),
		W:        100_000,
		Deadline: 2 * 3600,
		Budget:   5,
	}
	res, err := Allocate(context.Background(), h, in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("expected a feasible allocation")
	}
	if res.Seconds > in.Deadline || res.Cost > in.Budget {
		t.Fatalf("allocation violates constraints: %+v", res)
	}
	if res.Config.Empty() {
		t.Fatal("empty config returned")
	}
	if res.Ops <= 0 {
		t.Fatal("ops not instrumented")
	}
}

func TestAllocatePrefersAccuracy(t *testing.T) {
	// With loose constraints, Algorithm 1 must pick the unpruned
	// (highest-accuracy) degree.
	h := harness(t)
	in := Input{
		Degrees:  someDegrees(),
		Pool:     smallPool(t),
		W:        100_000,
		Deadline: math.Inf(1),
		Budget:   math.Inf(1),
	}
	res, err := Allocate(context.Background(), h, in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("expected allocation")
	}
	// conv2@50 sits inside the sweet-spot: same accuracy as unpruned but
	// lower TAR, so Algorithm 1's tie-break (line 1: same accuracy →
	// ascending TAR) must prefer it over the unpruned degree.
	base, _ := h.Eval.Evaluate(prune.Degree{})
	if res.Acc.Top1 != base.Top1 {
		t.Fatalf("allocation accuracy %v, want baseline %v", res.Acc.Top1, base.Top1)
	}
	if res.Degree.Label() != "conv2@50" {
		t.Fatalf("allocation degree = %s, want conv2@50 (lowest TAR at max accuracy)", res.Degree.Label())
	}
}

func TestAllocateInfeasible(t *testing.T) {
	h := harness(t)
	in := Input{
		Degrees:  someDegrees(),
		Pool:     smallPool(t),
		W:        10_000_000,
		Deadline: 60, // one minute: impossible
		Budget:   0.01,
	}
	res, err := Allocate(context.Background(), h, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("expected infeasible, got %+v", res)
	}
}

func TestAllocateEmptyPool(t *testing.T) {
	h := harness(t)
	ctx := context.Background()
	if _, err := Allocate(ctx, h, Input{Degrees: someDegrees()}); err == nil {
		t.Fatal("expected error for empty pool")
	}
	if _, err := Exhaustive(ctx, h, Input{Degrees: someDegrees()}); err == nil {
		t.Fatal("expected error for empty pool")
	}
}

func TestAllocateCanceled(t *testing.T) {
	h := harness(t)
	in := Input{
		Degrees:  someDegrees(),
		Pool:     smallPool(t),
		W:        100_000,
		Deadline: math.Inf(1),
		Budget:   math.Inf(1),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Allocate(ctx, h, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("Allocate error = %v, want context.Canceled", err)
	}
	if _, err := Exhaustive(ctx, h, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("Exhaustive error = %v, want context.Canceled", err)
	}
}

func TestGreedyVsExhaustive(t *testing.T) {
	h := harness(t)
	ctx := context.Background()
	in := Input{
		Degrees:  someDegrees(),
		Pool:     smallPool(t),
		W:        1_000_000,
		Deadline: 1.5 * 3600,
		Budget:   6,
	}
	greedy, err := Allocate(ctx, h, in)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exhaustive(ctx, h, in)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Found != true {
		t.Fatal("exhaustive found nothing; pick looser constraints")
	}
	if greedy.Found {
		// The heuristic never beats the optimum on accuracy, and both
		// respect the constraints.
		if greedy.Acc.Top1 > exact.Acc.Top1+1e-9 {
			t.Fatalf("greedy accuracy %v exceeds exhaustive %v", greedy.Acc.Top1, exact.Acc.Top1)
		}
		if greedy.Seconds > in.Deadline || greedy.Cost > in.Budget {
			t.Fatalf("greedy violates constraints: %+v", greedy)
		}
	}
	// The paper's complexity claim: greedy does fewer model evaluations
	// than the exponential enumeration (the gap grows exponentially with
	// |G|; at |G|=4 it is modest — TestOpsFormulas covers the asymptotics).
	if greedy.Ops >= exact.Ops {
		t.Fatalf("greedy ops %d not < exhaustive ops %d", greedy.Ops, exact.Ops)
	}
}

func TestOpsFormulas(t *testing.T) {
	if got := ExhaustiveOps(4, 9); got != 4*511 {
		t.Fatalf("ExhaustiveOps = %d", got)
	}
	if got := GreedyOpsBound(4, 9); got != 4*19 {
		t.Fatalf("GreedyOpsBound = %d", got)
	}
	if ExhaustiveOps(1, 63) != math.MaxInt {
		t.Fatal("overflow guard missing")
	}
	// The polynomial/exponential gap grows with |G|.
	if !(float64(GreedyOpsBound(1, 20))/float64(ExhaustiveOps(1, 20)) <
		float64(GreedyOpsBound(1, 10))/float64(ExhaustiveOps(1, 10))) {
		t.Fatal("gap must grow with pool size")
	}
}

func TestMetricPick(t *testing.T) {
	h := harness(t)
	a, err := h.Eval.Evaluate(prune.Degree{})
	if err != nil {
		t.Fatal(err)
	}
	if Top1.Pick(a) != a.Top1 || Top5.Pick(a) != a.Top5 {
		t.Fatal("metric pick wrong")
	}
}

func TestCandidateHours(t *testing.T) {
	c := Candidate{Seconds: 7200}
	if c.Hours() != 2 {
		t.Fatalf("Hours = %v", c.Hours())
	}
}

func TestEnumerateDeterministicUnderConcurrency(t *testing.T) {
	h := harness(t)
	ctx := context.Background()
	sp := Space{Pred: h, Degrees: someDegrees(), Pool: smallPool(t), W: 200_000}
	a, err := sp.Enumerate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Enumerate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Seconds != b[i].Seconds || a[i].Cost != b[i].Cost ||
			a[i].Degree.Label() != b[i].Degree.Label() || a[i].Config.Label() != b[i].Config.Label() {
			t.Fatalf("enumeration not deterministic at %d", i)
		}
	}
}

// TestWorkersConfigurable pins the worker-pool contract: identical output
// at every pool size, default runtime.NumCPU() capped by |P|, floor of 1.
func TestWorkersConfigurable(t *testing.T) {
	h := harness(t)
	ctx := context.Background()
	base := Space{Pred: h, Degrees: someDegrees(), Pool: smallPool(t), W: 100_000}
	want, err := base.Enumerate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 16} {
		sp := base
		sp.Workers = workers
		got, err := sp.Enumerate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Seconds != want[i].Seconds || got[i].Cost != want[i].Cost ||
				got[i].Degree.Label() != want[i].Degree.Label() || got[i].Config.Label() != want[i].Config.Label() {
				t.Fatalf("workers=%d: candidate %d differs", workers, i)
			}
		}
	}
	if w := base.workers(); w != min(runtime.NumCPU(), len(base.Degrees)) {
		t.Fatalf("default workers = %d", w)
	}
	one := Space{Pred: h, Degrees: someDegrees(), Workers: -5}
	if one.workers() != 1 {
		t.Fatalf("negative workers must floor at 1, got %d", one.workers())
	}
}

// TestEnumerateTelemetry checks the instrumentation contract the CLI
// artifacts rely on: one explore.worker span per pool worker and candidate
// counters matching the enumeration size.
func TestEnumerateTelemetry(t *testing.T) {
	telemetry.Reset()
	defer telemetry.Reset()
	h := harness(t)
	sp := Space{Pred: h, Degrees: someDegrees(), Pool: smallPool(t), W: 100_000, Workers: 2}
	cands, err := sp.Enumerate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := telemetry.Default.Counter("explore.candidates_enumerated").Value(); got != int64(len(cands)) {
		t.Fatalf("candidates counter = %d, want %d", got, len(cands))
	}
	if got := telemetry.Default.Counter("explore.degrees_evaluated").Value(); got != int64(len(sp.Degrees)) {
		t.Fatalf("degrees counter = %d, want %d", got, len(sp.Degrees))
	}
	if got := telemetry.Default.Gauge("explore.workers").Value(); got != 2 {
		t.Fatalf("workers gauge = %v, want 2", got)
	}
	if h := telemetry.Default.Histogram("explore.degree_seconds", nil); h.Count() != int64(len(sp.Degrees)) {
		t.Fatalf("degree_seconds count = %d, want %d", h.Count(), len(sp.Degrees))
	}
	var workerSpans, enumSpans int
	for _, s := range telemetry.DefaultTracer.Spans() {
		switch s.Name {
		case "explore.worker":
			workerSpans++
		case "explore.enumerate":
			enumSpans++
		}
	}
	if workerSpans != 2 || enumSpans != 1 {
		t.Fatalf("spans: worker=%d enumerate=%d, want 2/1", workerSpans, enumSpans)
	}

	// Feasible records how the space shrank.
	feas := Feasible(cands, math.Inf(1), math.Inf(1))
	if got := telemetry.Default.Counter("explore.feasible").Value(); got != int64(len(feas)) {
		t.Fatalf("feasible counter = %d, want %d", got, len(feas))
	}
	Feasible(cands, 0, math.Inf(1)) // everything misses the zero deadline
	if got := telemetry.Default.Counter("explore.pruned_deadline").Value(); got != int64(len(cands)) {
		t.Fatalf("pruned_deadline = %d, want %d", got, len(cands))
	}
}

func TestJointFrontier(t *testing.T) {
	h := harness(t)
	sp := Space{Pred: h, Degrees: someDegrees(), Pool: smallPool(t), W: 200_000}
	cands, err := sp.Enumerate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	joint := JointFrontier(cands, Top1)
	if len(joint) == 0 {
		t.Fatal("empty joint frontier")
	}
	// No candidate dominates a joint-frontier member in all three axes.
	for _, p := range joint {
		for _, c := range cands {
			if c.Acc.Top1 >= p.Acc.Top1 && c.Seconds <= p.Seconds && c.Cost <= p.Cost &&
				(c.Acc.Top1 > p.Acc.Top1 || c.Seconds < p.Seconds || c.Cost < p.Cost) {
				t.Fatalf("candidate dominates joint-frontier member %+v", p)
			}
		}
	}
	// The joint frontier contains at least the union membership of both
	// 2-D frontiers' extreme points.
	tf := Frontier(cands, ByTime, Top1)
	cf := Frontier(cands, ByCost, Top1)
	if len(joint) < len(tf) || len(joint) < len(cf) {
		t.Fatalf("joint frontier (%d) smaller than a 2-D frontier (%d/%d)", len(joint), len(tf), len(cf))
	}
}
