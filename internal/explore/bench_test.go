package explore

import (
	"context"
	"testing"

	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/measure"
	"ccperf/internal/models"
	"ccperf/internal/prune"
)

// benchSpace builds an enumeration over a pool spanning three instance
// types (two of each), so the 2^6−1 = 63 subsets collapse onto only three
// distinct per-instance-type evaluations per degree when cached.
func benchSpace(b *testing.B, pred engine.Predictor) Space {
	b.Helper()
	pool := make([]*cloud.Instance, 0, 6)
	for _, name := range []string{"p2.xlarge", "p2.8xlarge", "p2.16xlarge"} {
		inst, err := cloud.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		pool = append(pool, inst, inst)
	}
	degrees := []prune.Degree{
		{},
		prune.NewDegree("conv1", 0.3),
		prune.NewDegree("conv2", 0.5),
		prune.NewDegree("conv1", 0.5, "conv2", 0.5),
		prune.NewDegree("conv1", 0.7, "conv2", 0.8),
	}
	return Space{Pred: pred, Degrees: degrees, Pool: pool, W: 1_000_000}
}

func benchHarness(b *testing.B) *measure.Harness {
	b.Helper()
	h, err := measure.NewHarness(models.CaffenetName)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkEnumerate compares the joint-space enumeration with and without
// the engine cache. The cached variant shares one cache across iterations —
// the steady state of a CLI invocation that enumerates, filters, then
// enumerates again for another frontier.
func BenchmarkEnumerate(b *testing.B) {
	b.Run("uncached", func(b *testing.B) {
		sp := benchSpace(b, benchHarness(b))
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sp.Enumerate(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		sp := benchSpace(b, engine.NewCache(benchHarness(b)))
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sp.Enumerate(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
