package explore

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ccperf/internal/prune"
)

func someTenants() []TenantDemand {
	return []TenantDemand{
		{Name: "a", W: 100_000, Deadline: 4 * 3600, Degrees: []prune.Degree{
			{},
			prune.NewDegree("conv1", 0.3, "conv2", 0.5),
		}},
		{Name: "b", W: 50_000, Degrees: []prune.Degree{
			{},
			prune.NewDegree("conv2", 0.5),
			prune.NewDegree("conv1", 0.7, "conv2", 0.8),
		}},
	}
}

func TestEnumeratePackingsCountAndShape(t *testing.T) {
	h := harness(t)
	pool := smallPool(t)[:2]
	tenants := someTenants()
	packs, err := EnumeratePackings(context.Background(), h, tenants, pool, Top1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// (2^2 - 1) subsets × (2 rungs × 3 rungs) combinations.
	want := 3 * 2 * 3
	if len(packs) != want {
		t.Fatalf("packings = %d, want %d", len(packs), want)
	}
	for _, p := range packs {
		if len(p.Assignments) != 2 {
			t.Fatalf("packing has %d assignments, want 2: %+v", len(p.Assignments), p)
		}
		if p.Seconds <= 0 || p.Cost <= 0 || p.MeanAccuracy <= 0 {
			t.Fatalf("bad packing %+v", p)
		}
		var sec, cost float64
		for i, a := range p.Assignments {
			if a.Tenant != tenants[i].Name {
				t.Fatalf("assignment %d names %q, want %q", i, a.Tenant, tenants[i].Name)
			}
			if a.Seconds <= 0 || a.Cost <= 0 {
				t.Fatalf("bad assignment %+v", a)
			}
			sec += a.Seconds
			cost += a.Cost
		}
		if math.Abs(sec-p.Seconds) > 1e-9 || math.Abs(cost-p.Cost) > 1e-9 {
			t.Fatalf("makespan/bill do not sum: %v/%v vs %v/%v", sec, cost, p.Seconds, p.Cost)
		}
		// Tenant b has no deadline, so it is always on time with a priced
		// $/M-on-time; tenant a's on-time status must match the makespan.
		b := p.Assignments[1]
		if b.OnTime != 50_000 || b.DollarsPerMillionOnTime <= 0 {
			t.Fatalf("deadline-free tenant b not on time: %+v", b)
		}
		a := p.Assignments[0]
		if wantOn := p.Seconds <= tenants[0].Deadline; (a.OnTime > 0) != wantOn {
			t.Fatalf("tenant a on-time=%d with makespan %.0fs vs deadline %.0fs", a.OnTime, p.Seconds, tenants[0].Deadline)
		}
	}
}

func TestEnumeratePackingsDeterministic(t *testing.T) {
	h := harness(t)
	pool := smallPool(t)[:2]
	ctx := context.Background()
	first, err := EnumeratePackings(ctx, h, someTenants(), pool, Top1, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EnumeratePackings(ctx, h, someTenants(), pool, Top1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("packing enumeration is not deterministic")
	}
}

func TestEnumeratePackingsRejectsBadInput(t *testing.T) {
	h := harness(t)
	pool := smallPool(t)[:1]
	ctx := context.Background()
	if _, err := EnumeratePackings(ctx, h, nil, pool, Top1, 0); err == nil {
		t.Fatal("expected error for no tenants")
	}
	if _, err := EnumeratePackings(ctx, h, someTenants(), nil, Top1, 0); err == nil {
		t.Fatal("expected error for empty pool")
	}
	if _, err := EnumeratePackings(ctx, h, []TenantDemand{{Name: "x", W: 1}}, pool, Top1, 0); err == nil {
		t.Fatal("expected error for empty ladder")
	}
	if _, err := EnumeratePackings(ctx, h, []TenantDemand{{Name: "x", Degrees: someDegrees()}}, pool, Top1, 0); err == nil {
		t.Fatal("expected error for zero workload")
	}
	// 21 one-rung... blow the evaluation cap with many-rung tenants: each
	// tenant multiplies the combo count by 4.
	big := make([]TenantDemand, 12)
	for i := range big {
		big[i] = TenantDemand{Name: string(rune('a' + i)), W: 1, Degrees: someDegrees()}
	}
	if _, err := EnumeratePackings(ctx, h, big, smallPool(t), Top1, 0); err == nil {
		t.Fatal("expected error for a packing space over the evaluation cap")
	}
}

func TestFeasiblePackingsAndFrontier(t *testing.T) {
	h := harness(t)
	pool := smallPool(t)[:2]
	tenants := someTenants()
	// Tighten tenant a's deadline so some packings miss it.
	tenants[0].Deadline = 3600
	packs, err := EnumeratePackings(context.Background(), h, tenants, pool, Top1, 0)
	if err != nil {
		t.Fatal(err)
	}
	feas := FeasiblePackings(packs)
	for _, p := range feas {
		if !p.OnTime() || p.Seconds > 3600 {
			t.Fatalf("infeasible packing survived the filter: %+v", p)
		}
	}

	fr := PackingFrontier(packs)
	if len(fr) == 0 || len(fr) > len(packs) {
		t.Fatalf("frontier size %d out of range", len(fr))
	}
	// Pareto property: no packing dominates a frontier member.
	for _, f := range fr {
		for _, p := range packs {
			if p.MeanAccuracy > f.MeanAccuracy && p.Cost < f.Cost {
				t.Fatalf("frontier member (acc=%v cost=%v) dominated by (acc=%v cost=%v)",
					f.MeanAccuracy, f.Cost, p.MeanAccuracy, p.Cost)
			}
		}
	}
}

func TestDedicatedBaseline(t *testing.T) {
	h := harness(t)
	pool := smallPool(t)[:2]
	tenants := someTenants()
	results, total, err := DedicatedBaseline(context.Background(), h, tenants, pool, Top1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	var sum float64
	for i, r := range results {
		if !r.Found {
			t.Fatalf("tenant %s has no dedicated configuration", tenants[i].Name)
		}
		if r.Cost <= 0 || r.Seconds <= 0 {
			t.Fatalf("bad dedicated result %+v", r)
		}
		if tenants[i].Deadline > 0 && r.Seconds > tenants[i].Deadline {
			t.Fatalf("dedicated pick for %s misses its deadline: %v > %v",
				tenants[i].Name, r.Seconds, tenants[i].Deadline)
		}
		sum += r.Cost
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Fatalf("total %v does not sum per-tenant costs %v", total, sum)
	}
	// The dedicated baseline serves each tenant at its ladder's best
	// feasible accuracy — at least as accurate as any shared packing's
	// mean can be for that tenant alone.
	if results[0].Acc.Top1 <= 0 {
		t.Fatalf("no accuracy on dedicated result: %+v", results[0])
	}
}
