package explore

import (
	"context"
	"fmt"
	"math"

	"ccperf/internal/accuracy"
	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/pareto"
	"ccperf/internal/prune"
	"ccperf/internal/telemetry"
)

// TenantDemand is one tenant's offline demand in a multi-tenant packing
// search: its own pruning ladder, workload size, and completion deadline.
// It is the batch counterpart of tenant.Spec — the explore layer answers
// "which tenants should share a pool, at which rungs" before any fleet
// is provisioned.
type TenantDemand struct {
	Name string
	// Degrees is the tenant's ladder (least pruned first); the search may
	// place the tenant at any rung.
	Degrees []prune.Degree
	// W is the tenant's image count.
	W int64
	// Deadline is the tenant's completion deadline in seconds (0 = none).
	// Tenants time-multiplex the shared pool, so a tenant is on time only
	// when the whole packing's makespan beats its deadline.
	Deadline float64
}

// TenantAssignment is one tenant's slice of a packing: the rung it runs
// at, its attributed time and cost, and the per-tenant headline —
// $/million-on-time-requests.
type TenantAssignment struct {
	Tenant  string
	Degree  prune.Degree
	Acc     accuracy.TopK
	Seconds float64
	Cost    float64
	// OnTime is the tenant's request count when the packing's makespan
	// meets its deadline, 0 otherwise; DollarsPerMillionOnTime =
	// Cost/OnTime × 1e6 (infinite — left 0 — when nothing is on time).
	OnTime                  int64
	DollarsPerMillionOnTime float64
}

// Packing is one joint configuration: a shared resource pool hosting
// every tenant, time-multiplexed, each at a chosen rung.
type Packing struct {
	Config      cloud.Config
	Assignments []TenantAssignment
	// Seconds is the makespan: tenants time-multiplex the pool, so slices
	// add. Cost is the joint bill (the sum of attributed slices).
	Seconds float64
	Cost    float64
	// MeanAccuracy is the W-weighted mean of the chosen rungs' accuracy
	// (by the metric the enumeration ran with).
	MeanAccuracy float64
}

// OnTime reports whether every tenant with a deadline meets it. A tenant
// without a deadline always counts as on time (its OnTime is its full W).
func (p Packing) OnTime() bool {
	for _, a := range p.Assignments {
		if a.OnTime == 0 {
			return false
		}
	}
	return true
}

// maxPackingEvals bounds |subsets(G)| × Π|ladder_i| so a careless call
// cannot explode; the limit is explicit, never a silent truncation.
const maxPackingEvals = 1 << 20

// EnumeratePackings evaluates every multi-tenant packing: each non-empty
// subset of the pool × each combination of per-tenant ladder rungs. The
// output order is deterministic: subset-major (cloud.Subsets order), rung
// combinations in mixed-radix order with the first tenant most
// significant. The search errors out — rather than silently sampling —
// when the space exceeds 2^20 packings.
func EnumeratePackings(ctx context.Context, pred engine.Predictor, tenants []TenantDemand, pool []*cloud.Instance, m Metric, dist cloud.Distribution) ([]Packing, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("explore: no tenant demands")
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("explore: empty resource pool")
	}
	_, finish := telemetry.StartSpan(ctx, "explore.enumerate_packings")
	reg := telemetry.Default
	enumerated := reg.Counter("explore.packings_enumerated")

	configs := cloud.Subsets(pool)
	combos := 1
	for _, t := range tenants {
		if len(t.Degrees) == 0 {
			return nil, fmt.Errorf("explore: tenant %s has an empty ladder", t.Name)
		}
		if t.W <= 0 {
			return nil, fmt.Errorf("explore: tenant %s has no workload", t.Name)
		}
		combos *= len(t.Degrees)
		if combos*len(configs) > maxPackingEvals {
			return nil, fmt.Errorf("explore: packing space %d×%d exceeds %d evaluations; shrink pools or ladders",
				len(configs), combos, maxPackingEvals)
		}
	}

	// Resolve each (tenant, rung) once: accuracy and perf predictions are
	// shared across every subset that reuses them.
	type rungEval struct {
		acc  accuracy.TopK
		a    float64
		perf cloud.Perf
	}
	evals := make([][]rungEval, len(tenants))
	for ti, t := range tenants {
		evals[ti] = make([]rungEval, len(t.Degrees))
		for ri, d := range t.Degrees {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			acc, err := pred.Accuracy(ctx, d)
			if err != nil {
				return nil, err
			}
			evals[ti][ri] = rungEval{acc: acc, a: m.Pick(acc), perf: pred.Perf(d, 0)}
		}
	}

	var totalW int64
	for _, t := range tenants {
		totalW += t.W
	}

	out := make([]Packing, 0, len(configs)*combos)
	rungs := make([]int, len(tenants))
	for _, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range rungs {
			rungs[i] = 0
		}
		for {
			p := Packing{Config: cfg, Assignments: make([]TenantAssignment, len(tenants))}
			var accW float64
			for ti, t := range tenants {
				ev := evals[ti][rungs[ti]]
				est, err := cloud.EstimateRunWith(cfg, t.W, ev.perf, dist)
				if err != nil {
					return nil, err
				}
				p.Assignments[ti] = TenantAssignment{
					Tenant:  t.Name,
					Degree:  t.Degrees[rungs[ti]],
					Acc:     ev.acc,
					Seconds: est.Seconds,
					Cost:    est.Cost,
				}
				p.Seconds += est.Seconds
				p.Cost += est.Cost
				accW += ev.a * float64(t.W)
			}
			p.MeanAccuracy = accW / float64(totalW)
			for ti, t := range tenants {
				a := &p.Assignments[ti]
				if t.Deadline <= 0 || p.Seconds <= t.Deadline {
					a.OnTime = t.W
					if a.OnTime > 0 {
						a.DollarsPerMillionOnTime = a.Cost / float64(a.OnTime) * 1e6
					}
				}
			}
			out = append(out, p)
			enumerated.Inc()

			// Mixed-radix increment, least-significant (last) tenant first.
			i := len(rungs) - 1
			for ; i >= 0; i-- {
				rungs[i]++
				if rungs[i] < len(tenants[i].Degrees) {
					break
				}
				rungs[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	finish(
		telemetry.L("tenants", len(tenants)),
		telemetry.L("configs", len(configs)),
		telemetry.L("packings", len(out)),
	)
	return out, nil
}

// FeasiblePackings keeps the packings where every tenant meets its
// deadline. Counters mirror Feasible: explore.packings_feasible and
// explore.packings_pruned_deadline.
func FeasiblePackings(packings []Packing) []Packing {
	reg := telemetry.Default
	feasible := reg.Counter("explore.packings_feasible")
	pruned := reg.Counter("explore.packings_pruned_deadline")
	var out []Packing
	for _, p := range packings {
		if p.OnTime() {
			feasible.Inc()
			out = append(out, p)
		} else {
			pruned.Inc()
		}
	}
	return out
}

// PackingFrontier extracts the joint cost-accuracy Pareto set over
// packings: maximal W-weighted mean accuracy at minimal joint cost — the
// multi-tenant generalization of the paper's Figure 10 frontier.
func PackingFrontier(packings []Packing) []Packing {
	pts := make([]pareto.Point, len(packings))
	for i, p := range packings {
		pts[i] = pareto.Point{Accuracy: p.MeanAccuracy, Objective: p.Cost, Payload: i}
	}
	fr := pareto.Frontier(pts)
	out := make([]Packing, len(fr))
	for i, p := range fr {
		out[i] = packings[p.Payload.(int)]
	}
	return out
}

// DedicatedBaseline provisions each tenant its own pool (no sharing):
// per tenant, the exhaustive search picks the highest-accuracy rung and
// subset meeting its deadline alone. It returns one Result per tenant (in
// input order) and the summed cost — the bill a packing must beat for
// co-location to pay. A tenant with no feasible dedicated configuration
// has Found=false and contributes nothing to the total.
func DedicatedBaseline(ctx context.Context, pred engine.Predictor, tenants []TenantDemand, pool []*cloud.Instance, m Metric, dist cloud.Distribution) ([]Result, float64, error) {
	results := make([]Result, len(tenants))
	total := 0.0
	for i, t := range tenants {
		deadline := t.Deadline
		if deadline <= 0 {
			deadline = math.Inf(1)
		}
		res, err := Exhaustive(ctx, pred, Input{
			Degrees:  t.Degrees,
			Pool:     pool,
			W:        t.W,
			Deadline: deadline,
			Budget:   math.Inf(1),
			Metric:   m,
			Dist:     dist,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("explore: dedicated baseline for tenant %s: %w", t.Name, err)
		}
		results[i] = res
		if res.Found {
			total += res.Cost
		}
	}
	return results, total, nil
}
