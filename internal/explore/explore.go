// Package explore implements the paper's primary contribution: exploration
// of the joint configuration space of application accuracy (degrees of
// pruning) × cloud resource configurations, under a time deadline T′ and a
// cost budget C′ (Section 3.4); extraction of the time-accuracy and
// cost-accuracy Pareto frontiers (Figures 9–10); and Algorithm 1 — the
// TAR/CAR-guided greedy resource allocation that replaces the exponential
// subset search with an O(|G| log |G|)-per-degree heuristic (Section 4.5.3).
//
// All searches consume predictions through engine.Predictor; pass an
// engine.Cache (wrapping the measurement harness) and every (degree,
// instance-type) evaluation is made once and shared across the |P|·(2^|G|−1)
// configurations that reuse it.
package explore

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"ccperf/internal/accuracy"
	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/metrics"
	"ccperf/internal/pareto"
	"ccperf/internal/prune"
	"ccperf/internal/telemetry"
)

// Candidate is one point of the joint space: a degree of pruning hosted on
// a cloud resource configuration, with model-predicted time, cost and
// accuracy.
type Candidate struct {
	Degree  prune.Degree
	Acc     accuracy.TopK
	Config  cloud.Config
	Seconds float64
	Cost    float64
}

// Hours returns the candidate's execution time in hours.
func (c Candidate) Hours() float64 { return c.Seconds / 3600 }

// Space is the joint exploration space.
type Space struct {
	Pred    engine.Predictor
	Degrees []prune.Degree    // P: the pruned application versions
	Pool    []*cloud.Instance // G: the available resource instances
	W       int64             // images to infer
	// Dist selects the workload distribution; the zero value is the
	// paper's Equation 4 even split.
	Dist cloud.Distribution
	// Workers bounds the enumeration worker pool; 0 or negative means
	// runtime.NumCPU(). The pool never exceeds |P| (one degree is the
	// unit of work).
	Workers int
}

// workers resolves the effective worker-pool size.
func (s *Space) workers() int {
	w := s.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > len(s.Degrees) {
		w = len(s.Degrees)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Enumerate evaluates the analytical model on every (degree, non-empty
// subset of G) pair. With |G| instances this is |P|·(2^|G|−1) model
// evaluations — the exponential space Algorithm 1 avoids. Degrees are
// evaluated concurrently (each degree's block of the result is
// independent); output order is deterministic: degree-major, subsets in
// mask order. Cancelling ctx stops feeding the pool, drains in-flight
// workers promptly and returns ctx's error.
//
// Telemetry: emits one explore.enumerate span with a child explore.worker
// span per pool worker, counts candidates/degrees, observes per-degree
// wall time in explore.degree_seconds, and reports aggregate pool
// utilization (worker busy time over pool wall time) in
// explore.worker_utilization.
func (s *Space) Enumerate(ctx context.Context) ([]Candidate, error) {
	reg := telemetry.Default
	spanCtx, finishEnum := telemetry.StartSpan(ctx, "explore.enumerate")
	configs := cloud.Subsets(s.Pool)
	out := make([]Candidate, len(configs)*len(s.Degrees))
	workers := s.workers()
	reg.Gauge("explore.workers").Set(float64(workers))
	degreeSeconds := reg.Histogram("explore.degree_seconds", nil)
	candidates := reg.Counter("explore.candidates_enumerated")
	degreesDone := reg.Counter("explore.degrees_evaluated")

	var wg sync.WaitGroup
	jobs := make(chan int)
	errs := make([]error, len(s.Degrees))
	busyNanos := make([]int64, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, finishWorker := telemetry.StartSpan(spanCtx, "explore.worker")
			degrees := 0
			defer func() {
				finishWorker(
					telemetry.L("worker", w),
					telemetry.L("degrees", degrees),
					telemetry.L("busy_seconds", float64(busyNanos[w])/1e9),
				)
			}()
			for di := range jobs {
				if err := ctx.Err(); err != nil {
					errs[di] = err
					continue
				}
				dstart := time.Now()
				d := s.Degrees[di]
				acc, err := s.Pred.Accuracy(ctx, d)
				if err != nil {
					errs[di] = err
					continue
				}
				perf := s.Pred.Perf(d, 0)
				base := di * len(configs)
				for ci, cfg := range configs {
					est, err := cloud.EstimateRunWith(cfg, s.W, perf, s.Dist)
					if err != nil {
						errs[di] = err
						break
					}
					out[base+ci] = Candidate{Degree: d, Acc: acc, Config: cfg, Seconds: est.Seconds, Cost: est.Cost}
				}
				el := time.Since(dstart)
				busyNanos[w] += el.Nanoseconds()
				degrees++
				degreesDone.Inc()
				candidates.Add(int64(len(configs)))
				degreeSeconds.Observe(el.Seconds())
			}
		}(w)
	}
feed:
	for di := range s.Degrees {
		select {
		case jobs <- di:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start).Seconds()
	if wall > 0 {
		var busy int64
		for _, b := range busyNanos {
			busy += b
		}
		reg.Gauge("explore.worker_utilization").Set(float64(busy) / 1e9 / (wall * float64(workers)))
	}
	finishEnum(
		telemetry.L("degrees", len(s.Degrees)),
		telemetry.L("configs", len(configs)),
		telemetry.L("workers", workers),
	)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Feasible filters candidates by deadline (seconds) and budget (dollars).
// Use math.Inf(1) to leave a constraint unbounded. Counters record how the
// space shrank: explore.feasible, explore.pruned_deadline and
// explore.pruned_budget (a candidate violating both constraints increments
// both pruned counters).
func Feasible(cands []Candidate, deadline, budget float64) []Candidate {
	reg := telemetry.Default
	feasible := reg.Counter("explore.feasible")
	byDeadline := reg.Counter("explore.pruned_deadline")
	byBudget := reg.Counter("explore.pruned_budget")
	var out []Candidate
	for _, c := range cands {
		overDeadline := c.Seconds > deadline
		overBudget := c.Cost > budget
		if overDeadline {
			byDeadline.Inc()
		}
		if overBudget {
			byBudget.Inc()
		}
		if !overDeadline && !overBudget {
			feasible.Inc()
			out = append(out, c)
		}
	}
	return out
}

// Objective selects the minimized dimension of a frontier.
type Objective int

// Frontier objectives.
const (
	ByTime Objective = iota
	ByCost
)

// Metric selects the accuracy dimension of a frontier.
type Metric int

// Accuracy metrics.
const (
	Top1 Metric = iota
	Top5
)

// Pick returns the accuracy value this metric selects.
func (m Metric) Pick(a accuracy.TopK) float64 {
	if m == Top1 {
		return a.Top1
	}
	return a.Top5
}

// Frontier extracts the Pareto-optimal candidates: maximal accuracy
// (by metric m) with minimal objective (time or cost) — the lines of
// Figures 9 and 10.
func Frontier(cands []Candidate, obj Objective, m Metric) []Candidate {
	pts := make([]pareto.Point, len(cands))
	for i, c := range cands {
		o := c.Seconds
		if obj == ByCost {
			o = c.Cost
		}
		pts[i] = pareto.Point{Accuracy: m.Pick(c.Acc), Objective: o, Payload: i}
	}
	fr := pareto.Frontier(pts)
	out := make([]Candidate, len(fr))
	for i, p := range fr {
		out[i] = cands[p.Payload.(int)]
	}
	return out
}

// degreeRank is a degree with its reference TAR (computed on the reference
// instance), used for Algorithm 1's ordering.
type degreeRank struct {
	d   prune.Degree
	acc accuracy.TopK
	tar float64
}

// Input parameterizes Algorithm 1 and the exhaustive baseline.
type Input struct {
	Degrees  []prune.Degree
	Pool     []*cloud.Instance
	W        int64
	Deadline float64 // T′ in seconds
	Budget   float64 // C′ in dollars
	// Metric is the accuracy used for ordering P (default Top1).
	Metric Metric
	// Dist selects the workload distribution (default: Equation 4).
	Dist cloud.Distribution
}

// Result is the allocation outcome: the chosen degree of pruning, the
// resource configuration, and the model-estimated time and cost. Ops
// counts analytical-model evaluations, the dominant work of both searches.
type Result struct {
	Found   bool
	Degree  prune.Degree
	Acc     accuracy.TopK
	Config  cloud.Config
	Seconds float64
	Cost    float64
	Ops     int
}

// Allocate is Algorithm 1. P is sorted by descending accuracy (ties by
// ascending TAR); for each degree, instances are sorted by ascending CAR
// and added greedily until the configuration meets both T′ and C′. The
// first success is returned — by construction the highest-accuracy degree
// that the greedy order can satisfy. Cancelling ctx aborts the search
// between evaluations.
func Allocate(ctx context.Context, p engine.Predictor, in Input) (res Result, err error) {
	if len(in.Pool) == 0 {
		return Result{}, fmt.Errorf("explore: empty resource pool")
	}
	_, finish := telemetry.StartSpan(ctx, "explore.allocate")
	defer func() {
		telemetry.Default.Counter("explore.allocate_ops").Add(int64(res.Ops))
		finish(telemetry.L("found", res.Found), telemetry.L("ops", res.Ops))
	}()
	ranks, ops, err := rankDegrees(ctx, p, in)
	if err != nil {
		return Result{}, err
	}
	for _, dr := range ranks {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		perf := p.Perf(dr.d, 0)
		// Sort G ascending by CAR: cost of running the whole workload on
		// that instance alone, per unit accuracy.
		type gCar struct {
			inst *cloud.Instance
			car  float64
			sec  float64
		}
		gs := make([]gCar, len(in.Pool))
		a := in.Metric.Pick(dr.acc)
		for i, g := range in.Pool {
			est, err := cloud.EstimateRunWith(cloud.NewConfig(g), in.W, perf, in.Dist)
			if err != nil {
				return Result{}, err
			}
			ops++
			gs[i] = gCar{inst: g, car: metrics.CAR(est.Cost, a), sec: est.Seconds}
		}
		// Ascending CAR; near-ties (instances of one family have CAR equal
		// up to billing granularity, since price scales with GPU count)
		// break toward the faster instance so the greedy prefix is not
		// dominated by a slow straggler under the even workload split of
		// Equation 4.
		sort.SliceStable(gs, func(x, y int) bool {
			cx, cy := gs[x].car, gs[y].car
			if diff := math.Abs(cx - cy); diff > 0.01*math.Max(cx, cy) {
				return cx < cy
			}
			return gs[x].sec < gs[y].sec
		})

		var chosen []*cloud.Instance
		for _, g := range gs {
			chosen = append(chosen, g.inst)
			cfg := cloud.NewConfig(chosen...)
			est, err := cloud.EstimateRunWith(cfg, in.W, perf, in.Dist)
			if err != nil {
				return Result{}, err
			}
			ops++
			if est.Seconds <= in.Deadline && est.Cost <= in.Budget {
				return Result{
					Found: true, Degree: dr.d, Acc: dr.acc, Config: cfg,
					Seconds: est.Seconds, Cost: est.Cost, Ops: ops,
				}, nil
			}
		}
	}
	return Result{Ops: ops}, nil
}

// rankDegrees sorts P by (accuracy desc, TAR asc) per Algorithm 1 line 1.
// TAR is computed on the first pool instance as the reference resource.
func rankDegrees(ctx context.Context, p engine.Predictor, in Input) ([]degreeRank, int, error) {
	ref := in.Pool[0]
	ranks := make([]degreeRank, 0, len(in.Degrees))
	ops := 0
	for _, d := range in.Degrees {
		acc, err := p.Accuracy(ctx, d)
		if err != nil {
			return nil, ops, err
		}
		sec, err := p.TotalSeconds(ctx, d, ref, 0, in.W)
		if err != nil {
			return nil, ops, err
		}
		ops++
		ranks = append(ranks, degreeRank{d: d, acc: acc, tar: metrics.TAR(sec, in.Metric.Pick(acc))})
	}
	sort.SliceStable(ranks, func(a, b int) bool {
		aa, ab := in.Metric.Pick(ranks[a].acc), in.Metric.Pick(ranks[b].acc)
		if aa != ab {
			return aa > ab
		}
		return ranks[a].tar < ranks[b].tar
	})
	return ranks, ops, nil
}

// Exhaustive is the brute-force baseline: evaluate every degree on every
// non-empty subset of G (|P|·(2^|G|−1) model evaluations) and return the
// feasible candidate with maximal accuracy, ties broken by minimal cost
// then minimal time. Cancelling ctx aborts between degrees.
func Exhaustive(ctx context.Context, p engine.Predictor, in Input) (out Result, err error) {
	if len(in.Pool) == 0 {
		return Result{}, fmt.Errorf("explore: empty resource pool")
	}
	_, finish := telemetry.StartSpan(ctx, "explore.exhaustive")
	defer func() {
		telemetry.Default.Counter("explore.exhaustive_ops").Add(int64(out.Ops))
		finish(telemetry.L("found", out.Found), telemetry.L("ops", out.Ops))
	}()
	configs := cloud.Subsets(in.Pool)
	best := Result{}
	ops := 0
	for _, d := range in.Degrees {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		acc, err := p.Accuracy(ctx, d)
		if err != nil {
			return Result{}, err
		}
		a := in.Metric.Pick(acc)
		perf := p.Perf(d, 0)
		for _, cfg := range configs {
			est, err := cloud.EstimateRunWith(cfg, in.W, perf, in.Dist)
			if err != nil {
				return Result{}, err
			}
			ops++
			if est.Seconds > in.Deadline || est.Cost > in.Budget {
				continue
			}
			if !best.Found ||
				a > in.Metric.Pick(best.Acc) ||
				(a == in.Metric.Pick(best.Acc) && (est.Cost < best.Cost ||
					(est.Cost == best.Cost && est.Seconds < best.Seconds))) {
				best = Result{
					Found: true, Degree: d, Acc: acc, Config: cfg,
					Seconds: est.Seconds, Cost: est.Cost,
				}
			}
		}
	}
	best.Ops = ops
	return best, nil
}

// GreedyOpsBound returns the worst-case model-evaluation count of
// Algorithm 1 (|P|·(2|G|+1)); ExhaustiveOps returns |P|·(2^|G|−1). The gap
// is the paper's exponential-to-polynomial reduction.
func GreedyOpsBound(p, g int) int { return p * (2*g + 1) }

// ExhaustiveOps returns the exhaustive search's model-evaluation count.
func ExhaustiveOps(p, g int) int {
	if g >= 63 {
		return math.MaxInt
	}
	return p * ((1 << g) - 1)
}

// JointFrontier extracts the three-objective Pareto set — maximal accuracy
// with minimal time AND minimal cost simultaneously. It generalizes
// Figures 9 and 10: a configuration survives only if nothing is at least
// as accurate, as fast, and as cheap.
func JointFrontier(cands []Candidate, m Metric) []Candidate {
	pts := make([]pareto.Point3, len(cands))
	for i, c := range cands {
		pts[i] = pareto.Point3{Accuracy: m.Pick(c.Acc), Time: c.Seconds, Cost: c.Cost, Payload: i}
	}
	fr := pareto.Frontier3(pts)
	out := make([]Candidate, len(fr))
	for i, p := range fr {
		out[i] = cands[p.Payload.(int)]
	}
	return out
}
