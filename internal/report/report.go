// Package report renders experiment results as aligned text tables, CSV,
// and ASCII plots — the output layer of cmd/paperbench and the benchmark
// harness, which regenerate every table and figure of the paper as text.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e12:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes the table in CSV form (no quoting beyond commas→semicolons;
// experiment labels contain no commas).
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cells := make([]string, len(t.headers))
	for i, h := range t.headers {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, r := range t.rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Series is one named line of an ASCII plot.
type Series struct {
	Name string
	X, Y []float64
}

// Plot renders series as a width×height ASCII scatter. Each series uses
// its own marker rune.
type Plot struct {
	Title, XLabel, YLabel string
	Width, Height         int
	series                []Series
}

// NewPlot creates a plot with sensible terminal dimensions.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 16}
}

// Add appends a series.
func (p *Plot) Add(s Series) { p.series = append(p.series, s) }

var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the plot.
func (p *Plot) Render(w io.Writer) {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		fmt.Fprintf(w, "%s\n  (no data)\n", p.Title)
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, p.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", p.Width))
	}
	for si, s := range p.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x := int((s.X[i] - minX) / (maxX - minX) * float64(p.Width-1))
			y := int((s.Y[i] - minY) / (maxY - minY) * float64(p.Height-1))
			grid[p.Height-1-y][x] = m
		}
	}
	fmt.Fprintf(w, "%s\n", p.Title)
	fmt.Fprintf(w, "  %s (y: %.3g..%.3g)\n", p.YLabel, minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", p.Width))
	fmt.Fprintf(w, "  %s (x: %.3g..%.3g)", p.XLabel, minX, maxX)
	var legend []string
	for si, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(w, "   [%s]", strings.Join(legend, " "))
	}
	fmt.Fprintln(w)
}

// String renders the plot to a string.
func (p *Plot) String() string {
	var b strings.Builder
	p.Render(&b)
	return b.String()
}

// Bar renders a single-line percentage bar (Figure 3 style).
func Bar(label string, share float64, width int) string {
	n := int(share*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return fmt.Sprintf("%-22s %5.1f%% |%s%s|", label, share*100,
		strings.Repeat("#", n), strings.Repeat(" ", width-n))
}

// Histogram renders values into n equal-width buckets as horizontal bars —
// used for latency distributions from the cluster simulator.
func Histogram(title, unit string, values []float64, buckets, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(values) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	if buckets < 1 {
		buckets = 10
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, buckets)
	for _, v := range values {
		i := int((v - lo) / (hi - lo) * float64(buckets))
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range counts {
		bLo := lo + (hi-lo)*float64(i)/float64(buckets)
		bHi := lo + (hi-lo)*float64(i+1)/float64(buckets)
		n := 0
		if maxC > 0 {
			n = c * width / maxC
		}
		fmt.Fprintf(&b, "  %8.2f–%-8.2f %s %4d %s\n", bLo, bHi, unit, c, strings.Repeat("#", n))
	}
	return b.String()
}
