package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the envelope golden files")

// loadtestPayload mirrors the shape the loadtest subcommand writes; the
// golden files pin the on-disk format so schema drift is a visible diff.
type loadtestPayload struct {
	Submitted int     `json:"submitted"`
	OK        int     `json:"ok"`
	P99MS     float64 `json:"p99_ms"`
	CostUSD   float64 `json:"cost_usd"`
}

type simulatePayload struct {
	Jobs   int     `json:"jobs"`
	Misses int     `json:"misses"`
	Cost   float64 `json:"cost"`
}

type benchPayload struct {
	Benchmarks map[string]float64 `json:"benchmarks"`
}

type predictPayload struct {
	Model      string            `json:"model"`
	Calibrated []string          `json:"calibrated"`
	MaxErrPct  float64           `json:"max_err_pct"`
	Rows       []predictErrorRow `json:"rows"`
}

type predictErrorRow struct {
	Instance  string  `json:"instance"`
	ErrSatPct float64 `json:"err_sat_pct"`
}

func goldenCases() []struct {
	name, kind string
	payload    any
} {
	return []struct {
		name, kind string
		payload    any
	}{
		{"loadtest", KindLoadtest, loadtestPayload{Submitted: 2000, OK: 1987, P99MS: 42.5, CostUSD: 0.0051}},
		{"simulate", KindSimulate, simulatePayload{Jobs: 175, Misses: 2, Cost: 64.8}},
		{"bench", KindBench, benchPayload{Benchmarks: map[string]float64{"BenchmarkAllocate": 1.25e6}}},
		{"predict", KindPredict, predictPayload{
			Model:      "caffenet",
			Calibrated: []string{"p2.xlarge", "g3.4xlarge"},
			MaxErrPct:  1.31,
			Rows: []predictErrorRow{
				{Instance: "p2.8xlarge", ErrSatPct: -0.42},
				{Instance: "g3.16xlarge", ErrSatPct: 1.31},
			},
		}},
	}
}

// TestEnvelopeGoldenFiles round-trips each artifact kind through its
// checked-in golden file: the written bytes must match the file exactly,
// and decoding the file must reproduce the payload.
func TestEnvelopeGoldenFiles(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteEnvelope(&buf, tc.kind, tc.payload); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".golden.json")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("written envelope differs from %s:\n got: %s\nwant: %s", path, buf.Bytes(), want)
			}

			env, err := ReadEnvelope(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			if env.Schema != SchemaV1 || env.Kind != tc.kind {
				t.Fatalf("envelope header = %q/%q", env.Schema, env.Kind)
			}
			out := reflect.New(reflect.TypeOf(tc.payload))
			if err := env.Decode(tc.kind, out.Interface()); err != nil {
				t.Fatal(err)
			}
			if got := out.Elem().Interface(); !reflect.DeepEqual(got, tc.payload) {
				t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, tc.payload)
			}
		})
	}
}

func TestEnvelopeRejectsWrongSchemaAndKind(t *testing.T) {
	if _, err := ReadEnvelope(strings.NewReader(`{"schema":"ccperf/v0","kind":"bench","data":{}}`)); err == nil {
		t.Fatal("v0 schema must be rejected")
	}
	if _, err := ReadEnvelope(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed input must be rejected")
	}
	env, err := NewEnvelope(KindBench, benchPayload{})
	if err != nil {
		t.Fatal(err)
	}
	var out loadtestPayload
	if err := env.Decode(KindLoadtest, &out); err == nil {
		t.Fatal("kind mismatch must be rejected")
	}
}

func TestWriteEnvelopeFileCreatesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "out.json")
	if err := WriteEnvelopeFile(path, KindMetrics, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	env, err := ReadEnvelope(f)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int
	if err := env.Decode(KindMetrics, &m); err != nil || m["a"] != 1 {
		t.Fatalf("decode = %v, %v", m, err)
	}
}
