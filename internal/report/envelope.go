package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// SchemaV1 is the versioned schema tag every JSON artifact the CLI writes
// carries, so downstream tooling can dispatch on shape before decoding the
// payload.
const SchemaV1 = "ccperf/v1"

// The artifact kinds written under SchemaV1.
const (
	KindBench    = "bench"    // benchjson: telemetry snapshot of bench results
	KindLoadtest = "loadtest" // loadtest: gateway replay report (+ autoscaler)
	KindSimulate = "simulate" // simulate: cluster day-simulation result
	KindMetrics  = "metrics"  // -metrics-out: telemetry registry snapshot

	// KindBenchdiff is a benchdiff comparison report (`ccperf benchdiff -json`).
	KindBenchdiff = "benchdiff"

	// KindPredict is a transfer-prediction report (`ccperf predict`):
	// fitted roofline factors, the leave-one-out held-out error table, and
	// — under -train — the training-fleet plan.
	KindPredict = "predict"
)

// Envelope wraps one JSON artifact with its schema version and kind. Data
// holds the kind-specific payload verbatim.
type Envelope struct {
	Schema string          `json:"schema"`
	Kind   string          `json:"kind"`
	Data   json.RawMessage `json:"data"`
}

// NewEnvelope wraps a payload in a SchemaV1 envelope.
func NewEnvelope(kind string, payload any) (*Envelope, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("report: encoding %s payload: %w", kind, err)
	}
	return &Envelope{Schema: SchemaV1, Kind: kind, Data: raw}, nil
}

// WriteEnvelope writes the payload to w as an indented SchemaV1 envelope.
func WriteEnvelope(w io.Writer, kind string, payload any) error {
	env, err := NewEnvelope(kind, payload)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// WriteEnvelopeFile writes an enveloped artifact to path, creating parent
// directories.
func WriteEnvelopeFile(path, kind string, payload any) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEnvelope(f, kind, payload); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadEnvelope decodes one envelope from r, rejecting unknown schemas.
func ReadEnvelope(r io.Reader) (*Envelope, error) {
	var env Envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("report: decoding envelope: %w", err)
	}
	if env.Schema != SchemaV1 {
		return nil, fmt.Errorf("report: unsupported schema %q (want %q)", env.Schema, SchemaV1)
	}
	return &env, nil
}

// Decode unmarshals the envelope's payload into out after checking the
// expected kind, so callers fail on a kind mismatch rather than silently
// zero-filling an unrelated struct.
func (e *Envelope) Decode(kind string, out any) error {
	if e.Kind != kind {
		return fmt.Errorf("report: envelope holds %q, want %q", e.Kind, kind)
	}
	if err := json.Unmarshal(e.Data, out); err != nil {
		return fmt.Errorf("report: decoding %s payload: %w", kind, err)
	}
	return nil
}
