package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 200.0)
	tb.Row("c", 42)
	out := tb.String()
	if !strings.Contains(out, "T\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.50") {
		t.Fatalf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "200") {
		t.Fatalf("float formatting:\n%s", out)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	// Alignment: all lines equal-prefix columns; headers and separator
	// exist.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("missing separator:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Row("x,y", 1)
	var b strings.Builder
	tb.CSV(&b)
	want := "a,b\nx;y,1\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		123.456: "123.5",
		0.01234: "0.0123",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPlotRender(t *testing.T) {
	p := NewPlot("Curve", "x", "y")
	p.Add(Series{Name: "s1", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}})
	p.Add(Series{Name: "s2", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}})
	out := p.String()
	if !strings.Contains(out, "Curve") || !strings.Contains(out, "*=s1") || !strings.Contains(out, "+=s2") {
		t.Fatalf("plot output:\n%s", out)
	}
	if !strings.Contains(out, "x: 0..2") {
		t.Fatalf("x range missing:\n%s", out)
	}
	// Marker characters present.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	p := NewPlot("Empty", "x", "y")
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %s", out)
	}
	p2 := NewPlot("Flat", "x", "y")
	p2.Add(Series{Name: "s", X: []float64{1, 1}, Y: []float64{2, 2}})
	out := p2.String()
	if !strings.Contains(out, "Flat") {
		t.Fatalf("degenerate plot crashed or lost title:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	b := Bar("conv1", 0.51, 40)
	if !strings.Contains(b, "conv1") || !strings.Contains(b, "51.0%") {
		t.Fatalf("Bar = %q", b)
	}
	if strings.Count(b, "#") != 20 {
		t.Fatalf("Bar hashes = %d, want 20: %q", strings.Count(b, "#"), b)
	}
	over := Bar("x", 1.5, 10)
	if strings.Count(over, "#") != 10 {
		t.Fatalf("Bar must clamp: %q", over)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("Waits", "s", []float64{0, 1, 1, 2, 9}, 3, 20)
	if !strings.Contains(out, "Waits") {
		t.Fatalf("missing title: %s", out)
	}
	// 3 buckets over [0,9]: [0,3)=4, [3,6)=0, [6,9]=1.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "4 ####################") {
		t.Fatalf("first bucket: %q", lines[1])
	}
	if !strings.Contains(lines[2], "0 ") || strings.Contains(lines[2], "#") {
		t.Fatalf("empty bucket: %q", lines[2])
	}
	if empty := Histogram("E", "s", nil, 3, 10); !strings.Contains(empty, "no data") {
		t.Fatalf("empty: %s", empty)
	}
	flat := Histogram("F", "s", []float64{2, 2}, 0, 10)
	if !strings.Contains(flat, "F") {
		t.Fatalf("flat: %s", flat)
	}
}
