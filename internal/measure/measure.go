// Package measure is the measurement harness of Section 3.3: it runs
// (simulated) inference experiments, repeats each three times keeping the
// minimum to cancel cloud jitter — exactly the paper's methodology — and
// emits records of time, cost, Top-1/Top-5 accuracy, TAR and CAR per
// degree of pruning and resource configuration.
//
// Harness is the canonical engine.Predictor implementation: wrap it in
// engine.NewCache and the exploration, cluster-simulation and serving
// layers share one memoized set of measurements.
package measure

import (
	"context"
	"fmt"
	"math"

	"ccperf/internal/accuracy"
	"ccperf/internal/cloud"
	"ccperf/internal/engine"
	"ccperf/internal/gpusim"
	"ccperf/internal/metrics"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
	"ccperf/internal/telemetry"
)

// DefaultReps is the paper's repetition count (run three times, keep the
// minimum).
const DefaultReps = 3

// Harness bundles the simulator and an accuracy evaluator for one model.
type Harness struct {
	Sim  *gpusim.Simulator
	Eval accuracy.Evaluator
	// Reps is the repetition count; 0 means DefaultReps.
	Reps int
}

var _ engine.Predictor = (*Harness)(nil)

// NewHarness builds a harness with the calibrated evaluator for model.
func NewHarness(model string) (*Harness, error) {
	ev, err := accuracy.NewCalibrated(model)
	if err != nil {
		return nil, err
	}
	return &Harness{Sim: gpusim.New(), Eval: ev}, nil
}

func (h *Harness) reps() int {
	if h.Reps > 0 {
		return h.Reps
	}
	return DefaultReps
}

func (h *Harness) run(d prune.Degree) gpusim.ModelRun {
	return gpusim.ModelRun{ModelName: h.Eval.ModelName(), Degree: d}
}

// BatchSeconds measures the time of one batch of b images on gpus GPUs of
// the instance, as the minimum over repetitions (Section 3.3). Telemetry
// records the repetition count (measure.reps_total), the kept minimum
// (measure.batch_seconds) and the rep-to-rep jitter spread the minimum
// cancelled, as (max−min)/min percent (measure.jitter_spread_pct).
func (h *Harness) BatchSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus, b int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	dev, err := h.Sim.Device(inst.GPU)
	if err != nil {
		return 0, err
	}
	best, worst := math.Inf(1), math.Inf(-1)
	reps := h.reps()
	for rep := 1; rep <= reps; rep++ {
		t, err := h.Sim.JitteredBatchTime(h.run(d), dev, gpus, b, rep)
		if err != nil {
			return 0, err
		}
		if t < best {
			best = t
		}
		if t > worst {
			worst = t
		}
	}
	reg := telemetry.Default
	reg.Counter("measure.reps_total").Add(int64(reps))
	reg.Histogram("measure.batch_seconds", nil).Observe(best)
	if reps > 1 && best > 0 {
		reg.Histogram("measure.jitter_spread_pct", jitterBuckets).Observe((worst - best) / best * 100)
	}
	return best, nil
}

// jitterBuckets covers jitter spreads of 0–20% in 0.5% steps — the
// simulator's virtualization noise sits well inside this range.
var jitterBuckets = telemetry.LinearBuckets(0, 0.5, 41)

// TotalSeconds measures the time to infer w images on one instance using
// gpus GPUs (0 ⇒ all), at saturated batch size.
func (h *Harness) TotalSeconds(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus int, w int64) (float64, error) {
	if gpus <= 0 {
		gpus = inst.GPUs
	}
	b := h.Sim.MaxBatch(gpus)
	bt, err := h.BatchSeconds(ctx, d, inst, gpus, b)
	if err != nil {
		return 0, err
	}
	return math.Ceil(float64(w)/float64(b)) * bt, nil
}

// Accuracy returns the Top-1/Top-5 accuracy of the model pruned by d —
// the evaluator's curves behind one context-aware door, completing the
// engine.Predictor contract.
func (h *Harness) Accuracy(ctx context.Context, d prune.Degree) (accuracy.TopK, error) {
	if err := ctx.Err(); err != nil {
		return accuracy.TopK{}, err
	}
	return h.Eval.Evaluate(d)
}

// Record measures one (degree, instance) pair end to end: time, pro-rated
// cost, accuracy, TAR and CAR.
func (h *Harness) Record(ctx context.Context, d prune.Degree, inst *cloud.Instance, gpus int, w int64) (metrics.Record, error) {
	sec, err := h.TotalSeconds(ctx, d, inst, gpus, w)
	if err != nil {
		return metrics.Record{}, err
	}
	acc, err := h.Accuracy(ctx, d)
	if err != nil {
		return metrics.Record{}, err
	}
	cost := math.Ceil(sec) * inst.PricePerSecond()
	return metrics.Record{
		Label:   fmt.Sprintf("%s/%s", d.Label(), inst.Name),
		Seconds: sec,
		Cost:    cost,
		Top1:    acc.Top1,
		Top5:    acc.Top5,
	}, nil
}

// Perf returns a cloud.Perf for the analytical model (Equations 1–4) at
// degree d, utilizing gpus GPUs per instance (0 ⇒ all).
func (h *Harness) Perf(d prune.Degree, gpus int) cloud.Perf {
	return gpusim.InstancePerf{Sim: h.Sim, Run: h.run(d), GPUs: gpus}
}

// LayerShare is one bar segment of Figure 3.
type LayerShare struct {
	Name  string
	Kind  string
	Share float64
}

// LayerDistribution measures the per-layer execution-time distribution on
// the instance at saturated batch (Figure 3). net must be the initialized
// network matching the harness's model.
func (h *Harness) LayerDistribution(ctx context.Context, net *nn.Net, d prune.Degree, inst *cloud.Instance) ([]LayerShare, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dev, err := h.Sim.Device(inst.GPU)
	if err != nil {
		return nil, err
	}
	run := gpusim.ModelRun{ModelName: h.Eval.ModelName(), Degree: d, Net: net}
	lts, err := h.Sim.LayerTimes(run, dev, inst.GPUs, h.Sim.MaxBatch(inst.GPUs))
	if err != nil {
		return nil, err
	}
	out := make([]LayerShare, len(lts))
	for i, lt := range lts {
		out[i] = LayerShare{Name: lt.Name, Kind: lt.Kind, Share: lt.Share}
	}
	return out, nil
}

// SweepPoint is one x-position of a Figure 6/7 style sweep.
type SweepPoint struct {
	Ratio   float64
	Minutes float64
	Top1    float64
	Top5    float64
}

// LayerSweep prunes a single layer at each ratio and measures total time
// and accuracy for w images on the instance — one sub-figure of
// Figure 6/7.
func (h *Harness) LayerSweep(ctx context.Context, layer string, ratios []float64, inst *cloud.Instance, w int64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ratios))
	for _, r := range ratios {
		d := prune.NewDegree(layer, r)
		sec, err := h.TotalSeconds(ctx, d, inst, 0, w)
		if err != nil {
			return nil, err
		}
		acc, err := h.Accuracy(ctx, d)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Ratio: r, Minutes: sec / 60, Top1: acc.Top1, Top5: acc.Top5})
	}
	return out, nil
}

// SingleInferencePoint is one x-position of Figure 4.
type SingleInferencePoint struct {
	Ratio   float64
	Seconds float64
}

// SingleInferenceSweep measures batch-1 latency under uniform pruning of
// the given layers at each ratio (Figure 4).
func (h *Harness) SingleInferenceSweep(ctx context.Context, layers []string, ratios []float64, inst *cloud.Instance) ([]SingleInferencePoint, error) {
	out := make([]SingleInferencePoint, 0, len(ratios))
	for _, r := range ratios {
		t, err := h.BatchSeconds(ctx, prune.Uniform(layers, r), inst, 1, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, SingleInferencePoint{Ratio: r, Seconds: t})
	}
	return out, nil
}

// SaturationPoint is one x-position of Figure 5.
type SaturationPoint struct {
	Parallel int
	Seconds  float64
}

// SaturationSweep measures total time for w images at each parallel
// inference count on one GPU of the instance (Figure 5).
func (h *Harness) SaturationSweep(ctx context.Context, parallel []int, inst *cloud.Instance, w int64) ([]SaturationPoint, error) {
	out := make([]SaturationPoint, 0, len(parallel))
	for _, b := range parallel {
		bt, err := h.BatchSeconds(ctx, prune.Degree{}, inst, 1, b)
		if err != nil {
			return nil, err
		}
		out = append(out, SaturationPoint{Parallel: b, Seconds: math.Ceil(float64(w)/float64(b)) * bt})
	}
	return out, nil
}

// SaturationBatch probes the sweep for the knee: the smallest parallel
// count whose total time is within tol of the fully saturated time.
func SaturationBatch(points []SaturationPoint, tol float64) int {
	if len(points) == 0 {
		return 0
	}
	final := points[len(points)-1].Seconds
	for _, p := range points {
		if (p.Seconds-final)/final <= tol {
			return p.Parallel
		}
	}
	return points[len(points)-1].Parallel
}
