package measure

import (
	"context"
	"math"
	"testing"

	"ccperf/internal/cloud"
	"ccperf/internal/models"
	"ccperf/internal/prune"
)

func harness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness(models.CaffenetName)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func inst(t *testing.T, name string) *cloud.Instance {
	t.Helper()
	i, err := cloud.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func TestNewHarnessUnknownModel(t *testing.T) {
	if _, err := NewHarness("vgg"); err == nil {
		t.Fatal("expected error for uncalibrated model")
	}
}

func TestTotalSecondsNear19Min(t *testing.T) {
	h := harness(t)
	sec, err := h.TotalSeconds(context.Background(), prune.Degree{}, inst(t, "p2.xlarge"), 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	// Jittered min over 3 reps sits within a few percent of 19 min.
	if sec/60 < 18.5 || sec/60 > 19.8 {
		t.Fatalf("total = %v min, want ~19", sec/60)
	}
}

func TestRunThreeTakeMin(t *testing.T) {
	// More reps can only lower the measured minimum.
	h1 := harness(t)
	h1.Reps = 1
	h9 := harness(t)
	h9.Reps = 9
	p := inst(t, "p2.xlarge")
	a, err := h1.BatchSeconds(context.Background(), prune.Degree{}, p, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h9.BatchSeconds(context.Background(), prune.Degree{}, p, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if b > a {
		t.Fatalf("min over 9 reps (%v) exceeds min over 1 rep (%v)", b, a)
	}
}

func TestRecordFields(t *testing.T) {
	h := harness(t)
	r, err := h.Record(context.Background(), prune.NewDegree("conv1", 0.2, "conv2", 0.2), inst(t, "p2.xlarge"), 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds <= 0 || r.Cost <= 0 {
		t.Fatalf("record = %+v", r)
	}
	if r.Top1 <= 0 || r.Top5 <= r.Top1 {
		t.Fatalf("accuracy = %v/%v", r.Top1, r.Top5)
	}
	wantCost := math.Ceil(r.Seconds) * 0.9 / 3600
	if math.Abs(r.Cost-wantCost) > 1e-9 {
		t.Fatalf("cost = %v, want %v", r.Cost, wantCost)
	}
	if r.Label != "conv1@20+conv2@20/p2.xlarge" {
		t.Fatalf("label = %q", r.Label)
	}
}

func TestLayerSweepMonotoneTime(t *testing.T) {
	h := harness(t)
	pts, err := h.LayerSweep(context.Background(), "conv2", prune.Range(0, 0.9, 0.1), inst(t, "p2.xlarge"), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Minutes < 18.5 || pts[0].Minutes > 19.8 {
		t.Fatalf("unpruned = %v min", pts[0].Minutes)
	}
	last := pts[len(pts)-1]
	if last.Minutes > 14.6 {
		t.Fatalf("conv2@90%% = %v min, want ~14", last.Minutes)
	}
	// Accuracy flat through the sweet-spot then dropping.
	if pts[5].Top5 != pts[0].Top5 {
		t.Errorf("conv2@50%% top5 = %v, want baseline %v", pts[5].Top5, pts[0].Top5)
	}
	if last.Top5 >= pts[0].Top5 {
		t.Error("deep pruning must reduce accuracy")
	}
}

func TestSingleInferenceSweepEndpoints(t *testing.T) {
	h := harness(t)
	pts, err := h.SingleInferenceSweep(context.Background(), models.CaffenetConvNames(), prune.Range(0, 0.9, 0.1), inst(t, "p2.xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[0].Seconds-0.09) > 0.01 {
		t.Fatalf("unpruned latency = %v, want ~0.09", pts[0].Seconds)
	}
	if math.Abs(pts[len(pts)-1].Seconds-0.05) > 0.01 {
		t.Fatalf("90%% latency = %v, want ~0.05", pts[len(pts)-1].Seconds)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Seconds > pts[i-1].Seconds {
			t.Fatalf("latency must decrease with pruning at %d", i)
		}
	}
}

func TestSaturationSweepAndKnee(t *testing.T) {
	h := harness(t)
	pts, err := h.SaturationSweep(context.Background(), []int{1, 10, 50, 100, 200, 300, 600, 1200, 2000}, inst(t, "p2.xlarge"), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone up to batch-count quantization (the last batch overshoots
	// the workload by up to b−1 images, a visible ripple past saturation).
	for i := 1; i < len(pts); i++ {
		if pts[i].Seconds > pts[i-1].Seconds*1.02 {
			t.Fatalf("saturation curve not monotone at %d", i)
		}
	}
	knee := SaturationBatch(pts, 0.01)
	// Figure 5: ≈300 parallel inferences saturate the GPU.
	if knee < 100 || knee > 600 {
		t.Fatalf("saturation knee = %d, want ~300", knee)
	}
	if SaturationBatch(nil, 0.01) != 0 {
		t.Fatal("empty sweep knee must be 0")
	}
}

func TestLayerDistributionMatchesFigure3(t *testing.T) {
	h := harness(t)
	net := models.Caffenet()
	if err := net.Init(1); err != nil {
		t.Fatal(err)
	}
	shares, err := h.LayerDistribution(context.Background(), net, prune.Degree{}, inst(t, "p2.xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]float64{}
	total := 0.0
	for _, s := range shares {
		m[s.Name] = s.Share
		total += s.Share
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("shares sum = %v", total)
	}
	if math.Abs(m["conv1"]-0.51) > 0.005 {
		t.Fatalf("conv1 share = %v, want 0.51", m["conv1"])
	}
}

func TestPerfAdapterConsistentWithTotalSeconds(t *testing.T) {
	h := harness(t)
	p := inst(t, "p2.xlarge")
	d := prune.NewDegree("conv2", 0.5)
	perf := h.Perf(d, 0)
	est, err := cloud.EstimateRun(cloud.NewConfig(p), 50_000, perf)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := h.TotalSeconds(context.Background(), d, p, 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	// Perf (analytical path) is jitter-free; measured path takes min over
	// jittered reps, so they agree within the jitter amplitude.
	if math.Abs(est.Seconds-direct)/direct > 0.05 {
		t.Fatalf("analytical %v vs measured %v", est.Seconds, direct)
	}
}
