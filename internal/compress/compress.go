// Package compress implements the two accuracy-tuning techniques the paper
// surveys alongside pruning (Section 2.1): quantization — reducing the bit
// width of weight values [Gong et al., Zhou et al.] — and weight sharing —
// clustering weights to a small codebook [Abdel-Hamid et al.]. Both are
// real transforms on weight matrices, so their accuracy impact can be
// measured on the empirically trained network; both reduce memory (and
// quantization reduces time only on hardware with low-precision support,
// which the paper notes the K80/M60 generation lacks).
package compress

import (
	"fmt"
	"math"
	"sort"

	"ccperf/internal/nn"
	"ccperf/internal/tensor"
)

// Quantize snaps every weight to a symmetric uniform grid with 2^bits
// levels spanning [-max|w|, +max|w|]. bits must be in [1,32]; 32 is a
// no-op. Exact zeros (pruned weights) stay exactly zero, so quantization
// composes with pruning.
func Quantize(w *tensor.Matrix, bits int) error {
	if bits < 1 || bits > 32 {
		return fmt.Errorf("compress: bits %d out of [1,32]", bits)
	}
	if bits == 32 {
		return nil
	}
	var mx float32
	for _, v := range w.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return nil
	}
	// Standard symmetric quantizer: indices k ∈ [−(2^(b−1)−1), +(2^(b−1)−1)]
	// with max|w| mapping to the largest index. Because the extremes land
	// on integer indices (not half-integers) the transform is numerically
	// idempotent. bits=1 degenerates to the sign grid {−max, 0, +max}.
	half := float64(int64(1)<<(bits-1) - 1)
	if bits == 1 {
		half = 1
	}
	delta := float64(mx) / half
	for i, v := range w.Data {
		if v == 0 {
			continue
		}
		k := math.Round(float64(v) / delta)
		if k > half {
			k = half
		} else if k < -half {
			k = -half
		}
		w.Data[i] = float32(k * delta)
	}
	return nil
}

// QuantizedBytes returns the storage footprint of the matrix at the given
// bit width (plus one float32 scale).
func QuantizedBytes(w *tensor.Matrix, bits int) int64 {
	return (int64(len(w.Data))*int64(bits)+7)/8 + 4
}

// WeightShare clusters the non-zero weights into at most k shared values
// with deterministic 1-D k-means (quantile initialization) and replaces
// each weight by its centroid. It returns the codebook actually used.
// Pruned (zero) weights are left untouched and excluded from clustering.
func WeightShare(w *tensor.Matrix, k, iters int) ([]float32, error) {
	if k < 1 {
		return nil, fmt.Errorf("compress: k %d < 1", k)
	}
	if iters < 1 {
		iters = 10
	}
	var vals []float64
	for _, v := range w.Data {
		if v != 0 {
			vals = append(vals, float64(v))
		}
	}
	if len(vals) == 0 {
		return nil, nil
	}
	sort.Float64s(vals)
	if k >= len(vals) {
		// Every distinct weight is its own centroid: identity transform.
		book := make([]float32, 0, len(vals))
		seen := map[float64]bool{}
		for _, v := range vals {
			if !seen[v] {
				seen[v] = true
				book = append(book, float32(v))
			}
		}
		return book, nil
	}
	// Quantile initialization over the sorted values.
	centroids := make([]float64, k)
	for i := range centroids {
		pos := float64(i) / float64(k-1+boolToInt(k == 1))
		idx := int(pos * float64(len(vals)-1))
		centroids[i] = vals[idx]
	}
	assign := make([]int, len(vals))
	for it := 0; it < iters; it++ {
		changed := false
		// Assignment: values are sorted, centroids stay sorted, so a
		// two-pointer sweep assigns in O(n + k).
		c := 0
		for i, v := range vals {
			for c+1 < k && math.Abs(centroids[c+1]-v) <= math.Abs(centroids[c]-v) {
				c++
			}
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		// Update.
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range vals {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for j := range centroids {
			if counts[j] > 0 {
				centroids[j] = sums[j] / float64(counts[j])
			}
		}
		sort.Float64s(centroids)
		if !changed && it > 0 {
			break
		}
	}
	// Replace weights by nearest centroid.
	for i, v := range w.Data {
		if v == 0 {
			continue
		}
		w.Data[i] = float32(nearest(centroids, float64(v)))
	}
	book := make([]float32, k)
	for i, c := range centroids {
		book[i] = float32(c)
	}
	return book, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// nearest returns the closest value in sorted centroids to v.
func nearest(centroids []float64, v float64) float64 {
	i := sort.SearchFloat64s(centroids, v)
	if i == 0 {
		return centroids[0]
	}
	if i == len(centroids) {
		return centroids[len(centroids)-1]
	}
	if v-centroids[i-1] <= centroids[i]-v {
		return centroids[i-1]
	}
	return centroids[i]
}

// SharedBytes returns the storage footprint under weight sharing: an index
// of ⌈log2 k⌉ bits per weight plus the float32 codebook.
func SharedBytes(w *tensor.Matrix, k int) int64 {
	if k < 1 {
		return 0
	}
	bits := int64(math.Ceil(math.Log2(float64(k))))
	if bits < 1 {
		bits = 1
	}
	return (int64(len(w.Data))*bits+7)/8 + int64(k)*4
}

// DistinctValues counts the distinct non-zero weight values — after
// WeightShare(k) it is at most k.
func DistinctValues(w *tensor.Matrix) int {
	seen := map[float32]bool{}
	for _, v := range w.Data {
		if v != 0 {
			seen[v] = true
		}
	}
	return len(seen)
}

// TimeSpeedup returns the execution speedup quantization yields at the
// given bit width when the hardware supports fast low-precision math, and
// 1.0 when it does not — the paper's observation that quantization
// "improves the execution time if there is hardware support" (the K80/M60
// generation has none, so on Table 3's instances quantization saves memory
// only).
func TimeSpeedup(bits int, hardwareSupport bool) float64 {
	if !hardwareSupport || bits >= 32 || bits < 1 {
		return 1
	}
	return 32 / float64(bits)
}

// QuantizeNet quantizes every prunable layer of a network to the given bit
// width and rebuilds their execution structures. Composes with pruning
// (zeros survive).
func QuantizeNet(n *nn.Net, bits int) error {
	for _, p := range n.Prunables() {
		w := p.Weights()
		if w == nil {
			return fmt.Errorf("compress: layer %q not initialized", p.Name())
		}
		if err := Quantize(w, bits); err != nil {
			return fmt.Errorf("compress: layer %q: %w", p.Name(), err)
		}
		p.Rebuild()
	}
	return nil
}

// ShareNetWeights applies weight sharing with a k-value codebook to every
// prunable layer of a network.
func ShareNetWeights(n *nn.Net, k, iters int) error {
	for _, p := range n.Prunables() {
		w := p.Weights()
		if w == nil {
			return fmt.Errorf("compress: layer %q not initialized", p.Name())
		}
		if _, err := WeightShare(w, k, iters); err != nil {
			return fmt.Errorf("compress: layer %q: %w", p.Name(), err)
		}
		p.Rebuild()
	}
	return nil
}

// NetBytes reports a network's weight storage at full precision, under
// quantization, and under weight sharing — the memory column of the
// paper's Section 2.1 comparison.
func NetBytes(n *nn.Net, bits, k int) (full, quantized, shared int64) {
	for _, p := range n.Prunables() {
		w := p.Weights()
		if w == nil {
			continue
		}
		full += int64(4 * len(w.Data))
		quantized += QuantizedBytes(w, bits)
		shared += SharedBytes(w, k)
	}
	return full, quantized, shared
}
