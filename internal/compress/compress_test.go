package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ccperf/internal/dataset"
	"ccperf/internal/nn"
	"ccperf/internal/tensor"
	"ccperf/internal/train"
)

func randMatrix(rows, cols int, seed int64) *tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	w := tensor.NewMatrix(rows, cols)
	for i := range w.Data {
		w.Data[i] = float32(rng.NormFloat64())
	}
	return w
}

func TestQuantizeValidation(t *testing.T) {
	w := randMatrix(4, 4, 1)
	if err := Quantize(w, 0); err == nil {
		t.Fatal("expected error for bits=0")
	}
	if err := Quantize(w, 33); err == nil {
		t.Fatal("expected error for bits=33")
	}
}

func TestQuantize32IsNoop(t *testing.T) {
	w := randMatrix(8, 8, 2)
	orig := w.Clone()
	if err := Quantize(w, 32); err != nil {
		t.Fatal(err)
	}
	for i := range w.Data {
		if w.Data[i] != orig.Data[i] {
			t.Fatal("32-bit quantization must be identity")
		}
	}
}

func TestQuantizeErrorShrinksWithBits(t *testing.T) {
	prev := math.Inf(1)
	for _, bits := range []int{2, 4, 8, 16} {
		w := randMatrix(32, 32, 3)
		orig := w.Clone()
		if err := Quantize(w, bits); err != nil {
			t.Fatal(err)
		}
		var mse float64
		for i := range w.Data {
			d := float64(w.Data[i] - orig.Data[i])
			mse += d * d
		}
		if mse >= prev {
			t.Fatalf("MSE did not shrink at %d bits: %v >= %v", bits, mse, prev)
		}
		prev = mse
	}
}

func TestQuantizePreservesZeros(t *testing.T) {
	w := randMatrix(8, 8, 4)
	w.Data[3], w.Data[17] = 0, 0
	if err := Quantize(w, 4); err != nil {
		t.Fatal(err)
	}
	if w.Data[3] != 0 || w.Data[17] != 0 {
		t.Fatal("pruned zeros must survive quantization")
	}
}

func TestQuantizeLevelCount(t *testing.T) {
	w := randMatrix(64, 64, 5)
	if err := Quantize(w, 3); err != nil {
		t.Fatal(err)
	}
	// 3 bits → at most 2³−1 = 7 grid steps on each side of zero; distinct
	// non-zero values ≤ 8 (grid points within range, excluding 0).
	if n := DistinctValues(w); n > 8 {
		t.Fatalf("3-bit quantization left %d distinct values", n)
	}
}

func TestQuantizedBytes(t *testing.T) {
	w := tensor.NewMatrix(10, 10)
	if got := QuantizedBytes(w, 8); got != 100+4 {
		t.Fatalf("8-bit bytes = %d", got)
	}
	if got := QuantizedBytes(w, 1); got != 13+4 {
		t.Fatalf("1-bit bytes = %d", got)
	}
}

func TestWeightShareReducesDistinctValues(t *testing.T) {
	w := randMatrix(32, 32, 6)
	book, err := WeightShare(w, 16, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(book) != 16 {
		t.Fatalf("codebook size = %d", len(book))
	}
	if n := DistinctValues(w); n > 16 {
		t.Fatalf("%d distinct values after sharing to 16", n)
	}
	// Codebook sorted ascending.
	for i := 1; i < len(book); i++ {
		if book[i] < book[i-1] {
			t.Fatal("codebook not sorted")
		}
	}
}

func TestWeightSharePreservesZerosAndMean(t *testing.T) {
	w := randMatrix(16, 16, 7)
	w.Data[0], w.Data[100] = 0, 0
	var meanBefore float64
	for _, v := range w.Data {
		meanBefore += float64(v)
	}
	if _, err := WeightShare(w, 8, 20); err != nil {
		t.Fatal(err)
	}
	if w.Data[0] != 0 || w.Data[100] != 0 {
		t.Fatal("pruned zeros must survive weight sharing")
	}
	var meanAfter float64
	for _, v := range w.Data {
		meanAfter += float64(v)
	}
	// k-means to 8 clusters keeps the mean within a reasonable tolerance.
	if math.Abs(meanAfter-meanBefore)/float64(len(w.Data)) > 0.05 {
		t.Fatalf("mean drifted: %v → %v", meanBefore, meanAfter)
	}
}

func TestWeightShareKTooLargeIsIdentity(t *testing.T) {
	w := tensor.MatrixFromSlice([]float32{1, 2, 3, 0}, 2, 2)
	book, err := WeightShare(w, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(book) != 3 {
		t.Fatalf("identity codebook = %v", book)
	}
	want := []float32{1, 2, 3, 0}
	for i := range want {
		if w.Data[i] != want[i] {
			t.Fatal("k ≥ distinct values must be identity")
		}
	}
}

func TestWeightShareValidation(t *testing.T) {
	w := randMatrix(4, 4, 8)
	if _, err := WeightShare(w, 0, 5); err == nil {
		t.Fatal("expected error for k=0")
	}
	empty := tensor.NewMatrix(4, 4)
	book, err := WeightShare(empty, 4, 5)
	if err != nil || book != nil {
		t.Fatalf("all-zero matrix: book=%v err=%v", book, err)
	}
}

func TestSharedBytes(t *testing.T) {
	w := tensor.NewMatrix(100, 100) // 10 000 weights
	// k=16 → 4 bits/weight = 5000 bytes + 64-byte codebook.
	if got := SharedBytes(w, 16); got != 5000+64 {
		t.Fatalf("SharedBytes = %d", got)
	}
	if SharedBytes(w, 0) != 0 {
		t.Fatal("k=0 bytes")
	}
}

func TestTimeSpeedup(t *testing.T) {
	if TimeSpeedup(16, false) != 1 {
		t.Fatal("no hardware support ⇒ no speedup (the paper's K80/M60 case)")
	}
	if TimeSpeedup(16, true) != 2 || TimeSpeedup(8, true) != 4 {
		t.Fatal("supported speedups wrong")
	}
	if TimeSpeedup(32, true) != 1 {
		t.Fatal("32-bit is baseline")
	}
}

// The headline behaviour: on the really trained network, 8-bit
// quantization and 32-value sharing barely move accuracy, while 2-bit
// quantization damages it — quantization has its own sweet-spot, mirroring
// pruning's.
func TestCompressionAccuracyOnTrainedNet(t *testing.T) {
	shape := nn.Shape{C: 1, H: 16, W: 16}
	ds, err := dataset.Synthetic(dataset.Config{
		Classes: 10, PerClass: 60, Shape: shape, Noise: 1.2, Shift: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, val := ds.Split(0.75)
	m, err := train.New(train.Config{Input: shape, Conv1: 8, Conv2: 16, Classes: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(tr, train.DefaultOpts()); err != nil {
		t.Fatal(err)
	}
	base, _, err := m.Evaluate(val, 3)
	if err != nil {
		t.Fatal(err)
	}

	quantized := func(bits int) float64 {
		c := m.Clone()
		for layer := 1; layer <= 2; layer++ {
			w, err := c.ConvWeights(layer)
			if err != nil {
				t.Fatal(err)
			}
			if err := Quantize(w, bits); err != nil {
				t.Fatal(err)
			}
		}
		a, _, err := c.Evaluate(val, 3)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if a8 := quantized(8); base-a8 > 0.05 {
		t.Errorf("8-bit quantization cost %.2f accuracy (%.2f→%.2f)", base-a8, base, a8)
	}
	// 2-bit (ternary-like) quantization can even act as a regularizer on
	// this small net; 1 bit zeroes almost every weight and must collapse.
	if a1 := quantized(1); base-a1 < 0.05 {
		t.Errorf("1-bit quantization cost only %.2f accuracy — too gentle to be believable", base-a1)
	}

	shared := m.Clone()
	for layer := 1; layer <= 2; layer++ {
		w, _ := shared.ConvWeights(layer)
		if _, err := WeightShare(w, 32, 20); err != nil {
			t.Fatal(err)
		}
	}
	aShared, _, err := shared.Evaluate(val, 3)
	if err != nil {
		t.Fatal(err)
	}
	if base-aShared > 0.05 {
		t.Errorf("32-value weight sharing cost %.2f accuracy (%.2f→%.2f)", base-aShared, base, aShared)
	}
}

// Property: quantization is idempotent — quantizing twice at the same bit
// width changes nothing the second time.
func TestQuantizeIdempotentProperty(t *testing.T) {
	f := func(seed int64, bitsRaw uint8) bool {
		bits := int(bitsRaw%8) + 2
		w := randMatrix(8, 8, seed)
		if err := Quantize(w, bits); err != nil {
			return false
		}
		once := w.Clone()
		if err := Quantize(w, bits); err != nil {
			return false
		}
		for i := range w.Data {
			if math.Abs(float64(w.Data[i]-once.Data[i])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeNetAndShareNet(t *testing.T) {
	mk := func() *nn.Net {
		n := nn.NewNet("q", nn.Shape{C: 2, H: 8, W: 8})
		n.Add(
			nn.NewConv("c1", 4, 3, 3, 1, 1, 1, 1, 1),
			nn.NewFlatten("f"),
			nn.NewFC("fc", 3),
		)
		if err := n.Init(6); err != nil {
			t.Fatal(err)
		}
		return n
	}
	n := mk()
	if err := QuantizeNet(n, 4); err != nil {
		t.Fatal(err)
	}
	for _, p := range n.Prunables() {
		if d := DistinctValues(p.Weights()); d > 16 {
			t.Fatalf("%s has %d distinct values after 4-bit quantization", p.Name(), d)
		}
	}
	if err := QuantizeNet(n, 0); err == nil {
		t.Fatal("expected error for bits=0")
	}

	n2 := mk()
	if err := ShareNetWeights(n2, 8, 10); err != nil {
		t.Fatal(err)
	}
	for _, p := range n2.Prunables() {
		if d := DistinctValues(p.Weights()); d > 8 {
			t.Fatalf("%s has %d distinct values after sharing", p.Name(), d)
		}
	}

	full, q, s := NetBytes(mk(), 8, 16)
	if full <= 0 || q >= full || s >= full {
		t.Fatalf("bytes = %d/%d/%d", full, q, s)
	}
}

func TestQuantizeNetUninitialized(t *testing.T) {
	n := nn.NewNet("u", nn.Shape{C: 1, H: 8, W: 8})
	n.Add(nn.NewConv("c", 2, 3, 3, 1, 1, 1, 1, 1))
	if err := QuantizeNet(n, 8); err == nil {
		t.Fatal("expected error for uninitialized layer")
	}
	if err := ShareNetWeights(n, 8, 5); err == nil {
		t.Fatal("expected error for uninitialized layer")
	}
}
