package accuracy

import (
	"testing"

	"ccperf/internal/prune"
)

func empirical(t *testing.T) *Empirical {
	t.Helper()
	return NewEmpirical(DefaultEmpiricalConfig())
}

func TestEmpiricalBaselineLearns(t *testing.T) {
	e := empirical(t)
	b := e.Baseline()
	// 10 classes: chance is 10% Top-1 / 30% Top-3. A trained model does
	// much better but stays imperfect so pruning has headroom to hurt.
	if b.Top1 < 0.4 || b.Top1 > 0.99 {
		t.Fatalf("baseline top1 = %v, want learnable-but-imperfect", b.Top1)
	}
	if b.Top5 < b.Top1 {
		t.Fatalf("topK (%v) < top1 (%v)", b.Top5, b.Top1)
	}
	if e.ModelName() != "empirical-smallcnn" {
		t.Fatal("model name")
	}
}

func TestEmpiricalSweetSpotShape(t *testing.T) {
	// Observations 1 and 2, measured on a really-pruned really-trained
	// network: mild pruning of the input convolution costs little
	// accuracy (sweet-spot), deep pruning collapses it — while conv2
	// tolerates even deep pruning, mirroring the paper's finding that
	// pruning impact differs sharply across layers.
	e := empirical(t)
	base := e.Baseline()
	mild, err := e.Evaluate(prune.NewDegree("conv1", 0.25))
	if err != nil {
		t.Fatal(err)
	}
	deep, err := e.Evaluate(prune.NewDegree("conv1", 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if base.Top1-mild.Top1 > 0.12 {
		t.Errorf("mild conv1 prune cost %.2f top1 (%.2f→%.2f): no sweet-spot", base.Top1-mild.Top1, base.Top1, mild.Top1)
	}
	if deep.Top1 >= mild.Top1 {
		t.Errorf("deep prune (%.2f) not worse than mild (%.2f)", deep.Top1, mild.Top1)
	}
	if base.Top1-deep.Top1 < 0.15 {
		t.Errorf("deep conv1 prune only cost %.2f top1, want a collapse", base.Top1-deep.Top1)
	}
	// conv2 (over-provisioned, deeper) keeps a much wider sweet-spot.
	conv2deep, err := e.Evaluate(prune.NewDegree("conv2", 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if conv2deep.Top1 <= deep.Top1 {
		t.Errorf("conv2@90 (%.2f) should tolerate pruning better than conv1@90 (%.2f)", conv2deep.Top1, deep.Top1)
	}
}

func TestEmpiricalCacheAndDeterminism(t *testing.T) {
	e := empirical(t)
	d := prune.NewDegree("conv1", 0.5)
	a1, err := e.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("evaluation must be deterministic/cached")
	}
	// A second evaluator with the same config reproduces the result.
	e2 := NewEmpirical(DefaultEmpiricalConfig())
	a3, err := e2.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a3 {
		t.Fatal("fresh evaluator differs for same config")
	}
}

func TestEmpiricalUnknownLayer(t *testing.T) {
	e := empirical(t)
	if _, err := e.Evaluate(prune.NewDegree("conv7", 0.5)); err == nil {
		t.Fatal("expected error for unknown layer")
	}
	if _, err := e.Evaluate(prune.NewDegree("conv1", 2.0)); err == nil {
		t.Fatal("expected error for bad ratio")
	}
}

func TestEmpiricalMultiLayer(t *testing.T) {
	e := empirical(t)
	both, err := e.Evaluate(prune.NewDegree("conv1", 0.25, "conv2", 0.25))
	if err != nil {
		t.Fatal(err)
	}
	one, err := e.Evaluate(prune.NewDegree("conv2", 0.25))
	if err != nil {
		t.Fatal(err)
	}
	// Pruning more layers can only hurt (allowing small measurement slack
	// on a 150-image validation set).
	if both.Top1 > one.Top1+0.05 {
		t.Fatalf("two-layer prune (%.2f) better than one-layer (%.2f)", both.Top1, one.Top1)
	}
}
