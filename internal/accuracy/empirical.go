package accuracy

import (
	"fmt"
	"sync"

	"ccperf/internal/dataset"
	"ccperf/internal/nn"
	"ccperf/internal/prune"
	"ccperf/internal/train"
)

// Empirical evaluates accuracy by actually pruning a CNN trained in Go on
// a synthetic dataset and re-measuring validation accuracy — the ground-
// truth counterpart to the Calibrated evaluator. Layer names are "conv1"
// and "conv2" (matching the small network's two convolutions); other layer
// names in a degree are rejected.
type Empirical struct {
	// TopKK is the k used for the "Top-5-like" metric; with 10 synthetic
	// classes the default k=3 plays the role Top-5 plays for 1000
	// ImageNet classes.
	TopKK int

	once     sync.Once
	initFn   func()
	initErr  error
	model    *train.SmallCNN
	val      *dataset.Dataset
	baseline TopK
	method   prune.Method

	mu    sync.Mutex
	cache map[string]TopK
}

// EmpiricalConfig parameterizes the trained substrate.
type EmpiricalConfig struct {
	Classes  int
	PerClass int
	Noise    float64
	Seed     int64
	Method   prune.Method
	Epochs   int
}

// DefaultEmpiricalConfig gives a task hard enough that pruning has a
// visible accuracy response (~70 % Top-1 at baseline).
func DefaultEmpiricalConfig() EmpiricalConfig {
	return EmpiricalConfig{Classes: 10, PerClass: 60, Noise: 1.2, Seed: 11, Method: prune.L1Filter, Epochs: 6}
}

// NewEmpirical constructs the evaluator; training happens lazily on first
// use (it costs a few hundred milliseconds).
func NewEmpirical(cfg EmpiricalConfig) *Empirical {
	e := &Empirical{TopKK: 3, cache: map[string]TopK{}, method: cfg.Method}
	e.once = sync.Once{}
	e.init(cfg)
	return e
}

func (e *Empirical) init(cfg EmpiricalConfig) {
	e.initFn = func() {
		shape := nn.Shape{C: 1, H: 16, W: 16}
		ds, err := dataset.Synthetic(dataset.Config{
			Classes: cfg.Classes, PerClass: cfg.PerClass,
			Shape: shape, Noise: cfg.Noise, Shift: 2, Seed: cfg.Seed,
		})
		if err != nil {
			e.initErr = err
			return
		}
		tr, val := ds.Split(0.75)
		m, err := train.New(train.Config{Input: shape, Conv1: 8, Conv2: 16, Classes: cfg.Classes, Seed: cfg.Seed + 1})
		if err != nil {
			e.initErr = err
			return
		}
		opts := train.DefaultOpts()
		if cfg.Epochs > 0 {
			opts.Epochs = cfg.Epochs
		}
		if _, err := m.Train(tr, opts); err != nil {
			e.initErr = err
			return
		}
		top1, topk, err := m.Evaluate(val, e.TopKK)
		if err != nil {
			e.initErr = err
			return
		}
		e.model, e.val = m, val
		e.baseline = TopK{Top1: top1, Top5: topk}
	}
}

// ModelName implements Evaluator.
func (e *Empirical) ModelName() string { return "empirical-smallcnn" }

// ensure trains the substrate once.
func (e *Empirical) ensure() error {
	e.once.Do(e.initFn)
	return e.initErr
}

// Baseline implements Evaluator. It panics only if training is impossible,
// which the constructor's configuration prevents; errors surface via
// Evaluate.
func (e *Empirical) Baseline() TopK {
	if err := e.ensure(); err != nil {
		return TopK{}
	}
	return e.baseline
}

// Evaluate implements Evaluator: clone the trained network, apply the
// degree's ratios to conv1/conv2 with real pruning, and re-measure.
func (e *Empirical) Evaluate(d prune.Degree) (TopK, error) {
	if err := e.ensure(); err != nil {
		return TopK{}, err
	}
	if err := d.Validate(); err != nil {
		return TopK{}, err
	}
	label := d.Label()
	e.mu.Lock()
	if a, ok := e.cache[label]; ok {
		e.mu.Unlock()
		return a, nil
	}
	e.mu.Unlock()

	m := e.model.Clone()
	for layer, ratio := range d.Ratios {
		if ratio == 0 {
			continue
		}
		var idx int
		switch layer {
		case "conv1":
			idx = 1
		case "conv2":
			idx = 2
		default:
			return TopK{}, fmt.Errorf("accuracy: empirical evaluator has no layer %q (use conv1/conv2)", layer)
		}
		if err := m.PruneConv(idx, ratio, e.method); err != nil {
			return TopK{}, err
		}
	}
	top1, topk, err := m.Evaluate(e.val, e.TopKK)
	if err != nil {
		return TopK{}, err
	}
	a := TopK{Top1: top1, Top5: topk}
	e.mu.Lock()
	e.cache[label] = a
	e.mu.Unlock()
	return a, nil
}
