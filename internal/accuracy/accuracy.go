// Package accuracy models CNN inference accuracy as a function of the
// degree of pruning. Two evaluators implement one interface:
//
//   - Calibrated: piecewise "sweet-spot" curves fit to the paper's measured
//     Figures 6–8 (flat until a per-layer threshold, then a monotone drop),
//     with a multi-layer interaction penalty fit to Figure 8. This is what
//     every paper experiment uses.
//   - Empirical (empirical.go): a small CNN actually trained in Go on a
//     synthetic dataset, then really pruned and re-evaluated, demonstrating
//     that the sweet-spot phenomenon emerges from real pruning rather than
//     being assumed.
package accuracy

import (
	"fmt"
	"math"

	"ccperf/internal/models"
	"ccperf/internal/prune"
)

// TopK holds the two accuracy metrics of Section 3.2.2, as fractions.
type TopK struct {
	Top1 float64
	Top5 float64
}

// Valid reports whether both metrics are inside [0,1].
func (a TopK) Valid() bool {
	return a.Top1 >= 0 && a.Top1 <= 1 && a.Top5 >= 0 && a.Top5 <= 1 && a.Top1 <= a.Top5+1e-9
}

// Evaluator maps degrees of pruning to inference accuracy.
type Evaluator interface {
	// ModelName identifies the CNN this evaluator describes.
	ModelName() string
	// Baseline returns the unpruned accuracy.
	Baseline() TopK
	// Evaluate returns the accuracy of the model pruned by d.
	Evaluate(d prune.Degree) (TopK, error)
}

// LayerCurve is the calibrated single-layer response: accuracy stays at
// baseline while r ≤ Threshold (the sweet-spot region of Observation 1),
// then falls toward the floor, reaching it at r = 0.9 (the largest ratio
// the paper measures) and staying there beyond.
type LayerCurve struct {
	// Threshold is where the sweet-spot region ends.
	Threshold float64
	// Floor1 and Floor5 are the Top-1/Top-5 accuracies at r ≥ 0.9.
	Floor1, Floor5 float64
	// Exp shapes the drop; >1 means gradual first, steep later, matching
	// Figure 6's "gradual drop" after the sweet-spot.
	Exp float64
}

// drop returns how much accuracy (fraction) is lost at ratio r, given the
// baseline a0 and floor.
func (c LayerCurve) drop(r, a0, floor float64) float64 {
	if r <= c.Threshold {
		return 0
	}
	span := 0.9 - c.Threshold
	progress := (r - c.Threshold) / span
	if progress > 1 {
		progress = 1
	}
	return (a0 - floor) * math.Pow(progress, c.Exp)
}

// Calibrated is the measurement-fit evaluator for the two paper CNNs.
type Calibrated struct {
	model    string
	baseline TopK
	curves   map[string]LayerCurve
	fallback LayerCurve // for layers without an explicit curve
	// interAmp1/interAmp5 are the multi-layer interaction penalties
	// (accuracy points lost per (k_eff−1)^interExp, Figure 8).
	interAmp1, interAmp5, interExp float64
	// Quantum rounds evaluated accuracy (default 0.01: the paper reports
	// whole percents, which is why Figures 9–11 show vertical columns of
	// configurations sharing one accuracy value).
	Quantum float64
}

// NewCalibrated returns the calibrated evaluator for a paper model.
func NewCalibrated(model string) (*Calibrated, error) {
	switch model {
	case models.CaffenetName:
		return &Calibrated{
			model:    model,
			baseline: TopK{Top1: 0.57, Top5: 0.80},
			curves: map[string]LayerCurve{
				// conv1 sees the raw image: pruning it is fatal beyond the
				// sweet-spot — Top-5 falls 80 %→0 % by r=0.9 (Figure 6a).
				"conv1": {Threshold: 0.30, Floor1: 0.0, Floor5: 0.0, Exp: 1.6},
				// Deeper layers degrade to ~25 % Top-5 at r=0.9 (Figure 6).
				"conv2": {Threshold: 0.50, Floor1: 0.10, Floor5: 0.25, Exp: 1.5},
				"conv3": {Threshold: 0.50, Floor1: 0.10, Floor5: 0.25, Exp: 1.5},
				"conv4": {Threshold: 0.50, Floor1: 0.10, Floor5: 0.25, Exp: 1.5},
				"conv5": {Threshold: 0.50, Floor1: 0.10, Floor5: 0.25, Exp: 1.5},
			},
			fallback:  LayerCurve{Threshold: 0.50, Floor1: 0.10, Floor5: 0.25, Exp: 1.5},
			interAmp1: 0.07, interAmp5: 0.10, interExp: 0.42,
		}, nil
	case models.GooglenetName:
		return &Calibrated{
			model:    model,
			baseline: TopK{Top1: 0.66, Top5: 0.86},
			curves: map[string]LayerCurve{
				// Figure 7: first-stage layers keep accuracy until ~60 %.
				"conv1-7x7-s2":     {Threshold: 0.60, Floor1: 0.0, Floor5: 0.0, Exp: 1.6},
				"conv2-3x3":        {Threshold: 0.60, Floor1: 0.12, Floor5: 0.28, Exp: 1.5},
				"inception-3a-3x3": {Threshold: 0.60, Floor1: 0.15, Floor5: 0.32, Exp: 1.5},
				"inception-4d-5x5": {Threshold: 0.60, Floor1: 0.18, Floor5: 0.36, Exp: 1.5},
				"inception-4e-5x5": {Threshold: 0.60, Floor1: 0.18, Floor5: 0.36, Exp: 1.5},
				"inception-5a-3x3": {Threshold: 0.60, Floor1: 0.20, Floor5: 0.40, Exp: 1.5},
			},
			fallback:  LayerCurve{Threshold: 0.60, Floor1: 0.18, Floor5: 0.36, Exp: 1.5},
			interAmp1: 0.07, interAmp5: 0.10, interExp: 0.42,
		}, nil
	default:
		return nil, fmt.Errorf("accuracy: no calibration for model %q", model)
	}
}

// ModelName implements Evaluator.
func (c *Calibrated) ModelName() string { return c.model }

// Baseline implements Evaluator.
func (c *Calibrated) Baseline() TopK { return c.baseline }

// Curve returns the calibrated single-layer curve for a layer name.
func (c *Calibrated) Curve(layer string) LayerCurve {
	if cv, ok := c.curves[layer]; ok {
		return cv
	}
	return c.fallback
}

// Evaluate implements Evaluator: per-layer drops compose additively, plus
// an interaction penalty growing with the effective number of pruned
// layers k_eff = Σ min(r_l/θ_l, 1) — calibrated so that combining sweet-
// spot prunes of conv1+conv2 costs 10 Top-5 points and all five Caffenet
// conv layers cost 18 (Figure 8).
func (c *Calibrated) Evaluate(d prune.Degree) (TopK, error) {
	if err := d.Validate(); err != nil {
		return TopK{}, err
	}
	drop1, drop5 := 0.0, 0.0
	keff := 0.0
	for layer, r := range d.Ratios {
		if r <= 0 {
			continue
		}
		cv := c.Curve(layer)
		drop1 += cv.drop(r, c.baseline.Top1, cv.Floor1)
		drop5 += cv.drop(r, c.baseline.Top5, cv.Floor5)
		keff += math.Min(r/cv.Threshold, 1)
	}
	if keff > 1 {
		penalty := math.Pow(keff-1, c.interExp)
		drop1 += c.interAmp1 * penalty
		drop5 += c.interAmp5 * penalty
	}
	q := c.Quantum
	if q <= 0 {
		q = 0.01
	}
	a := TopK{
		Top1: quantize(clamp01(c.baseline.Top1-drop1), q),
		Top5: quantize(clamp01(c.baseline.Top5-drop5), q),
	}
	if a.Top1 > a.Top5 {
		a.Top1 = a.Top5
	}
	return a, nil
}

// quantize rounds v to the nearest multiple of q, dividing by the integer
// reciprocal so that e.g. quantize(0.57, 0.01) equals the literal 0.57.
func quantize(v, q float64) float64 { return math.Round(v/q) / math.Round(1/q) }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
