package accuracy

import (
	"math"
	"testing"
	"testing/quick"

	"ccperf/internal/models"
	"ccperf/internal/prune"
)

func caffenet(t *testing.T) *Calibrated {
	t.Helper()
	ev, err := NewCalibrated(models.CaffenetName)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func googlenet(t *testing.T) *Calibrated {
	t.Helper()
	ev, err := NewCalibrated(models.GooglenetName)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestUnknownModel(t *testing.T) {
	if _, err := NewCalibrated("resnet"); err == nil {
		t.Fatal("expected error for uncalibrated model")
	}
}

func TestBaselines(t *testing.T) {
	cn := caffenet(t)
	if b := cn.Baseline(); b.Top1 != 0.57 || b.Top5 != 0.80 {
		t.Fatalf("Caffenet baseline = %+v", b)
	}
	gn := googlenet(t)
	if b := gn.Baseline(); b.Top1 != 0.66 || b.Top5 != 0.86 {
		t.Fatalf("Googlenet baseline = %+v", b)
	}
	if cn.ModelName() != models.CaffenetName {
		t.Fatal("ModelName wrong")
	}
}

func TestSweetSpotFlat(t *testing.T) {
	// Observation 1: accuracy unchanged for prune ratios within the
	// sweet-spot (conv3 flat until 50%, Figure 6c).
	ev := caffenet(t)
	base := ev.Baseline()
	for _, r := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		a, err := ev.Evaluate(prune.NewDegree("conv3", r))
		if err != nil {
			t.Fatal(err)
		}
		if a != base {
			t.Errorf("conv3@%v = %+v, want baseline %+v", r, a, base)
		}
	}
	// Beyond the sweet-spot, accuracy drops.
	a, _ := ev.Evaluate(prune.NewDegree("conv3", 0.7))
	if a.Top5 >= base.Top5 {
		t.Errorf("conv3@0.7 top5 = %v, want < %v", a.Top5, base.Top5)
	}
}

func TestConv1FallsToZero(t *testing.T) {
	// Figure 6a: conv1 Top-5 falls from 80% to 0% at 90% pruning.
	ev := caffenet(t)
	a, err := ev.Evaluate(prune.NewDegree("conv1", 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Top5 > 0.01 || a.Top1 > 0.01 {
		t.Fatalf("conv1@90%% = %+v, want ~0", a)
	}
}

func TestOtherLayersFloorAt25(t *testing.T) {
	// Figure 6: other layers drop to ~25% Top-5 at 90% pruning.
	ev := caffenet(t)
	for _, layer := range []string{"conv2", "conv3", "conv4", "conv5"} {
		a, err := ev.Evaluate(prune.NewDegree(layer, 0.9))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Top5-0.25) > 0.02 {
			t.Errorf("%s@90%% top5 = %v, want ~0.25", layer, a.Top5)
		}
	}
}

func TestMonotoneInRatio(t *testing.T) {
	ev := caffenet(t)
	for _, layer := range []string{"conv1", "conv2"} {
		prev := 2.0
		for r := 0.0; r <= 0.95; r += 0.05 {
			a, err := ev.Evaluate(prune.NewDegree(layer, r))
			if err != nil {
				t.Fatal(err)
			}
			if a.Top5 > prev+1e-9 {
				t.Fatalf("%s: top5 not monotone at r=%v", layer, r)
			}
			prev = a.Top5
		}
	}
}

func TestFigure8MultiLayerAccuracy(t *testing.T) {
	// conv1@30+conv2@50 → Top-5 70% (10-point drop);
	// all five conv at sweet-spots → Top-5 62% (18-point drop).
	ev := caffenet(t)
	c12, err := ev.Evaluate(prune.NewDegree("conv1", 0.3, "conv2", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c12.Top5-0.70) > 0.015 {
		t.Errorf("conv1-2 top5 = %v, want 0.70", c12.Top5)
	}
	all, err := ev.Evaluate(prune.NewDegree(
		"conv1", 0.3, "conv2", 0.5, "conv3", 0.5, "conv4", 0.5, "conv5", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(all.Top5-0.62) > 0.015 {
		t.Errorf("all-conv top5 = %v, want 0.62", all.Top5)
	}
	if !(all.Top5 < c12.Top5 && c12.Top5 < ev.Baseline().Top5) {
		t.Error("multi-layer accuracy ordering broken")
	}
}

func TestGooglenetSweetSpotAt60(t *testing.T) {
	// Figure 7: Googlenet accuracy starts dropping only after 60% pruning.
	ev := googlenet(t)
	base := ev.Baseline()
	for _, layer := range models.GooglenetSelectedConvNames() {
		a, err := ev.Evaluate(prune.NewDegree(layer, 0.6))
		if err != nil {
			t.Fatal(err)
		}
		if a != base {
			t.Errorf("%s@60%% = %+v, want baseline", layer, a)
		}
		a, _ = ev.Evaluate(prune.NewDegree(layer, 0.8))
		if a.Top5 >= base.Top5 {
			t.Errorf("%s@80%% should drop below baseline", layer)
		}
	}
}

func TestTop1NeverExceedsTop5(t *testing.T) {
	ev := caffenet(t)
	f := func(r1, r2, r3 uint8) bool {
		d := prune.NewDegree(
			"conv1", float64(r1%10)/10,
			"conv2", float64(r2%10)/10,
			"conv3", float64(r3%10)/10,
		)
		a, err := ev.Evaluate(d)
		if err != nil {
			return false
		}
		return a.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding pruning to a second layer never increases accuracy.
func TestMultiLayerMonotoneProperty(t *testing.T) {
	ev := caffenet(t)
	f := func(r1, r2 uint8) bool {
		a := float64(r1%10) / 10
		b := float64(r2%10) / 10
		single, err := ev.Evaluate(prune.NewDegree("conv2", a))
		if err != nil {
			return false
		}
		both, err := ev.Evaluate(prune.NewDegree("conv2", a, "conv4", b))
		if err != nil {
			return false
		}
		return both.Top5 <= single.Top5+1e-9 && both.Top1 <= single.Top1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantization(t *testing.T) {
	ev := caffenet(t)
	a, err := ev.Evaluate(prune.NewDegree("conv2", 0.63))
	if err != nil {
		t.Fatal(err)
	}
	// Whole-percent quantization: value×100 must be an integer.
	for _, v := range []float64{a.Top1, a.Top5} {
		if math.Abs(v*100-math.Round(v*100)) > 1e-9 {
			t.Fatalf("accuracy %v not quantized to 1%%", v)
		}
	}
	// Custom quantum.
	ev.Quantum = 0.05
	a, _ = ev.Evaluate(prune.NewDegree("conv2", 0.63))
	if math.Abs(a.Top5*20-math.Round(a.Top5*20)) > 1e-9 {
		t.Fatalf("accuracy %v not quantized to 5%%", a.Top5)
	}
}

func TestInvalidDegree(t *testing.T) {
	ev := caffenet(t)
	if _, err := ev.Evaluate(prune.NewDegree("conv1", 1.5)); err == nil {
		t.Fatal("expected error for ratio > 1")
	}
}

func TestCurveLookup(t *testing.T) {
	ev := caffenet(t)
	if c := ev.Curve("conv1"); c.Threshold != 0.30 {
		t.Fatalf("conv1 threshold = %v", c.Threshold)
	}
	// Unknown layer gets the fallback curve.
	if c := ev.Curve("conv99"); c.Threshold != 0.50 {
		t.Fatalf("fallback threshold = %v", c.Threshold)
	}
}

func TestTopKValid(t *testing.T) {
	if !(TopK{Top1: 0.5, Top5: 0.8}).Valid() {
		t.Fatal("valid TopK rejected")
	}
	if (TopK{Top1: 0.9, Top5: 0.8}).Valid() {
		t.Fatal("top1 > top5 accepted")
	}
	if (TopK{Top1: -0.1, Top5: 0.5}).Valid() {
		t.Fatal("negative accepted")
	}
}
