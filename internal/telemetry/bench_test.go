package telemetry

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: ccperf
BenchmarkSpaceEnumeration
BenchmarkSpaceEnumeration-8   	      10	 123456789 ns/op	 2048 B/op	      12 allocs/op
BenchmarkAlgorithm1VsExhaustive/greedy-8         	     100	   1234567 ns/op	        86.0 model-evals
==== fig9 — some experiment printout that must be ignored
  feasible configurations          paper: 7654    measured: 7654
BenchmarkAblationBatchSize/batch=300-8           	     500	    234567 ns/op	      3760 sim-seconds-50k
PASS
ok  	ccperf	12.345s
`

func TestParseBench(t *testing.T) {
	results, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3: %+v", len(results), results)
	}
	r0 := results[0]
	if r0.Name != "BenchmarkSpaceEnumeration" || r0.Iterations != 10 {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.Values["ns/op"] != 123456789 || r0.Values["B/op"] != 2048 || r0.Values["allocs/op"] != 12 {
		t.Fatalf("r0 values = %+v", r0.Values)
	}
	r1 := results[1]
	if r1.Name != "BenchmarkAlgorithm1VsExhaustive/greedy" {
		t.Fatalf("sub-benchmark name = %q", r1.Name)
	}
	if r1.Values["model-evals"] != 86 {
		t.Fatalf("custom metric = %v", r1.Values["model-evals"])
	}
	r2 := results[2]
	if r2.Name != "BenchmarkAblationBatchSize/batch=300" || r2.Values["sim-seconds-50k"] != 3760 {
		t.Fatalf("r2 = %+v", r2)
	}
}

func TestParseBenchBadValue(t *testing.T) {
	_, err := ParseBench(strings.NewReader("BenchmarkX-8 10 oops ns/op\n"))
	if err == nil {
		t.Fatal("expected error for malformed value")
	}
}

func TestBenchSnapshot(t *testing.T) {
	results, err := ParseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	s := BenchSnapshot(results)
	if s.Counters["bench.BenchmarkSpaceEnumeration.iterations"] != 10 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if s.Gauges["bench.BenchmarkSpaceEnumeration.ns_per_op"] != 123456789 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if s.Gauges["bench.BenchmarkAlgorithm1VsExhaustive/greedy.model-evals"] != 86 {
		t.Fatalf("custom gauge missing: %+v", s.Gauges)
	}
	if s.UnixNano == 0 {
		t.Fatal("snapshot must be timestamped")
	}
}
